// Command viewserverd is the online view-advisor daemon: it loads a
// workload, bootstraps the pipeline (training the W-D cost model and
// selecting an initial view set), and serves the internal/serve HTTP API
// until SIGINT/SIGTERM, at which point it drains in-flight micro-batches
// and exits cleanly.
//
// Usage:
//
//	viewserverd [-addr host:port] [-workload job|wk1|wk2]
//	            [-schema schema.json -queries queries.sql]
//	            [-estimator actual|optimizer|wd]
//	            [-selector rlview|bigsub|iterview|topkfreq|topkover|topkben|topknorm]
//	            [-seed N] [-parallelism N] [-window N]
//	            [-advise-interval DUR] [-utility-tolerance F]
//	            [-cache-size N] [-cache-ttl DUR]
//	            [-log-level debug|info|warn|error]
//
// The /metrics, /debug/vars and /debug/pprof endpoints are mounted on
// the same listener as the /v1 API, so one address exposes both the
// service and its observability surface (see SERVING.md and
// OBSERVABILITY.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autoview/internal/core"
	"autoview/internal/obs"
	"autoview/internal/serve"
	"autoview/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8094", "address to serve the /v1 API and /metrics on")
	wl := flag.String("workload", "wk1", "built-in workload: job, wk1, wk2")
	schemaPath := flag.String("schema", "", "JSON schema file for a custom workload (with -queries)")
	queriesPath := flag.String("queries", "", "SQL file with the custom workload's queries")
	est := flag.String("estimator", "wd", "benefit estimator: actual, optimizer, wd")
	sel := flag.String("selector", "rlview", "view selector: rlview, bigsub, iterview, topkfreq, topkover, topkben, topknorm")
	seed := flag.Int64("seed", 1, "random seed")
	parallelism := flag.Int("parallelism", 0, "micro-batcher inference workers (0 = NumCPU, 1 = serial)")
	windowSize := flag.Int("window", 512, "rolling workload window capacity (queries)")
	adviseEvery := flag.Duration("advise-interval", 0, "background re-advise period (0 disables the loop)")
	utilityTol := flag.Float64("utility-tolerance", 0, "relative utility regression tolerated before a rotation rolls back")
	cacheSize := flag.Int("cache-size", 0, "fingerprint-keyed estimate cache entries (0 = default 4096, negative disables)")
	cacheTTL := flag.Duration("cache-ttl", 0, "age bound on cached estimates (0 = version-invalidation only)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
	logLevel := flag.String("log-level", "info", "structured event level on stderr: debug, info, warn, error")
	flag.Parse()

	if err := run(options{
		addr:         *addr,
		workload:     *wl,
		schemaPath:   *schemaPath,
		queriesPath:  *queriesPath,
		estimator:    *est,
		selector:     *sel,
		seed:         *seed,
		parallelism:  *parallelism,
		windowSize:   *windowSize,
		adviseEvery:  *adviseEvery,
		utilityTol:   *utilityTol,
		cacheSize:    *cacheSize,
		cacheTTL:     *cacheTTL,
		drainTimeout: *drainTimeout,
		logLevel:     *logLevel,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "viewserverd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr         string
	workload     string
	schemaPath   string
	queriesPath  string
	estimator    string
	selector     string
	seed         int64
	parallelism  int
	windowSize   int
	adviseEvery  time.Duration
	utilityTol   float64
	cacheSize    int
	cacheTTL     time.Duration
	drainTimeout time.Duration
	logLevel     string
}

func run(o options) error {
	// The serve package mounts the obs endpoint itself, so Setup only
	// wires stats + the event logger here (no separate obs listener).
	if _, err := obs.Setup(true, "", o.logLevel, os.Stderr); err != nil {
		return err
	}

	w, coreCfg, err := loadWorkload(o)
	if err != nil {
		return err
	}
	coreCfg.Seed = o.seed
	coreCfg.Parallelism = o.parallelism
	if coreCfg.Estimator, err = parseEstimator(o.estimator); err != nil {
		return err
	}
	if coreCfg.Selector, err = parseSelector(o.selector); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "viewserverd: bootstrapping on workload %s (%d queries, estimator %s, selector %v)\n",
		w.Name, len(w.Queries), coreCfg.Estimator, coreCfg.Selector)
	start := time.Now()
	srv, err := serve.New(w, coreCfg, serve.Config{
		Parallelism:      o.parallelism,
		WindowSize:       o.windowSize,
		AdviseInterval:   o.adviseEvery,
		UtilityTolerance: o.utilityTol,
		CacheSize:        o.cacheSize,
		CacheTTL:         o.cacheTTL,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "viewserverd: bootstrap advise done in %v\n", time.Since(start).Round(time.Millisecond))

	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Fprintf(os.Stderr, "viewserverd: serving /v1 API and /metrics on http://%s\n", o.addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "viewserverd: %v received, draining (timeout %v)\n", sig, o.drainTimeout)
	case err := <-errCh:
		return fmt.Errorf("listen on %s: %w", o.addr, err)
	}

	// Stop the listener first so in-flight handlers can still collect
	// their micro-batch results, then drain the serve pipeline.
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Close(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "viewserverd: drained cleanly")
	return nil
}

func loadWorkload(o options) (*workload.Workload, core.Config, error) {
	if o.schemaPath != "" || o.queriesPath != "" {
		if o.schemaPath == "" || o.queriesPath == "" {
			return nil, core.Config{}, fmt.Errorf("custom workloads need both -schema and -queries")
		}
		sf, err := os.Open(o.schemaPath)
		if err != nil {
			return nil, core.Config{}, err
		}
		defer sf.Close()
		cat, err := workload.LoadCatalog(sf)
		if err != nil {
			return nil, core.Config{}, err
		}
		qf, err := os.Open(o.queriesPath)
		if err != nil {
			return nil, core.Config{}, err
		}
		defer qf.Close()
		w, err := workload.LoadQueries(qf, cat, "custom")
		if err != nil {
			return nil, core.Config{}, err
		}
		cfg := core.WKConfig()
		cfg.WDTrain.BatchSize = 16
		return w, cfg, nil
	}
	switch strings.ToLower(o.workload) {
	case "job":
		return workload.JOB(), core.DefaultConfig(), nil
	case "wk1":
		return workload.WK1(), core.WKConfig(), nil
	case "wk2":
		return workload.WK2(), core.WKConfig(), nil
	default:
		return nil, core.Config{}, fmt.Errorf("unknown workload %q", o.workload)
	}
}

func parseEstimator(name string) (core.EstimatorKind, error) {
	switch strings.ToLower(name) {
	case "actual":
		return core.EstimatorActual, nil
	case "optimizer":
		return core.EstimatorOptimizer, nil
	case "wd", "w-d", "widedeep":
		return core.EstimatorWideDeep, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q", name)
	}
}

func parseSelector(name string) (core.SelectorKind, error) {
	switch strings.ToLower(name) {
	case "rlview":
		return core.SelectorRLView, nil
	case "bigsub":
		return core.SelectorBigSub, nil
	case "iterview":
		return core.SelectorIterView, nil
	case "topkfreq":
		return core.SelectorTopkFreq, nil
	case "topkover":
		return core.SelectorTopkOver, nil
	case "topkben":
		return core.SelectorTopkBen, nil
	case "topknorm":
		return core.SelectorTopkNorm, nil
	default:
		return 0, fmt.Errorf("unknown selector %q", name)
	}
}
