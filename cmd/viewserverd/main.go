// Command viewserverd is the online view-advisor daemon: it loads a
// workload, bootstraps the pipeline (training the W-D cost model and
// selecting an initial view set), and serves the internal/serve HTTP API
// until SIGINT/SIGTERM, at which point it drains in-flight micro-batches
// and exits cleanly.
//
// Usage:
//
//	viewserverd [-addr host:port] [-workload job|wk1|wk2]
//	            [-schema schema.json -queries queries.sql]
//	            [-estimator actual|optimizer|wd]
//	            [-selector rlview|bigsub|iterview|localsearch|topkfreq|topkover|topkben|topknorm]
//	            [-seed N] [-parallelism N] [-window N]
//	            [-advise-interval DUR] [-utility-tolerance F]
//	            [-cache-size N] [-cache-ttl DUR]
//	            [-data-dir DIR] [-fsync always|interval|off] [-snapshot-every N]
//	            [-log-level debug|info|warn|error]
//
// With -data-dir the advisor state is durable: ingested queries, model
// swaps, and view-set rotations are logged to a write-ahead log with
// periodic snapshots, and a restart (even after a crash or kill -9)
// recovers the rolling window, view set, and W-D model byte-identically
// instead of re-bootstrapping. While recovery replays, /v1/healthz
// reports state "recovering" with 503 and every other endpoint answers
// 503, flipping to "ready" when replay finishes.
//
// The /metrics, /debug/vars and /debug/pprof endpoints are mounted on
// the same listener as the /v1 API, so one address exposes both the
// service and its observability surface (see SERVING.md and
// OBSERVABILITY.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autoview/internal/core"
	"autoview/internal/durable"
	"autoview/internal/obs"
	"autoview/internal/serve"
	"autoview/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8094", "address to serve the /v1 API and /metrics on")
	wl := flag.String("workload", "wk1", "built-in workload: job, wk1, wk2")
	schemaPath := flag.String("schema", "", "JSON schema file for a custom workload (with -queries)")
	queriesPath := flag.String("queries", "", "SQL file with the custom workload's queries")
	est := flag.String("estimator", "wd", "benefit estimator: actual, optimizer, wd")
	sel := flag.String("selector", "rlview", "view selector: rlview, bigsub, iterview, localsearch, topkfreq, topkover, topkben, topknorm")
	seed := flag.Int64("seed", 1, "random seed")
	parallelism := flag.Int("parallelism", 0, "micro-batcher inference workers (0 = NumCPU, 1 = serial)")
	windowSize := flag.Int("window", 512, "rolling workload window capacity (queries)")
	adviseEvery := flag.Duration("advise-interval", 0, "background re-advise period (0 disables the loop)")
	utilityTol := flag.Float64("utility-tolerance", 0, "relative utility regression tolerated before a rotation rolls back")
	cacheSize := flag.Int("cache-size", 0, "fingerprint-keyed estimate cache entries (0 = default 4096, negative disables)")
	cacheTTL := flag.Duration("cache-ttl", 0, "age bound on cached estimates (0 = version-invalidation only)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
	dataDir := flag.String("data-dir", "", "durable state directory: WAL + snapshots + model checkpoints (empty disables durability)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, interval, off")
	snapshotEvery := flag.Int("snapshot-every", 0, "WAL records between automatic snapshots (0 = default 1024, negative disables)")
	logLevel := flag.String("log-level", "info", "structured event level on stderr: debug, info, warn, error")
	flag.Parse()

	if err := run(options{
		addr:          *addr,
		workload:      *wl,
		schemaPath:    *schemaPath,
		queriesPath:   *queriesPath,
		estimator:     *est,
		selector:      *sel,
		seed:          *seed,
		parallelism:   *parallelism,
		windowSize:    *windowSize,
		adviseEvery:   *adviseEvery,
		utilityTol:    *utilityTol,
		cacheSize:     *cacheSize,
		cacheTTL:      *cacheTTL,
		drainTimeout:  *drainTimeout,
		dataDir:       *dataDir,
		fsync:         *fsync,
		snapshotEvery: *snapshotEvery,
		logLevel:      *logLevel,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "viewserverd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr          string
	workload      string
	schemaPath    string
	queriesPath   string
	estimator     string
	selector      string
	seed          int64
	parallelism   int
	windowSize    int
	adviseEvery   time.Duration
	utilityTol    float64
	cacheSize     int
	cacheTTL      time.Duration
	drainTimeout  time.Duration
	dataDir       string
	fsync         string
	snapshotEvery int
	logLevel      string
}

func run(o options) error {
	// The serve package mounts the obs endpoint itself, so Setup only
	// wires stats + the event logger here (no separate obs listener).
	if _, err := obs.Setup(true, "", o.logLevel, os.Stderr); err != nil {
		return err
	}

	w, coreCfg, err := loadWorkload(o)
	if err != nil {
		return err
	}
	coreCfg.Seed = o.seed
	coreCfg.Parallelism = o.parallelism
	if coreCfg.Estimator, err = core.ParseEstimator(o.estimator); err != nil {
		return err
	}
	if coreCfg.Selector, err = core.ParseSelector(o.selector); err != nil {
		return err
	}

	// Bind the listener before bootstrap/recovery so /v1/healthz answers
	// (503, state "recovering") the moment the port is up; every other
	// endpoint is readiness-gated until Start finishes.
	srv := serve.NewServer(w, coreCfg, serve.Config{
		Parallelism:      o.parallelism,
		WindowSize:       o.windowSize,
		AdviseInterval:   o.adviseEvery,
		UtilityTolerance: o.utilityTol,
		CacheSize:        o.cacheSize,
		CacheTTL:         o.cacheTTL,
	})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", o.addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Fprintf(os.Stderr, "viewserverd: listening on http://%s (recovering)\n", ln.Addr())

	var dstore *durable.Store
	if o.dataDir != "" {
		policy, err := durable.ParseFsync(o.fsync)
		if err != nil {
			_ = httpSrv.Close()
			return err
		}
		dstore, err = durable.Open(durable.Options{
			Dir:           o.dataDir,
			Fsync:         policy,
			SnapshotEvery: o.snapshotEvery,
			WindowCap:     o.windowSize,
		})
		if err != nil {
			_ = httpSrv.Close()
			return fmt.Errorf("open data dir %s: %w", o.dataDir, err)
		}
		if dstore.Recovered() != nil {
			fmt.Fprintf(os.Stderr, "viewserverd: recovering durable state from %s\n", o.dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "viewserverd: fresh data dir %s, bootstrapping on workload %s (%d queries, estimator %s, selector %v)\n",
				o.dataDir, w.Name, len(w.Queries), coreCfg.Estimator, coreCfg.Selector)
		}
	} else {
		fmt.Fprintf(os.Stderr, "viewserverd: bootstrapping on workload %s (%d queries, estimator %s, selector %v)\n",
			w.Name, len(w.Queries), coreCfg.Estimator, coreCfg.Selector)
	}

	start := time.Now()
	if err := srv.Start(context.Background(), dstore); err != nil {
		_ = httpSrv.Close()
		if dstore != nil {
			_ = dstore.Close()
		}
		return fmt.Errorf("start: %w", err)
	}
	fmt.Fprintf(os.Stderr, "viewserverd: ready in %v, serving /v1 API and /metrics on http://%s\n",
		time.Since(start).Round(time.Millisecond), ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "viewserverd: %v received, draining (timeout %v)\n", sig, o.drainTimeout)
	case err := <-errCh:
		// Serve only reports before Shutdown on a real listener failure;
		// still drain so accepted ingest reaches the window and the WAL.
		_ = srv.Close(context.Background())
		if dstore != nil {
			_ = dstore.Close()
		}
		return fmt.Errorf("serve on %s: %w", o.addr, err)
	}

	// Stop the listener first so in-flight handlers can still collect
	// their micro-batch results, then drain the serve pipeline. A
	// shutdown timeout must NOT skip the drain: srv.Close is what flushes
	// the queued ingest into the window and the WAL, so it always runs
	// (and likewise the durable store always closes).
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx)
	drainErr := srv.Close(ctx)
	var storeErr error
	if dstore != nil {
		storeErr = dstore.Close()
	}
	if shutdownErr != nil {
		return fmt.Errorf("http shutdown: %w", shutdownErr)
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	if storeErr != nil {
		return fmt.Errorf("close data dir: %w", storeErr)
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "viewserverd: drained cleanly")
	return nil
}

func loadWorkload(o options) (*workload.Workload, core.Config, error) {
	if o.schemaPath != "" || o.queriesPath != "" {
		if o.schemaPath == "" || o.queriesPath == "" {
			return nil, core.Config{}, fmt.Errorf("custom workloads need both -schema and -queries")
		}
		sf, err := os.Open(o.schemaPath)
		if err != nil {
			return nil, core.Config{}, err
		}
		defer sf.Close()
		cat, err := workload.LoadCatalog(sf)
		if err != nil {
			return nil, core.Config{}, err
		}
		qf, err := os.Open(o.queriesPath)
		if err != nil {
			return nil, core.Config{}, err
		}
		defer qf.Close()
		w, err := workload.LoadQueries(qf, cat, "custom")
		if err != nil {
			return nil, core.Config{}, err
		}
		cfg := core.WKConfig()
		cfg.WDTrain.BatchSize = 16
		return w, cfg, nil
	}
	switch strings.ToLower(o.workload) {
	case "job":
		return workload.JOB(), core.DefaultConfig(), nil
	case "wk1":
		return workload.WK1(), core.WKConfig(), nil
	case "wk2":
		return workload.WK2(), core.WKConfig(), nil
	default:
		return nil, core.Config{}, fmt.Errorf("unknown workload %q", o.workload)
	}
}
