package main

import (
	"strings"
	"testing"

	"autoview/internal/core"
)

// baseOptions returns a minimal valid option set; individual tests break
// one field to drive run's flag-validation paths.
func baseOptions() options {
	return options{
		workload:  "wk1",
		estimator: "wd",
		selector:  "rlview",
		logLevel:  "warn",
	}
}

func TestRunRejectsUnknownSelector(t *testing.T) {
	o := baseOptions()
	o.selector = "bogus"
	err := run(o)
	if err == nil || !strings.Contains(err.Error(), "unknown selector") {
		t.Fatalf("want unknown-selector error, got %v", err)
	}
}

func TestRunRejectsUnknownEstimator(t *testing.T) {
	o := baseOptions()
	o.estimator = "bogus"
	err := run(o)
	if err == nil || !strings.Contains(err.Error(), "unknown estimator") {
		t.Fatalf("want unknown-estimator error, got %v", err)
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	o := baseOptions()
	o.workload = "nope"
	err := run(o)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("want unknown-workload error, got %v", err)
	}
}

// TestSelectorFlagAcceptsEveryRegisteredName pins the -selector flag's
// value domain to the core registry, localsearch included.
func TestSelectorFlagAcceptsEveryRegisteredName(t *testing.T) {
	for name := range core.SelectorNames() {
		if _, err := core.ParseSelector(name); err != nil {
			t.Errorf("selector %q rejected: %v", name, err)
		}
	}
	if _, err := core.ParseSelector("localsearch"); err != nil {
		t.Errorf("localsearch must be reachable from the flag: %v", err)
	}
}
