// Command workloadgen emits the built-in benchmark workloads: their
// Table I statistics, the Figure 1 redundancy analysis, and optionally the
// SQL text of every query.
//
// Usage:
//
//	workloadgen [-workload job|wk1|wk2] [-sql] [-redundancy]
//	            [-stats] [-obs-addr host:port] [-log-level debug|info|warn|error]
//
// The observability flags are shared with viewgen and documented in
// OBSERVABILITY.md; -stats prints the parse/preprocess metrics after the
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autoview/internal/equiv"
	"autoview/internal/obs"
	"autoview/internal/workload"
)

func main() {
	wl := flag.String("workload", "job", "workload: job, wk1, wk2")
	dumpSQL := flag.Bool("sql", false, "print every query's SQL")
	redundancy := flag.Bool("redundancy", false, "print the per-project redundancy analysis (Figure 1)")
	statsFlag := flag.Bool("stats", false, "print the observability registry snapshot after the run")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	logLevel := flag.String("log-level", "", "stream structured events to stderr at this level: debug, info, warn, error")
	flag.Parse()

	if h, err := obs.Setup(*statsFlag, *obsAddr, *logLevel, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	} else if h.Addr() != "" {
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s\n", h.Addr())
	}

	var w *workload.Workload
	switch strings.ToLower(*wl) {
	case "job":
		w = workload.JOB()
	case "wk1":
		w = workload.WK1()
	case "wk2":
		w = workload.WK2()
	default:
		fmt.Fprintf(os.Stderr, "workloadgen: unknown workload %q\n", *wl)
		os.Exit(1)
	}

	pre := equiv.Preprocess(w.Plans(), nil)
	stats := w.Describe(pre)
	fmt.Printf("%s\n", w.Name)
	fmt.Printf("  # project / # table:    %d / %d\n", stats.Projects, stats.Tables)
	fmt.Printf("  # query / # subquery:   %d / %d\n", stats.Queries, stats.Subqueries)
	fmt.Printf("  # equivalent pairs:     %d\n", stats.EquivalentPairs)
	fmt.Printf("  # candidate (|Z|):      %d\n", stats.Candidates)
	fmt.Printf("  # associated (|Q|):     %d\n", stats.AssociatedQuery)
	fmt.Printf("  # overlapping pairs:    %d\n", stats.OverlappingPairs)

	if *redundancy {
		fmt.Println("per-project redundancy:")
		rows := w.Redundancy(pre)
		for _, r := range rows {
			fmt.Printf("  %-8s total=%-5d redundant=%-5d\n", r.Project, r.Total, r.Redundant)
		}
		fmt.Print("cumulative redundancy %: ")
		for _, v := range workload.CumulativeRedundancy(rows) {
			fmt.Printf("%.1f ", v)
		}
		fmt.Println()
	}

	if *dumpSQL {
		for _, q := range w.Queries {
			fmt.Printf("-- %s (%s)\n%s;\n", q.ID, q.Project, q.SQL)
		}
	}

	if *statsFlag {
		fmt.Print("\nobservability snapshot:\n", obs.Default.Snapshot().Text())
	}
}
