package main

import (
	"strings"
	"testing"

	"autoview/internal/core"
)

// selectorFlagDoc mirrors the -selector help text in main; the test pins
// it to the core registry so the flag docs can't drift from the selectors
// actually reachable.
const selectorFlagDoc = "rlview, bigsub, iterview, localsearch, topkfreq, topkover, topkben, topknorm"

func TestSelectorFlagDomainMatchesRegistry(t *testing.T) {
	var documented []string
	for _, name := range strings.Split(selectorFlagDoc, ", ") {
		documented = append(documented, name)
		if _, err := core.ParseSelector(name); err != nil {
			t.Errorf("documented selector %q does not parse: %v", name, err)
		}
	}
	reg := core.SelectorNames()
	if len(documented) != len(reg) {
		t.Errorf("flag doc lists %d selectors, registry has %d", len(documented), len(reg))
	}
	for name := range reg {
		found := false
		for _, d := range documented {
			if d == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registered selector %q missing from the -selector flag doc", name)
		}
	}
}

func TestSelectorFlagRejectsUnknown(t *testing.T) {
	if _, err := core.ParseSelector("bogus"); err == nil || !strings.Contains(err.Error(), "unknown selector") {
		t.Errorf("want unknown-selector error, got %v", err)
	}
	if _, err := core.ParseEstimator("bogus"); err == nil || !strings.Contains(err.Error(), "unknown estimator") {
		t.Errorf("want unknown-estimator error, got %v", err)
	}
}

func TestPickWorkloads(t *testing.T) {
	for _, name := range []string{"job", "wk1", "wk2", "JOB"} {
		w, cfg, err := pick(name)
		if err != nil {
			t.Errorf("pick(%q): %v", name, err)
			continue
		}
		if w == nil || len(w.Queries) == 0 {
			t.Errorf("pick(%q): empty workload", name)
		}
		if cfg.Selector != core.SelectorRLView {
			t.Errorf("pick(%q): default selector %v", name, cfg.Selector)
		}
	}
	if _, _, err := pick("nope"); err == nil {
		t.Errorf("pick should reject unknown workloads")
	}
}
