// Command viewgen runs the end-to-end automatic view generation pipeline
// (Figure 3 of the paper) on a built-in or custom workload and prints the
// selected views plus the end-to-end savings report.
//
// Usage:
//
//	viewgen [-workload job|wk1|wk2] [-estimator actual|optimizer|wd]
//	        [-selector rlview|bigsub|iterview|localsearch|topkfreq|topkover|topkben|topknorm]
//	        [-schema schema.json -queries queries.sql]
//	        [-seed N] [-verbose] [-ddl]
//	        [-stats] [-obs-addr host:port] [-log-level debug|info|warn|error]
//
// -schema/-queries load a custom workload (JSON schema + SQL file)
// instead of a built-in one. -verbose prints the selected view plans and
// -ddl their CREATE MATERIALIZED VIEW statements.
//
// The observability flags are documented in OBSERVABILITY.md: -stats
// prints the metric registry snapshot after the run, -obs-addr serves
// /metrics, /debug/vars and /debug/pprof over HTTP while the run is in
// flight, and -log-level streams structured pipeline events to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autoview/internal/core"
	"autoview/internal/engine"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/workload"
)

func main() {
	wl := flag.String("workload", "job", "built-in workload: job, wk1, wk2")
	schemaPath := flag.String("schema", "", "JSON schema file for a custom workload (with -queries)")
	queriesPath := flag.String("queries", "", "SQL file with the custom workload's queries")
	est := flag.String("estimator", "wd", "benefit estimator: actual, optimizer, wd")
	sel := flag.String("selector", "rlview", "view selector: rlview, bigsub, iterview, localsearch, topkfreq, topkover, topkben, topknorm")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("verbose", false, "print selected view plans")
	ddl := flag.Bool("ddl", false, "print CREATE MATERIALIZED VIEW statements for the selection")
	stats := flag.Bool("stats", false, "print the observability registry snapshot after the run")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	logLevel := flag.String("log-level", "", "stream structured events to stderr at this level: debug, info, warn, error")
	flag.Parse()

	if err := setupObs(*stats, *obsAddr, *logLevel); err != nil {
		fail(err)
	}

	var w *workload.Workload
	var cfg core.Config
	var err error
	if *schemaPath != "" || *queriesPath != "" {
		w, err = loadCustom(*schemaPath, *queriesPath)
		cfg = core.WKConfig()
		cfg.WDTrain.BatchSize = 16
	} else {
		w, cfg, err = pick(*wl)
	}
	if err != nil {
		fail(err)
	}
	cfg.Seed = *seed
	if cfg.Estimator, err = core.ParseEstimator(*est); err != nil {
		fail(err)
	}
	if cfg.Selector, err = core.ParseSelector(*sel); err != nil {
		fail(err)
	}

	fmt.Printf("workload %s: %d queries over %d tables\n", w.Name, len(w.Queries), w.Cat.Len())
	start := time.Now()
	adv := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)

	pre := adv.Preprocess(w.Plans())
	desc := w.Describe(pre)
	fmt.Printf("pre-process: %d subqueries, %d equivalent pairs, |Z|=%d candidates, |Q|=%d associated queries, %d overlapping pairs\n",
		desc.Subqueries, desc.EquivalentPairs, desc.Candidates, desc.AssociatedQuery, desc.OverlappingPairs)

	p, err := adv.BuildProblem(w.Plans(), pre)
	if err != nil {
		fail(err)
	}
	fmt.Printf("estimator %s: benefit matrix %d×%d assembled\n",
		cfg.Estimator, p.Instance.NumQueries(), p.Instance.NumViews())

	selection, err := adv.Select(p)
	if err != nil {
		fail(err)
	}
	fmt.Printf("selector %s: %d views selected, estimated utility $%.4f\n",
		selection.Method, selection.Selected(), selection.Utility)
	if *verbose {
		for j, z := range selection.Z {
			if !z {
				continue
			}
			cand := p.Candidates[j]
			fmt.Printf("-- view %s (shared by %d queries, overhead $%.5f)\n%s",
				cand.View.ID, len(cand.Queries), cand.Overhead, cand.View.Plan)
		}
	}

	if *ddl {
		for j, z := range selection.Z {
			if z {
				fmt.Println(plan.ViewDDL(p.Candidates[j].View.ID, p.Candidates[j].View.Plan))
			}
		}
	}

	rep, err := adv.Apply(p, selection)
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))

	if *stats {
		fmt.Print("\nobservability snapshot:\n", obs.Default.Snapshot().Text())
	}
}

// setupObs wires the shared observability flags: -stats and -obs-addr
// enable the registry (so spans start timing), -obs-addr additionally
// serves the HTTP endpoint, and -log-level attaches the event logger to
// stderr.
func setupObs(stats bool, addr, level string) error {
	h, err := obs.Setup(stats, addr, level, os.Stderr)
	if err != nil {
		return err
	}
	if h.Addr() != "" {
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s (/metrics, /debug/vars, /debug/pprof)\n", h.Addr())
	}
	return nil
}

// loadCustom reads a user-provided schema + queries pair.
func loadCustom(schemaPath, queriesPath string) (*workload.Workload, error) {
	if schemaPath == "" || queriesPath == "" {
		return nil, fmt.Errorf("custom workloads need both -schema and -queries")
	}
	sf, err := os.Open(schemaPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	cat, err := workload.LoadCatalog(sf)
	if err != nil {
		return nil, err
	}
	qf, err := os.Open(queriesPath)
	if err != nil {
		return nil, err
	}
	defer qf.Close()
	return workload.LoadQueries(qf, cat, "custom")
}

func pick(name string) (*workload.Workload, core.Config, error) {
	switch strings.ToLower(name) {
	case "job":
		return workload.JOB(), core.DefaultConfig(), nil
	case "wk1":
		return workload.WK1(), core.WKConfig(), nil
	case "wk2":
		return workload.WK2(), core.WKConfig(), nil
	default:
		return nil, core.Config{}, fmt.Errorf("unknown workload %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "viewgen:", err)
	os.Exit(1)
}
