// Command autoviewlint runs the repo's determinism and
// resource-discipline lint suite (internal/lint), eight analyzers:
// randsource, maporder, spanend, floateq, errdiscard, arenaescape,
// poolpair, atomicfield. See LINTING.md for the analyzer catalog and
// the //lint:allow suppression syntax.
//
// Two modes share one binary:
//
//	autoviewlint [-analyzers a,b] [packages]   # standalone; default ./...
//	go vet -vettool=$(pwd)/bin/autoviewlint ./...  # vet-driver protocol
//
// The vet mode speaks the go command's vettool contract (-V=full
// version probe, then one JSON .cfg per package unit), so runs are
// cached per package like any other vet pass. The dataflow analyzers
// (arenaescape, poolpair, atomicfield) additionally export per-function
// facts: in vet mode they travel between package units through the go
// command's .vetx files (PackageVetx in, VetxOutput out), so a helper's
// contract — "returns arena-backed memory", "hands out pooled values",
// "this field is atomic" — is enforced at call sites in other packages.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"autoview/internal/lint"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet probe protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag descriptions as JSON and exit (go vet probe protocol)")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = usage
	flag.Parse()

	if *versionFlag != "" {
		printVersion(*versionFlag)
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVet(analyzers, args[0])
		return
	}
	runStandalone(analyzers, args)
}

func runStandalone(analyzers []*lint.Analyzer, patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.RunAnalyzers(analyzers, pkgs)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func runVet(analyzers []*lint.Analyzer, cfgFile string) {
	diags, err := lint.RunVetUnit(analyzers, cfgFile)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(2) // vet convention: diagnostics found
	}
}

// printVersion implements the -V=full probe: the go command hashes the
// printed line into its action cache, so it must change when the tool's
// behavior does — hashing the executable itself guarantees that.
func printVersion(mode string) {
	progname := filepath.Base(os.Args[0])
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// printFlags implements the -flags probe: the go command asks for the
// tool's flag set as a JSON array before driving it.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		getter, ok := f.Value.(flag.Getter)
		isBool := false
		if ok {
			_, isBool = getter.Get().(bool)
		}
		flags = append(flags, jsonFlag{f.Name, isBool, f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fatal(err)
	}
	_, _ = os.Stdout.Write(data)
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	if names == "" {
		return lint.Analyzers(), nil
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		a := lint.ByName(strings.TrimSpace(n))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: autoviewlint [-analyzers names] [packages]\n\nanalyzers:\n")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "autoviewlint: %v\n", err)
	os.Exit(1)
}
