// Command bcecheck is the bounds-check-elimination regression gate for
// the float32 inference kernels (PERFORMANCE.md "BCE gate"). It builds
// internal/nn with the compiler's -d=ssa/check_bce diagnostic, which
// prints one line per bounds check the SSA backend could NOT eliminate,
// and compares the per-function counts in the gated files
// (kernels32.go, infer32.go) against the checked-in allowlist
// internal/nn/bce_allowlist.txt.
//
// The kernels are written so their hot loops carry no bounds checks
// (length hoisting, `_ = s[n-1]` hints); an edit that quietly
// reintroduces one costs double-digit percent throughput without
// failing any correctness test. This gate turns that silent regression
// into a CI failure naming the exact function and source line.
//
// Counts are keyed per function, not per line, so unrelated edits that
// shift line numbers don't churn the allowlist; it only changes when a
// function's real bounds-check count changes.
//
// Usage:
//
//	go run ./cmd/bcecheck            # gate (exit 1 on regression)
//	go run ./cmd/bcecheck -update    # rewrite the allowlist
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.pkg, "pkg", "autoview/internal/nn", "package to build with -d=ssa/check_bce")
	flag.StringVar(&cfg.files, "files", "kernels32.go,infer32.go", "comma-separated gated files within the package")
	flag.StringVar(&cfg.allowlist, "allowlist", "", "allowlist path (default <pkg dir>/bce_allowlist.txt)")
	update := flag.Bool("update", false, "rewrite the allowlist from the current build instead of gating")
	flag.Parse()

	counts, sites, err := collect(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
		os.Exit(1)
	}
	path, err := cfg.allowlistPath()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
		os.Exit(1)
	}

	if *update {
		if err := writeAllowlist(path, counts); err != nil {
			fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bcecheck: wrote %s (%d functions)\n", path, len(counts))
		return
	}

	allowed, err := readAllowlist(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcecheck: %v (run with -update to create it)\n", err)
		os.Exit(1)
	}
	violations := compare(counts, allowed, sites)
	if len(violations) == 0 {
		fmt.Printf("bcecheck: ok — %s bounds-check counts match %s\n", cfg.files, filepath.Base(path))
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "bcecheck: "+v)
	}
	fmt.Fprintf(os.Stderr, "bcecheck: FAIL — a bounds check was reintroduced into a gated kernel file.\n")
	fmt.Fprintf(os.Stderr, "  Restore elimination (hoist lengths, add `_ = s[n-1]` hints; see PERFORMANCE.md \"BCE gate\"),\n")
	fmt.Fprintf(os.Stderr, "  or, if the new check is deliberate, refresh the allowlist: go run ./cmd/bcecheck -update\n")
	os.Exit(1)
}

func (c config) gatedFiles() map[string]bool {
	out := make(map[string]bool)
	for _, f := range strings.Split(c.files, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out[f] = true
		}
	}
	return out
}
