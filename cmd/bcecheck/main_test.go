package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cleanKernel pairs its loop condition with the indices it loads, so
// the SSA backend eliminates every bounds check: the baseline a gate
// allowlist is built from.
const cleanKernel = `package bcefix

func Hot(x []float32) float32 {
	var s float32
	for i := 0; i < len(x); i++ {
		s += x[i]
	}
	return s
}
`

// regressedKernel strides past the proven index so x[i+1] is no longer
// provable — the exact class of edit the gate exists to catch.
const regressedKernel = `package bcefix

func Hot(x []float32) float32 {
	var s float32
	for i := 0; i < len(x); i += 2 {
		s += x[i+1]
	}
	return s
}
`

// writeFixtureModule lays down a throwaway module and chdirs into it so
// collect's go list/go build invocations resolve the fixture package.
func writeFixtureModule(t *testing.T, kernel string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module bcefix\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeKernel(t, dir, kernel)
	t.Chdir(dir)
	return dir
}

func writeKernel(t *testing.T, dir, kernel string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "kernel.go"), []byte(kernel), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGateCatchesReintroducedCheck is the end-to-end proof the ISSUE
// asks for: build a clean kernel, snapshot its (empty) allowlist, then
// reintroduce a bounds check and require the gate to fail naming the
// exact function and source line.
func TestGateCatchesReintroducedCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain; skipped in -short")
	}
	dir := writeFixtureModule(t, cleanKernel)
	cfg := config{pkg: "bcefix", files: "kernel.go"}

	counts, _, err := collect(cfg)
	if err != nil {
		t.Fatalf("collect clean: %v", err)
	}
	if len(counts) != 0 {
		t.Fatalf("clean kernel should have zero bounds checks, got %v", counts)
	}
	allow := filepath.Join(dir, "allow.txt")
	if err := writeAllowlist(allow, counts); err != nil {
		t.Fatal(err)
	}

	writeKernel(t, dir, regressedKernel)
	counts, sites, err := collect(cfg)
	if err != nil {
		t.Fatalf("collect regressed: %v", err)
	}
	allowed, err := readAllowlist(allow)
	if err != nil {
		t.Fatal(err)
	}
	violations := compare(counts, allowed, sites)
	if len(violations) == 0 {
		t.Fatal("gate passed a reintroduced bounds check")
	}
	msg := strings.Join(violations, "\n")
	// The unprovable load sits on line 6 of regressedKernel; the
	// failure must name both the function and that line.
	for _, want := range []string{"kernel.go:Hot", "kernel.go:6:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation missing %q:\n%s", want, msg)
		}
	}
}

// TestGateAgainstRepoAllowlist runs the real gate configuration — the
// same invocation as `make check-bce` — and requires it to pass, so a
// kernel edit that shifts counts fails `go test ./...` too, not just
// the Makefile target.
func TestGateAgainstRepoAllowlist(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain; skipped in -short")
	}
	cfg := config{pkg: "autoview/internal/nn", files: "kernels32.go,infer32.go"}
	counts, sites, err := collect(cfg)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	path, err := cfg.allowlistPath()
	if err != nil {
		t.Fatal(err)
	}
	allowed, err := readAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if violations := compare(counts, allowed, sites); len(violations) != 0 {
		t.Errorf("gate fails against checked-in allowlist:\n%s", strings.Join(violations, "\n"))
	}
	// The whole point of gating kernels32.go is that its blocked inner
	// loops stay check-free; the per-block preamble/epilogue checks that
	// remain are bounded. Guard against the allowlist silently growing
	// past that regime.
	total := 0
	for _, n := range counts {
		total += n
	}
	if total > 120 {
		t.Errorf("gated files carry %d bounds checks; the kernels have lost their elimination structure", total)
	}
}

func TestParseBCEResolvesFunctions(t *testing.T) {
	spans := map[string][]funcSpan{
		"kernel.go": {{name: "A", begin: 3, end: 9}, {name: "T.B", begin: 11, end: 20}},
	}
	out := "# pkg\n" +
		"./kernel.go:5:9: Found IsInBounds\n" +
		"internal/nn/kernel.go:12:3: Found IsSliceInBounds\n" +
		"./other.go:4:1: Found IsInBounds\n" + // not gated
		"./kernel.go:6:2: some unrelated diagnostic\n"
	sites, err := parseBCE(out, map[string]bool{"kernel.go": true}, spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 {
		t.Fatalf("got %d sites, want 2: %+v", len(sites), sites)
	}
	if sites[0].fn != "A" || sites[0].line != 5 || sites[0].kind != "IsInBounds" {
		t.Errorf("site 0 = %+v", sites[0])
	}
	if sites[1].fn != "T.B" || sites[1].kind != "IsSliceInBounds" {
		t.Errorf("site 1 = %+v", sites[1])
	}
}

func TestCompareDirections(t *testing.T) {
	sites := []site{{file: "k.go", line: 40, col: 9, kind: "IsInBounds", fn: "F"}}
	got := map[string]int{"k.go:F": 1}

	if v := compare(got, map[string]int{"k.go:F": 1}, sites); len(v) != 0 {
		t.Errorf("equal counts should pass, got %v", v)
	}
	v := compare(got, map[string]int{"k.go:F": 0}, sites)
	if len(v) != 1 || !strings.Contains(v[0], "k.go:40:9") || !strings.Contains(v[0], "k.go:F") {
		t.Errorf("regression should name function and site, got %v", v)
	}
	v = compare(map[string]int{}, map[string]int{"k.go:F": 1}, nil)
	if len(v) != 1 || !strings.Contains(v[0], "-update") {
		t.Errorf("improvement should suggest -update, got %v", v)
	}
}

func TestAllowlistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allow.txt")
	in := map[string]int{"b.go:Z": 3, "a.go:A": 1}
	if err := writeAllowlist(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out["a.go:A"] != 1 || out["b.go:Z"] != 3 {
		t.Errorf("round trip mismatch: %v", out)
	}
	if err := os.WriteFile(path, []byte("a.go:A one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readAllowlist(path); err == nil {
		t.Error("malformed count should be rejected")
	}
}
