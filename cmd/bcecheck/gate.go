package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// config describes one gate run.
type config struct {
	pkg       string // import path built with -d=ssa/check_bce
	files     string // comma-separated gated file names inside the package
	allowlist string // allowlist path override ("" = <pkg dir>/bce_allowlist.txt)
}

// A site is one bounds check the compiler kept, resolved to the
// enclosing top-level function.
type site struct {
	file string // base name, e.g. kernels32.go
	line int
	col  int
	kind string // IsInBounds | IsSliceInBounds
	fn   string // enclosing function, e.g. dotVU or Model32.predict
}

// bceLine matches the -d=ssa/check_bce diagnostic lines.
var bceLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): Found (IsInBounds|IsSliceInBounds)$`)

// collect builds the package with the check_bce diagnostic and returns
// the per-function counts (key "file:func") plus every resolved site in
// the gated files.
func collect(cfg config) (map[string]int, []site, error) {
	dir, err := pkgDir(cfg.pkg)
	if err != nil {
		return nil, nil, err
	}
	gated := cfg.gatedFiles()
	for f := range gated {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			return nil, nil, fmt.Errorf("gated file %s: %v", f, err)
		}
	}
	spans, err := funcSpans(dir, gated)
	if err != nil {
		return nil, nil, err
	}

	// go build prints the diagnostics on stderr and replays them from
	// the build cache on repeat runs, so the gate sees the same output
	// whether or not the package was just compiled.
	cmd := exec.Command("go", "build", "-gcflags="+cfg.pkg+"=-d=ssa/check_bce", cfg.pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, nil, fmt.Errorf("go build %s: %v\n%s", cfg.pkg, err, out)
	}

	sites, err := parseBCE(string(out), gated, spans)
	if err != nil {
		return nil, nil, err
	}
	counts := make(map[string]int)
	for _, s := range sites {
		counts[s.file+":"+s.fn]++
	}
	return counts, sites, nil
}

// parseBCE extracts the bounds-check sites in the gated files from the
// compiler output, resolving each to its enclosing function.
func parseBCE(output string, gated map[string]bool, spans map[string][]funcSpan) ([]site, error) {
	var sites []site
	sc := bufio.NewScanner(strings.NewReader(output))
	for sc.Scan() {
		m := bceLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		base := filepath.Base(m[1])
		if !gated[base] {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fn := funcAt(spans[base], line)
		if fn == "" {
			return nil, fmt.Errorf("%s:%d: bounds check outside any function", base, line)
		}
		sites = append(sites, site{file: base, line: line, col: col, kind: m[4], fn: fn})
	}
	return sites, sc.Err()
}

// funcSpan is one top-level function's line range within a file.
type funcSpan struct {
	name       string
	begin, end int
}

// funcSpans parses each gated file and maps it to its function spans.
// Methods are keyed Recv.Name so the allowlist reads like the fact keys
// in internal/lint.
func funcSpans(dir string, gated map[string]bool) (map[string][]funcSpan, error) {
	fset := token.NewFileSet()
	out := make(map[string][]funcSpan)
	for base := range gated {
		f, err := parser.ParseFile(fset, filepath.Join(dir, base), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if r := recvTypeName(fd.Recv.List[0].Type); r != "" {
					name = r + "." + name
				}
			}
			out[base] = append(out[base], funcSpan{
				name:  name,
				begin: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			})
		}
	}
	return out, nil
}

func recvTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return ""
}

func funcAt(spans []funcSpan, line int) string {
	for _, s := range spans {
		if line >= s.begin && line <= s.end {
			return s.name
		}
	}
	return ""
}

// compare returns one human-readable violation per function whose
// bounds-check count exceeds (or newly misses) the allowlist, naming
// the exact sites. Counts below the allowlist are reported too — the
// allowlist should be refreshed so the win is locked in.
func compare(counts map[string]int, allowed map[string]int, sites []site) []string {
	var out []string
	keys := make(map[string]bool, len(counts)+len(allowed))
	for k := range counts {
		keys[k] = true
	}
	for k := range allowed {
		keys[k] = true
	}
	for _, k := range sortedKeys(keys) {
		got, want := counts[k], allowed[k]
		if got == want {
			continue
		}
		if got > want {
			msg := fmt.Sprintf("%s: %d bounds checks, allowlist permits %d:", k, got, want)
			for _, s := range sites {
				if s.file+":"+s.fn == k {
					msg += fmt.Sprintf("\n    %s:%d:%d: Found %s (in %s)", s.file, s.line, s.col, s.kind, s.fn)
				}
			}
			out = append(out, msg)
		} else {
			out = append(out, fmt.Sprintf("%s: %d bounds checks, allowlist expects %d — elimination improved; run -update to lock it in", k, got, want))
		}
	}
	return out
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// pkgDir resolves the package's source directory.
func pkgDir(pkg string) (string, error) {
	out, err := exec.Command("go", "list", "-f", "{{.Dir}}", pkg).Output()
	if err != nil {
		return "", fmt.Errorf("go list %s: %v", pkg, err)
	}
	return strings.TrimSpace(string(out)), nil
}

func (c config) allowlistPath() (string, error) {
	if c.allowlist != "" {
		return c.allowlist, nil
	}
	dir, err := pkgDir(c.pkg)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "bce_allowlist.txt"), nil
}

// readAllowlist parses "file:func count" lines; #-comments and blanks
// are skipped.
func readAllowlist(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"file:func count\", got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, i+1, fields[1])
		}
		out[fields[0]] = n
	}
	return out, nil
}

// writeAllowlist emits the allowlist sorted by key with a header
// explaining the contract.
func writeAllowlist(path string, counts map[string]int) error {
	keys := make(map[string]bool, len(counts))
	for k := range counts {
		keys[k] = true
	}
	var b strings.Builder
	b.WriteString("# Bounds checks the compiler keeps in the gated float32 kernel files\n")
	b.WriteString("# (-d=ssa/check_bce output, counted per function). make check-bce fails\n")
	b.WriteString("# when a count rises — a bounds check was reintroduced into a hot loop —\n")
	b.WriteString("# and when one falls, so improvements get locked in too.\n")
	b.WriteString("# Regenerate deliberately with: go run ./cmd/bcecheck -update\n")
	for _, k := range sortedKeys(keys) {
		fmt.Fprintf(&b, "%s %d\n", k, counts[k])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
