// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run all|fig1|tab1|tab2|tab3|fig9|tab4|fig10|tab5|ablation|tournament]
//	            [-full] [-spec "families=JOB;sizes=4,8,12;seed=1"] [-out BENCH_10.json]
//	            [-stats] [-obs-addr host:port] [-log-level debug|info|warn|error]
//
// -run tournament races every selector (Top-kBen, IterView, DQN, local
// search, exact ILP where |Z| permits) across the workload families at
// growing |Z|; -spec tunes the grid (see experiments.ParseTournamentSpec)
// and -out writes the machine-readable frontier JSON. The run fails if
// the differential gate (per-selector optimality-gap bounds on |Z| ≤
// ilpmax rungs) does not hold.
//
// By default a reduced-budget ("quick") configuration is used; -full runs
// the Table II budgets on the full-size workloads.
//
// The observability flags are shared with viewgen and documented in
// OBSERVABILITY.md; long -full runs are the main consumer of -obs-addr's
// live /metrics and /debug/pprof endpoints.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autoview/internal/experiments"
	"autoview/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment id: all, fig1, tab1, tab2, tab3, fig9, tab4, fig10, tab5, ablation, tournament")
	full := flag.Bool("full", false, "use the full Table II budgets (slower)")
	spec := flag.String("spec", "", "tournament grid spec, e.g. families=JOB;sizes=4,8,12;seed=1")
	out := flag.String("out", "", "write the tournament frontier JSON to this file")
	stats := flag.Bool("stats", false, "print the observability registry snapshot after the run")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	logLevel := flag.String("log-level", "", "stream structured events to stderr at this level: debug, info, warn, error")
	flag.Parse()

	if h, err := obs.Setup(*stats, *obsAddr, *logLevel, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	} else if h.Addr() != "" {
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s\n", h.Addr())
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = []string{"fig1", "tab1", "tab2", "tab3", "fig9", "tab4", "fig10", "tab5", "ablation"}
	}
	for _, id := range ids {
		start := time.Now()
		text, err := runOne(strings.TrimSpace(id), scale, *spec, *out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(text)
		fmt.Printf("  (%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *stats {
		fmt.Print("\nobservability snapshot:\n", obs.Default.Snapshot().Text())
	}
}

func runOne(id string, scale experiments.Scale, spec, out string) (string, error) {
	switch id {
	case "tournament":
		ts, err := experiments.ParseTournamentSpec(spec)
		if err != nil {
			return "", err
		}
		r, err := experiments.Tournament(scale, ts)
		if err != nil {
			return "", err
		}
		if err := r.Check(); err != nil {
			return "", err
		}
		if out != "" {
			data, err := r.JSON()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	case "fig1":
		r, err := experiments.Fig1(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "tab1":
		r, err := experiments.Tab1(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "tab2":
		return experiments.Tab2(), nil
	case "tab3":
		r, err := experiments.Tab3(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig9":
		r, err := experiments.Fig9(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "tab4":
		r, err := experiments.Tab4(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig10":
		r, err := experiments.Fig10(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "tab5":
		r, err := experiments.Tab5(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "ablation":
		r, err := experiments.Ablations(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}
