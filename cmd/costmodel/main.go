// Command costmodel trains the Wide-Deep cost estimator on a workload's
// measured (query, view, cost) pairs, evaluates it on a held-out split,
// and optionally persists the trained weights — the offline-training
// component of the paper's Figure 3.
//
// Usage:
//
//	costmodel [-workload job|wk1|wk2] [-variant wd|nkw|nstr|nexp]
//	          [-epochs N] [-save model.json] [-load model.json]
//	          [-stats] [-obs-addr host:port] [-log-level debug|info|warn|error]
//
// The observability flags are shared with viewgen and documented in
// OBSERVABILITY.md; -stats prints the wd.train/wd.infer metrics after the
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autoview/internal/costbase"
	"autoview/internal/engine"
	"autoview/internal/equiv"
	"autoview/internal/featenc"
	"autoview/internal/metrics"
	"autoview/internal/obs"
	"autoview/internal/rewrite"
	"autoview/internal/widedeep"
	"autoview/internal/workload"
	"math/rand"
)

func main() {
	wl := flag.String("workload", "job", "workload: job, wk1, wk2")
	variant := flag.String("variant", "wd", "architecture: wd, nkw, nstr, nexp")
	epochs := flag.Int("epochs", 25, "training epochs (Algorithm 1's I)")
	savePath := flag.String("save", "", "persist trained weights to this file")
	loadPath := flag.String("load", "", "load weights instead of training")
	seed := flag.Int64("seed", 17, "random seed")
	stats := flag.Bool("stats", false, "print the observability registry snapshot after the run")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	logLevel := flag.String("log-level", "", "stream structured events to stderr at this level: debug, info, warn, error")
	flag.Parse()

	if h, err := obs.Setup(*stats, *obsAddr, *logLevel, os.Stderr); err != nil {
		fail(err)
	} else if h.Addr() != "" {
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s\n", h.Addr())
	}

	w, err := pickWorkload(*wl)
	if err != nil {
		fail(err)
	}
	encCfg, err := pickVariant(*variant)
	if err != nil {
		fail(err)
	}

	fmt.Printf("measuring (query, view) pairs on %s...\n", w.Name)
	samples, err := measurePairs(w)
	if err != nil {
		fail(err)
	}
	trainIdx, _, testIdx := metrics.Split(len(samples), 0.7, 0.1, *seed)
	fmt.Printf("%d pairs: %d train / %d test\n", len(samples), len(trainIdx), len(testIdx))

	vocab := featenc.NewVocab(w.Cat, featenc.CollectPlanKeywords(w.Plans()))
	encCfg.EmbedDim, encCfg.Hidden = 16, 16
	model := widedeep.New(vocab, widedeep.Config{Encoder: encCfg}, rand.New(rand.NewSource(*seed)))

	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := model.Load(f); err != nil {
			fail(err)
		}
		fmt.Printf("loaded weights from %s\n", *loadPath)
	} else {
		var train []widedeep.Sample
		for _, i := range trainIdx {
			train = append(train, widedeep.Sample{F: samples[i].F, Y: samples[i].Actual})
		}
		fmt.Printf("training %s for %d epochs...\n", widedeep.VariantName(encCfg), *epochs)
		losses, err := model.Fit(train, widedeep.TrainConfig{
			Epochs: *epochs, LearnRate: 0.005, BatchSize: 16, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("training loss: first=%.4f last=%.4f\n", losses[0], losses[len(losses)-1])
	}

	var y, yhat []float64
	var mean float64
	for _, i := range testIdx {
		y = append(y, samples[i].Actual)
		yhat = append(yhat, model.Predict(samples[i].F))
		mean += samples[i].Actual
	}
	mean /= float64(len(y))
	// MAPE over pairs with cost ≥ 5% of the mean (relative error on
	// near-zero costs is meaningless), matching the experiments harness.
	var yf, yhatf []float64
	for i := range y {
		if y[i] >= 0.05*mean {
			yf = append(yf, y[i])
			yhatf = append(yhatf, yhat[i])
		}
	}
	fmt.Printf("held-out: MAE=%.4f cost units, MAPE=%.2f%%\n",
		metrics.MAE(y, yhat), metrics.MAPE(yf, yhatf))

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := model.Save(f); err != nil {
			fail(err)
		}
		fmt.Printf("weights saved to %s\n", *savePath)
	}

	if *stats {
		fmt.Print("\nobservability snapshot:\n", obs.Default.Snapshot().Text())
	}
}

// measurePairs executes every (associated query, candidate view) rewrite
// on the engine to collect training targets.
func measurePairs(w *workload.Workload) ([]costbase.Sample, error) {
	st := w.Populate()
	exec := engine.New(st)
	mgr := rewrite.NewManager(st)
	pricing := engine.DefaultPricing()
	pre := equiv.Preprocess(w.Plans(), nil)
	var out []costbase.Sample
	for _, cand := range pre.Candidates {
		v, err := mgr.Materialize(cand.Plan)
		if err != nil {
			return nil, err
		}
		for _, qi := range cand.Queries {
			q := w.Queries[qi].Plan
			rw, n := rewrite.Rewrite(q, []*rewrite.View{v})
			if n == 0 {
				continue
			}
			u, err := exec.Cost(rw)
			if err != nil {
				return nil, err
			}
			out = append(out, costbase.Sample{
				Q: q, V: cand.Plan,
				F:      featenc.Extract(q, cand.Plan, w.Cat),
				Actual: u.Cost(pricing) * 1e4,
			})
		}
	}
	return out, nil
}

func pickWorkload(name string) (*workload.Workload, error) {
	switch strings.ToLower(name) {
	case "job":
		return workload.JOB(), nil
	case "wk1":
		return workload.WK1(), nil
	case "wk2":
		return workload.WK2(), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func pickVariant(name string) (featenc.Config, error) {
	switch strings.ToLower(name) {
	case "wd", "w-d":
		return featenc.Config{}, nil
	case "nkw", "n-kw":
		return featenc.Config{KeywordOneHot: true}, nil
	case "nstr", "n-str":
		return featenc.Config{StringOneHot: true}, nil
	case "nexp", "n-exp":
		return featenc.Config{NoSequence: true}, nil
	default:
		return featenc.Config{}, fmt.Errorf("unknown variant %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "costmodel:", err)
	os.Exit(1)
}
