GO ?= go

.PHONY: build test test-race test-race-full test-alloc test-crash fuzz-smoke tournament-smoke bench bench-train bench-obs bench-serve bench-cold bench-predict vet lint autoviewlint check-bce

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree. Short mode keeps it
# CI-friendly; the concurrent hot spots (the nn.Trainer worker pool,
# core's parallel benefit measurement, rl's replay-batch Q-updates, the
# obs HTTP endpoint, and the serve micro-batcher + view-set rotation)
# all exercise their goroutines under -short.
test-race:
	$(GO) test -race -short ./...

# Unabridged race pass: every test, no -short. The deterministic
# single-goroutine experiment pipelines skip themselves under the race
# build tag (they are 10-20x slower instrumented and spawn no
# goroutines), so this stays within a CI budget while still covering
# every concurrent path at full depth. Runs as its own CI job.
test-race-full:
	$(GO) test -race -count=1 -timeout 20m ./...

# Allocation-regression gate: steady-state Predict must allocate zero,
# the serve micro-batcher's per-pair cost must stay allocation-free, the
# warm fingerprint-cached /v1/estimate handler must stay within its
# per-request budget, and fingerprinting itself must be zero-alloc (see
# internal/widedeep/infer_test.go, internal/serve/alloc_test.go, and
# internal/sqlparse/fingerprint_test.go).
test-alloc:
	$(GO) test -run 'Alloc|AllocsBatchSizeIndependent|ArenaConverges' ./internal/widedeep/ ./internal/serve/ ./internal/nn/ ./internal/sqlparse/ -v -count=1

# Crash-recovery fault injection (DURABILITY in SERVING.md): the WAL
# sweep kills a child process at every record boundary and mid-record
# during a scripted session, then asserts recovery reconstructs the
# surviving prefix exactly; the serve-level sweep does the same through
# a full advisor session and compares the recovered window, view set,
# and /v1/estimate responses byte-for-byte against a never-crashed run.
test-crash:
	$(GO) test -run 'TestCrash|TestServeCrash' -count=1 -v ./internal/durable/ ./internal/serve/

# Short native-fuzz pass over the API JSON decode paths, the query
# fingerprint canonicalizer, the WAL record decoder, and the tournament
# spec parser (seeds + 10s of mutation per target).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzEstimateDecode -fuzztime 10s ./internal/serve/
	$(GO) test -run '^$$' -fuzz FuzzAdviseDecode -fuzztime 10s ./internal/serve/
	$(GO) test -run '^$$' -fuzz FuzzFingerprint -fuzztime 10s ./internal/sqlparse/
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/durable/
	$(GO) test -run '^$$' -fuzz FuzzTournamentSpec -fuzztime 10s ./internal/experiments/

# Tiny selector tournament as a differential gate: every selector
# (Top-kBen, IterView, DQN, local search, exact ILP) completes on small
# JOB rungs and holds its asserted optimality-gap bound; the run fails on
# any violation (see EXPERIMENTS.md "Tournament" and BENCH_10.json).
tournament-smoke:
	$(GO) run ./cmd/experiments -run tournament -spec "families=JOB;sizes=4,8"

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Just the data-parallel trainer micro-benchmark (serial vs parallel).
bench-train:
	$(GO) test -bench=BenchmarkNNTrainStep -run=^$$ .

# Disabled-path observability overhead guard (< 5 ns/op; OBSERVABILITY.md).
bench-obs:
	$(GO) test -bench=ObsOverhead -run=^$$ ./internal/obs/

# Online-serving throughput: req/s through the micro-batching inference
# scheduler at Parallelism 1/4/8, cold (cache disabled) and warm
# (fingerprint cache primed) — see SERVING.md and BENCH_6.json.
bench-serve:
	$(GO) test -bench=BenchmarkServeEstimate -benchmem -run=^$$ .

# Cold estimate path only (caches disabled): SQL parse + batched featenc
# + the f32 inference kernels, every request. This is the number BENCH_7
# records; run with -benchtime 3s for stable pairs/s (PERFORMANCE.md).
bench-cold:
	$(GO) test -bench='BenchmarkServeEstimate/cold' -benchmem -benchtime 3s -run=^$$ .

# Zero-allocation inference fast path: ns/op and allocs/op of a single
# steady-state Model.Predict (EXPERIMENTS.md).
bench-predict:
	$(GO) test -bench=BenchmarkPredictAlloc -benchmem -run=^$$ .

vet:
	$(GO) vet ./...

# Formatting (simplify mode) + vet + the repo's own analyzer suite
# (LINTING.md) + the bounds-check-elimination gate over the f32 kernels;
# fails listing any file gofmt -s would rewrite.
lint: bin/autoviewlint check-bce
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/bin/autoviewlint ./...

# Bounds-check-elimination regression gate: internal/nn's float32
# kernels must keep the per-function counts pinned in
# internal/nn/bce_allowlist.txt (PERFORMANCE.md "BCE gate"). Refresh a
# deliberate change with: go run ./cmd/bcecheck -update
check-bce:
	$(GO) run ./cmd/bcecheck

LINT_SRC := $(wildcard internal/lint/*.go cmd/autoviewlint/*.go) go.mod

# Build the determinism/resource-discipline analyzer suite
# (internal/lint) as a go vet tool. Also runnable standalone:
# bin/autoviewlint ./...  Rebuilds only when analyzer sources change.
bin/autoviewlint: $(LINT_SRC)
	$(GO) build -o bin/autoviewlint ./cmd/autoviewlint

autoviewlint: bin/autoviewlint
