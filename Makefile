GO ?= go

.PHONY: build test test-race bench bench-train bench-obs vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that run concurrent training:
# the nn.Trainer worker pool, core's parallel benefit measurement, and
# rl's replay-batch Q-updates. Short mode keeps it CI-friendly.
test-race:
	$(GO) test -race -short ./internal/nn/... ./internal/core/... ./internal/rl/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Just the data-parallel trainer micro-benchmark (serial vs parallel).
bench-train:
	$(GO) test -bench=BenchmarkNNTrainStep -run=^$$ .

# Disabled-path observability overhead guard (< 5 ns/op; OBSERVABILITY.md).
bench-obs:
	$(GO) test -bench=ObsOverhead -run=^$$ ./internal/obs/

vet:
	$(GO) vet ./...

# Formatting + vet gate; fails listing any file gofmt would rewrite.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
