GO ?= go

.PHONY: build test test-race bench bench-train bench-obs bench-serve vet lint autoviewlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree. Short mode keeps it
# CI-friendly; the concurrent hot spots (the nn.Trainer worker pool,
# core's parallel benefit measurement, rl's replay-batch Q-updates, the
# obs HTTP endpoint, and the serve micro-batcher + view-set rotation)
# all exercise their goroutines under -short.
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Just the data-parallel trainer micro-benchmark (serial vs parallel).
bench-train:
	$(GO) test -bench=BenchmarkNNTrainStep -run=^$$ .

# Disabled-path observability overhead guard (< 5 ns/op; OBSERVABILITY.md).
bench-obs:
	$(GO) test -bench=ObsOverhead -run=^$$ ./internal/obs/

# Online-serving throughput: req/s through the micro-batching inference
# scheduler at Parallelism 1/4/8 (SERVING.md).
bench-serve:
	$(GO) test -bench=BenchmarkServeEstimate -run=^$$ .

vet:
	$(GO) vet ./...

# Formatting (simplify mode) + vet + the repo's own analyzer suite
# (LINTING.md); fails listing any file gofmt -s would rewrite.
lint: autoviewlint
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/bin/autoviewlint ./...

# Build the determinism/observability analyzer suite (internal/lint)
# as a go vet tool. Also runnable standalone: bin/autoviewlint ./...
autoviewlint:
	$(GO) build -o bin/autoviewlint ./cmd/autoviewlint
