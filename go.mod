module autoview

go 1.22
