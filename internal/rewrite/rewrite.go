// Package rewrite materializes views on subquery plans and rewrites query
// plans to scan those views instead of recomputing the subqueries — the
// "query engine" responsibilities the paper's system relies on (Fig. 3:
// materialized views feed the query engine which executes the rewritten
// workload).
package rewrite

import (
	"fmt"
	"sort"

	"autoview/internal/catalog"
	"autoview/internal/engine"
	"autoview/internal/plan"
	"autoview/internal/storage"
)

// View is a materialized view built on a subquery.
type View struct {
	ID          string
	Fingerprint plan.Fingerprint
	// Plan is the subquery plan the view was built on.
	Plan *plan.Node
	// TableName is the backing table in the store.
	TableName string
	// Meta is the backing table's schema (not registered in the user
	// catalog: views live in their own namespace).
	Meta *catalog.Table
	// BuildUsage is the metered cost of computing the view's contents;
	// together with the stored bytes it determines the overhead O_vs
	// (Definition 3).
	BuildUsage engine.Usage
}

// Overhead returns O_vs = Aα(vs) + A_{β,γ}(s) under the pricing
// (Definition 3).
func (v *View) Overhead(p engine.Pricing) float64 {
	return v.BuildUsage.TotalViewOverhead(p)
}

// Manager materializes and drops views against a store.
type Manager struct {
	Store *storage.Store
	Exec  *engine.Executor

	views map[plan.Fingerprint]*View
	seq   int
}

// NewManager returns a manager over the store.
func NewManager(store *storage.Store) *Manager {
	return &Manager{
		Store: store,
		Exec:  engine.New(store),
		views: make(map[plan.Fingerprint]*View),
	}
}

// Materialize executes the subquery plan and stores its result as a view.
// Views are keyed by normalized fingerprint, so materializing an
// equivalent subquery returns the existing view.
func (m *Manager) Materialize(sub *plan.Node) (*View, error) {
	fp := plan.NormalizedFingerprint(sub)
	if v, ok := m.views[fp]; ok {
		return v, nil
	}
	res, usage, err := m.Exec.Execute(sub)
	if err != nil {
		return nil, fmt.Errorf("rewrite: materialize: %w", err)
	}
	m.seq++
	name := fmt.Sprintf("mv_%d", m.seq)
	meta := &catalog.Table{
		Name:    name,
		Columns: viewColumns(res.Schema),
		Stats: catalog.TableStats{
			Rows:    len(res.Rows),
			Bytes:   res.Bytes(),
			NumCols: len(res.Schema),
		},
	}
	tbl := storage.NewTable(meta)
	tbl.Rows = res.Rows
	m.Store.Put(tbl)
	v := &View{
		ID:          name,
		Fingerprint: fp,
		Plan:        sub.Clone(),
		TableName:   name,
		Meta:        meta,
		BuildUsage:  usage,
	}
	m.views[fp] = v
	return v, nil
}

// viewColumns derives catalog columns from a plan schema, disambiguating
// duplicate names (a join output can expose the same column name twice).
func viewColumns(schema []plan.ColInfo) []catalog.Column {
	seen := make(map[string]int, len(schema))
	cols := make([]catalog.Column, len(schema))
	for i, c := range schema {
		name := c.Name
		if n := seen[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n+1)
		}
		seen[c.Name]++
		cols[i] = catalog.Column{Name: name, Type: c.Type, Distinct: 0}
	}
	return cols
}

// Drop removes a view's backing table.
func (m *Manager) Drop(v *View) {
	m.Store.Drop(v.TableName)
	delete(m.views, v.Fingerprint)
}

// DropAll removes every managed view.
func (m *Manager) DropAll() {
	for _, v := range m.views {
		m.Store.Drop(v.TableName)
	}
	m.views = make(map[plan.Fingerprint]*View)
}

// View returns the managed view for a fingerprint.
func (m *Manager) View(fp plan.Fingerprint) (*View, bool) {
	v, ok := m.views[fp]
	return v, ok
}

// Views returns all managed views in fingerprint order, so callers that
// iterate the result (rewrite passes, reports) stay deterministic.
func (m *Manager) Views() []*View {
	out := make([]*View, 0, len(m.views))
	for _, v := range m.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// Rewrite returns a copy of root where every occurrence of each view's
// subquery is replaced by a scan of the view's backing table, plus the
// number of replacements. Views must be mutually non-overlapping for the
// result to be well-defined; nested occurrences are rewritten outermost-
// first, so an inner occurrence that disappears inside an already-replaced
// subtree is simply not counted.
func Rewrite(root *plan.Node, views []*View) (*plan.Node, int) {
	cp := root.Clone()
	replaced := 0
	for _, v := range views {
		replaced += replaceOccurrences(cp, v)
	}
	return cp, replaced
}

// replaceOccurrences rewrites all occurrences of v's fingerprint in the
// tree (pre-order, skipping descendants of replaced nodes).
func replaceOccurrences(n *plan.Node, v *View) int {
	if matchesView(n, v) {
		toViewScan(n, v)
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += replaceOccurrences(c, v)
	}
	return total
}

// matchesView compares normalized fingerprints, so an occurrence matches
// even when the query spells the subquery in a different but equivalent
// form (stacked filters, redundant projections, commuted joins).
// Normalization preserves the root's output schema, so the in-place
// replacement below stays type- and position-correct.
func matchesView(n *plan.Node, v *View) bool {
	if n.Op == plan.OpScan {
		return false // already a base-table or view scan
	}
	return plan.NormalizedFingerprint(n) == v.Fingerprint
}

// toViewScan mutates n in place into a scan of the view's table. The
// original output schema is preserved so parent column indices stay valid.
func toViewScan(n *plan.Node, v *View) {
	schema := n.Schema
	*n = plan.Node{Op: plan.OpScan, Table: v.TableName, Schema: schema}
}

// Benefit measures B(q,vs) = A(q) - A(q|vs) by executing both the original
// and the rewritten plan (Definition 4). It returns the benefit in dollars
// together with both usages. If the view does not occur in q, the benefit
// is zero and rewritten usage equals the original.
func Benefit(exec *engine.Executor, root *plan.Node, v *View, p engine.Pricing) (float64, engine.Usage, engine.Usage, error) {
	origUsage, err := exec.Cost(root)
	if err != nil {
		return 0, engine.Usage{}, engine.Usage{}, err
	}
	rewritten, nrepl := Rewrite(root, []*View{v})
	if nrepl == 0 {
		return 0, origUsage, origUsage, nil
	}
	rwUsage, err := exec.Cost(rewritten)
	if err != nil {
		return 0, engine.Usage{}, engine.Usage{}, err
	}
	return origUsage.Cost(p) - rwUsage.Cost(p), origUsage, rwUsage, nil
}
