package rewrite

import (
	"math/rand"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/engine"
	"autoview/internal/plan"
	"autoview/internal/storage"
)

func testEnv(t *testing.T) (*catalog.Catalog, *storage.Store) {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "memo", Type: catalog.TypeString, Distinct: 20},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 400},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "action", Type: catalog.TypeString, Distinct: 10},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 600},
		},
	} {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	return cat, storage.Populate(cat, rand.New(rand.NewSource(11)))
}

const exampleSQL = `select t1.user_id, count(*) as cnt
from ( select user_id, memo from user_memo where dt='v1' and memo_type = 'v2' ) t1
inner join ( select user_id, action from user_action where type = 1 and dt='v1' ) t2
on t1.user_id = t2.user_id group by t1.user_id`

func TestMaterializeAndRewritePreservesResults(t *testing.T) {
	cat, st := testEnv(t)
	root, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.New(st)
	orig, origUsage, err := exec.Execute(root)
	if err != nil {
		t.Fatal(err)
	}

	mgr := NewManager(st)
	subs := plan.ExtractSubqueries(root)
	if len(subs) != 3 {
		t.Fatalf("want 3 subqueries, got %d", len(subs))
	}
	for _, s := range subs {
		v, err := mgr.Materialize(s.Root)
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		rw, nrepl := Rewrite(root, []*View{v})
		if nrepl != 1 {
			t.Fatalf("view %s: want 1 replacement, got %d", v.ID, nrepl)
		}
		got, rwUsage, err := exec.Execute(rw)
		if err != nil {
			t.Fatalf("execute rewritten: %v", err)
		}
		assertSameResult(t, orig, got)
		if rwUsage.CPUOps >= origUsage.CPUOps {
			t.Errorf("view %s: rewritten CPU %d >= original %d", v.ID, rwUsage.CPUOps, origUsage.CPUOps)
		}
	}
}

func assertSameResult(t *testing.T, a, b *engine.Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	// Results are sets (group-by output order may differ); compare as
	// multisets keyed on rendered rows.
	count := map[string]int{}
	render := func(r storage.Row) string {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		return s
	}
	for _, r := range a.Rows {
		count[render(r)]++
	}
	for _, r := range b.Rows {
		count[render(r)]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("row multiset differs at %s (delta %d)", k, c)
		}
	}
}

func TestRewriteBothLeaves(t *testing.T) {
	cat, st := testEnv(t)
	root, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(st)
	subs := plan.ExtractSubqueries(root)
	var leaves []*View
	for _, s := range subs {
		if s.Root.Op == plan.OpProject {
			v, err := mgr.Materialize(s.Root)
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, v)
		}
	}
	if len(leaves) != 2 {
		t.Fatalf("want 2 project views, got %d", len(leaves))
	}
	rw, n := Rewrite(root, leaves)
	if n != 2 {
		t.Fatalf("want 2 replacements, got %d", n)
	}
	exec := engine.New(st)
	orig, _, err := exec.Execute(root)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := exec.Execute(rw)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, orig, got)
}

func TestNestedViewOutermostWins(t *testing.T) {
	cat, st := testEnv(t)
	root, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(st)
	subs := plan.ExtractSubqueries(root)
	var join, proj *View
	for _, s := range subs {
		v, err := mgr.Materialize(s.Root)
		if err != nil {
			t.Fatal(err)
		}
		if s.Root.Op == plan.OpJoin {
			join = v
		} else if proj == nil {
			proj = v
		}
	}
	// Rewriting with the join view first consumes the projects beneath.
	rw, n := Rewrite(root, []*View{join, proj})
	if n != 1 {
		t.Fatalf("want 1 replacement (outermost), got %d", n)
	}
	exec := engine.New(st)
	orig, _, err := exec.Execute(root)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := exec.Execute(rw)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, orig, got)
}

func TestMaterializeIdempotent(t *testing.T) {
	cat, st := testEnv(t)
	root, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(st)
	sub := plan.ExtractSubqueries(root)[0]
	v1, err := mgr.Materialize(sub.Root)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := mgr.Materialize(sub.Root)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("second Materialize should return the same view")
	}
	if len(mgr.Views()) != 1 {
		t.Errorf("manager holds %d views, want 1", len(mgr.Views()))
	}
}

func TestDropRemovesBackingTable(t *testing.T) {
	cat, st := testEnv(t)
	root, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(st)
	sub := plan.ExtractSubqueries(root)[0]
	v, err := mgr.Materialize(sub.Root)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(v.TableName); !ok {
		t.Fatal("backing table missing after materialize")
	}
	mgr.Drop(v)
	if _, ok := st.Get(v.TableName); ok {
		t.Error("backing table still present after drop")
	}
	if _, ok := mgr.View(v.Fingerprint); ok {
		t.Error("view still registered after drop")
	}
}

func TestBenefitPositiveAndZero(t *testing.T) {
	cat, st := testEnv(t)
	root, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.New(st)
	p := engine.DefaultPricing()
	mgr := NewManager(st)
	subs := plan.ExtractSubqueries(root)
	for _, s := range subs {
		v, err := mgr.Materialize(s.Root)
		if err != nil {
			t.Fatal(err)
		}
		b, _, _, err := Benefit(exec, root, v, p)
		if err != nil {
			t.Fatal(err)
		}
		if b <= 0 {
			t.Errorf("view %s: benefit %v, want positive", v.ID, b)
		}
	}
	// A view over an unrelated query has zero benefit.
	other, err := plan.Parse("select user_id from user_memo where dt='v3'", cat)
	if err != nil {
		t.Fatal(err)
	}
	otherView, err := mgr.Materialize(other)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := Benefit(exec, root, otherView, p)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Errorf("unrelated view benefit = %v, want 0", b)
	}
}

func TestViewColumnsDisambiguation(t *testing.T) {
	schema := []plan.ColInfo{
		{Name: "user_id", Type: catalog.TypeInt},
		{Name: "user_id", Type: catalog.TypeInt},
		{Name: "x", Type: catalog.TypeString},
	}
	cols := viewColumns(schema)
	if cols[0].Name != "user_id" || cols[1].Name != "user_id_2" || cols[2].Name != "x" {
		t.Errorf("viewColumns = %+v", cols)
	}
}

func TestViewOverhead(t *testing.T) {
	cat, st := testEnv(t)
	root, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(st)
	v, err := mgr.Materialize(plan.ExtractSubqueries(root)[0].Root)
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultPricing()
	if v.Overhead(p) <= 0 {
		t.Error("overhead should be positive")
	}
	if v.Overhead(p) != v.BuildUsage.TotalViewOverhead(p) {
		t.Error("Overhead should match BuildUsage.TotalViewOverhead")
	}
}
