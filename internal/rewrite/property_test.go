package rewrite

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/engine"
	"autoview/internal/plan"
	"autoview/internal/storage"
)

// randCatalog builds a random 2-4 table catalog with a shared join key.
func randCatalog(rng *rand.Rand) *catalog.Catalog {
	cat := catalog.New()
	n := 2 + rng.Intn(3)
	for t := 0; t < n; t++ {
		cols := []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, Distinct: 10 + rng.Intn(30)},
			{Name: "a", Type: catalog.TypeInt, Distinct: 2 + rng.Intn(6)},
			{Name: "b", Type: catalog.TypeString, Distinct: 2 + rng.Intn(5)},
			{Name: "c", Type: catalog.TypeFloat, Distinct: 5 + rng.Intn(20)},
		}
		if err := cat.Add(&catalog.Table{
			Name:    fmt.Sprintf("t%d", t),
			Columns: cols,
			Stats:   catalog.TableStats{Rows: 50 + rng.Intn(300)},
		}); err != nil {
			panic(err)
		}
	}
	return cat
}

// randPred emits 1-3 random conjuncts over columns a, b, c of a table.
func randPred(rng *rand.Rand, cat *catalog.Catalog, table string) []string {
	t := cat.MustTable(table)
	var preds []string
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			col, _ := t.Column("a")
			preds = append(preds, fmt.Sprintf("a = %d", rng.Intn(col.Distinct)))
		case 1:
			col, _ := t.Column("b")
			preds = append(preds, fmt.Sprintf("b = 'v%d'", rng.Intn(col.Distinct)))
		default:
			col, _ := t.Column("c")
			preds = append(preds, fmt.Sprintf("c < %d.5", rng.Intn(col.Distinct)))
		}
	}
	return preds
}

// randQuery emits a random query: derived table, optional join, optional
// aggregation. It returns the SQL plus the WHERE conjunct lists so
// transformations can shuffle them.
func randQuery(rng *rand.Rand, cat *catalog.Catalog) string {
	tables := cat.Tables()
	t1 := tables[rng.Intn(len(tables))].Name
	p1 := randPred(rng, cat, t1)
	left := fmt.Sprintf("( select k, a, c from %s where %s ) x", t1, strings.Join(p1, " and "))

	join := ""
	qual := "x"
	if rng.Intn(2) == 0 {
		t2 := tables[rng.Intn(len(tables))].Name
		p2 := randPred(rng, cat, t2)
		join = fmt.Sprintf(" inner join ( select k, b from %s where %s ) y on x.k = y.k",
			t2, strings.Join(p2, " and "))
		if rng.Intn(2) == 0 {
			qual = "y"
		}
	}

	if rng.Intn(2) == 0 && join != "" {
		col := "a"
		if qual == "y" {
			col = "b"
		}
		return fmt.Sprintf("select %s.%s, count(*) as n, sum(x.c) as s from %s%s group by %s.%s",
			qual, col, left, join, qual, col)
	}
	if join != "" {
		return fmt.Sprintf("select x.k, x.a, y.b from %s%s", left, join)
	}
	return fmt.Sprintf("select x.k, x.a from %s", left)
}

func execRows(t *testing.T, exec *engine.Executor, n *plan.Node) map[string]int {
	t.Helper()
	res, _, err := exec.Execute(n)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	out := map[string]int{}
	for _, row := range res.Rows {
		key := ""
		for _, v := range row {
			key += v.String() + "|"
		}
		out[key]++
	}
	return out
}

func sameRows(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestPropertyNormalizePreservesSemantics: Normalize(q) must compute the
// same relation as q on random data, and fingerprints must be stable
// under normalization idempotence.
func TestPropertyNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		cat := randCatalog(rng)
		store := storage.Populate(cat, rand.New(rand.NewSource(int64(trial))))
		exec := engine.New(store)
		sql := randQuery(rng, cat)
		q, err := plan.Parse(sql, cat)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		nq := plan.Normalize(q)
		if !sameRows(execRows(t, exec, q), execRows(t, exec, nq)) {
			t.Fatalf("trial %d: normalization changed results\nSQL: %s", trial, sql)
		}
		if plan.FingerprintOf(plan.Normalize(nq)) != plan.FingerprintOf(nq) {
			t.Fatalf("trial %d: Normalize is not idempotent", trial)
		}
	}
}

// TestPropertyConjunctShuffleInvariance: shuffling WHERE conjuncts keeps
// the normalized fingerprint and the results identical.
func TestPropertyConjunctShuffleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		cat := randCatalog(rng)
		tbl := cat.Tables()[0].Name
		preds := randPred(rng, cat, tbl)
		if len(preds) < 2 {
			preds = append(preds, "a = 0")
		}
		sql1 := fmt.Sprintf("select k from %s where %s", tbl, strings.Join(preds, " and "))
		shuffled := append([]string(nil), preds...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		sql2 := fmt.Sprintf("select k from %s where %s", tbl, strings.Join(shuffled, " and "))

		q1, err := plan.Parse(sql1, cat)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := plan.Parse(sql2, cat)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NormalizedFingerprint(q1) != plan.NormalizedFingerprint(q2) {
			t.Fatalf("trial %d: conjunct order changed fingerprint\n%s\n%s", trial, sql1, sql2)
		}
		store := storage.Populate(cat, rand.New(rand.NewSource(int64(trial))))
		exec := engine.New(store)
		if !sameRows(execRows(t, exec, q1), execRows(t, exec, q2)) {
			t.Fatalf("trial %d: conjunct order changed results", trial)
		}
	}
}

// TestPropertyRewritePreservesSemantics: for random queries, materializing
// any extracted subquery and rewriting must keep the result multiset
// identical while never increasing the metered cost.
func TestPropertyRewritePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	trials, rewrites := 0, 0
	for trial := 0; trial < 80; trial++ {
		cat := randCatalog(rng)
		store := storage.Populate(cat, rand.New(rand.NewSource(int64(trial)*3+1)))
		exec := engine.New(store)
		mgr := NewManager(store)
		sql := randQuery(rng, cat)
		q, err := plan.Parse(sql, cat)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		orig := execRows(t, exec, q)
		trials++
		for _, sub := range plan.ExtractSubqueries(q) {
			v, err := mgr.Materialize(sub.Root)
			if err != nil {
				t.Fatalf("trial %d: materialize: %v", trial, err)
			}
			rw, n := Rewrite(q, []*View{v})
			if n == 0 {
				continue
			}
			rewrites++
			got := execRows(t, exec, rw)
			// Semantics must be preserved. Note the metered cost is
			// NOT asserted: a many-to-many join view can cost more
			// to scan than to recompute — distinguishing those cases
			// is exactly the cost estimator's job.
			if !sameRows(orig, got) {
				t.Fatalf("trial %d: rewrite changed results\nSQL: %s\nview:\n%s",
					trial, sql, v.Plan)
			}
		}
	}
	if rewrites < 30 {
		t.Fatalf("only %d rewrites across %d trials; generator too weak", rewrites, trials)
	}
}

// TestPropertyAliasInvariance: renaming aliases never changes normalized
// fingerprints.
func TestPropertyAliasInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 40; trial++ {
		cat := randCatalog(rng)
		tbl := cat.Tables()[0].Name
		preds := strings.Join(randPred(rng, cat, tbl), " and ")
		sql1 := fmt.Sprintf("select u.k from ( select k, a from %s where %s ) u", tbl, preds)
		sql2 := fmt.Sprintf("select w.k from ( select k, a from %s where %s ) w", tbl, preds)
		q1, err := plan.Parse(sql1, cat)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := plan.Parse(sql2, cat)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NormalizedFingerprint(q1) != plan.NormalizedFingerprint(q2) {
			t.Fatalf("trial %d: alias changed fingerprint", trial)
		}
	}
}

// TestPropertyToSQLRoundTrip: rendering any random query plan back to SQL
// and re-parsing must preserve the computed relation.
func TestPropertyToSQLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		cat := randCatalog(rng)
		store := storage.Populate(cat, rand.New(rand.NewSource(int64(trial)*7+2)))
		exec := engine.New(store)
		sql := randQuery(rng, cat)
		orig, err := plan.Parse(sql, cat)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		rendered := plan.ToSQL(orig)
		back, err := plan.Parse(rendered, cat)
		if err != nil {
			t.Fatalf("trial %d: rendered SQL does not parse: %v\noriginal: %s\nrendered: %s",
				trial, err, sql, rendered)
		}
		a := execRows(t, exec, orig)
		b := execRows(t, exec, back)
		if !sameRows(a, b) {
			t.Fatalf("trial %d: ToSQL changed results\noriginal: %s\nrendered: %s",
				trial, sql, rendered)
		}
	}
}
