// Package equiv implements the paper's pre-process stage (Fig. 3):
// subquery extraction, equivalence detection, and subquery clustering.
//
// The paper detects equivalent subqueries with EQUITAS, an SMT-based
// checker. We substitute canonical-form equality on normalized plans
// (plan.Normalize + plan.FingerprintOf): aliases are ignored, conjunct and
// disjunct order is ignored, symmetric comparisons are ordered, inner joins
// are commuted, adjacent filters/projects are collapsed. On the query
// fragment our generators emit this test is sound (no false positives),
// which is what clustering requires; it is incomplete relative to a full
// SMT check, which only means some clusters may be split — never merged
// incorrectly.
package equiv

import (
	"sort"

	"autoview/internal/obs"
	"autoview/internal/plan"
)

// Pre-process stage metrics (see OBSERVABILITY.md). The sub-stage spans
// preprocess.decompose / preprocess.equiv_merge / preprocess.candidates /
// preprocess.overlap time the four phases of Preprocess.
var (
	obsSubqueries = obs.Default.Counter("preprocess.subqueries", "subqueries extracted across workloads")
	obsClusters   = obs.Default.Gauge("preprocess.clusters", "equivalence clusters in the last pre-process run")
	obsCandidates = obs.Default.Gauge("preprocess.candidates", "candidate views |Z| in the last pre-process run")
)

// Equivalent reports whether two subqueries compute the same relation under
// the canonical-form test.
func Equivalent(a, b *plan.Node) bool {
	return plan.NormalizedFingerprint(a) == plan.NormalizedFingerprint(b)
}

// Occurrence locates one subquery inside one workload query.
type Occurrence struct {
	Query    int // index into the workload's query list
	Subquery plan.Subquery
}

// Cluster is one equivalence class of subqueries across the workload.
type Cluster struct {
	ID          int
	Fingerprint plan.Fingerprint // normalized fingerprint
	Members     []Occurrence
	// Queries is the sorted set of distinct query indices sharing the
	// cluster.
	Queries []int
}

// SharedBy returns how many distinct queries contain a member.
func (c *Cluster) SharedBy() int { return len(c.Queries) }

// Pairs returns the number of equivalent subquery pairs contributed by the
// cluster: m·(m−1)/2 for m members.
func (c *Cluster) Pairs() int {
	m := len(c.Members)
	return m * (m - 1) / 2
}

// Candidate is the representative subquery chosen for a cluster: the
// member with the least overhead (Section III: "for each cluster, we
// select the subquery with the least overhead as the candidate subquery").
type Candidate struct {
	Cluster     *Cluster
	Plan        *plan.Node // normalized representative plan
	Fingerprint plan.Fingerprint
	// Queries are the workload query indices that can use a view built
	// on this candidate.
	Queries []int
	// Frequency is the total number of member occurrences across the
	// workload (TopkFreq's ranking signal).
	Frequency int
}

// Result is the output of the pre-process stage.
type Result struct {
	// Subqueries holds the extracted subqueries per query.
	Subqueries [][]plan.Subquery
	// Clusters holds all equivalence classes (singletons included).
	Clusters []*Cluster
	// Candidates holds representatives of clusters shared by at least
	// MinShare queries, ordered by cluster ID. This is the paper's Z.
	Candidates []*Candidate
	// Overlap[j][k] is the x_jk constant of the ILP: candidates j and k
	// are overlapping subqueries (Definition 5).
	Overlap [][]bool
	// EquivalentPairs is Table I's "# equivalent pairs".
	EquivalentPairs int
	// AssociatedQueries is the sorted set of query indices that can use
	// at least one candidate view: the paper's Q with |Q| = "#associated
	// query".
	AssociatedQueries []int
}

// OverlappingPairs counts candidate pairs marked overlapping (Table I's
// "# overlapping pairs").
func (r *Result) OverlappingPairs() int {
	n := 0
	for j := range r.Overlap {
		for k := j + 1; k < len(r.Overlap[j]); k++ {
			if r.Overlap[j][k] {
				n++
			}
		}
	}
	return n
}

// Options configures pre-processing.
type Options struct {
	// MinShare is the minimum number of distinct queries that must share
	// a cluster for it to yield a candidate. The default (2) reflects
	// the paper's goal of sharing computation *between* queries.
	MinShare int
	// CostOf ranks cluster members to pick the least-overhead
	// representative. When nil, members are ranked by operator count.
	CostOf func(*plan.Node) float64
}

func (o *Options) minShare() int {
	if o == nil || o.MinShare <= 0 {
		return 2
	}
	return o.MinShare
}

func (o *Options) costOf(n *plan.Node) float64 {
	if o == nil || o.CostOf == nil {
		return float64(n.Count())
	}
	return o.CostOf(n)
}

// Preprocess runs the full pre-process stage over a workload of query
// plans.
func Preprocess(queries []*plan.Node, opts *Options) *Result {
	res := &Result{Subqueries: make([][]plan.Subquery, len(queries))}

	// 1. Subquery extraction.
	stop := obs.StartSpan("preprocess.decompose")
	type memberKey struct {
		fp plan.Fingerprint
	}
	byFP := make(map[memberKey]*Cluster)
	nsub := 0
	for qi, q := range queries {
		subs := plan.ExtractSubqueries(q)
		res.Subqueries[qi] = subs
		nsub += len(subs)
		for _, s := range subs {
			nfp := plan.NormalizedFingerprint(s.Root)
			key := memberKey{fp: nfp}
			c, ok := byFP[key]
			if !ok {
				c = &Cluster{Fingerprint: nfp}
				byFP[key] = c
			}
			c.Members = append(c.Members, Occurrence{Query: qi, Subquery: s})
		}
	}
	obsSubqueries.Add(int64(nsub))
	stop()

	// 2. Cluster assembly with deterministic IDs (sorted by fingerprint).
	stop = obs.StartSpan("preprocess.equiv_merge")
	res.Clusters = make([]*Cluster, 0, len(byFP))
	for _, c := range byFP {
		qset := make(map[int]bool)
		for _, m := range c.Members {
			qset[m.Query] = true
		}
		c.Queries = sortedKeys(qset)
		res.Clusters = append(res.Clusters, c)
	}
	sort.Slice(res.Clusters, func(i, j int) bool {
		return res.Clusters[i].Fingerprint < res.Clusters[j].Fingerprint
	})
	for i, c := range res.Clusters {
		c.ID = i
		res.EquivalentPairs += c.Pairs()
	}
	obsClusters.Set(float64(len(res.Clusters)))
	stop()

	// 3. Candidate selection: least-overhead member of each sufficiently
	// shared cluster.
	stop = obs.StartSpan("preprocess.candidates")
	minShare := opts.minShare()
	assoc := make(map[int]bool)
	for _, c := range res.Clusters {
		if c.SharedBy() < minShare {
			continue
		}
		best := c.Members[0].Subquery.Root
		bestCost := opts.costOf(best)
		for _, m := range c.Members[1:] {
			if cost := opts.costOf(m.Subquery.Root); cost < bestCost {
				best, bestCost = m.Subquery.Root, cost
			}
		}
		cand := &Candidate{
			Cluster:     c,
			Plan:        plan.Normalize(best),
			Fingerprint: c.Fingerprint,
			Queries:     c.Queries,
			Frequency:   len(c.Members),
		}
		res.Candidates = append(res.Candidates, cand)
		for _, qi := range c.Queries {
			assoc[qi] = true
		}
	}
	res.AssociatedQueries = sortedKeys(assoc)
	obsCandidates.Set(float64(len(res.Candidates)))
	stop()

	// 4. Overlap matrix over candidates (Definition 5).
	stop = obs.StartSpan("preprocess.overlap")
	defer stop()
	n := len(res.Candidates)
	res.Overlap = make([][]bool, n)
	fps := make([]map[plan.Fingerprint]bool, n)
	for j, cand := range res.Candidates {
		fps[j] = plan.SubtreeFingerprints(cand.Plan)
		res.Overlap[j] = make([]bool, n)
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			if intersects(fps[j], fps[k]) {
				res.Overlap[j][k] = true
				res.Overlap[k][j] = true
			}
		}
	}
	return res
}

func intersects(a, b map[plan.Fingerprint]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for fp := range a {
		if b[fp] {
			return true
		}
	}
	return false
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
