package equiv

import (
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/plan"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "memo", Type: catalog.TypeString, Distinct: 20},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 400},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "action", Type: catalog.TypeString, Distinct: 10},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 600},
		},
	} {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func mustPlan(t *testing.T, cat *catalog.Catalog, sql string) *plan.Node {
	t.Helper()
	n, err := plan.Parse(sql, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return n
}

func TestEquivalentDetectsNormalizedForms(t *testing.T) {
	cat := testCatalog(t)
	// Same predicate split differently across aliases and conjunct order.
	a := mustPlan(t, cat, "select x.user_id from (select user_id from user_memo where dt='1' and memo_type='p') x")
	b := mustPlan(t, cat, "select y.user_id from (select user_id from user_memo where memo_type='p' and dt='1') y")
	if !Equivalent(a, b) {
		t.Error("conjunct order + alias should not break equivalence")
	}
	c := mustPlan(t, cat, "select x.user_id from (select user_id from user_memo where dt='2' and memo_type='p') x")
	if Equivalent(a, c) {
		t.Error("different constants should not be equivalent")
	}
}

func TestEquivalentJoinCommutation(t *testing.T) {
	cat := testCatalog(t)
	a := mustPlan(t, cat, "select user_memo.memo from user_memo inner join user_action on user_memo.user_id = user_action.user_id")
	b := mustPlan(t, cat, "select user_memo.memo from user_action inner join user_memo on user_action.user_id = user_memo.user_id")
	if !Equivalent(a.Child(0), b.Child(0)) {
		t.Error("inner-join commutation should be equivalent")
	}
}

func TestNormalizeCollapsesFilters(t *testing.T) {
	cat := testCatalog(t)
	// Nested derived table stacks a Project over a Filter over a Filter
	// after normalization of the outer where.
	a := mustPlan(t, cat, "select x.user_id from (select user_id, dt from user_memo where memo_type='p') x where x.dt = '1'")
	b := mustPlan(t, cat, "select user_id from user_memo where memo_type='p' and dt='1'")
	// a has Project(Filter(Project(Filter(Scan)))) — normalization cannot
	// flatten the projection sandwich in general (the inner project may
	// drop columns), so just assert normalization is stable and keeps
	// semantics markers.
	na := plan.Normalize(a)
	if plan.FingerprintOf(na) != plan.NormalizedFingerprint(a) {
		t.Error("Normalize/NormalizedFingerprint disagree")
	}
	_ = b
}

func workloadPlans(t *testing.T, cat *catalog.Catalog) []*plan.Node {
	t.Helper()
	sqls := []string{
		// q0 and q1 share subquery A = filtered user_memo projection.
		`select t1.user_id, count(*) as cnt
		 from ( select user_id, memo from user_memo where dt='1' and memo_type='p' ) t1
		 inner join ( select user_id, action from user_action where type = 1 and dt='1' ) t2
		 on t1.user_id = t2.user_id group by t1.user_id`,
		`select t1.user_id, count(*) as cnt
		 from ( select user_id, memo from user_memo where dt='1' and memo_type='p' ) t1
		 inner join ( select user_id, action from user_action where type = 2 and dt='1' ) t2
		 on t1.user_id = t2.user_id group by t1.user_id`,
		// q2 shares nothing.
		`select user_id from user_action where type = 3`,
	}
	out := make([]*plan.Node, len(sqls))
	for i, s := range sqls {
		out[i] = mustPlan(t, cat, s)
	}
	return out
}

func TestPreprocessSharedSubquery(t *testing.T) {
	cat := testCatalog(t)
	queries := workloadPlans(t, cat)
	res := Preprocess(queries, nil)

	if len(res.Subqueries) != 3 {
		t.Fatalf("Subqueries for %d queries", len(res.Subqueries))
	}
	// q0 and q1 have 3 subqueries each; q2 has none (plain project over
	// filter: Project root is the query root, excluded).
	if len(res.Subqueries[0]) != 3 || len(res.Subqueries[1]) != 3 {
		t.Errorf("subquery counts: %d, %d", len(res.Subqueries[0]), len(res.Subqueries[1]))
	}

	// Exactly one cluster is shared by two queries: the t1 projection.
	var shared []*Cluster
	for _, c := range res.Clusters {
		if c.SharedBy() >= 2 {
			shared = append(shared, c)
		}
	}
	if len(shared) != 1 {
		t.Fatalf("want 1 shared cluster, got %d", len(shared))
	}
	if got := shared[0].Pairs(); got != 1 {
		t.Errorf("shared cluster pairs = %d, want 1", got)
	}
	if res.EquivalentPairs != 1 {
		t.Errorf("EquivalentPairs = %d, want 1", res.EquivalentPairs)
	}

	// One candidate; shared by q0 and q1.
	if len(res.Candidates) != 1 {
		t.Fatalf("want 1 candidate, got %d", len(res.Candidates))
	}
	cand := res.Candidates[0]
	if len(cand.Queries) != 2 || cand.Queries[0] != 0 || cand.Queries[1] != 1 {
		t.Errorf("candidate queries = %v", cand.Queries)
	}
	if cand.Frequency != 2 {
		t.Errorf("candidate frequency = %d, want 2", cand.Frequency)
	}
	if got := res.AssociatedQueries; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("AssociatedQueries = %v", got)
	}
	// Single candidate: no overlapping pairs.
	if res.OverlappingPairs() != 0 {
		t.Errorf("OverlappingPairs = %d, want 0", res.OverlappingPairs())
	}
}

func TestPreprocessOverlapMatrix(t *testing.T) {
	cat := testCatalog(t)
	// Two queries sharing both a join subquery and its left input: the
	// join candidate overlaps the projection candidate.
	q := `select t1.user_id, count(*) as cnt
	 from ( select user_id, memo from user_memo where dt='1' and memo_type='p' ) t1
	 inner join ( select user_id, action from user_action where type = 1 and dt='1' ) t2
	 on t1.user_id = t2.user_id group by t1.user_id`
	queries := []*plan.Node{mustPlan(t, cat, q), mustPlan(t, cat, q)}
	res := Preprocess(queries, nil)
	// All three subqueries are shared by both queries -> 3 candidates.
	if len(res.Candidates) != 3 {
		t.Fatalf("want 3 candidates, got %d", len(res.Candidates))
	}
	// The join candidate overlaps both projections; projections don't
	// overlap each other: exactly 2 overlapping pairs.
	if got := res.OverlappingPairs(); got != 2 {
		t.Errorf("OverlappingPairs = %d, want 2", got)
	}
	// Overlap matrix must be symmetric with a false diagonal.
	for j := range res.Overlap {
		if res.Overlap[j][j] {
			t.Errorf("Overlap[%d][%d] should be false", j, j)
		}
		for k := range res.Overlap[j] {
			if res.Overlap[j][k] != res.Overlap[k][j] {
				t.Errorf("Overlap not symmetric at %d,%d", j, k)
			}
		}
	}
}

func TestPreprocessDeterministic(t *testing.T) {
	cat := testCatalog(t)
	queries := workloadPlans(t, cat)
	a := Preprocess(queries, nil)
	b := Preprocess(queries, nil)
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatal("cluster counts differ between runs")
	}
	for i := range a.Clusters {
		if a.Clusters[i].Fingerprint != b.Clusters[i].Fingerprint {
			t.Fatalf("cluster %d fingerprint differs", i)
		}
	}
}

func TestPreprocessMinShareOption(t *testing.T) {
	cat := testCatalog(t)
	queries := workloadPlans(t, cat)
	res := Preprocess(queries, &Options{MinShare: 1})
	// Every cluster becomes a candidate, including singletons.
	if len(res.Candidates) != len(res.Clusters) {
		t.Errorf("MinShare=1: %d candidates for %d clusters", len(res.Candidates), len(res.Clusters))
	}
}

func TestPreprocessCostOfPicksCheapestRepresentative(t *testing.T) {
	cat := testCatalog(t)
	queries := workloadPlans(t, cat)
	called := 0
	res := Preprocess(queries, &Options{CostOf: func(n *plan.Node) float64 {
		called++
		return float64(n.Count())
	}})
	if called == 0 {
		t.Error("CostOf was never consulted")
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("want 1 candidate, got %d", len(res.Candidates))
	}
}

func TestClusterMembersAreMutuallyEquivalent(t *testing.T) {
	// Property: every pair of members inside one cluster satisfies
	// Equivalent; members of different clusters never do.
	cat := testCatalog(t)
	queries := workloadPlans(t, cat)
	// Duplicate the workload with alias renames to exercise the
	// normalization paths.
	sqls := []string{
		`select a1.user_id, count(*) as cnt
		 from ( select user_id, memo from user_memo where memo_type='p' and dt='1' ) a1
		 inner join ( select user_id, action from user_action where dt='1' and type = 1 ) a2
		 on a1.user_id = a2.user_id group by a1.user_id`,
	}
	for _, s := range sqls {
		queries = append(queries, mustPlan(t, cat, s))
	}
	res := Preprocess(queries, &Options{MinShare: 1})
	for _, c := range res.Clusters {
		for i := 0; i < len(c.Members); i++ {
			for j := i + 1; j < len(c.Members); j++ {
				if !Equivalent(c.Members[i].Subquery.Root, c.Members[j].Subquery.Root) {
					t.Fatalf("cluster %d: members %d,%d not equivalent", c.ID, i, j)
				}
			}
		}
	}
	for a := 0; a < len(res.Clusters); a++ {
		for b := a + 1; b < len(res.Clusters); b++ {
			if Equivalent(res.Clusters[a].Members[0].Subquery.Root, res.Clusters[b].Members[0].Subquery.Root) {
				t.Fatalf("clusters %d and %d hold equivalent members but were not merged", a, b)
			}
		}
	}
}

func TestPreprocessConjunctOrderJoinsClusters(t *testing.T) {
	// The same fragment written with swapped conjuncts and a different
	// alias must land in one cluster (the EQUITAS-substitute's job).
	cat := testCatalog(t)
	q1 := mustPlan(t, cat, "select x.user_id from ( select user_id from user_memo where dt='9' and memo_type='z' ) x where x.user_id < 10")
	q2 := mustPlan(t, cat, "select y.user_id from ( select user_id from user_memo where memo_type='z' and dt='9' ) y where y.user_id < 10")
	res := Preprocess([]*plan.Node{q1, q2}, nil)
	found := false
	for _, c := range res.Clusters {
		if c.SharedBy() == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("equivalent fragments with reordered conjuncts did not cluster")
	}
}
