package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"autoview/internal/catalog"
	"autoview/internal/costbase"
	"autoview/internal/engine"
	"autoview/internal/equiv"
	"autoview/internal/featenc"
	"autoview/internal/metrics"
	"autoview/internal/plan"
	"autoview/internal/rewrite"
	"autoview/internal/widedeep"
	"autoview/internal/workload"
)

// costUnitScale converts dollar costs into O(1) "cost units" so every
// learner trains at a comparable magnitude (MAPE is scale-invariant; MAE
// is reported in these units).
const costUnitScale = 1e4

// buildPairs measures the ground truth for cost estimation on one
// workload. Following Section VI-B1: on JOB the rewritten queries are
// actually executed; on the WK workloads the RealOpt approximation
// A(q|v) ≈ A(q) − A(s) is used (executing every rewritten pair at
// production scale was too expensive for the paper; we reproduce the
// protocol).
func buildPairs(w *workload.Workload, maxPairs int, seed int64) ([]costbase.Sample, error) {
	st := w.Populate()
	exec := engine.New(st)
	mgr := rewrite.NewManager(st)
	pricing := engine.DefaultPricing()
	pre := equiv.Preprocess(w.Plans(), nil)

	useRealOpt := w.Name != "JOB"

	queryCost := map[int]float64{}
	var samples []costbase.Sample
	for _, cand := range pre.Candidates {
		v, err := mgr.Materialize(cand.Plan)
		if err != nil {
			return nil, err
		}
		vUsage, err := exec.Cost(cand.Plan)
		if err != nil {
			return nil, err
		}
		vCost := vUsage.Cost(pricing)
		for _, qi := range cand.Queries {
			q := w.Queries[qi].Plan
			qc, ok := queryCost[qi]
			if !ok {
				u, err := exec.Cost(q)
				if err != nil {
					return nil, err
				}
				qc = u.Cost(pricing)
				queryCost[qi] = qc
			}
			var actual float64
			if useRealOpt {
				actual = qc - vCost
				if actual < 0 {
					actual = 0
				}
			} else {
				rw, n := rewrite.Rewrite(q, []*rewrite.View{v})
				if n == 0 {
					continue
				}
				u, err := exec.Cost(rw)
				if err != nil {
					return nil, err
				}
				actual = u.Cost(pricing)
			}
			samples = append(samples, costbase.Sample{
				Q:      q,
				V:      cand.Plan,
				F:      featenc.Extract(q, cand.Plan, w.Cat),
				Actual: actual * costUnitScale,
				QCost:  qc * costUnitScale,
				VCost:  vCost * costUnitScale,
			})
		}
	}
	if maxPairs > 0 && len(samples) > maxPairs {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		samples = samples[:maxPairs]
	}
	return samples, nil
}

// wdAdapter exposes a Wide-Deep variant through the Estimator interface.
type wdAdapter struct {
	name  string
	cat   *catalog.Catalog
	plans []*plan.Node
	enc   featenc.Config
	train widedeep.TrainConfig
	seed  int64
	model *widedeep.Model
}

func (a *wdAdapter) Name() string { return a.name }

func (a *wdAdapter) Fit(train []costbase.Sample) error {
	vocab := featenc.NewVocab(a.cat, featenc.CollectPlanKeywords(a.plans))
	a.model = widedeep.New(vocab, widedeep.Config{Encoder: a.enc}, rand.New(rand.NewSource(a.seed)))
	samples := make([]widedeep.Sample, len(train))
	for i, s := range train {
		samples[i] = widedeep.Sample{F: s.F, Y: s.Actual}
	}
	_, err := a.model.Fit(samples, a.train)
	return err
}

func (a *wdAdapter) Predict(s costbase.Sample) float64 {
	return a.model.Predict(s.F)
}

// Tab3Row is one method's errors on one workload.
type Tab3Row struct {
	Method string
	MAE    float64
	MAPE   float64
}

// Tab3Result is Table III's grid.
type Tab3Result struct {
	Names []string
	Rows  map[string][]Tab3Row // workload name -> method rows
	Pairs map[string]int
}

// Tab3Methods lists the comparison in the paper's column order.
var Tab3Methods = []string{"Optimizer", "DeepLearn", "LR", "GBM", "N-Exp", "N-Str", "N-Kw", "W-D"}

// Tab3 runs the cost-estimation comparison: 7:1:2 split, Adam training,
// MAE and MAPE on the held-out test set (Table III).
func Tab3(s Scale) (*Tab3Result, error) {
	res := &Tab3Result{Rows: map[string][]Tab3Row{}, Pairs: map[string]int{}}
	maxPairs := 0
	if s == Quick {
		maxPairs = 220
	}
	for _, w := range Workloads(s) {
		samples, err := buildPairs(w, maxPairs, 11)
		if err != nil {
			return nil, fmt.Errorf("tab3 %s: %w", w.Name, err)
		}
		res.Names = append(res.Names, w.Name)
		res.Pairs[w.Name] = len(samples)

		trainIdx, _, testIdx := metrics.Split(len(samples), 0.7, 0.1, 99)
		train := pick(samples, trainIdx)
		test := pick(samples, testIdx)

		cfg := configFor(w.Name, s)
		pricing := cfg.Pricing
		encDims := cfg.WDModel.Encoder
		estimators := []costbase.Estimator{
			&costbase.OptimizerEstimator{Cat: w.Cat, Pricing: scaledPricing(pricing)},
			&costbase.DeepLearn{Cat: w.Cat, Pricing: scaledPricing(pricing), Epochs: cfg.WDTrain.Epochs / 2, LR: cfg.WDTrain.LearnRate, Seed: 3},
			&costbase.LinearRegressor{},
			&costbase.GBM{},
		}
		for _, name := range []string{"N-Exp", "N-Str", "N-Kw", "W-D"} {
			variant := widedeep.Variants()[name]
			variant.EmbedDim = encDims.EmbedDim
			variant.Hidden = encDims.Hidden
			estimators = append(estimators, &wdAdapter{
				name:  name,
				cat:   w.Cat,
				plans: w.Plans(),
				enc:   variant,
				train: cfg.WDTrain,
				seed:  17,
			})
		}
		for _, est := range estimators {
			if err := est.Fit(train); err != nil {
				return nil, fmt.Errorf("tab3 %s/%s: %w", w.Name, est.Name(), err)
			}
			y := make([]float64, len(test))
			yhat := make([]float64, len(test))
			for i, sm := range test {
				y[i] = sm.Actual
				yhat[i] = est.Predict(sm)
			}
			res.Rows[w.Name] = append(res.Rows[w.Name], Tab3Row{
				Method: est.Name(),
				MAE:    metrics.MAE(y, yhat),
				MAPE:   mapeWithFloor(y, yhat),
			})
		}
	}
	return res, nil
}

// scaledPricing rescales the pricing so analytic estimates land in the
// same cost units as the measured targets.
func scaledPricing(p engine.Pricing) engine.Pricing {
	p.Beta *= costUnitScale
	p.Gamma *= costUnitScale
	p.Alpha *= costUnitScale
	return p
}

// mapeWithFloor computes MAPE over pairs whose true cost is at least 5%
// of the mean. Near-zero costs make relative error meaningless (a $1e-6
// rewrite estimated at $2e-6 is a 100% MAPE but a perfect decision
// signal), so they are excluded, as is standard practice.
func mapeWithFloor(y, yhat []float64) float64 {
	var mean float64
	for _, v := range y {
		mean += v
	}
	if len(y) > 0 {
		mean /= float64(len(y))
	}
	floor := 0.05 * mean
	var yf, yhatf []float64
	for i, v := range y {
		if v >= floor {
			yf = append(yf, v)
			yhatf = append(yhatf, yhat[i])
		}
	}
	return metrics.MAPE(yf, yhatf)
}

func pick(samples []costbase.Sample, idx []int) []costbase.Sample {
	out := make([]costbase.Sample, len(idx))
	for i, j := range idx {
		out[i] = samples[j]
	}
	return out
}

// Render formats Table III.
func (r *Tab3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III: cost estimation (MAE in cost units, MAPE %)\n")
	fmt.Fprintf(&b, "  %-14s", "Metric")
	for _, m := range Tab3Methods {
		fmt.Fprintf(&b, "%11s", m)
	}
	b.WriteString("\n")
	for _, name := range r.Names {
		rows := r.Rows[name]
		fmt.Fprintf(&b, "  MAE  (%s)%s", name, strings.Repeat(" ", max(0, 7-len(name))))
		for _, m := range Tab3Methods {
			fmt.Fprintf(&b, "%11.3f", find(rows, m).MAE)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "  MAPE (%s)%s", name, strings.Repeat(" ", max(0, 7-len(name))))
		for _, m := range Tab3Methods {
			fmt.Fprintf(&b, "%10.2f%%", find(rows, m).MAPE)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func find(rows []Tab3Row, method string) Tab3Row {
	for _, r := range rows {
		if r.Method == method {
			return r
		}
	}
	return Tab3Row{Method: method}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
