//go:build race

package experiments

// raceEnabled gates the paper-claim reproductions: they are
// deterministic single-goroutine pipelines (train, plan, execute) that
// the race detector slows 10-20x past the per-package test timeout
// without any concurrency to check. Concurrent-path race coverage
// lives in the serve, core, widedeep, and rl test suites.
const raceEnabled = true
