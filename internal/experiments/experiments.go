// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) on the laptop-scale workloads. Each experiment
// returns a structured result plus a formatted rendering; cmd/experiments
// prints them and bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"autoview/internal/core"
	"autoview/internal/engine"
	"autoview/internal/equiv"
	"autoview/internal/workload"
)

// Scale trades fidelity for runtime: Quick shrinks workloads and training
// budgets (used by benchmarks and CI); Full uses the Table II defaults.
type Scale int

const (
	// Quick is the reduced-budget mode.
	Quick Scale = iota
	// Full runs the Table II budgets.
	Full
)

// Workloads returns the three evaluation workloads, shrunk under Quick.
func Workloads(s Scale) []*workload.Workload {
	if s == Full {
		return []*workload.Workload{workload.JOB(), workload.WK1(), workload.WK2()}
	}
	return []*workload.Workload{
		workload.JOB(),
		workload.WK(workload.WKParams{
			Name: "WK1", Projects: 10, FactsPerProject: 2, DimsPerProject: 1,
			Queries: 200, FragsPerProject: 3, Skew: 1.4, ThreeWayFraction: 0.15,
			RowSkew: 2.5, UniqueFraction: 0.45, Seed: 42,
		}),
		workload.WK(workload.WKParams{
			Name: "WK2", Projects: 12, FactsPerProject: 2, DimsPerProject: 1,
			Queries: 320, FragsPerProject: 4, Skew: 0.7, ThreeWayFraction: 0.45,
			RowSkew: 1.2, UniqueFraction: 0.35, Seed: 43,
		}),
	}
}

// configFor returns the pipeline configuration for a workload name.
func configFor(name string, s Scale) core.Config {
	var cfg core.Config
	if name == "JOB" {
		cfg = core.DefaultConfig()
	} else {
		cfg = core.WKConfig()
	}
	if s == Quick {
		// Quick-scale data sets are ~100-500 pairs; Table II's WK batch
		// size (128) would give one optimizer step per epoch, so the
		// batch shrinks with the budget.
		cfg.WDTrain.Epochs = 25
		cfg.WDTrain.BatchSize = min(cfg.WDTrain.BatchSize, 16)
		cfg.RL.Epochs = min(cfg.RL.Epochs, 40)
		cfg.RL.LearnEvery = 2
		cfg.Iter.Iterations = min(cfg.Iter.Iterations, 60)
	}
	return cfg
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// groundTruthProblem assembles the ILP instance with measured benefits.
func groundTruthProblem(w *workload.Workload, s Scale) (*core.Advisor, *core.Problem, error) {
	cfg := configFor(w.Name, s)
	cfg.Estimator = core.EstimatorActual
	adv := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)
	pre := adv.Preprocess(w.Plans())
	p, err := adv.BuildProblem(w.Plans(), pre)
	return adv, p, err
}

// Fig1Result is Figure 1's data: per-project redundancy and the
// cumulative percentage curve.
type Fig1Result struct {
	Rows       []workload.ProjectRedundancy
	Cumulative []float64
}

// Fig1 analyzes redundant computation on the multi-project workload
// (Figure 1 uses six Alibaba projects; we use the WK1-style generator).
func Fig1(s Scale) (*Fig1Result, error) {
	w := Workloads(s)[1]
	pre := equiv.Preprocess(w.Plans(), nil)
	rows := w.Redundancy(pre)
	return &Fig1Result{Rows: rows, Cumulative: workload.CumulativeRedundancy(rows)}, nil
}

// Render formats Figure 1's panels as text.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1(a): total vs redundant queries per project\n")
	rows := append([]workload.ProjectRedundancy(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Total > rows[j].Total })
	n := len(rows)
	if n > 6 {
		n = 6
	}
	for _, row := range rows[:n] {
		fmt.Fprintf(&b, "  %-6s total=%-4d redundant=%-4d (%.0f%%)\n",
			row.Project, row.Total, row.Redundant, 100*float64(row.Redundant)/float64(row.Total))
	}
	b.WriteString("Figure 1(b): cumulative redundancy percentage by projects included\n  ")
	for i, v := range r.Cumulative {
		if i%4 == 0 {
			fmt.Fprintf(&b, "[%d]%.1f%% ", i+1, v)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Tab1Result is Table I: workload statistics.
type Tab1Result struct {
	Stats []workload.Stats
	Names []string
}

// Tab1 computes the workload statistics table.
func Tab1(s Scale) (*Tab1Result, error) {
	res := &Tab1Result{}
	for _, w := range Workloads(s) {
		pre := equiv.Preprocess(w.Plans(), nil)
		res.Stats = append(res.Stats, w.Describe(pre))
		res.Names = append(res.Names, w.Name)
	}
	return res, nil
}

// Render formats Table I.
func (r *Tab1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I: workload datasets\n")
	fmt.Fprintf(&b, "  %-22s", "workloads")
	for _, n := range r.Names {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteString("\n")
	row := func(label string, get func(workload.Stats) string) {
		fmt.Fprintf(&b, "  %-22s", label)
		for _, st := range r.Stats {
			fmt.Fprintf(&b, "%12s", get(st))
		}
		b.WriteString("\n")
	}
	row("# project / # table", func(s workload.Stats) string { return fmt.Sprintf("%d/%d", s.Projects, s.Tables) })
	row("# query / # subquery", func(s workload.Stats) string { return fmt.Sprintf("%d/%d", s.Queries, s.Subqueries) })
	row("# equivalent pairs", func(s workload.Stats) string { return fmt.Sprintf("%d", s.EquivalentPairs) })
	row("# candidate (|Z|)", func(s workload.Stats) string { return fmt.Sprintf("%d", s.Candidates) })
	row("# associated (|Q|)", func(s workload.Stats) string { return fmt.Sprintf("%d", s.AssociatedQuery) })
	row("# overlapping pairs", func(s workload.Stats) string { return fmt.Sprintf("%d", s.OverlappingPairs) })
	return b.String()
}

// Tab2 renders the default parameters (Table II) as configured.
func Tab2() string {
	job := core.DefaultConfig()
	wk := core.WKConfig()
	var b strings.Builder
	b.WriteString("Table II: default parameters\n")
	fmt.Fprintf(&b, "  pricing: alpha=%.3g $/GB, beta=%.3g $/(core*min), gamma=%.3g $/(GB*min)\n",
		job.Pricing.Alpha, job.Pricing.Beta, job.Pricing.Gamma)
	fmt.Fprintf(&b, "  JOB: I=%d lr=%g bs=%d | n1=%d n2=%d nm=%d gamma=%.1f\n",
		job.WDTrain.Epochs, job.WDTrain.LearnRate, job.WDTrain.BatchSize,
		job.RL.InitIterations, job.RL.Epochs, job.RL.MemoryThreshold, job.RL.Agent.Gamma)
	fmt.Fprintf(&b, "  WK:  I=%d lr=%g bs=%d | n1=%d n2=%d nm=%d gamma=%.1f\n",
		wk.WDTrain.Epochs, wk.WDTrain.LearnRate, wk.WDTrain.BatchSize,
		wk.RL.InitIterations, wk.RL.Epochs, wk.RL.MemoryThreshold, wk.RL.Agent.Gamma)
	return b.String()
}
