package experiments

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"autoview/internal/mvs"
	"autoview/internal/workload"
)

func TestParseTournamentSpec(t *testing.T) {
	cases := []struct {
		in   string
		want TournamentSpec
	}{
		{"", TournamentSpec{}},
		{"families=JOB", TournamentSpec{Families: []string{"JOB"}}},
		{"families=JOB,WK2;sizes=4,8;seed=7;restarts=3;ilpmax=10;nodes=500000",
			TournamentSpec{Families: []string{"JOB", "WK2"}, Sizes: []int{4, 8},
				Seed: 7, Restarts: 3, ILPMaxZ: 10, NodeBudget: 500000}},
		{" sizes = 12 ; seed = -1 ", TournamentSpec{Sizes: []int{12}, Seed: -1}},
	}
	for _, tc := range cases {
		got, err := ParseTournamentSpec(tc.in)
		if err != nil {
			t.Errorf("ParseTournamentSpec(%q): %v", tc.in, err)
			continue
		}
		if got.String() != tc.want.String() {
			t.Errorf("ParseTournamentSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// Round trip: String() must re-parse to the same spec.
		again, err := ParseTournamentSpec(got.String())
		if err != nil || again.String() != got.String() {
			t.Errorf("round trip of %q failed: %v (%q)", tc.in, err, got.String())
		}
	}
	for _, bad := range []string{
		"families=BOB", "sizes=0", "sizes=9999", "sizes=x", "seed=x",
		"restarts=-1", "restarts=100", "ilpmax=-2", "nodes=-5",
		"unknown=1", "justakey", "families=",
	} {
		if _, err := ParseTournamentSpec(bad); err == nil {
			t.Errorf("ParseTournamentSpec(%q) should fail", bad)
		}
	}
}

func FuzzTournamentSpec(f *testing.F) {
	f.Add("")
	f.Add("families=JOB,WK1;sizes=4,8,12;seed=1")
	f.Add("restarts=4;ilpmax=12;nodes=1000000")
	f.Add("families=;sizes=;;=")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseTournamentSpec(s)
		if err != nil {
			return
		}
		// Accepted specs must round-trip through their own rendering.
		again, err := ParseTournamentSpec(spec.String())
		if err != nil {
			t.Fatalf("String() %q of accepted spec %q does not re-parse: %v", spec.String(), s, err)
		}
		if again.String() != spec.String() {
			t.Fatalf("round trip drifted: %q -> %q", spec.String(), again.String())
		}
	})
}

// tournamentInstance rebuilds the deterministic JOB rung the smoke and
// golden tests share: the Quick-scale measured JOB instance projected to
// a seeded 12-candidate sample.
func tournamentInstance(t *testing.T) *mvs.Instance {
	t.Helper()
	w := workload.JOB()
	_, p, err := groundTruthProblem(w, Quick)
	if err != nil {
		t.Fatalf("ground truth problem: %v", err)
	}
	full := p.Instance.NumViews()
	if full < 12 {
		t.Fatalf("JOB quick instance has only %d candidates", full)
	}
	members := rand.New(rand.NewSource(2024)).Perm(full)[:12]
	sort.Ints(members)
	sub, _ := mvs.Project(p.Instance, members)
	return sub
}

// TestTournamentSmokeAndGate runs a tiny tournament end to end: every
// selector completes on every rung, the differential gate holds, and the
// JSON payload round-trips.
func TestTournamentSmokeAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament races five selectors per rung; skipped in -short")
	}
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	spec, err := ParseTournamentSpec("families=JOB;sizes=4,8;seed=1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tournament(Quick, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * len(TournamentSelectors())
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("differential gate: %v", err)
	}
	for _, c := range res.Cells {
		if c.Selector == "ilp" && c.DNF {
			t.Errorf("ilp DNF on |Z|=%d (within ilpmax)", c.Z)
		}
		if c.WallMS < 0 {
			t.Errorf("%s |Z|=%d negative wall time", c.Selector, c.Z)
		}
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back TournamentResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back.Cells) != len(res.Cells) || back.Spec != res.Spec {
		t.Errorf("JSON round trip dropped data")
	}
	if res.Render() == "" {
		t.Errorf("empty rendering")
	}
}

// TestTournamentCheckRejectsBadGrid pins the gate's failure paths on
// synthetic grids (no pipeline run needed).
func TestTournamentCheckRejectsBadGrid(t *testing.T) {
	bad := &TournamentResult{Cells: []TournamentCell{
		{Family: "JOB", Z: 8, Selector: "localsearch", Utility: 1, OptUtility: 2, Gap: 0.5},
	}}
	if err := bad.Check(); err == nil {
		t.Errorf("gap over bound must fail the gate")
	}
	above := &TournamentResult{Cells: []TournamentCell{
		{Family: "JOB", Z: 8, Selector: "ilp", Utility: 3, OptUtility: 2, Gap: -0.5},
	}}
	if err := above.Check(); err == nil {
		t.Errorf("utility above optimum must fail the gate")
	}
	unknown := &TournamentResult{Cells: []TournamentCell{
		{Family: "JOB", Z: 8, Selector: "mystery", Gap: 0},
	}}
	if err := unknown.Check(); err == nil {
		t.Errorf("unregistered selector must fail the gate")
	}
	big := &TournamentResult{Cells: []TournamentCell{
		{Family: "JOB", Z: 80, Selector: "localsearch", Gap: 0.9},
		{Family: "JOB", Z: 80, Selector: "ilp", Gap: 1, DNF: true},
	}}
	if err := big.Check(); err != nil {
		t.Errorf("rungs above ilpmax are not gated: %v", err)
	}
}

// TestLocalSearchGoldenTraceJOB pins the local-search selector's decision
// on a fixed JOB snapshot: seed 42 on the seeded 12-candidate projection
// must reproduce this exact selection and utility, so selector refactors
// cannot silently change decisions.
func TestLocalSearchGoldenTraceJOB(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the measured JOB instance; skipped in -short")
	}
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	sub := tournamentInstance(t)
	res := mvs.LocalSearch(sub, mvs.LocalSearchOptions{Rand: rand.New(rand.NewSource(42))})

	// Golden values recorded from the first run; bit-exact equality is
	// intentional — the instance is measured deterministically and the
	// search is seeded.
	const goldenUtility = 0.10585161924146368
	goldenSelection := []int{0, 1, 2, 8, 9, 11}

	if res.BestUtility != goldenUtility {
		t.Errorf("utility %.17g, golden %.17g", res.BestUtility, goldenUtility)
	}
	got := mvs.SelectedViews(res.Best.Z)
	if len(got) != len(goldenSelection) {
		t.Fatalf("selection %v, golden %v", got, goldenSelection)
	}
	for i := range got {
		if got[i] != goldenSelection[i] {
			t.Fatalf("selection %v, golden %v", got, goldenSelection)
		}
	}
}
