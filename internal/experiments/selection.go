package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"autoview/internal/core"
	"autoview/internal/engine"
	"autoview/internal/metrics"
	"autoview/internal/mvs"
	"autoview/internal/rl"
	"autoview/internal/selbase"
	"autoview/internal/workload"
)

// Fig9Result holds the top-k utility curves per workload and strategy.
type Fig9Result struct {
	Names  []string
	Curves map[string]map[string][]float64
}

// Fig9 sweeps k for the four greedy methods on ground-truth benefit
// instances (Figure 9: utility rises to a maximum, then falls as view
// overheads dominate).
func Fig9(s Scale) (*Fig9Result, error) {
	res := &Fig9Result{Curves: map[string]map[string][]float64{}}
	for _, w := range Workloads(s) {
		_, p, err := groundTruthProblem(w, s)
		if err != nil {
			return nil, err
		}
		res.Names = append(res.Names, w.Name)
		curves := map[string][]float64{}
		for _, strat := range selbase.Strategies() {
			curves[strat.String()] = selbase.SweepK(p.Instance, p.Frequencies(), strat)
		}
		res.Curves[w.Name] = curves
	}
	return res, nil
}

// Render formats Figure 9 as sampled curve points.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: top-k utility curves (utility $ at sampled k)\n")
	for _, name := range r.Names {
		curves := r.Curves[name]
		nv := len(curves["TopkFreq"]) - 1
		fmt.Fprintf(&b, "  %s (|Z|=%d):\n", name, nv)
		for _, strat := range selbase.Strategies() {
			curve := curves[strat.String()]
			fmt.Fprintf(&b, "    %-9s", strat)
			for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
				k := int(frac * float64(nv))
				fmt.Fprintf(&b, " k=%-4d $%-9.4f", k, curve[k])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Tab4Row is one method's optimal result on one workload.
type Tab4Row struct {
	Method  string
	K       int // best k (greedy) or best iteration (iterative)
	Utility float64
	Ratio   float64 // 100·U/ΣA(q)
}

// Tab4Result is Table IV.
type Tab4Result struct {
	Names []string
	Rows  map[string][]Tab4Row
	// OPT holds the exact optimum where the solver finished (JOB; the
	// paper reports that solvers fail on WK1/WK2 and so do we by
	// budget).
	OPT map[string]*Tab4Row
}

// Tab4 compares the optimal results of all selection methods.
func Tab4(s Scale) (*Tab4Result, error) {
	res := &Tab4Result{Rows: map[string][]Tab4Row{}, OPT: map[string]*Tab4Row{}}
	for _, w := range Workloads(s) {
		_, p, err := groundTruthProblem(w, s)
		if err != nil {
			return nil, err
		}
		res.Names = append(res.Names, w.Name)
		total := p.TotalQueryCost()
		cfg := configFor(w.Name, s)
		freq := p.Frequencies()

		for _, strat := range selbase.Strategies() {
			k, u := selbase.BestK(p.Instance, freq, strat)
			res.Rows[w.Name] = append(res.Rows[w.Name], Tab4Row{
				Method: strat.String(), K: k, Utility: u,
				Ratio: metrics.UtilityRatio(u, total),
			})
		}

		iters := cfg.RL.InitIterations + cfg.RL.Epochs
		bs := selbase.BigSub(p.Instance, selbase.BigSubOptions{
			Iterations: iters,
			Rand:       rand.New(rand.NewSource(5)),
		})
		res.Rows[w.Name] = append(res.Rows[w.Name], Tab4Row{
			Method: "BigSub", K: bs.BestIteration, Utility: bs.BestUtility,
			Ratio: metrics.UtilityRatio(bs.BestUtility, total),
		})

		rlOpts := cfg.RL
		rlOpts.Rand = rand.New(rand.NewSource(6))
		rv := rl.RLView(p.Instance, rlOpts)
		res.Rows[w.Name] = append(res.Rows[w.Name], Tab4Row{
			Method: "RLView", K: rv.Steps, Utility: rv.BestUtility,
			Ratio: metrics.UtilityRatio(rv.BestUtility, total),
		})

		// Exact OPT via dominance + overlap-component decomposition
		// (mvs.OptimalExact). The paper's Gurobi/PuLP runs finished
		// only on JOB; the decomposition proves optimality on all
		// three of our instances, so the OPT row is filled everywhere.
		opt := mvs.OptimalExact(p.Instance, 2_000_000)
		if opt.Optimal {
			res.OPT[w.Name] = &Tab4Row{
				Method: "OPT", Utility: opt.Utility,
				Ratio: metrics.UtilityRatio(opt.Utility, total),
			}
		}
	}
	return res, nil
}

// Render formats Table IV.
func (r *Tab4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table IV: optimal results per view selection method\n")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "  %s:\n", name)
		for _, row := range r.Rows[name] {
			fmt.Fprintf(&b, "    %-9s k=%-5d utility=$%-10.4f ratio=%.2f%%\n",
				row.Method, row.K, row.Utility, row.Ratio)
		}
		if opt, ok := r.OPT[name]; ok {
			fmt.Fprintf(&b, "    %-9s %7s utility=$%-10.4f ratio=%.2f%%\n", "OPT", "", opt.Utility, opt.Ratio)
		} else {
			b.WriteString("    OPT       (solver did not finish within budget)\n")
		}
	}
	return b.String()
}

// Fig10Result holds convergence traces.
type Fig10Result struct {
	Names []string
	Iter  map[string][]float64
	RL    map[string][]float64
}

// Fig10 compares IterView's oscillation against RLView's convergence on
// the WK workloads (Figure 10). IterView runs n = n1+n2 iterations for a
// fair budget, as in the paper.
func Fig10(s Scale) (*Fig10Result, error) {
	res := &Fig10Result{Iter: map[string][]float64{}, RL: map[string][]float64{}}
	for _, w := range Workloads(s)[1:] { // WK1, WK2
		_, p, err := groundTruthProblem(w, s)
		if err != nil {
			return nil, err
		}
		cfg := configFor(w.Name, s)
		res.Names = append(res.Names, w.Name)
		// The paper traces up to 1000 (WK1) / 500 (WK2) iterations; the
		// oscillation events (small random thresholds flipping many
		// labels at once) need a long horizon to show.
		iters := cfg.RL.InitIterations + cfg.RL.Epochs
		if iters < 300 {
			iters = 300
		}
		iv := mvs.IterView(p.Instance, mvs.IterOptions{
			Iterations: iters,
			Rand:       rand.New(rand.NewSource(8)),
		})
		res.Iter[w.Name] = iv.Trace
		rlOpts := cfg.RL
		rlOpts.Rand = rand.New(rand.NewSource(8))
		rv := rl.RLView(p.Instance, rlOpts)
		res.RL[w.Name] = rv.Trace
	}
	return res, nil
}

// Stability summarizes a trace's tail: mean and standard deviation of the
// last half.
func Stability(trace []float64) (mean, std float64) {
	n := len(trace) / 2
	if n == 0 {
		n = len(trace)
	}
	tail := trace[len(trace)-n:]
	for _, v := range tail {
		mean += v
	}
	mean /= float64(len(tail))
	for _, v := range tail {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(tail)))
	return mean, std
}

// Render formats Figure 10 as trace summaries plus sampled points.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: convergence (intermediate utility per iteration)\n")
	for _, name := range r.Names {
		iv, rv := r.Iter[name], r.RL[name]
		ivMean, ivStd := Stability(iv)
		rvMean, rvStd := Stability(rv)
		fmt.Fprintf(&b, "  %s: IterView tail mean=$%.4f std=%.4f | RLView tail mean=$%.4f std=%.4f\n",
			name, ivMean, ivStd, rvMean, rvStd)
		fmt.Fprintf(&b, "    IterView samples: %s\n", sampleTrace(iv, 8))
		fmt.Fprintf(&b, "    RLView samples:   %s\n", sampleTrace(rv, 8))
	}
	return b.String()
}

func sampleTrace(trace []float64, n int) string {
	if len(trace) == 0 {
		return "(empty)"
	}
	var parts []string
	for i := 0; i < n; i++ {
		idx := i * (len(trace) - 1) / (n - 1)
		parts = append(parts, fmt.Sprintf("[%d]$%.3f", idx, trace[idx]))
	}
	return strings.Join(parts, " ")
}

// Tab5Combo names one estimator+selector configuration.
type Tab5Combo struct {
	Label     string
	Estimator core.EstimatorKind
	Selector  core.SelectorKind
}

// Tab5Combos lists the four end-to-end configurations of Table V.
func Tab5Combos() []Tab5Combo {
	return []Tab5Combo{
		{"O&B", core.EstimatorOptimizer, core.SelectorBigSub},
		{"O&R", core.EstimatorOptimizer, core.SelectorRLView},
		{"W&B", core.EstimatorWideDeep, core.SelectorBigSub},
		{"W&R", core.EstimatorWideDeep, core.SelectorRLView},
	}
}

// Tab5Result is Table V plus the paper's headline improvements.
type Tab5Result struct {
	Datasets []string
	Reports  map[string]map[string]*core.Report // dataset -> combo -> report
	// Improvement is (rc(W&R) − rc(O&B)) / rc(O&B) ·100%, the paper's
	// 28.4% / 8.8% / 31.7% numbers.
	Improvement map[string]float64
}

// Tab5 runs the end-to-end comparison on JOB and on one sampled project
// from each WK workload (the paper's P1 and P2).
func Tab5(s Scale) (*Tab5Result, error) {
	ws := Workloads(s)
	// P1 and P2 sample the WK workloads per the paper ("we sample two
	// projects ... because it is expensive to execute the whole query
	// set"); our scaled projects are small, so each sample unions the
	// largest few projects to keep enough sharing to differentiate the
	// methods.
	datasets := []*workload.Workload{
		ws[0],
		ws[1].ProjectUnion(ws[1].TopProjects(4)),
		ws[2].ProjectUnion(ws[2].TopProjects(4)),
	}
	labels := []string{"JOB", "P1", "P2"}

	res := &Tab5Result{
		Reports:     map[string]map[string]*core.Report{},
		Improvement: map[string]float64{},
	}
	for di, w := range datasets {
		label := labels[di]
		res.Datasets = append(res.Datasets, label)
		res.Reports[label] = map[string]*core.Report{}
		for _, combo := range Tab5Combos() {
			cfg := configFor(baseName(w.Name), s)
			cfg.Estimator = combo.Estimator
			cfg.Selector = combo.Selector
			// Fresh storage per combo: view tables must not leak
			// between runs.
			adv := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)
			rep, err := adv.Run(w.Plans())
			if err != nil {
				return nil, fmt.Errorf("tab5 %s/%s: %w", label, combo.Label, err)
			}
			res.Reports[label][combo.Label] = rep
		}
		ob := res.Reports[label]["O&B"].SavedRatio
		wr := res.Reports[label]["W&R"].SavedRatio
		res.Improvement[label] = metrics.Improvement(wr, ob)
	}
	return res, nil
}

func baseName(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// Render formats Table V.
func (r *Tab5Result) Render() string {
	var b strings.Builder
	b.WriteString("Table V: end-to-end results\n")
	for _, ds := range r.Datasets {
		reports := r.Reports[ds]
		any := reports["O&B"]
		fmt.Fprintf(&b, "  %s: #q=%d cq=$%.4f lq=%.4f core-min\n", ds, any.NumQueries, any.RawCost, any.RawLatency)
		for _, combo := range Tab5Combos() {
			rep := reports[combo.Label]
			fmt.Fprintf(&b, "    %-4s #(q|v)=%-4d #m=%-3d om=$%-9.5f bq|v=$%-9.5f lq=%-9.4f rc=%.2f%%\n",
				combo.Label, rep.RewrittenQueries, rep.NumViews, rep.ViewOverhead,
				rep.RewriteBenefit, rep.RewrittenLatency, rep.SavedRatio)
		}
		fmt.Fprintf(&b, "    improvement (W&R vs O&B): %.1f%%\n", r.Improvement[ds])
	}
	return b.String()
}
