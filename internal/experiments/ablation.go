package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"autoview/internal/featenc"
	"autoview/internal/metrics"
	"autoview/internal/mvs"
	"autoview/internal/rl"
	"autoview/internal/widedeep"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out:
// wide vs deep vs wide+deep cost modelling, BigSub's freeze rule, DQN
// experience replay, and RLView's Eq.-3-guided exploration.
type AblationResult struct {
	// Cost-model ablation on JOB pairs (MAPE %, lower is better).
	WideDeepMAPE, WideOnlyMAPE, DeepOnlyMAPE float64

	// Selection ablations on the JOB instance (best utility, $).
	IterViewNoFreeze   float64
	IterViewFreeze     float64
	RLViewFull         float64
	RLViewNoReplay     float64
	RLViewUniformExplo float64

	// Convergence: tail standard deviation of the utility trace.
	NoFreezeTailStd float64
	FreezeTailStd   float64
}

// Ablations runs every ablation at quick scale on the JOB workload.
func Ablations(s Scale) (*AblationResult, error) {
	res := &AblationResult{}

	// --- Cost model: wide vs deep vs both -------------------------------
	w := Workloads(s)[0]
	maxPairs := 0
	if s == Quick {
		maxPairs = 180
	}
	pairs, err := buildPairs(w, maxPairs, 21)
	if err != nil {
		return nil, err
	}
	trainIdx, _, testIdx := metrics.Split(len(pairs), 0.7, 0.1, 5)
	train := pick(pairs, trainIdx)
	test := pick(pairs, testIdx)
	cfg := configFor(w.Name, s)

	evalModel := func(mcfg widedeep.Config) (float64, error) {
		mcfg.Encoder.EmbedDim = cfg.WDModel.Encoder.EmbedDim
		mcfg.Encoder.Hidden = cfg.WDModel.Encoder.Hidden
		vocab := featenc.NewVocab(w.Cat, featenc.CollectPlanKeywords(w.Plans()))
		m := widedeep.New(vocab, mcfg, rand.New(rand.NewSource(9)))
		samples := make([]widedeep.Sample, len(train))
		for i, sm := range train {
			samples[i] = widedeep.Sample{F: sm.F, Y: sm.Actual}
		}
		if _, err := m.Fit(samples, cfg.WDTrain); err != nil {
			return 0, err
		}
		var y, yhat []float64
		for _, sm := range test {
			y = append(y, sm.Actual)
			yhat = append(yhat, m.Predict(sm.F))
		}
		return mapeWithFloor(y, yhat), nil
	}
	if res.WideDeepMAPE, err = evalModel(widedeep.Config{}); err != nil {
		return nil, err
	}
	if res.WideOnlyMAPE, err = evalModel(widedeep.Config{WideOnly: true}); err != nil {
		return nil, err
	}
	if res.DeepOnlyMAPE, err = evalModel(widedeep.Config{DeepOnly: true}); err != nil {
		return nil, err
	}

	// --- Selection ablations on the ground-truth instance ---------------
	_, p, err := groundTruthProblem(w, s)
	if err != nil {
		return nil, err
	}
	iters := 200
	noFreeze := mvs.IterView(p.Instance, mvs.IterOptions{
		Iterations: iters, Rand: rand.New(rand.NewSource(3)),
	})
	freeze := mvs.IterView(p.Instance, mvs.IterOptions{
		Iterations: iters, FreezeAfter: iters / 2, Rand: rand.New(rand.NewSource(3)),
	})
	res.IterViewNoFreeze = noFreeze.BestUtility
	res.IterViewFreeze = freeze.BestUtility
	_, res.NoFreezeTailStd = Stability(noFreeze.Trace)
	_, res.FreezeTailStd = Stability(freeze.Trace)

	rlOpts := cfg.RL
	rlOpts.Rand = rand.New(rand.NewSource(4))
	res.RLViewFull = rl.RLView(p.Instance, rlOpts).BestUtility

	noReplay := cfg.RL
	noReplay.MemoryThreshold = 1 << 30 // learning never triggers
	noReplay.Rand = rand.New(rand.NewSource(4))
	res.RLViewNoReplay = rl.RLView(p.Instance, noReplay).BestUtility

	uniform := cfg.RL
	uniform.UniformExploration = true
	uniform.Rand = rand.New(rand.NewSource(4))
	res.RLViewUniformExplo = rl.RLView(p.Instance, uniform).BestUtility

	return res, nil
}

// Render formats the ablation summary.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablations (JOB):\n")
	fmt.Fprintf(&b, "  cost model MAPE: wide+deep=%.2f%% wide-only=%.2f%% deep-only=%.2f%%\n",
		r.WideDeepMAPE, r.WideOnlyMAPE, r.DeepOnlyMAPE)
	fmt.Fprintf(&b, "  IterView best utility: no-freeze=$%.4f freeze=$%.4f\n",
		r.IterViewNoFreeze, r.IterViewFreeze)
	fmt.Fprintf(&b, "  IterView tail std: no-freeze=%.4f freeze=%.4f (freeze converges)\n",
		r.NoFreezeTailStd, r.FreezeTailStd)
	fmt.Fprintf(&b, "  RLView best utility: full=$%.4f no-replay=$%.4f uniform-explore=$%.4f\n",
		r.RLViewFull, r.RLViewNoReplay, r.RLViewUniformExplo)
	return b.String()
}
