package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"autoview/internal/mvs"
	"autoview/internal/rl"
	"autoview/internal/selbase"
)

// TournamentSpec configures a selector tournament. The zero value (or an
// empty spec string) selects sensible defaults; ParseTournamentSpec fills
// one from a compact "key=value;key=value" string so the configuration is
// fuzzable and scriptable from the CLI.
type TournamentSpec struct {
	// Families restricts the raced workload families (JOB, WK1, WK2);
	// empty means all.
	Families []string
	// Sizes are the |Z| rungs raced per family; empty derives the ladder
	// 4, 8, 12, full-|Z| (clamped and deduplicated per instance).
	Sizes []int
	// Seed drives the per-rung candidate sampling and every stochastic
	// selector.
	Seed int64
	// Restarts is the local-search restart schedule (0 = its default).
	Restarts int
	// ILPMaxZ bounds the rungs on which the monolithic exact ILP runs
	// (default 12, the differential-gate boundary); above it the ILP
	// column reports DNF by construction, mirroring the paper's
	// "solvers fail at scale" narrative.
	ILPMaxZ int
	// NodeBudget caps the ILP branch-and-bound (0 = solver default).
	NodeBudget int
}

// withDefaults returns a copy with unset fields resolved.
func (ts TournamentSpec) withDefaults() TournamentSpec {
	if ts.ILPMaxZ == 0 {
		ts.ILPMaxZ = 12
	}
	if ts.Seed == 0 {
		ts.Seed = 1
	}
	return ts
}

// String renders the spec in the exact syntax ParseTournamentSpec accepts
// (round-trip property; the fuzz target leans on it).
func (ts *TournamentSpec) String() string {
	var parts []string
	if len(ts.Families) > 0 {
		parts = append(parts, "families="+strings.Join(ts.Families, ","))
	}
	if len(ts.Sizes) > 0 {
		sz := make([]string, len(ts.Sizes))
		for i, s := range ts.Sizes {
			sz[i] = strconv.Itoa(s)
		}
		parts = append(parts, "sizes="+strings.Join(sz, ","))
	}
	if ts.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(ts.Seed, 10))
	}
	if ts.Restarts != 0 {
		parts = append(parts, "restarts="+strconv.Itoa(ts.Restarts))
	}
	if ts.ILPMaxZ != 0 {
		parts = append(parts, "ilpmax="+strconv.Itoa(ts.ILPMaxZ))
	}
	if ts.NodeBudget != 0 {
		parts = append(parts, "nodes="+strconv.Itoa(ts.NodeBudget))
	}
	return strings.Join(parts, ";")
}

// ParseTournamentSpec parses "key=value;key=value" with keys families
// (comma-separated workload names), sizes (comma-separated positive
// ints), seed, restarts, ilpmax, and nodes. Empty input yields the
// default spec; unknown keys, malformed numbers, and out-of-range values
// are errors, never panics.
func ParseTournamentSpec(s string) (*TournamentSpec, error) {
	spec := &TournamentSpec{}
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("tournament spec: %q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "families":
			for _, f := range strings.Split(val, ",") {
				f = strings.TrimSpace(f)
				switch f {
				case "JOB", "WK1", "WK2":
					spec.Families = append(spec.Families, f)
				default:
					return nil, fmt.Errorf("tournament spec: unknown family %q", f)
				}
			}
		case "sizes":
			for _, ns := range strings.Split(val, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(ns))
				if err != nil {
					return nil, fmt.Errorf("tournament spec: size %q: %w", ns, err)
				}
				if n < 1 || n > 4096 {
					return nil, fmt.Errorf("tournament spec: size %d out of range [1, 4096]", n)
				}
				spec.Sizes = append(spec.Sizes, n)
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tournament spec: seed %q: %w", val, err)
			}
			spec.Seed = n
		case "restarts":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("tournament spec: restarts %q: %w", val, err)
			}
			if n < 0 || n > 64 {
				return nil, fmt.Errorf("tournament spec: restarts %d out of range [0, 64]", n)
			}
			spec.Restarts = n
		case "ilpmax":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("tournament spec: ilpmax %q: %w", val, err)
			}
			if n < 0 || n > 64 {
				return nil, fmt.Errorf("tournament spec: ilpmax %d out of range [0, 64]", n)
			}
			spec.ILPMaxZ = n
		case "nodes":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("tournament spec: nodes %q: %w", val, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("tournament spec: nodes %d negative", n)
			}
			spec.NodeBudget = n
		default:
			return nil, fmt.Errorf("tournament spec: unknown key %q", key)
		}
	}
	return spec, nil
}

// TournamentCell is one (family, |Z|, selector) measurement.
type TournamentCell struct {
	Family   string  `json:"family"`
	Z        int     `json:"z"`
	Selector string  `json:"selector"`
	Utility  float64 `json:"utility"`
	// OptUtility is the exact optimum of the rung's instance (always
	// available: mvs.OptimalExact decomposes and finishes).
	OptUtility float64 `json:"opt_utility"`
	// Gap is (opt − utility)/opt, or 0 when the optimum is 0.
	Gap    float64 `json:"gap"`
	WallMS float64 `json:"wall_ms"`
	// Selected lists the chosen view indices on the rung's (fingerprint-
	// ordered) candidate axis.
	Selected []int `json:"selected"`
	// DNF marks an exact solver that exhausted its node budget (its
	// Utility is then the incumbent, a valid lower bound) or a rung the
	// ILP skips because |Z| > ilpmax.
	DNF bool `json:"dnf,omitempty"`
}

// TournamentResult is the full grid plus the rendered frontier.
type TournamentResult struct {
	Spec  string           `json:"spec"`
	Cells []TournamentCell `json:"cells"`
}

// TournamentSelectors lists the raced selector names in report order.
func TournamentSelectors() []string {
	return []string{"topkben", "iterview", "dqn", "localsearch", "ilp"}
}

// tournamentRung races every selector on one projected instance.
func tournamentRung(family string, sub *mvs.Instance, spec TournamentSpec, cells *[]TournamentCell) error {
	opt := mvs.OptimalExact(sub, 0)
	if !opt.Optimal {
		return fmt.Errorf("tournament: OptimalExact did not finish on %s |Z|=%d", family, sub.NumViews())
	}
	add := func(name string, st *mvs.State, reported float64, wall time.Duration, dnf bool) error {
		if !sub.Feasible(st) {
			return fmt.Errorf("tournament: %s produced an infeasible selection on %s |Z|=%d", name, family, sub.NumViews())
		}
		if u := sub.Utility(st); u != reported { //lint:allow floateq bit-identity with core accounting is the gate's property
			return fmt.Errorf("tournament: %s reported utility %v but core accounting gives %v on %s |Z|=%d",
				name, reported, u, family, sub.NumViews())
		}
		gap := 0.0
		if opt.Utility > 1e-12 {
			gap = (opt.Utility - reported) / opt.Utility
		}
		*cells = append(*cells, TournamentCell{
			Family: family, Z: sub.NumViews(), Selector: name,
			Utility: reported, OptUtility: opt.Utility, Gap: gap,
			WallMS:   float64(wall.Microseconds()) / 1000,
			Selected: mvs.SelectedViews(st.Z), DNF: dnf,
		})
		return nil
	}

	// Top-kBen.
	start := time.Now()
	k, u := selbase.BestK(sub, nil, selbase.TopkBen)
	ranking := selbase.Ranking(sub, nil, selbase.TopkBen)
	st := mvs.NewState(sub)
	for _, j := range ranking[:k] {
		st.Z[j] = true
	}
	st.Y, _ = sub.BestY(st.Z)
	if err := add("topkben", st, u, time.Since(start), false); err != nil {
		return err
	}

	// IterView.
	start = time.Now()
	iv := mvs.IterView(sub, mvs.IterOptions{
		Iterations: 60,
		Rand:       rand.New(rand.NewSource(spec.Seed)),
	})
	if err := add("iterview", iv.Best, iv.BestUtility, time.Since(start), false); err != nil {
		return err
	}

	// DQN (small online budget — the tournament measures the serving
	// loop's marginal choice, not offline training).
	start = time.Now()
	rv := rl.RLView(sub, rl.Options{
		InitIterations:  4,
		Epochs:          8,
		MemoryThreshold: 8,
		LearnEvery:      2,
		Agent:           rl.AgentConfig{Gamma: 0.9, Seed: spec.Seed},
		Rand:            rand.New(rand.NewSource(spec.Seed)),
	})
	if err := add("dqn", rv.Best, rv.BestUtility, time.Since(start), false); err != nil {
		return err
	}

	// Local search, with a cross-Parallelism determinism pin: the same
	// seed at Parallelism 4 must reproduce the serial selection exactly.
	start = time.Now()
	ls := mvs.LocalSearch(sub, mvs.LocalSearchOptions{
		Restarts: spec.Restarts,
		Rand:     rand.New(rand.NewSource(spec.Seed)),
	})
	lsWall := time.Since(start)
	lsPar := mvs.LocalSearch(sub, mvs.LocalSearchOptions{
		Restarts:    spec.Restarts,
		Rand:        rand.New(rand.NewSource(spec.Seed)),
		Parallelism: 4,
	})
	if lsPar.BestUtility != ls.BestUtility { //lint:allow floateq cross-parallelism bit-identity is the property under test
		return fmt.Errorf("tournament: localsearch utility differs across Parallelism on %s |Z|=%d: %v vs %v",
			family, sub.NumViews(), ls.BestUtility, lsPar.BestUtility)
	}
	for j := range ls.Best.Z {
		if ls.Best.Z[j] != lsPar.Best.Z[j] {
			return fmt.Errorf("tournament: localsearch selection differs across Parallelism on %s |Z|=%d at view %d",
				family, sub.NumViews(), j)
		}
	}
	if err := add("localsearch", ls.Best, ls.BestUtility, lsWall, false); err != nil {
		return err
	}

	// Exact ILP, only where |Z| permits.
	if sub.NumViews() <= spec.ILPMaxZ {
		start = time.Now()
		res := mvs.SolveILP(sub, spec.NodeBudget)
		if err := add("ilp", res.State, res.Utility, time.Since(start), !res.Optimal); err != nil {
			return err
		}
	} else {
		*cells = append(*cells, TournamentCell{
			Family: family, Z: sub.NumViews(), Selector: "ilp",
			OptUtility: opt.Utility, Gap: 1, DNF: true,
		})
	}
	return nil
}

// Tournament races Top-kBen, IterView, DQN, local search, and the exact
// ILP across the workload families at growing |Z|, on ground-truth
// (measured-benefit) instances. Every rung's candidate subset is a
// seeded sample of the family's fingerprint-ordered candidate axis, kept
// in ascending index order so sub-instances inherit the fingerprint
// ordering.
func Tournament(s Scale, spec *TournamentSpec) (*TournamentResult, error) {
	ts := spec.withDefaults()
	want := map[string]bool{}
	for _, f := range ts.Families {
		want[f] = true
	}
	res := &TournamentResult{Spec: ts.String()}
	for _, w := range Workloads(s) {
		if len(want) > 0 && !want[w.Name] {
			continue
		}
		_, p, err := groundTruthProblem(w, s)
		if err != nil {
			return nil, fmt.Errorf("tournament: %s: %w", w.Name, err)
		}
		full := p.Instance.NumViews()
		if full == 0 {
			continue
		}
		sizes := ts.Sizes
		if len(sizes) == 0 {
			sizes = []int{4, 8, 12, full}
		}
		seen := map[int]bool{}
		var ladder []int
		for _, z := range sizes {
			if z > full {
				z = full
			}
			if z < 1 || seen[z] {
				continue
			}
			seen[z] = true
			ladder = append(ladder, z)
		}
		sort.Ints(ladder)

		rng := rand.New(rand.NewSource(ts.Seed + int64(len(w.Name))*1009 + int64(full)))
		for _, z := range ladder {
			members := rng.Perm(full)[:z]
			sort.Ints(members)
			sub, _ := mvs.Project(p.Instance, members)
			if err := tournamentRung(w.Name, sub, ts, &res.Cells); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// tournamentGapBounds are the asserted per-selector optimality-gap
// ceilings on differential rungs (|Z| ≤ ilpmax). They intentionally match
// the property-layer bounds in internal/mvs: the tournament re-checks
// them on measured (not synthetic) instances.
var tournamentGapBounds = map[string]float64{
	"topkben":     0.15,
	"iterview":    0.35,
	"dqn":         0.35,
	"localsearch": 1e-6,
	"ilp":         1e-9,
}

// Check is the differential-correctness gate: on every rung small enough
// for the exact ILP, each selector's gap must stay within its asserted
// bound, and a finished ILP must hit the optimum exactly. It returns nil
// when the grid holds.
func (r *TournamentResult) Check() error {
	spec, err := ParseTournamentSpec(r.Spec)
	if err != nil {
		return err
	}
	ts := spec.withDefaults()
	for _, c := range r.Cells {
		if c.Z > ts.ILPMaxZ {
			continue
		}
		if c.Selector == "ilp" && c.DNF {
			continue // honest DNF: incumbent is a lower bound, not gated
		}
		bound, ok := tournamentGapBounds[c.Selector]
		if !ok {
			return fmt.Errorf("tournament: no gap bound registered for selector %q", c.Selector)
		}
		if c.Gap > bound+1e-9 {
			return fmt.Errorf("tournament: %s on %s |Z|=%d gap %.4f exceeds bound %.4f (utility %v vs optimum %v)",
				c.Selector, c.Family, c.Z, c.Gap, bound, c.Utility, c.OptUtility)
		}
		if c.Gap < -1e-9 {
			return fmt.Errorf("tournament: %s on %s |Z|=%d claims utility %v above the optimum %v",
				c.Selector, c.Family, c.Z, c.Utility, c.OptUtility)
		}
	}
	return nil
}

// JSON renders the grid as the BENCH_10 machine-readable payload.
func (r *TournamentResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render formats the utility/wall-clock frontier per family and |Z|.
func (r *TournamentResult) Render() string {
	var b strings.Builder
	b.WriteString("Tournament: utility / wall-clock frontier per selector and |Z|\n")
	type rung struct {
		family string
		z      int
	}
	byRung := map[rung]map[string]TournamentCell{}
	var order []rung
	for _, c := range r.Cells {
		k := rung{c.Family, c.Z}
		if byRung[k] == nil {
			byRung[k] = map[string]TournamentCell{}
			order = append(order, k)
		}
		byRung[k][c.Selector] = c
	}
	for _, k := range order {
		cells := byRung[k]
		fmt.Fprintf(&b, "  %s |Z|=%d (OPT $%.4f):\n", k.family, k.z, cells["topkben"].OptUtility)
		for _, name := range TournamentSelectors() {
			c, ok := cells[name]
			if !ok {
				continue
			}
			if c.DNF && c.Selected == nil {
				fmt.Fprintf(&b, "    %-12s (skipped: |Z| above ilpmax)\n", name)
				continue
			}
			status := ""
			if c.DNF {
				status = " DNF(incumbent)"
			}
			fmt.Fprintf(&b, "    %-12s utility=$%-10.4f gap=%5.1f%% wall=%8.2fms views=%d%s\n",
				name, c.Utility, 100*c.Gap, c.WallMS, len(c.Selected), status)
		}
	}
	return b.String()
}
