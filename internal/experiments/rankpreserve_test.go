package experiments

import (
	"math/rand"
	"reflect"
	"testing"

	"autoview/internal/core"
	"autoview/internal/engine"
	"autoview/internal/featenc"
	"autoview/internal/mvs"
	"autoview/internal/nn"
	"autoview/internal/rl"
	"autoview/internal/selbase"
)

// Estimate-level f32/f64 parity budget in scaled (training) units,
// matching widedeep's predict budget; the absolute term is divided by
// the problem's cost scale when comparing dollar-valued estimates.
const (
	estRTol = 1e-5
	estATol = 1e-6
)

// TestF32RankPreservation is the end-to-end guarantee behind the f32
// serving kernels: on the seeded JOB workload with a trained W-D
// estimator, switching inference from the f64 reference path to the f32
// kernels must not flip any decision downstream of the estimates —
//
//   - every f32 estimate stays within the pinned tolerance of its f64
//     twin,
//   - TopkBen ranks the candidate views in the same order and selects
//     the same best-k prefix,
//   - IterView run on f32-estimated benefits reaches the same selection
//     as on f64-estimated benefits under the same seed, and
//   - RLView's DQN, scored through the f32 mirror, takes exactly the
//     trajectory of the f64-scored agent (identical traces and final
//     selection; Learn is always f64, so equal decisions mean equal
//     runs).
//
// Tolerance rationale and the f64-train/f32-infer contract are in
// PERFORMANCE.md.
func TestF32RankPreservation(t *testing.T) {
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	w := Workloads(Quick)[0] // JOB
	cfg := configFor("JOB", Quick)
	cfg.Estimator = core.EstimatorWideDeep
	cfg.WDTrain.Epochs = 6 // enough training to differentiate candidates
	adv := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)
	pre := adv.Preprocess(w.Plans())
	p, err := adv.BuildProblem(w.Plans(), pre)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model == nil {
		t.Fatal("BuildProblem trained no W-D model")
	}
	scale := p.CostScale()

	assocIndex := make(map[int]int, len(p.AssocQueries))
	for ai, qi := range p.AssocQueries {
		assocIndex[qi] = ai
	}

	// Re-estimate every associated (query, candidate) pair on both
	// kernel paths and build one benefit instance per path.
	estimate := func(f64 bool) (*mvs.Instance, []float64) {
		p.Model.UseF64Kernels(f64)
		defer p.Model.UseF64Kernels(false)
		ben := make([][]float64, len(p.AssocQueries))
		for i := range ben {
			ben[i] = make([]float64, len(p.Candidates))
		}
		var ests []float64
		for j, c := range p.Candidates {
			for _, qi := range c.Queries {
				f := featenc.Extract(p.Queries[qi], c.View.Plan, adv.Cat)
				est := p.Model.Predict(f) / scale
				ests = append(ests, est)
				ben[assocIndex[qi]][j] = p.QueryCost[qi] - est
			}
		}
		return &mvs.Instance{Benefit: ben, Overhead: p.Instance.Overhead, Overlap: p.Instance.Overlap}, ests
	}
	in32, est32 := estimate(false)
	in64, est64 := estimate(true)
	if len(est32) == 0 {
		t.Fatal("no associated pairs to estimate")
	}

	// (a) Per-estimate tolerance (atol widened into dollar units).
	for i := range est32 {
		if !nn.AlmostEqual(est32[i], est64[i], estRTol, estATol/scale) {
			t.Fatalf("estimate %d: f32 %v vs f64 %v (diff %g) outside rtol %g",
				i, est32[i], est64[i], est32[i]-est64[i], estRTol)
		}
	}

	// (b) TopkBen: identical candidate ranking and best-k selection.
	r32 := selbase.Ranking(in32, p.Frequencies(), selbase.TopkBen)
	r64 := selbase.Ranking(in64, p.Frequencies(), selbase.TopkBen)
	if !reflect.DeepEqual(r32, r64) {
		t.Fatalf("TopkBen ranking flipped:\n f32 %v\n f64 %v", r32, r64)
	}
	k32, _ := selbase.BestK(in32, p.Frequencies(), selbase.TopkBen)
	k64, _ := selbase.BestK(in64, p.Frequencies(), selbase.TopkBen)
	if k32 != k64 {
		t.Fatalf("TopkBen best k diverged: f32 %d, f64 %d", k32, k64)
	}

	// (c) IterView: same seed, same selection on both instances.
	iv32 := mvs.IterView(in32, mvs.IterOptions{Iterations: 40, Rand: rand.New(rand.NewSource(9))})
	iv64 := mvs.IterView(in64, mvs.IterOptions{Iterations: 40, Rand: rand.New(rand.NewSource(9))})
	if !reflect.DeepEqual(iv32.Best.Z, iv64.Best.Z) {
		t.Fatalf("IterView selection flipped:\n f32 %v\n f64 %v", iv32.Best.Z, iv64.Best.Z)
	}

	// (d) RLView on one instance, agent scored f32 vs f64: identical
	// decisions mean bit-identical runs (Learn and rewards are f64 in
	// both modes), so the whole trace must match exactly.
	runRL := func(f64Scoring bool) *rl.Result {
		agent := rl.NewAgent(cfg.RL.Agent, rand.New(rand.NewSource(21)))
		agent.UseF64Scoring(f64Scoring)
		opts := cfg.RL
		opts.InitIterations = 30
		opts.Epochs = 12
		opts.Rand = rand.New(rand.NewSource(22))
		opts.Pretrained = agent
		return rl.RLView(in32, opts)
	}
	rv32 := runRL(false)
	rv64 := runRL(true)
	if !reflect.DeepEqual(rv32.Trace, rv64.Trace) {
		t.Fatalf("RLView trace diverged between f32 and f64 scoring (len %d vs %d)", len(rv32.Trace), len(rv64.Trace))
	}
	if !reflect.DeepEqual(rv32.Best.Z, rv64.Best.Z) {
		t.Fatalf("RLView selection flipped:\n f32 %v\n f64 %v", rv32.Best.Z, rv64.Best.Z)
	}
	if rv32.BestUtility != rv64.BestUtility { //lint:allow floateq identical trajectories must yield identical utility
		t.Fatalf("RLView best utility diverged: %v vs %v", rv32.BestUtility, rv64.BestUtility)
	}
}
