package experiments

import (
	"strings"
	"testing"
)

// These tests assert the paper's *qualitative* claims on the quick-scale
// reproduction — who wins, in which direction, and where curves bend —
// rather than absolute numbers, which depend on the simulated substrate.

func TestFig1RedundancyShape(t *testing.T) {
	r, err := Fig1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no projects analyzed")
	}
	// Redundancy exists but is not universal (Figure 1: a fraction of
	// queries per project carries redundant computation).
	var total, redundant int
	for _, row := range r.Rows {
		total += row.Total
		redundant += row.Redundant
	}
	if redundant == 0 || redundant == total {
		t.Errorf("redundant=%d of %d; want a strict fraction", redundant, total)
	}
	// The cumulative curve is non-decreasing.
	for i := 1; i < len(r.Cumulative); i++ {
		if r.Cumulative[i] < r.Cumulative[i-1]-1e-9 {
			t.Fatalf("cumulative curve decreases at %d", i)
		}
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Error("render missing header")
	}
}

func TestTab1Orderings(t *testing.T) {
	r, err := Tab1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(r.Stats))
	}
	job, wk1, wk2 := r.Stats[0], r.Stats[1], r.Stats[2]
	// Table I's orderings.
	if job.Tables != 21 || job.Queries != 226 {
		t.Errorf("JOB shape: %+v", job)
	}
	if wk2.Queries <= wk1.Queries || wk2.Candidates <= wk1.Candidates {
		t.Errorf("WK2 should exceed WK1: wk1=%+v wk2=%+v", wk1, wk2)
	}
	for _, s := range r.Stats {
		if s.AssociatedQuery > s.Queries {
			t.Errorf("|Q| exceeds #query: %+v", s)
		}
		if s.Candidates == 0 || s.OverlappingPairs == 0 {
			t.Errorf("degenerate stats: %+v", s)
		}
	}
	if !strings.Contains(r.Render(), "Table I") {
		t.Error("render missing header")
	}
}

func TestTab2Defaults(t *testing.T) {
	out := Tab2()
	for _, want := range []string{"alpha=1.67e-05", "beta=0.1", "gamma=0.001", "I=50", "n2=90"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTab3Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("tab3 trains eight estimators; skipped in -short")
	}
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	r, err := Tab3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	neural := []string{"N-Exp", "N-Str", "N-Kw", "W-D"}
	classical := []string{"Optimizer", "DeepLearn", "LR", "GBM"}
	for _, name := range r.Names {
		rows := r.Rows[name]
		byM := map[string]Tab3Row{}
		for _, row := range rows {
			byM[row.Method] = row
		}
		// Claim 1 (paper observation 1): every error is finite and
		// positive, and the joint neural models all beat the
		// traditional Optimizer.
		for _, row := range rows {
			if row.MAE <= 0 || row.MAPE <= 0 {
				t.Errorf("%s/%s: degenerate errors %+v", name, row.Method, row)
			}
		}
		for _, m := range neural {
			if byM[m].MAPE > byM["Optimizer"].MAPE {
				t.Errorf("%s: %s MAPE %.2f exceeds Optimizer %.2f",
					name, m, byM[m].MAPE, byM["Optimizer"].MAPE)
			}
		}
		// Claim 2 (paper observation 2): the neural family outperforms
		// the classical methods — the best NN variant beats the best
		// classical method.
		bestOf := func(ms []string) float64 {
			best := byM[ms[0]].MAPE
			for _, m := range ms[1:] {
				if byM[m].MAPE < best {
					best = byM[m].MAPE
				}
			}
			return best
		}
		if bestOf(neural) >= bestOf(classical) {
			t.Errorf("%s: best NN MAPE %.2f does not beat best classical %.2f",
				name, bestOf(neural), bestOf(classical))
		}
		// Claim 3 (paper observation 4): W-D outperforms all the
		// non-ablation baselines. (The W-D vs N-Kw/N-Str/N-Exp ordering
		// needs full-scale training budgets to stabilize; it is
		// reported but not asserted at quick scale — see
		// EXPERIMENTS.md.)
		for _, m := range classical {
			if byM["W-D"].MAPE > byM[m].MAPE {
				t.Errorf("%s: W-D MAPE %.2f worse than %s %.2f",
					name, byM["W-D"].MAPE, m, byM[m].MAPE)
			}
		}
	}
}

func TestFig9RiseAndFall(t *testing.T) {
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	r, err := Fig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Names {
		for method, curve := range r.Curves[name] {
			if curve[0] != 0 {
				t.Errorf("%s/%s: k=0 utility %v", name, method, curve[0])
			}
			peak, peakK := 0.0, 0
			for k, u := range curve {
				if u > peak {
					peak, peakK = u, k
				}
			}
			if peak <= 0 {
				t.Errorf("%s/%s: no positive utility", name, method)
			}
			// Figure 9's shape: curves rise to a maximum and then
			// fall — the peak must come strictly before full k for
			// at least the benefit-ranked strategies.
			if method == "TopkBen" && peakK == len(curve)-1 {
				t.Errorf("%s/%s: peak at full k; no fall-off", name, method)
			}
		}
	}
}

func TestTab4Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("tab4 trains a DQN per dataset; skipped in -short")
	}
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	r, err := Tab4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Names {
		byM := map[string]Tab4Row{}
		for _, row := range r.Rows[name] {
			byM[row.Method] = row
		}
		opt, ok := r.OPT[name]
		if !ok {
			t.Fatalf("%s: OPT missing (decomposed solver should finish)", name)
		}
		// Claim 1: nothing beats the proven optimum.
		for m, row := range byM {
			if row.Utility > opt.Utility+1e-9 {
				t.Errorf("%s: %s utility %v exceeds OPT %v", name, m, row.Utility, opt.Utility)
			}
		}
		// Claim 2: RLView is within 5%% of OPT and not worse than BigSub.
		if byM["RLView"].Utility < 0.95*opt.Utility {
			t.Errorf("%s: RLView %v far from OPT %v", name, byM["RLView"].Utility, opt.Utility)
		}
		if byM["RLView"].Utility < byM["BigSub"].Utility-1e-9 {
			t.Errorf("%s: RLView %v below BigSub %v", name, byM["RLView"].Utility, byM["BigSub"].Utility)
		}
		// Claim 3: RLView is at least as good as every greedy method on
		// the WK workloads and strictly better than at least one
		// everywhere.
		better := false
		for _, m := range []string{"TopkFreq", "TopkOver", "TopkBen", "TopkNorm"} {
			if byM["RLView"].Utility > byM[m].Utility+1e-9 {
				better = true
			}
		}
		if !better {
			t.Errorf("%s: RLView beats no greedy method", name)
		}
	}
}

func TestFig10StabilityClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 runs RLView and IterView to convergence; skipped in -short")
	}
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	r, err := Fig10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Names {
		_, ivStd := Stability(r.Iter[name])
		_, rvStd := Stability(r.RL[name])
		// Figure 10's claim: IterView oscillates; RLView keeps the
		// utility stable.
		if rvStd > ivStd {
			t.Errorf("%s: RLView tail std %v exceeds IterView %v", name, rvStd, ivStd)
		}
	}
}

func TestTab5Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("tab5 runs the full pipeline 12 times; skipped in -short")
	}
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	r, err := Tab5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range r.Datasets {
		reps := r.Reports[ds]
		// The headline claim: the full learned system (W&R) beats the
		// traditional system (O&B).
		if r.Improvement[ds] <= 0 {
			t.Errorf("%s: W&R improvement %.2f%%, want positive", ds, r.Improvement[ds])
		}
		for combo, rep := range reps {
			if rep.SavedRatio <= 0 {
				t.Errorf("%s/%s: saved ratio %.2f%%, want positive", ds, combo, rep.SavedRatio)
			}
			if rep.RewrittenQueries == 0 || rep.NumViews == 0 {
				t.Errorf("%s/%s: degenerate report %+v", ds, combo, rep)
			}
		}
	}
}

func TestAblationClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations train three models and run three RL passes; skipped in -short")
	}
	if raceEnabled {
		t.Skip("deterministic single-goroutine pipeline; too slow under -race")
	}
	r, err := Ablations(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// The wide linear part alone cannot model the plan-dependent costs.
	if r.WideDeepMAPE >= r.WideOnlyMAPE {
		t.Errorf("wide+deep MAPE %.2f should beat wide-only %.2f", r.WideDeepMAPE, r.WideOnlyMAPE)
	}
	// Experience replay is what gives RLView its memory (the paper's
	// motivation over IterView): disabling it must hurt.
	if r.RLViewFull <= r.RLViewNoReplay {
		t.Errorf("RLView with replay %.4f should beat no-replay %.4f", r.RLViewFull, r.RLViewNoReplay)
	}
	// The freeze rule converges (smaller tail variance) at a utility
	// cost — BigSub's trade-off.
	if r.FreezeTailStd >= r.NoFreezeTailStd {
		t.Errorf("freeze tail std %.4f should undercut no-freeze %.4f", r.FreezeTailStd, r.NoFreezeTailStd)
	}
	if r.IterViewFreeze > r.IterViewNoFreeze+1e-9 {
		t.Errorf("freeze best utility %.4f should not exceed no-freeze %.4f", r.IterViewFreeze, r.IterViewNoFreeze)
	}
}
