package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce enumerates all assignments of a small problem.
func bruteForce(p *Problem) (best float64, bestX []bool) {
	n := len(p.Obj)
	best = math.Inf(-1)
	for mask := 0; mask < 1<<n; mask++ {
		feasible := true
		for _, c := range p.Cons {
			var lhs float64
			for _, t := range c.Terms {
				if mask&(1<<t.Var) != 0 {
					lhs += t.Coef
				}
			}
			if lhs > c.RHS+1e-9 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		var val float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				val += p.Obj[i]
			}
		}
		if val > best {
			best = val
			bestX = make([]bool, n)
			for i := 0; i < n; i++ {
				bestX[i] = mask&(1<<i) != 0
			}
		}
	}
	return best, bestX
}

func TestMaximizeSimple(t *testing.T) {
	// max 3a + 2b - c  s.t. a+b <= 1.
	p := &Problem{
		Obj: []float64{3, 2, -1},
		Cons: []Constraint{
			{Terms: []Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, RHS: 1},
		},
	}
	sol, err := p.Maximize()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal || sol.Value != 3 || !sol.X[0] || sol.X[1] || sol.X[2] {
		t.Errorf("sol = %+v", sol)
	}
}

func TestMaximizeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9) // up to 10 variables
		p := &Problem{Obj: make([]float64, n)}
		for i := range p.Obj {
			p.Obj[i] = math.Round((rng.Float64()*20-8)*10) / 10
		}
		nc := rng.Intn(6)
		for c := 0; c < nc; c++ {
			var terms []Term
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.4 {
					terms = append(terms, Term{Var: v, Coef: math.Round((rng.Float64()*4 - 1) * 10 / 10)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.Cons = append(p.Cons, Constraint{Terms: terms, RHS: math.Round(rng.Float64() * 3)})
		}
		want, _ := bruteForce(p)
		sol, err := p.Maximize()
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Optimal {
			t.Fatalf("trial %d: not optimal within budget", trial)
		}
		if math.Abs(sol.Value-want) > 1e-6 {
			t.Fatalf("trial %d: got %v, brute force %v (p=%+v)", trial, sol.Value, want, p)
		}
		// The reported assignment must actually achieve the value and
		// satisfy all constraints.
		var check float64
		for i, x := range sol.X {
			if x {
				check += p.Obj[i]
			}
		}
		if math.Abs(check-sol.Value) > 1e-9 {
			t.Fatalf("trial %d: assignment value %v != reported %v", trial, check, sol.Value)
		}
		for ci, c := range p.Cons {
			var lhs float64
			for _, tm := range c.Terms {
				if sol.X[tm.Var] {
					lhs += tm.Coef
				}
			}
			if lhs > c.RHS+1e-9 {
				t.Fatalf("trial %d: constraint %d violated", trial, ci)
			}
		}
	}
}

func TestMaximizeBadVariable(t *testing.T) {
	p := &Problem{Obj: []float64{1}, Cons: []Constraint{{Terms: []Term{{Var: 3, Coef: 1}}, RHS: 1}}}
	if _, err := p.Maximize(); err == nil {
		t.Error("out-of-range variable should error")
	}
}

func TestMaximizeBudgetExhaustion(t *testing.T) {
	n := 20
	p := &Problem{Obj: make([]float64, n), NodeBudget: 5}
	for i := range p.Obj {
		p.Obj[i] = 1
	}
	sol, err := p.Maximize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal {
		t.Error("budget of 5 nodes cannot prove optimality for 20 vars")
	}
}

func TestMWISAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()*10 - 2
		}
		conflict := make([][]bool, n)
		for i := range conflict {
			conflict[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					conflict[i][j] = true
					conflict[j][i] = true
				}
			}
		}
		// Brute force.
		var want float64
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			var val float64
			for i := 0; i < n && ok; i++ {
				if mask&(1<<i) == 0 {
					continue
				}
				val += w[i]
				for j := i + 1; j < n; j++ {
					if mask&(1<<j) != 0 && conflict[i][j] {
						ok = false
						break
					}
				}
			}
			if ok && val > want {
				want = val
			}
		}
		sel, got := MaxWeightIndependentSet(w, conflict)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MWIS %v, brute force %v", trial, got, want)
		}
		// Verify independence and value.
		var check float64
		for i := range sel {
			if !sel[i] {
				continue
			}
			check += w[i]
			for j := range sel {
				if sel[j] && conflict[i][j] {
					t.Fatalf("trial %d: conflicting pair selected", trial)
				}
			}
		}
		if math.Abs(check-got) > 1e-9 {
			t.Fatalf("trial %d: selection value %v != reported %v", trial, check, got)
		}
	}
}

func TestMWISNeverPicksNegative(t *testing.T) {
	w := []float64{-1, -2, 0}
	conflict := [][]bool{{false, false, false}, {false, false, false}, {false, false, false}}
	sel, val := MaxWeightIndependentSet(w, conflict)
	if val != 0 {
		t.Errorf("value = %v, want 0", val)
	}
	for i, s := range sel {
		if s {
			t.Errorf("vertex %d selected with weight %v", i, w[i])
		}
	}
}

func BenchmarkMWIS30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 30
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64() * 10
	}
	conflict := make([][]bool, n)
	for i := range conflict {
		conflict[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				conflict[i][j] = true
				conflict[j][i] = true
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightIndependentSet(w, conflict)
	}
}
