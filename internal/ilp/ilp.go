// Package ilp provides exact 0-1 integer linear programming by branch and
// bound, standing in for the PuLP/Gurobi solvers the paper calls
// (Section V-A: "we can solve the problem efficiently by existing ILP
// solvers").
//
// Two entry points cover the paper's needs:
//
//   - Problem.Maximize: a generic small-scale 0-1 maximizer with ≤
//     constraints, used for per-query Y-Opt subproblems.
//   - MaxWeightIndependentSet: the Y-Opt subproblem in its natural form —
//     the overlap constraints make view choice per query a maximum-weight
//     independent-set problem on the conflict graph — with a tighter
//     bound, used on hot paths.
package ilp

import (
	"fmt"
	"math"
	"sort"
)

// Term is one coefficient of a linear constraint.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is Σ Coef_i·x_i ≤ RHS over binary variables.
type Constraint struct {
	Terms []Term
	RHS   float64
}

// Problem is a 0-1 maximization problem.
type Problem struct {
	// Obj holds the objective coefficient of each binary variable.
	Obj []float64
	// Cons are the ≤ constraints.
	Cons []Constraint
	// NodeBudget caps branch-and-bound nodes (0 = 10 million). When the
	// budget is exhausted the best incumbent is returned with
	// optimal=false.
	NodeBudget int
	// Warm, when non-nil, is a warm-start assignment: if it is feasible
	// it becomes the initial incumbent, so the bound prunes against a
	// strong value from the first node (infeasible warm starts are
	// ignored). Callers typically seed it from a heuristic solution.
	Warm []bool
}

// Solution is the result of Maximize.
type Solution struct {
	X       []bool
	Value   float64
	Optimal bool
	Nodes   int
}

// Maximize solves the problem exactly (within the node budget).
func (p *Problem) Maximize() (Solution, error) {
	n := len(p.Obj)
	for _, c := range p.Cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= n {
				return Solution{}, fmt.Errorf("ilp: constraint references variable %d of %d", t.Var, n)
			}
		}
	}
	budget := p.NodeBudget
	if budget <= 0 {
		budget = 10_000_000
	}

	// Branch order: largest |objective| first, so strong decisions are
	// made early and the additive bound tightens quickly.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return math.Abs(p.Obj[order[a]]) > math.Abs(p.Obj[order[b]])
	})

	// suffixBound[k] is an admissible bound on the objective the unfixed
	// tail order[k:] can still contribute. The base form sums positive
	// coefficients; variables covered by an all-ones Σx ≤ 1 constraint
	// (a clique / GUB row) are partitioned into one group per such
	// constraint and contribute at most their group's maximum — any
	// feasible assignment picks at most one variable per group, so the
	// grouped sum still over-estimates every completion while pruning
	// set-packing structures exponentially harder than the plain sum.
	groupOf := make([]int, n)
	for v := range groupOf {
		groupOf[v] = -1
	}
	for gid, c := range p.Cons {
		if !isCliqueRow(c) {
			continue
		}
		for _, t := range c.Terms {
			if groupOf[t.Var] < 0 {
				groupOf[t.Var] = gid
			}
		}
	}
	suffixBound := make([]float64, n+1)
	groupMax := make(map[int]float64, len(p.Cons))
	for k := n - 1; k >= 0; k-- {
		v := order[k]
		pos := math.Max(0, p.Obj[v])
		g := groupOf[v]
		if g < 0 {
			suffixBound[k] = suffixBound[k+1] + pos
			continue
		}
		inc := 0.0
		if pos > groupMax[g] {
			inc = pos - groupMax[g]
			groupMax[g] = pos
		}
		suffixBound[k] = suffixBound[k+1] + inc
	}

	// varCons[v] lists the constraints touching v for incremental slack
	// updates.
	varCons := make([][]int, n)
	for ci, c := range p.Cons {
		for _, t := range c.Terms {
			varCons[t.Var] = append(varCons[t.Var], ci)
		}
	}
	slack := make([]float64, len(p.Cons))
	minRemain := make([]float64, len(p.Cons)) // most-negative achievable remaining sum
	for ci, c := range p.Cons {
		slack[ci] = c.RHS
		for _, t := range c.Terms {
			if t.Coef < 0 {
				minRemain[ci] += t.Coef
			}
		}
	}
	coefOf := func(ci, v int) float64 {
		for _, t := range p.Cons[ci].Terms {
			if t.Var == v {
				return t.Coef
			}
		}
		return 0
	}

	sol := Solution{X: make([]bool, n), Value: math.Inf(-1)}
	if len(p.Warm) == n {
		feasible := true
		for _, c := range p.Cons {
			var lhs float64
			for _, t := range c.Terms {
				if p.Warm[t.Var] {
					lhs += t.Coef
				}
			}
			if lhs > c.RHS+1e-9 {
				feasible = false
				break
			}
		}
		if feasible {
			copy(sol.X, p.Warm)
			sol.Value = 0
			for v, set := range p.Warm {
				if set {
					sol.Value += p.Obj[v]
				}
			}
		}
	}
	cur := make([]bool, n)
	var curVal float64
	nodes := 0

	var rec func(k int) bool // returns false when budget exhausted
	rec = func(k int) bool {
		nodes++
		if nodes > budget {
			return false
		}
		if curVal+suffixBound[k] <= sol.Value {
			return true // cannot beat the incumbent
		}
		if k == n {
			if curVal > sol.Value {
				sol.Value = curVal
				copy(sol.X, cur)
			}
			return true
		}
		v := order[k]
		// Try x_v = 1 first when it helps the objective.
		tryOrder := []bool{true, false}
		if p.Obj[v] <= 0 {
			tryOrder = []bool{false, true}
		}
		for _, val := range tryOrder {
			feasible := true
			if val {
				for _, ci := range varCons[v] {
					cf := coefOf(ci, v)
					newSlack := slack[ci] - cf
					// Infeasible if even the most favorable
					// remaining assignment cannot satisfy it.
					rem := minRemain[ci]
					if cf < 0 {
						rem -= cf
					}
					if newSlack < rem-1e-9 {
						feasible = false
						break
					}
				}
			} else {
				for _, ci := range varCons[v] {
					cf := coefOf(ci, v)
					rem := minRemain[ci]
					if cf < 0 {
						rem -= cf
					}
					if slack[ci] < rem-1e-9 {
						feasible = false
						break
					}
				}
			}
			if !feasible {
				continue
			}
			// Apply.
			if val {
				cur[v] = true
				curVal += p.Obj[v]
				for _, ci := range varCons[v] {
					cf := coefOf(ci, v)
					slack[ci] -= cf
					if cf < 0 {
						minRemain[ci] -= cf
					}
				}
			} else {
				for _, ci := range varCons[v] {
					if cf := coefOf(ci, v); cf < 0 {
						minRemain[ci] -= cf
					}
				}
			}
			ok := rec(k + 1)
			// Undo.
			if val {
				cur[v] = false
				curVal -= p.Obj[v]
				for _, ci := range varCons[v] {
					cf := coefOf(ci, v)
					slack[ci] += cf
					if cf < 0 {
						minRemain[ci] += cf
					}
				}
			} else {
				for _, ci := range varCons[v] {
					if cf := coefOf(ci, v); cf < 0 {
						minRemain[ci] += cf
					}
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	finished := rec(0)
	sol.Optimal = finished
	sol.Nodes = nodes
	if math.IsInf(sol.Value, -1) {
		// No feasible assignment found (can only happen with a
		// pathological budget); report the all-zero solution if
		// feasible.
		sol.Value = 0
	}
	return sol, nil
}

// isCliqueRow reports whether a constraint is an all-ones Σx ≤ 1 row —
// the GUB/clique shape the suffix bound can exploit. Coefficients and
// the RHS are compared against 1 with a tolerance so analytically
// constructed rows qualify regardless of float provenance.
func isCliqueRow(c Constraint) bool {
	if len(c.Terms) < 2 || math.Abs(c.RHS-1) > 1e-12 {
		return false
	}
	for _, t := range c.Terms {
		if math.Abs(t.Coef-1) > 1e-12 {
			return false
		}
	}
	return true
}

// MaxWeightIndependentSet solves max Σ w_i x_i subject to x_i + x_j ≤ 1
// for every conflicting pair, exactly. Vertices with non-positive weight
// are never selected. conflict must be symmetric.
func MaxWeightIndependentSet(weights []float64, conflict [][]bool) ([]bool, float64) {
	n := len(weights)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if weights[i] > 0 {
			order = append(order, i)
		}
	}
	// Heaviest first: good incumbents early.
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })

	suffix := make([]float64, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + weights[order[k]]
	}

	best := make([]bool, n)
	var bestVal float64
	cur := make([]bool, n)
	blocked := make([]int, n) // count of selected neighbors

	var rec func(k int, val float64)
	rec = func(k int, val float64) {
		if val > bestVal {
			bestVal = val
			copy(best, cur)
		}
		if k == len(order) || val+suffix[k] <= bestVal {
			return
		}
		v := order[k]
		if blocked[v] == 0 {
			cur[v] = true
			for u := 0; u < n; u++ {
				if conflict[v][u] {
					blocked[u]++
				}
			}
			rec(k+1, val+weights[v])
			cur[v] = false
			for u := 0; u < n; u++ {
				if conflict[v][u] {
					blocked[u]--
				}
			}
		}
		rec(k+1, val)
	}
	rec(0, 0)
	return best, bestVal
}
