package plan

import (
	"fmt"
	"strings"
)

// ToSQL renders a plan back into SQL text parsable by internal/sqlparse.
// Derived tables are introduced wherever the tree shape requires them; the
// generated aliases are q0, q1, ... Round-tripping through Parse yields a
// semantically equivalent plan (equal normalized fingerprints) whenever
// the plan's intermediate schemas carry unique column names; duplicate
// names (e.g. both join sides exposing user_id) are disambiguated with
// _2-style output aliases, which renames those columns.
func ToSQL(n *Node) string {
	g := &sqlGen{}
	return g.render(n)
}

// ViewDDL renders a CREATE MATERIALIZED VIEW statement for a subquery
// plan.
func ViewDDL(name string, n *Node) string {
	return fmt.Sprintf("create materialized view %s as\n%s;", name, ToSQL(n))
}

type sqlGen struct{ aliases int }

func (g *sqlGen) nextAlias() string {
	g.aliases++
	return fmt.Sprintf("q%d", g.aliases-1)
}

// source is a renderable FROM item plus how to reference its columns.
type source struct {
	// fromSQL is the FROM clause text (table name or derived table with
	// alias, possibly with joins).
	fromSQL string
	// cols[i] is the SQL expression referencing the i-th column of the
	// node's schema.
	cols []string
	// where carries filter text still attachable at this level ("" if
	// none).
	where string
}

// render produces a full SELECT statement for any node.
func (g *sqlGen) render(n *Node) string {
	switch n.Op {
	case OpProject, OpAggregate:
		return g.renderSelect(n)
	case OpFilter:
		if n.Child(0).Op == OpAggregate {
			// HAVING shape.
			return g.renderSelect(n)
		}
		src := g.source(n)
		return selectAll(src, n.Schema)
	default:
		src := g.source(n)
		return selectAll(src, n.Schema)
	}
}

// selectAll wraps a source into "select <cols> from ...".
func selectAll(src source, schema []ColInfo) string {
	items := make([]string, len(src.cols))
	used := map[string]int{}
	for i, expr := range src.cols {
		name := schema[i].Name
		if c := used[name]; c > 0 {
			name = fmt.Sprintf("%s_%d", name, c+1)
		}
		used[schema[i].Name]++
		if expr == name || strings.HasSuffix(expr, "."+name) {
			items[i] = expr
		} else {
			items[i] = expr + " as " + name
		}
	}
	sql := "select " + strings.Join(items, ", ") + " from " + src.fromSQL
	if src.where != "" {
		sql += " where " + src.where
	}
	return sql
}

// renderSelect handles Project, Aggregate, and Filter-over-Aggregate roots.
func (g *sqlGen) renderSelect(n *Node) string {
	switch n.Op {
	case OpProject:
		src := g.source(n.Child(0))
		items := make([]string, len(n.Proj))
		used := map[string]int{}
		for i, pc := range n.Proj {
			name := pc.Name
			if c := used[name]; c > 0 {
				name = fmt.Sprintf("%s_%d", name, c+1)
			}
			used[pc.Name]++
			expr := src.cols[pc.Src]
			if expr == name || strings.HasSuffix(expr, "."+name) {
				items[i] = expr
			} else {
				items[i] = expr + " as " + name
			}
		}
		sql := "select " + strings.Join(items, ", ") + " from " + src.fromSQL
		if src.where != "" {
			sql += " where " + src.where
		}
		return sql
	case OpAggregate:
		return g.renderAggregate(n, nil)
	case OpFilter: // HAVING
		agg := n.Child(0)
		return g.renderAggregate(agg, n.Pred)
	default:
		src := g.source(n)
		return selectAll(src, n.Schema)
	}
}

func (g *sqlGen) renderAggregate(n *Node, having Pred) string {
	src := g.source(n.Child(0))
	items := make([]string, len(n.AggOuts))
	groupExprs := make([]string, len(n.GroupBy))
	for i, gc := range n.GroupBy {
		groupExprs[i] = src.cols[gc]
	}
	for i, spec := range n.AggOuts {
		name := n.Schema[i].Name
		if spec.FromGroup {
			expr := groupExprs[spec.Idx]
			if expr == name || strings.HasSuffix(expr, "."+name) {
				items[i] = expr
			} else {
				items[i] = expr + " as " + name
			}
			continue
		}
		a := n.Aggs[spec.Idx]
		arg := "*"
		if a.Col >= 0 {
			arg = src.cols[a.Col]
		}
		items[i] = fmt.Sprintf("%s(%s) as %s", strings.ToLower(a.Func.String()), arg, name)
	}
	sql := "select " + strings.Join(items, ", ") + " from " + src.fromSQL
	if src.where != "" {
		sql += " where " + src.where
	}
	if len(groupExprs) > 0 {
		sql += " group by " + strings.Join(groupExprs, ", ")
	}
	if having != nil {
		sql += " having " + predSQL(having, schemaNames(n.Schema))
	}
	return sql
}

func schemaNames(schema []ColInfo) []string {
	out := make([]string, len(schema))
	for i, c := range schema {
		out[i] = c.Name
	}
	return out
}

// source flattens Scan / Filter / Join chains into a FROM clause; other
// operators become derived tables.
func (g *sqlGen) source(n *Node) source {
	switch n.Op {
	case OpScan:
		cols := make([]string, len(n.Schema))
		for i, c := range n.Schema {
			cols[i] = n.Table + "." + c.Name
		}
		return source{fromSQL: n.Table, cols: cols}
	case OpFilter:
		if n.Child(0).Op == OpAggregate {
			return g.derived(n)
		}
		src := g.source(n.Child(0))
		pred := predSQL(n.Pred, src.cols)
		if src.where != "" {
			pred = src.where + " and " + pred
		}
		src.where = pred
		return src
	case OpJoin:
		left := g.sourceForJoin(n.Child(0))
		right := g.sourceForJoin(n.Child(1))
		conds := make([]string, len(n.JoinCond))
		for i, je := range n.JoinCond {
			conds[i] = left.cols[je.Left] + " = " + right.cols[je.Right]
		}
		jt := "inner join"
		if n.JoinType == LeftJoin {
			jt = "left join"
		}
		from := left.fromSQL + " " + jt + " " + right.fromSQL + " on " + strings.Join(conds, " and ")
		cols := append(append([]string{}, left.cols...), right.cols...)
		// Residual filters from either side must stay below the join,
		// so sides with filters were wrapped by sourceForJoin; no
		// where can remain here.
		return source{fromSQL: from, cols: cols}
	default:
		return g.derived(n)
	}
}

// sourceForJoin renders a join input: bare tables get a fresh alias (so
// self-joins stay unambiguous), anything else becomes a derived table so
// its filters stay in place.
func (g *sqlGen) sourceForJoin(n *Node) source {
	if n.Op == OpScan {
		alias := g.nextAlias()
		cols := make([]string, len(n.Schema))
		for i, c := range n.Schema {
			cols[i] = alias + "." + c.Name
		}
		return source{fromSQL: n.Table + " " + alias, cols: cols}
	}
	return g.derived(n)
}

// derived wraps a node as "( select ... ) alias".
func (g *sqlGen) derived(n *Node) source {
	inner := g.render(n)
	alias := g.nextAlias()
	cols := make([]string, len(n.Schema))
	used := map[string]int{}
	for i, c := range n.Schema {
		name := c.Name
		if cnt := used[name]; cnt > 0 {
			name = fmt.Sprintf("%s_%d", name, cnt+1)
		}
		used[c.Name]++
		cols[i] = alias + "." + name
	}
	return source{fromSQL: "( " + inner + " ) " + alias, cols: cols}
}

// predSQL renders a bound predicate with column references resolved
// through cols.
func predSQL(p Pred, cols []string) string {
	switch x := p.(type) {
	case nil:
		return ""
	case *Cmp:
		return operandSQL(x.L, cols) + " " + cmpSQL(x.Op) + " " + operandSQL(x.R, cols)
	case *Bool:
		l, r := predSQL(x.L, cols), predSQL(x.R, cols)
		if x.Op == BoolOr {
			return "(" + l + " or " + r + ")"
		}
		return l + " and " + r
	default:
		return ""
	}
}

func operandSQL(o Operand, cols []string) string {
	if o.IsCol {
		return cols[o.Col]
	}
	return o.Const.String()
}

func cmpSQL(op CmpOp) string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "="
	}
}
