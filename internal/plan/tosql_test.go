package plan

import (
	"strings"
	"testing"
)

// roundTrip parses SQL, renders the plan back to SQL, re-parses, and
// asserts semantic equivalence via normalized fingerprints.
func roundTrip(t *testing.T, sql string) {
	t.Helper()
	cat := paperCatalog(t)
	orig, err := Parse(sql, cat)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	rendered := ToSQL(orig)
	back, err := Parse(rendered, cat)
	if err != nil {
		t.Fatalf("re-parse rendered SQL failed: %v\nrendered: %s", err, rendered)
	}
	if NormalizedFingerprint(orig) != NormalizedFingerprint(back) {
		t.Fatalf("round trip changed semantics\noriginal:  %s\nrendered:  %s\norig plan:\n%s\nback plan:\n%s",
			sql, rendered, orig, back)
	}
}

func TestToSQLRoundTrips(t *testing.T) {
	cases := []string{
		"select user_id, memo from user_memo",
		"select user_id from user_memo where dt = '1010' and memo_type = 'pen'",
		"select user_id, count(*) as cnt from user_memo group by user_id",
		"select user_id, count(*) as cnt, max(memo) as mx from user_memo where dt = '1' group by user_id",
		"select user_id, count(*) as cnt from user_memo group by user_id having cnt > 2",
		"select x.user_id from ( select user_id, memo from user_memo where dt = '3' ) x",
		`select t1.user_id, count(*) as cnt
		 from ( select user_id, memo from user_memo where dt='1010' and memo_type = 'pen' ) t1
		 inner join ( select user_id, action from user_action where type = 1 and dt='1010' ) t2
		 on t1.user_id = t2.user_id group by t1.user_id`,
		"select user_memo.memo from user_memo inner join user_action on user_memo.user_id = user_action.user_id",
		"select m.memo from user_memo m left join user_action a on m.user_id = a.user_id",
	}
	for _, sql := range cases {
		roundTrip(t, sql)
	}
}

func TestToSQLSelfJoinAliases(t *testing.T) {
	roundTrip(t, "select a.memo from user_memo a inner join user_memo b on a.user_id = b.user_id")
}

func TestToSQLSubqueryPlans(t *testing.T) {
	// Every extracted subquery of the paper's example must render to
	// valid, semantically equivalent SQL — this is the view-DDL path.
	root := buildPaperPlan(t)
	cat := paperCatalog(t)
	for i, s := range ExtractSubqueries(root) {
		rendered := ToSQL(s.Root)
		back, err := Parse(rendered, cat)
		if err != nil {
			t.Fatalf("subquery %d: rendered SQL does not parse: %v\n%s", i, err, rendered)
		}
		if uniqueNames(s.Root.Schema) {
			if NormalizedFingerprint(back) != NormalizedFingerprint(s.Root) {
				t.Fatalf("subquery %d: semantics changed\n%s", i, rendered)
			}
		} else if len(back.Schema) != len(s.Root.Schema) {
			// Duplicate output names get _2-style aliases (documented),
			// so only arity is pinned for those.
			t.Fatalf("subquery %d: arity changed", i)
		}
	}
}

func uniqueNames(schema []ColInfo) bool {
	seen := map[string]bool{}
	for _, c := range schema {
		if seen[c.Name] {
			return false
		}
		seen[c.Name] = true
	}
	return true
}

func TestViewDDL(t *testing.T) {
	root := buildPaperPlan(t)
	sub := ExtractSubqueries(root)[0]
	ddl := ViewDDL("mv_demo", sub.Root)
	if !strings.HasPrefix(ddl, "create materialized view mv_demo as\n") {
		t.Errorf("DDL prefix wrong: %s", ddl)
	}
	if !strings.HasSuffix(ddl, ";") {
		t.Error("DDL should end with a semicolon")
	}
}

func TestToSQLDuplicateJoinColumns(t *testing.T) {
	// Both join sides expose user_id; the rendered select list must
	// disambiguate and still parse.
	cat := paperCatalog(t)
	sql := "select m.user_id, a.user_id from user_memo m inner join user_action a on m.user_id = a.user_id"
	orig, err := Parse(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	rendered := ToSQL(orig)
	if _, err := Parse(rendered, cat); err != nil {
		t.Fatalf("rendered duplicate-column SQL does not parse: %v\n%s", err, rendered)
	}
}
