package plan

import (
	"strings"
	"testing"

	"autoview/internal/catalog"
)

// paperCatalog builds the two-table schema of the paper's Figure 2 example.
func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tables := []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
				{Name: "memo", Type: catalog.TypeString, Distinct: 50},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 5},
				{Name: "dt", Type: catalog.TypeString, Distinct: 10},
			},
			Stats: catalog.TableStats{Rows: 1000},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
				{Name: "action", Type: catalog.TypeString, Distinct: 20},
				{Name: "type", Type: catalog.TypeInt, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 10},
			},
			Stats: catalog.TableStats{Rows: 2000},
		},
	}
	for _, tb := range tables {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

const paperSQL = `
select t1.user_id, count(*) as cnt
from ( select user_id, memo from user_memo where dt='1010' and memo_type = 'pen' ) t1
inner join ( select user_id, action from user_action where type = 1 and dt='1010' ) t2
on t1.user_id = t2.user_id
group by t1.user_id`

func buildPaperPlan(t *testing.T) *Node {
	t.Helper()
	n, err := Parse(paperSQL, paperCatalog(t))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return n
}

func TestBuildPaperExampleShape(t *testing.T) {
	root := buildPaperPlan(t)
	// Expected tree: Aggregate -> Join -> (Project -> Filter -> Scan) x2.
	if root.Op != OpAggregate {
		t.Fatalf("root is %v, want Aggregate", root.Op)
	}
	join := root.Child(0)
	if join.Op != OpJoin || join.JoinType != InnerJoin {
		t.Fatalf("child is %v/%v, want inner Join", join.Op, join.JoinType)
	}
	for side := 0; side < 2; side++ {
		p := join.Child(side)
		if p.Op != OpProject {
			t.Fatalf("join child %d is %v, want Project", side, p.Op)
		}
		f := p.Child(0)
		if f.Op != OpFilter {
			t.Fatalf("under project %d is %v, want Filter", side, f.Op)
		}
		s := f.Child(0)
		if s.Op != OpScan {
			t.Fatalf("leaf %d is %v, want Scan", side, s.Op)
		}
	}
	if got := root.Count(); got != 8 {
		t.Errorf("operator count = %d, want 8", got)
	}
	tables := root.Tables()
	if len(tables) != 2 || tables[0] != "user_memo" || tables[1] != "user_action" {
		t.Errorf("tables = %v", tables)
	}
	// Output schema: user_id then cnt.
	if len(root.Schema) != 2 || root.Schema[0].Name != "user_id" || root.Schema[1].Name != "cnt" {
		t.Errorf("schema = %v", root.Schema)
	}
	if root.Schema[1].Type != catalog.TypeInt {
		t.Errorf("count output type = %v, want Int", root.Schema[1].Type)
	}
}

func TestSerializePaperExample(t *testing.T) {
	root := buildPaperPlan(t)
	seqs := Serialize(root)
	if len(seqs) != 8 {
		t.Fatalf("want 8 operator sequences, got %d", len(seqs))
	}
	// Pre-order: Aggregate, Join, Project, Filter, Scan, Project, Filter, Scan.
	wantOps := []string{"Aggregate", "Join", "Project", "Filter", "Scan", "Project", "Filter", "Scan"}
	for i, s := range seqs {
		if s[0].Text != wantOps[i] {
			t.Errorf("seq %d starts with %q, want %q", i, s[0].Text, wantOps[i])
		}
	}
	// Filter D of the paper: [Filter, AND, EQ, dt, '1010', EQ, memo_type, 'pen'].
	d := seqs[3]
	want := []string{"Filter", "AND", "EQ", "dt", "'1010'", "EQ", "memo_type", "'pen'"}
	if len(d) != len(want) {
		t.Fatalf("filter seq = %v, want %v", d.Texts(), want)
	}
	for i := range want {
		if d[i].Text != want[i] {
			t.Errorf("filter token %d = %q, want %q", i, d[i].Text, want[i])
		}
	}
	// Literal tokens must be flagged as strings; keywords must not.
	if !d[4].Str || !d[7].Str {
		t.Error("literal tokens should be Str")
	}
	if d[0].Str || d[2].Str || d[3].Str {
		t.Error("keyword tokens should not be Str")
	}
	// Scan E of the paper: [Scan, user_memo].
	if got := seqs[4].String(); got != "[Scan, user_memo]" {
		t.Errorf("scan seq = %s", got)
	}
}

func TestExtractSubqueriesPaperExample(t *testing.T) {
	root := buildPaperPlan(t)
	subs := ExtractSubqueries(root)
	// Proper subplans rooted at Join/Project: s3 (join), s1, s2 (projects).
	if len(subs) != 3 {
		t.Fatalf("want 3 subqueries, got %d", len(subs))
	}
	ops := map[OpType]int{}
	for _, s := range subs {
		ops[s.Root.Op]++
	}
	if ops[OpJoin] != 1 || ops[OpProject] != 2 {
		t.Errorf("subquery ops = %v, want 1 Join + 2 Projects", ops)
	}
	// The join subquery (s3) must overlap both projects (s1, s2) per Def. 5.
	var join, p1, p2 *Node
	for _, s := range subs {
		switch {
		case s.Root.Op == OpJoin:
			join = s.Root
		case p1 == nil:
			p1 = s.Root
		default:
			p2 = s.Root
		}
	}
	if !Overlapping(join, p1) || !Overlapping(join, p2) {
		t.Error("s3 should overlap s1 and s2")
	}
	if Overlapping(p1, p2) {
		t.Error("s1 and s2 scan different tables and should not overlap")
	}
}

func TestFingerprintInvariances(t *testing.T) {
	cat := paperCatalog(t)
	mustPlan := func(sql string) *Node {
		n, err := Parse(sql, cat)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		return n
	}
	// Conjunct order must not matter.
	a := mustPlan("select user_id from user_memo where dt='1010' and memo_type='pen'")
	b := mustPlan("select user_id from user_memo where memo_type='pen' and dt='1010'")
	if FingerprintOf(a) != FingerprintOf(b) {
		t.Error("conjunct order changed fingerprint")
	}
	// Different constants must matter.
	c := mustPlan("select user_id from user_memo where dt='1011' and memo_type='pen'")
	if FingerprintOf(a) == FingerprintOf(c) {
		t.Error("different constant collided")
	}
	// Aliases must not matter.
	d := mustPlan("select x.user_id from (select user_id from user_memo where dt='1010' and memo_type='pen') x")
	e := mustPlan("select y.user_id from (select user_id from user_memo where dt='1010' and memo_type='pen') y")
	if FingerprintOf(d) != FingerprintOf(e) {
		t.Error("alias changed fingerprint")
	}
	// Inner join input order must not matter.
	j1 := mustPlan("select user_memo.memo from user_memo inner join user_action on user_memo.user_id = user_action.user_id")
	j2 := mustPlan("select user_memo.memo from user_action inner join user_memo on user_memo.user_id = user_action.user_id")
	if FingerprintOf(j1.Child(0)) != FingerprintOf(j2.Child(0)) {
		t.Error("inner-join commutation changed fingerprint")
	}
	// Projection order is significant by design.
	p1 := mustPlan("select user_id, memo from user_memo")
	p2 := mustPlan("select memo, user_id from user_memo")
	if FingerprintOf(p1) == FingerprintOf(p2) {
		t.Error("projection order should be significant")
	}
}

func TestFindOccurrences(t *testing.T) {
	root := buildPaperPlan(t)
	subs := ExtractSubqueries(root)
	for _, s := range subs {
		occ := FindOccurrences(root, s.Fingerprint)
		if len(occ) != 1 {
			t.Errorf("subquery %s: want 1 occurrence, got %d", s.Fingerprint.Short(), len(occ))
		}
		if len(occ) == 1 && occ[0] != s.Root {
			t.Error("occurrence should be the original node")
		}
	}
	if ContainsFingerprint(root, Fingerprint("nope")) {
		t.Error("bogus fingerprint should not be found")
	}
}

func TestCloneIsDeep(t *testing.T) {
	root := buildPaperPlan(t)
	cp := root.Clone()
	if FingerprintOf(cp) != FingerprintOf(root) {
		t.Fatal("clone changed fingerprint")
	}
	// Mutating the clone must not affect the original.
	cp.Child(0).Children[0] = cp.Child(0).Children[1]
	if FingerprintOf(cp) == FingerprintOf(root) {
		t.Error("mutation of clone should change its fingerprint")
	}
	if root.Count() != 8 {
		t.Error("original was mutated through clone")
	}
}

func TestBuildErrors(t *testing.T) {
	cat := paperCatalog(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"select user_id from missing", "unknown table"},
		{"select nope from user_memo", "unknown column"},
		{"select user_id from user_memo m inner join user_action a on m.user_id = a.user_id", "ambiguous"},
		{"select m.user_id from user_memo m inner join user_action a on m.user_id < a.user_id", "equalities"},
		{"select user_id, count(*) as c from user_memo", "not in GROUP BY"},
		{"select memo, sum(memo) as s from user_memo group by memo", "sum over string"},
		{"select count(*) as c from user_memo group by nope", "unknown column"},
	}
	for _, c := range cases {
		_, err := Parse(c.sql, cat)
		if err == nil {
			t.Errorf("Parse(%q): want error with %q, got nil", c.sql, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): error %q missing %q", c.sql, err, c.want)
		}
	}
}

func TestPlanString(t *testing.T) {
	root := buildPaperPlan(t)
	s := root.String()
	for _, frag := range []string{
		"Aggregate(group=[{t1.user_id}], cnt=[COUNT(*)])",
		"Join(condition=[EQ(t1.user_id, t2.user_id)], joinType=[inner])",
		"Filter(condition=[AND(EQ(user_memo.dt, '1010'), EQ(user_memo.memo_type, 'pen'))])",
		"Scan(table=[user_memo])",
		"Scan(table=[user_action])",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestBuildHavingPlacesFilterAboveAggregate(t *testing.T) {
	cat := paperCatalog(t)
	root, err := Parse("select user_id, count(*) as cnt from user_memo group by user_id having cnt > 3", cat)
	if err != nil {
		t.Fatal(err)
	}
	if root.Op != OpFilter {
		t.Fatalf("root is %v, want Filter (HAVING)", root.Op)
	}
	if root.Child(0).Op != OpAggregate {
		t.Fatalf("under HAVING filter: %v, want Aggregate", root.Child(0).Op)
	}
	// The HAVING predicate references the aggregate alias.
	if got := PredString(root.Pred, root.Child(0).Schema); got != "GT(cnt, 3)" {
		t.Errorf("having predicate = %s", got)
	}
	// Unknown alias in HAVING fails to bind.
	if _, err := Parse("select user_id, count(*) as cnt from user_memo group by user_id having nope > 3", cat); err == nil {
		t.Error("unknown HAVING column should fail")
	}
}

func BenchmarkFingerprint(b *testing.B) {
	cat := catalog.New()
	tables := []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
				{Name: "memo", Type: catalog.TypeString, Distinct: 50},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 5},
				{Name: "dt", Type: catalog.TypeString, Distinct: 10},
			},
			Stats: catalog.TableStats{Rows: 1000},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
				{Name: "action", Type: catalog.TypeString, Distinct: 20},
				{Name: "type", Type: catalog.TypeInt, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 10},
			},
			Stats: catalog.TableStats{Rows: 2000},
		},
	}
	for _, tb := range tables {
		if err := cat.Add(tb); err != nil {
			b.Fatal(err)
		}
	}
	n, err := Parse(paperSQL, cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FingerprintOf(n)
	}
}

func BenchmarkNormalizedFingerprint(b *testing.B) {
	cat := catalog.New()
	err := cat.Add(&catalog.Table{
		Name: "user_memo",
		Columns: []catalog.Column{
			{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
			{Name: "memo", Type: catalog.TypeString, Distinct: 50},
			{Name: "memo_type", Type: catalog.TypeString, Distinct: 5},
			{Name: "dt", Type: catalog.TypeString, Distinct: 10},
		},
		Stats: catalog.TableStats{Rows: 1000},
	})
	if err != nil {
		b.Fatal(err)
	}
	n, err := Parse("select x.user_id from ( select user_id, dt from user_memo where memo_type='p' ) x where x.dt = '1'", cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormalizedFingerprint(n)
	}
}
