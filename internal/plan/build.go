package plan

import (
	"fmt"
	"strings"

	"autoview/internal/catalog"
	"autoview/internal/obs"
	"autoview/internal/sqlparse"
	"autoview/internal/storage"
)

var obsParsed = obs.Default.Counter("parse.queries", "SQL statements parsed and bound into plans")

// BindError reports a semantic error while turning an AST into a plan.
type BindError struct{ Msg string }

func (e *BindError) Error() string { return "plan: " + e.Msg }

func bindErrf(format string, args ...any) error {
	return &BindError{Msg: fmt.Sprintf(format, args...)}
}

// Build binds a parsed SELECT statement against the catalog and returns
// its logical plan.
func Build(stmt *sqlparse.SelectStmt, cat *catalog.Catalog) (*Node, error) {
	b := &builder{cat: cat}
	return b.buildSelect(stmt)
}

// Parse parses SQL text and builds its plan in one step.
func Parse(sql string, cat *catalog.Catalog) (*Node, error) {
	defer obs.StartSpan("parse.query")()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	obsParsed.Inc()
	return Build(stmt, cat)
}

type builder struct {
	cat *catalog.Catalog
}

func (b *builder) buildSelect(stmt *sqlparse.SelectStmt) (*Node, error) {
	cur, err := b.buildTableRef(stmt.From)
	if err != nil {
		return nil, err
	}
	for _, jc := range stmt.Joins {
		right, err := b.buildTableRef(jc.Right)
		if err != nil {
			return nil, err
		}
		join, err := b.buildJoin(cur, right, jc)
		if err != nil {
			return nil, err
		}
		cur = join
	}
	if stmt.Where != nil {
		pred, err := bindPred(stmt.Where, cur.Schema)
		if err != nil {
			return nil, err
		}
		cur = &Node{
			Op:       OpFilter,
			Children: []*Node{cur},
			Pred:     pred,
			Schema:   append([]ColInfo(nil), cur.Schema...),
		}
	}
	return b.buildSelectList(stmt, cur)
}

func (b *builder) buildTableRef(ref *sqlparse.TableRef) (*Node, error) {
	if ref.Subquery != nil {
		sub, err := b.buildSelect(ref.Subquery)
		if err != nil {
			return nil, err
		}
		// Re-qualify the derived table's output with its alias so
		// t1.user_id resolves; the subplan belongs exclusively to this
		// query tree, so mutation is safe.
		for i := range sub.Schema {
			sub.Schema[i].Qual = ref.Alias
		}
		return sub, nil
	}
	meta, ok := b.cat.Table(ref.Table)
	if !ok {
		return nil, bindErrf("unknown table %q", ref.Table)
	}
	qual := ref.Alias
	if qual == "" {
		qual = ref.Table
	}
	schema := make([]ColInfo, len(meta.Columns))
	for i, c := range meta.Columns {
		schema[i] = ColInfo{Qual: qual, Name: c.Name, Type: c.Type}
	}
	return &Node{Op: OpScan, Table: ref.Table, Schema: schema}, nil
}

func (b *builder) buildJoin(left, right *Node, jc *sqlparse.JoinClause) (*Node, error) {
	var jt JoinType
	switch jc.Type {
	case sqlparse.JoinInner:
		jt = InnerJoin
	case sqlparse.JoinLeft:
		jt = LeftJoin
	default:
		return nil, bindErrf("unsupported join type %v", jc.Type)
	}
	conjuncts := sqlparse.Conjuncts(jc.On)
	eqs := make([]JoinEq, 0, len(conjuncts))
	for _, c := range conjuncts {
		be, ok := c.(*sqlparse.BinaryExpr)
		if !ok || be.Op != sqlparse.OpEq {
			return nil, bindErrf("join condition must be a conjunction of equalities, got %s", c.SQL())
		}
		lref, lok := be.L.(*sqlparse.ColumnRef)
		rref, rok := be.R.(*sqlparse.ColumnRef)
		if !lok || !rok {
			return nil, bindErrf("join condition sides must be columns, got %s", c.SQL())
		}
		li, lerr := resolve(lref, left.Schema)
		ri, rerr := resolve(rref, right.Schema)
		if lerr != nil || rerr != nil {
			// Maybe the sides are written right=left.
			li2, lerr2 := resolve(rref, left.Schema)
			ri2, rerr2 := resolve(lref, right.Schema)
			if lerr2 != nil || rerr2 != nil {
				return nil, bindErrf("cannot resolve join condition %s", c.SQL())
			}
			li, ri = li2, ri2
		}
		eqs = append(eqs, JoinEq{Left: li, Right: ri})
	}
	if len(eqs) == 0 {
		return nil, bindErrf("join requires at least one equality condition")
	}
	schema := make([]ColInfo, 0, len(left.Schema)+len(right.Schema))
	schema = append(schema, left.Schema...)
	schema = append(schema, right.Schema...)
	return &Node{
		Op:       OpJoin,
		Children: []*Node{left, right},
		JoinType: jt,
		JoinCond: eqs,
		Schema:   schema,
	}, nil
}

func (b *builder) buildSelectList(stmt *sqlparse.SelectStmt, input *Node) (*Node, error) {
	hasAgg := len(stmt.GroupBy) > 0
	for _, item := range stmt.Items {
		if _, ok := item.Expr.(*sqlparse.FuncCall); ok {
			hasAgg = true
		}
	}
	if !hasAgg {
		return b.buildProject(stmt, input)
	}
	return b.buildAggregate(stmt, input)
}

func (b *builder) buildProject(stmt *sqlparse.SelectStmt, input *Node) (*Node, error) {
	proj := make([]ProjCol, 0, len(stmt.Items))
	schema := make([]ColInfo, 0, len(stmt.Items))
	for _, item := range stmt.Items {
		ref, ok := item.Expr.(*sqlparse.ColumnRef)
		if !ok {
			return nil, bindErrf("select item %s is not a column reference (non-aggregate query)", item.Expr.SQL())
		}
		idx, err := resolve(ref, input.Schema)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = input.Schema[idx].Name
		}
		proj = append(proj, ProjCol{Src: idx, Name: name})
		schema = append(schema, ColInfo{Name: name, Type: input.Schema[idx].Type})
	}
	return &Node{Op: OpProject, Children: []*Node{input}, Proj: proj, Schema: schema}, nil
}

func (b *builder) buildAggregate(stmt *sqlparse.SelectStmt, input *Node) (*Node, error) {
	node := &Node{Op: OpAggregate, Children: []*Node{input}}
	groupIdx := make(map[int]int) // child col index -> position in GroupBy
	for _, g := range stmt.GroupBy {
		idx, err := resolve(g, input.Schema)
		if err != nil {
			return nil, err
		}
		if _, dup := groupIdx[idx]; dup {
			continue
		}
		groupIdx[idx] = len(node.GroupBy)
		node.GroupBy = append(node.GroupBy, idx)
	}
	for _, item := range stmt.Items {
		switch x := item.Expr.(type) {
		case *sqlparse.ColumnRef:
			idx, err := resolve(x, input.Schema)
			if err != nil {
				return nil, err
			}
			gpos, ok := groupIdx[idx]
			if !ok {
				return nil, bindErrf("select column %s is not in GROUP BY", x.SQL())
			}
			name := item.Alias
			if name == "" {
				name = input.Schema[idx].Name
			}
			node.AggOuts = append(node.AggOuts, OutSpec{FromGroup: true, Idx: gpos})
			node.Schema = append(node.Schema, ColInfo{Name: name, Type: input.Schema[idx].Type})
		case *sqlparse.FuncCall:
			spec, colType, err := bindAgg(x, item.Alias, input.Schema)
			if err != nil {
				return nil, err
			}
			node.AggOuts = append(node.AggOuts, OutSpec{FromGroup: false, Idx: len(node.Aggs)})
			node.Aggs = append(node.Aggs, spec)
			node.Schema = append(node.Schema, ColInfo{Name: spec.Name, Type: colType})
		default:
			return nil, bindErrf("unsupported select item %s in aggregate query", item.Expr.SQL())
		}
	}
	if len(node.Aggs) == 0 {
		return nil, bindErrf("aggregate query must contain at least one aggregate function")
	}
	if stmt.Having != nil {
		// HAVING filters the aggregate's output; it binds against the
		// aggregate schema, so it can reference aggregate aliases.
		pred, err := bindPred(stmt.Having, node.Schema)
		if err != nil {
			return nil, err
		}
		return &Node{
			Op:       OpFilter,
			Children: []*Node{node},
			Pred:     pred,
			Schema:   append([]ColInfo(nil), node.Schema...),
		}, nil
	}
	return node, nil
}

func bindAgg(fc *sqlparse.FuncCall, alias string, schema []ColInfo) (AggSpec, catalog.ColType, error) {
	var fn AggFunc
	switch strings.ToLower(fc.Name) {
	case "count":
		fn = AggCount
	case "sum":
		fn = AggSum
	case "avg":
		fn = AggAvg
	case "min":
		fn = AggMin
	case "max":
		fn = AggMax
	default:
		return AggSpec{}, 0, bindErrf("unsupported aggregate %q", fc.Name)
	}
	col := -1
	colType := catalog.TypeInt
	if !fc.Star {
		ref, ok := fc.Arg.(*sqlparse.ColumnRef)
		if !ok {
			return AggSpec{}, 0, bindErrf("aggregate argument must be a column, got %s", fc.Arg.SQL())
		}
		idx, err := resolve(ref, schema)
		if err != nil {
			return AggSpec{}, 0, err
		}
		col = idx
		colType = schema[idx].Type
	} else if fn != AggCount {
		return AggSpec{}, 0, bindErrf("%s(*) is not supported", fc.Name)
	}
	var outType catalog.ColType
	switch fn {
	case AggCount:
		outType = catalog.TypeInt
	case AggAvg:
		outType = catalog.TypeFloat
	case AggSum, AggMin, AggMax:
		if fn != AggSum && colType == catalog.TypeString {
			outType = catalog.TypeString
		} else if colType == catalog.TypeString {
			return AggSpec{}, 0, bindErrf("sum over string column")
		} else {
			outType = colType
		}
	}
	name := alias
	if name == "" {
		name = strings.ToLower(fn.String())
	}
	return AggSpec{Func: fn, Col: col, Name: name}, outType, nil
}

// resolve finds the schema index of a column reference.
func resolve(ref *sqlparse.ColumnRef, schema []ColInfo) (int, error) {
	found := -1
	for i, c := range schema {
		if c.Name != ref.Name {
			continue
		}
		if ref.Qualifier != "" && c.Qual != ref.Qualifier {
			continue
		}
		if found >= 0 {
			return 0, bindErrf("ambiguous column reference %s", ref.SQL())
		}
		found = i
	}
	if found < 0 {
		return 0, bindErrf("unknown column %s", ref.SQL())
	}
	return found, nil
}

// bindPred binds an AST predicate against a schema.
func bindPred(e sqlparse.Expr, schema []ColInfo) (Pred, error) {
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case sqlparse.OpAnd, sqlparse.OpOr:
			l, err := bindPred(x.L, schema)
			if err != nil {
				return nil, err
			}
			r, err := bindPred(x.R, schema)
			if err != nil {
				return nil, err
			}
			op := BoolAnd
			if x.Op == sqlparse.OpOr {
				op = BoolOr
			}
			return &Bool{Op: op, L: l, R: r}, nil
		default:
			l, err := bindOperand(x.L, schema)
			if err != nil {
				return nil, err
			}
			r, err := bindOperand(x.R, schema)
			if err != nil {
				return nil, err
			}
			op, err := cmpOpOf(x.Op)
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: op, L: l, R: r}, nil
		}
	default:
		return nil, bindErrf("unsupported predicate %s", e.SQL())
	}
}

func cmpOpOf(op sqlparse.BinaryOp) (CmpOp, error) {
	switch op {
	case sqlparse.OpEq:
		return CmpEq, nil
	case sqlparse.OpNe:
		return CmpNe, nil
	case sqlparse.OpLt:
		return CmpLt, nil
	case sqlparse.OpLe:
		return CmpLe, nil
	case sqlparse.OpGt:
		return CmpGt, nil
	case sqlparse.OpGe:
		return CmpGe, nil
	default:
		return 0, bindErrf("unsupported comparison operator %q", op)
	}
}

func bindOperand(e sqlparse.Expr, schema []ColInfo) (Operand, error) {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		idx, err := resolve(x, schema)
		if err != nil {
			return Operand{}, err
		}
		return ColOperand(idx), nil
	case *sqlparse.Literal:
		if x.Kind == sqlparse.LitString {
			return ConstOperand(storage.Str(x.Text)), nil
		}
		if strings.ContainsAny(x.Text, ".eE") {
			var f float64
			if _, err := fmt.Sscanf(x.Text, "%g", &f); err != nil {
				return Operand{}, bindErrf("bad numeric literal %q", x.Text)
			}
			return ConstOperand(storage.Float(f)), nil
		}
		var i int64
		if _, err := fmt.Sscanf(x.Text, "%d", &i); err != nil {
			return Operand{}, bindErrf("bad integer literal %q", x.Text)
		}
		return ConstOperand(storage.Int(i)), nil
	default:
		return Operand{}, bindErrf("unsupported operand %s", e.SQL())
	}
}
