package plan

// Subquery is one extracted subplan of a query: a candidate for view
// materialization.
type Subquery struct {
	// Root is the subplan node, shared with (not copied from) the owning
	// query's plan tree so occurrences can be located for rewriting.
	Root *Node
	// Fingerprint is the canonical identity of the subplan.
	Fingerprint Fingerprint
	// Depth is the distance from the query root (0 = the root itself).
	Depth int
}

// ExtractSubqueries returns the proper subplans of a query rooted at
// Aggregate, Join or Project operators, per Section III ("for each query,
// we consider subplans, starting with Aggregate, Join or Project, as
// subqueries"). The query root itself is excluded: materializing the whole
// query is view caching, not subquery sharing; this matches the paper's
// Figure 2 where q and its subqueries s1..s3 are distinct.
func ExtractSubqueries(root *Node) []Subquery {
	var out []Subquery
	var visit func(n *Node, depth int)
	visit = func(n *Node, depth int) {
		if depth > 0 && isSubqueryRoot(n.Op) {
			out = append(out, Subquery{
				Root:        n,
				Fingerprint: FingerprintOf(n),
				Depth:       depth,
			})
		}
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	visit(root, 0)
	return out
}

func isSubqueryRoot(op OpType) bool {
	return op == OpAggregate || op == OpJoin || op == OpProject
}

// FindOccurrences returns the nodes in root's tree whose fingerprint equals
// fp, in pre-order. The rewriter replaces these occurrences with view
// scans.
func FindOccurrences(root *Node, fp Fingerprint) []*Node {
	var out []*Node
	root.Walk(func(n *Node) {
		if isSubqueryRoot(n.Op) || n.Op == OpScan {
			if FingerprintOf(n) == fp {
				out = append(out, n)
			}
		}
	})
	return out
}

// ContainsFingerprint reports whether any subtree of root has the given
// fingerprint.
func ContainsFingerprint(root *Node, fp Fingerprint) bool {
	return len(FindOccurrences(root, fp)) > 0
}
