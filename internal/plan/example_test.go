package plan_test

import (
	"fmt"

	"autoview/internal/catalog"
	"autoview/internal/plan"
)

// Example parses the paper's Figure 2 query, prints its operator-sequence
// serialization (Figure 4) and extracts its subqueries.
func Example() {
	cat := catalog.New()
	cat.Add(&catalog.Table{
		Name: "user_memo",
		Columns: []catalog.Column{
			{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
			{Name: "memo", Type: catalog.TypeString, Distinct: 50},
			{Name: "memo_type", Type: catalog.TypeString, Distinct: 5},
			{Name: "dt", Type: catalog.TypeString, Distinct: 10},
		},
		Stats: catalog.TableStats{Rows: 1000},
	})

	p, err := plan.Parse("select user_id, count(*) as cnt from user_memo where dt = '1010' and memo_type = 'pen' group by user_id", cat)
	if err != nil {
		panic(err)
	}
	for _, seq := range plan.Serialize(p) {
		fmt.Println(seq)
	}
	fmt.Println("subqueries:", len(plan.ExtractSubqueries(p)))
	// Output:
	// [Aggregate, user_id, cnt, COUNT]
	// [Filter, AND, EQ, dt, '1010', EQ, memo_type, 'pen']
	// [Scan, user_memo]
	// subqueries: 0
}

// ExampleToSQL renders a plan back into executable SQL — the view-DDL
// path.
func ExampleToSQL() {
	cat := catalog.New()
	cat.Add(&catalog.Table{
		Name: "events",
		Columns: []catalog.Column{
			{Name: "uid", Type: catalog.TypeInt, Distinct: 10},
			{Name: "kind", Type: catalog.TypeInt, Distinct: 3},
		},
		Stats: catalog.TableStats{Rows: 100},
	})
	p, err := plan.Parse("select uid from events where kind = 2", cat)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.ViewDDL("mv_events", p))
	// Output:
	// create materialized view mv_events as
	// select events.uid from events where events.kind = 2;
}
