package plan

// Normalize returns a semantics-preserving canonical form of the subtree:
//
//   - adjacent Filters collapse into one conjunction,
//   - adjacent Projects compose into one mapping,
//   - identity Projects (same names, same order, full arity) are removed.
//
// Combined with the canonicalization inside FingerprintOf (sorted
// conjuncts, ordered symmetric comparisons, commuted inner joins, dropped
// aliases), equal fingerprints of normalized plans give the equivalence
// test used in place of EQUITAS. The input is not modified.
func Normalize(n *Node) *Node {
	return normalize(n.Clone())
}

// NormalizedFingerprint fingerprints the normalized form of n.
func NormalizedFingerprint(n *Node) Fingerprint {
	return FingerprintOf(Normalize(n))
}

func normalize(n *Node) *Node {
	for i, c := range n.Children {
		n.Children[i] = normalize(c)
	}
	switch n.Op {
	case OpFilter:
		child := n.Child(0)
		if child.Op == OpFilter {
			// Filter(p1, Filter(p2, X)) -> Filter(p1 AND p2, X).
			n.Pred = AndPreds([]Pred{n.Pred, child.Pred})
			n.Children[0] = child.Child(0)
			return normalize(n)
		}
		if child.Op == OpProject {
			// Filter(Project(X)) -> Project(Filter(X)): projections
			// only rename/reorder, so the predicate's columns map
			// through them. This lets filters stacked across derived
			// tables merge.
			inner := &Node{
				Op:       OpFilter,
				Children: []*Node{child.Child(0)},
				Pred:     remapPred(n.Pred, child.Proj),
				Schema:   append([]ColInfo(nil), child.Child(0).Schema...),
			}
			child.Children[0] = inner
			return normalize(child)
		}
		// Deduplicate repeated conjuncts (p AND p -> p), which arise
		// when stacked filters carry the same condition.
		n.Pred = dedupConjuncts(n.Pred, child.Schema)
	case OpProject:
		child := n.Child(0)
		if child.Op == OpProject {
			// Compose the two mappings.
			merged := make([]ProjCol, len(n.Proj))
			for i, pc := range n.Proj {
				inner := child.Proj[pc.Src]
				merged[i] = ProjCol{Src: inner.Src, Name: pc.Name, Qual: pc.Qual}
			}
			n.Proj = merged
			n.Children[0] = child.Child(0)
			return normalize(n)
		}
		if isIdentityProject(n) {
			return child
		}
	}
	return n
}

// remapPred rewrites a predicate's column indices from a projection's
// output space into its input space.
func remapPred(p Pred, proj []ProjCol) Pred {
	switch x := p.(type) {
	case nil:
		return nil
	case *Cmp:
		return &Cmp{Op: x.Op, L: remapOperand(x.L, proj), R: remapOperand(x.R, proj)}
	case *Bool:
		return &Bool{Op: x.Op, L: remapPred(x.L, proj), R: remapPred(x.R, proj)}
	default:
		return p
	}
}

func remapOperand(o Operand, proj []ProjCol) Operand {
	if o.IsCol {
		return ColOperand(proj[o.Col].Src)
	}
	return o
}

// dedupConjuncts drops conjuncts whose canonical form repeats.
func dedupConjuncts(p Pred, schema []ColInfo) Pred {
	conj := PredConjuncts(p)
	if len(conj) < 2 {
		return p
	}
	seen := make(map[string]bool, len(conj))
	kept := conj[:0]
	for _, c := range conj {
		key := canonicalLeaf(c, schema)
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, c)
	}
	if len(kept) == len(conj) {
		return p
	}
	return AndPreds(kept)
}

// isIdentityProject reports whether the Project keeps all child columns in
// order under their original names.
func isIdentityProject(n *Node) bool {
	child := n.Child(0)
	if len(n.Proj) != len(child.Schema) {
		return false
	}
	for i, pc := range n.Proj {
		if pc.Src != i || pc.Name != child.Schema[i].Name {
			return false
		}
	}
	return true
}
