// Package plan defines logical query plans: operator trees of Scan, Filter,
// Project, Join and Aggregate nodes with bound (index-resolved) expressions.
//
// It also provides everything the paper derives from plans:
//
//   - the operator-sequence serialization of Figure 4 (input to the
//     Wide-Deep feature encoders),
//   - canonical fingerprints (input to the equivalence detector),
//   - subquery (subplan) extraction per Section III: subplans rooted at
//     Aggregate, Join or Project.
package plan

import (
	"fmt"
	"strings"

	"autoview/internal/catalog"
)

// OpType identifies a logical operator.
type OpType int

const (
	// OpScan reads a base table (or a materialized view).
	OpScan OpType = iota
	// OpFilter applies a predicate.
	OpFilter
	// OpProject selects/renames columns.
	OpProject
	// OpJoin is an equi-join of two inputs.
	OpJoin
	// OpAggregate groups and aggregates.
	OpAggregate
)

// String returns the operator keyword used in serialized plans.
func (o OpType) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpFilter:
		return "Filter"
	case OpProject:
		return "Project"
	case OpJoin:
		return "Join"
	case OpAggregate:
		return "Aggregate"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// ColInfo describes one output column of a node.
type ColInfo struct {
	Qual string // binding qualifier (table alias); "" when unambiguous
	Name string
	Type catalog.ColType
}

// Display renders the column for plan printing.
func (c ColInfo) Display() string {
	if c.Qual != "" {
		return c.Qual + "." + c.Name
	}
	return c.Name
}

// ProjCol maps one output column of a Project to a source column.
type ProjCol struct {
	Src  int    // index into the child's schema
	Name string // output name
	Qual string // output qualifier ("" unless re-qualified)
}

// JoinType enumerates join kinds.
type JoinType int

const (
	// InnerJoin keeps only matching pairs.
	InnerJoin JoinType = iota
	// LeftJoin keeps unmatched left rows padded with zero values.
	LeftJoin
)

// String returns the serialization keyword ("inner"/"left").
func (j JoinType) String() string {
	if j == LeftJoin {
		return "left"
	}
	return "inner"
}

// JoinEq is one equality conjunct of a join condition.
type JoinEq struct {
	Left  int // index into left child's schema
	Right int // index into right child's schema
}

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	// AggCount counts rows (or non-null column values; our values have no
	// nulls so both coincide).
	AggCount AggFunc = iota
	// AggSum sums a numeric column.
	AggSum
	// AggAvg averages a numeric column.
	AggAvg
	// AggMin takes the minimum.
	AggMin
	// AggMax takes the maximum.
	AggMax
)

// String returns the upper-case serialization keyword (Fig. 4: "COUNT").
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func AggFunc
	Col  int    // index into child's schema; -1 for count(*)
	Name string // output column name
}

// OutSpec maps one output position of an Aggregate node to either a
// group-by key or an aggregate result.
type OutSpec struct {
	FromGroup bool
	Idx       int // index into GroupBy (FromGroup) or Aggs (!FromGroup)
}

// Node is a logical plan operator. Exactly the fields relevant to Op are
// populated. Schema is always populated by the builder.
type Node struct {
	Op       OpType
	Children []*Node

	// OpScan
	Table string

	// OpFilter
	Pred Pred

	// OpProject
	Proj []ProjCol

	// OpJoin
	JoinType JoinType
	JoinCond []JoinEq

	// OpAggregate
	GroupBy []int
	Aggs    []AggSpec
	AggOuts []OutSpec

	// Schema is the node's output schema.
	Schema []ColInfo
}

// Child returns the i-th child (panics if out of range); a convenience for
// unary operators where Children[0] is the input.
func (n *Node) Child(i int) *Node { return n.Children[i] }

// Walk visits n and all descendants in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Count returns the number of operators in the subtree.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) { total++ })
	return total
}

// Tables returns the distinct base-table names scanned by the subtree, in
// first-visit order.
func (n *Node) Tables() []string {
	seen := make(map[string]bool)
	var out []string
	n.Walk(func(m *Node) {
		if m.Op == OpScan && !seen[m.Table] {
			seen[m.Table] = true
			out = append(out, m.Table)
		}
	})
	return out
}

// Clone deep-copies the subtree. Predicates are immutable and shared.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := *n
	cp.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = c.Clone()
	}
	cp.Schema = append([]ColInfo(nil), n.Schema...)
	cp.Proj = append([]ProjCol(nil), n.Proj...)
	cp.JoinCond = append([]JoinEq(nil), n.JoinCond...)
	cp.GroupBy = append([]int(nil), n.GroupBy...)
	cp.Aggs = append([]AggSpec(nil), n.Aggs...)
	cp.AggOuts = append([]OutSpec(nil), n.AggOuts...)
	return &cp
}

// String renders an indented plan tree, in the spirit of the paper's
// Figure 2 "Plan" panel.
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *Node) format(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	switch n.Op {
	case OpScan:
		fmt.Fprintf(b, "Scan(table=[%s])", n.Table)
	case OpFilter:
		fmt.Fprintf(b, "Filter(condition=[%s])", PredString(n.Pred, n.Child(0).Schema))
	case OpProject:
		parts := make([]string, len(n.Proj))
		for i, pc := range n.Proj {
			parts[i] = fmt.Sprintf("%s=[%s]", pc.Name, n.Child(0).Schema[pc.Src].Display())
		}
		fmt.Fprintf(b, "Project(%s)", strings.Join(parts, ", "))
	case OpJoin:
		conds := make([]string, len(n.JoinCond))
		ls, rs := n.Child(0).Schema, n.Child(1).Schema
		for i, je := range n.JoinCond {
			conds[i] = fmt.Sprintf("EQ(%s, %s)", ls[je.Left].Display(), rs[je.Right].Display())
		}
		fmt.Fprintf(b, "Join(condition=[%s], joinType=[%s])", strings.Join(conds, " AND "), n.JoinType)
	case OpAggregate:
		groups := make([]string, len(n.GroupBy))
		for i, g := range n.GroupBy {
			groups[i] = n.Child(0).Schema[g].Display()
		}
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			arg := "*"
			if a.Col >= 0 {
				arg = n.Child(0).Schema[a.Col].Display()
			}
			aggs[i] = fmt.Sprintf("%s=[%s(%s)]", a.Name, a.Func, arg)
		}
		fmt.Fprintf(b, "Aggregate(group=[{%s}], %s)", strings.Join(groups, ", "), strings.Join(aggs, ", "))
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.format(b, depth+1)
	}
}
