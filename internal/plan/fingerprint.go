package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
)

// Fingerprint is a canonical identity for a plan subtree. Two subtrees with
// equal fingerprints compute the same relation on our query fragment (see
// internal/equiv for the normalization argument). The zero value is
// invalid.
type Fingerprint string

// Short returns an abbreviated form for logs.
func (f Fingerprint) Short() string {
	s := string(f)
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

// FingerprintOf computes the canonical fingerprint of a subtree.
//
// Canonicalization rules:
//   - qualifiers (aliases) are dropped — they are query-local names;
//   - filter conjuncts and disjuncts are sorted;
//   - symmetric comparisons (=, <>) order their operands;
//   - inner-join inputs are ordered by their children's canonical form, so
//     A JOIN B and B JOIN A coincide;
//   - projection and aggregate output order is significant (a view's column
//     layout matters to the rewriter).
func FingerprintOf(n *Node) Fingerprint {
	sum := sha256.Sum256([]byte(canonical(n)))
	return Fingerprint(hex.EncodeToString(sum[:16]))
}

// canonical renders the canonical textual form of a subtree.
func canonical(n *Node) string {
	switch n.Op {
	case OpScan:
		return "Scan(" + n.Table + ")"
	case OpFilter:
		return "Filter[" + canonicalPred(n.Pred, n.Child(0).Schema) + "](" + canonical(n.Child(0)) + ")"
	case OpProject:
		cs := n.Child(0).Schema
		parts := make([]string, len(n.Proj))
		for i, pc := range n.Proj {
			parts[i] = pc.Name + "<-" + cs[pc.Src].Name
		}
		return "Project[" + strings.Join(parts, ",") + "](" + canonical(n.Child(0)) + ")"
	case OpJoin:
		lc, rc := canonical(n.Child(0)), canonical(n.Child(1))
		ls, rs := n.Child(0).Schema, n.Child(1).Schema
		conds := make([]string, len(n.JoinCond))
		swap := n.JoinType == InnerJoin && rc < lc
		for i, je := range n.JoinCond {
			a := ls[je.Left].Name
			b := rs[je.Right].Name
			if swap {
				a, b = b, a
			}
			conds[i] = a + "=" + b
		}
		sort.Strings(conds)
		if swap {
			lc, rc = rc, lc
		}
		return "Join[" + n.JoinType.String() + ";" + strings.Join(conds, ",") + "](" + lc + ";" + rc + ")"
	case OpAggregate:
		cs := n.Child(0).Schema
		groups := make([]string, len(n.GroupBy))
		for i, g := range n.GroupBy {
			groups[i] = cs[g].Name
		}
		sort.Strings(groups)
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			arg := "*"
			if a.Col >= 0 {
				arg = cs[a.Col].Name
			}
			aggs[i] = a.Name + "<-" + a.Func.String() + "(" + arg + ")"
		}
		return "Aggregate[" + strings.Join(groups, ",") + ";" + strings.Join(aggs, ",") + "](" + canonical(n.Child(0)) + ")"
	default:
		return n.Op.String()
	}
}

// SubtreeFingerprints returns the fingerprints of every *derived* subtree
// of n — every operator subtree except bare table scans. The result feeds
// the overlapping-subquery test of Definition 5: two subqueries overlap
// iff their derived-subtree fingerprint sets intersect. Bare Scan leaves
// are excluded: two views that merely read the same base table do not
// conflict when rewriting a query (their plan regions are disjoint), and
// counting them would mark almost every candidate pair overlapping —
// inconsistent with the paper's Figure 2 example, where s1 (over
// user_memo) and s2 (over user_action) are non-overlapping while s3 (the
// join containing both) overlaps each.
func SubtreeFingerprints(n *Node) map[Fingerprint]bool {
	out := make(map[Fingerprint]bool)
	n.Walk(func(m *Node) {
		if m.Op == OpScan {
			return
		}
		out[FingerprintOf(m)] = true
	})
	return out
}

// Overlapping implements Definition 5: subqueries a and b are overlapping
// iff their plan trees have common (canonically equal) derived subtrees.
func Overlapping(a, b *Node) bool {
	fa := SubtreeFingerprints(a)
	for fp := range SubtreeFingerprints(b) {
		if fa[fp] {
			return true
		}
	}
	return false
}
