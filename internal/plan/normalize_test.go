package plan

import (
	"testing"

	"autoview/internal/catalog"
)

func normCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	err := cat.Add(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, Distinct: 10},
			{Name: "a", Type: catalog.TypeInt, Distinct: 5},
			{Name: "b", Type: catalog.TypeString, Distinct: 4},
		},
		Stats: catalog.TableStats{Rows: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustParseN(t *testing.T, cat *catalog.Catalog, sql string) *Node {
	t.Helper()
	n, err := Parse(sql, cat)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return n
}

func countOp(n *Node, op OpType) int {
	c := 0
	n.Walk(func(m *Node) {
		if m.Op == op {
			c++
		}
	})
	return c
}

func TestNormalizeCollapsesStackedFilters(t *testing.T) {
	cat := normCatalog(t)
	// Outer WHERE over a derived table that itself filters: after
	// project composition this is Filter over Project over Filter; the
	// projection keeps all filter columns so the derived shape is
	// Project(Filter(Filter(...))) only when the project is identity.
	q := mustParseN(t, cat, "select x.k from ( select k, a, b from t where a = 1 ) x where x.b = 'y'")
	norm := Normalize(q)
	if got := countOp(norm, OpFilter); got != 1 {
		t.Errorf("normalized plan has %d filters, want 1:\n%s", got, norm)
	}
	// The merged filter carries both conjuncts.
	var merged *Node
	norm.Walk(func(m *Node) {
		if m.Op == OpFilter {
			merged = m
		}
	})
	if merged == nil || len(PredConjuncts(merged.Pred)) != 2 {
		t.Fatalf("merged filter missing conjuncts:\n%s", norm)
	}
}

func TestNormalizeDedupsRepeatedConjuncts(t *testing.T) {
	cat := normCatalog(t)
	a := mustParseN(t, cat, "select x.k from ( select k, a from t where a = 1 ) x where x.a = 1")
	b := mustParseN(t, cat, "select k from t where a = 1")
	// a stacks "a = 1" twice (inner and outer); after normalization its
	// fingerprint must match the single-filter form modulo the identity
	// projection, so compare conjunct counts directly.
	norm := Normalize(a)
	var filters []*Node
	norm.Walk(func(m *Node) {
		if m.Op == OpFilter {
			filters = append(filters, m)
		}
	})
	if len(filters) != 1 {
		t.Fatalf("want 1 filter, got %d:\n%s", len(filters), norm)
	}
	if got := len(PredConjuncts(filters[0].Pred)); got != 1 {
		t.Errorf("duplicate conjunct survived: %d conjuncts", got)
	}
	if NormalizedFingerprint(a) != NormalizedFingerprint(b) {
		t.Error("redundant re-filtered query should normalize to the plain form")
	}
}

func TestNormalizeIdentityProjectRemoved(t *testing.T) {
	cat := normCatalog(t)
	q := mustParseN(t, cat, "select k, a, b from t where a = 2")
	// The select list keeps every column in order: the projection is an
	// identity and must vanish.
	norm := Normalize(q)
	if got := countOp(norm, OpProject); got != 0 {
		t.Errorf("identity projection survived normalization:\n%s", norm)
	}
}

func TestNormalizeComposesProjections(t *testing.T) {
	cat := normCatalog(t)
	q := mustParseN(t, cat, "select y.k from ( select k, a from t where a = 3 ) y")
	norm := Normalize(q)
	if got := countOp(norm, OpProject); got != 1 {
		t.Errorf("want 1 composed projection, got %d:\n%s", got, norm)
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	cat := normCatalog(t)
	q := mustParseN(t, cat, "select x.k from ( select k, a from t where a = 1 ) x where x.a = 1")
	before := FingerprintOf(q)
	_ = Normalize(q)
	if FingerprintOf(q) != before {
		t.Error("Normalize mutated its input")
	}
}
