package plan

import (
	"fmt"
	"sort"
	"strings"

	"autoview/internal/storage"
)

// CmpOp enumerates comparison operators in bound predicates.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// PrefixName returns the prefix-notation keyword used in serialized plans
// (Fig. 4: EQ, NE, LT, LE, GT, GE).
func (o CmpOp) PrefixName() string {
	switch o {
	case CmpEq:
		return "EQ"
	case CmpNe:
		return "NE"
	case CmpLt:
		return "LT"
	case CmpLe:
		return "LE"
	case CmpGt:
		return "GT"
	case CmpGe:
		return "GE"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Eval applies the comparison to two values.
func (o CmpOp) Eval(a, b storage.Value) bool {
	switch o {
	case CmpEq:
		return a.Equal(b)
	case CmpNe:
		return !a.Equal(b)
	case CmpLt:
		return a.Compare(b) < 0
	case CmpLe:
		return a.Compare(b) <= 0
	case CmpGt:
		return a.Compare(b) > 0
	case CmpGe:
		return a.Compare(b) >= 0
	default:
		return false
	}
}

// Operand is one side of a comparison: either a column of the input row or
// a constant.
type Operand struct {
	IsCol bool
	Col   int // input column index when IsCol
	Const storage.Value
}

// ColOperand builds a column operand.
func ColOperand(idx int) Operand { return Operand{IsCol: true, Col: idx} }

// ConstOperand builds a constant operand.
func ConstOperand(v storage.Value) Operand { return Operand{Const: v} }

// Value resolves the operand against an input row.
func (o Operand) Value(row storage.Row) storage.Value {
	if o.IsCol {
		return row[o.Col]
	}
	return o.Const
}

// Pred is a bound boolean predicate over input rows.
type Pred interface {
	// Eval evaluates the predicate on a row and reports the number of
	// elementary comparisons performed (the executor's CPU meter charges
	// per comparison).
	Eval(row storage.Row) (bool, int)
	predNode()
}

// Cmp is an elementary comparison.
type Cmp struct {
	Op   CmpOp
	L, R Operand
}

func (*Cmp) predNode() {}

// Eval implements Pred.
func (c *Cmp) Eval(row storage.Row) (bool, int) {
	return c.Op.Eval(c.L.Value(row), c.R.Value(row)), 1
}

// BoolOp enumerates boolean connectives.
type BoolOp int

// Boolean connectives.
const (
	BoolAnd BoolOp = iota
	BoolOr
)

// PrefixName returns "AND" or "OR".
func (o BoolOp) PrefixName() string {
	if o == BoolOr {
		return "OR"
	}
	return "AND"
}

// Bool combines two predicates. Evaluation short-circuits.
type Bool struct {
	Op   BoolOp
	L, R Pred
}

func (*Bool) predNode() {}

// Eval implements Pred.
func (b *Bool) Eval(row storage.Row) (bool, int) {
	lv, ln := b.L.Eval(row)
	if b.Op == BoolAnd && !lv {
		return false, ln
	}
	if b.Op == BoolOr && lv {
		return true, ln
	}
	rv, rn := b.R.Eval(row)
	return rv, ln + rn
}

// PredConjuncts flattens a predicate into top-level AND conjuncts.
func PredConjuncts(p Pred) []Pred {
	if p == nil {
		return nil
	}
	if b, ok := p.(*Bool); ok && b.Op == BoolAnd {
		return append(PredConjuncts(b.L), PredConjuncts(b.R)...)
	}
	return []Pred{p}
}

// AndPreds combines predicates with AND (nil for empty input).
func AndPreds(ps []Pred) Pred {
	var out Pred
	for _, p := range ps {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Bool{Op: BoolAnd, L: out, R: p}
		}
	}
	return out
}

// PredTokens renders a predicate in prefix notation against the input
// schema, as the sequence of tokens used by the feature extractor:
// [AND, EQ, dt, '1010', EQ, memo_type, 'pen']. Constant literals are
// flagged as strings (Tok.Str) so the encoder routes them through String
// Encoding.
func PredTokens(p Pred, schema []ColInfo) []Tok {
	if p == nil {
		return nil
	}
	return appendPredTokens(make([]Tok, 0, predTokenCount(p)), p, schema)
}

// predTokenCount sizes a predicate's token sequence without building it,
// so PredTokens and serializeOp allocate exactly once.
func predTokenCount(p Pred) int {
	switch x := p.(type) {
	case nil:
		return 0
	case *Cmp:
		return 3
	case *Bool:
		return 1 + predTokenCount(x.L) + predTokenCount(x.R)
	default:
		return 1
	}
}

// appendPredTokens appends p's prefix token sequence to dst, growing it
// at most once when dst was sized with predTokenCount.
func appendPredTokens(dst []Tok, p Pred, schema []ColInfo) []Tok {
	switch x := p.(type) {
	case nil:
		return dst
	case *Cmp:
		return append(dst,
			Tok{Text: x.Op.PrefixName()},
			operandTok(x.L, schema),
			operandTok(x.R, schema))
	case *Bool:
		dst = append(dst, Tok{Text: x.Op.PrefixName()})
		dst = appendPredTokens(dst, x.L, schema)
		return appendPredTokens(dst, x.R, schema)
	default:
		return append(dst, Tok{Text: fmt.Sprintf("<%T>", p)})
	}
}

func operandTok(o Operand, schema []ColInfo) Tok {
	if o.IsCol {
		return Tok{Text: schema[o.Col].Name}
	}
	return Tok{Text: o.Const.String(), Str: true}
}

// PredString renders the predicate for plan printing, e.g.
// "AND(EQ(dt, '1010'), EQ(memo_type, 'pen'))".
func PredString(p Pred, schema []ColInfo) string {
	switch x := p.(type) {
	case nil:
		return "true"
	case *Cmp:
		return fmt.Sprintf("%s(%s, %s)", x.Op.PrefixName(),
			operandString(x.L, schema), operandString(x.R, schema))
	case *Bool:
		return fmt.Sprintf("%s(%s, %s)", x.Op.PrefixName(),
			PredString(x.L, schema), PredString(x.R, schema))
	default:
		return fmt.Sprintf("<%T>", p)
	}
}

func operandString(o Operand, schema []ColInfo) string {
	if o.IsCol {
		return schema[o.Col].Display()
	}
	return o.Const.String()
}

// canonicalPred renders a canonical (AND-sorted) form for fingerprints.
// Conjuncts are sorted by their rendering so predicate order does not
// affect equivalence.
func canonicalPred(p Pred, schema []ColInfo) string {
	conj := PredConjuncts(p)
	parts := make([]string, len(conj))
	for i, c := range conj {
		parts[i] = canonicalLeaf(c, schema)
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// canonicalOperand renders operands without qualifiers: aliases are
// query-local and must not affect cross-query equivalence.
func canonicalOperand(o Operand, schema []ColInfo) string {
	if o.IsCol {
		return schema[o.Col].Name
	}
	return o.Const.String()
}

func canonicalLeaf(p Pred, schema []ColInfo) string {
	switch x := p.(type) {
	case *Cmp:
		l := canonicalOperand(x.L, schema)
		r := canonicalOperand(x.R, schema)
		// Normalize symmetric comparisons so a=b and b=a coincide.
		if (x.Op == CmpEq || x.Op == CmpNe) && r < l {
			l, r = r, l
		}
		return x.Op.PrefixName() + "(" + l + "," + r + ")"
	case *Bool:
		if x.Op == BoolAnd {
			return canonicalPred(x, schema)
		}
		// Disjuncts sort too: a OR b == b OR a.
		ls := canonicalLeaf(x.L, schema)
		rs := canonicalLeaf(x.R, schema)
		if rs < ls {
			ls, rs = rs, ls
		}
		return "OR(" + ls + "," + rs + ")"
	default:
		return fmt.Sprintf("<%T>", p)
	}
}
