package plan

import "strings"

// Tok is one element of an operator's attribute sequence. Str marks tokens
// that are free-form literals ("strings" in the paper's terminology): they
// are routed through String Encoding, while all other tokens are keywords
// routed through Keyword Embedding (Section IV-B2).
type Tok struct {
	Text string
	Str  bool
}

// OpSeq is one operator's attribute sequence: the first-layer sequence of
// the paper's two-dimensional plan representation (Fig. 4).
type OpSeq []Tok

// Texts returns the raw token texts.
func (s OpSeq) Texts() []string {
	out := make([]string, len(s))
	for i, t := range s {
		out[i] = t.Text
	}
	return out
}

// String renders the sequence in Figure 4 style: "[Filter, AND, EQ, dt,
// '1010', EQ, memo_type, 'pen']".
func (s OpSeq) String() string {
	return "[" + strings.Join(s.Texts(), ", ") + "]"
}

// Serialize renders a plan subtree as its second-layer sequence: a
// pre-order list of operator attribute sequences, exactly the
// representation fed to the plan sequence encoder.
func Serialize(n *Node) []OpSeq {
	cnt := 0
	n.Walk(func(*Node) { cnt++ })
	out := make([]OpSeq, 0, cnt)
	n.Walk(func(m *Node) {
		out = append(out, serializeOp(m))
	})
	return out
}

// SerializeTexts is Serialize with plain-string tokens, the form persisted
// in the metadata database.
func SerializeTexts(n *Node) [][]string {
	seqs := Serialize(n)
	out := make([][]string, len(seqs))
	for i, s := range seqs {
		out[i] = s.Texts()
	}
	return out
}

// serializeOp builds one operator's attribute sequence. Each case sizes
// its sequence exactly before appending, so serialization performs one
// allocation per operator — it is the dominant allocator on the serving
// cold path (see PERFORMANCE.md).
func serializeOp(n *Node) OpSeq {
	switch n.Op {
	case OpScan:
		return OpSeq{{Text: "Scan"}, {Text: n.Table}}
	case OpFilter:
		seq := make(OpSeq, 0, 1+predTokenCount(n.Pred))
		seq = append(seq, Tok{Text: "Filter"})
		return appendPredTokens(seq, n.Pred, n.Child(0).Schema)
	case OpProject:
		seq := make(OpSeq, 0, 1+len(n.Proj))
		seq = append(seq, Tok{Text: "Project"})
		for _, pc := range n.Proj {
			seq = append(seq, Tok{Text: pc.Name})
		}
		return seq
	case OpJoin:
		seq := make(OpSeq, 0, 2+3*len(n.JoinCond)+1)
		seq = append(seq, Tok{Text: "Join"})
		ls, rs := n.Child(0).Schema, n.Child(1).Schema
		if len(n.JoinCond) > 1 {
			seq = append(seq, Tok{Text: "AND"})
		}
		for _, je := range n.JoinCond {
			seq = append(seq,
				Tok{Text: "EQ"},
				Tok{Text: ls[je.Left].Name},
				Tok{Text: rs[je.Right].Name})
		}
		seq = append(seq, Tok{Text: n.JoinType.String()})
		return seq
	case OpAggregate:
		seq := make(OpSeq, 0, 1+len(n.GroupBy)+2*len(n.Aggs))
		seq = append(seq, Tok{Text: "Aggregate"})
		cs := n.Child(0).Schema
		for _, g := range n.GroupBy {
			seq = append(seq, Tok{Text: cs[g].Name})
		}
		for _, a := range n.Aggs {
			seq = append(seq, Tok{Text: a.Name}, Tok{Text: a.Func.String()})
		}
		return seq
	default:
		return OpSeq{{Text: n.Op.String()}}
	}
}
