package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"autoview/internal/durable"
	"autoview/internal/featenc"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/widedeep"
)

// ckptFormatVersion guards the serve checkpoint schema: the W-D weight
// blob wrapped with the vocabulary it was trained over (the architecture
// is rebuilt deterministically from vocab + config, so the pair is all a
// restore needs to reproduce the model bit-exactly).
const ckptFormatVersion = 1

type checkpointFile struct {
	FormatVersion int             `json:"format_version"`
	VocabWords    []string        `json:"vocab_words"`
	Scale         float64         `json:"scale"`
	Version       int             `json:"version"`
	Model         json.RawMessage `json:"model"`
}

// saveCheckpoint persists a swapped-in model to the data directory under
// name, atomically (tmp + fsync + rename): recovery either sees the
// whole checkpoint or none.
func (s *Server) saveCheckpoint(name string, m *model) error {
	var buf bytes.Buffer
	if err := m.m.Save(&buf); err != nil {
		return err
	}
	ck := checkpointFile{
		FormatVersion: ckptFormatVersion,
		VocabWords:    m.m.Enc.Vocab.Words(),
		Scale:         m.scale,
		Version:       m.version,
		Model:         buf.Bytes(),
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	final := filepath.Join(s.dur.Dir(), name)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp) // best effort; the write already failed
		return werr
	}
	return os.Rename(tmp, final)
}

// loadCheckpoint rebuilds a model from a checkpoint written by
// saveCheckpoint: the architecture comes from the persisted vocabulary
// plus this server's W-D config and seed (both deterministic), and the
// weights overwrite it, so estimates after restore are bit-identical to
// the pre-crash model's.
func (s *Server) loadCheckpoint(path string) (*widedeep.Model, float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", filepath.Base(path), err)
	}
	if ck.FormatVersion != ckptFormatVersion {
		return nil, 0, fmt.Errorf("checkpoint %s: format version %d (this build reads %d)",
			filepath.Base(path), ck.FormatVersion, ckptFormatVersion)
	}
	vocab := featenc.NewVocabFromWords(ck.VocabWords)
	m := widedeep.New(vocab, s.adv.Cfg.WDModel, rand.New(rand.NewSource(s.adv.Cfg.Seed)))
	if err := m.Load(bytes.NewReader(ck.Model)); err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", filepath.Base(path), err)
	}
	return m, ck.Scale, nil
}

// persistModel saves next's checkpoint and logs the model record. The
// caller holds durMu (the store + record pair must be atomic against
// snapshot capture) and has already published next. On checkpoint-save
// failure the swap stays in memory only: serving continues on the new
// weights, recovery falls back to the previous durable model, and the
// failure is loud in the event log.
func (s *Server) persistModel(next *model) {
	if s.dur == nil {
		return
	}
	name := durable.ModelCheckpointName(next.version)
	if err := s.saveCheckpoint(name, next); err != nil {
		obs.Error("serve.durable", "event", "checkpoint_save_failed", "version", next.version, "err", err)
		return
	}
	rec := durable.ModelRecord{Path: name, Scale: next.scale, Version: next.version}
	if err := s.dur.AppendModel(rec); err != nil {
		obs.Error("serve.durable", "event", "model_record_failed", "version", next.version, "err", err)
	}
}

// restore rebuilds the serving state a recovered durable.State describes:
// the rolling window re-parsed from its original SQL (plan parsing is
// deterministic, so the window is byte-identical to the pre-crash one),
// the versioned view set, and the model loaded from its checkpoint.
func (s *Server) restore(st *durable.State) error {
	defer obs.StartSpan("serve.restore")()
	plans := make([]*plan.Node, len(st.WindowSQL))
	for i, sql := range st.WindowSQL {
		n, err := plan.Parse(sql, s.adv.Cat)
		if err != nil {
			return fmt.Errorf("serve: restore window[%d]: %w", i, err)
		}
		plans[i] = n
	}
	s.window.Restore(plans, st.WindowSQL, st.WindowTotal)

	if st.ModelPath != "" {
		m, scale, err := s.loadCheckpoint(filepath.Join(s.dur.Dir(), st.ModelPath))
		if err != nil {
			return fmt.Errorf("serve: restore model: %w", err)
		}
		if st.ModelScale > 0 {
			// The WAL record is the authority on the published scale (a
			// hot-reload can override the checkpoint's).
			scale = st.ModelScale
		}
		s.model.Store(&model{m: m, scale: scale, version: st.ModelVersion})
		obsModelVer.Set(float64(st.ModelVersion))
	}

	if len(st.ViewSet) > 0 {
		var vs ViewSet
		if err := json.Unmarshal(st.ViewSet, &vs); err != nil {
			return fmt.Errorf("serve: restore view set: %w", err)
		}
		s.views.Store(&vs)
		s.refreshViewPlans(&vs)
		obsViewsVer.Set(float64(vs.Version))
		obsViewsCount.Set(float64(len(vs.Views)))
		obsUtility.Set(vs.Utility)
	}
	obs.Info("serve.restore", "window", s.window.Len(), "window_total", s.window.Total(),
		"view_version", viewVersion(s.views.Load()), "model_version", st.ModelVersion, "lsn", st.LSN)
	return nil
}

func viewVersion(vs *ViewSet) int {
	if vs == nil {
		return 0
	}
	return vs.Version
}

// writeSnapshot captures the serving state atomically against concurrent
// mutation+append pairs (durMu) and hands it to the durable store.
func (s *Server) writeSnapshot() error {
	s.durMu.Lock()
	_, sqls := s.window.SnapshotTagged()
	total := s.window.Total()
	vs := s.views.Load()
	m := s.model.Load()
	lsn := s.dur.LastLSN()
	s.durMu.Unlock()

	snap := &durable.Snapshot{LSN: lsn, WindowSQL: sqls, WindowTotal: total}
	if vs != nil {
		raw, err := json.Marshal(vs)
		if err != nil {
			return fmt.Errorf("serve: snapshot view set: %w", err)
		}
		snap.ViewSet = raw
	}
	if m != nil {
		snap.ModelPath = durable.ModelCheckpointName(m.version)
		snap.ModelScale = m.scale
		snap.ModelVersion = m.version
	}
	return s.dur.WriteSnapshot(snap)
}

// maybeSnapshot writes a snapshot when the configured record cadence has
// accumulated since the last one. Failures are logged, not fatal: the
// WAL alone still recovers the state, just with a longer replay.
func (s *Server) maybeSnapshot() {
	if s.dur == nil || !s.dur.ShouldSnapshot() {
		return
	}
	if err := s.writeSnapshot(); err != nil {
		obs.Warn("serve.durable", "event", "snapshot_failed", "err", err)
	}
}
