package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"autoview/internal/featenc"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/sqlparse"
	"autoview/internal/widedeep"
)

// apiError is the structured error envelope every endpoint returns.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

// routes mounts the /v1 API over the internal/obs endpoint (so /metrics,
// /debug/vars and /debug/pprof ride on the same listener and the whole
// serving flow is scrapeable in one place).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Default.Handler())
	mux.HandleFunc("/v1/estimate", s.endpoint("serve.estimate", http.MethodPost, s.handleEstimate))
	mux.HandleFunc("/v1/queries", s.endpoint("serve.ingest", http.MethodPost, s.handleQueries))
	mux.HandleFunc("/v1/advise", s.endpoint("serve.advise.api", http.MethodPost, s.handleAdvise))
	mux.HandleFunc("/v1/views", s.endpoint("serve.views", http.MethodGet, s.handleViews))
	mux.HandleFunc("/v1/healthz", s.ungatedEndpoint("serve.healthz", http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/v1/admin/model", s.endpoint("serve.model.reload", http.MethodPost, s.handleReloadModel))
	return mux
}

// endpoint wraps a handler with the shared request surface: traffic
// counting, a span, the method check, the draining gate, and the
// readiness gate (requests before Start finishes recovery answer 503).
func (s *Server) endpoint(span, method string, h http.HandlerFunc) http.HandlerFunc {
	return s.wrap(span, method, true, h)
}

// ungatedEndpoint skips only the readiness gate: /v1/healthz must answer
// while durable state is still replaying, reporting state "recovering".
func (s *Server) ungatedEndpoint(span, method string, h http.HandlerFunc) http.HandlerFunc {
	return s.wrap(span, method, false, h)
}

func (s *Server) wrap(span, method string, gated bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		obsRequests.Inc()
		defer obs.StartSpan(span)()
		if r.Method != method {
			w.Header().Set("Allow", method)
			s.writeError(w, r, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("%s requires %s", r.URL.Path, method))
			return
		}
		if s.closing.Load() {
			s.writeError(w, r, http.StatusServiceUnavailable, "shutting_down", "server is draining")
			return
		}
		if gated && !s.ready.Load() {
			s.writeError(w, r, http.StatusServiceUnavailable, "recovering",
				"server is recovering durable state; poll /v1/healthz for readiness")
			return
		}
		h(w, r)
	}
}

// writeJSON sends v with the given status. Encode failures past the
// header can only be logged.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.Error("serve.http.encode", "err", err)
	}
}

// writeError sends the structured error envelope and emits the obs
// event every error response carries.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	obsErrors.Inc()
	obs.Warn("serve.http.error", "path", r.URL.Path, "status", status, "code", code, "msg", msg)
	s.writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: msg}})
}

// decodeJSON strictly decodes a bounded request body into dst: unknown
// fields, trailing data, and oversized bodies are all rejected. The
// returned status/code pair is ready for writeError.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) (int, string, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, "bad_json", err
	}
	if dec.More() {
		return http.StatusBadRequest, "bad_json", errors.New("trailing data after JSON body")
	}
	return 0, "", nil
}

// --- POST /v1/estimate -------------------------------------------------

type estimatePair struct {
	Query string `json:"query"`
	View  string `json:"view"`
}

type estimateRequest struct {
	Pairs []estimatePair `json:"pairs"`
}

type estimateResponse struct {
	Estimates    []float64 `json:"estimates"`
	Count        int       `json:"count"`
	ModelVersion int       `json:"model_version"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	sc := getEstScratch()
	if err := s.readBody(w, r, sc); err != nil {
		status, code, msg := classifyBodyError(err)
		s.writeError(w, r, status, code, msg)
		putEstScratch(sc)
		return
	}
	if err := decodeEstimateBody(sc.body, sc); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_json", err.Error())
		putEstScratch(sc)
		return
	}
	n := len(sc.pairs)
	if n == 0 {
		s.writeError(w, r, http.StatusBadRequest, "empty_request", "pairs must be non-empty")
		putEstScratch(sc)
		return
	}
	if n > s.cfg.MaxPairs {
		s.writeError(w, r, http.StatusBadRequest, "too_many_pairs",
			fmt.Sprintf("%d pairs exceed the per-request limit %d", n, s.cfg.MaxPairs))
		putEstScratch(sc)
		return
	}
	mSnap := s.model.Load()
	if mSnap == nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "no_model",
			"no W-D model is loaded (was the server bootstrapped with EstimatorWideDeep?)")
		putEstScratch(sc)
		return
	}

	// Fingerprint every pair and consult the estimate cache. The epoch is
	// captured before any estimate is computed, so results can only land
	// in the cache under the world (view set + model) observed here.
	sc.reset(n)
	epoch := s.estCache.curEpoch()
	fpDone := obs.StartSpan("serve.fingerprint")
	for i := range sc.pairs {
		qfp, qerr := sqlparse.FingerprintBytes(sc.pairs[i].query)
		vfp, verr := sqlparse.FingerprintBytes(sc.pairs[i].view)
		if qerr != nil || verr != nil {
			// Unlexable SQL: leave the pair to the miss path, which
			// reports the parse error with the canonical message.
			sc.missIdx = append(sc.missIdx, i)
			continue
		}
		sc.keys[i] = pairKey(qfp.Exact, vfp.Exact)
		sc.qKeys[i] = planKey(qfp.Exact)
		sc.vKeys[i] = planKey(vfp.Exact)
		sc.keyOK[i] = true
		if v, ok := s.estCache.get(sc.keys[i]); ok {
			sc.out[i] = v
			continue
		}
		sc.missIdx = append(sc.missIdx, i)
	}
	fpDone()

	if len(sc.missIdx) > 0 {
		if sc.ex == nil {
			sc.ex = featenc.NewBatchExtractor(s.adv.Cat)
		} else {
			sc.ex.Reset(s.adv.Cat)
		}
		for j, i := range sc.missIdx {
			qe, err := s.resolvePlan(sc.pairs[i].query, sc.qKeys[i], sc.keyOK[i])
			if err != nil {
				s.writeError(w, r, http.StatusBadRequest, "bad_sql", fmt.Sprintf("pairs[%d].query: %v", i, err))
				putEstScratch(sc)
				return
			}
			ve, err := s.resolvePlan(sc.pairs[i].view, sc.vKeys[i], sc.keyOK[i])
			if err != nil {
				s.writeError(w, r, http.StatusBadRequest, "bad_sql", fmt.Sprintf("pairs[%d].view: %v", i, err))
				putEstScratch(sc)
				return
			}
			sc.fs[j] = sc.ex.ExtractPre(qe.pf, ve.pf)
		}

		est := &estRequest{fs: sc.fs[:len(sc.missIdx)], out: sc.missOut[:len(sc.missIdx)], done: make(chan struct{})}
		switch err := s.batcher.submit(est); {
		case errors.Is(err, errQueueFull):
			obsShed.Inc()
			s.writeError(w, r, http.StatusTooManyRequests, "overloaded", "estimate queue is full, retry later")
			putEstScratch(sc)
			return
		case errors.Is(err, errShuttingDown):
			s.writeError(w, r, http.StatusServiceUnavailable, "shutting_down", "server is draining")
			putEstScratch(sc)
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		select {
		case <-est.done:
			if est.err != nil {
				s.writeError(w, r, http.StatusServiceUnavailable, "no_model", est.err.Error())
				putEstScratch(sc)
				return
			}
		case <-ctx.Done():
			obsTimeouts.Inc()
			s.writeError(w, r, http.StatusGatewayTimeout, "timeout",
				fmt.Sprintf("estimate not ready within %v", s.cfg.RequestTimeout))
			// The batcher may still write into missOut: abandon the
			// scratch rather than recycle a buffer under a live writer.
			//lint:allow poolpair(audit) deliberate drop: recycling would put a buffer under a live batcher writer
			return
		}
		for j, i := range sc.missIdx {
			sc.out[i] = sc.missOut[j]
			if sc.keyOK[i] {
				s.estCache.put(sc.keys[i], sc.out[i], epoch)
			}
		}
	}

	obsPairs.Add(int64(n))
	s.writeJSON(w, http.StatusOK, estimateResponse{
		Estimates:    sc.out,
		Count:        n,
		ModelVersion: mSnap.version,
	})
	putEstScratch(sc)
}

// --- POST /v1/queries --------------------------------------------------

type ingestRequest struct {
	Queries []string `json:"queries"`
}

type ingestResponse struct {
	Accepted int `json:"accepted"`
	// Window is the rolling window occupancy when the response was
	// built; ingestion is asynchronous, so it may lag the accept.
	Window int `json:"window"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if status, code, err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, r, status, code, err.Error())
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "empty_request", "queries must be non-empty")
		return
	}
	if len(req.Queries) > s.cfg.MaxQueries {
		s.writeError(w, r, http.StatusBadRequest, "too_many_queries",
			fmt.Sprintf("%d queries exceed the per-request limit %d", len(req.Queries), s.cfg.MaxQueries))
		return
	}
	plans := make([]*plan.Node, len(req.Queries))
	for i, sql := range req.Queries {
		n, err := plan.Parse(sql, s.adv.Cat)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_sql", fmt.Sprintf("queries[%d]: %v", i, err))
			return
		}
		plans[i] = n
	}
	switch err := s.sendIngest(ingestMsg{plans: plans, sqls: req.Queries}, false); {
	case errors.Is(err, errQueueFull):
		obsShed.Inc()
		s.writeError(w, r, http.StatusTooManyRequests, "overloaded", "ingest queue is full, retry later")
		return
	case errors.Is(err, errShuttingDown):
		s.writeError(w, r, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return
	}
	obsIngested.Add(int64(len(plans)))
	s.writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: len(plans), Window: s.window.Len()})
}

// --- POST /v1/advise ---------------------------------------------------

type adviseRequest struct {
	// Force swaps the candidate set in even when its estimated utility
	// regresses (operator override of the rollback guard).
	Force bool `json:"force"`
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req adviseRequest
	if r.ContentLength != 0 {
		if status, code, err := s.decodeJSON(w, r, &req); err != nil {
			s.writeError(w, r, status, code, err.Error())
			return
		}
	}
	res, err := s.advise(r.Context(), "api", req.Force)
	switch {
	case errors.Is(err, errAdviseBusy):
		s.writeError(w, r, http.StatusConflict, "advise_in_progress", "an advise cycle is already running")
	case errors.Is(err, errShuttingDown):
		s.writeError(w, r, http.StatusServiceUnavailable, "shutting_down", "server is draining")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, r, http.StatusGatewayTimeout, "timeout", err.Error())
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, "advise_failed", err.Error())
	default:
		s.writeJSON(w, http.StatusOK, res)
	}
}

// --- GET /v1/views -----------------------------------------------------

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	vs := s.views.Load()
	if vs == nil {
		// Bootstrap found no candidates and nothing has been advised
		// since: an empty, unversioned set.
		vs = &ViewSet{Views: []ViewInfo{}}
	}
	s.writeJSON(w, http.StatusOK, vs)
}

// --- GET /v1/healthz ---------------------------------------------------

type healthResponse struct {
	Status string `json:"status"`
	// State is the serving lifecycle: "recovering" (Start is still
	// replaying durable state; everything but this endpoint answers 503)
	// or "ready".
	State         string  `json:"state"`
	UptimeSeconds float64 `json:"uptime_s"`
	Window        int     `json:"window"`
	IngestedTotal uint64  `json:"ingested_total"`
	ViewVersion   int     `json:"view_version"`
	Views         int     `json:"views"`
	ModelVersion  int     `json:"model_version"`
	QueueDepth    int     `json:"queue_depth"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	res := healthResponse{
		Status:        "ok",
		State:         "ready",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Window:        s.window.Len(),
		IngestedTotal: s.window.Total(),
		QueueDepth:    len(s.batcher.queue),
	}
	if vs := s.views.Load(); vs != nil {
		res.ViewVersion = vs.Version
		res.Views = len(vs.Views)
	}
	if m := s.model.Load(); m != nil {
		res.ModelVersion = m.version
	}
	if !s.ready.Load() {
		res.Status, res.State = "starting", "recovering"
		s.writeJSON(w, http.StatusServiceUnavailable, res)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// --- POST /v1/admin/model ----------------------------------------------

type reloadRequest struct {
	// Path of a checkpoint written by widedeep.Model.Save (e.g. by
	// cmd/costmodel -save). The checkpoint must have been trained on a
	// model with this server's vocabulary and W-D architecture.
	Path string `json:"path"`
	// Scale optionally overrides the cost scale paired with the loaded
	// weights; 0 keeps the current scale.
	Scale float64 `json:"scale"`
}

type reloadResponse struct {
	ModelVersion int `json:"model_version"`
}

func (s *Server) handleReloadModel(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if status, code, err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, r, status, code, err.Error())
		return
	}
	if req.Path == "" {
		s.writeError(w, r, http.StatusBadRequest, "empty_request", "path must be set")
		return
	}
	if req.Scale < 0 {
		s.writeError(w, r, http.StatusBadRequest, "bad_scale", "scale must be non-negative")
		return
	}
	cur := s.model.Load()
	if cur == nil {
		s.writeError(w, r, http.StatusConflict, "no_model",
			"no active model to derive the architecture from (bootstrap with EstimatorWideDeep first)")
		return
	}
	f, err := os.Open(req.Path)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "model_load_failed", err.Error())
		return
	}
	defer func() { _ = f.Close() }() // read-only open; nothing to flush
	// Rebuild the architecture deterministically over the active
	// vocabulary, then overwrite its weights from the checkpoint.
	fresh := widedeep.New(cur.m.Enc.Vocab, s.adv.Cfg.WDModel, rand.New(rand.NewSource(s.adv.Cfg.Seed)))
	if err := fresh.Load(f); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "model_load_failed", err.Error())
		return
	}
	scale := cur.scale
	if req.Scale > 0 {
		scale = req.Scale
	}
	s.swapModel(fresh, scale)
	obsReloads.Inc()
	s.writeJSON(w, http.StatusOK, reloadResponse{ModelVersion: s.model.Load().version})
}
