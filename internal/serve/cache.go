package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autoview/internal/obs"
)

// The serving layer runs two instances of the sharded cache below:
//
//   - the estimate cache maps (exact query fingerprint × exact view
//     fingerprint) → final cost estimate, gated by an epoch that is
//     bumped on every view-set rotation and model hot-reload, so a
//     version bump atomically invalidates every cached estimate;
//   - the plan cache maps an exact SQL fingerprint → parsed plan +
//     precomputed plan-local features. Parsed plans depend only on the
//     SQL text and the immutable catalog, so the plan cache runs
//     epoch-free (epoch stays 0 forever).
var (
	obsCacheHit       = obs.Default.Counter("serve.cache.hit", "estimate-cache hits on /v1/estimate pairs")
	obsCacheMiss      = obs.Default.Counter("serve.cache.miss", "estimate-cache misses (stale-epoch and expired entries count as misses)")
	obsCacheEvict     = obs.Default.Counter("serve.cache.evict", "estimate-cache entries evicted by LRU pressure or invalidation sweeps")
	obsCacheSize      = obs.Default.Gauge("serve.cache.size", "live entries in the estimate cache")
	obsPlanCacheHit   = obs.Default.Counter("serve.cache.plan.hit", "plan-cache hits on /v1/estimate SQL texts")
	obsPlanCacheMiss  = obs.Default.Counter("serve.cache.plan.miss", "plan-cache misses")
	obsPlanCacheEvict = obs.Default.Counter("serve.cache.plan.evict", "plan-cache entries evicted by LRU pressure")
	obsPlanCacheSize  = obs.Default.Gauge("serve.cache.plan.size", "live entries in the plan cache")
)

// cacheShards fixes the shard count; a power of two so the shard index
// is a mask over the key's first (uniformly distributed) digest byte.
const cacheShards = 16

// cacheKey is the fixed-width composite key: one or two 16-byte exact
// fingerprint digests, concatenated.
type cacheKey [32]byte

// cacheMetrics bundles the observability hooks of one cache instance.
type cacheMetrics struct {
	hit, miss, evict *obs.Counter
	size             *obs.Gauge
}

// centry is one resident cache entry, threaded through its shard's
// intrusive LRU list.
type centry[V any] struct {
	key        cacheKey
	val        V
	epoch      uint64
	exp        int64 // unix nanos; 0 = never expires
	prev, next *centry[V]
}

// cacheShard is one lock domain: a map for lookup plus a doubly-linked
// LRU list (head = most recently used).
type cacheShard[V any] struct {
	mu         sync.Mutex
	m          map[cacheKey]*centry[V]
	head, tail *centry[V]
}

// cache is a bounded, sharded LRU with epoch-based versioned
// invalidation and optional TTL. A nil *cache is a valid disabled cache:
// get always misses, put and the invalidation hooks are no-ops — the
// serve paths never branch on whether caching is configured.
type cache[V any] struct {
	shards   [cacheShards]cacheShard[V]
	capShard int
	ttl      time.Duration
	now      func() time.Time // injectable for TTL tests
	epoch    atomic.Uint64
	met      cacheMetrics
}

// newCache builds a cache bounded to roughly size entries (rounded up to
// a multiple of the shard count). size <= 0 disables caching entirely
// (returns nil); ttl <= 0 means entries never expire by age.
func newCache[V any](size int, ttl time.Duration, met cacheMetrics) *cache[V] {
	if size <= 0 {
		return nil
	}
	c := &cache[V]{
		capShard: (size + cacheShards - 1) / cacheShards,
		ttl:      ttl,
		now:      time.Now,
		met:      met,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]*centry[V], c.capShard)
	}
	return c
}

// curEpoch reads the current invalidation epoch; values stored under an
// older epoch can never be returned again.
func (c *cache[V]) curEpoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// bumpEpoch invalidates every resident entry atomically. Callers must
// publish the new world (view set, model) *before* bumping: a stale
// value racing in via put then lands under an already-dead epoch.
func (c *cache[V]) bumpEpoch() {
	if c == nil {
		return
	}
	c.epoch.Add(1)
}

func (c *cache[V]) shard(k cacheKey) *cacheShard[V] {
	return &c.shards[k[0]&(cacheShards-1)]
}

// get returns the value cached under k, if it is live: present, stored
// under the current epoch, and not expired. Stale hits are removed
// eagerly and counted as misses.
func (c *cache[V]) get(k cacheKey) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	epoch := c.epoch.Load()
	sh := c.shard(k)
	sh.mu.Lock()
	e, ok := sh.m[k]
	if !ok {
		sh.mu.Unlock()
		c.met.miss.Inc()
		return zero, false
	}
	if e.epoch != epoch || (e.exp != 0 && c.now().UnixNano() >= e.exp) {
		sh.unlink(e)
		delete(sh.m, k)
		sh.mu.Unlock()
		c.met.miss.Inc()
		c.met.evict.Inc()
		c.met.size.Add(-1)
		return zero, false
	}
	sh.moveFront(e)
	v := e.val
	sh.mu.Unlock()
	c.met.hit.Inc()
	return v, true
}

// put stores v under k at the given epoch (callers capture the epoch
// before computing v, so a concurrent bump doomed-stores rather than
// poisons). Inserting over capacity evicts the shard's LRU tail.
func (c *cache[V]) put(k cacheKey, v V, epoch uint64) {
	if c == nil {
		return
	}
	var exp int64
	if c.ttl > 0 {
		exp = c.now().Add(c.ttl).UnixNano()
	}
	sh := c.shard(k)
	sh.mu.Lock()
	if e, ok := sh.m[k]; ok {
		e.val, e.epoch, e.exp = v, epoch, exp
		sh.moveFront(e)
		sh.mu.Unlock()
		return
	}
	e := &centry[V]{key: k, val: v, epoch: epoch, exp: exp}
	sh.m[k] = e
	sh.pushFront(e)
	evicted := 0
	for len(sh.m) > c.capShard {
		t := sh.tail
		sh.unlink(t)
		delete(sh.m, t.key)
		evicted++
	}
	sh.mu.Unlock()
	c.met.size.Add(float64(1 - evicted))
	if evicted > 0 {
		c.met.evict.Add(int64(evicted))
	}
}

// sweep removes every dead entry (stale epoch or expired TTL) so rotated
// generations release memory promptly instead of lingering until LRU
// pressure pushes them out. Runs after bumpEpoch at rotation time.
func (c *cache[V]) sweep() {
	if c == nil {
		return
	}
	epoch := c.epoch.Load()
	var nowNanos int64
	if c.ttl > 0 {
		nowNanos = c.now().UnixNano()
	}
	removed := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		// Collect doomed keys first, then delete in sorted order so the
		// sweep's work order never depends on map iteration order.
		var doomed []cacheKey
		for k, e := range sh.m {
			if e.epoch != epoch || (e.exp != 0 && nowNanos >= e.exp) {
				doomed = append(doomed, k)
			}
		}
		sort.Slice(doomed, func(a, b int) bool {
			return string(doomed[a][:]) < string(doomed[b][:])
		})
		for _, k := range doomed {
			e := sh.m[k]
			sh.unlink(e)
			delete(sh.m, k)
		}
		sh.mu.Unlock()
		removed += len(doomed)
	}
	if removed > 0 {
		c.met.evict.Add(int64(removed))
		c.met.size.Add(float64(-removed))
	}
}

// len reports the live entry count (includes entries a sweep would
// remove; they still occupy memory).
func (c *cache[V]) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

func (sh *cacheShard[V]) pushFront(e *centry[V]) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard[V]) unlink(e *centry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard[V]) moveFront(e *centry[V]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
