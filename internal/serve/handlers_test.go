package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestServeMalformedRequests is the fuzz-style decoder table: every bad
// payload must come back as a structured JSON error with the documented
// status and code, never a panic, hang, or bare 500.
func TestServeMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Parallelism:  1,
		MaxPairs:     2,
		MaxQueries:   3,
		MaxBodyBytes: 512,
	})

	huge := `{"pairs":[{"query":"` + strings.Repeat("x", 600) + `","view":"y"}]}`
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"estimate wrong method", http.MethodGet, "/v1/estimate", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"estimate truncated json", http.MethodPost, "/v1/estimate", `{"pairs":[`, http.StatusBadRequest, "bad_json"},
		{"estimate not json", http.MethodPost, "/v1/estimate", `hello`, http.StatusBadRequest, "bad_json"},
		{"estimate wrong type", http.MethodPost, "/v1/estimate", `{"pairs":"nope"}`, http.StatusBadRequest, "bad_json"},
		{"estimate unknown field", http.MethodPost, "/v1/estimate", `{"pairz":[]}`, http.StatusBadRequest, "bad_json"},
		{"estimate trailing data", http.MethodPost, "/v1/estimate", `{"pairs":[]}{"pairs":[]}`, http.StatusBadRequest, "bad_json"},
		{"estimate empty pairs", http.MethodPost, "/v1/estimate", `{"pairs":[]}`, http.StatusBadRequest, "empty_request"},
		{"estimate null pairs", http.MethodPost, "/v1/estimate", `{"pairs":null}`, http.StatusBadRequest, "empty_request"},
		{"estimate too many pairs", http.MethodPost, "/v1/estimate",
			`{"pairs":[{"query":"a","view":"b"},{"query":"a","view":"b"},{"query":"a","view":"b"}]}`,
			http.StatusBadRequest, "too_many_pairs"},
		{"estimate bad query sql", http.MethodPost, "/v1/estimate",
			`{"pairs":[{"query":"select * frm nowhere","view":"select 1"}]}`,
			http.StatusBadRequest, "bad_sql"},
		{"estimate oversized body", http.MethodPost, "/v1/estimate", huge, http.StatusRequestEntityTooLarge, "body_too_large"},
		{"queries wrong method", http.MethodGet, "/v1/queries", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"queries bad json", http.MethodPost, "/v1/queries", `[]`, http.StatusBadRequest, "bad_json"},
		{"queries empty", http.MethodPost, "/v1/queries", `{"queries":[]}`, http.StatusBadRequest, "empty_request"},
		{"queries too many", http.MethodPost, "/v1/queries", `{"queries":["a","b","c","d"]}`, http.StatusBadRequest, "too_many_queries"},
		{"queries bad sql", http.MethodPost, "/v1/queries", `{"queries":["select * from no_such_table"]}`, http.StatusBadRequest, "bad_sql"},
		{"advise wrong method", http.MethodGet, "/v1/advise", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"advise bad json", http.MethodPost, "/v1/advise", `{"force":"yes"}`, http.StatusBadRequest, "bad_json"},
		{"advise unknown field", http.MethodPost, "/v1/advise", `{"forse":true}`, http.StatusBadRequest, "bad_json"},
		{"views wrong method", http.MethodPost, "/v1/views", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"healthz wrong method", http.MethodPost, "/v1/healthz", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"reload wrong method", http.MethodGet, "/v1/admin/model", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"reload empty path", http.MethodPost, "/v1/admin/model", `{"path":""}`, http.StatusBadRequest, "empty_request"},
		{"reload negative scale", http.MethodPost, "/v1/admin/model", `{"path":"x","scale":-1}`, http.StatusBadRequest, "bad_scale"},
		{"reload missing file", http.MethodPost, "/v1/admin/model", `{"path":"/no/such/checkpoint"}`, http.StatusBadRequest, "model_load_failed"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var envelope errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
				t.Fatalf("error body is not the structured envelope: %v", err)
			}
			if envelope.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (message %q)", envelope.Error.Code, tc.wantCode, envelope.Error.Message)
			}
			if envelope.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}
