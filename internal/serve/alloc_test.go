package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"autoview/internal/catalog"
	"autoview/internal/featenc"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/widedeep"
)

// allocModel builds a small standalone W-D model plus one real feature
// set, bypassing the full server bootstrap so the allocation
// measurements stay fast and deterministic.
func allocModel(t *testing.T) (*widedeep.Model, featenc.Features) {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 400, Bytes: 12800},
		},
	} {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	sql := `select user_id from ( select user_id, dt from user_memo where memo_type = 'pen' ) t1 where dt = '10'`
	q, err := plan.Parse(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	subs := plan.ExtractSubqueries(q)
	if len(subs) == 0 {
		t.Fatal("no subqueries extracted")
	}
	f := featenc.Extract(q, subs[0].Root, cat)
	vocab := featenc.NewVocab(cat, nil)
	m := widedeep.New(vocab, widedeep.Config{
		Encoder:    featenc.Config{EmbedDim: 4, Hidden: 4},
		WideDim:    4,
		DeepHidden: 6,
		RegHidden:  4,
	}, rand.New(rand.NewSource(3)))
	m.Norm = featenc.FitNormalizer([][]float64{f.Numeric})
	return m, f
}

// TestBatcherSteadyStateAllocs pins the micro-batcher's allocation cost
// model: a small per-batch constant (request bookkeeping, coalescing
// timer, result slices) and zero per-element allocations — the model's
// pooled inference arenas are reused across successive batches, so a
// 32x larger request must not cost a single extra allocation.
func TestBatcherSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops random Put items under -race; allocation counts need the plain build")
	}
	// Pin the obs registry off: other tests in this package mount the
	// obs endpoint (which enables span timing globally), and an enabled
	// span allocates — a constant per batch, but pinned off here so the
	// measured numbers are stable under any test ordering.
	if obs.Enabled() {
		obs.Disable()
		t.Cleanup(obs.Enable)
	}
	m, f := allocModel(t)
	b := newBatcher(Config{
		Parallelism: 1,
		MaxBatch:    1, // any submit fills the batch: no window wait
		BatchWindow: time.Millisecond,
		QueueDepth:  8,
	}, func() (*widedeep.Model, float64) { return m, 2 })
	defer b.close(context.Background())

	cycle := func(fs []featenc.Features, out []float64) {
		req := &estRequest{fs: fs, out: out, done: make(chan struct{})}
		if err := b.submit(req); err != nil {
			t.Fatalf("submit: %v", err)
		}
		<-req.done
		if req.err != nil {
			t.Fatalf("batch: %v", req.err)
		}
	}
	small := []featenc.Features{f}
	large := make([]featenc.Features, 32)
	for i := range large {
		large[i] = f
	}
	outSmall, outLarge := make([]float64, len(small)), make([]float64, len(large))
	// Warm the model's arena pool to its high-water mark first.
	cycle(large, outLarge)

	aSmall := testing.AllocsPerRun(50, func() { cycle(small, outSmall) })
	aLarge := testing.AllocsPerRun(50, func() { cycle(large, outLarge) })
	if perElement := (aLarge - aSmall) / float64(len(large)-len(small)); perElement > 0.1 {
		t.Fatalf("batcher allocates per element: %v allocs (batch 1: %v, batch 32: %v)",
			perElement, aSmall, aLarge)
	}
	const maxPerBatch = 24
	if aSmall > maxPerBatch {
		t.Fatalf("per-batch constant = %v allocs, want <= %d", aSmall, maxPerBatch)
	}
}

// replayBody is a reusable request body: Reset rewinds it to a new
// payload without allocating a fresh reader per request.
type replayBody struct{ *bytes.Reader }

func (replayBody) Close() error { return nil }

// discardWriter is a minimal ResponseWriter so warm-path measurements
// count the handler's allocations, not a recorder's.
type discardWriter struct {
	h      http.Header
	status int
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(s int)           { d.status = s }

// TestEstimateWarmAlloc pins the allocation budget of a fully warm
// /v1/estimate request: body read, zero-copy decode, fingerprinting, and
// estimate-cache hits must run out of pooled scratch, leaving only the
// response-encoding constant. The cold-path budget is pinned separately
// by TestBatcherSteadyStateAllocs and stays unchanged.
func TestEstimateWarmAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops random Put items under -race; allocation counts need the plain build")
	}
	// Pin the obs registry off (enabled spans allocate; see
	// TestBatcherSteadyStateAllocs).
	if obs.Enabled() {
		obs.Disable()
		t.Cleanup(obs.Enable)
	}
	s, err := New(serveWK(), serveCoreCfg(), Config{Parallelism: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	vs := s.views.Load()
	if vs == nil || len(vs.Views) == 0 {
		t.Fatal("no bootstrap views")
	}
	w := serveWK()
	var pairs []estimatePair
	for i := 0; i < 4; i++ {
		pairs = append(pairs, estimatePair{Query: w.Queries[i].SQL, View: vs.Views[i%len(vs.Views)].SQL})
	}
	body, err := json.Marshal(estimateRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", nil)
	rb := &replayBody{Reader: bytes.NewReader(nil)}
	req.Body = rb
	dw := &discardWriter{h: make(http.Header)}
	cycle := func() {
		rb.Reset(body)
		dw.status = 0
		s.handleEstimate(dw, req)
		if dw.status != http.StatusOK {
			t.Fatalf("estimate status %d", dw.status)
		}
	}
	cycle() // populate the estimate cache and pool high-water marks

	allocs := testing.AllocsPerRun(100, cycle)
	// Pinned with headroom over the measured value; the PR acceptance
	// ceiling (≤ 1/10th of the 1405 allocs/op cold baseline) is 140.
	const warmBudget = 40
	if allocs > warmBudget {
		t.Fatalf("warm /v1/estimate = %v allocs/op, want <= %d", allocs, warmBudget)
	}
	t.Logf("warm /v1/estimate: %v allocs/op over %d pairs", allocs, len(pairs))
}
