package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"autoview/internal/featenc"
	"autoview/internal/obs"
	"autoview/internal/widedeep"
)

// Micro-batcher metrics: queue pressure in a gauge, work in counters,
// coalescing behaviour in a histogram.
var (
	obsBatches    = obs.Default.Counter("serve.batch.count", "micro-batches run by the inference scheduler")
	obsBatchSize  = obs.Default.Histogram("serve.batch.size", "(query, view) pairs coalesced per micro-batch", 1, 2, 4, 8, 16, 32, 64, 128)
	obsQueueDepth = obs.Default.Gauge("serve.batch.queue", "estimate requests waiting in the micro-batcher queue")
)

// Sentinel errors mapped to HTTP statuses by the handlers.
var (
	errQueueFull    = errors.New("serve: bounded queue full")
	errShuttingDown = errors.New("serve: shutting down")
	errNoModel      = errors.New("serve: no W-D model is loaded")
)

// estRequest is one estimate request's slice of the micro-batch: the
// extracted features, a result slot per pair, and a completion channel.
// The batcher owns out/err until done is closed; after that the
// submitting handler owns them (or nobody does, if the handler timed
// out — the slots are then written but never read).
type estRequest struct {
	fs   []featenc.Features
	out  []float64
	err  error
	done chan struct{}
}

// batcher is the micro-batching inference scheduler: concurrent
// estimate requests queue onto a bounded channel, a single dispatcher
// coalesces them — up to cfg.MaxBatch pairs, waiting at most
// cfg.BatchWindow after the first request — and each micro-batch runs
// through widedeep.PredictBatch's Parallelism-sized worker pool.
// Per-pair results are bit-identical to sequential inference (see
// PredictBatch), so batching is purely a throughput optimization.
// PredictBatch's workers draw their scratch from the model's pooled
// inference arenas, which persist across micro-batches — so after the
// first few requests warm the pool, the per-pair serving cost performs
// zero heap allocations (see TestBatcherSteadyStateAllocs).
//
// Idle bypass: the batch window exists to give concurrent requests a
// chance to share a batch. When the dispatcher pulls a request and can
// see nobody else is coming — empty queue and no submit in flight — it
// runs the batch immediately instead of sleeping out the window, so a
// lone request never pays window latency (or the timer wake-up that
// follows it). Under load the queue is non-empty and coalescing behaves
// exactly as before.
type batcher struct {
	parallelism int
	maxBatch    int
	window      time.Duration

	// model returns the current weights and cost scale (swapped
	// atomically by the server on re-advise or hot-reload).
	model func() (*widedeep.Model, float64)

	queue   chan *estRequest
	submits sync.WaitGroup
	closed  atomic.Bool
	done    chan struct{}

	// pending counts submits that entered submit but have not yet
	// enqueued (or bailed): together with len(queue) it is the
	// dispatcher's "is anyone else coming" signal for the idle bypass.
	// The count is advisory — a race in either direction costs at most
	// one wasted window wait or one missed coalescing opportunity, never
	// correctness.
	pending atomic.Int64
}

func newBatcher(cfg Config, model func() (*widedeep.Model, float64)) *batcher {
	b := &batcher{
		parallelism: cfg.Parallelism,
		maxBatch:    cfg.MaxBatch,
		window:      cfg.BatchWindow,
		model:       model,
		queue:       make(chan *estRequest, cfg.QueueDepth),
		done:        make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// submit enqueues a request without blocking: a full queue sheds
// (errQueueFull → 429) instead of stalling the caller. The submits
// group guarantees no send can race close(queue) during shutdown.
func (b *batcher) submit(req *estRequest) error {
	b.submits.Add(1)
	defer b.submits.Done()
	b.pending.Add(1)
	defer b.pending.Add(-1)
	if b.closed.Load() {
		return errShuttingDown
	}
	select {
	case b.queue <- req:
		obsQueueDepth.Set(float64(len(b.queue)))
		return nil
	default:
		return errQueueFull
	}
}

// dispatch is the scheduler loop: block for the first request, coalesce
// follow-ups until the batch is full, the window expires, or the world
// goes quiet (the idle bypass — see the type comment), run, repeat.
// When the queue is closed it drains every remaining request before
// exiting, so accepted work always completes.
func (b *batcher) dispatch() {
	defer close(b.done)
	for {
		req, ok := <-b.queue
		if !ok {
			return
		}
		batch := []*estRequest{req}
		total := len(req.fs)
		var timer *time.Timer
	collect:
		for total < b.maxBatch {
			// Drain whatever is already queued without arming the
			// window; only sleep when someone may still be coming.
			select {
			case next, more := <-b.queue:
				if !more {
					break collect
				}
				batch = append(batch, next)
				total += len(next.fs)
				continue
			default:
			}
			if b.pending.Load() == 0 {
				break collect // idle: the window could only add latency
			}
			if timer == nil {
				timer = time.NewTimer(b.window)
			}
			select {
			case next, more := <-b.queue:
				if !more {
					break collect
				}
				batch = append(batch, next)
				total += len(next.fs)
			case <-timer.C:
				break collect
			}
		}
		if timer != nil {
			timer.Stop()
		}
		obsQueueDepth.Set(float64(len(b.queue)))
		b.run(batch, total)
	}
}

// run executes one micro-batch and completes its requests.
func (b *batcher) run(batch []*estRequest, total int) {
	defer obs.StartSpan("serve.batch")()
	obsBatches.Inc()
	obsBatchSize.Observe(float64(total))
	m, scale := b.model()
	if m == nil {
		for _, r := range batch {
			r.err = errNoModel
			close(r.done)
		}
		return
	}
	flat := make([]featenc.Features, 0, total)
	for _, r := range batch {
		flat = append(flat, r.fs...)
	}
	preds := m.PredictBatch(flat, b.parallelism)
	k := 0
	for _, r := range batch {
		for i := range r.fs {
			// The same scale division the pipeline's benefit
			// estimator applies to Predict, so batched results stay
			// bit-identical to sequential serving.
			r.out[i] = preds[k] / scale
			k++
		}
		close(r.done)
	}
	obs.Debug("serve.batch", "requests", len(batch), "pairs", total)
}

// close stops intake, waits for queued work to drain (bounded by ctx),
// and returns. Idempotent.
func (b *batcher) close(ctx context.Context) error {
	if !b.closed.Swap(true) {
		b.submits.Wait()
		close(b.queue)
	}
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
