package serve

import (
	"sync"
	"testing"
	"time"

	"autoview/internal/obs"
)

// testCacheMetrics returns a metrics bundle backed by fresh counters so
// cache tests never pollute (or race with) the package-level metrics.
func testCacheMetrics() cacheMetrics {
	reg := obs.NewRegistry()
	return cacheMetrics{
		hit:   reg.Counter("test.cache.hit", "t"),
		miss:  reg.Counter("test.cache.miss", "t"),
		evict: reg.Counter("test.cache.evict", "t"),
		size:  reg.Gauge("test.cache.size", "t"),
	}
}

func ck(b byte, rest ...byte) cacheKey {
	var k cacheKey
	k[0] = b
	copy(k[1:], rest)
	return k
}

func TestCacheDisabled(t *testing.T) {
	for _, c := range []*cache[int]{nil, newCache[int](0, 0, testCacheMetrics()), newCache[int](-1, 0, testCacheMetrics())} {
		c.put(ck(1), 7, c.curEpoch())
		if _, ok := c.get(ck(1)); ok {
			t.Fatal("disabled cache returned a hit")
		}
		c.bumpEpoch()
		c.sweep()
		if c.len() != 0 {
			t.Fatalf("disabled cache len = %d", c.len())
		}
	}
}

func TestCachePutGetLRU(t *testing.T) {
	met := testCacheMetrics()
	// capacity 16 → 1 entry per shard; same-shard keys compete.
	c := newCache[string](16, 0, met)
	a, b := ck(3, 1), ck(3, 2) // same shard (same first byte)
	c.put(a, "a", 0)
	if v, ok := c.get(a); !ok || v != "a" {
		t.Fatalf("get(a) = %q, %v", v, ok)
	}
	c.put(b, "b", 0) // evicts a (shard capacity 1)
	if _, ok := c.get(a); ok {
		t.Fatal("a survived past shard capacity")
	}
	if v, ok := c.get(b); !ok || v != "b" {
		t.Fatalf("get(b) = %q, %v", v, ok)
	}
	if met.evict.Value() != 1 {
		t.Fatalf("evict count = %d, want 1", met.evict.Value())
	}
	if got := met.size.Value(); got != 1 {
		t.Fatalf("size gauge = %v, want 1", got)
	}
	// Different shards don't compete.
	other := ck(4, 9)
	c.put(other, "o", 0)
	if _, ok := c.get(b); !ok {
		t.Fatal("cross-shard insert evicted b")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Shard capacity 2: touching the older entry must flip the victim.
	c := newCache[int](32, 0, testCacheMetrics())
	k1, k2, k3 := ck(5, 1), ck(5, 2), ck(5, 3)
	c.put(k1, 1, 0)
	c.put(k2, 2, 0)
	if _, ok := c.get(k1); !ok { // k1 now most recent
		t.Fatal("k1 missing")
	}
	c.put(k3, 3, 0) // must evict k2, the LRU
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been the LRU victim")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	if _, ok := c.get(k3); !ok {
		t.Fatal("k3 missing")
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := newCache[int](16, 0, testCacheMetrics())
	k := ck(9)
	c.put(k, 1, 0)
	c.put(k, 2, 0)
	if v, ok := c.get(k); !ok || v != 2 {
		t.Fatalf("get = %d, %v; want 2, true", v, ok)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d after same-key update", c.len())
	}
}

func TestCacheEpochInvalidation(t *testing.T) {
	met := testCacheMetrics()
	c := newCache[int](64, 0, met)
	k := ck(1)
	c.put(k, 41, c.curEpoch())
	c.bumpEpoch()
	if _, ok := c.get(k); ok {
		t.Fatal("stale-epoch entry survived the bump")
	}
	if met.miss.Value() == 0 {
		t.Fatal("stale read not counted as a miss")
	}
	// A put captured before the bump lands dead: never visible.
	old := c.curEpoch() - 1
	c.put(ck(2), 13, old)
	if _, ok := c.get(ck(2)); ok {
		t.Fatal("doomed-epoch put became visible")
	}
	// Fresh puts at the current epoch work.
	c.put(k, 42, c.curEpoch())
	if v, ok := c.get(k); !ok || v != 42 {
		t.Fatalf("get = %d, %v; want 42, true", v, ok)
	}
}

func TestCacheTTL(t *testing.T) {
	met := testCacheMetrics()
	c := newCache[int](64, time.Minute, met)
	clock := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	c.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	k := ck(8)
	c.put(k, 5, 0)
	if _, ok := c.get(k); !ok {
		t.Fatal("entry expired immediately")
	}
	mu.Lock()
	clock = clock.Add(59 * time.Second)
	mu.Unlock()
	if _, ok := c.get(k); !ok {
		t.Fatal("entry expired before its TTL")
	}
	mu.Lock()
	clock = clock.Add(2 * time.Second) // get refreshed nothing: exp is set at put time
	mu.Unlock()
	if _, ok := c.get(k); ok {
		t.Fatal("entry outlived its TTL")
	}
	if c.len() != 0 {
		t.Fatal("expired entry not removed on read")
	}
}

func TestCacheSweep(t *testing.T) {
	met := testCacheMetrics()
	c := newCache[int](256, 0, met)
	for i := 0; i < 100; i++ {
		c.put(ck(byte(i), byte(i>>4)), i, c.curEpoch())
	}
	if c.len() != 100 {
		t.Fatalf("len = %d, want 100", c.len())
	}
	c.bumpEpoch()
	// Survivors stored under the new epoch must not be swept.
	c.put(ck(200), 7, c.curEpoch())
	c.sweep()
	if c.len() != 1 {
		t.Fatalf("len after sweep = %d, want 1", c.len())
	}
	if v, ok := c.get(ck(200)); !ok || v != 7 {
		t.Fatal("current-epoch entry lost in sweep")
	}
	if got := met.size.Value(); got != 1 {
		t.Fatalf("size gauge after sweep = %v, want 1", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newCache[int](128, time.Hour, testCacheMetrics())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := ck(byte(i%32), byte(g))
				if i%7 == 0 {
					c.bumpEpoch()
				}
				ep := c.curEpoch()
				if v, ok := c.get(k); ok && v < 0 {
					t.Error("impossible cached value")
				}
				c.put(k, i, ep)
				if i%50 == 0 {
					c.sweep()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 128+cacheShards {
		t.Fatalf("cache exceeded its bound: %d", c.len())
	}
}
