package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"autoview/internal/featenc"
	"autoview/internal/plan"
)

// This file is the pooled fast path of POST /v1/estimate: a reusable
// request scratch, a zero-copy reader/decoder for the estimate envelope,
// and the plan-resolution step that consults the plan cache. The decoder
// replicates the observable semantics of the strict encoding/json
// configuration it replaced (DisallowUnknownFields + trailing-data
// check): case-insensitive field names, unknown fields rejected, null
// mapped to the zero value, last duplicate key wins, full escape
// processing. Query/view byte slices alias the pooled body buffer, so
// nothing derived from them may outlive the request unless explicitly
// copied (plan.Parse on the miss path gets a string copy).

// rawPair is one decoded (query, view) pair; both slices alias the
// request body buffer (escape sequences are unescaped in place).
type rawPair struct {
	query, view []byte
}

// estScratch carries every per-request buffer of the estimate path.
type estScratch struct {
	body    []byte
	pairs   []rawPair
	keys    []cacheKey // estimate-cache key per pair
	qKeys   []cacheKey // plan-cache key of each pair's query
	vKeys   []cacheKey // plan-cache key of each pair's view
	keyOK   []bool     // both SQL texts of the pair were fingerprintable
	out     []float64  // final estimates, cache hits filled in place
	missIdx []int      // indices into pairs that missed the estimate cache
	missOut []float64  // batcher output for the miss subset
	fs      []featenc.Features

	// ex amortizes feature extraction on the miss path: per-table schema
	// keywords and stats memoized across pairs and requests, per-pair
	// slices carved from reused backing arrays. Reset per request; the
	// Features in fs alias its buffers, which is safe because a pooled
	// scratch is only recycled after its request (and so its micro-batch)
	// completed.
	ex *featenc.BatchExtractor
}

var estPool = sync.Pool{New: func() any { return new(estScratch) }}

// estScratchMaxBody bounds the body capacity retained by pooled scratch
// so one oversized request cannot pin its high-water mark forever.
const estScratchMaxBody = 256 << 10

func getEstScratch() *estScratch { return estPool.Get().(*estScratch) }

// putEstScratch returns a scratch to the pool. Callers must NOT return
// the scratch when the batcher may still write into missOut (the 504
// path abandons it instead).
func putEstScratch(sc *estScratch) {
	if cap(sc.body) > estScratchMaxBody {
		sc.body = nil
	}
	estPool.Put(sc)
}

// reset sizes every per-pair slice for n pairs.
func (sc *estScratch) reset(n int) {
	if cap(sc.keys) < n {
		sc.keys = make([]cacheKey, n)
		sc.qKeys = make([]cacheKey, n)
		sc.vKeys = make([]cacheKey, n)
		sc.keyOK = make([]bool, n)
		sc.out = make([]float64, n)
		sc.missOut = make([]float64, n)
		sc.fs = make([]featenc.Features, n)
		sc.missIdx = make([]int, 0, n)
	}
	sc.keys = sc.keys[:n]
	sc.qKeys = sc.qKeys[:n]
	sc.vKeys = sc.vKeys[:n]
	sc.keyOK = sc.keyOK[:n]
	for i := range sc.keyOK {
		sc.keyOK[i] = false
	}
	sc.out = sc.out[:n]
	sc.missIdx = sc.missIdx[:0]
}

// readBody drains the request body into the pooled buffer, bounded by
// MaxBodyBytes (the returned error is *http.MaxBytesError past the
// limit, exactly as the json.Decoder path surfaced it).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, sc *estScratch) error {
	rd := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := sc.body[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.body = buf
			return nil
		}
		if err != nil {
			sc.body = buf
			return err
		}
	}
}

// planEntry is a plan-cache value: one parsed plan plus its precomputed
// plan-local features. Immutable once cached.
type planEntry struct {
	node *plan.Node
	pf   *featenc.PlanFeat
}

// planKey widens a 16-byte exact fingerprint digest to the cache key
// width (upper half zero).
func planKey(exact [16]byte) cacheKey {
	var k cacheKey
	copy(k[:16], exact[:])
	return k
}

// pairKey is the estimate-cache key: exact query digest ++ exact view
// digest.
func pairKey(q, v [16]byte) cacheKey {
	var k cacheKey
	copy(k[:16], q[:])
	copy(k[16:], v[:])
	return k
}

// resolvePlan returns the parsed plan + precomputed features for one SQL
// text, consulting the plan cache when the text is fingerprintable. sql
// aliases the pooled request body, so the parse path works on a string
// copy (parsed plans hold substrings of their source).
func (s *Server) resolvePlan(sql []byte, key cacheKey, keyOK bool) (*planEntry, error) {
	if keyOK {
		if e, ok := s.planCache.get(key); ok {
			return e, nil
		}
	}
	n, err := plan.Parse(string(sql), s.adv.Cat)
	if err != nil {
		return nil, err
	}
	e := &planEntry{node: n, pf: featenc.Precompute(n)}
	if keyOK {
		s.planCache.put(key, e, s.planCache.curEpoch())
	}
	return e, nil
}

// --- zero-copy envelope decoder ----------------------------------------

// jsonSyntaxError distinguishes malformed JSON from other failures; the
// message is what lands in the bad_json error envelope.
type jsonSyntaxError struct{ msg string }

func (e *jsonSyntaxError) Error() string { return e.msg }

func jsonErrf(format string, args ...any) error {
	return &jsonSyntaxError{msg: fmt.Sprintf(format, args...)}
}

var errTrailingData = &jsonSyntaxError{msg: "trailing data after JSON body"}

type jsonScanner struct {
	b   []byte
	pos int
}

func (sn *jsonScanner) skipWS() {
	for sn.pos < len(sn.b) {
		switch sn.b[sn.pos] {
		case ' ', '\t', '\n', '\r':
			sn.pos++
		default:
			return
		}
	}
}

// expect consumes one required byte (after skipping whitespace).
func (sn *jsonScanner) expect(c byte) error {
	sn.skipWS()
	if sn.pos >= len(sn.b) {
		return jsonErrf("unexpected end of JSON input, want %q", c)
	}
	if sn.b[sn.pos] != c {
		return jsonErrf("invalid character %q at offset %d, want %q", sn.b[sn.pos], sn.pos, c)
	}
	sn.pos++
	return nil
}

// tryLiteral consumes lit if it is next (after whitespace).
func (sn *jsonScanner) tryLiteral(lit string) bool {
	sn.skipWS()
	if len(sn.b)-sn.pos < len(lit) || string(sn.b[sn.pos:sn.pos+len(lit)]) != lit {
		return false
	}
	sn.pos += len(lit)
	return true
}

// parseString scans one JSON string, returning its decoded bytes. The
// result aliases the scanner buffer: escape-free strings are returned as
// a direct subslice, escaped ones are unescaped in place (the decoded
// form is never longer than its source, and the write cursor never
// overtakes the read cursor).
func (sn *jsonScanner) parseString() ([]byte, error) {
	if err := sn.expect('"'); err != nil {
		return nil, err
	}
	b := sn.b
	start := sn.pos
	i := sn.pos
	for i < len(b) {
		c := b[i]
		if c == '"' {
			sn.pos = i + 1
			return b[start:i], nil
		}
		if c == '\\' {
			break
		}
		if c < 0x20 {
			return nil, jsonErrf("invalid control character %q in string", c)
		}
		i++
	}
	w := i
	for i < len(b) {
		c := b[i]
		switch {
		case c == '"':
			sn.pos = i + 1
			return b[start:w], nil
		case c == '\\':
			i++
			if i >= len(b) {
				return nil, jsonErrf("unexpected end of JSON input in string escape")
			}
			switch b[i] {
			case '"', '\\', '/':
				b[w] = b[i]
				w++
				i++
			case 'b':
				b[w] = '\b'
				w++
				i++
			case 'f':
				b[w] = '\f'
				w++
				i++
			case 'n':
				b[w] = '\n'
				w++
				i++
			case 'r':
				b[w] = '\r'
				w++
				i++
			case 't':
				b[w] = '\t'
				w++
				i++
			case 'u':
				r, ok := hex4(b, i+1)
				if !ok {
					return nil, jsonErrf("invalid \\u escape at offset %d", i)
				}
				i += 5
				if utf16.IsSurrogate(r) {
					// A high surrogate pairs with an immediately
					// following \uXXXX low surrogate; anything else
					// decodes to U+FFFD, as encoding/json does.
					r2 := rune(utf8.RuneError)
					if i+1 < len(b) && b[i] == '\\' && b[i+1] == 'u' {
						if lo, ok2 := hex4(b, i+2); ok2 {
							if dec := utf16.DecodeRune(r, lo); dec != utf8.RuneError {
								r2 = dec
								i += 6
							}
						}
					}
					if r2 == utf8.RuneError {
						r = utf8.RuneError
					} else {
						r = r2
					}
				}
				w += utf8.EncodeRune(b[w:w+4], r)
			default:
				return nil, jsonErrf("invalid escape character %q in string", b[i])
			}
		case c < 0x20:
			return nil, jsonErrf("invalid control character %q in string", c)
		default:
			b[w] = c
			w++
			i++
		}
	}
	return nil, jsonErrf("unexpected end of JSON input in string")
}

// hex4 decodes the four hex digits at b[at:at+4].
func hex4(b []byte, at int) (rune, bool) {
	if at+4 > len(b) {
		return 0, false
	}
	var r rune
	for _, c := range b[at : at+4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, false
		}
	}
	return r, true
}

// foldEq reports ASCII-case-insensitive equality with s (the
// encoding/json field-matching rule for the fields used here).
func foldEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// decodeEstimateBody parses {"pairs":[{"query":...,"view":...}]} from
// the pooled body into sc.pairs (aliasing sc.body).
func decodeEstimateBody(body []byte, sc *estScratch) error {
	sc.pairs = sc.pairs[:0]
	sn := &jsonScanner{b: body}
	if err := sn.expect('{'); err != nil {
		return err
	}
	sn.skipWS()
	if sn.pos < len(sn.b) && sn.b[sn.pos] == '}' {
		sn.pos++
		return sn.trailing()
	}
	for {
		name, err := sn.parseString()
		if err != nil {
			return err
		}
		if err := sn.expect(':'); err != nil {
			return err
		}
		if !foldEq(name, "pairs") {
			return jsonErrf("unknown field %q", name)
		}
		// Duplicate "pairs" keys: the last one wins, so each occurrence
		// re-decodes from scratch.
		if err := sn.parsePairs(sc); err != nil {
			return err
		}
		sn.skipWS()
		if sn.pos >= len(sn.b) {
			return jsonErrf("unexpected end of JSON input in object")
		}
		switch sn.b[sn.pos] {
		case ',':
			sn.pos++
		case '}':
			sn.pos++
			return sn.trailing()
		default:
			return jsonErrf("invalid character %q after object field", sn.b[sn.pos])
		}
	}
}

// trailing enforces the trailing-data check the json.Decoder path ran
// via dec.More().
func (sn *jsonScanner) trailing() error {
	sn.skipWS()
	if sn.pos != len(sn.b) {
		return errTrailingData
	}
	return nil
}

func (sn *jsonScanner) parsePairs(sc *estScratch) error {
	sc.pairs = sc.pairs[:0]
	if sn.tryLiteral("null") {
		return nil
	}
	if err := sn.expect('['); err != nil {
		return err
	}
	sn.skipWS()
	if sn.pos < len(sn.b) && sn.b[sn.pos] == ']' {
		sn.pos++
		return nil
	}
	for {
		p, err := sn.parsePair()
		if err != nil {
			return err
		}
		sc.pairs = append(sc.pairs, p)
		sn.skipWS()
		if sn.pos >= len(sn.b) {
			return jsonErrf("unexpected end of JSON input in array")
		}
		switch sn.b[sn.pos] {
		case ',':
			sn.pos++
		case ']':
			sn.pos++
			return nil
		default:
			return jsonErrf("invalid character %q after array element", sn.b[sn.pos])
		}
	}
}

func (sn *jsonScanner) parsePair() (rawPair, error) {
	var p rawPair
	if err := sn.expect('{'); err != nil {
		return p, err
	}
	sn.skipWS()
	if sn.pos < len(sn.b) && sn.b[sn.pos] == '}' {
		sn.pos++
		return p, nil
	}
	for {
		name, err := sn.parseString()
		if err != nil {
			return p, err
		}
		if err := sn.expect(':'); err != nil {
			return p, err
		}
		var val []byte
		if sn.tryLiteral("null") {
			val = nil // null keeps the zero value, as encoding/json does
		} else if val, err = sn.parseString(); err != nil {
			return p, err
		}
		switch {
		case foldEq(name, "query"):
			p.query = val
		case foldEq(name, "view"):
			p.view = val
		default:
			return p, jsonErrf("unknown field %q", name)
		}
		sn.skipWS()
		if sn.pos >= len(sn.b) {
			return p, jsonErrf("unexpected end of JSON input in pair object")
		}
		switch sn.b[sn.pos] {
		case ',':
			sn.pos++
		case '}':
			sn.pos++
			return p, nil
		default:
			return p, jsonErrf("invalid character %q after pair field", sn.b[sn.pos])
		}
	}
}

// classifyBodyError maps a readBody failure onto the status/code pair
// the json.Decoder path produced.
func classifyBodyError(err error) (int, string, string) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)
	}
	return http.StatusBadRequest, "bad_json", err.Error()
}
