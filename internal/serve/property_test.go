package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"autoview/internal/catalog"
	"autoview/internal/plan"
	"autoview/internal/sqlparse"
	"autoview/internal/workload"
)

// postRaw sends one prebuilt body and returns the status plus the raw
// response bytes (the property under test is byte identity, so no
// decoding happens here).
func postRaw(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw
}

// bumpLiterals rewrites every literal in sql (numbers get a digit
// appended, strings a suffix) so the variant shares the query's template
// fingerprint but not its exact fingerprint. Returns "" when sql has no
// literals or the variant no longer parses.
func bumpLiterals(t *testing.T, sql, suffix string, cat *catalog.Catalog) string {
	t.Helper()
	toks, err := sqlparse.Lex(sql)
	if err != nil {
		t.Fatalf("lex %q: %v", sql, err)
	}
	var b strings.Builder
	last := 0
	changed := false
	for _, tok := range toks {
		switch tok.Kind {
		case sqlparse.TokenNumber:
			end := tok.Pos + len(tok.Text)
			b.WriteString(sql[last:tok.Pos])
			b.WriteString(" " + tok.Text + suffixDigits(suffix) + " ")
			last = end
			changed = true
		case sqlparse.TokenString:
			// Rescan for the closing quote: tok.Text is unescaped, so
			// its length may not match the source span.
			end := tok.Pos + 1
			for sql[end] != '\'' || (end+1 < len(sql) && sql[end+1] == '\'') {
				if sql[end] == '\'' {
					end++ // first half of an escaped ''
				}
				end++
			}
			end++
			b.WriteString(sql[last:tok.Pos])
			b.WriteString(" '" + strings.ReplaceAll(tok.Text, "'", "''") + suffix + "' ")
			last = end
			changed = true
		}
	}
	if !changed {
		return ""
	}
	b.WriteString(sql[last:])
	variant := b.String()
	if _, err := plan.Parse(variant, cat); err != nil {
		return ""
	}
	return variant
}

func suffixDigits(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			b.WriteByte(s[i])
		}
	}
	if b.Len() == 0 {
		return "9"
	}
	return b.String()
}

// propertyBodies builds the seeded request corpus: every workload query
// plus literal-bumped variants (~100+ distinct queries), paired with the
// advertised views and chunked into estimate bodies.
func propertyBodies(t *testing.T, w *workload.Workload, vs ViewSet) [][]byte {
	t.Helper()
	if len(vs.Views) == 0 {
		t.Fatal("no bootstrap views to pair with")
	}
	var queries []string
	for _, q := range w.Queries {
		queries = append(queries, q.SQL)
		if v := bumpLiterals(t, q.SQL, "7", w.Cat); v != "" {
			queries = append(queries, v)
		}
	}
	if len(queries) < 100 {
		t.Fatalf("property corpus too small: %d queries, want >= 100", len(queries))
	}
	var bodies [][]byte
	const perBody = 8
	for at := 0; at < len(queries); at += perBody {
		endAt := at + perBody
		if endAt > len(queries) {
			endAt = len(queries)
		}
		var pairs []estimatePair
		for i, q := range queries[at:endAt] {
			pairs = append(pairs, estimatePair{Query: q, View: vs.Views[(at+i)%len(vs.Views)].SQL})
		}
		raw, err := json.Marshal(estimateRequest{Pairs: pairs})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, raw)
	}
	return bodies
}

// expectIdentical posts every body to the cold (cache-disabled) server
// and twice to the cached server — once populating the cache, once all
// warm — and requires all three responses byte-identical.
func expectIdentical(t *testing.T, coldURL, cachedURL string, bodies [][]byte, phase string) [][]byte {
	t.Helper()
	want := make([][]byte, len(bodies))
	for i, body := range bodies {
		status, cold := postRaw(t, coldURL+"/v1/estimate", body)
		if status != http.StatusOK {
			t.Fatalf("%s: cold status %d: %s", phase, status, cold)
		}
		for _, pass := range []string{"populate", "warm"} {
			status, got := postRaw(t, cachedURL+"/v1/estimate", body)
			if status != http.StatusOK {
				t.Fatalf("%s: cached(%s) status %d: %s", phase, pass, status, got)
			}
			if !bytes.Equal(cold, got) {
				t.Fatalf("%s: cached(%s) response diverges from cold:\ncold:   %s\ncached: %s", phase, pass, cold, got)
			}
		}
		want[i] = cold
	}
	return want
}

// TestEstimateCacheByteIdentity is the cache-correctness property
// harness: across ~100 seeded queries (workload queries plus
// literal-bumped template variants), a cache-disabled server and a
// cached server — bootstrapped identically — must return byte-identical
// /v1/estimate responses on cold, populating, and fully warm passes; the
// identity must hold at every client parallelism level and across
// view-set rotation and model hot-reload boundaries, with stale entries
// never surviving a version bump. Run with -race in CI.
func TestEstimateCacheByteIdentity(t *testing.T) {
	w := serveWK()
	baseCfg := Config{Parallelism: 4, MaxBatch: 16}
	coldCfg := baseCfg
	coldCfg.CacheSize = -1 // disabled: every request takes the full path
	_, coldTS := newTestServer(t, coldCfg)
	cached, cachedTS := newTestServer(t, baseCfg)

	// Identical bootstrap is the precondition for comparing the two
	// servers at all.
	var vsCold, vsCached ViewSet
	getJSON(t, coldTS.URL+"/v1/views", &vsCold)
	getJSON(t, cachedTS.URL+"/v1/views", &vsCached)
	vsCold.CreatedAt, vsCached.CreatedAt = time.Time{}, time.Time{} // wall-clock stamps are the one legitimate difference
	if !reflect.DeepEqual(vsCold, vsCached) {
		t.Fatalf("bootstrap view sets diverge:\ncold:   %+v\ncached: %+v", vsCold, vsCached)
	}

	bodies := propertyBodies(t, w, vsCached)

	// Phase 1: cold vs populate vs warm.
	want := expectIdentical(t, coldTS.URL, cachedTS.URL, bodies, "bootstrap")
	if cached.estCache.len() == 0 {
		t.Fatal("estimate cache never populated")
	}
	if cached.planCache.len() == 0 {
		t.Fatal("plan cache never populated")
	}

	// Phase 2: warm reads under client concurrency (the server batches
	// across goroutines; responses must stay byte-identical). Run at
	// several parallelism levels; -race patrols the cache internals.
	for _, clients := range []int{1, 4, 8} {
		var wg sync.WaitGroup
		errs := make(chan error, clients*len(bodies))
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < len(bodies); i += clients {
					status, got := postRaw(t, cachedTS.URL+"/v1/estimate", bodies[i])
					if status != http.StatusOK {
						errs <- fmt.Errorf("clients=%d body %d: status %d", clients, i, status)
						continue
					}
					if !bytes.Equal(want[i], got) {
						errs <- fmt.Errorf("clients=%d body %d: warm response diverged", clients, i)
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}

	// Phase 3: view-set rotation. Both servers re-advise over identical
	// windows (nothing was ingested), so they stay comparable; the
	// cached server's estimate cache must come out empty — the epoch
	// bump plus sweep may leave nothing from the previous generation.
	for _, u := range []string{coldTS.URL, cachedTS.URL} {
		resp, body := postJSON(t, u+"/v1/advise", adviseRequest{Force: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advise on %s: status %d: %s", u, resp.StatusCode, body)
		}
	}
	if n := cached.estCache.len(); n != 0 {
		t.Fatalf("%d stale estimate-cache entries survived the rotation sweep", n)
	}
	want = expectIdentical(t, coldTS.URL, cachedTS.URL, bodies, "post-rotation")

	// Phase 4: model hot-reload with a changed cost scale. Halving the
	// scale doubles every estimate, so any stale entry surviving the
	// bump would be caught by the cold comparison below — and the
	// responses must visibly change.
	cur := cached.model.Load()
	path := t.TempDir() + "/wd.ckpt"
	if err := saveModel(cur.m, path); err != nil {
		t.Fatalf("save checkpoint: %v", err)
	}
	for _, u := range []string{coldTS.URL, cachedTS.URL} {
		resp, body := postJSON(t, u+"/v1/admin/model", reloadRequest{Path: path, Scale: cur.scale * 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload on %s: status %d: %s", u, resp.StatusCode, body)
		}
	}
	postReload := expectIdentical(t, coldTS.URL, cachedTS.URL, bodies, "post-reload")
	changed := false
	for i := range postReload {
		if !bytes.Equal(want[i], postReload[i]) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("scale-doubling reload left every response unchanged: stale estimates survived the version bump")
	}
}

// TestEstimateCacheServerParallelismLevels pins byte identity between a
// serial (Parallelism 1) cached server and the parallel cold baseline
// over a corpus subset: the cache must not introduce any dependence on
// the inference pool size.
func TestEstimateCacheServerParallelismLevels(t *testing.T) {
	w := serveWK()
	coldCfg := Config{Parallelism: 4, CacheSize: -1}
	_, coldTS := newTestServer(t, coldCfg)
	_, serialTS := newTestServer(t, Config{Parallelism: 1})

	var vs ViewSet
	getJSON(t, serialTS.URL+"/v1/views", &vs)
	bodies := propertyBodies(t, w, vs)
	if len(bodies) > 4 {
		bodies = bodies[:4] // a subset: the full sweep runs in TestEstimateCacheByteIdentity
	}
	expectIdentical(t, coldTS.URL, serialTS.URL, bodies, "parallelism-1")
}
