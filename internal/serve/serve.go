// Package serve is the online view-advisor service: a long-running HTTP
// front end over the batch pipeline in internal/core. Where
// core.Advisor.Run processes one workload and exits, a serve.Server
// ingests a query stream into a bounded rolling window, answers W-D
// cost-estimate requests through a micro-batching inference scheduler,
// and periodically re-runs view selection over the window, rotating in a
// versioned, fingerprint-sorted view set (with rollback when the new
// set's estimated utility regresses).
//
// Endpoints (all JSON; see SERVING.md for the full reference):
//
//	POST /v1/estimate     batched A(q|v) estimates for (query, view) pairs
//	POST /v1/queries      ingest queries into the rolling window
//	POST /v1/advise       trigger a re-advise cycle
//	GET  /v1/views        the current versioned view set (+DDL)
//	GET  /v1/healthz      liveness and serving state
//	POST /v1/admin/model  hot-reload W-D weights from a checkpoint
//	GET  /metrics ...     the internal/obs endpoint, mounted at the root
//
// Robustness is part of the contract: requests are bounded (body size,
// pairs per request, per-request timeout), queues are bounded with
// load-shedding (HTTP 429), errors are structured JSON, and Close drains
// in-flight batches before returning.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"autoview/internal/core"
	"autoview/internal/durable"
	"autoview/internal/engine"
	"autoview/internal/featenc"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/widedeep"
	"autoview/internal/workload"
)

// Serving metrics (see OBSERVABILITY.md): request traffic accumulates in
// counters, the current serving state lands in gauges.
var (
	obsRequests   = obs.Default.Counter("serve.http.requests", "HTTP requests received by the view-advisor service")
	obsErrors     = obs.Default.Counter("serve.http.errors", "HTTP error responses (4xx/5xx) sent by the service")
	obsShed       = obs.Default.Counter("serve.shed", "requests shed with 429 because a bounded queue was full")
	obsTimeouts   = obs.Default.Counter("serve.timeouts", "estimate requests that hit their per-request timeout")
	obsPairs      = obs.Default.Counter("serve.estimate.pairs", "(query, view) pairs estimated")
	obsIngested   = obs.Default.Counter("serve.ingest.queries", "queries accepted into the ingest queue")
	obsCycles     = obs.Default.Counter("serve.advise.cycles", "re-advise cycles completed")
	obsSwaps      = obs.Default.Counter("serve.advise.swaps", "view-set rotations that swapped in a new version")
	obsRollbacks  = obs.Default.Counter("serve.advise.rollbacks", "view-set rotations rolled back on utility regression")
	obsReloads    = obs.Default.Counter("serve.model.reloads", "W-D model hot-reloads via the admin endpoint")
	obsViewsVer   = obs.Default.Gauge("serve.views.version", "version of the active view set")
	obsViewsCount = obs.Default.Gauge("serve.views.count", "views in the active view set")
	obsUtility    = obs.Default.Gauge("serve.advise.utility", "estimated utility of the active view set ($)")
	obsModelVer   = obs.Default.Gauge("serve.model.version", "version of the active W-D model")
)

// Config tunes the service. The zero value selects sensible defaults via
// withDefaults; Parallelism follows the pipeline-wide convention (0 means
// runtime.NumCPU(), 1 runs serially).
type Config struct {
	// Parallelism sizes the micro-batcher's inference worker pool.
	Parallelism int
	// MaxBatch caps the (query, view) pairs coalesced into one
	// micro-batch. Default 32.
	MaxBatch int
	// BatchWindow is how long the dispatcher waits for more requests
	// after the first one before running a partial batch. Default 2ms.
	BatchWindow time.Duration
	// QueueDepth bounds the estimate request queue; a full queue sheds
	// with 429. Default 256.
	QueueDepth int
	// IngestQueue bounds the query ingest queue; a full queue sheds with
	// 429. Default 1024.
	IngestQueue int
	// WindowSize is the rolling workload window capacity. Default 512.
	WindowSize int
	// MaxPairs caps pairs per estimate request (400 above). Default 64.
	MaxPairs int
	// MaxQueries caps queries per ingest request (400 above). Default 256.
	MaxQueries int
	// RequestTimeout bounds one estimate request's wait for its batch
	// results (504 past it). Default 10s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (413 above). Default 1 MiB.
	MaxBodyBytes int64
	// AdviseInterval is the background re-advise period; 0 disables the
	// loop (selection then runs only via POST /v1/advise).
	AdviseInterval time.Duration
	// UtilityTolerance is the relative regression tolerated before a
	// rotation rolls back: a candidate set is rejected when its utility
	// is below (1-UtilityTolerance) times the active set's. Default 0
	// (any regression rolls back).
	UtilityTolerance float64
	// CacheSize bounds the fingerprint-keyed estimate cache (the plan
	// cache shares the bound). 0 selects the default 4096; negative
	// disables caching entirely.
	CacheSize int
	// CacheTTL expires cached entries by age on top of the LRU bound and
	// epoch invalidation. 0 (the default) means entries never expire by
	// age — rotation and hot-reload epochs already bound staleness.
	CacheTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 1024
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 512
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 64
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.UtilityTolerance < 0 {
		c.UtilityTolerance = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	return c
}

// model pairs W-D weights with the cost scale that maps its predictions
// back to dollars, swapped atomically as one unit.
type model struct {
	m       *widedeep.Model
	scale   float64 // predictions are divided by this (1 when unscaled)
	version int
}

// ingestMsg carries parsed plans (tagged with the SQL they were parsed
// from, which is what the WAL persists) to the window goroutine; done
// (when non-nil) is closed after the append, which gives /v1/advise its
// ingest-before-snapshot barrier.
type ingestMsg struct {
	plans []*plan.Node
	sqls  []string
	done  chan struct{}
}

// Server is the online view advisor. Build one with New (or NewServer +
// Start when the handler must be live — answering /v1/healthz with
// "recovering" — while durable state replays), mount Handler on an
// http.Server, and Close it to drain.
type Server struct {
	cfg Config

	wl     *workload.Workload
	adv    *core.Advisor
	window *core.Window

	// dur is the durable store (nil when running without -data-dir).
	// durMu makes each state mutation atomic with its WAL append, so a
	// snapshot never captures a mutation without the record that caused
	// it (or vice versa). The estimate path never touches either.
	dur   *durable.Store
	durMu sync.Mutex

	// ready flips once Start has recovered (or bootstrapped) the serving
	// state; until then every endpoint but /v1/healthz answers 503.
	ready atomic.Bool

	model   atomic.Pointer[model]
	views   atomic.Pointer[ViewSet]
	started time.Time

	batcher *batcher
	ingest  chan ingestMsg

	// estCache maps (query, view) exact-fingerprint pairs to final cost
	// estimates, epoch-invalidated on rotation and hot-reload; planCache
	// maps one exact fingerprint to its parsed plan + precomputed
	// features (epoch-free: plans depend only on SQL text and the
	// immutable catalog). Both are nil (disabled) when CacheSize < 0.
	estCache  *cache[float64]
	planCache *cache[*planEntry]

	// adviseMu serializes re-advise cycles (the advisor mutates its
	// store and metadata DB); TryLock turns concurrent triggers into 409.
	adviseMu sync.Mutex

	mux *http.ServeMux

	closing    atomic.Bool
	ingestOpen sync.WaitGroup // in-flight ingest handler sends
	bg         sync.WaitGroup // ingester + advise loop
	stopBg     chan struct{}
}

// New builds and starts a server in one call (NewServer + Start with no
// durable store): the rolling window is seeded with the workload's
// queries and the bootstrap advise cycle runs synchronously, so the
// service returns with a trained W-D model (when coreCfg.Estimator is
// EstimatorWideDeep) and view set version 1. Call Close to drain.
func New(w *workload.Workload, coreCfg core.Config, cfg Config) (*Server, error) {
	s := NewServer(w, coreCfg, cfg)
	if err := s.Start(context.Background(), nil); err != nil {
		return nil, err
	}
	return s, nil
}

// NewServer builds a server without starting it: the HTTP handler is
// live (so /v1/healthz can report "recovering" while a durable data
// directory replays) but the window is empty, no model or view set
// exists, and every other endpoint answers 503 until Start completes.
func NewServer(w *workload.Workload, coreCfg core.Config, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		wl:      w,
		adv:     core.NewAdvisor(w.Cat, engine.New(w.Populate()), coreCfg),
		window:  core.NewWindow(cfg.WindowSize),
		ingest:  make(chan ingestMsg, cfg.IngestQueue),
		stopBg:  make(chan struct{}),
		started: time.Now(),
	}
	s.estCache = newCache[float64](cfg.CacheSize, cfg.CacheTTL,
		cacheMetrics{hit: obsCacheHit, miss: obsCacheMiss, evict: obsCacheEvict, size: obsCacheSize})
	s.planCache = newCache[*planEntry](cfg.CacheSize, cfg.CacheTTL,
		cacheMetrics{hit: obsPlanCacheHit, miss: obsPlanCacheMiss, evict: obsPlanCacheEvict, size: obsPlanCacheSize})
	s.batcher = newBatcher(cfg, func() (*widedeep.Model, float64) {
		m := s.model.Load()
		if m == nil {
			return nil, 1
		}
		return m.m, m.scale
	})
	s.mux = s.routes()
	return s
}

// Start brings a NewServer-built server into service. With a durable
// store holding recovered state, the window, view set, and model are
// restored from it (byte-identically — see internal/durable); with a
// fresh store the workload seed is logged as the first WAL record and
// the bootstrap advise cycle persists its model and view set. With no
// store (dstore nil) the seed + bootstrap path runs without durability.
// The background loops start and the server reports ready on return.
func (s *Server) Start(ctx context.Context, dstore *durable.Store) error {
	s.dur = dstore
	if st := recoveredState(dstore); st != nil {
		if err := s.restore(st); err != nil {
			return err
		}
	} else {
		seedSQLs := make([]string, len(s.wl.Queries))
		for i := range s.wl.Queries {
			seedSQLs[i] = s.wl.Queries[i].SQL
		}
		s.window.AppendTagged(s.wl.Plans(), seedSQLs)
		if s.dur != nil {
			if err := s.dur.AppendIngest(seedSQLs); err != nil {
				return fmt.Errorf("serve: log workload seed: %w", err)
			}
		}
		if _, err := s.advise(ctx, "bootstrap", false); err != nil {
			return fmt.Errorf("serve: bootstrap advise: %w", err)
		}
	}

	s.bg.Add(1)
	go s.ingester()
	if s.cfg.AdviseInterval > 0 {
		s.bg.Add(1)
		go s.adviseLoop()
	}
	s.ready.Store(true)
	return nil
}

// recoveredState unwraps the nil-store case: a server without
// durability, or with a fresh data directory, takes the bootstrap path.
func recoveredState(dstore *durable.Store) *durable.State {
	if dstore == nil {
		return nil
	}
	return dstore.Recovered()
}

// Handler returns the service's HTTP handler (the /v1 API plus the
// internal/obs endpoint mounted at the root).
func (s *Server) Handler() http.Handler { return s.mux }

// Vocab returns the encoder vocabulary the active model was built with
// (checkpoints only load into a same-shape model; see Reload).
func (s *Server) Vocab() *featenc.Vocab {
	m := s.model.Load()
	if m == nil || m.m == nil {
		return nil
	}
	return m.m.Enc.Vocab
}

// ingester is the single consumer of the bounded ingest queue: it
// appends parsed plans to the rolling window in arrival order and logs
// each batch to the WAL — both under durMu, so a snapshot can never
// capture the window mutation without its record. Ranging over the
// channel means a graceful Close drains every accepted batch into the
// window and the log before the server reports drained.
func (s *Server) ingester() {
	defer s.bg.Done()
	for msg := range s.ingest {
		if len(msg.plans) > 0 {
			s.durMu.Lock()
			s.window.AppendTagged(msg.plans, msg.sqls)
			if s.dur != nil {
				if err := s.dur.AppendIngest(msg.sqls); err != nil {
					obs.Error("serve.durable", "event", "ingest_record_failed", "err", err)
				}
			}
			s.durMu.Unlock()
		}
		if msg.done != nil {
			close(msg.done)
		}
		s.maybeSnapshot()
	}
}

// sendIngest places msg on the bounded ingest queue. Non-blocking sends
// (the ingest handler) shed with errQueueFull when the queue is full;
// blocking sends (the advise barrier) wait for room or shutdown. The
// ingestOpen group lets Close wait until no sender is mid-flight before
// closing the channel.
func (s *Server) sendIngest(msg ingestMsg, block bool) error {
	s.ingestOpen.Add(1)
	defer s.ingestOpen.Done()
	if s.closing.Load() {
		return errShuttingDown
	}
	if block {
		select {
		case s.ingest <- msg:
			return nil
		case <-s.stopBg:
			return errShuttingDown
		}
	}
	select {
	case s.ingest <- msg:
		return nil
	default:
		return errQueueFull
	}
}

// adviseLoop periodically re-runs selection over the rolling window.
func (s *Server) adviseLoop() {
	defer s.bg.Done()
	ticker := time.NewTicker(s.cfg.AdviseInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopBg:
			return
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.AdviseInterval)
			res, err := s.advise(ctx, "periodic", false)
			cancel()
			if err != nil {
				obs.Warn("serve.advise.loop", "err", err)
				continue
			}
			obs.Info("serve.advise.loop", "version", res.Version, "swapped", res.Swapped,
				"rolled_back", res.RolledBack, "views", res.Views, "window", res.Window)
		}
	}
}

// Close gracefully stops the server: new work is rejected with 503,
// the ingest queue is drained into the window (and the WAL), the
// batcher finishes every queued estimate, the background loops exit,
// and — when running durably — the WAL is flushed and a final snapshot
// is written so a restart recovers this exact state with no replay.
// The caller is responsible for shutting down its http.Server first (or
// concurrently) so in-flight handlers can still collect their batch
// results. Close is bounded by ctx only for the batcher drain; queue
// consumers always finish their queued work.
func (s *Server) Close(ctx context.Context) error {
	if s.closing.Swap(true) {
		return nil // already closing
	}
	close(s.stopBg)
	s.ingestOpen.Wait() // no handler is mid-send on the ingest queue
	close(s.ingest)
	err := s.batcher.close(ctx)
	s.bg.Wait()
	if s.dur != nil {
		if serr := s.dur.Sync(); serr != nil {
			err = errors.Join(err, fmt.Errorf("serve: drain WAL: %w", serr))
		}
		if snapErr := s.writeSnapshot(); snapErr != nil {
			err = errors.Join(err, fmt.Errorf("serve: drain snapshot: %w", snapErr))
		}
	}
	obs.Info("serve.close", "drained", err == nil)
	return err
}
