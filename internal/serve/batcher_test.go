package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"autoview/internal/featenc"
	"autoview/internal/widedeep"
)

func onePairRequest() *estRequest {
	return &estRequest{
		fs:   make([]featenc.Features, 1),
		out:  make([]float64, 1),
		done: make(chan struct{}),
	}
}

// gatedBatcher builds a batcher whose dispatcher blocks inside run until
// the returned gate is closed — the deterministic way to hold work in
// the queue while the test probes shedding and draining.
func gatedBatcher(queueDepth int) (*batcher, chan struct{}) {
	gate := make(chan struct{})
	b := newBatcher(
		Config{MaxBatch: 1, BatchWindow: time.Millisecond, QueueDepth: queueDepth},
		func() (*widedeep.Model, float64) {
			<-gate
			return nil, 1
		})
	return b, gate
}

// waitQueueEmpty blocks until the dispatcher has pulled everything off
// the queue (and is therefore parked inside run, on the gate).
func waitQueueEmpty(t *testing.T, b *batcher) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(b.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never drained the queue")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherShedsWhenFull drives the bounded queue to capacity and
// checks the overflow submit is rejected, not blocked — and that every
// accepted request still completes.
func TestBatcherShedsWhenFull(t *testing.T) {
	b, gate := gatedBatcher(1)
	r1, r2, r3 := onePairRequest(), onePairRequest(), onePairRequest()

	if err := b.submit(r1); err != nil {
		t.Fatalf("submit r1: %v", err)
	}
	waitQueueEmpty(t, b) // r1 is now held inside run; the queue is free
	if err := b.submit(r2); err != nil {
		t.Fatalf("submit r2: %v", err)
	}
	if err := b.submit(r3); !errors.Is(err, errQueueFull) {
		t.Fatalf("submit r3 = %v, want errQueueFull", err)
	}

	close(gate)
	for _, r := range []*estRequest{r1, r2} {
		select {
		case <-r.done:
			if !errors.Is(r.err, errNoModel) {
				t.Fatalf("request err = %v, want errNoModel (gated model func returns nil)", r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("accepted request never completed")
		}
	}
	if err := b.close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestBatcherDrainsOnClose closes the batcher while work is queued and
// in flight: close must reject new submits immediately but wait for
// every accepted request to complete before returning.
func TestBatcherDrainsOnClose(t *testing.T) {
	b, gate := gatedBatcher(4)
	r1, r2 := onePairRequest(), onePairRequest()
	if err := b.submit(r1); err != nil {
		t.Fatalf("submit r1: %v", err)
	}
	if err := b.submit(r2); err != nil {
		t.Fatalf("submit r2: %v", err)
	}

	closed := make(chan error, 1)
	go func() {
		closed <- b.close(context.Background())
	}()

	// close is now blocked on the gated dispatcher; new work must be
	// turned away while the old work is still guaranteed to finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := b.submit(onePairRequest()); errors.Is(err, errShuttingDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submit never started returning errShuttingDown")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-closed:
		t.Fatal("close returned before the queued work drained")
	default:
	}

	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, r := range []*estRequest{r1, r2} {
		select {
		case <-r.done:
		default:
			t.Fatal("close returned with an accepted request incomplete")
		}
	}
}

// TestBatcherCloseHonorsContext: a close whose drain cannot finish must
// give up when its context expires (and still succeed later).
func TestBatcherCloseHonorsContext(t *testing.T) {
	b, gate := gatedBatcher(4)
	if err := b.submit(onePairRequest()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitQueueEmpty(t, b)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close = %v, want DeadlineExceeded while gated", err)
	}
	close(gate)
	if err := b.close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// gateServerModel wraps the server's model getter so the next micro-batch
// signals entered and then blocks until the returned gate closes.
// Installing the wrapper before any estimate traffic is sent gives the
// dispatcher's read a happens-before edge through the queue channel.
func gateServerModel(s *Server) (gate, entered chan struct{}) {
	gate = make(chan struct{})
	entered = make(chan struct{}, 1)
	orig := s.batcher.model
	s.batcher.model = func() (*widedeep.Model, float64) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
		return orig()
	}
	return gate, entered
}

// TestServeEstimateTimeout holds a micro-batch past the request timeout
// and expects a structured 504.
func TestServeEstimateTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallelism: 1, RequestTimeout: 50 * time.Millisecond})
	gate, _ := gateServerModel(s)
	defer close(gate)

	w := serveWK()
	resp, body := postJSON(t, ts.URL+"/v1/estimate",
		estimateRequest{Pairs: []estimatePair{{Query: w.Queries[0].SQL, View: w.Queries[1].SQL}}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var envelope errorResponse
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != "timeout" {
		t.Fatalf("timeout envelope %s (err %v)", body, err)
	}
}

// TestServeGracefulDrain closes the server while an estimate is held in
// flight: the in-flight request must still get its 200 with results,
// while new traffic is refused with a structured 503.
func TestServeGracefulDrain(t *testing.T) {
	w := serveWK()
	s, err := New(w, serveCoreCfg(), Config{Parallelism: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	gate, entered := gateServerModel(s)

	inflight := make(chan error, 1)
	go func() {
		raw, _ := json.Marshal(estimateRequest{Pairs: []estimatePair{{Query: w.Queries[0].SQL, View: w.Queries[1].SQL}}})
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(raw))
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		var out estimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			inflight <- err
			return
		}
		if resp.StatusCode != http.StatusOK || len(out.Estimates) != 1 {
			inflight <- errors.New("in-flight estimate did not complete with results during drain")
			return
		}
		inflight <- nil
	}()
	select {
	case <-entered: // the estimate's micro-batch is parked on the gate
	case <-time.After(10 * time.Second):
		t.Fatal("estimate never reached the dispatcher")
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()

	// New traffic is shed with 503 while the drain is in progress.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := postJSON(t, ts.URL+"/v1/queries", ingestRequest{Queries: []string{w.Queries[0].SQL}})
		if resp.StatusCode == http.StatusServiceUnavailable {
			var envelope errorResponse
			if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != "shutting_down" {
				t.Fatalf("drain envelope %s (err %v)", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started refusing traffic during drain")
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight estimate: %v", err)
	}
}
