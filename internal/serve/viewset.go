package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sort"
	"time"

	"autoview/internal/core"
	"autoview/internal/featenc"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/sqlparse"
	"autoview/internal/widedeep"
)

var errAdviseBusy = errors.New("serve: an advise cycle is already running")

// ViewInfo is one materialized view of the active set.
type ViewInfo struct {
	ID          string  `json:"id"`
	Fingerprint string  `json:"fingerprint"`
	SharedBy    int     `json:"shared_by"`
	Overhead    float64 `json:"overhead"`
	SQL         string  `json:"sql"`
	DDL         string  `json:"ddl"`
}

// ViewSet is one immutable advisor output: a version number, the
// selection method and estimated utility, and the chosen views sorted by
// fingerprint (a canonical order independent of selection internals).
// The server swaps whole sets atomically (copy-on-write); readers never
// observe a partially rotated set.
type ViewSet struct {
	Version   int        `json:"version"`
	Method    string     `json:"method"`
	Utility   float64    `json:"utility"`
	Window    int        `json:"window"`
	CreatedAt time.Time  `json:"created_at"`
	Views     []ViewInfo `json:"views"`
}

// AdviseResult reports one re-advise cycle's outcome.
type AdviseResult struct {
	// Version is the active view-set version after the cycle (unchanged
	// on rollback or when the window held no candidates).
	Version int `json:"version"`
	// Swapped reports that a new view set was rotated in.
	Swapped bool `json:"swapped"`
	// RolledBack reports that the candidate set was rejected because its
	// estimated utility regressed below the active set's.
	RolledBack bool `json:"rolled_back"`
	// NoCandidates reports that pre-processing found nothing to share.
	NoCandidates bool `json:"no_candidates,omitempty"`
	// Method/Utility/Views describe the candidate selection (the active
	// set's values when the cycle produced no candidates).
	Method  string  `json:"method,omitempty"`
	Utility float64 `json:"utility"`
	Views   int     `json:"views"`
	// Window is the number of queries the cycle ran over.
	Window int `json:"window"`
}

// advise runs one re-advise cycle: barrier the ingest queue, snapshot
// the rolling window, run estimate+select (core.Advisor.Advise), and
// rotate the versioned view set — atomically swapping it in, or rolling
// back when the candidate's estimated utility regresses (force
// overrides the rollback guard). Cycles are serialized; a concurrent
// trigger fails fast with errAdviseBusy. A freshly trained W-D model is
// hot-swapped into the batcher whether or not the view set rotates.
func (s *Server) advise(ctx context.Context, trigger string, force bool) (*AdviseResult, error) {
	if !s.adviseMu.TryLock() {
		return nil, errAdviseBusy
	}
	defer s.adviseMu.Unlock()
	defer obs.StartSpan("serve.advise")()
	// Every cycle invalidates the estimate cache on the way out, after
	// any model swap and view-set store have been published: stale
	// entries can then only exist under an already-dead epoch. The sweep
	// releases the invalidated generation's memory promptly.
	defer func() {
		s.estCache.bumpEpoch()
		s.estCache.sweep()
	}()

	if trigger != "bootstrap" { // the ingester starts after bootstrap
		if err := s.ingestBarrier(ctx); err != nil {
			return nil, err
		}
	}
	queries := s.window.Snapshot()
	cur := s.views.Load()

	p, sel, err := s.adv.Advise(queries)
	if errors.Is(err, core.ErrNoCandidates) {
		obsCycles.Inc()
		res := &AdviseResult{NoCandidates: true, Window: len(queries)}
		if cur != nil {
			res.Version, res.Method, res.Utility, res.Views = cur.Version, cur.Method, cur.Utility, len(cur.Views)
		}
		obs.Info("serve.advise", "trigger", trigger, "outcome", "no_candidates", "window", len(queries))
		return res, nil
	}
	if err != nil {
		obs.Error("serve.advise", "trigger", trigger, "err", err)
		return nil, err
	}

	// Hot-swap the freshly trained model (EstimatorWideDeep only) before
	// deciding the rotation: estimates should always come from the
	// newest weights even if the view set rolls back.
	if p.Model != nil {
		s.swapModel(p.Model, p.CostScale())
	}

	next := s.buildViewSet(p, sel, len(queries))
	res := &AdviseResult{Method: next.Method, Utility: next.Utility, Views: len(next.Views), Window: next.Window}
	if cur != nil {
		next.Version = cur.Version + 1
		// Rollback guard: reject a set whose estimated utility regresses
		// past the tolerance band around the active set's utility.
		floor := cur.Utility - s.cfg.UtilityTolerance*math.Abs(cur.Utility)
		if !force && next.Utility < floor {
			obsCycles.Inc()
			obsRollbacks.Inc()
			res.Version, res.RolledBack = cur.Version, true
			obs.Warn("serve.advise", "trigger", trigger, "outcome", "rollback",
				"active_version", cur.Version, "active_utility", cur.Utility,
				"candidate_utility", next.Utility, "window", next.Window)
			return res, nil
		}
	}

	s.durMu.Lock()
	s.views.Store(next)
	if s.dur != nil {
		if raw, err := json.Marshal(next); err != nil {
			obs.Error("serve.durable", "event", "viewset_record_failed", "version", next.Version, "err", err)
		} else if err := s.dur.AppendViewSet(raw); err != nil {
			obs.Error("serve.durable", "event", "viewset_record_failed", "version", next.Version, "err", err)
		}
	}
	s.durMu.Unlock()
	s.refreshViewPlans(next)
	obsCycles.Inc()
	obsSwaps.Inc()
	obsViewsVer.Set(float64(next.Version))
	obsViewsCount.Set(float64(len(next.Views)))
	obsUtility.Set(next.Utility)
	res.Version, res.Swapped = next.Version, true
	obs.Info("serve.advise", "trigger", trigger, "outcome", "swap", "version", next.Version,
		"method", next.Method, "views", len(next.Views), "utility", next.Utility, "window", next.Window)
	if s.dur != nil {
		// Rotations are rare and operator-visible: force them durable now
		// rather than waiting out the fsync interval, then take a snapshot
		// if the record cadence has accumulated.
		if err := s.dur.Sync(); err != nil {
			obs.Error("serve.durable", "event", "rotation_sync_failed", "err", err)
		}
		s.maybeSnapshot()
	}
	return res, nil
}

// ingestBarrier flushes the ingest queue into the window, so an advise
// cycle observes every query whose ingest request completed before the
// cycle began.
func (s *Server) ingestBarrier(ctx context.Context) error {
	barrier := make(chan struct{})
	if err := s.sendIngest(ingestMsg{done: barrier}, true); err != nil {
		return err
	}
	select {
	case <-barrier:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stopBg:
		return errShuttingDown
	}
}

// swapModel atomically publishes new weights and their cost scale as
// one unit; in-flight micro-batches keep the model they loaded. When
// running durably the checkpoint and its WAL record are persisted under
// the same durMu hold as the publish, so a snapshot sees either both or
// neither side of the swap.
func (s *Server) swapModel(m2 *widedeep.Model, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	version := 1
	if cur := s.model.Load(); cur != nil {
		version = cur.version + 1
	}
	next := &model{m: m2, scale: scale, version: version}
	s.durMu.Lock()
	s.model.Store(next)
	s.persistModel(next)
	s.durMu.Unlock()
	// Invalidate cached estimates only after the new model is visible:
	// a concurrent put that captured the old epoch lands dead, and a
	// fresh request after the bump recomputes against the new weights.
	s.estCache.bumpEpoch()
	s.estCache.sweep()
	obsModelVer.Set(float64(version))
	obs.Info("serve.model", "event", "swap", "version", version, "scale", scale)
}

// refreshViewPlans precomputes the parsed plan + plan-local features of
// every advertised view at rotation time, keyed by the fingerprint of
// exactly the SQL clients read from /v1/views. The view half of a warm
// estimate then skips parsing and serialization entirely. The SQL is
// re-parsed (rather than reusing the candidate's plan) so cached
// features are identical to what the cold path derives from client-sent
// text.
func (s *Server) refreshViewPlans(vs *ViewSet) {
	if s.planCache == nil {
		return
	}
	for i := range vs.Views {
		sql := vs.Views[i].SQL
		fp, err := sqlparse.Fingerprint(sql)
		if err != nil {
			continue
		}
		n, err := plan.Parse(sql, s.adv.Cat)
		if err != nil {
			continue
		}
		s.planCache.put(planKey(fp.Exact), &planEntry{node: n, pf: featenc.Precompute(n)}, s.planCache.curEpoch())
	}
}

// buildViewSet assembles the fingerprint-sorted, immutable view set for
// a selection.
func (s *Server) buildViewSet(p *core.Problem, sel *core.Selection, window int) *ViewSet {
	vs := &ViewSet{
		Version:   1,
		Method:    sel.Method,
		Utility:   sel.Utility,
		Window:    window,
		CreatedAt: time.Now().UTC(),
	}
	for j, z := range sel.Z {
		if !z {
			continue
		}
		cand := p.Candidates[j]
		vs.Views = append(vs.Views, ViewInfo{
			ID:          cand.View.ID,
			Fingerprint: string(cand.View.Fingerprint),
			SharedBy:    len(cand.Queries),
			Overhead:    cand.Overhead,
			SQL:         plan.ToSQL(cand.View.Plan),
			DDL:         plan.ViewDDL(cand.View.ID, cand.View.Plan),
		})
	}
	sort.Slice(vs.Views, func(i, j int) bool { return vs.Views[i].Fingerprint < vs.Views[j].Fingerprint })
	return vs
}
