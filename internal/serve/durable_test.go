package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"reflect"
	"testing"
	"time"

	"autoview/internal/durable"
	"autoview/internal/plan"
)

// durableOpts is the store configuration every durability test shares
// (automatic snapshots off, so record counts are predictable).
func durableOpts(dir string) durable.Options {
	return durable.Options{Dir: dir, Fsync: durable.FsyncInterval, SnapshotEvery: -1, WindowCap: 512}
}

// startDurable opens dir and starts a server over it.
func startDurable(t *testing.T, dir string) (*Server, *durable.Store) {
	t.Helper()
	st, err := durable.Open(durableOpts(dir))
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	s := NewServer(serveWK(), serveCoreCfg(), Config{Parallelism: 1})
	if err := s.Start(context.Background(), st); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s, st
}

func closeDurable(t *testing.T, s *Server, st *durable.Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
}

// TestServeReadinessGate: before Start, /v1/healthz answers 503 with
// state "recovering" and every other endpoint is gated; after Start the
// state flips to "ready".
func TestServeReadinessGate(t *testing.T) {
	s := NewServer(serveWK(), serveCoreCfg(), Config{Parallelism: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var health healthResponse
	if resp := getJSON(t, ts.URL+"/v1/healthz", &health); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-Start healthz status %d, want 503", resp.StatusCode)
	}
	if health.State != "recovering" || health.Status != "starting" {
		t.Fatalf("pre-Start healthz = %+v, want state recovering", health)
	}
	var errResp errorResponse
	if resp := getJSON(t, ts.URL+"/v1/views", &errResp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-Start views status %d, want 503", resp.StatusCode)
	}
	if errResp.Error.Code != "recovering" {
		t.Fatalf("pre-Start views error = %+v, want code recovering", errResp)
	}

	if err := s.Start(context.Background(), nil); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if resp := getJSON(t, ts.URL+"/v1/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-Start healthz status %d", resp.StatusCode)
	}
	if health.State != "ready" || health.Status != "ok" {
		t.Fatalf("post-Start healthz = %+v, want state ready", health)
	}
}

// TestServeDrainFlushesQueuedIngest is the no-loss drain check: every
// ingest batch accepted before Close lands in the window AND the WAL,
// even when Close fires with the queue still full.
func TestServeDrainFlushesQueuedIngest(t *testing.T) {
	dir := t.TempDir()
	s, st := startDurable(t, dir)
	w := serveWK()
	seed := uint64(len(w.Queries))

	const batches = 50
	for i := 0; i < batches; i++ {
		sql := w.Queries[i%len(w.Queries)].SQL
		n, err := plan.Parse(sql, s.adv.Cat)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := s.sendIngest(ingestMsg{plans: []*plan.Node{n}, sqls: []string{sql}}, true); err != nil {
			t.Fatalf("sendIngest %d: %v", i, err)
		}
	}
	// Drain immediately: Close must finish the queued appends before
	// returning, not abandon them.
	closeDurable(t, s, st)
	if got := s.window.Total(); got != seed+batches {
		t.Fatalf("window total after drain = %d, want %d", got, seed+batches)
	}

	rec, _, err := durable.Recover(dir, 0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.WindowTotal != seed+batches {
		t.Fatalf("recovered total = %d, want %d (queued ingest lost from the WAL)", rec.WindowTotal, seed+batches)
	}
	for i := 0; i < batches; i++ {
		want := w.Queries[i%len(w.Queries)].SQL
		if got := rec.WindowSQL[int(seed)+i]; got != want {
			t.Fatalf("recovered window[%d] = %q, want %q", int(seed)+i, got, want)
		}
	}
}

// viewsBytes fetches the raw /v1/views response body.
func viewsBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/views")
	if err != nil {
		t.Fatalf("GET views: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read views: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("views status %d: %s", resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// estimateBytes posts a fixed estimate request and returns the raw
// response body (the byte-identity unit of the durability contract).
func estimateBytes(t *testing.T, url string, pairs []estimatePair) []byte {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/estimate", estimateRequest{Pairs: pairs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestServeDurableRestartRoundTrip: a graceful stop and restart over the
// same data directory reproduces the window, view set, and estimates
// byte-identically, without re-running bootstrap.
func TestServeDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := serveWK()

	s1, st1 := startDurable(t, dir)
	ts1 := httptest.NewServer(s1.Handler())

	// Ingest two queries and force a rotation so the durable state holds
	// a non-trivial history: seed ingest, model v1+v2, view set v1+v2.
	resp, body := postJSON(t, ts1.URL+"/v1/queries", ingestRequest{Queries: []string{w.Queries[0].SQL, w.Queries[1].SQL}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	if resp, body = postJSON(t, ts1.URL+"/v1/advise", adviseRequest{Force: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status %d: %s", resp.StatusCode, body)
	}

	pairs := []estimatePair{
		{Query: w.Queries[3].SQL, View: s1.views.Load().Views[0].SQL},
		{Query: w.Queries[4].SQL, View: s1.views.Load().Views[0].SQL},
	}
	wantViews := viewsBytes(t, ts1.URL)
	wantEst := estimateBytes(t, ts1.URL, pairs)
	_, wantSQLs := s1.window.SnapshotTagged()
	wantTotal := s1.window.Total()
	wantModelVer := s1.model.Load().version

	ts1.Close()
	closeDurable(t, s1, st1)

	s2, st2 := startDurable(t, dir)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer closeDurable(t, s2, st2)

	if got := s2.views.Load(); got == nil || got.Version != 2 {
		t.Fatalf("restart view set = %+v, want recovered v2 (not re-bootstrapped)", got)
	}
	if got := s2.model.Load().version; got != wantModelVer {
		t.Fatalf("restart model version = %d, want %d", got, wantModelVer)
	}
	_, gotSQLs := s2.window.SnapshotTagged()
	if !reflect.DeepEqual(gotSQLs, wantSQLs) {
		t.Fatalf("restart window diverged: %d vs %d entries", len(gotSQLs), len(wantSQLs))
	}
	if got := s2.window.Total(); got != wantTotal {
		t.Fatalf("restart window total = %d, want %d", got, wantTotal)
	}
	if gotViews := viewsBytes(t, ts2.URL); !bytes.Equal(gotViews, wantViews) {
		t.Fatalf("restart /v1/views diverged:\n pre: %s\npost: %s", wantViews, gotViews)
	}
	if gotEst := estimateBytes(t, ts2.URL, pairs); !bytes.Equal(gotEst, wantEst) {
		t.Fatalf("restart /v1/estimate diverged:\n pre: %s\npost: %s", wantEst, gotEst)
	}
}

// --- crash-recovery byte-identity harness ------------------------------

const (
	serveCrashHelperEnv = "AUTOVIEW_TEST_SERVE_CRASH_HELPER"
	serveCrashDirEnv    = "AUTOVIEW_TEST_SERVE_CRASH_DIR"
	serveCrashExitCode  = 137
)

// serveCrashIngestA and B are the scripted ingest batches (existing
// workload SQL, so the reference window is constructible without
// replaying anything).
func serveCrashIngestA() []string {
	w := serveWK()
	return []string{w.Queries[0].SQL, w.Queries[1].SQL}
}

func serveCrashIngestB() []string {
	return []string{serveWK().Queries[2].SQL}
}

// runServeCrashScript drives a scripted serving session against dir. The
// WAL record sequence it produces:
//
//	1  seed ingest (bootstrap)     5  model v2   (forced advise)
//	2  model v1    (bootstrap)     6  view set v2 (forced advise)
//	3  view set v1 (bootstrap)     7  ingest B
//	4  ingest A
//
// Under AUTOVIEW_WAL_CRASHPOINT the process dies inside the WAL writer
// at the chosen record; otherwise it drains and exits cleanly.
func runServeCrashScript(dir string) error {
	st, err := durable.Open(durableOpts(dir))
	if err != nil {
		return err
	}
	s := NewServer(serveWK(), serveCoreCfg(), Config{Parallelism: 1})
	if err := s.Start(context.Background(), st); err != nil {
		return err
	}
	ingest := func(sqls []string) error {
		plans := make([]*plan.Node, len(sqls))
		for i, sql := range sqls {
			if plans[i], err = plan.Parse(sql, s.adv.Cat); err != nil {
				return err
			}
		}
		done := make(chan struct{})
		if err := s.sendIngest(ingestMsg{plans: plans, sqls: sqls, done: done}, true); err != nil {
			return err
		}
		<-done
		return nil
	}
	if err := ingest(serveCrashIngestA()); err != nil {
		return fmt.Errorf("ingest A: %w", err)
	}
	if _, err := s.advise(context.Background(), "script", true); err != nil {
		return fmt.Errorf("advise: %w", err)
	}
	if err := ingest(serveCrashIngestB()); err != nil {
		return fmt.Errorf("ingest B: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		return err
	}
	return st.Close()
}

// TestServeCrashScriptHelper is the child-process entry point.
func TestServeCrashScriptHelper(t *testing.T) {
	if os.Getenv(serveCrashHelperEnv) != "1" {
		t.Skip("harness child entry point; run via TestServeCrashRecovery")
	}
	if err := runServeCrashScript(os.Getenv(serveCrashDirEnv)); err != nil {
		t.Fatal(err)
	}
}

func runServeCrashChild(t *testing.T, dir, crashpoint string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestServeCrashScriptHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		serveCrashHelperEnv+"=1", serveCrashDirEnv+"="+dir, durable.CrashpointEnv+"="+crashpoint)
	out, err := cmd.CombinedOutput()
	if crashpoint == "" {
		if err != nil {
			t.Fatalf("clean child failed: %v\n%s", err, out)
		}
		return
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != serveCrashExitCode {
		t.Fatalf("crashpoint %s: child exit = %v, want code %d\n%s", crashpoint, err, serveCrashExitCode, out)
	}
}

// crashReference is everything the sweep compares against, captured once
// from an in-process never-crashed run of the same script.
type crashReference struct {
	seedSQLs []string
	views1   *ViewSet // bootstrap view set (CreatedAt zeroed)
	views2   *ViewSet // post-advise view set (CreatedAt zeroed)
	pairs    []estimatePair
	est1     []byte // /v1/estimate body under model v1
	est2     []byte // /v1/estimate body under model v2
}

func zeroCreatedAt(vs *ViewSet) *ViewSet {
	if vs == nil {
		return nil
	}
	cp := *vs
	cp.CreatedAt = time.Time{}
	return &cp
}

// buildCrashReference runs the script in-process (no crashpoint) and
// captures the intermediate states every crash prefix must reproduce.
// Training, selection, and inference are all deterministic under a fixed
// seed, so these artifacts are byte-comparable across processes.
func buildCrashReference(t *testing.T) *crashReference {
	t.Helper()
	w := serveWK()
	ref := &crashReference{}
	for _, q := range w.Queries {
		ref.seedSQLs = append(ref.seedSQLs, q.SQL)
	}

	s, st := startDurable(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer closeDurable(t, s, st)

	ref.views1 = zeroCreatedAt(s.views.Load())
	ref.pairs = []estimatePair{
		{Query: w.Queries[3].SQL, View: ref.views1.Views[0].SQL},
		{Query: w.Queries[4].SQL, View: ref.views1.Views[0].SQL},
	}
	ref.est1 = estimateBytes(t, ts.URL, ref.pairs)

	plans := make([]*plan.Node, len(serveCrashIngestA()))
	for i, sql := range serveCrashIngestA() {
		n, err := plan.Parse(sql, s.adv.Cat)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		plans[i] = n
	}
	done := make(chan struct{})
	if err := s.sendIngest(ingestMsg{plans: plans, sqls: serveCrashIngestA(), done: done}, true); err != nil {
		t.Fatalf("ingest A: %v", err)
	}
	<-done
	if _, err := s.advise(context.Background(), "reference", true); err != nil {
		t.Fatalf("advise: %v", err)
	}
	ref.views2 = zeroCreatedAt(s.views.Load())
	ref.est2 = estimateBytes(t, ts.URL, ref.pairs)
	return ref
}

// crashExpect describes the reference state after a surviving record
// prefix, per the record map in runServeCrashScript.
type crashExpect struct {
	window   []string
	total    uint64
	modelVer int
	views    *ViewSet
	est      []byte
}

func (ref *crashReference) after(k int) crashExpect {
	e := crashExpect{}
	if k >= 1 {
		e.window = append(e.window, ref.seedSQLs...)
	}
	if k >= 4 {
		e.window = append(e.window, serveCrashIngestA()...)
	}
	if k >= 7 {
		e.window = append(e.window, serveCrashIngestB()...)
	}
	e.total = uint64(len(e.window))
	switch {
	case k >= 5:
		e.modelVer, e.est = 2, ref.est2
	case k >= 2:
		e.modelVer, e.est = 1, ref.est1
	}
	switch {
	case k >= 6:
		e.views = ref.views2
	case k >= 3:
		e.views = ref.views1
	}
	return e
}

// TestServeCrashRecovery kills the scripted serving session at record
// boundaries and mid-record, restarts a server over the surviving data
// directory, and asserts the recovered window, view set, and estimate
// responses are byte-identical to the never-crashed reference state
// after the surviving record prefix.
func TestServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a bootstrapping child process per crashpoint")
	}
	ref := buildCrashReference(t)

	type point struct {
		spec      string
		surviving int
	}
	var points []point
	for lsn := 1; lsn <= 7; lsn++ {
		points = append(points, point{spec: fmt.Sprintf("%d", lsn), surviving: lsn})
	}
	// Mid-record tears at an early, a mid, and a final record (the
	// exhaustive every-offset sweep lives in internal/durable).
	for _, lsn := range []int{1, 5, 7} {
		points = append(points, point{spec: fmt.Sprintf("%d:9", lsn), surviving: lsn - 1})
	}

	for _, p := range points {
		p := p
		t.Run(p.spec, func(t *testing.T) {
			dir := t.TempDir()
			runServeCrashChild(t, dir, p.spec)

			s, st := startDurable(t, dir)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer closeDurable(t, s, st)

			want := ref.after(p.surviving)
			_, gotSQLs := s.window.SnapshotTagged()
			if len(gotSQLs) != len(want.window) {
				t.Fatalf("window %d entries, want %d", len(gotSQLs), len(want.window))
			}
			for i := range want.window {
				if gotSQLs[i] != want.window[i] {
					t.Fatalf("window[%d] = %q, want %q", i, gotSQLs[i], want.window[i])
				}
			}
			if got := s.window.Total(); got != want.total {
				t.Fatalf("window total = %d, want %d", got, want.total)
			}

			gotModel := 0
			if m := s.model.Load(); m != nil {
				gotModel = m.version
			}
			if gotModel != want.modelVer {
				t.Fatalf("model version = %d, want %d", gotModel, want.modelVer)
			}
			if !reflect.DeepEqual(zeroCreatedAt(s.views.Load()), want.views) {
				t.Fatalf("view set diverged from reference prefix %d:\n got: %+v\nwant: %+v",
					p.surviving, s.views.Load(), want.views)
			}
			if want.est != nil {
				if got := estimateBytes(t, ts.URL, ref.pairs); !bytes.Equal(got, want.est) {
					t.Fatalf("estimates diverged from reference prefix %d:\n got: %s\nwant: %s",
						p.surviving, got, want.est)
				}
			}
		})
	}
}
