package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Native fuzz targets for the two JSON decode paths of the API. The
// property under test: any byte sequence must produce a structured JSON
// response with a documented status code — never a panic (the recorder
// path lets one propagate straight into the fuzz target), a hang, or a
// non-JSON body. Seeds come from the malformed-request table in
// handlers_test.go.

// fuzzServer bootstraps one server per fuzz process; the handler is
// shared by every generated input.
func fuzzServer(f *testing.F) http.Handler {
	f.Helper()
	s, err := New(serveWK(), serveCoreCfg(), Config{
		Parallelism:  1,
		MaxPairs:     2,
		MaxQueries:   3,
		MaxBodyBytes: 4096,
	})
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			f.Errorf("Close: %v", err)
		}
	})
	return s.Handler()
}

// checkResponse asserts the shared envelope invariants for one reply.
func checkResponse(t *testing.T, path string, code int, body []byte, allowed map[int]bool) {
	t.Helper()
	if !allowed[code] {
		t.Fatalf("%s: undocumented status %d (body %q)", path, code, body)
	}
	if !json.Valid(body) {
		t.Fatalf("%s: status %d with non-JSON body %q", path, code, body)
	}
	if code >= 400 {
		var envelope errorResponse
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Fatalf("%s: error reply is not the structured envelope: %v (%q)", path, err, body)
		}
		if envelope.Error.Code == "" || envelope.Error.Message == "" {
			t.Fatalf("%s: error envelope missing code or message: %q", path, body)
		}
	}
}

func FuzzEstimateDecode(f *testing.F) {
	for _, seed := range []string{
		`{"pairs":[`,
		`hello`,
		`{"pairs":"nope"}`,
		`{"pairz":[]}`,
		`{"pairs":[]}{"pairs":[]}`,
		`{"pairs":[]}`,
		`{"pairs":null}`,
		`{"pairs":[{"query":"a","view":"b"},{"query":"a","view":"b"},{"query":"a","view":"b"}]}`,
		`{"pairs":[{"query":"select * frm nowhere","view":"select 1"}]}`,
		`{"pairs":[{"query":` + strings.Repeat(`"`, 60) + `}]}`,
		"\x00\xff\xfe",
		`{"pairs":[{"query":1e999,"view":{}}]}`,
	} {
		f.Add(seed)
	}
	h := fuzzServer(f)
	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
		http.StatusServiceUnavailable:    true,
		http.StatusGatewayTimeout:        true,
	}
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		checkResponse(t, "/v1/estimate", rec.Code, rec.Body.Bytes(), allowed)
	})
}

func FuzzAdviseDecode(f *testing.F) {
	for _, seed := range []string{
		`{"force":"yes"}`,
		`{"forse":true}`,
		`{"force"`,
		`{"force":true}{"force":true}`,
		`null`,
		`[]`,
		"\x00\xff\xfe",
		`{"force":1}`,
	} {
		f.Add(seed)
	}
	h := fuzzServer(f)
	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusConflict:              true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusServiceUnavailable:    true,
		http.StatusGatewayTimeout:        true,
		http.StatusInternalServerError:   true,
	}
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/advise", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		checkResponse(t, "/v1/advise", rec.Code, rec.Body.Bytes(), allowed)
	})
}
