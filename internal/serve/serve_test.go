package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"autoview/internal/core"
	"autoview/internal/widedeep"
	"autoview/internal/workload"
)

// serveWK builds a compact sharing-heavy workload for service tests.
func serveWK() *workload.Workload {
	return workload.WK(workload.WKParams{
		Name:             "mini",
		Projects:         4,
		FactsPerProject:  2,
		DimsPerProject:   1,
		Queries:          60,
		FragsPerProject:  3,
		Skew:             1.2,
		ThreeWayFraction: 0.2,
		RowSkew:          1.5,
		Seed:             77,
	})
}

// serveCoreCfg keeps bootstrap fast: a short W-D training run and the
// greedy selector.
func serveCoreCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Estimator = core.EstimatorWideDeep
	cfg.Selector = core.SelectorTopkBen
	cfg.WDTrain.Epochs = 2
	cfg.Seed = 7
	return cfg
}

// newTestServer bootstraps a server plus an httptest front end and
// registers cleanup for both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(serveWK(), serveCoreCfg(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

// TestServeRoundTrip walks the full online loop over HTTP: bootstrap
// views, ingest fresh queries, trigger a re-advise, and observe the
// atomically rotated, versioned view set (with DDL) plus health state.
func TestServeRoundTrip(t *testing.T) {
	w := serveWK()
	_, ts := newTestServer(t, Config{Parallelism: 2})

	var health healthResponse
	if resp := getJSON(t, ts.URL+"/v1/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Window != len(w.Queries) {
		t.Fatalf("healthz = %+v, want ok with window %d", health, len(w.Queries))
	}
	if health.ViewVersion != 1 || health.Views == 0 {
		t.Fatalf("bootstrap did not install view set v1: %+v", health)
	}
	if health.ModelVersion == 0 {
		t.Fatalf("bootstrap with EstimatorWideDeep left no model: %+v", health)
	}

	var vs ViewSet
	getJSON(t, ts.URL+"/v1/views", &vs)
	if vs.Version != 1 || len(vs.Views) == 0 {
		t.Fatalf("views = v%d with %d views, want v1 with >0", vs.Version, len(vs.Views))
	}
	for i, v := range vs.Views {
		if v.DDL == "" || v.SQL == "" || v.Fingerprint == "" {
			t.Fatalf("view %d incomplete: %+v", i, v)
		}
		if i > 0 && vs.Views[i-1].Fingerprint > v.Fingerprint {
			t.Fatalf("views not fingerprint-sorted at %d", i)
		}
	}

	// Ingest a handful of (repeat) queries into the rolling window.
	const ingestN = 5
	queries := make([]string, ingestN)
	for i := range queries {
		queries[i] = w.Queries[i].SQL
	}
	resp, body := postJSON(t, ts.URL+"/v1/queries", ingestRequest{Queries: queries})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(body, &ing); err != nil || ing.Accepted != ingestN {
		t.Fatalf("ingest response %s (err %v)", body, err)
	}

	// Re-advise (force: the repeat traffic shouldn't be able to block the
	// rotation) and watch the version advance atomically.
	resp, body = postJSON(t, ts.URL+"/v1/advise", adviseRequest{Force: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status %d: %s", resp.StatusCode, body)
	}
	var res AdviseResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("advise response %s: %v", body, err)
	}
	if !res.Swapped || res.Version != 2 {
		t.Fatalf("advise = %+v, want swapped v2", res)
	}
	if res.Window != len(w.Queries)+ingestN {
		t.Fatalf("advise window %d, want %d (ingest barrier lost queries)", res.Window, len(w.Queries)+ingestN)
	}

	getJSON(t, ts.URL+"/v1/views", &vs)
	if vs.Version != 2 {
		t.Fatalf("views version %d after advise, want 2", vs.Version)
	}
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health.ViewVersion != 2 || health.IngestedTotal != uint64(len(w.Queries)+ingestN) {
		t.Fatalf("healthz after advise = %+v", health)
	}
}

// TestServeEstimateDeterminism is the acceptance check for the
// micro-batcher: responses under heavy concurrency (requests coalesced
// into batches, predicted through the worker pool) are byte-identical to
// the same requests served one at a time.
func TestServeEstimateDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallelism: 4, MaxBatch: 16, BatchWindow: 3 * time.Millisecond})

	var vs ViewSet
	getJSON(t, ts.URL+"/v1/views", &vs)
	if len(vs.Views) == 0 {
		t.Fatal("no bootstrap views to pair with")
	}
	w := serveWK()
	var pairs []estimatePair
	for qi := 0; qi < 6; qi++ {
		for vi := range vs.Views {
			if len(pairs) == 12 {
				break
			}
			pairs = append(pairs, estimatePair{Query: w.Queries[qi].SQL, View: vs.Views[vi].SQL})
		}
	}

	estimate := func(p estimatePair) (float64, error) {
		raw, err := json.Marshal(estimateRequest{Pairs: []estimatePair{p}})
		if err != nil {
			return 0, err
		}
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var out estimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK || len(out.Estimates) != 1 {
			return 0, fmt.Errorf("status %d, %d estimates", resp.StatusCode, len(out.Estimates))
		}
		return out.Estimates[0], nil
	}

	// Sequential baseline: one pair per request, one request at a time.
	want := make([]float64, len(pairs))
	for i, p := range pairs {
		v, err := estimate(p)
		if err != nil {
			t.Fatalf("sequential estimate %d: %v", i, err)
		}
		want[i] = v
	}

	// Concurrent: every pair in flight at once, several rounds, so the
	// dispatcher coalesces arbitrary mixes into micro-batches.
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(pairs))
	for r := 0; r < rounds; r++ {
		for i, p := range pairs {
			wg.Add(1)
			go func(i int, p estimatePair) {
				defer wg.Done()
				got, err := estimate(p)
				if err != nil {
					errs <- fmt.Errorf("concurrent estimate %d: %w", i, err)
					return
				}
				if got != want[i] { //lint:allow floateq bit-identity to sequential serving is the property under test
					errs <- fmt.Errorf("pair %d: concurrent %v != sequential %v", i, got, want[i])
				}
			}(i, p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeModelReload hot-swaps checkpointed weights through the admin
// endpoint and confirms the model version advances.
func TestServeModelReload(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallelism: 1})

	before := s.model.Load()
	if before == nil {
		t.Fatal("no bootstrap model")
	}
	path := t.TempDir() + "/wd.ckpt"
	if err := saveModel(before.m, path); err != nil {
		t.Fatalf("save checkpoint: %v", err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/admin/model", reloadRequest{Path: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	var out reloadResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("reload response %s: %v", body, err)
	}
	after := s.model.Load()
	if out.ModelVersion != before.version+1 || after.version != out.ModelVersion {
		t.Fatalf("model version %d -> %d (response %d), want +1", before.version, after.version, out.ModelVersion)
	}
	if after.scale != before.scale { //lint:allow floateq the reload must keep the exact scale when none is given
		t.Fatalf("reload without scale changed it: %v -> %v", before.scale, after.scale)
	}
}

func saveModel(m *widedeep.Model, path string) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
