package storage

import (
	"fmt"
	"math/rand"

	"autoview/internal/catalog"
)

// Table is an in-memory, row-oriented relation bound to a catalog schema.
type Table struct {
	Meta *catalog.Table
	Rows []Row
}

// NewTable allocates an empty table for the schema.
func NewTable(meta *catalog.Table) *Table {
	return &Table{Meta: meta}
}

// Append adds a row after validating its arity.
func (t *Table) Append(r Row) error {
	if len(r) != len(t.Meta.Columns) {
		return fmt.Errorf("storage: table %q expects %d columns, got %d",
			t.Meta.Name, len(t.Meta.Columns), len(r))
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// Bytes is the nominal byte size of the table contents.
func (t *Table) Bytes() int64 {
	var total int64
	for _, r := range t.Rows {
		total += int64(r.Width())
	}
	return total
}

// Store maps table names to their contents. It is the executor's data
// source.
type Store struct {
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: make(map[string]*Table)} }

// Put registers a table, replacing any previous contents for that name.
func (s *Store) Put(t *Table) { s.tables[t.Meta.Name] = t }

// Get fetches a table by name.
func (s *Store) Get(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Drop removes a table if present.
func (s *Store) Drop(name string) { delete(s.tables, name) }

// Len returns the number of tables in the store.
func (s *Store) Len() int { return len(s.tables) }

// Generate fills a table with deterministic synthetic rows honoring the
// per-column distinct counts from the catalog. Integer columns draw from
// [0, distinct); float columns draw distinct bucketed values; string
// columns draw from a pool of "v<k>" tokens. Adjacent columns are
// correlated for about half the rows — real analytical data is heavily
// correlated, which is exactly what breaks classical optimizers'
// independence assumptions (and what the learned cost models absorb).
// The same seed always yields the same data.
func Generate(meta *catalog.Table, rng *rand.Rand) *Table {
	t := NewTable(meta)
	n := meta.Stats.Rows
	t.Rows = make([]Row, 0, n)
	for i := 0; i < n; i++ {
		row := make(Row, len(meta.Columns))
		prev := 0
		for j, col := range meta.Columns {
			d := col.Distinct
			if d <= 0 {
				d = 1
			}
			var k int
			if j > 0 && rng.Float64() < 0.5 {
				// Correlated draw: derived from the previous
				// column's value with small noise.
				k = (prev*7 + rng.Intn(3)) % d
			} else {
				k = rng.Intn(d)
			}
			prev = k
			switch col.Type {
			case catalog.TypeInt:
				row[j] = Int(int64(k))
			case catalog.TypeFloat:
				row[j] = Float(float64(k) + 0.5)
			case catalog.TypeString:
				row[j] = Str(fmt.Sprintf("v%d", k))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	// Refresh the statistics the generators promised.
	meta.Stats.Bytes = t.Bytes()
	meta.Stats.NumCols = len(meta.Columns)
	if meta.Stats.Distinct == nil {
		meta.Stats.Distinct = make([]int, len(meta.Columns))
		for j, col := range meta.Columns {
			meta.Stats.Distinct[j] = col.Distinct
		}
	}
	return t
}

// Populate generates data for every table in the catalog and installs it in
// a fresh store.
func Populate(cat *catalog.Catalog, rng *rand.Rand) *Store {
	s := NewStore()
	for _, meta := range cat.Tables() {
		s.Put(Generate(meta, rng))
	}
	return s
}
