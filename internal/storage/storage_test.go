package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"autoview/internal/catalog"
)

func TestValueConstructorsAndString(t *testing.T) {
	if Int(3).String() != "3" {
		t.Error("Int render")
	}
	if Float(2.5).String() != "2.5" {
		t.Error("Float render")
	}
	if Str("x").String() != "'x'" {
		t.Error("Str render")
	}
}

func TestValueEqualCoercion(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("Int(3) should not equal Str(\"3\")")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{Int(-1), Int(0), Float(0.5), Int(2), Str(""), Str("a"), Str("b")}
	for i := range vals {
		for j := range vals {
			got := vals[i].Compare(vals[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v)=%d, want <0", vals[i], vals[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v)=%d, want >0", vals[i], vals[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v)=%d, want 0", vals[i], vals[j], got)
			}
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal for numeric
// values.
func TestValueCompareProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		return (va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyCollapsesNumerics(t *testing.T) {
	if Int(3).Key() != Float(3).Key() {
		t.Error("Int(3) and Float(3) should share a key")
	}
	if Int(3).Key() == Str("3").Key() {
		t.Error("number and string keys must differ")
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].I != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestTableAppendArity(t *testing.T) {
	meta := &catalog.Table{
		Name:    "t",
		Columns: []catalog.Column{{Name: "a", Type: catalog.TypeInt, Distinct: 2}},
	}
	tb := NewTable(meta)
	if err := tb.Append(Row{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(Row{Int(1), Int(2)}); err == nil {
		t.Error("want arity error")
	}
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	meta := func() *catalog.Table {
		return &catalog.Table{
			Name: "g",
			Columns: []catalog.Column{
				{Name: "i", Type: catalog.TypeInt, Distinct: 5},
				{Name: "f", Type: catalog.TypeFloat, Distinct: 3},
				{Name: "s", Type: catalog.TypeString, Distinct: 4},
			},
			Stats: catalog.TableStats{Rows: 200},
		}
	}
	t1 := Generate(meta(), rand.New(rand.NewSource(42)))
	t2 := Generate(meta(), rand.New(rand.NewSource(42)))
	if len(t1.Rows) != 200 || len(t2.Rows) != 200 {
		t.Fatalf("row counts: %d, %d", len(t1.Rows), len(t2.Rows))
	}
	for i := range t1.Rows {
		for j := range t1.Rows[i] {
			if !t1.Rows[i][j].Equal(t2.Rows[i][j]) {
				t.Fatalf("generation not deterministic at row %d col %d", i, j)
			}
		}
	}
	// Distinct bounds respected.
	seen := map[int64]bool{}
	for _, r := range t1.Rows {
		v := r[0].I
		if v < 0 || v >= 5 {
			t.Fatalf("int value %d outside [0,5)", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Error("suspiciously few distinct values")
	}
	if t1.Meta.Stats.Bytes != t1.Bytes() {
		t.Error("Generate should refresh Stats.Bytes")
	}
}

func TestStorePutGetDrop(t *testing.T) {
	meta := &catalog.Table{Name: "t", Columns: []catalog.Column{{Name: "a", Type: catalog.TypeInt, Distinct: 1}}}
	s := NewStore()
	s.Put(NewTable(meta))
	if _, ok := s.Get("t"); !ok {
		t.Fatal("Get after Put failed")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Drop("t")
	if _, ok := s.Get("t"); ok {
		t.Fatal("Get after Drop should fail")
	}
}

func TestPopulateCoversCatalog(t *testing.T) {
	cat := catalog.New()
	for _, name := range []string{"a", "b", "c"} {
		err := cat.Add(&catalog.Table{
			Name:    name,
			Columns: []catalog.Column{{Name: "x", Type: catalog.TypeInt, Distinct: 3}},
			Stats:   catalog.TableStats{Rows: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := Populate(cat, rand.New(rand.NewSource(1)))
	if st.Len() != 3 {
		t.Fatalf("store has %d tables, want 3", st.Len())
	}
	for _, name := range []string{"a", "b", "c"} {
		tb, ok := st.Get(name)
		if !ok || len(tb.Rows) != 10 {
			t.Errorf("table %s missing or wrong size", name)
		}
	}
}

func TestValueWidth(t *testing.T) {
	if Int(1).Width() != 8 || Float(1).Width() != 8 {
		t.Error("numeric widths should be 8")
	}
	if Str("abc").Width() != 19 { // 16 + len
		t.Errorf("string width = %d, want 19", Str("abc").Width())
	}
}

func TestRowWidthSumsValues(t *testing.T) {
	r := Row{Int(1), Str("ab")}
	if r.Width() != 8+18 {
		t.Errorf("row width = %d", r.Width())
	}
}

func TestGenerateCorrelationKeepsBounds(t *testing.T) {
	// Correlated draws must still respect per-column distinct bounds.
	meta := &catalog.Table{
		Name: "c",
		Columns: []catalog.Column{
			{Name: "a", Type: catalog.TypeInt, Distinct: 7},
			{Name: "b", Type: catalog.TypeInt, Distinct: 3},
		},
		Stats: catalog.TableStats{Rows: 500},
	}
	t1 := Generate(meta, rand.New(rand.NewSource(5)))
	for _, r := range t1.Rows {
		if r[0].I < 0 || r[0].I >= 7 || r[1].I < 0 || r[1].I >= 3 {
			t.Fatalf("out-of-bound values: %v", r)
		}
	}
}
