// Package storage provides the in-memory table representation the executor
// runs over: typed values, rows, and row-oriented tables with deterministic
// synthetic data generation.
package storage

import (
	"fmt"
	"strconv"

	"autoview/internal/catalog"
)

// Value is a dynamically typed scalar. The zero Value is the integer 0.
// A concrete struct (rather than interface{}) keeps rows compact and
// comparable without allocation.
type Value struct {
	Kind catalog.ColType
	I    int64
	F    float64
	S    string
}

// Int builds an integer value.
func Int(v int64) Value { return Value{Kind: catalog.TypeInt, I: v} }

// Float builds a float value.
func Float(v float64) Value { return Value{Kind: catalog.TypeFloat, F: v} }

// Str builds a string value.
func Str(v string) Value { return Value{Kind: catalog.TypeString, S: v} }

// String renders the value as SQL-ish text.
func (v Value) String() string {
	switch v.Kind {
	case catalog.TypeInt:
		return strconv.FormatInt(v.I, 10)
	case catalog.TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case catalog.TypeString:
		return "'" + v.S + "'"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// AsFloat converts numeric values to float64 (strings convert to 0; callers
// must type-check first when it matters).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case catalog.TypeInt:
		return float64(v.I)
	case catalog.TypeFloat:
		return v.F
	default:
		return 0
	}
}

// Equal reports deep equality with numeric coercion between Int and Float.
func (v Value) Equal(o Value) bool {
	if v.Kind == catalog.TypeString || o.Kind == catalog.TypeString {
		return v.Kind == o.Kind && v.S == o.S
	}
	return v.AsFloat() == o.AsFloat() //lint:allow floateq SQL value equality is exact by definition
}

// Compare returns -1, 0, or +1. String compares lexicographically with
// strings ordered after all numbers (a total order for sorting; mixed-type
// comparisons do not occur in well-typed plans).
func (v Value) Compare(o Value) int {
	vs, os := v.Kind == catalog.TypeString, o.Kind == catalog.TypeString
	switch {
	case vs && os:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	case vs:
		return 1
	case os:
		return -1
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Key returns a map-key form of the value, used by hash joins and
// aggregation. Numeric values collapse onto their float64 form so Int(3)
// and Float(3) hash identically, matching Equal.
func (v Value) Key() any {
	if v.Kind == catalog.TypeString {
		return "s:" + v.S
	}
	return v.AsFloat()
}

// Width returns the nominal byte width of the value for memory accounting.
func (v Value) Width() int {
	if v.Kind == catalog.TypeString {
		return 16 + len(v.S)
	}
	return 8
}

// Row is one tuple.
type Row []Value

// Width is the nominal byte width of the row.
func (r Row) Width() int {
	w := 0
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
