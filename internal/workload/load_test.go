package workload

import (
	"strings"
	"testing"
)

const sampleSchema = `{
  "tables": [
    {"name": "sales", "project": "p1", "rows": 500, "columns": [
      {"name": "id", "type": "int", "distinct": 500},
      {"name": "region", "type": "string", "distinct": 5},
      {"name": "amount", "type": "float", "distinct": 100}
    ]},
    {"name": "regions", "project": "p1", "rows": 5, "columns": [
      {"name": "name", "type": "string", "distinct": 5},
      {"name": "zone", "type": "int", "distinct": 2}
    ]}
  ]
}`

const sampleQueries = `
-- project: reporting
select region, count(*) as n from sales where amount < 50.5 group by region;

-- a comment that is not a directive
select s.region, sum(s.amount) as total
from ( select region, amount from sales where amount < 50.5 ) s
group by s.region;

-- project: ops
select r.zone, count(*) as n
from sales inner join regions r on sales.region = r.name
group by r.zone;
`

func TestLoadCatalog(t *testing.T) {
	cat, err := LoadCatalog(strings.NewReader(sampleSchema))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 2 {
		t.Fatalf("tables = %d, want 2", cat.Len())
	}
	sales, ok := cat.Table("sales")
	if !ok || sales.Stats.Rows != 500 || sales.Project != "p1" {
		t.Errorf("sales = %+v", sales)
	}
	if col, _ := sales.Column("amount"); col.Distinct != 100 {
		t.Errorf("amount distinct = %d", col.Distinct)
	}
}

func TestLoadCatalogErrors(t *testing.T) {
	if _, err := LoadCatalog(strings.NewReader("{bad")); err == nil {
		t.Error("invalid JSON should fail")
	}
	if _, err := LoadCatalog(strings.NewReader(`{"tables": []}`)); err == nil {
		t.Error("empty schema should fail")
	}
	bad := `{"tables": [{"name": "t", "columns": [{"name": "a", "type": "blob"}]}]}`
	if _, err := LoadCatalog(strings.NewReader(bad)); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestLoadQueries(t *testing.T) {
	cat, err := LoadCatalog(strings.NewReader(sampleSchema))
	if err != nil {
		t.Fatal(err)
	}
	w, err := LoadQueries(strings.NewReader(sampleQueries), cat, "custom")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(w.Queries))
	}
	if w.Queries[0].Project != "reporting" || w.Queries[1].Project != "reporting" {
		t.Errorf("projects = %s, %s", w.Queries[0].Project, w.Queries[1].Project)
	}
	if w.Queries[2].Project != "ops" {
		t.Errorf("third project = %s", w.Queries[2].Project)
	}
	for _, q := range w.Queries {
		if q.Plan == nil {
			t.Errorf("query %s has no plan", q.ID)
		}
	}
	// The loaded workload executes end to end.
	st := w.Populate()
	if st.Len() != 2 {
		t.Fatalf("populated %d tables", st.Len())
	}
}

func TestLoadQueriesErrors(t *testing.T) {
	cat, err := LoadCatalog(strings.NewReader(sampleSchema))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadQueries(strings.NewReader("-- only comments\n"), cat, "x"); err == nil {
		t.Error("empty query file should fail")
	}
	if _, err := LoadQueries(strings.NewReader("select nope from sales;"), cat, "x"); err == nil {
		t.Error("unresolvable query should fail")
	}
	if _, err := LoadQueries(strings.NewReader("select broken from;"), cat, "x"); err == nil {
		t.Error("syntax error should fail")
	}
}
