package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"autoview/internal/catalog"
)

// WKParams parameterizes the synthetic multi-project cloud workloads that
// stand in for the paper's Ant-Financial workloads WK1 and WK2. The
// defaults in WK1()/WK2() scale Table I's shapes down ~60-150× while
// preserving the relationships the experiments depend on: WK1 has more
// skewed benefit/overhead distributions, WK2 has more (and more complex)
// queries and a larger candidate set.
type WKParams struct {
	Name             string
	Projects         int
	FactsPerProject  int
	DimsPerProject   int
	Queries          int
	FragsPerProject  int
	Skew             float64 // Zipf skew of fragment reuse (higher = more skewed)
	ThreeWayFraction float64 // fraction of queries with a second join
	RowSkew          float64 // fact-table row-count spread (higher = more skewed)
	// UniqueFraction of queries use an ad-hoc (unshared) subquery
	// instead of a pooled fragment; these queries carry no redundant
	// computation, as most queries in the paper's Figure 1 workloads.
	UniqueFraction float64
	Seed           int64
}

// WK1 resembles the paper's first Ant-Financial workload: 21 projects,
// skewed sharing and skewed table sizes.
func WK1() *Workload {
	return WK(WKParams{
		Name:             "WK1",
		Projects:         21,
		FactsPerProject:  2,
		DimsPerProject:   1,
		Queries:          600,
		FragsPerProject:  3,
		Skew:             1.4,
		ThreeWayFraction: 0.15,
		RowSkew:          2.5,
		UniqueFraction:   0.45,
		Seed:             42,
	})
}

// WK2 resembles the second workload: more projects, more and more complex
// queries, a larger candidate set, and milder skew.
func WK2() *Workload {
	return WK(WKParams{
		Name:             "WK2",
		Projects:         25,
		FactsPerProject:  2,
		DimsPerProject:   1,
		Queries:          1000,
		FragsPerProject:  4,
		Skew:             0.7,
		ThreeWayFraction: 0.45,
		RowSkew:          1.2,
		UniqueFraction:   0.35,
		Seed:             43,
	})
}

// wkFragment is one shared subquery in a project's pool.
type wkFragment struct {
	project string
	sql     string
	key     string
	dim     string // partner dimension table
}

// WK generates a synthetic multi-project workload.
func WK(p WKParams) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	cat := catalog.New()
	var frags []wkFragment
	fragsByProject := make(map[string][]int)
	// stdPartners holds two fixed partner branches per project; queries
	// occasionally reuse them so whole join subqueries cluster across
	// queries, creating join candidates that overlap their fragment
	// candidates (the paper's # overlapping pairs).
	stdPartners := make(map[string][]string)
	var projects []string

	for pi := 0; pi < p.Projects; pi++ {
		project := fmt.Sprintf("p%02d", pi+1)
		projects = append(projects, project)
		var dims []string
		for di := 0; di < p.DimsPerProject; di++ {
			dim := fmt.Sprintf("%s_dim%d", project, di+1)
			dims = append(dims, dim)
			mustAdd(cat, &catalog.Table{
				Name:    dim,
				Project: project,
				Columns: []catalog.Column{
					{Name: "id", Type: catalog.TypeInt, Distinct: 300},
					{Name: "attr", Type: catalog.TypeString, Distinct: 20},
					{Name: "grp", Type: catalog.TypeInt, Distinct: 8},
				},
				Stats: catalog.TableStats{Rows: 200 + rng.Intn(200)},
			})
		}
		for i := 0; i < 2; i++ {
			stdPartners[project] = append(stdPartners[project],
				fmt.Sprintf("select id, attr, grp from %s where grp = %d", dims[0], rng.Intn(8)))
		}
		for fi := 0; fi < p.FactsPerProject; fi++ {
			fact := fmt.Sprintf("%s_fact%d", project, fi+1)
			// Row counts spread by RowSkew: a few huge facts dominate
			// overheads in skewed workloads.
			base := 1500
			rows := base + int(float64(rng.Intn(base))*p.RowSkew*rng.Float64()*2)
			mustAdd(cat, &catalog.Table{
				Name:    fact,
				Project: project,
				Columns: []catalog.Column{
					{Name: "id", Type: catalog.TypeInt, Distinct: rows},
					{Name: "key", Type: catalog.TypeInt, Distinct: 300},
					{Name: "cat", Type: catalog.TypeInt, Distinct: 6},
					{Name: "status", Type: catalog.TypeInt, Distinct: 4},
					{Name: "val", Type: catalog.TypeFloat, Distinct: 1000},
					{Name: "dt", Type: catalog.TypeString, Distinct: 8},
				},
				Stats: catalog.TableStats{Rows: rows},
			})
			// Fragments over this fact table.
			perFact := p.FragsPerProject / p.FactsPerProject
			if fi < p.FragsPerProject%p.FactsPerProject {
				perFact++
			}
			for k := 0; k < perFact; k++ {
				pred := fmt.Sprintf("cat = %d and dt = 'v%d'", rng.Intn(6), rng.Intn(8))
				if k%2 == 1 {
					pred = fmt.Sprintf("status = %d and dt = 'v%d'", rng.Intn(4), rng.Intn(8))
				}
				frag := wkFragment{
					project: project,
					sql:     fmt.Sprintf("select key, val from %s where %s", fact, pred),
					key:     "key",
					dim:     dims[k%len(dims)],
				}
				fragsByProject[project] = append(fragsByProject[project], len(frags))
				frags = append(frags, frag)
			}
			// One weak fragment per fact: a wide, weakly selective
			// projection whose view is nearly as expensive to scan
			// as recomputing it (marginal utility; see Figure 9).
			weak := wkFragment{
				project: project,
				sql: fmt.Sprintf("select id, key, cat, status, val, dt from %s where dt <> 'v%d'",
					fact, rng.Intn(8)),
				key: "key",
				dim: dims[0],
			}
			fragsByProject[project] = append(fragsByProject[project], len(frags))
			frags = append(frags, weak)
		}
	}

	w := &Workload{Name: p.Name, Cat: cat, DataSeed: p.Seed * 7}
	for qi := 0; qi < p.Queries; qi++ {
		project := projects[rng.Intn(len(projects))]
		pool := fragsByProject[project]
		f := frags[pool[zipfPick(rng, len(pool), p.Skew)]]
		if rng.Float64() < p.UniqueFraction {
			// Ad-hoc unshared subquery: the val bound is unique per
			// query, so it never clusters with anything.
			f = wkFragment{
				project: project,
				sql:     fmt.Sprintf("%s and val < %d.25", f.sql, 200+qi),
				key:     f.key,
				dim:     f.dim,
			}
		}
		// Partner branch: usually a per-query filtered dimension (two
		// predicates over a grp×attr domain keep accidental cross-query
		// collisions rare); occasionally one of the project's standard
		// partners, so the whole join subquery is shared.
		partner := fmt.Sprintf("select id, attr, grp from %s where grp = %d and attr = 'v%d' and id < %d",
			f.dim, rng.Intn(8), rng.Intn(20), 100+rng.Intn(200))
		if rng.Float64() < 0.25 {
			partner = stdPartners[project][rng.Intn(2)]
		}
		agg := "count(*) as cnt, sum(t1.val) as total"
		sql := fmt.Sprintf(
			"select t2.attr, %s from ( %s ) t1 inner join ( %s ) t2 on t1.%s = t2.id",
			agg, f.sql, partner, f.key)
		if rng.Float64() < p.ThreeWayFraction {
			// A second shared fragment joins in (three-way join):
			// queries get deeper plans and more subqueries each.
			g := frags[pool[zipfPick(rng, len(pool), p.Skew)]]
			sql = fmt.Sprintf(
				"select t2.attr, %s from ( %s ) t1 inner join ( %s ) t2 on t1.%s = t2.id inner join ( %s ) t3 on t1.%s = t3.%s",
				agg, f.sql, partner, f.key, g.sql, f.key, g.key)
		}
		sql += " group by t2.attr"
		id := fmt.Sprintf("%s-q%04d", p.Name, qi)
		w.Queries = append(w.Queries, Query{
			ID:      id,
			Project: project,
			SQL:     sql,
			Plan:    mustParse(sql, cat, id),
		})
	}
	return w
}

func mustAdd(cat *catalog.Catalog, t *catalog.Table) {
	if err := cat.Add(t); err != nil {
		panic("workload: " + err.Error())
	}
}

// Project extracts the sub-workload of one project (used for the paper's
// end-to-end samples P1 and P2). The catalog is shared.
func (w *Workload) Project(name string) *Workload {
	sub := &Workload{Name: w.Name + "/" + name, Cat: w.Cat, DataSeed: w.DataSeed}
	for _, q := range w.Queries {
		if q.Project == name {
			sub.Queries = append(sub.Queries, q)
		}
	}
	return sub
}

// LargestProject returns the project name with the most queries.
func (w *Workload) LargestProject() string {
	tops := w.TopProjects(1)
	if len(tops) == 0 {
		return ""
	}
	return tops[0]
}

// TopProjects returns the k projects with the most queries, largest first
// (ties broken by name).
func (w *Workload) TopProjects(k int) []string {
	counts := map[string]int{}
	for _, q := range w.Queries {
		counts[q.Project]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool {
		if counts[names[a]] != counts[names[b]] {
			return counts[names[a]] > counts[names[b]]
		}
		return names[a] < names[b]
	})
	if k > len(names) {
		k = len(names)
	}
	return names[:k]
}

// ProjectUnion extracts the sub-workload of several projects. The catalog
// is shared.
func (w *Workload) ProjectUnion(names []string) *Workload {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	sub := &Workload{Name: w.Name + "/sample", Cat: w.Cat, DataSeed: w.DataSeed}
	for _, q := range w.Queries {
		if set[q.Project] {
			sub.Queries = append(sub.Queries, q)
		}
	}
	return sub
}
