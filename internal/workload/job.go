package workload

import (
	"fmt"

	"autoview/internal/catalog"
)

// imdbTable describes one scaled-down IMDB relation.
type imdbTable struct {
	name string
	rows int
	cols []catalog.Column
}

// imdbSchema lists the 21 IMDB relations of the Join Order Benchmark with
// row counts scaled to laptop size (ratios roughly preserved: cast_info is
// the largest fact table, type dimensions are tiny).
func imdbSchema() []imdbTable {
	ic := func(name string, distinct int) catalog.Column {
		return catalog.Column{Name: name, Type: catalog.TypeInt, Distinct: distinct}
	}
	sc := func(name string, distinct int) catalog.Column {
		return catalog.Column{Name: name, Type: catalog.TypeString, Distinct: distinct}
	}
	return []imdbTable{
		{"title", 4000, []catalog.Column{ic("id", 4000), ic("kind_id", 7), ic("production_year", 100), sc("phonetic_code", 300)}},
		{"name", 3000, []catalog.Column{ic("id", 3000), sc("gender", 3), sc("name_pcode", 200)}},
		{"cast_info", 12000, []catalog.Column{ic("id", 12000), ic("movie_id", 4000), ic("person_id", 3000), ic("role_id", 12), ic("nr_order", 20)}},
		{"movie_companies", 6000, []catalog.Column{ic("id", 6000), ic("movie_id", 4000), ic("company_id", 500), ic("company_type_id", 4), ic("note_ind", 3)}},
		{"movie_info", 8000, []catalog.Column{ic("id", 8000), ic("movie_id", 4000), ic("info_type_id", 40), sc("info_val", 500)}},
		{"movie_info_idx", 4000, []catalog.Column{ic("id", 4000), ic("movie_id", 4000), ic("info_type_id", 40), sc("info_val", 300)}},
		{"movie_keyword", 6000, []catalog.Column{ic("id", 6000), ic("movie_id", 4000), ic("keyword_id", 800)}},
		{"keyword", 800, []catalog.Column{ic("id", 800), sc("phonetic_code", 100)}},
		{"company_name", 500, []catalog.Column{ic("id", 500), sc("country_code", 40)}},
		{"company_type", 4, []catalog.Column{ic("id", 4), sc("kind", 4)}},
		{"info_type", 40, []catalog.Column{ic("id", 40), sc("info", 40)}},
		{"kind_type", 7, []catalog.Column{ic("id", 7), sc("kind", 7)}},
		{"role_type", 12, []catalog.Column{ic("id", 12), sc("role", 12)}},
		{"char_name", 2000, []catalog.Column{ic("id", 2000), sc("name_pcode", 150)}},
		{"aka_name", 1500, []catalog.Column{ic("id", 1500), ic("person_id", 3000)}},
		{"aka_title", 1200, []catalog.Column{ic("id", 1200), ic("movie_id", 4000), ic("kind_id", 7)}},
		{"comp_cast_type", 4, []catalog.Column{ic("id", 4), sc("kind", 4)}},
		{"complete_cast", 1000, []catalog.Column{ic("id", 1000), ic("movie_id", 4000), ic("subject_id", 4), ic("status_id", 4)}},
		{"movie_link", 800, []catalog.Column{ic("id", 800), ic("movie_id", 4000), ic("linked_movie_id", 4000), ic("link_type_id", 18)}},
		{"link_type", 18, []catalog.Column{ic("id", 18), sc("link", 18)}},
		{"person_info", 3000, []catalog.Column{ic("id", 3000), ic("person_id", 3000), ic("info_type_id", 40)}},
	}
}

// jobFragment is one shared subquery of the candidate pool: a filtered
// projection of a fact table exposing a join key and one attribute.
type jobFragment struct {
	table string
	key   string // join key column
	attr  string
	pred  string // SQL predicate
	// partner is "title" for movie_id keys, "name" for person_id keys.
	partner string
}

// jobFragments builds the pool of 28 shared subqueries. Several fragments
// share a table (differing only in predicates), which makes them
// overlapping candidates per Definition 5 — the source of Table I's
// "# overlapping pairs".
func jobFragments() []jobFragment {
	var out []jobFragment
	add := func(table, key, attr, pred, partner string) {
		out = append(out, jobFragment{table: table, key: key, attr: attr, pred: pred, partner: partner})
	}
	for i := 0; i < 4; i++ { // movie_companies ×4
		add("movie_companies", "movie_id", "company_id",
			fmt.Sprintf("company_type_id = %d", i%4), "title")
	}
	for i := 0; i < 4; i++ { // movie_info ×4
		add("movie_info", "movie_id", "info_val",
			fmt.Sprintf("info_type_id = %d", 3*i), "title")
	}
	for i := 0; i < 3; i++ { // movie_keyword ×3
		add("movie_keyword", "movie_id", "keyword_id",
			fmt.Sprintf("keyword_id < %d", 100*(i+1)), "title")
	}
	for i := 0; i < 5; i++ { // cast_info ×5
		add("cast_info", "movie_id", "person_id",
			fmt.Sprintf("role_id = %d and nr_order < %d", i*2, 5+3*i), "title")
	}
	for i := 0; i < 4; i++ { // title ×4 (keyed by id, partnered by facts)
		add("title", "id", "production_year",
			fmt.Sprintf("kind_id = %d", i+1), "movie_companies")
	}
	for i := 0; i < 3; i++ { // movie_info_idx ×3
		add("movie_info_idx", "movie_id", "info_val",
			fmt.Sprintf("info_type_id = %d", 5+7*i), "title")
	}
	for i := 0; i < 2; i++ { // complete_cast ×2
		add("complete_cast", "movie_id", "status_id",
			fmt.Sprintf("subject_id = %d", i+1), "title")
	}
	for i := 0; i < 2; i++ { // movie_link ×2
		add("movie_link", "movie_id", "linked_movie_id",
			fmt.Sprintf("link_type_id = %d", 4*i+1), "title")
	}
	add("person_info", "person_id", "info_type_id", "info_type_id < 12", "name") // ×1
	return out
}

// jobWeakFragments builds marginal candidates: wide projections with
// weakly selective predicates. Their views are almost as expensive to
// scan as recomputing the subquery, so materializing them only pays off
// with heavy sharing — these are the candidates that bend Figure 9's
// curves downward past the optimum k.
func jobWeakFragments() []jobFragment {
	var out []jobFragment
	add := func(table, key, attrs, pred string) {
		out = append(out, jobFragment{table: table, key: key, attr: attrs, pred: pred, partner: "title"})
	}
	for i := 0; i < 7; i++ {
		add("cast_info", "movie_id", "id, person_id, role_id, nr_order",
			fmt.Sprintf("nr_order <> %d", i))
	}
	for i := 0; i < 7; i++ {
		add("movie_info", "movie_id", "id, info_type_id, info_val",
			fmt.Sprintf("info_type_id <> %d", i))
	}
	for i := 0; i < 6; i++ {
		add("movie_companies", "movie_id", "id, company_id, company_type_id, note_ind",
			fmt.Sprintf("company_id >= %d", 20+5*i))
	}
	return out
}

// fragmentSQL renders a fragment as a derived-table body.
func (f jobFragment) fragmentSQL() string {
	return fmt.Sprintf("select %s, %s from %s where %s", f.key, f.attr, f.table, f.pred)
}

// partnerSQL renders the per-template partner branch; mutate shifts its
// predicate constants (the paper's "manually modifying the predicates").
// Constants are derived injectively from u = 2·tmpl + mutate so no two
// queries accidentally share a partner subquery: sharing comes only from
// the fragment pool, as in the paper's construction.
func partnerSQL(f jobFragment, tmpl int, mutate bool) (sql, joinKey string) {
	u := 2 * tmpl
	if mutate {
		u++
	}
	switch f.partner {
	case "title":
		// (year, kind) enumerates 100×7 = 700 combos; u < 226 stays
		// injective.
		year := u % 100
		kind := (u / 100) % 7
		return fmt.Sprintf("select id, phonetic_code from title where production_year = %d and kind_id = %d", year, kind), "id"
	case "name":
		g := []string{"'v0'", "'v1'", "'v2'"}[u%3]
		pcode := fmt.Sprintf("'v%d'", u%200)
		return fmt.Sprintf("select id, name_pcode from name where gender = %s and name_pcode = %s", g, pcode), "id"
	default: // a fact partner for title-keyed fragments
		ct := u % 4
		bound := 100 + u // unique range predicate per query
		return fmt.Sprintf("select movie_id, company_id from movie_companies where company_type_id = %d and company_id < %d", ct, bound), "movie_id"
	}
}

// JOB generates the JOB-like workload: the IMDB schema, 113 query
// templates cycling through the 28-fragment pool, each doubled by a
// predicate-mutated twin (226 queries total, as in Table I's first row).
func JOB() *Workload {
	cat := catalog.New()
	for _, t := range imdbSchema() {
		err := cat.Add(&catalog.Table{
			Name:    t.name,
			Project: "job",
			Columns: t.cols,
			Stats:   catalog.TableStats{Rows: t.rows},
		})
		if err != nil {
			panic("workload: imdb schema: " + err.Error())
		}
	}
	frags := jobFragments()
	weak := jobWeakFragments()
	w := &Workload{Name: "JOB", Cat: cat, DataSeed: 1234}
	// Template allocation (113 templates, each doubled by a mutated
	// twin → 226 queries):
	//
	//   0..71   strong pool (28 fragments, ≈2.6 templates each);
	//   72..92  shared-join groups: 7 groups × 3 templates sharing both
	//           the fragment AND the partner branch but differing in
	//           aggregates — their whole join subquery clusters, and the
	//           join candidate overlaps the fragment candidate exactly
	//           like s3 ⊃ s1 in the paper's Figure 2;
	//   93..112 weak pool (20 marginal fragments, one template each).
	const (
		templates      = 113
		strongEnd      = 72
		joinGroupEnd   = 93
		joinGroupSize  = 3
		joinGroupCount = (joinGroupEnd - strongEnd) / joinGroupSize
	)
	aggVariants := []string{
		"count(*) as cnt",
		"count(*) as cnt, max(t2.%s) as mx",
		"count(*) as cnt, min(t2.%s) as mn",
	}
	for tmpl := 0; tmpl < templates; tmpl++ {
		var f jobFragment
		partnerSeed := tmpl
		aggVariant := 0
		switch {
		case tmpl < strongEnd:
			f = frags[tmpl%len(frags)]
			if tmpl%3 == 1 {
				aggVariant = 1
			}
		case tmpl < joinGroupEnd:
			group := (tmpl - strongEnd) / joinGroupSize
			// Spread groups across the strong pool so join
			// candidates overlap fragments that other queries also
			// share.
			f = frags[(group*4)%len(frags)]
			partnerSeed = 500 + group // fixed per group → shared joins
			aggVariant = (tmpl - strongEnd) % joinGroupSize
		default:
			f = weak[(tmpl-joinGroupEnd)%len(weak)]
		}
		for _, mutate := range []bool{false, true} {
			partner, pk := partnerSQL(f, partnerSeed, mutate)
			agg := aggVariants[aggVariant]
			if aggVariant > 0 {
				agg = fmt.Sprintf(agg, partnerAttr(f.partner))
			}
			sql := fmt.Sprintf(
				"select t1.%s, %s from ( %s ) t1 inner join ( %s ) t2 on t1.%s = t2.%s group by t1.%s",
				f.key, agg, f.fragmentSQL(), partner, f.key, pk, f.key)
			id := fmt.Sprintf("job-%03d", tmpl)
			if mutate {
				id += "m"
			}
			w.Queries = append(w.Queries, Query{
				ID:      id,
				Project: "job",
				SQL:     sql,
				Plan:    mustParse(sql, cat, id),
			})
		}
	}
	return w
}

func partnerAttr(partner string) string {
	switch partner {
	case "title":
		return "phonetic_code"
	case "name":
		return "name_pcode"
	default:
		return "company_id"
	}
}
