// Package workload generates the benchmark workloads of Section VI at
// laptop scale: a JOB-like workload over the IMDB schema (21 relations,
// 113 query templates doubled to 226 by predicate mutation) and two
// WK-style multi-project cloud workloads whose sharing, overlap and skew
// characteristics follow Table I's shape. All generation is deterministic
// given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autoview/internal/catalog"
	"autoview/internal/equiv"
	"autoview/internal/plan"
	"autoview/internal/storage"
)

// Query is one workload member.
type Query struct {
	ID      string
	Project string
	SQL     string
	Plan    *plan.Node
}

// Workload bundles a catalog with its query set.
type Workload struct {
	Name     string
	Cat      *catalog.Catalog
	Queries  []Query
	DataSeed int64
}

// Plans returns the query plans in workload order.
func (w *Workload) Plans() []*plan.Node {
	out := make([]*plan.Node, len(w.Queries))
	for i, q := range w.Queries {
		out[i] = q.Plan
	}
	return out
}

// Populate generates table data for the workload's catalog.
func (w *Workload) Populate() *storage.Store {
	return storage.Populate(w.Cat, rand.New(rand.NewSource(w.DataSeed)))
}

// Stats summarizes a workload in Table I's terms.
type Stats struct {
	Projects         int
	Tables           int
	Queries          int
	Subqueries       int
	EquivalentPairs  int
	Candidates       int // |Z|
	AssociatedQuery  int // |Q|
	OverlappingPairs int
}

// Describe computes Table I's statistics from a pre-process result.
func (w *Workload) Describe(pre *equiv.Result) Stats {
	subq := 0
	for _, subs := range pre.Subqueries {
		subq += len(subs)
	}
	return Stats{
		Projects:         len(w.Cat.Projects()),
		Tables:           w.Cat.Len(),
		Queries:          len(w.Queries),
		Subqueries:       subq,
		EquivalentPairs:  pre.EquivalentPairs,
		Candidates:       len(pre.Candidates),
		AssociatedQuery:  len(pre.AssociatedQueries),
		OverlappingPairs: pre.OverlappingPairs(),
	}
}

// ProjectRedundancy is one bar of Figure 1(a): per project, the number of
// queries and the number whose computation is shared with another query.
type ProjectRedundancy struct {
	Project   string
	Total     int
	Redundant int
}

// Redundancy computes Figure 1's analysis: a query is "redundant" when at
// least one of its subqueries belongs to a cluster shared by ≥2 queries.
func (w *Workload) Redundancy(pre *equiv.Result) []ProjectRedundancy {
	redundant := make(map[int]bool)
	for _, c := range pre.Clusters {
		if c.SharedBy() < 2 {
			continue
		}
		for _, qi := range c.Queries {
			redundant[qi] = true
		}
	}
	byProject := map[string]*ProjectRedundancy{}
	var order []string
	for i, q := range w.Queries {
		pr, ok := byProject[q.Project]
		if !ok {
			pr = &ProjectRedundancy{Project: q.Project}
			byProject[q.Project] = pr
			order = append(order, q.Project)
		}
		pr.Total++
		if redundant[i] {
			pr.Redundant++
		}
	}
	sort.Strings(order)
	out := make([]ProjectRedundancy, 0, len(order))
	for _, p := range order {
		out = append(out, *byProject[p])
	}
	return out
}

// CumulativeRedundancy computes Figure 1(b): with projects sorted by
// redundancy ratio descending, the cumulative percentage of redundant
// queries among total queries as more projects are included.
func CumulativeRedundancy(rows []ProjectRedundancy) []float64 {
	sorted := append([]ProjectRedundancy(nil), rows...)
	sort.Slice(sorted, func(a, b int) bool {
		ra := ratio(sorted[a])
		rb := ratio(sorted[b])
		if ra != rb { //lint:allow floateq sort comparator needs an exact total order
			return ra > rb
		}
		return sorted[a].Project < sorted[b].Project
	})
	var grandTotal int
	for _, r := range sorted {
		grandTotal += r.Total
	}
	out := make([]float64, len(sorted))
	cum := 0
	for i, r := range sorted {
		cum += r.Redundant
		if grandTotal > 0 {
			out[i] = 100 * float64(cum) / float64(grandTotal)
		}
	}
	return out
}

func ratio(r ProjectRedundancy) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Redundant) / float64(r.Total)
}

// mustParse parses a generated query or panics: generation bugs are
// programming errors, not runtime conditions.
func mustParse(sql string, cat *catalog.Catalog, id string) *plan.Node {
	n, err := plan.Parse(sql, cat)
	if err != nil {
		panic(fmt.Sprintf("workload: query %s does not parse: %v\nSQL: %s", id, err, sql))
	}
	return n
}

// zipfPick draws an index in [0, n) with a Zipf-like skew: higher s means
// heavier head. Deterministic given rng.
func zipfPick(rng *rand.Rand, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF over 1/(i+1)^s weights.
	var total float64
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		w := 1 / math.Pow(float64(i+1), s)
		weights[i] = w
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return n - 1
}
