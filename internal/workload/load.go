package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"autoview/internal/catalog"
	"autoview/internal/plan"
)

// SchemaFile is the JSON format for user-provided catalogs:
//
//	{"tables": [{"name": "t", "project": "p1", "rows": 1000,
//	             "columns": [{"name": "a", "type": "int", "distinct": 10}]}]}
type SchemaFile struct {
	Tables []SchemaTable `json:"tables"`
}

// SchemaTable describes one table of a schema file.
type SchemaTable struct {
	Name    string         `json:"name"`
	Project string         `json:"project"`
	Rows    int            `json:"rows"`
	Columns []SchemaColumn `json:"columns"`
}

// SchemaColumn describes one column of a schema file.
type SchemaColumn struct {
	Name     string `json:"name"`
	Type     string `json:"type"` // int, float, string
	Distinct int    `json:"distinct"`
}

// LoadCatalog reads a schema file into a catalog.
func LoadCatalog(r io.Reader) (*catalog.Catalog, error) {
	var sf SchemaFile
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("workload: schema: %w", err)
	}
	if len(sf.Tables) == 0 {
		return nil, fmt.Errorf("workload: schema defines no tables")
	}
	cat := catalog.New()
	for _, st := range sf.Tables {
		cols := make([]catalog.Column, len(st.Columns))
		for i, c := range st.Columns {
			typ, err := parseColType(c.Type)
			if err != nil {
				return nil, fmt.Errorf("workload: table %q column %q: %w", st.Name, c.Name, err)
			}
			d := c.Distinct
			if d <= 0 {
				d = 10
			}
			cols[i] = catalog.Column{Name: c.Name, Type: typ, Distinct: d}
		}
		rows := st.Rows
		if rows <= 0 {
			rows = 1000
		}
		err := cat.Add(&catalog.Table{
			Name:    st.Name,
			Project: st.Project,
			Columns: cols,
			Stats:   catalog.TableStats{Rows: rows},
		})
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	return cat, nil
}

func parseColType(s string) (catalog.ColType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer", "bigint":
		return catalog.TypeInt, nil
	case "float", "double", "real":
		return catalog.TypeFloat, nil
	case "string", "text", "varchar":
		return catalog.TypeString, nil
	default:
		return 0, fmt.Errorf("unknown column type %q", s)
	}
}

// LoadQueries reads a SQL file into a workload over the catalog. Queries
// are ';'-separated; a line of the form "-- project: <name>" assigns the
// following queries to that project; other "--" comments are ignored.
func LoadQueries(r io.Reader, cat *catalog.Catalog, name string) (*Workload, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("workload: queries: %w", err)
	}
	w := &Workload{Name: name, Cat: cat, DataSeed: 1}
	project := "default"
	var current strings.Builder
	flush := func() error {
		sql := strings.TrimSpace(current.String())
		current.Reset()
		if sql == "" {
			return nil
		}
		id := fmt.Sprintf("%s-q%03d", name, len(w.Queries))
		p, err := plan.Parse(sql, cat)
		if err != nil {
			return fmt.Errorf("workload: query %s: %w", id, err)
		}
		w.Queries = append(w.Queries, Query{ID: id, Project: project, SQL: sql, Plan: p})
		return nil
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "--") {
			rest := strings.TrimSpace(strings.TrimPrefix(trimmed, "--"))
			if p, ok := strings.CutPrefix(rest, "project:"); ok {
				project = strings.TrimSpace(p)
			}
			continue
		}
		for {
			semi := strings.IndexByte(line, ';')
			if semi < 0 {
				current.WriteString(line)
				current.WriteByte('\n')
				break
			}
			current.WriteString(line[:semi])
			if err := flush(); err != nil {
				return nil, err
			}
			line = line[semi+1:]
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("workload: query file contains no statements")
	}
	return w, nil
}
