package workload

import (
	"math/rand"
	"testing"

	"autoview/internal/engine"
	"autoview/internal/equiv"
	"autoview/internal/plan"
)

func TestJOBShapeMatchesTableI(t *testing.T) {
	w := JOB()
	if w.Cat.Len() != 21 {
		t.Errorf("JOB tables = %d, want 21 (Table I)", w.Cat.Len())
	}
	if len(w.Queries) != 226 {
		t.Errorf("JOB queries = %d, want 226 (Table I)", len(w.Queries))
	}
	pre := equiv.Preprocess(w.Plans(), nil)
	stats := w.Describe(pre)
	if stats.Projects != 1 {
		t.Errorf("JOB projects = %d, want 1", stats.Projects)
	}
	// Table I: 398 subqueries, 28 candidates, 220 associated queries,
	// 74 overlapping pairs. We require the same order of magnitude and
	// the same qualitative relations.
	if stats.Subqueries < 300 || stats.Subqueries > 800 {
		t.Errorf("JOB subqueries = %d, want a few hundred", stats.Subqueries)
	}
	if stats.Candidates < 25 || stats.Candidates > 90 {
		t.Errorf("JOB |Z| = %d, want a few dozen (paper: 28; ours adds weak and join-group candidates)", stats.Candidates)
	}
	if stats.AssociatedQuery < 180 || stats.AssociatedQuery > 226 {
		t.Errorf("JOB |Q| = %d, want ≈220", stats.AssociatedQuery)
	}
	if stats.OverlappingPairs < 10 {
		t.Errorf("JOB overlapping pairs = %d, want tens", stats.OverlappingPairs)
	}
	if stats.EquivalentPairs < 200 {
		t.Errorf("JOB equivalent pairs = %d, want hundreds", stats.EquivalentPairs)
	}
}

func TestJOBTwinsShareFragment(t *testing.T) {
	w := JOB()
	// Query 2k and 2k+1 are a template and its mutated twin; they must
	// share at least one subquery cluster (the pooled fragment) while
	// not being identical.
	for k := 0; k < 5; k++ {
		a, b := w.Queries[2*k], w.Queries[2*k+1]
		if a.SQL == b.SQL {
			t.Errorf("template %d: twin is identical", k)
		}
		shared := false
		for _, sa := range plan.ExtractSubqueries(a.Plan) {
			for _, sb := range plan.ExtractSubqueries(b.Plan) {
				if plan.NormalizedFingerprint(sa.Root) == plan.NormalizedFingerprint(sb.Root) {
					shared = true
				}
			}
		}
		if !shared {
			t.Errorf("template %d: twin shares no subquery", k)
		}
	}
}

func TestJOBDeterministic(t *testing.T) {
	a, b := JOB(), JOB()
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("query %d differs between runs", i)
		}
	}
}

func TestJOBExecutes(t *testing.T) {
	w := JOB()
	st := w.Populate()
	exec := engine.New(st)
	for _, q := range w.Queries[:20] {
		if _, err := exec.Cost(q.Plan); err != nil {
			t.Fatalf("query %s failed: %v", q.ID, err)
		}
	}
}

func TestWKShapes(t *testing.T) {
	for _, tc := range []struct {
		w                 *Workload
		projects, queries int
		minCand, maxCand  int
	}{
		{WK1(), 21, 600, 60, 170},
		{WK2(), 25, 1000, 120, 280},
	} {
		pre := equiv.Preprocess(tc.w.Plans(), nil)
		stats := tc.w.Describe(pre)
		if stats.Projects != tc.projects {
			t.Errorf("%s projects = %d, want %d", tc.w.Name, stats.Projects, tc.projects)
		}
		if stats.Queries != tc.queries {
			t.Errorf("%s queries = %d, want %d", tc.w.Name, stats.Queries, tc.queries)
		}
		if stats.Candidates < tc.minCand || stats.Candidates > tc.maxCand {
			t.Errorf("%s |Z| = %d, want in [%d,%d]", tc.w.Name, stats.Candidates, tc.minCand, tc.maxCand)
		}
		if stats.AssociatedQuery < tc.queries/2 {
			t.Errorf("%s |Q| = %d, too few sharing queries", tc.w.Name, stats.AssociatedQuery)
		}
	}
}

func TestWK2BiggerThanWK1(t *testing.T) {
	// Table I's ordering: WK2 has more tables, queries, subqueries and
	// candidates than WK1.
	w1, w2 := WK1(), WK2()
	p1 := equiv.Preprocess(w1.Plans(), nil)
	p2 := equiv.Preprocess(w2.Plans(), nil)
	s1, s2 := w1.Describe(p1), w2.Describe(p2)
	if s2.Tables <= s1.Tables {
		t.Errorf("tables: WK2 %d <= WK1 %d", s2.Tables, s1.Tables)
	}
	if s2.Queries <= s1.Queries {
		t.Errorf("queries: WK2 %d <= WK1 %d", s2.Queries, s1.Queries)
	}
	if s2.Subqueries <= s1.Subqueries {
		t.Errorf("subqueries: WK2 %d <= WK1 %d", s2.Subqueries, s1.Subqueries)
	}
	if s2.Candidates <= s1.Candidates {
		t.Errorf("candidates: WK2 %d <= WK1 %d", s2.Candidates, s1.Candidates)
	}
}

func TestWKDeterministicAndExecutes(t *testing.T) {
	a, b := WK1(), WK1()
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("WK1 query %d differs between runs", i)
		}
	}
	st := a.Populate()
	exec := engine.New(st)
	for _, q := range a.Queries[:15] {
		if _, err := exec.Cost(q.Plan); err != nil {
			t.Fatalf("query %s failed: %v\nSQL: %s", q.ID, err, q.SQL)
		}
	}
}

func TestRedundancyAnalysis(t *testing.T) {
	w := WK1()
	pre := equiv.Preprocess(w.Plans(), nil)
	rows := w.Redundancy(pre)
	if len(rows) != 21 {
		t.Fatalf("redundancy rows = %d, want 21 projects", len(rows))
	}
	var total, redundant int
	for _, r := range rows {
		if r.Redundant > r.Total {
			t.Errorf("project %s: redundant %d > total %d", r.Project, r.Redundant, r.Total)
		}
		total += r.Total
		redundant += r.Redundant
	}
	if total != 600 {
		t.Errorf("total = %d, want 600", total)
	}
	if redundant == 0 {
		t.Error("no redundant queries found; sharing generator broken")
	}
	curve := CumulativeRedundancy(rows)
	if len(curve) != 21 {
		t.Fatalf("cumulative curve length %d", len(curve))
	}
	// Monotone non-decreasing and ending at the global ratio.
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Errorf("cumulative curve decreases at %d", i)
		}
	}
	wantEnd := 100 * float64(redundant) / float64(total)
	if diff := curve[len(curve)-1] - wantEnd; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("curve end = %v, want %v", curve[len(curve)-1], wantEnd)
	}
}

func TestProjectExtraction(t *testing.T) {
	w := WK1()
	name := w.LargestProject()
	sub := w.Project(name)
	if len(sub.Queries) == 0 {
		t.Fatal("largest project has no queries")
	}
	for _, q := range sub.Queries {
		if q.Project != name {
			t.Errorf("query %s from project %s leaked into %s", q.ID, q.Project, name)
		}
	}
	if sub.Cat != w.Cat {
		t.Error("project sub-workload should share the catalog")
	}
}

func TestZipfPickSkew(t *testing.T) {
	rngHi := newRng(1)
	rngLo := newRng(1)
	countsHi := make([]int, 10)
	countsLo := make([]int, 10)
	for i := 0; i < 5000; i++ {
		countsHi[zipfPick(rngHi, 10, 2.0)]++
		countsLo[zipfPick(rngLo, 10, 0.3)]++
	}
	if countsHi[0] <= countsLo[0] {
		t.Errorf("high skew head %d should exceed low skew head %d", countsHi[0], countsLo[0])
	}
	if countsHi[0] <= countsHi[9] {
		t.Error("zipf head should dominate tail")
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
