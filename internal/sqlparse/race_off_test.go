//go:build !race

package sqlparse

const raceEnabled = false
