//go:build race

package sqlparse

// raceEnabled gates the allocation-count assertions: under the race
// detector sync.Pool deliberately drops a random fraction of Put items,
// so pooled-scratch reuse (and therefore allocs/op) is nondeterministic.
const raceEnabled = true
