package sqlparse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// FP is the canonical fingerprint of one SQL text, computed at the
// lexical level (no parse, no catalog binding) so the serving hot path
// can identify repeated queries before doing any per-request work.
//
// Two digests are derived from one token scan:
//
//   - Template is literal-normalized: every number and string literal is
//     replaced by a placeholder before hashing, so queries that differ
//     only in literal values — the dominant shape of production
//     template traffic — share a Template. Whitespace and -- comments
//     never contribute.
//   - Exact extends Template with the literal values (kind plus raw
//     bytes, length-prefixed, in source order). Equal Exact fingerprints
//     imply equal token streams, hence equal parse results — Exact is
//     the key under which the serving layer may reuse parsed plans,
//     feature tensors, and cost estimates without changing any response
//     byte.
//
// Both digests are truncated SHA-256 over an unambiguous rendering of
// the token stream, so they are deterministic across processes and
// machines (no per-process hash seeding). The zero FP is not the
// fingerprint of any lexable input's canonical stream and can serve as
// an "unset" sentinel.
type FP struct {
	Template [16]byte
	Exact    [16]byte
}

// TemplateHex renders the template digest for logs and spans.
func (f FP) TemplateHex() string { return hex.EncodeToString(f.Template[:]) }

// ExactHex renders the exact digest for logs and spans.
func (f FP) ExactHex() string { return hex.EncodeToString(f.Exact[:]) }

// Canonical-stream framing bytes. Identifier and punctuation tokens are
// copied verbatim into the template stream; neither token class can
// contain tokSep (identifier bytes satisfy isIdentPart, punctuation is a
// fixed ASCII set), so terminating every token with tokSep makes the
// stream prefix-free: "a b" and "ab" render differently.
const (
	tokSep  = 0x00 // terminates every template-stream token
	litMark = 0x01 // replaces a literal token in the template stream
)

// fpScratch is the pooled working state of one fingerprint computation.
type fpScratch struct {
	tmpl []byte // canonical template token stream
	lit  []byte // literal section: kind byte, uvarint length, raw bytes
	ex   []byte // exact digest input: template digest ++ literal section
	src  []byte // copy buffer for the string entry point
}

var fpPool = sync.Pool{New: func() any { return new(fpScratch) }}

// fpScratchMax bounds the capacity retained by pooled scratch buffers so
// one oversized statement cannot pin its high-water mark forever.
const fpScratchMax = 64 << 10

func putFPScratch(s *fpScratch) {
	if cap(s.tmpl) > fpScratchMax || cap(s.lit) > fpScratchMax || cap(s.src) > fpScratchMax {
		return
	}
	fpPool.Put(s)
}

// Fingerprint computes the fingerprint of a SQL string. It fails with a
// *SyntaxError exactly when lexing fails (the scanner mirrors the
// lexer's rules byte for byte), so any input the parser accepts is
// fingerprintable. Steady state performs zero heap allocations.
func Fingerprint(sql string) (FP, error) {
	s := fpPool.Get().(*fpScratch)
	s.src = append(s.src[:0], sql...)
	fp, err := fingerprint(s, s.src)
	putFPScratch(s)
	return fp, err
}

// FingerprintBytes is Fingerprint over a byte slice, the zero-copy form
// used by the serving hot path. src is only read during the call.
func FingerprintBytes(src []byte) (FP, error) {
	s := fpPool.Get().(*fpScratch)
	fp, err := fingerprint(s, src)
	putFPScratch(s)
	return fp, err
}

func fingerprint(s *fpScratch, src []byte) (FP, error) {
	s.tmpl, s.lit = s.tmpl[:0], s.lit[:0]
	if err := canonicalize(s, src); err != nil {
		return FP{}, err
	}
	var fp FP
	sum := sha256.Sum256(s.tmpl)
	copy(fp.Template[:], sum[:16])
	// The exact stream prefixes the fixed-width template digest, so the
	// template/literal boundary is unambiguous even though identifier
	// bytes are unconstrained.
	s.ex = append(s.ex[:0], fp.Template[:]...)
	s.ex = append(s.ex, s.lit...)
	sum = sha256.Sum256(s.ex)
	copy(fp.Exact[:], sum[:16])
	return fp, nil
}

// canonicalize scans src with the lexer's exact token rules, appending
// the template stream to s.tmpl and the literal section to s.lit.
func canonicalize(s *fpScratch, src []byte) error {
	pos := 0
	n := len(src)
	for {
		// Whitespace and -- line comments, as lexer.skipSpace.
		for pos < n {
			c := src[pos]
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				pos++
				continue
			}
			if c == '-' && pos+1 < n && src[pos+1] == '-' {
				for pos < n && src[pos] != '\n' {
					pos++
				}
				continue
			}
			break
		}
		if pos >= n {
			return nil
		}
		start := pos
		c := src[pos]
		switch {
		case isIdentStart(rune(c)):
			for pos < n && isIdentPart(rune(src[pos])) {
				pos++
			}
			s.tmpl = append(s.tmpl, src[start:pos]...)
			s.tmpl = append(s.tmpl, tokSep)
			continue
		case c >= '0' && c <= '9':
			sawDot := false
			for pos < n {
				ch := src[pos]
				if ch >= '0' && ch <= '9' {
					pos++
					continue
				}
				if ch == '.' && !sawDot {
					sawDot = true
					pos++
					continue
				}
				break
			}
			if src[pos-1] == '.' {
				return &SyntaxError{Pos: start, Msg: "malformed number " + string(src[start:pos])}
			}
			appendLiteral(s, TokenNumber, src[start:pos])
			continue
		case c == '\'':
			pos++ // opening quote
			for {
				if pos >= n {
					return &SyntaxError{Pos: start, Msg: "unterminated string literal"}
				}
				if src[pos] == '\'' {
					if pos+1 < n && src[pos+1] == '\'' {
						pos += 2 // '' is an escaped quote
						continue
					}
					pos++ // closing quote
					break
				}
				pos++
			}
			// Raw source bytes between the quotes ('' left doubled):
			// differently escaped spellings of one value hash apart,
			// which costs at most a duplicate cache entry, never a
			// wrong hit.
			appendLiteral(s, TokenString, src[start+1:pos-1])
			continue
		}
		// Punctuation, two-character operators first (as the lexer).
		if pos+1 < n {
			d := src[pos+1]
			if (c == '<' && (d == '>' || d == '=')) || (c == '>' && d == '=') || (c == '!' && d == '=') {
				pos += 2
				s.tmpl = append(s.tmpl, c, d, tokSep)
				continue
			}
		}
		switch c {
		case '(', ')', ',', '.', ';', '=', '<', '>', '*', '+', '-', '/':
			pos++
			s.tmpl = append(s.tmpl, c, tokSep)
			continue
		}
		return &SyntaxError{Pos: start, Msg: "unexpected character " + string(rune(c))}
	}
}

// appendLiteral records one literal: a placeholder in the template
// stream, kind + length-prefixed bytes in the literal section.
func appendLiteral(s *fpScratch, kind TokenKind, raw []byte) {
	s.tmpl = append(s.tmpl, litMark, tokSep)
	s.lit = append(s.lit, byte(kind))
	s.lit = binary.AppendUvarint(s.lit, uint64(len(raw)))
	s.lit = append(s.lit, raw...)
}
