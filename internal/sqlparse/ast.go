package sqlparse

import (
	"fmt"
	"strings"
)

// Node is implemented by all AST nodes.
type Node interface {
	// SQL renders the node back to SQL text (normalized spacing,
	// lower-case keywords). Round-tripping through Parse is lossless up
	// to whitespace and keyword case.
	SQL() string
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Qualifier string // may be empty
	Name      string
}

func (c *ColumnRef) exprNode() {}

// SQL implements Node.
func (c *ColumnRef) SQL() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// LiteralKind distinguishes literal types.
type LiteralKind int

const (
	// LitNumber is a numeric literal (stored as text to stay exact).
	LitNumber LiteralKind = iota
	// LitString is a string literal.
	LitString
)

// Literal is a constant value.
type Literal struct {
	Kind LiteralKind
	Text string
}

func (l *Literal) exprNode() {}

// SQL implements Node.
func (l *Literal) SQL() string {
	if l.Kind == LitString {
		return "'" + strings.ReplaceAll(l.Text, "'", "''") + "'"
	}
	return l.Text
}

// FuncCall is an aggregate call such as count(*), sum(x), avg(t.x).
type FuncCall struct {
	Name string // lower-cased: count, sum, avg, min, max
	Star bool   // count(*)
	Arg  Expr   // nil when Star
}

func (f *FuncCall) exprNode() {}

// SQL implements Node.
func (f *FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	return f.Name + "(" + f.Arg.SQL() + ")"
}

// BinaryOp enumerates binary operators in predicates.
type BinaryOp string

// Comparison and boolean operators. Values are the normalized SQL spelling.
const (
	OpEq  BinaryOp = "="
	OpNe  BinaryOp = "<>"
	OpLt  BinaryOp = "<"
	OpLe  BinaryOp = "<="
	OpGt  BinaryOp = ">"
	OpGe  BinaryOp = ">="
	OpAnd BinaryOp = "and"
	OpOr  BinaryOp = "or"
)

// BinaryExpr is a binary predicate or boolean combination.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

func (b *BinaryExpr) exprNode() {}

// SQL implements Node.
func (b *BinaryExpr) SQL() string {
	switch b.Op {
	case OpAnd, OpOr:
		return "(" + b.L.SQL() + " " + string(b.Op) + " " + b.R.SQL() + ")"
	default:
		return b.L.SQL() + " " + string(b.Op) + " " + b.R.SQL()
	}
}

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // may be empty
}

// SQL implements Node.
func (s *SelectItem) SQL() string {
	if s.Alias != "" {
		return s.Expr.SQL() + " as " + s.Alias
	}
	return s.Expr.SQL()
}

// TableRef is a FROM item: either a base table or a parenthesized subquery,
// in both cases with an optional alias (mandatory for subqueries).
type TableRef struct {
	Table    string      // non-empty for base tables
	Subquery *SelectStmt // non-nil for derived tables
	Alias    string
}

// SQL implements Node.
func (t *TableRef) SQL() string {
	var base string
	if t.Subquery != nil {
		base = "(" + t.Subquery.SQL() + ")"
	} else {
		base = t.Table
	}
	if t.Alias != "" {
		return base + " " + t.Alias
	}
	return base
}

// JoinType enumerates supported join types.
type JoinType int

const (
	// JoinInner is an inner join.
	JoinInner JoinType = iota
	// JoinLeft is a left outer join.
	JoinLeft
)

// String returns the SQL keyword spelling.
func (j JoinType) String() string {
	if j == JoinLeft {
		return "left join"
	}
	return "inner join"
}

// JoinClause is one JOIN ... ON ... following the first FROM item.
type JoinClause struct {
	Type  JoinType
	Right *TableRef
	On    Expr
}

// SQL implements Node.
func (j *JoinClause) SQL() string {
	return j.Type.String() + " " + j.Right.SQL() + " on " + j.On.SQL()
}

// SelectStmt is a SELECT statement (or derived-table subquery).
type SelectStmt struct {
	Items   []*SelectItem
	From    *TableRef
	Joins   []*JoinClause
	Where   Expr // nil when absent
	GroupBy []*ColumnRef
	Having  Expr // nil when absent; references select-list aliases
}

// SQL implements Node.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.SQL())
	}
	b.WriteString(" from ")
	b.WriteString(s.From.SQL())
	for _, j := range s.Joins {
		b.WriteString(" ")
		b.WriteString(j.SQL())
	}
	if s.Where != nil {
		b.WriteString(" where ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" having ")
		b.WriteString(s.Having.SQL())
	}
	return b.String()
}

// Walk applies fn to every expression node under e, depth-first.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *FuncCall:
		if x.Arg != nil {
			Walk(x.Arg, fn)
		}
	}
}

// Conjuncts splits a predicate into its top-level AND conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines predicates with AND; returns nil for an empty slice.
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &BinaryExpr{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

// ExprString is a debugging helper producing a prefix-notation rendering of
// an expression (the same shape the feature extractor emits, Fig. 4).
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ColumnRef:
		return x.SQL()
	case *Literal:
		return x.SQL()
	case *FuncCall:
		return x.SQL()
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", opName(x.Op), ExprString(x.L), ExprString(x.R))
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func opName(op BinaryOp) string {
	switch op {
	case OpEq:
		return "EQ"
	case OpNe:
		return "NE"
	case OpLt:
		return "LT"
	case OpLe:
		return "LE"
	case OpGt:
		return "GT"
	case OpGe:
		return "GE"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return string(op)
	}
}

// OpPrefixName exposes the prefix-notation operator names used in feature
// sequences ("EQ", "AND", ...).
func OpPrefixName(op BinaryOp) string { return opName(op) }
