package sqlparse

import (
	"strings"
	"testing"
)

// Distinct query templates: pairwise-distinct Template (and Exact)
// fingerprints are required — a collision would let the serving cache
// return one query's estimate for another.
var fpTemplates = []string{
	`select a from t`,
	`select a from tt`,
	`select a, b from t`,
	`select ab from t`,
	`select a from t where b = 1`,
	`select a from t where b = 1 and c = 2`,
	`select a from t where b = 1 or c = 2`,
	`select a from t inner join s on t.k = s.k`,
	`select a from t left join s on t.k = s.k`,
	`select count(*) from t group by a`,
	`select sum(b) from t group by a`,
	`select a from ( select a from t where b = 1 ) x`,
	`select a from t where b <> 1`,
	`select a from t where b <= 1`,
	`select a from t where b < 1`,
	`select a from t where b >= 1`,
	`select a from t where b != 1`,
}

func TestFingerprintDeterministic(t *testing.T) {
	for _, sql := range fpTemplates {
		a, err := Fingerprint(sql)
		if err != nil {
			t.Fatalf("Fingerprint(%q): %v", sql, err)
		}
		b, err := Fingerprint(sql)
		if err != nil {
			t.Fatalf("Fingerprint(%q) second call: %v", sql, err)
		}
		if a != b {
			t.Fatalf("Fingerprint(%q) not deterministic: %v vs %v", sql, a.ExactHex(), b.ExactHex())
		}
		c, err := FingerprintBytes([]byte(sql))
		if err != nil || c != a {
			t.Fatalf("FingerprintBytes(%q) = %v, %v; want %v", sql, c.ExactHex(), err, a.ExactHex())
		}
	}
}

func TestFingerprintCollisionFree(t *testing.T) {
	tmpl := map[[16]byte]string{}
	exact := map[[16]byte]string{}
	for _, sql := range fpTemplates {
		fp, err := Fingerprint(sql)
		if err != nil {
			t.Fatalf("Fingerprint(%q): %v", sql, err)
		}
		if prev, dup := tmpl[fp.Template]; dup {
			t.Fatalf("template collision: %q vs %q", prev, sql)
		}
		if prev, dup := exact[fp.Exact]; dup {
			t.Fatalf("exact collision: %q vs %q", prev, sql)
		}
		tmpl[fp.Template] = sql
		exact[fp.Exact] = sql
	}
}

// TestFingerprintLiteralNormalization pins the template property the
// serving cache leans on: queries differing only in literal values share
// a Template but never an Exact digest.
func TestFingerprintLiteralNormalization(t *testing.T) {
	groups := [][]string{
		{
			`select a from t where b = 1`,
			`select a from t where b = 2`,
			`select a from t where b = 31415`,
			`select a from t where b = 3.25`,
			`select a from t where b = 'pen'`, // kind change is still "only literals"
		},
		{
			`select a from t where b = 'x' and c = 'y'`,
			`select a from t where b = 'xx' and c = ''`,
			`select a from t where b = '1' and c = '2'`,
		},
	}
	for _, group := range groups {
		base, err := Fingerprint(group[0])
		if err != nil {
			t.Fatalf("Fingerprint(%q): %v", group[0], err)
		}
		seen := map[[16]byte]string{base.Exact: group[0]}
		for _, sql := range group[1:] {
			fp, err := Fingerprint(sql)
			if err != nil {
				t.Fatalf("Fingerprint(%q): %v", sql, err)
			}
			if fp.Template != base.Template {
				t.Errorf("templates differ: %q vs %q", group[0], sql)
			}
			if prev, dup := seen[fp.Exact]; dup {
				t.Errorf("exact digests coincide for different literals: %q vs %q", prev, sql)
			}
			seen[fp.Exact] = sql
		}
	}
}

// TestFingerprintIgnoresLayout: whitespace and comments never reach the
// canonical stream, so reformatting a query keeps both digests.
func TestFingerprintIgnoresLayout(t *testing.T) {
	a, err := Fingerprint(`select a from t where b = 1`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint("select  a\n\tfrom t -- trailing comment\n where b =\r\n1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("layout changed the fingerprint: %v vs %v", a.ExactHex(), b.ExactHex())
	}
}

// TestFingerprintMatchesLexer: the fingerprint scanner must accept and
// reject exactly what the lexer does, so every parseable query is
// fingerprintable and every fingerprint error is a real lex error.
func TestFingerprintMatchesLexer(t *testing.T) {
	inputs := append([]string{}, fpTemplates...)
	inputs = append(inputs,
		``, `   `, `-- only a comment`,
		`select a from t where b = 'unterminated`,
		`select 1. from t`,
		`select a from t where b = 1.2.3`,
		"select \x00",
		`select 'a''b' from t`,
		`select a from t where b = 'it''s'`,
	)
	for _, sql := range inputs {
		_, lexErr := Lex(sql)
		_, fpErr := Fingerprint(sql)
		if (lexErr == nil) != (fpErr == nil) {
			t.Errorf("Fingerprint/Lex disagree on %q: lex err %v, fp err %v", sql, lexErr, fpErr)
		}
	}
}

func TestFingerprintZeroAlloc(t *testing.T) {
	sql := fpTemplates[8]
	if _, err := Fingerprint(sql); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Fingerprint(sql); err != nil {
			t.Fatal(err)
		}
	})
	// sync.Pool drops a random fraction of Puts under the race
	// detector, so only pin the plain build.
	if !raceEnabled && allocs > 0 {
		t.Fatalf("Fingerprint allocates %v allocs/op, want 0", allocs)
	}
}

// FuzzFingerprint drives the fingerprint scanner with arbitrary SQL
// bytes plus a literal mutation, checking the full contract:
// determinism, string/bytes agreement, lexer agreement, and literal
// normalization (a literal-only rewrite keeps Template; a literal value
// change moves Exact).
func FuzzFingerprint(f *testing.F) {
	for _, sql := range fpTemplates {
		f.Add(sql, "42")
	}
	// Malformed-request shapes from the serve decoder corpus: the
	// scanner must reject them exactly as the lexer does, never panic.
	for _, bad := range []string{
		`hello`, `{"pairs":[`, `select * frm nowhere`, "\x00\xff\xfe",
		strings.Repeat(`"`, 60), `select 1. from t`, `'open`,
	} {
		f.Add(bad, "x")
	}
	f.Fuzz(func(t *testing.T, sql, lit string) {
		fp1, err1 := Fingerprint(sql)
		fp2, err2 := Fingerprint(sql)
		if (err1 == nil) != (err2 == nil) || fp1 != fp2 {
			t.Fatalf("nondeterministic: (%v, %v) vs (%v, %v)", fp1, err1, fp2, err2)
		}
		fpB, errB := FingerprintBytes([]byte(sql))
		if (err1 == nil) != (errB == nil) || fpB != fp1 {
			t.Fatalf("string/bytes disagree: (%v, %v) vs (%v, %v)", fp1, err1, fpB, errB)
		}
		_, lexErr := Lex(sql)
		if (lexErr == nil) != (err1 == nil) {
			t.Fatalf("lexer disagreement: lex err %v, fp err %v", lexErr, err1)
		}
		if err1 != nil {
			return
		}
		// Rewrite every literal to a sanitized variant of lit: the
		// template must survive, and changing any literal's bytes must
		// move the exact digest.
		toks, err := Lex(sql)
		if err != nil {
			t.Fatal(err)
		}
		variant, changed := rewriteLiterals(sql, toks, lit)
		if variant == sql {
			return
		}
		vfp, err := Fingerprint(variant)
		if err != nil {
			t.Fatalf("literal rewrite broke lexing: %q -> %q: %v", sql, variant, err)
		}
		if vfp.Template != fp1.Template {
			t.Fatalf("literal rewrite moved the template: %q vs %q", sql, variant)
		}
		if changed && vfp.Exact == fp1.Exact {
			t.Fatalf("different literals, same exact digest: %q vs %q", sql, variant)
		}
	})
}

// rewriteLiterals rebuilds sql with every literal replaced by a variant
// derived from lit, reporting whether any literal's bytes changed.
func rewriteLiterals(sql string, toks []Token, lit string) (string, bool) {
	num := sanitizeNumber(lit)
	str := sanitizeString(lit)
	var b strings.Builder
	changed := false
	last := 0
	for _, tok := range toks {
		if tok.Kind != TokenNumber && tok.Kind != TokenString {
			continue
		}
		end := literalEnd(sql, tok)
		b.WriteString(sql[last:tok.Pos])
		// Pad with spaces so the replacement can never merge with
		// adjacent source bytes into a different token (e.g. a dotless
		// number followed by a "." punct token).
		if tok.Kind == TokenNumber {
			b.WriteString(" " + num + " ")
			changed = changed || sql[tok.Pos:end] != num
		} else {
			b.WriteString(" '" + str + "' ")
			changed = changed || sql[tok.Pos:end] != "'"+str+"'"
		}
		last = end
	}
	b.WriteString(sql[last:])
	return b.String(), changed
}

// literalEnd rescans the literal's source bytes to find where it ends
// (token positions alone don't mark the end: Text is unescaped for
// strings, and layout or comments may follow before the next token).
func literalEnd(sql string, tok Token) int {
	if tok.Kind == TokenNumber {
		return tok.Pos + len(tok.Text)
	}
	i := tok.Pos + 1
	for {
		if sql[i] == '\'' {
			if i+1 < len(sql) && sql[i+1] == '\'' {
				i += 2
				continue
			}
			return i + 1
		}
		i++
	}
}

// sanitizeNumber maps arbitrary fuzz bytes onto a valid number literal.
func sanitizeNumber(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			b.WriteByte(s[i])
		}
	}
	if b.Len() == 0 {
		return "7"
	}
	return b.String()
}

// sanitizeString maps arbitrary fuzz bytes onto a valid string-literal
// body (quotes doubled, no control bytes).
func sanitizeString(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\'' {
			b.WriteString("''")
			continue
		}
		if c >= 0x20 && c < 0x7f {
			b.WriteByte(c)
		}
	}
	return b.String()
}
