package sqlparse

import (
	"fmt"
	"strings"
)

// Parse parses a single SELECT statement (optionally terminated by ';').
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokenPunct && p.peek().Text == ";" {
		p.advance()
	}
	if p.peek().Kind != TokenEOF {
		return nil, p.errorf("unexpected trailing token %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokenEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokenIdent && strings.EqualFold(t.Text, kw)
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %q, found %s", kw, p.peek())
	}
	p.advance()
	return nil
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

// expectPunct consumes the given punctuation or fails.
func (p *parser) expectPunct(text string) error {
	t := p.peek()
	if t.Kind != TokenPunct || t.Text != text {
		return p.errorf("expected %q, found %s", text, t)
	}
	p.advance()
	return nil
}

// acceptPunct consumes the punctuation if present.
func (p *parser) acceptPunct(text string) bool {
	t := p.peek()
	if t.Kind == TokenPunct && t.Text == text {
		p.advance()
		return true
	}
	return false
}

// reservedWords cannot be used as bare aliases.
var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"by": true, "inner": true, "left": true, "join": true, "on": true,
	"and": true, "or": true, "as": true, "having": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		var jt JoinType
		switch {
		case p.isKeyword("inner"):
			p.advance()
			jt = JoinInner
		case p.isKeyword("left"):
			p.advance()
			jt = JoinLeft
		case p.isKeyword("join"):
			jt = JoinInner
		default:
			goto joinsDone
		}
		if err := p.expectKeyword("join"); err != nil {
			return nil, err
		}
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, &JoinClause{Type: jt, Right: right, On: on})
	}
joinsDone:
	if p.acceptKeyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.acceptKeyword("having") {
			h, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Having = h
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	expr, err := p.parseValueExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: expr}
	if p.acceptKeyword("as") {
		t := p.peek()
		if t.Kind != TokenIdent {
			return nil, p.errorf("expected alias after 'as', found %s", t)
		}
		item.Alias = t.Text
		p.advance()
	} else if t := p.peek(); t.Kind == TokenIdent && !reservedWords[strings.ToLower(t.Text)] {
		item.Alias = t.Text
		p.advance()
	}
	return item, nil
}

// aggregateFuncs recognized in SELECT lists.
var aggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// parseValueExpr parses a select-list value: aggregate call, column ref, or
// literal.
func (p *parser) parseValueExpr() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokenIdent:
		name := strings.ToLower(t.Text)
		if aggregateFuncs[name] {
			// Look ahead for '(' to distinguish a column named like
			// an aggregate from an actual call.
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokenPunct && p.toks[p.pos+1].Text == "(" {
				return p.parseFuncCall(name)
			}
		}
		return p.parseColumnRef()
	case TokenNumber:
		p.advance()
		return &Literal{Kind: LitNumber, Text: t.Text}, nil
	case TokenString:
		p.advance()
		return &Literal{Kind: LitString, Text: t.Text}, nil
	default:
		return nil, p.errorf("expected expression, found %s", t)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.advance() // function name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptPunct("*") {
		fc.Star = true
	} else {
		arg, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		fc.Arg = arg
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseColumnRef() (*ColumnRef, error) {
	t := p.peek()
	if t.Kind != TokenIdent {
		return nil, p.errorf("expected column reference, found %s", t)
	}
	if reservedWords[strings.ToLower(t.Text)] {
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	}
	p.advance()
	ref := &ColumnRef{Name: t.Text}
	if p.acceptPunct(".") {
		t2 := p.peek()
		if t2.Kind != TokenIdent {
			return nil, p.errorf("expected column name after '.', found %s", t2)
		}
		p.advance()
		ref.Qualifier = ref.Name
		ref.Name = t2.Text
	}
	return ref, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	if p.acceptPunct("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ref := &TableRef{Subquery: sub}
		p.acceptKeyword("as")
		t := p.peek()
		if t.Kind != TokenIdent || reservedWords[strings.ToLower(t.Text)] {
			return nil, p.errorf("derived table requires an alias, found %s", t)
		}
		ref.Alias = t.Text
		p.advance()
		return ref, nil
	}
	t := p.peek()
	if t.Kind != TokenIdent {
		return nil, p.errorf("expected table name, found %s", t)
	}
	if reservedWords[strings.ToLower(t.Text)] {
		return nil, p.errorf("unexpected keyword %q in FROM", t.Text)
	}
	p.advance()
	ref := &TableRef{Table: t.Text}
	if p.acceptKeyword("as") {
		t2 := p.peek()
		if t2.Kind != TokenIdent {
			return nil, p.errorf("expected alias after 'as', found %s", t2)
		}
		ref.Alias = t2.Text
		p.advance()
	} else if t2 := p.peek(); t2.Kind == TokenIdent && !reservedWords[strings.ToLower(t2.Text)] {
		ref.Alias = t2.Text
		p.advance()
	}
	return ref, nil
}

// parseExpr parses a boolean expression with precedence OR < AND < cmp.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePrimaryPred()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parsePrimaryPred()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimaryPred() (Expr, error) {
	if p.acceptPunct("(") {
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokenPunct {
		return nil, p.errorf("expected comparison operator, found %s", t)
	}
	op, ok := comparisonOps[t.Text]
	if !ok {
		return nil, p.errorf("unsupported operator %q", t.Text)
	}
	p.advance()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: left, R: right}, nil
}

func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokenIdent:
		return p.parseColumnRef()
	case TokenNumber:
		p.advance()
		return &Literal{Kind: LitNumber, Text: t.Text}, nil
	case TokenString:
		p.advance()
		return &Literal{Kind: LitString, Text: t.Text}, nil
	default:
		return nil, p.errorf("expected operand, found %s", t)
	}
}
