// Package sqlparse provides a lexer and recursive-descent parser for the
// analytical SQL fragment used throughout the paper: SELECT lists with
// aggregates, FROM with base tables and parenthesized subqueries, INNER/LEFT
// joins with equality conditions, conjunctive/disjunctive WHERE predicates,
// and GROUP BY.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind int

const (
	// TokenEOF marks the end of input.
	TokenEOF TokenKind = iota
	// TokenIdent is an identifier or keyword (keywords are resolved by
	// the parser; the lexer only reports the raw text).
	TokenIdent
	// TokenNumber is an integer or decimal literal.
	TokenNumber
	// TokenString is a single-quoted string literal (quotes stripped).
	TokenString
	// TokenPunct is an operator or punctuation token: ( ) , . ; = <> <=
	// >= < > * !=
	TokenPunct
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokenEOF:
		return "<eof>"
	case TokenString:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlparse: position %d: %s", e.Pos, e.Msg)
}

// lexer scans SQL text into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// Lex tokenizes the entire input. It is exported for tests and tooling.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	// SQL averages one token per ~6 bytes; sizing for that turns the
	// append growth sequence into a single allocation for typical texts.
	out := make([]Token, 0, 8+len(src)/6)
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokenEOF {
			return out, nil
		}
	}
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokenEOF, Pos: l.pos}, nil
	}
	start := l.pos
	ch := l.src[l.pos]
	switch {
	case isIdentStart(rune(ch)):
		return l.lexIdent(), nil
	case ch >= '0' && ch <= '9':
		return l.lexNumber()
	case ch == '\'':
		return l.lexString()
	}
	// Punctuation, including two-character operators.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		l.pos += 2
		return Token{Kind: TokenPunct, Text: two, Pos: start}, nil
	}
	switch ch {
	case '(', ')', ',', '.', ';', '=', '<', '>', '*', '+', '-', '/':
		l.pos++
		return Token{Kind: TokenPunct, Text: string(ch), Pos: start}, nil
	}
	return Token{}, l.errorf(start, "unexpected character %q", ch)
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			l.pos++
			continue
		}
		// Line comments: -- to end of line.
		if ch == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() Token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return Token{Kind: TokenIdent, Text: l.src[start:l.pos], Pos: start}
}

func (l *lexer) lexNumber() (Token, error) {
	start := l.pos
	sawDot := false
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		if ch >= '0' && ch <= '9' {
			l.pos++
			continue
		}
		if ch == '.' && !sawDot {
			sawDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") {
		return Token{}, l.errorf(start, "malformed number %q", text)
	}
	return Token{Kind: TokenNumber, Text: text, Pos: start}, nil
}

func (l *lexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		if ch == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokenString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(ch)
		l.pos++
	}
	return Token{}, l.errorf(start, "unterminated string literal")
}
