package sqlparse

import (
	"strings"
	"testing"
)

const paperQuery = `
select t1.user_id, count(*) as cnt
from (
  select user_id, memo from user_memo
  where dt='1010' and memo_type = 'pen' )
t1 inner join (
  select user_id, action from user_action
  where type = 1 and dt='1010' )
t2 on t1.user_id = t2.user_id
group by t1.user_id;
`

func TestParsePaperExample(t *testing.T) {
	stmt, err := Parse(paperQuery)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.Items) != 2 {
		t.Fatalf("want 2 select items, got %d", len(stmt.Items))
	}
	if stmt.Items[1].Alias != "cnt" {
		t.Errorf("want alias cnt, got %q", stmt.Items[1].Alias)
	}
	fc, ok := stmt.Items[1].Expr.(*FuncCall)
	if !ok || fc.Name != "count" || !fc.Star {
		t.Errorf("want count(*), got %#v", stmt.Items[1].Expr)
	}
	if stmt.From.Subquery == nil || stmt.From.Alias != "t1" {
		t.Errorf("want derived table t1, got %+v", stmt.From)
	}
	if len(stmt.Joins) != 1 {
		t.Fatalf("want 1 join, got %d", len(stmt.Joins))
	}
	j := stmt.Joins[0]
	if j.Type != JoinInner {
		t.Errorf("want inner join, got %v", j.Type)
	}
	if j.Right.Subquery == nil || j.Right.Alias != "t2" {
		t.Errorf("want derived table t2, got %+v", j.Right)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Qualifier != "t1" || stmt.GroupBy[0].Name != "user_id" {
		t.Errorf("bad group by: %+v", stmt.GroupBy)
	}
	inner := stmt.From.Subquery
	if inner.Where == nil {
		t.Fatal("inner subquery lost its WHERE")
	}
	conj := Conjuncts(inner.Where)
	if len(conj) != 2 {
		t.Errorf("want 2 conjuncts in inner WHERE, got %d", len(conj))
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"select a, b from t",
		"select a from t where a = 1",
		"select a from t where a >= 1 and b < 'x'",
		"select a from t where (a = 1 or b = 2) and c <> 3",
		"select t.a from t inner join u on t.a = u.a",
		"select t.a from t left join u on t.a = u.a and t.b = u.b",
		"select a, count(*) as n from t group by a",
		"select a, sum(b) as s, avg(c) as m from t group by a",
		"select x.a from (select a from t where a = 1) x",
		"select min(a) as lo, max(a) as hi from t group by b",
	}
	for _, src := range cases {
		stmt, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Re-parse the rendered SQL; the second render must be stable.
		again, err := Parse(stmt.SQL())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", stmt.SQL(), err)
			continue
		}
		if stmt.SQL() != again.SQL() {
			t.Errorf("round trip diverged:\n  %s\n  %s", stmt.SQL(), again.SQL())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "expected"},
		{"select", "expected"},
		{"select a", `expected "from"`},
		{"select a from", "expected table"},
		{"select a from t where", "expected"},
		{"select a from t where a", "comparison"},
		{"select a from t where a ** 1", "unsupported operator"},
		{"select a from (select b from u)", "alias"},
		{"select a from t extra garbage ; more", "trailing"},
		{"select a from t where a = 'unterminated", "unterminated"},
		{"select a from t where a = 3.", "malformed number"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestLexStringsAndComments(t *testing.T) {
	toks, err := Lex("select 'it''s' -- comment\n , 42")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokenEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"select", "it's", ",", "42"}
	if len(texts) != len(want) {
		t.Fatalf("got %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d: got %q want %q", i, texts[i], want[i])
		}
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	stmt, err := Parse("select a from t where a = 1 and b = 2 and c = 3")
	if err != nil {
		t.Fatal(err)
	}
	conj := Conjuncts(stmt.Where)
	if len(conj) != 3 {
		t.Fatalf("want 3 conjuncts, got %d", len(conj))
	}
	back := AndAll(conj)
	if back.SQL() != stmt.Where.SQL() {
		t.Errorf("AndAll lost structure: %s vs %s", back.SQL(), stmt.Where.SQL())
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	stmt, err := Parse("select a from t where (a = 1 or b = 2) and c = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	Walk(stmt.Where, func(Expr) { n++ })
	// and, or, three comparisons, six operands = 11 nodes.
	if n != 11 {
		t.Errorf("Walk visited %d nodes, want 11", n)
	}
}

func TestOpPrefixName(t *testing.T) {
	pairs := map[BinaryOp]string{
		OpEq: "EQ", OpNe: "NE", OpLt: "LT", OpLe: "LE",
		OpGt: "GT", OpGe: "GE", OpAnd: "AND", OpOr: "OR",
	}
	for op, want := range pairs {
		if got := OpPrefixName(op); got != want {
			t.Errorf("OpPrefixName(%v) = %q, want %q", op, got, want)
		}
	}
}

func TestParseHaving(t *testing.T) {
	stmt, err := Parse("select a, count(*) as n from t group by a having n > 2 and a < 5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Having == nil {
		t.Fatal("HAVING lost")
	}
	if len(Conjuncts(stmt.Having)) != 2 {
		t.Errorf("having conjuncts = %d, want 2", len(Conjuncts(stmt.Having)))
	}
	// Round trip.
	again, err := Parse(stmt.SQL())
	if err != nil {
		t.Fatalf("re-parse %q: %v", stmt.SQL(), err)
	}
	if again.SQL() != stmt.SQL() {
		t.Errorf("round trip diverged: %s vs %s", again.SQL(), stmt.SQL())
	}
	// HAVING without GROUP BY is a syntax error in our fragment.
	if _, err := Parse("select a from t having a > 1"); err == nil {
		t.Error("HAVING without GROUP BY should not parse")
	}
}

func TestLexNumbersAndOperators(t *testing.T) {
	toks, err := Lex("1 2.5 <= >= <> != < > = ( ) * ;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokenEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	wantTexts := []string{"1", "2.5", "<=", ">=", "<>", "!=", "<", ">", "=", "(", ")", "*", ";"}
	if len(texts) != len(wantTexts) {
		t.Fatalf("texts = %v", texts)
	}
	for i, w := range wantTexts {
		if texts[i] != w {
			t.Errorf("token %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[0] != TokenNumber || kinds[1] != TokenNumber || kinds[2] != TokenPunct {
		t.Errorf("kinds = %v", kinds)
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("unexpected character should fail lexing")
	}
}

func TestTokenStringForms(t *testing.T) {
	if (Token{Kind: TokenEOF}).String() != "<eof>" {
		t.Error("EOF rendering")
	}
	if (Token{Kind: TokenString, Text: "x"}).String() != "'x'" {
		t.Error("string token rendering")
	}
	if (Token{Kind: TokenIdent, Text: "tbl"}).String() != "tbl" {
		t.Error("ident rendering")
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("select a from t where a ** 1")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T", err)
	}
	if se.Pos <= 0 {
		t.Errorf("position = %d, want > 0", se.Pos)
	}
}
