// Package lint is a repo-specific static-analysis suite enforcing the
// invariants the reproduction's guarantees rest on: bit-identical
// training for any Parallelism setting, instrumentation that never
// perturbs RNG state, and golden-loss-trace stability. The analyzers
// mirror the golang.org/x/tools go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) but are built on the standard library's go/ast + go/types
// only, so the module keeps zero external dependencies.
//
// The suite ships eight analyzers (see LINTING.md for the catalog):
//
//   - randsource: no ambient math/rand calls or time-seeded sources;
//     all randomness flows through an explicitly seeded *rand.Rand.
//   - maporder: no map-iteration-order leakage into slices, float
//     accumulators, or RNG draws.
//   - spanend: every obs.StartSpan result is ended (normally by defer).
//   - floateq: no ==/!= between floating-point operands outside tests.
//   - errdiscard: no silently dropped error returns in internal/.
//   - arenaescape: memory carved from an *nn.Arena must not outlive
//     the arena's Reset (no stores to fields, globals, or channels; no
//     returns except through an arena-parameter helper).
//   - poolpair: every sync.Pool Get reaches a matching Put on all
//     paths (the retention-cap drop idiom is recognized).
//   - atomicfield: a struct field accessed through sync/atomic
//     anywhere is accessed atomically everywhere.
//
// The last three are dataflow-aware and exchange cross-package function
// and field summaries ("facts", facts.go) so helper contracts in
// internal/nn propagate to call sites in widedeep, serve, and rl.
//
// Analyzers inspect non-test files only (the loader feeds them GoFiles,
// which excludes *_test.go); test-file hygiene stays with go vet.
// Intentional violations are suppressed with a trailing or preceding
//
//	//lint:allow <name> <reason>
//
// comment naming the analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run is invoked once per
// loaded package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression comments.
	Name string
	// Doc is the one-line invariant statement shown by -help.
	Doc string
	// Run analyzes a single package.
	Run func(*Pass) error
	// Facts, if set, extracts the package's exported function/field
	// summaries into pass.OwnFacts. The drivers call it for every
	// package — dependencies included, in dependency order — before any
	// dependent's Run, so cross-package contracts propagate (facts.go).
	Facts func(*Pass) error
}

// A Pass carries one package's syntax and type information to an
// analyzer, plus the sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts holds the summaries of every package analyzed so far (this
	// package's own Facts phase included); OwnFacts is the sink the
	// Facts phase writes this package's summaries into.
	Facts    *FactStore
	OwnFacts *PackageFacts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzers returns the full suite in catalog order.
func Analyzers() []*Analyzer {
	return []*Analyzer{RandSource, MapOrder, SpanEnd, FloatEq, ErrDiscard, ArenaEscape, PoolPair, AtomicField}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// internalOnly marks analyzers that run only on packages under
// internal/ (per-analyzer scope applied by the drivers, not by Run, so
// fixture tests can exercise the analyzer on any package path).
var internalOnly = map[string]bool{"errdiscard": true}

// AppliesTo reports whether the analyzer's package scope includes the
// import path.
func AppliesTo(a *Analyzer, pkgPath string) bool {
	if internalOnly[a.Name] {
		return strings.Contains(pkgPath, "internal/")
	}
	return true
}

// RunAnalyzers applies every analyzer (within its scope) to each
// package, drops //lint:allow-suppressed findings, and returns the
// remaining diagnostics in file/position order. Packages are processed
// in dependency order and each package's fact phase runs before its
// diagnostic phase, so cross-package summaries (facts.go) reach their
// consumers; fact-only packages (dependencies loaded just for their
// summaries) contribute facts but no diagnostics.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunAnalyzersWithFacts(analyzers, pkgs, NewFactStore())
}

// RunAnalyzersWithFacts is RunAnalyzers seeded with facts imported from
// outside the package set (the unitchecker driver reads them from the
// .vetx files of already-analyzed dependencies). The store accumulates
// every analyzed package's own facts as a side effect.
func RunAnalyzersWithFacts(analyzers []*Analyzer, pkgs []*Package, store *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range topoSort(pkgs) {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Facts:    store,
			OwnFacts: store.Pkg(pkg.Pkg.Path()),
			diags:    &diags,
		}
		for _, a := range analyzers {
			if a.Facts == nil || !AppliesTo(a, pkg.Pkg.Path()) {
				continue
			}
			pass.Analyzer = a
			if err := a.Facts(pass); err != nil {
				return nil, fmt.Errorf("%s facts: %s: %w", a.Name, pkg.Pkg.Path(), err)
			}
		}
		if pkg.FactOnly {
			continue
		}
		for _, a := range analyzers {
			if !AppliesTo(a, pkg.Pkg.Path()) {
				continue
			}
			pass.Analyzer = a
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Pkg.Path(), err)
			}
		}
	}
	diags = filterSuppressed(diags, pkgs)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowKey identifies a (file, line) pair that a suppression comment
// covers.
type allowKey struct {
	file string
	line int
}

// allowedLines maps every line covered by a //lint:allow comment to the
// analyzer names it waives. A trailing comment covers its own line; a
// standalone comment line covers the line below it.
//
// A name may carry the audit tag — `//lint:allow floateq(audit) <why>` —
// marking the suppression as part of a vetted comparison helper (the
// single entry points ordinary code is supposed to call instead of
// comparing floats inline; see LINTING.md "Audit notes"). The tag is
// self-documenting for reviewers and greppable (`rg 'floateq\(audit\)'`
// lists every audited comparison); an unknown tag waives nothing, so a
// typo fails loud by letting the diagnostic through.
func allowedLines(fset *token.FileSet, files []*ast.File) map[allowKey][]string {
	allowed := make(map[allowKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				names := strings.FieldsFunc(strings.TrimSpace(text), func(r rune) bool {
					return r == ',' || r == ' '
				})
				if len(names) == 0 {
					continue
				}
				// Everything after the first comma-free token run is a
				// free-form reason; only leading tokens that match an
				// analyzer name count.
				var waived []string
				for _, n := range names {
					if base, tag, tagged := strings.Cut(n, "("); tagged {
						tag, closed := strings.CutSuffix(tag, ")")
						if !closed || tag != "audit" {
							break // unknown tag: waive nothing
						}
						n = base
					}
					if ByName(n) == nil && n != "all" {
						break
					}
					waived = append(waived, n)
				}
				pos := fset.Position(c.Pos())
				for _, l := range []int{pos.Line, pos.Line + 1} {
					k := allowKey{pos.Filename, l}
					allowed[k] = append(allowed[k], waived...)
				}
			}
		}
	}
	return allowed
}

func filterSuppressed(diags []Diagnostic, pkgs []*Package) []Diagnostic {
	allowed := make(map[allowKey][]string)
	for _, pkg := range pkgs {
		for k, v := range allowedLines(pkg.Fset, pkg.Files) {
			allowed[k] = append(allowed[k], v...)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		names := allowed[allowKey{d.Pos.Filename, d.Pos.Line}]
		waived := false
		for _, n := range names {
			if n == d.Analyzer || n == "all" {
				waived = true
				break
			}
		}
		if !waived {
			kept = append(kept, d)
		}
	}
	return kept
}
