package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair checks that every value taken from a sync.Pool goes back:
// each Get — a direct (sync.Pool).Get or a call to a getter wrapper
// like serve.getEstScratch — must reach a Put on the same pool (direct,
// or through a putter wrapper) on every path to the function's exit. A
// path that drops the value silently defeats the pooling that the
// zero-allocation serving contract (PERFORMANCE.md) rests on, and a
// pool that slowly "drains" this way is invisible to every test that
// samples only the happy path.
//
// Flagged shapes:
//
//	s := p.Get().(*T)
//	if err != nil { return }    // leaks s on the error path
//	p.Put(s)
//
//	p.Get()                     // result discarded outright
//
// Conforming shapes:
//
//	s := p.Get().(*T)
//	defer p.Put(s)              // covers every exit
//
//	s := p.Get().(*T)
//	if cap(s.b) > max { return }  // retention-cap drop idiom: a
//	p.Put(s)                      // deliberate shed of an oversized
//	                              // buffer is part of the discipline
//
//	func get() *T { return p.Get().(*T) }  // wrapper: exports a
//	    // getter fact; its callers are checked instead
//
// Ownership transfers end the obligation: returning the value, storing
// it into a struct field / global / channel, and panicking paths are
// all treated as handled. Deliberate drops outside the cap idiom need
// a //lint:allow poolpair waiver naming the reason (use the
// poolpair(audit) tag for vetted drop sites; LINTING.md "Audit notes").
//
// Getter/putter wrappers propagate across packages through the fact
// store (facts.go), so a pool wrapped in one package is paired at call
// sites in another.
var PoolPair = &Analyzer{
	Name:  "poolpair",
	Doc:   "every sync.Pool Get must reach a matching Put on all paths (retention-cap drops recognized)",
	Run:   runPoolPair,
	Facts: poolPairFacts,
}

// poolPairFacts records getter wrappers (a function returning a
// pool.Get result) and putter wrappers (a function passing a parameter
// to pool.Put) so callers pair them like the pool's own methods.
// Wrappers can chain through other wrappers, so extraction iterates to
// a fixpoint within the package.
func poolPairFacts(pass *Pass) error {
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.Info.ObjectOf(fd.Name).(*types.Func)
				if fn == nil {
					continue
				}
				key := funcFactKey(fn)
				if pool := getterPool(pass, fd); pool != "" && pass.OwnFacts.PoolGetters[key] != pool {
					pass.OwnFacts.PoolGetters[key] = pool
					changed = true
				}
				if pf, ok := putterFact(pass, fd, fn); ok && pass.OwnFacts.PoolPutters[key] != pf {
					pass.OwnFacts.PoolPutters[key] = pf
					changed = true
				}
			}
		}
	}
	return nil
}

// getterPool returns the pool key a function hands values out of, or
// "": some return statement must return (a variable holding) the result
// of a pool Get or of another getter.
func getterPool(pass *Pass, fd *ast.FuncDecl) string {
	// Locals assigned from a Get (through type assertions), by object.
	pooled := make(map[types.Object]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			pool := poolGetKey(pass, rhs)
			if pool == "" || i >= len(assign.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					pooled[obj] = pool
				}
			}
		}
		return true
	})
	found := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found != "" {
			return found == ""
		}
		for _, res := range ret.Results {
			if pool := poolGetKey(pass, res); pool != "" {
				found = pool
				return false
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if pool := pooled[pass.Info.ObjectOf(id)]; pool != "" {
					found = pool
					return false
				}
			}
		}
		return true
	})
	return found
}

// putterFact reports whether some parameter of the function reaches a
// pool Put (direct or via another putter).
func putterFact(pass *Pass, fd *ast.FuncDecl, fn *types.Func) (PutterFact, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return PutterFact{}, false
	}
	params := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		params[sig.Params().At(i)] = i
	}
	var (
		out   PutterFact
		found bool
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		pool, argIdx := poolPutSink(pass, call)
		if pool == "" || argIdx >= len(call.Args) {
			return true
		}
		if id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident); ok {
			if idx, isParam := params[pass.Info.ObjectOf(id)]; isParam {
				out = PutterFact{Pool: pool, Param: idx}
				found = true
				return false
			}
		}
		return true
	})
	return out, found
}

// poolGetKey returns the pool key when expr is (a type assertion over)
// a pool Get or a getter-fact call, else "".
func poolGetKey(pass *Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.TypeAssertExpr:
		return poolGetKey(pass, e.X)
	case *ast.CallExpr:
		fn := calleeFunc(pass.Info, e)
		if fn == nil {
			return ""
		}
		if fn.Name() == "Get" {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isSyncPool(sig.Recv().Type()) {
				if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
					return poolKeyOf(pass.Info, sel.X)
				}
			}
			return ""
		}
		if key, pf := factsForCall(pass, e); pf != nil {
			return pf.PoolGetters[key]
		}
	}
	return ""
}

// poolPutSink returns the pool key and argument index when call is a
// pool Put or a putter-fact call, else ("", 0).
func poolPutSink(pass *Pass, call *ast.CallExpr) (string, int) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "", 0
	}
	if fn.Name() == "Put" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isSyncPool(sig.Recv().Type()) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return poolKeyOf(pass.Info, sel.X), 0
			}
		}
		return "", 0
	}
	if key, pf := factsForCall(pass, call); pf != nil {
		if putter, ok := pf.PoolPutters[key]; ok {
			return putter.Pool, putter.Param
		}
	}
	return "", 0
}

func runPoolPair(pass *Pass) error {
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if ok {
				checkPoolAssign(pass, assign, stack)
				return true
			}
			// A bare `p.Get()` statement drops the value on the spot.
			if es, ok := n.(*ast.ExprStmt); ok {
				if pool := poolGetKey(pass, es.X); pool != "" {
					pass.Reportf(es.Pos(), "result of Get from pool %s is discarded; the pooled value can never be Put back", shortKey(pool))
				}
			}
			return true
		})
	}
	return nil
}

// checkPoolAssign drives the leak-path analysis for one `v := Get`.
func checkPoolAssign(pass *Pass, assign *ast.AssignStmt, stack []ast.Node) {
	fnNode := enclosingFunc(stack)
	body := funcBody(fnNode)
	if body == nil {
		return
	}
	for i, rhs := range assign.Rhs {
		pool := poolGetKey(pass, rhs)
		if pool == "" || i >= len(assign.Lhs) {
			continue
		}
		id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			if ok { // explicitly blanked
				pass.Reportf(rhs.Pos(), "result of Get from pool %s assigned to _; the pooled value can never be Put back", shortKey(pool))
			}
			continue
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		c := &poolLeakCheck{pass: pass, v: obj, pool: pool, getPos: rhs.Pos(), budget: 4096}
		seq, fromIfInit := continuationAfterGet(body, assign, stack)
		if seq == nil && !fromIfInit {
			continue
		}
		for _, leak := range dedupePos(c.leaks(seq)) {
			if leak == c.getPos {
				pass.Reportf(leak, "pooled value %s from pool %s never reaches a Put before the function exits", id.Name, shortKey(pool))
			} else {
				pass.Reportf(leak, "pooled value %s from pool %s is not returned to the pool on this path; Put it, or waive with //lint:allow poolpair", id.Name, shortKey(pool))
			}
		}
	}
}

// continuationAfterGet builds the linear statement continuation that
// executes after the Get assignment: the rest of every enclosing block
// from the innermost out. A comma-ok Get in an if-init
// (`if v, ok := p.Get().(*T); ok { ... }`) carries the value only into
// the then-branch, so the continuation starts there.
func continuationAfterGet(body *ast.BlockStmt, assign *ast.AssignStmt, stack []ast.Node) ([]ast.Stmt, bool) {
	// If-init form: the assignment's parent is the IfStmt itself.
	if len(stack) > 0 {
		if ifs, ok := stack[len(stack)-1].(*ast.IfStmt); ok && ifs.Init == assign {
			rest, found := continuationAfter(body.List, ifs)
			if !found {
				rest = nil
			}
			return append(append([]ast.Stmt{}, ifs.Body.List...), rest...), true
		}
	}
	rest, found := continuationAfter(body.List, assign)
	if !found {
		return nil, false
	}
	return rest, false
}

// continuationAfter returns the statements that execute after target
// finishes, flattened innermost-first, when target (or a statement
// containing it) is found in list.
func continuationAfter(list []ast.Stmt, target ast.Stmt) ([]ast.Stmt, bool) {
	for i, s := range list {
		if s == target {
			return append([]ast.Stmt{}, list[i+1:]...), true
		}
		if inner, ok := continuationWithin(s, target); ok {
			return append(inner, list[i+1:]...), true
		}
	}
	return nil, false
}

func continuationWithin(s ast.Stmt, target ast.Stmt) ([]ast.Stmt, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return continuationAfter(s.List, target)
	case *ast.IfStmt:
		if cont, ok := continuationAfter(s.Body.List, target); ok {
			return cont, true
		}
		if s.Else != nil {
			if cont, ok := continuationWithin(s.Else, target); ok {
				return cont, true
			}
			if cont, ok := continuationAfter(elseStmts(s.Else), target); ok {
				return cont, true
			}
		}
	case *ast.ForStmt:
		return continuationAfter(s.Body.List, target)
	case *ast.RangeStmt:
		return continuationAfter(s.Body.List, target)
	case *ast.SwitchStmt:
		return continuationInClauses(s.Body, target)
	case *ast.TypeSwitchStmt:
		return continuationInClauses(s.Body, target)
	case *ast.SelectStmt:
		return continuationInClauses(s.Body, target)
	case *ast.LabeledStmt:
		if s.Stmt == target {
			return nil, true
		}
		return continuationWithin(s.Stmt, target)
	}
	return nil, false
}

func continuationInClauses(body *ast.BlockStmt, target ast.Stmt) ([]ast.Stmt, bool) {
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		if cont, ok := continuationAfter(stmts, target); ok {
			return cont, true
		}
	}
	return nil, false
}

// poolLeakCheck walks the continuation of a Get, collecting the exit
// positions the pooled value can leak through.
type poolLeakCheck struct {
	pass   *Pass
	v      types.Object
	pool   string
	getPos token.Pos
	budget int
}

// leaks returns the positions of paths through seq that exit without a
// Put (token.NoPos never appears; the Get position marks falling off
// the end of the function).
func (c *poolLeakCheck) leaks(seq []ast.Stmt) []token.Pos {
	c.budget--
	if c.budget < 0 {
		return nil // pathological branching: stay silent, never flaky
	}
	for i, s := range seq {
		rest := seq[i+1:]
		switch s := s.(type) {
		case *ast.DeferStmt:
			if pool, argIdx := poolPutSink(c.pass, s.Call); pool == c.pool && c.argIsV(s.Call, argIdx) {
				return nil // defer covers every exit from here on
			}
			if c.valueEscapes(s) {
				return nil
			}
		case *ast.ReturnStmt:
			if c.mentionsV(s) {
				return nil // handed to the caller (getter wrapper shape)
			}
			return []token.Pos{s.Pos()}
		case *ast.BranchStmt:
			return nil // break/continue/goto: out of scope, stay silent
		case *ast.IfStmt:
			if s.Init != nil && c.stmtSatisfies(s.Init) {
				return nil
			}
			if callsBuiltinCap(c.pass.Info, s.Cond) {
				// Retention-cap drop idiom: the guarded branch sheds the
				// value deliberately; only the fall-through path owes a
				// Put.
				continue
			}
			thenSeq := append(append([]ast.Stmt{}, s.Body.List...), rest...)
			elseSeq := rest
			if s.Else != nil {
				elseSeq = append(append([]ast.Stmt{}, elseStmts(s.Else)...), rest...)
			}
			return append(c.leaks(thenSeq), c.leaks(elseSeq)...)
		case *ast.BlockStmt:
			return c.leaks(append(append([]ast.Stmt{}, s.List...), rest...))
		case *ast.SwitchStmt:
			return c.leakClauses(s.Body, rest, !switchHasDefault(s.Body))
		case *ast.TypeSwitchStmt:
			return c.leakClauses(s.Body, rest, !switchHasDefault(s.Body))
		case *ast.SelectStmt:
			// A default-free select blocks until one case runs; there is
			// no implicit fall-through path either way.
			return c.leakClauses(s.Body, rest, false)
		case *ast.ForStmt:
			// One unrolled iteration plus the zero-iterations path: Puts
			// on early-return paths inside the body stay path-local
			// instead of discharging the whole continuation. An infinite
			// loop (no condition) never reaches the continuation.
			bodySeq := append(append([]ast.Stmt{}, s.Body.List...), rest...)
			if s.Cond == nil {
				return c.leaks(bodySeq)
			}
			return append(c.leaks(bodySeq), c.leaks(rest)...)
		case *ast.RangeStmt:
			bodySeq := append(append([]ast.Stmt{}, s.Body.List...), rest...)
			return append(c.leaks(bodySeq), c.leaks(rest)...)
		case *ast.LabeledStmt:
			return c.leaks(append([]ast.Stmt{s.Stmt}, rest...))
		default:
			if c.stmtSatisfies(s) {
				return nil
			}
		}
	}
	// Fell off the end of the function without a Put.
	return []token.Pos{c.getPos}
}

func (c *poolLeakCheck) leakClauses(body *ast.BlockStmt, rest []ast.Stmt, fallThrough bool) []token.Pos {
	var out []token.Pos
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		out = append(out, c.leaks(append(append([]ast.Stmt{}, stmts...), rest...))...)
	}
	if fallThrough {
		out = append(out, c.leaks(rest)...)
	}
	return out
}

// stmtSatisfies reports whether executing s discharges the Put
// obligation on this path: a Put of v, an ownership transfer (store
// into a field / global / channel / container, reassignment of v), or
// an unconditional abort.
func (c *poolLeakCheck) stmtSatisfies(s ast.Stmt) bool {
	if isPanicOrExit(c.pass.Info, s) {
		return true
	}
	satisfied := false
	ast.Inspect(s, func(n ast.Node) bool {
		if satisfied {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// The value captured by a closure is out of intra-procedural
			// reach; treat the capture as a handoff.
			if c.exprMentionsV(n.Body) {
				satisfied = true
			}
			return false
		case *ast.CallExpr:
			if pool, argIdx := poolPutSink(c.pass, n); pool == c.pool && c.argIsV(n, argIdx) {
				satisfied = true
				return false
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// v stored somewhere that outlives the function: the
				// new owner inherits the obligation.
				if i < len(n.Rhs) && c.isV(n.Rhs[i]) && !isBlankOrLocalIdent(c.pass.Info, lhs) {
					satisfied = true
					return false
				}
				// v reassigned: tracking ends (conservative).
				if c.isV(lhs) {
					satisfied = true
					return false
				}
			}
		case *ast.SendStmt:
			if c.isV(n.Value) {
				satisfied = true
				return false
			}
		case *ast.GoStmt:
			if c.exprMentionsV(n.Call) {
				satisfied = true
				return false
			}
		}
		return true
	})
	return satisfied
}

// valueEscapes reports whether the statement hands v off through a
// composite/call boundary other than a recognized Put (e.g. deferring a
// closure over v): treated as handled.
func (c *poolLeakCheck) valueEscapes(s ast.Stmt) bool {
	d, ok := s.(*ast.DeferStmt)
	return ok && c.exprMentionsV(d.Call)
}

func (c *poolLeakCheck) argIsV(call *ast.CallExpr, argIdx int) bool {
	return argIdx < len(call.Args) && c.isV(call.Args[argIdx])
}

func (c *poolLeakCheck) isV(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && c.pass.Info.ObjectOf(id) == c.v
}

func (c *poolLeakCheck) mentionsV(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && c.pass.Info.ObjectOf(id) == c.v {
			found = true
		}
		return !found
	})
	return found
}

func (c *poolLeakCheck) exprMentionsV(n ast.Node) bool { return c.mentionsV(n) }

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func isBlankOrLocalIdent(info *types.Info, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false // field/index/deref store: escapes
	}
	if id.Name == "_" {
		return true
	}
	return !isPackageLevel(info.ObjectOf(id))
}

func dedupePos(ps []token.Pos) []token.Pos {
	seen := make(map[token.Pos]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// shortKey trims the package path from a pool key for readable
// diagnostics (autoview/internal/serve.estPool -> serve.estPool).
func shortKey(key string) string {
	slash := -1
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			slash = i
		}
	}
	return key[slash+1:]
}
