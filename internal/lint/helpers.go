package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method object a call invokes, or
// nil for calls through function values, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isRandPkg reports whether pkg is math/rand or math/rand/v2.
func isRandPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

// isObsPkg reports whether pkg is the repo's observability package. The
// suffix match lets analysistest-style fixtures supply a shim package
// named obs under a short import path.
func isObsPkg(pkg *types.Package) bool {
	if pkg == nil || pkg.Name() != "obs" {
		return false
	}
	return pkg.Path() == "obs" || strings.HasSuffix(pkg.Path(), "internal/obs")
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isRandRand reports whether t is *rand.Rand (math/rand or v2).
func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Rand" && isRandPkg(named.Obj().Pkg())
}

// returnsError reports whether the call's result tuple contains an
// error (it does for `func() error` and `func() (T, error)` alike).
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// enclosingFunc returns the innermost function body on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// inspectWithStack walks root, calling f with each node and the stack
// of its ancestors (not including n itself). Returning false skips the
// node's children.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := f(n, stack)
		stack = append(stack, n)
		if !ok {
			// Children are skipped, so the pop callback never fires.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}
