package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method object a call invokes, or
// nil for calls through function values, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isRandPkg reports whether pkg is math/rand or math/rand/v2.
func isRandPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

// isObsPkg reports whether pkg is the repo's observability package. The
// suffix match lets analysistest-style fixtures supply a shim package
// named obs under a short import path.
func isObsPkg(pkg *types.Package) bool {
	if pkg == nil || pkg.Name() != "obs" {
		return false
	}
	return pkg.Path() == "obs" || strings.HasSuffix(pkg.Path(), "internal/obs")
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isRandRand reports whether t is *rand.Rand (math/rand or v2).
func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Rand" && isRandPkg(named.Obj().Pkg())
}

// returnsError reports whether the call's result tuple contains an
// error (it does for `func() error` and `func() (T, error)` alike).
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// enclosingFunc returns the innermost function body on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// inspectWithStack walks root, calling f with each node and the stack
// of its ancestors (not including n itself). Returning false skips the
// node's children.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := f(n, stack)
		stack = append(stack, n)
		if !ok {
			// Children are skipped, so the pop callback never fires.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// isNNPkg reports whether pkg is the repo's neural-network package. The
// suffix match lets fixtures supply a shim package named nn under a
// short import path (mirroring isObsPkg).
func isNNPkg(pkg *types.Package) bool {
	if pkg == nil || pkg.Name() != "nn" {
		return false
	}
	return pkg.Path() == "nn" || strings.HasSuffix(pkg.Path(), "internal/nn")
}

// isNNArena reports whether t is nn.Arena or *nn.Arena.
func isNNArena(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Arena" && isNNPkg(named.Obj().Pkg())
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// namedTypeOf unwraps pointers and returns the named type of t, or nil.
func namedTypeOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// poolKeyOf returns a stable key identifying which sync.Pool value the
// expression denotes: "<pkg>.<var>" for a package-level pool variable,
// "<pkg>.<Type>.<field>" for a pool struct field, "" when the pool
// cannot be identified (a local pool value or an indexed element —
// untracked rather than misattributed).
func poolKeyOf(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() { // package-level var
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return ""
		}
		field := sel.Obj()
		named := namedTypeOf(sel.Recv())
		if named == nil || field.Pkg() == nil {
			return ""
		}
		return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return poolKeyOf(info, e.X)
		}
	}
	return ""
}

// fieldKeyOf returns the cross-package key of the struct field a
// selector resolves to ("<pkg>.<Type>.<Field>"), or "" for non-field
// selections.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	field := s.Obj()
	named := namedTypeOf(s.Recv())
	if named == nil || field.Pkg() == nil {
		return ""
	}
	return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
}

// baseIdent returns the leftmost identifier of a selector/index chain
// (x in x.f[i].g), or nil.
func baseIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isPackageLevel reports whether obj is a package-scope object.
func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// elseStmts flattens an else arm (block or else-if chain) into a
// statement list.
func elseStmts(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return s.List
	case nil:
		return nil
	default: // else-if
		return []ast.Stmt{s}
	}
}

// callsBuiltinCap reports whether the expression contains a call to the
// builtin cap — the signature of the pooled-buffer retention-cap drop
// idiom (`if cap(b) > limit { return }`).
func callsBuiltinCap(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isPanicOrExit reports whether the statement unconditionally aborts
// control flow (panic, os.Exit, log.Fatal*): paths through it never
// reach the function's normal exits.
func isPanicOrExit(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	return path == "os" && name == "Exit" ||
		path == "log" && strings.HasPrefix(name, "Fatal")
}
