package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolCrossPackage drives the real `go vet -vettool=` pipeline
// over testdata/vetmod, a self-contained module whose app package
// violates contracts its dependencies export as facts. Both expected
// findings are invisible to intra-package analysis, so this test fails
// if the .vetx fact plumbing (PackageVetx in, VetxOutput out) breaks.
func TestVetToolCrossPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "autoviewlint")
	build := exec.Command("go", "build", "-o", bin, "autoview/cmd/autoviewlint")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build vettool: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = filepath.Join("testdata", "vetmod")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet found nothing; want two cross-package findings\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		// arenaescape: enc.Embed's "returns arena-backed memory" fact
		// reached the app unit.
		"arena-backed slice stored in package variable global",
		// poolpair: bufpool's getter/putter facts reached the app unit.
		"is not returned to the pool on this path",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("go vet output missing %q:\n%s", want, text)
		}
	}
	// The conforming sites (PutBuf on the happy path, the enc helper
	// itself) must stay quiet.
	for _, file := range []string{"enc.go", "bufpool.go", "nn.go"} {
		if strings.Contains(text, file) {
			t.Errorf("unexpected finding in dependency %s:\n%s", file, text)
		}
	}
}
