package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RandSource forbids ambient math/rand state: package-level functions
// like rand.Intn draw from a process-global, racy source that the
// seeded-RNG plumbing (core.Config.Seed) cannot control, and
// time-seeded sources change on every run. Both break the bit-identical
// training and golden-loss-trace guarantees. Constructors (rand.New,
// rand.NewSource, ...) stay legal — all randomness must flow through an
// explicitly seeded *rand.Rand.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc:  "forbid ambient math/rand functions and time-seeded RNG sources",
	Run:  runRandSource,
}

// randConstructors are the math/rand package-level functions that do
// not touch the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runRandSource(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.Info.ObjectOf(n.Sel).(*types.Func)
				if !ok || !isRandPkg(fn.Pkg()) || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if !randConstructors[fn.Name()] {
					pass.Reportf(n.Pos(), "ambient %s.%s draws from the process-global source; use an explicitly seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || !isRandPkg(fn.Pkg()) || !randConstructors[fn.Name()] {
					return true
				}
				for _, arg := range n.Args {
					if pos, ok := findTimeNow(pass.Info, arg); ok {
						pass.Reportf(pos, "time-seeded RNG is different on every run; seed %s.%s from the pipeline seed (core.Config.Seed)", fn.Pkg().Name(), fn.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// findTimeNow reports the position of a time.Now call anywhere inside
// expr (covering time.Now().UnixNano() and friends). Nested rand
// constructors are not descended into — rand.New(rand.NewSource(now))
// reports once, at the inner constructor.
func findTimeNow(info *types.Info, expr ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if isRandPkg(fn.Pkg()) && randConstructors[fn.Name()] {
			return false
		}
		if fn.Name() == "Now" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
