package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// TestAnalyzers runs each analyzer over its golden fixture package in
// testdata/src/<name> and checks the diagnostics against the
// analysistest-style "// want" comments (backquoted regexes): every
// want must be matched by a diagnostic on its line, and every
// diagnostic must be covered by a want. Each fixture includes guard
// cases that must stay silent (sorted-keys idiom, `_ = err`, NaN
// self-test, ...).
func TestAnalyzers(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a, a.Name) })
	}
}

func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	l := newFixtureLoader(t)
	// Fixtures type-check under their on-disk import path, which sits
	// inside internal/ — so scoped analyzers (errdiscard) apply.
	path := "autoview/internal/lint/testdata/src/" + fixture
	pkg := l.loadFixture(path)
	// Fixture dependencies (shim packages like nn or poolutil) ride
	// along fact-only, mirroring how both real drivers feed dependency
	// summaries to the analyzers; RunAnalyzers orders them itself.
	pkgs := []*Package{pkg}
	for p, dep := range l.loaded {
		if p != path {
			dep.FactOnly = true
			pkgs = append(pkgs, dep)
		}
	}
	diags, err := RunAnalyzers([]*Analyzer{a}, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	wants := parseWants(t, l.fset, pkg.Files)
	got := make(map[allowKey][]Diagnostic)
	for _, d := range diags {
		k := allowKey{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}
	for k, res := range wants {
		ds := got[k]
		if len(ds) != len(res) {
			t.Errorf("%s:%d: want %d diagnostics, got %d: %v", k.file, k.line, len(res), len(ds), ds)
			continue
		}
		for _, re := range res {
			matched := false
			for _, d := range ds {
				if re.MatchString(d.Message) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matching %q in %v", k.file, k.line, re, ds)
			}
		}
	}
	for k, ds := range got {
		if _, ok := wants[k]; !ok {
			t.Errorf("%s:%d: unexpected diagnostic %q", k.file, k.line, ds[0].Message)
		}
	}
}

// parseWants extracts the backquoted "// want" regexes, keyed by line.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[allowKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[allowKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := allowKey{pos.Filename, pos.Line}
				for _, pat := range strings.Split(text, "`") {
					pat = strings.TrimSpace(pat)
					if pat == "" {
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

// fixtureLoader type-checks fixture packages GOPATH-style: an import
// path with a directory under testdata/src resolves to that fixture
// (e.g. the obs shim); anything else resolves to compiler export data
// fetched on demand with `go list -export`.
type fixtureLoader struct {
	t        *testing.T
	fset     *token.FileSet
	loaded   map[string]*Package
	exports  map[string]string
	stdlib   types.Importer
	testdata string
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	l := &fixtureLoader{
		t:        t,
		fset:     token.NewFileSet(),
		loaded:   make(map[string]*Package),
		exports:  make(map[string]string),
		testdata: filepath.Join("testdata", "src"),
	}
	l.stdlib = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		if _, ok := l.exports[path]; !ok {
			if err := l.fetchExports(path); err != nil {
				return nil, err
			}
		}
		return os.Open(l.exports[path])
	})
	return l
}

// fixtureDir maps an import path to its on-disk fixture directory, or
// "" when the path is not a fixture.
func (l *fixtureLoader) fixtureDir(path string) string {
	rel := strings.TrimPrefix(path, "autoview/internal/lint/testdata/src/")
	dir := filepath.Join(l.testdata, rel)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

func (l *fixtureLoader) loadFixture(path string) *Package {
	l.t.Helper()
	if pkg, ok := l.loaded[path]; ok {
		return pkg
	}
	dir := l.fixtureDir(path)
	if dir == "" {
		l.t.Fatalf("no fixture directory for %q", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	pkg, err := checkPackage(l.fset, importerFunc(l.importPkg), path, dir, files)
	if err != nil {
		l.t.Fatalf("fixture %s: %v", path, err)
	}
	l.loaded[path] = pkg
	return pkg
}

func (l *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if l.fixtureDir(path) != "" {
		return l.loadFixture(path).Pkg, nil
	}
	return l.stdlib.Import(path)
}

// fetchExports populates the export-data map for path and its deps.
func (l *fixtureLoader) fetchExports(path string) error {
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "-deps", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// TestLoadRepo smoke-tests the go list loader on a real package.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load("..", "autoview/internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Pkg.Path() != "autoview/internal/obs" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	if len(pkgs[0].Files) == 0 {
		t.Fatal("no files loaded")
	}
	for _, f := range pkgs[0].Files {
		name := pkgs[0].Fset.Position(f.Pos()).Filename
		if isTestFile(name) {
			t.Errorf("test file %s should not be loaded", name)
		}
	}
}

// TestSuppression checks the //lint:allow comment contract directly:
// same-line and line-above comments waive the named analyzer only.
func TestSuppression(t *testing.T) {
	src := `package p

func cmp(a, b float64) bool {
	if a == b { //lint:allow floateq same-line waiver
		return true
	}
	//lint:allow floateq line-above waiver
	if a != b {
		return false
	}
	//lint:allow randsource wrong analyzer does not waive
	return a == b
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue), Defs: make(map[*ast.Ident]types.Object), Uses: make(map[*ast.Ident]types.Object)}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Analyzer{FloatEq}, []*Package{{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Pos.Line != 12 {
		t.Fatalf("want exactly the unwaived line-12 diagnostic, got %v", diags)
	}
}

// TestAuditTagSuppression checks the audit-tag arm of the //lint:allow
// grammar: `floateq(audit)` waives exactly like the bare name (it marks
// a vetted comparison helper; see LINTING.md "Audit notes"), while an
// unknown or malformed tag waives nothing — a typo must fail loud by
// letting the diagnostic through.
func TestAuditTagSuppression(t *testing.T) {
	src := `package p

func cmp(a, b float64) bool {
	if a == b { //lint:allow floateq(audit) vetted comparison entry point
		return true
	}
	//lint:allow floateq(audit) line-above audit waiver
	if a != b {
		return false
	}
	if a == b { //lint:allow floateq(vetted) unknown tag must not waive
		return true
	}
	//lint:allow floateq(audit unclosed tag must not waive
	return a == b
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue), Defs: make(map[*ast.Ident]types.Object), Uses: make(map[*ast.Ident]types.Object)}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Analyzer{FloatEq}, []*Package{{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want the two unwaived diagnostics (bad tags), got %v", diags)
	}
	if diags[0].Pos.Line != 11 || diags[1].Pos.Line != 15 {
		t.Fatalf("want diagnostics on lines 11 and 15, got %v", diags)
	}
}

// TestLintSelfClean runs the full eight-analyzer suite over the
// repository itself, in-process: the tree must stay free of
// unsuppressed findings (every intentional violation carries a
// //lint:allow reason, vetted sites the (audit) tag; LINTING.md).
// This is the standalone-driver equivalent of the `bin/autoviewlint
// ./...` step in make lint, kept as a test so a new analyzer (or a
// regression in an old one) cannot land findings silently.
func TestLintSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	store := NewFactStore()
	diags, err := RunAnalyzersWithFacts(Analyzers(), pkgs, store)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}

	// The clean result is only meaningful if the run extracted the
	// cross-package contracts the resource-discipline analyzers rest
	// on; assert the load-bearing facts are present.
	checks := []struct{ pkg, kind, key string }{
		{"autoview/internal/serve", "getter", "getEstScratch"},
		{"autoview/internal/serve", "putter", "putEstScratch"},
		{"autoview/internal/sqlparse", "putter", "putFPScratch"},
		{"autoview/internal/widedeep", "getter", "Model.getArena"},
		{"autoview/internal/widedeep", "putter", "Model.putArena"},
		{"autoview/internal/rl", "getter", "Agent.getArena"},
		{"autoview/internal/rl", "putter", "Agent.putArena"},
		{"autoview/internal/featenc", "arena", "Encoder.InferPlan"},
		{"autoview/internal/featenc", "arena", "Encoder32.InferPlan"},
	}
	for _, c := range checks {
		pf := store.lookup(c.pkg)
		if pf == nil {
			t.Errorf("no facts recorded for %s", c.pkg)
			continue
		}
		var ok bool
		switch c.kind {
		case "getter":
			_, ok = pf.PoolGetters[c.key]
		case "putter":
			_, ok = pf.PoolPutters[c.key]
		case "arena":
			ok = len(pf.ArenaReturns[c.key]) > 0
		}
		if !ok {
			t.Errorf("%s: missing %s fact %q\n  getters=%v\n  putters=%v\n  arena=%v",
				c.pkg, c.kind, c.key, pf.PoolGetters, pf.PoolPutters, pf.ArenaReturns)
		}
	}
}

// TestFactsRoundTrip pins the .vetx payload contract: encode → decode
// is lossless, deterministic, and tolerant of the legacy empty format.
func TestFactsRoundTrip(t *testing.T) {
	s := NewFactStore()
	pf := s.Pkg("autoview/internal/nn")
	pf.ArenaReturns["Linear.Infer"] = []int{0}
	pf.PoolGetters["getScratch"] = "autoview/internal/nn.scratchPool"
	pf.PoolPutters["putScratch"] = PutterFact{Pool: "autoview/internal/nn.scratchPool", Param: 0}
	pf.AtomicFields["Stats.hits"] = true

	data, err := EncodeFacts(s)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := EncodeFacts(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encoding is not deterministic")
	}

	back, err := DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.lookup("autoview/internal/nn")
	if got == nil {
		t.Fatal("package lost in round trip")
	}
	if !reflect.DeepEqual(got.ArenaReturns, pf.ArenaReturns) ||
		!reflect.DeepEqual(got.PoolGetters, pf.PoolGetters) ||
		!reflect.DeepEqual(got.PoolPutters, pf.PoolPutters) ||
		!reflect.DeepEqual(got.AtomicFields, pf.AtomicFields) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, pf)
	}

	empty, err := DecodeFacts(nil)
	if err != nil || len(empty.Pkgs) != 0 {
		t.Errorf("legacy empty payload must decode to an empty store, got %v, %v", empty, err)
	}
}
