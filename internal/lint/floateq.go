package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. After any
// arithmetic, exact FP equality encodes an assumption about rounding
// that a re-ordered reduction (e.g. a different Parallelism setting)
// silently invalidates — the bug class the data-parallel trainer's
// bit-identical guarantee exists to prevent. Compare against an epsilon
// or math.Abs(a-b) <= tol instead.
//
// Two shapes are deliberately not flagged:
//
//   - constant comparisons (both operands compile-time constants);
//   - the NaN self-test `x != x` / `x == x`.
//
// Comparisons against an exact sentinel (x == 0) are still flagged;
// when the zero truly is exact — an uninitialized-field check, a
// documented sentinel — suppress with //lint:allow floateq <reason>.
//
// Tolerance comparisons themselves live behind the vetted helpers
// nn.AlmostEqual / nn.AlmostEqual32 / nn.ULPDiff32, whose internal
// exact-equality short-circuits carry the audit-tagged form
// //lint:allow floateq(audit) <reason>. New non-test code comparing
// f32-kernel outputs should call those helpers rather than add inline
// epsilon checks; the audit tag keeps the vetted entry points
// greppable and distinct from ordinary sentinel waivers (LINTING.md).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point operands outside _test.go",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.Info.Types[bin.X], pass.Info.Types[bin.Y]
			if !isFloat(defaultType(xt)) && !isFloat(defaultType(yt)) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded: exact by construction
			}
			if isSelfCompare(pass.Info, bin) {
				return true // NaN test
			}
			pass.Reportf(bin.OpPos, "floating-point %s comparison is exact and breaks under re-ordered reductions; compare with a tolerance (or //lint:allow floateq if the value is a never-computed sentinel)", bin.Op)
			return true
		})
	}
	return nil
}

// defaultType resolves untyped constants to their default type so an
// untyped 0 compared against a float64 counts as float.
func defaultType(tv types.TypeAndValue) types.Type {
	if tv.Type == nil {
		return types.Typ[types.Invalid]
	}
	return types.Default(tv.Type)
}

// isSelfCompare reports whether both operands are the same simple
// variable or selector chain (`x != x`, `s.v == s.v`) — the idiomatic
// NaN check.
func isSelfCompare(info *types.Info, bin *ast.BinaryExpr) bool {
	return samePath(info, ast.Unparen(bin.X), ast.Unparen(bin.Y))
}

func samePath(info *types.Info, a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && info.ObjectOf(a) != nil && info.ObjectOf(a) == info.ObjectOf(b)
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && samePath(info, ast.Unparen(a.X), ast.Unparen(b.X))
	}
	return false
}
