package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// neverFails recognizes writes whose error is documented to always be
// nil: *bytes.Buffer and *strings.Builder methods, and formatted
// writes (fmt.Fprint*, io.WriteString) targeting one of those.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return isInfallibleWriter(sig.Recv().Type())
	}
	pkg := fn.Pkg().Path()
	writerArg := pkg == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") ||
		pkg == "io" && fn.Name() == "WriteString"
	if writerArg && len(call.Args) > 0 {
		if t := info.TypeOf(call.Args[0]); t != nil {
			return isInfallibleWriter(t)
		}
	}
	return false
}

// isInfallibleWriter reports whether t is *bytes.Buffer or
// *strings.Builder (possibly behind one pointer).
func isInfallibleWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	obj := named.Obj()
	path, name := obj.Pkg().Path(), obj.Name()
	return path == "bytes" && name == "Buffer" || path == "strings" && name == "Builder"
}

// ErrDiscard flags calls whose error result is silently dropped: a call
// with an error in its result tuple used as a bare statement (or go /
// defer statement) discards the error with no trace in the source. PR
// 2's Advisor.Select change showed such drops hiding real failures
// (OfflineTrain errors vanished for years of CI runs).
//
// Explicit discards remain legal and are the sanctioned escape hatch:
//
//	_ = w.Flush()          // visible, greppable
//	n, _ := fmt.Fprintf(…) // positional blank
//
// Writes that are documented to never fail carry no signal and are
// excluded: methods on *bytes.Buffer and *strings.Builder, and
// fmt.Fprint* / io.WriteString whose destination is one of those.
//
// The analyzer runs only on packages under internal/ (the drivers apply
// the scope), matching the issue's contract.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "flag silently dropped error returns in internal/",
	Run:  runErrDiscard,
}

func runErrDiscard(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(n.X).(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			default:
				return true
			}
			if call == nil || !returnsError(pass.Info, call) || neverFails(pass.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or discard explicitly with `_ =`", callName(call))
			return true
		})
	}
	return nil
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
