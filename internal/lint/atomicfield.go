package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField checks access-mode consistency for struct fields that go
// through sync/atomic: a field updated with atomic.AddUint64 (or any of
// the function-style atomics) anywhere in the module must be accessed
// atomically everywhere. A single plain read racing an atomic writer is
// undefined under the Go memory model — and it is exactly the bug the
// race detector only catches when the schedule cooperates, which is why
// it belongs to a static gate.
//
// Flagged:
//
//	atomic.AddUint64(&c.hits, 1)   // one goroutine
//	...
//	total := c.hits                // another: plain read of an atomic field
//
// Conforming:
//
//	total := atomic.LoadUint64(&c.hits)
//
//	c := &Counter{}
//	c.hits = restored              // recognized idiom: the struct is
//	go c.serve()                   // function-local here, not yet
//	                               // shared, so plain init is safe
//
// The recognized idiom covers single-goroutine initialization: plain
// access through a variable declared in the same function body (the
// value cannot be shared yet). Plain access before a `go` statement in
// some other shape needs a //lint:allow atomicfield waiver — tag vetted
// single-writer sites atomicfield(audit) (LINTING.md "Audit notes").
//
// Fields are tracked by their declaring package/type/name through the
// fact store (facts.go), so a field driven atomically in internal/serve
// is protected against plain touches in every dependent package.
//
// Typed atomics (atomic.Int64, atomic.Pointer[T]) make this class of
// bug unrepresentable and are the preferred fix; the analyzer concerns
// itself with the function-style API where mixing remains possible.
var AtomicField = &Analyzer{
	Name:  "atomicfield",
	Doc:   "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:   runAtomicField,
	Facts: atomicFieldFacts,
}

// atomicFieldFacts records every struct field this package passes by
// address into a function-style sync/atomic call, keyed by declaring
// package/type/field.
func atomicFieldFacts(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFnCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if sel := addressedField(arg); sel != nil {
					if key := fieldKeyOf(pass.Info, sel); key != "" {
						pass.OwnFacts.AtomicFields[key] = true
					}
				}
			}
			return true
		})
	}
	return nil
}

func runAtomicField(pass *Pass) error {
	for _, f := range pass.Files {
		// Selector nodes that are the &field argument of an atomic call:
		// these are the sanctioned accesses.
		sanctioned := make(map[*ast.SelectorExpr]bool)
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isAtomicFnCall(pass.Info, call) {
				for _, arg := range call.Args {
					if sel := addressedField(arg); sel != nil {
						sanctioned[sel] = true
					}
				}
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key := fieldKeyOf(pass.Info, sel)
			if key == "" || !fieldIsAtomic(pass, key) {
				return true
			}
			// Single-goroutine-init idiom: the struct value is a local of
			// the enclosing function (parameters and receivers live in
			// the func type, outside the body, so they don't qualify),
			// meaning nothing else can observe the plain access yet.
			if base := baseIdent(sel.X); base != nil {
				obj := pass.Info.ObjectOf(base)
				if fn := enclosingFunc(stack); fn != nil && declaredWithin(obj, funcBody(fn)) {
					return true
				}
			}
			pass.Reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere; this plain access races with the atomic users — use atomic.Load/Store (or migrate the field to a typed atomic)", shortKey(key))
			return true
		})
	}
	return nil
}

// fieldIsAtomic reports whether any analyzed package (this one included)
// recorded an atomic access to the field key.
func fieldIsAtomic(pass *Pass, key string) bool {
	if pass.OwnFacts.AtomicFields[key] {
		return true
	}
	for _, pf := range pass.Facts.Pkgs {
		if pf.AtomicFields[key] {
			return true
		}
	}
	return false
}

// isAtomicFnCall reports whether the call invokes a function-style
// sync/atomic operation (atomic.AddUint64, atomic.LoadPointer, ...).
// Methods on the typed atomics have a receiver and are excluded: they
// cannot mix with plain access in the first place.
func isAtomicFnCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedField returns the field selector inside an &x.f argument, or
// nil.
func addressedField(arg ast.Expr) *ast.SelectorExpr {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(un.X).(*ast.SelectorExpr)
	return sel
}
