package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
)

// Cross-package fact plumbing for the resource-discipline analyzers
// (arenaescape, poolpair, atomicfield). A fact is a function or field
// summary one package exports so its dependents can be checked without
// re-analyzing the dependency: "Linear.Infer returns arena-backed
// memory", "GetBuf hands out a pooled value", "Counter.n is accessed
// atomically". Facts flow in dependency order — the drivers analyze a
// package's imports first (topologically in standalone mode, via the go
// command's .vetx files in vet mode) — so a helper in internal/nn
// propagates its contract to call sites in widedeep, serve, and rl.

// A FactStore holds the fact summaries of every package analyzed so
// far, keyed by import path. The zero value is not usable; call
// NewFactStore.
type FactStore struct {
	Pkgs map[string]*PackageFacts
}

// PackageFacts is one package's exported summaries. All maps use
// package-local keys (see funcFactKey); the enclosing FactStore key
// carries the package path.
type PackageFacts struct {
	// ArenaReturns maps a function key to the result indices that are
	// backed by the *nn.Arena the function takes as a parameter (or
	// receiver). Callers treat those results as arena-carved memory.
	ArenaReturns map[string][]int `json:",omitempty"`
	// PoolGetters maps a function key to the pool it hands values out
	// of: the function's first result may come from that pool's Get and
	// must eventually be returned to it.
	PoolGetters map[string]string `json:",omitempty"`
	// PoolPutters maps a function key to the pool its parameter is
	// returned to.
	PoolPutters map[string]PutterFact `json:",omitempty"`
	// AtomicFields is the set of struct-field keys (Type.Field) the
	// package accesses through sync/atomic functions; every other
	// access to those fields, in any package, must be atomic too.
	AtomicFields map[string]bool `json:",omitempty"`
}

// A PutterFact records that calling the function returns parameter
// Param to pool Pool (so the call balances a Get from the same pool).
type PutterFact struct {
	Pool  string
	Param int
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{Pkgs: make(map[string]*PackageFacts)}
}

// Pkg returns the (created on demand) fact set for the package path.
func (s *FactStore) Pkg(path string) *PackageFacts {
	pf, ok := s.Pkgs[path]
	if !ok {
		pf = &PackageFacts{
			ArenaReturns: make(map[string][]int),
			PoolGetters:  make(map[string]string),
			PoolPutters:  make(map[string]PutterFact),
			AtomicFields: make(map[string]bool),
		}
		s.Pkgs[path] = pf
	}
	return pf
}

// lookup returns the fact set for path, or nil (never creating one, so
// concurrent-free read paths stay allocation-free).
func (s *FactStore) lookup(path string) *PackageFacts {
	return s.Pkgs[path]
}

// Merge folds every package fact set of other into s (other wins on
// duplicate function keys; fact extraction is deterministic, so
// duplicates are identical anyway).
func (s *FactStore) Merge(other *FactStore) {
	for path, theirs := range other.Pkgs {
		mine := s.Pkg(path)
		for k, v := range theirs.ArenaReturns {
			mine.ArenaReturns[k] = v
		}
		for k, v := range theirs.PoolGetters {
			mine.PoolGetters[k] = v
		}
		for k, v := range theirs.PoolPutters {
			mine.PoolPutters[k] = v
		}
		for k := range theirs.AtomicFields {
			mine.AtomicFields[k] = true
		}
	}
}

// EncodeFacts serializes the store for a .vetx file. encoding/json
// writes map keys sorted, so the bytes are deterministic and safe to
// feed the go command's action cache.
func EncodeFacts(s *FactStore) ([]byte, error) {
	return json.Marshal(s.Pkgs)
}

// DecodeFacts parses a .vetx payload produced by EncodeFacts. Empty
// input (the pre-facts format, or a gated-out unit) decodes to an empty
// store.
func DecodeFacts(data []byte) (*FactStore, error) {
	s := NewFactStore()
	if len(data) == 0 {
		return s, nil
	}
	if err := json.Unmarshal(data, &s.Pkgs); err != nil {
		return nil, fmt.Errorf("decode facts: %v", err)
	}
	return s, nil
}

// funcFactKey returns the package-local fact key of fn: "Name" for a
// package-level function, "Recv.Name" for a method (pointer receivers
// and value receivers share a key; a type cannot declare both).
func funcFactKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// factsForCall resolves the callee of call and returns its package fact
// set plus its package-local key, or ("", nil) when the callee is not a
// named function or has no facts recorded.
func factsForCall(pass *Pass, call *ast.CallExpr) (string, *PackageFacts) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || pass.Facts == nil {
		return "", nil
	}
	pf := pass.Facts.lookup(fn.Pkg().Path())
	if pf == nil {
		return "", nil
	}
	return funcFactKey(fn), pf
}

// enclosingNamedFunc resolves the *types.Func of the FuncDecl the stack
// is inside, or nil inside a FuncLit or at file scope.
func enclosingNamedFunc(pass *Pass, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.FuncDecl:
			fn, _ := pass.Info.ObjectOf(n.Name).(*types.Func)
			return fn
		}
	}
	return nil
}

// topoSort orders pkgs so every package follows all of its imports that
// are also in pkgs (Go's importer rejects cycles, so plain DFS is
// enough). Analyzers rely on this to see dependency facts before the
// dependent package runs.
func topoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Pkg.Path()] = p
	}
	var (
		out     []*Package
		visited = make(map[string]bool, len(pkgs))
		visit   func(p *Package)
	)
	visit = func(p *Package) {
		if visited[p.Pkg.Path()] {
			return
		}
		visited[p.Pkg.Path()] = true
		for _, imp := range p.Pkg.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
