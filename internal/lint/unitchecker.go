package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file implements the `go vet -vettool=` side of the suite: the go
// command probes the tool with -V=full for a cache key, then invokes it
// once per package unit with a JSON config file (the same contract
// golang.org/x/tools/go/analysis/unitchecker speaks). Reimplementing
// the contract on the stdlib keeps the module dependency-free while
// letting the suite ride go vet's per-package result caching.
//
// Facts ride the same protocol: each unit's .vetx output carries the
// JSON-encoded fact store (facts.go) of that package and everything
// beneath it, and PackageVetx hands a unit its dependencies' files, so
// an arena contract recorded in internal/nn reaches a call site in
// internal/serve through go vet's own dependency ordering.

// VetConfig mirrors the fields of the go command's vet.cfg files that
// the suite consumes.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit loads the unit described by the vet config file, runs the
// analyzers, and returns the diagnostics (test files excluded — go vet
// also dispatches test variants of each package, and the suite's
// contract covers non-test code only).
func RunVetUnit(analyzers []*Analyzer, cfgFile string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %v", cfgFile, err)
	}
	store, err := readDepFacts(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.VetxOnly && !isModuleUnit(&cfg) {
		// Standard-library (or otherwise foreign) dependency unit: it can
		// export no suite facts, so skip the typecheck and pass through
		// whatever its own dependencies carried.
		return nil, writeVetx(cfg.VetxOutput, store)
	}

	pkg, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx(cfg.VetxOutput, store)
		}
		return nil, err
	}
	// A VetxOnly unit contributes facts but no diagnostics — exactly the
	// fact-only package shape the standalone driver uses.
	pkg.FactOnly = cfg.VetxOnly

	diags, err := RunAnalyzersWithFacts(analyzers, []*Package{pkg}, store)
	if err != nil {
		return nil, err
	}
	kept := diags[:0]
	for _, d := range diags {
		if !isTestFile(d.Pos.Filename) {
			kept = append(kept, d)
		}
	}
	return kept, writeVetx(cfg.VetxOutput, store)
}

// isModuleUnit reports whether the unit belongs to this module (or its
// test variants): only module units are parsed for facts — typechecking
// the entire standard library from source on every vet run would defeat
// the point of export data.
func isModuleUnit(cfg *VetConfig) bool {
	return strings.HasPrefix(cfg.ImportPath, "autoview")
}

// loadUnit parses and typechecks the unit's files against its compiled
// dependencies.
func loadUnit(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	// The lookup receives canonical paths; route import paths through
	// ImportMap first.
	mapped := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		return imp.Import(path)
	})
	return checkPackage(fset, mapped, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
}

// readDepFacts merges the fact stores of every dependency vetx file the
// go command handed this unit. Empty and legacy (fact-free) files
// decode to nothing, so mixed-version build caches stay readable.
func readDepFacts(cfg *VetConfig) (*FactStore, error) {
	store := NewFactStore()
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("read facts of %s: %v", path, err)
		}
		dep, err := DecodeFacts(data)
		if err != nil {
			return nil, fmt.Errorf("decode facts of %s: %v", path, err)
		}
		store.Merge(dep)
	}
	return store, nil
}

// writeVetx writes the unit's accumulated fact store (its dependencies'
// facts plus its own) for the go command to cache and feed to
// dependents.
func writeVetx(path string, store *FactStore) error {
	if path == "" {
		return nil
	}
	data, err := EncodeFacts(store)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
