package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
)

// This file implements the `go vet -vettool=` side of the suite: the go
// command probes the tool with -V=full for a cache key, then invokes it
// once per package unit with a JSON config file (the same contract
// golang.org/x/tools/go/analysis/unitchecker speaks). Reimplementing
// the contract on the stdlib keeps the module dependency-free while
// letting the suite ride go vet's per-package result caching.

// VetConfig mirrors the fields of the go command's vet.cfg files that
// the suite consumes.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit loads the unit described by the vet config file, runs the
// analyzers, and returns the diagnostics (test files excluded — go vet
// also dispatches test variants of each package, and the suite's
// contract covers non-test code only).
func RunVetUnit(analyzers []*Analyzer, cfgFile string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %v", cfgFile, err)
	}
	if cfg.VetxOnly {
		// Dependency unit: the go command only wants this package's
		// facts. The suite exports none, so just write the vetx file.
		return nil, writeVetx(cfg.VetxOutput)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	// The lookup receives canonical paths; route import paths through
	// ImportMap first.
	mapped := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		return imp.Import(path)
	})

	pkg, err := checkPackage(fset, mapped, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx(cfg.VetxOutput)
		}
		return nil, err
	}

	scoped := analyzers[:0:0]
	for _, a := range analyzers {
		if AppliesTo(a, cfg.ImportPath) {
			scoped = append(scoped, a)
		}
	}
	diags, err := RunAnalyzers(scoped, []*Package{pkg})
	if err != nil {
		return nil, err
	}
	kept := diags[:0]
	for _, d := range diags {
		if !isTestFile(d.Pos.Filename) {
			kept = append(kept, d)
		}
	}
	return kept, writeVetx(cfg.VetxOutput)
}

// writeVetx writes the (empty — the suite exports no facts) vetx file
// the go command caches for this unit.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, nil, 0o666)
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
