package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose bodies leak the
// nondeterministic iteration order into program state: appending to a
// slice that outlives the loop, accumulating into a floating-point
// variable (FP addition is not associative, so visit order changes the
// rounding), or drawing from an RNG (the per-iteration draw sequence
// becomes order-dependent). Any of these silently breaks the repo's
// golden-loss traces.
//
// The canonical fix — collect the keys, sort, then iterate the sorted
// slice — is recognized: appends are tolerated when the target slice is
// later passed to a sort.* / slices.Sort* call in the same function.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map-range loops that leak iteration order into slices, float accumulators, or RNG draws",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.Info.TypeOf(rng.X); t == nil || !isMapType(t) {
				return true
			}
			checkMapRangeBody(pass, rng, enclosingFunc(stack))
			return true
		})
	}
	return nil
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, fn ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// append(s, ...) into a slice that outlives the loop.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if root, name := rootIdent(n.Args[0]); root != nil {
						obj := pass.Info.ObjectOf(root)
						if obj != nil && !declaredWithin(obj, rng) && !sortedLater(pass, fn, obj, rng.End()) {
							pass.Reportf(n.Pos(), "append to %s inside a map-range loop records the nondeterministic iteration order; sort the keys first (or sort %s afterwards)", name, name)
						}
					}
				}
				return true
			}
			// A draw from an explicitly seeded RNG is still
			// order-dependent when the draw sequence follows map order.
			if fn := calleeFunc(pass.Info, n); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isRandRand(sig.Recv().Type()) {
					pass.Reportf(n.Pos(), "RNG draw inside a map-range loop makes the draw sequence follow the nondeterministic iteration order; iterate sorted keys instead")
				}
			}
		case *ast.AssignStmt:
			checkFloatAccum(pass, n, rng)
		}
		return true
	})
}

// checkFloatAccum flags `acc += x`, `acc -= x`, `acc *= x`, `acc /= x`,
// and `acc = acc + x`-style statements where acc is a floating-point
// variable declared outside the loop.
func checkFloatAccum(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) {
	for i, lhs := range assign.Lhs {
		root, name := rootIdent(lhs)
		if root == nil {
			continue
		}
		obj := pass.Info.ObjectOf(root)
		t := pass.Info.TypeOf(lhs)
		if obj == nil || t == nil || declaredWithin(obj, rng) || !isFloat(t) {
			continue
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			pass.Reportf(assign.Pos(), "floating-point accumulation into %s inside a map-range loop is order-dependent (FP addition is not associative); iterate sorted keys instead", name)
		case token.ASSIGN:
			if i < len(assign.Rhs) && mentionsObject(pass.Info, assign.Rhs[i], obj) {
				pass.Reportf(assign.Pos(), "floating-point accumulation into %s inside a map-range loop is order-dependent (FP addition is not associative); iterate sorted keys instead", name)
			}
		}
	}
}

// rootIdent resolves an append target to its base identifier: `s` for
// plain slices, `f` for field chains like f.Schema (with the rendered
// chain as name). Index/call roots return nil.
func rootIdent(expr ast.Expr) (*ast.Ident, string) {
	name := ""
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e, e.Name + name
		case *ast.SelectorExpr:
			name = "." + e.Sel.Name + name
			expr = e.X
		default:
			return nil, ""
		}
	}
}

// mentionsObject reports whether expr references obj.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// sortedLater reports whether, after pos in fn, the slice object is
// passed to a sort.* or slices.Sort* function — the sorted-keys idiom
// that restores determinism.
func sortedLater(pass *Pass, fn ast.Node, slice types.Object, pos token.Pos) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || sorted {
			return !sorted
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		pkg := callee.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass.Info, arg, slice) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
