package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd checks that every span opened with obs.StartSpan (package
// function or (*obs.Registry).StartSpan method) is completed: the
// returned stop closure must be deferred or called. A started-but-never
// -ended span records nothing — the histogram silently loses the stage
// — which is exactly the failure mode OBSERVABILITY.md's catalog is
// meant to rule out.
//
// Accepted shapes:
//
//	defer obs.StartSpan("x")()          // canonical
//	stop := obs.StartSpan("x"); ... stop()  // or defer stop()
//
// Flagged shapes:
//
//	obs.StartSpan("x")       // stop closure discarded
//	_ = obs.StartSpan("x")   // ditto, explicitly
//	stop := obs.StartSpan("x") // stop never called on any path
//
// A stop closure that escapes (stored in a struct, passed along,
// returned) is assumed handled.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every obs.StartSpan span must be ended on all paths, normally by defer",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isStartSpanCall(pass.Info, call) {
				return true
			}
			checkSpanUse(pass, call, stack)
			return true
		})
	}
	return nil
}

// isStartSpanCall matches obs.StartSpan(...) and r.StartSpan(...) for
// *obs.Registry r.
func isStartSpanCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "StartSpan" || !isObsPkg(fn.Pkg()) {
		return false
	}
	return true
}

func checkSpanUse(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of StartSpan is discarded, so the span is never ended; use `defer %s()`", exprString(call))
	case *ast.CallExpr:
		// `obs.StartSpan("x")()` — the span is ended (immediately,
		// which is odd but balanced) or the closure is an argument and
		// escapes; either way it is accounted for.
	case *ast.DeferStmt, *ast.GoStmt:
		// `defer obs.StartSpan("x")` defers the *start* and discards
		// the stop closure — almost certainly a missing trailing ().
		pass.Reportf(call.Pos(), "result of StartSpan is discarded, so the span is never ended; did you mean `defer %s()`?", exprString(call))
	case *ast.AssignStmt:
		checkSpanAssign(pass, call, parent, stack)
	default:
		// defer obs.StartSpan("x")() reaches here as the CallExpr case
		// (the deferred call's Fun); other contexts (return, composite
		// literal, channel send) let the closure escape — assume the
		// receiver ends it.
	}
}

func checkSpanAssign(pass *Pass, call *ast.CallExpr, assign *ast.AssignStmt, stack []ast.Node) {
	// Locate which LHS receives the stop closure.
	idx := -1
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == call {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(assign.Lhs) {
		return
	}
	lhs, ok := ast.Unparen(assign.Lhs[idx]).(*ast.Ident)
	if !ok {
		return // stored through a field or index: escapes, assume handled
	}
	if lhs.Name == "_" {
		pass.Reportf(call.Pos(), "stop closure of StartSpan assigned to _, so the span is never ended")
		return
	}
	obj := pass.Info.ObjectOf(lhs)
	fn := enclosingFunc(stack)
	if obj == nil || fn == nil {
		return
	}
	if !stopUsed(pass.Info, funcBody(fn), obj, lhs) {
		pass.Reportf(call.Pos(), "stop closure %s of StartSpan is never called, so the span is never ended; add `defer %s()`", lhs.Name, lhs.Name)
	}
}

// stopUsed reports whether the stop-closure object is called, deferred,
// or escapes (any use other than its defining identifier counts as
// potentially ending the span; the compiler already rejects fully
// unused variables, so the interesting case is zero uses besides
// re-assignment).
func stopUsed(info *types.Info, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	if body == nil {
		return true
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || info.ObjectOf(id) != obj {
			return !used
		}
		used = true
		return false
	})
	return used
}

func exprString(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name + "(...)"
		}
	}
	return "StartSpan(...)"
}
