package lint

import (
	"go/ast"
	"go/types"
)

// ArenaEscape checks the lifetime contract of nn.Arena scratch memory
// (PERFORMANCE.md "Arena discipline"): a slice carved from an arena —
// Arena.Vec / Vec32 / Vecs / Mat, anything derived from one by slicing
// or row indexing, and anything a helper with an arena parameter hands
// back — is valid only until the owner's next Reset. Storing such a
// slice where it outlives the prediction (a struct field, a package
// variable, a channel) or returning it from a function that does not
// take the arena as a parameter silently serves one request's
// activations to another once the arena rewinds.
//
// Flagged shapes:
//
//	s.buf = a.Vec(n)                 // field store outlives Reset
//	global = a.Vec(n)[:2]            // derived slice, same memory
//	ch <- m.Enc.InferPlan(p, a)      // helper result is arena-backed
//	func f() nn.Vec {                // no arena parameter: the arena's
//	    a := pool.Get().(*nn.Arena)  // owner resets it after f returns
//	    return a.Vec(4)
//	}
//
// Conforming shapes:
//
//	func carve(a *nn.Arena, n int) nn.Vec { return a.Vec(n) }
//	    // arena flows in, so the caller owns the lifetime; the
//	    // function exports a "returns arena-backed memory" fact and
//	    // its call sites are checked instead
//	x := v[0]                        // scalar loads copy the value
//
// The analysis is an intra-procedural forward dataflow over go/types
// with function-summary facts: helpers in internal/nn (and any package)
// that return arena-backed memory propagate taint to their callers in
// widedeep, serve, and rl through the fact store (facts.go). Bodies of
// Arena's own methods are the implementation and are skipped.
var ArenaEscape = &Analyzer{
	Name:  "arenaescape",
	Doc:   "arena-carved memory must not outlive the arena's Reset (no field/global/channel stores, no returns without the arena as a parameter)",
	Run:   runArenaEscape,
	Facts: arenaEscapeFacts,
}

// arenaCarvers are the Arena methods that hand out carved memory.
var arenaCarvers = map[string]bool{"Vec": true, "Vec32": true, "Vecs": true, "Mat": true}

// arenaEscapeFacts records, for every function with an *nn.Arena
// parameter (or receiver), which result indices return arena-backed
// memory. Helpers chain (MLP.Infer returns Linear.Infer's result), so
// extraction iterates to a fixpoint within the package; cross-package
// chains resolve through dependency-order driving.
func arenaEscapeFacts(pass *Pass) error {
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || isArenaMethod(pass, fd) {
					continue
				}
				fn, _ := pass.Info.ObjectOf(fd.Name).(*types.Func)
				if fn == nil || !funcTakesArena(fn) {
					continue
				}
				a := newArenaFlow(pass, fd.Body)
				key := funcFactKey(fn)
				for _, idx := range a.taintedReturns() {
					if addResultIndex(pass.OwnFacts.ArenaReturns, key, idx) {
						changed = true
					}
				}
			}
		}
	}
	return nil
}

func runArenaEscape(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isArenaMethod(pass, fd) {
				continue
			}
			takesArena := false
			if fn, ok := pass.Info.ObjectOf(fd.Name).(*types.Func); ok {
				takesArena = funcTakesArena(fn)
			}
			checkArenaScope(pass, fd.Body, takesArena)
			// Function literals are their own scopes: a captured arena
			// slice crossing the closure boundary is out of reach for
			// this intra-procedural pass, but carving and leaking
			// entirely inside the literal is not.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					litTakes := false
					if sig, ok := pass.Info.TypeOf(lit).(*types.Signature); ok {
						for i := 0; i < sig.Params().Len(); i++ {
							if isNNArena(sig.Params().At(i).Type()) {
								litTakes = true
							}
						}
					}
					checkArenaScope(pass, lit.Body, litTakes)
				}
				return true
			})
		}
	}
	return nil
}

// checkArenaScope runs the taint analysis over one function body and
// reports every escape sink. takesArena says whether the scope receives
// the arena as a parameter, which decides whether tainted returns are a
// recorded fact or a violation.
func checkArenaScope(pass *Pass, body *ast.BlockStmt, takesArena bool) {
	a := newArenaFlow(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are separate scopes
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			a.checkAssignSinks(n)
		case *ast.SendStmt:
			if a.tainted(n.Value) {
				pass.Reportf(n.Value.Pos(), "arena-backed slice sent on a channel outlives the arena's Reset; copy it first")
			}
		case *ast.ReturnStmt:
			if takesArena {
				return true // recorded as a fact, checked at call sites
			}
			for _, res := range n.Results {
				if a.tainted(res) {
					pass.Reportf(res.Pos(), "returns arena-backed memory from a function without an arena parameter; the slice is dead after the owner's next Reset — copy it or take the arena as a parameter")
				}
			}
		}
		return true
	})
}

// isArenaMethod reports whether the declaration is a method of nn.Arena
// itself (the implementation owns its internals).
func isArenaMethod(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	if t := pass.Info.TypeOf(fd.Recv.List[0].Type); t != nil {
		return isNNArena(t)
	}
	return false
}

// funcTakesArena reports whether fn has an *nn.Arena parameter or
// receiver — the helper shape whose returns become facts, not findings.
func funcTakesArena(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && isNNArena(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isNNArena(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// addResultIndex records idx under key, reporting whether the set grew.
func addResultIndex(m map[string][]int, key string, idx int) bool {
	for _, have := range m[key] {
		if have == idx {
			return false
		}
	}
	m[key] = append(m[key], idx)
	return true
}

// arenaFlow is the per-scope taint state: the set of local variables
// holding arena-backed memory, computed to a fixpoint over the body's
// assignments.
type arenaFlow struct {
	pass     *Pass
	body     *ast.BlockStmt
	taintSet map[types.Object]bool
}

func newArenaFlow(pass *Pass, body *ast.BlockStmt) *arenaFlow {
	a := &arenaFlow{pass: pass, body: body, taintSet: make(map[types.Object]bool)}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if a.propagateAssign(assign) {
				changed = true
			}
			return true
		})
		// Range statements over tainted []Vec bind tainted rows.
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.Value == nil || !a.tainted(rng.X) {
				return true
			}
			if id, ok := ast.Unparen(rng.Value).(*ast.Ident); ok && sliceTyped(a.pass.Info.TypeOf(id)) {
				if obj := a.pass.Info.ObjectOf(id); obj != nil && !a.taintSet[obj] {
					a.taintSet[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return a
}

// propagateAssign marks locals assigned arena-backed values, reporting
// whether the taint set grew.
func (a *arenaFlow) propagateAssign(assign *ast.AssignStmt) bool {
	changed := false
	mark := func(lhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := a.pass.Info.ObjectOf(id)
		if obj == nil || isPackageLevel(obj) || a.taintSet[obj] {
			return
		}
		a.taintSet[obj] = true
		changed = true
	}
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Tuple assignment from one call: taint index-wise via facts.
		if call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); ok {
			for _, idx := range a.arenaResultIndices(call) {
				if idx < len(assign.Lhs) {
					mark(assign.Lhs[idx])
				}
			}
		}
		return changed
	}
	for i, rhs := range assign.Rhs {
		if i < len(assign.Lhs) && a.tainted(rhs) {
			mark(assign.Lhs[i])
		}
	}
	return changed
}

// checkAssignSinks reports assignments that store a tainted value where
// it outlives the arena: struct fields, package-level variables, and
// elements of either.
func (a *arenaFlow) checkAssignSinks(assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		rhs := assign.Rhs[0]
		if len(assign.Rhs) > 1 {
			if i >= len(assign.Rhs) {
				continue
			}
			rhs = assign.Rhs[i]
		} else if len(assign.Lhs) > 1 {
			// Tuple call: sinks require per-index taint.
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !containsIndex(a.arenaResultIndices(call), i) {
				continue
			}
			a.reportSink(lhs)
			continue
		}
		if !a.tainted(rhs) {
			continue
		}
		a.reportSink(lhs)
	}
}

func (a *arenaFlow) reportSink(lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if fieldKeyOf(a.pass.Info, l) != "" {
			a.pass.Reportf(l.Pos(), "arena-backed slice stored in struct field %s outlives the arena's Reset; copy it or carve from the heap", l.Sel.Name)
		}
	case *ast.Ident:
		if obj := a.pass.Info.ObjectOf(l); isPackageLevel(obj) {
			a.pass.Reportf(l.Pos(), "arena-backed slice stored in package variable %s outlives the arena's Reset; copy it or carve from the heap", l.Name)
		}
	case *ast.IndexExpr:
		// Element store into a container that itself escapes (field or
		// global): same lifetime bug one level down.
		if base := baseIdent(l.X); base != nil {
			if obj := a.pass.Info.ObjectOf(base); isPackageLevel(obj) {
				a.pass.Reportf(l.Pos(), "arena-backed slice stored in package-level container %s outlives the arena's Reset; copy it first", base.Name)
				return
			}
		}
		if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok && fieldKeyOf(a.pass.Info, sel) != "" && !a.tainted(l.X) {
			a.pass.Reportf(l.Pos(), "arena-backed slice stored in struct field %s outlives the arena's Reset; copy it first", sel.Sel.Name)
		}
	}
}

// tainted reports whether the expression evaluates to arena-backed
// memory.
func (a *arenaFlow) tainted(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := a.pass.Info.ObjectOf(e)
		return obj != nil && a.taintSet[obj]
	case *ast.CallExpr:
		if isArenaCarveCall(a.pass.Info, e) {
			return true
		}
		if indices := a.arenaResultIndices(e); containsIndex(indices, 0) && singleResult(a.pass.Info, e) {
			return true
		}
		// append taints when it can keep arena-backed memory alive: a
		// tainted destination may be grown in place, and a tainted
		// slice stored as an element keeps its header. Spreading with
		// `append(dst, src...)` copies src's elements, which detaches
		// scalars (but not element slices — their headers are copied).
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := a.pass.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				if a.tainted(e.Args[0]) {
					return true
				}
				for _, arg := range e.Args[1:] {
					if !a.tainted(arg) {
						continue
					}
					if e.Ellipsis.IsValid() && arg == e.Args[len(e.Args)-1] {
						if st, ok := a.pass.Info.TypeOf(arg).Underlying().(*types.Slice); ok && sliceTyped(st.Elem()) {
							return true
						}
						continue
					}
					return true
				}
			}
		}
		return false
	case *ast.SliceExpr:
		return a.tainted(e.X)
	case *ast.IndexExpr:
		// Rows of a carved []Vec stay arena memory; scalar element
		// loads copy the value out.
		return a.tainted(e.X) && sliceTyped(a.pass.Info.TypeOf(e))
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if a.tainted(elt) {
				return true
			}
		}
	}
	return false
}

// taintedReturns lists result indices returned tainted anywhere in the
// body (for fact extraction in arena-parameter helpers).
func (a *arenaFlow) taintedReturns() []int {
	var out []int
	ast.Inspect(a.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if a.tainted(res) && !containsIndex(out, i) {
				out = append(out, i)
			}
		}
		return true
	})
	return out
}

// arenaResultIndices returns the result indices of the call that carry
// arena-backed memory according to the callee's fact.
func (a *arenaFlow) arenaResultIndices(call *ast.CallExpr) []int {
	key, pf := factsForCall(a.pass, call)
	if pf == nil {
		return nil
	}
	return pf.ArenaReturns[key]
}

// isArenaCarveCall matches a.Vec(n) / a.Vec32(n) / a.Vecs(n) /
// a.Mat(t, d) on an nn.Arena receiver.
func isArenaCarveCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !arenaCarvers[fn.Name()] || !isNNPkg(fn.Pkg()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isNNArena(sig.Recv().Type())
}

// sliceTyped reports whether t is a slice (arena taint rides the
// backing array; scalars copy out).
func sliceTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func singleResult(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	_, isTuple := tv.Type.(*types.Tuple)
	return !isTuple
}

func containsIndex(s []int, idx int) bool {
	for _, v := range s {
		if v == idx {
			return true
		}
	}
	return false
}
