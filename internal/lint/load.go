package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// FactOnly marks a dependency loaded just so its fact summaries
	// (facts.go) reach the target packages; it contributes no
	// diagnostics of its own.
	FactOnly bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (with their full dependency
// graph) via `go list -export -json -deps`, then parses and type-checks
// each matched package from source. Imports — standard library and
// intra-module alike — resolve through the compiler export data the
// -export flag materializes in the build cache, so loading needs no
// network and no dependency-order bookkeeping. Test files are excluded
// (GoFiles never contains them).
//
// Module-internal dependencies that match no pattern are loaded too,
// marked FactOnly: the fact-producing analyzers (facts.go) need their
// function summaries even when only a dependent package is being
// checked (`bin/autoviewlint ./internal/serve` must still know which
// internal/nn helpers return arena-backed memory). Standard-library
// dependencies export no facts and stay export-data-only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly || !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.FactOnly = t.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// checkPackage parses files (absolute or relative to dir) and
// type-checks them as the package at importPath.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{Fset: fset, Files: asts, Pkg: pkg, Info: info}, nil
}

// isTestFile reports whether the file name is a _test.go file. GoFiles
// never lists them, but vet configs can.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
