// Package bufpool exports pool getter/putter facts consumed by the app
// package across the vet unit boundary.
package bufpool

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuf hands out a pooled buffer; callers must PutBuf it.
func GetBuf() *[]byte { return pool.Get().(*[]byte) }

// PutBuf returns b to the pool.
func PutBuf(b *[]byte) { pool.Put(b) }
