// Package app violates the cross-package contracts exported by enc and
// bufpool. Both findings require facts to have traveled through the go
// command's .vetx plumbing — an intra-package analysis cannot see
// either one.
package app

import (
	"errors"

	"autoviewvet/internal/bufpool"
	"autoviewvet/internal/enc"
	"autoviewvet/internal/nn"
)

var global nn.Vec

var errOops = errors.New("oops")

// StoreEmbedding stores enc.Embed's arena-backed result in a global.
func StoreEmbedding(a *nn.Arena) {
	global = enc.Embed(a, 4)
}

// UseBuf leaks the pooled buffer on the error path.
func UseBuf(fail bool) error {
	b := bufpool.GetBuf()
	if fail {
		return errOops
	}
	bufpool.PutBuf(b)
	return nil
}
