// Package enc exports an arena-helper fact: Embed returns arena-backed
// memory. The app package consumes the fact through the .vetx files
// the go command shuttles between vet units.
package enc

import "autoviewvet/internal/nn"

// Embed hands back memory carved from a; the caller owns the lifetime.
func Embed(a *nn.Arena, n int) nn.Vec { return a.Vec(n) }
