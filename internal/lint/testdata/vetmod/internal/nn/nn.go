// Package nn shims the arena surface for the vet-driver end-to-end
// test (TestVetToolCrossPackage): the module path ends in internal/nn,
// so the analyzers treat it as the real thing.
package nn

// Vec mirrors nn.Vec.
type Vec []float64

// Arena mirrors the bump arena's carving surface.
type Arena struct{ used int }

// NewArena mirrors nn.NewArena.
func NewArena() *Arena { return &Arena{} }

// Vec mirrors (*Arena).Vec.
func (a *Arena) Vec(n int) Vec { a.used += n; return make(Vec, n) }

// Reset mirrors (*Arena).Reset.
func (a *Arena) Reset() { a.used = 0 }
