module autoviewvet

go 1.24
