// Fixtures for the atomicfield analyzer.
package atomicfield

import (
	"sync/atomic"

	"atomdep"
)

type gauge struct {
	val  int64
	name string
}

// The atomic writer that puts val under the atomic regime.
func (g *gauge) bump() { atomic.AddInt64(&g.val, 1) }

// Plain read racing the atomic writer.
func (g *gauge) read() int64 {
	return g.val // want `plain access races`
}

// Plain write races the same way.
func (g *gauge) resetRacy() {
	g.val = 0 // want `plain access races`
}

// Plain read-modify-write is the worst of both.
func (g *gauge) bumpRacy() {
	g.val++ // want `plain access races`
}

// Cross-package: atomdep drives Counter.Hits atomically; a plain read
// here races it. The field's regime rides facts.
func Total(c *atomdep.Counter) uint64 {
	return c.Hits // want `accessed via sync/atomic elsewhere`
}

// Guard: atomic access is the sanctioned mode, in-package and cross.
func (g *gauge) readAtomic() int64 { return atomic.LoadInt64(&g.val) }

// IncTotal bumps the cross-package counter atomically.
func IncTotal(c *atomdep.Counter) { atomic.AddUint64(&c.Hits, 1) }

// Guard: fields never touched atomically stay unconstrained.
func (g *gauge) title() string { return g.name }

// Guard: same field name on an unrelated type is a different field.
type other struct{ val int64 }

func (o *other) touch() { o.val++ }

// Guard: single-goroutine-init idiom — the struct is function-local,
// so nothing can observe the plain write yet.
func newGauge(v int64) *gauge {
	g := &gauge{}
	g.val = v
	return g
}

// A single-writer restore through a parameter is not the recognized
// idiom; vetted sites are waived with the audit tag.
func restore(g *gauge, v int64) {
	//lint:allow atomicfield(audit) single-writer restore before serving starts
	g.val = v
}
