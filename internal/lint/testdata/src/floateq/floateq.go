// Fixtures for the floateq analyzer.
package floateq

func exact(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func neq(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func mixedConst(x float64) bool {
	return x == 0.5 // want `floating-point == comparison`
}

// Guard: the NaN self-test is the one meaningful exact comparison.
func nanCheck(x float64) bool {
	return x != x
}

// Guard: two compile-time constants fold exactly.
func constants() bool {
	const eps = 1e-9
	return eps == 1e-9
}

// Guard: integer comparisons are exact by nature.
func ints(a, b int) bool {
	return a == b
}

// Guard: a documented sentinel may be suppressed in place.
func sentinel(x float64) bool {
	return x == 0 //lint:allow floateq zero is the never-computed unset sentinel
}
