// Package atomdep is a fixture dependency for atomicfield: its
// Counter.Hits field is driven through function-style sync/atomic
// calls, exporting an "accessed atomically" fact that protects the
// field against plain touches in dependent packages.
package atomdep

import "sync/atomic"

// Counter counts hits; Hits is only ever touched atomically here.
type Counter struct {
	Hits uint64
	Name string
}

// Inc bumps the counter.
func (c *Counter) Inc() { atomic.AddUint64(&c.Hits, 1) }

// Load reads the counter.
func (c *Counter) Load() uint64 { return atomic.LoadUint64(&c.Hits) }
