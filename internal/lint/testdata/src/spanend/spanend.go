// Fixtures for the spanend analyzer.
package spanend

import "obs"

func discarded() {
	obs.StartSpan("parse") // want `never ended`
}

func blank() {
	_ = obs.StartSpan("parse") // want `never ended`
}

func deferredStart() {
	defer obs.StartSpan("parse") // want `never ended`
}

func registryDiscard(r *obs.Registry) {
	r.StartSpan("exec") // want `never ended`
}

// Guard: the canonical deferred stop.
func canonical() {
	defer obs.StartSpan("parse")()
}

// Guard: stop held in a variable and called on the way out.
func stopVar() {
	stop := obs.StartSpan("parse")
	work()
	stop()
}

// Guard: stop deferred from a variable.
func stopDefer(r *obs.Registry) {
	stop := r.StartSpan("exec")
	defer stop()
	work()
}

// Guard: the closure escapes to the caller, which owns ending it.
func escapes() func() {
	return obs.StartSpan("parse")
}

// Guard: obs.Time brackets the span itself.
func timed() {
	obs.Time("parse", work)
}

func work() {}
