// Fixtures for the errdiscard analyzer.
package errdiscard

import (
	"bytes"
	"errors"
	"fmt"
)

func mightFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func dropped() {
	mightFail() // want `silently discarded`
}

func droppedGo() {
	go mightFail() // want `silently discarded`
}

func droppedDefer() {
	defer mightFail() // want `silently discarded`
}

func droppedPair() {
	pair() // want `silently discarded`
}

// Guard: explicit blank discards are visible and greppable.
func explicit() {
	_ = mightFail()
	n, _ := pair()
	_ = n
}

// Guard: `_ = err` is the intentional-discard idiom.
func intentional() {
	err := mightFail()
	_ = err
}

// Guard: *bytes.Buffer writes are documented to never fail.
func buffers(b *bytes.Buffer) {
	b.WriteString("x")
	fmt.Fprintf(b, "%d", 1)
}

// Guard: handled errors are handled.
func handled() error {
	if err := mightFail(); err != nil {
		return err
	}
	return nil
}
