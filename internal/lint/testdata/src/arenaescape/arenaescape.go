// Fixtures for the arenaescape analyzer.
package arenaescape

import (
	"arenahelp"
	"nn"
)

type model struct {
	buf  nn.Vec
	rows []nn.Vec
}

var global nn.Vec

var registry = map[string]nn.Vec{}

var resultCh = make(chan nn.Vec, 1)

// Field stores outlive Reset even when the arena flows in.
func fieldStore(m *model, a *nn.Arena) {
	m.buf = a.Vec(8) // want `struct field buf`
}

func globalStore(a *nn.Arena) {
	global = a.Vec(8) // want `package variable global`
}

// Taint rides derived slices.
func derivedStore(a *nn.Arena) {
	v := a.Vec(8)
	global = v[:4] // want `package variable global`
}

func rowStore(m *model, a *nn.Arena) {
	vs := a.Vecs(4)
	m.rows = vs // want `struct field rows`
}

func mapStore(a *nn.Arena) {
	registry["x"] = a.Vec(8) // want `package-level container registry`
}

func channelSend(a *nn.Arena) {
	resultCh <- a.Vec(8) // want `sent on a channel`
}

// Rows produced by ranging over a carved []Vec stay arena memory.
func rangeRows(m *model, a *nn.Arena) {
	for _, row := range a.Vecs(3) {
		m.buf = row // want `struct field buf`
	}
}

// Returning carved memory without the arena as a parameter: the owner
// resets the arena after we return.
func leakReturn() nn.Vec {
	a := nn.NewArena()
	return a.Vec(8) // want `without an arena parameter`
}

// Cross-package fact: arenahelp.Carve's result is arena-backed.
func leakViaHelper() nn.Vec {
	a := nn.NewArena()
	return arenahelp.Carve(a, 8) // want `without an arena parameter`
}

// Chained cross-package fact (CarveChain returns Carve's result).
func leakViaChain(m *model) {
	a := nn.NewArena()
	m.buf = arenahelp.CarveChain(a, 8) // want `struct field buf`
}

// Tuple results taint index-wise: only index 0 is arena-backed.
func tupleTaint(a *nn.Arena) {
	v, n := arenahelp.CarveTwo(a, 8)
	global = v // want `package variable global`
	_ = n
}

// Function literals are their own scopes with the same rules.
func inLiteral() nn.Vec {
	f := func() nn.Vec {
		a := nn.NewArena()
		return a.Vec(4) // want `without an arena parameter`
	}
	return f()
}

// Guard: a helper that takes the arena exports a fact instead of a
// finding — the caller owns the lifetime.
func carveLocal(a *nn.Arena, n int) nn.Vec {
	return a.Vec(n)
}

// Guard: a literal that takes the arena is the same helper shape.
func litWithArena() {
	carve := func(a *nn.Arena) nn.Vec { return a.Vec(4) }
	a := nn.NewArena()
	_ = carve(a)
}

// Guard: scalar element loads copy the value out of the arena.
var lastScalar float64

func scalarOut(a *nn.Arena) {
	lastScalar = a.Vec(4)[0]
}

// Guard: copying into heap memory detaches from the arena.
func copyOut(a *nn.Arena) {
	dst := make(nn.Vec, 8)
	copy(dst, a.Vec(8))
	global = dst
}

// Guard: spreading scalars with append copies them to the heap.
func appendOut(a *nn.Arena) {
	var dst nn.Vec
	dst = append(dst, a.Vec(8)...)
	global = dst
}
