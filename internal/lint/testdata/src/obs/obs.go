// Package obs is a minimal shim of autoview/internal/obs for the
// spanend fixtures: same names, no behavior.
package obs

// Registry mirrors the real registry's span surface.
type Registry struct{}

// StartSpan mirrors obs.StartSpan.
func StartSpan(name string) func() { return func() { _ = name } }

// StartSpan mirrors (*obs.Registry).StartSpan.
func (r *Registry) StartSpan(name string) func() { return func() { _ = name } }

// Time mirrors obs.Time.
func Time(name string, fn func()) { fn() }
