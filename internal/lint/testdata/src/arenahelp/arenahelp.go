// Package arenahelp is a fixture dependency for arenaescape: helpers
// that take an arena and hand back carved memory. Each exports a
// "returns arena-backed memory" fact that the arenaescape fixture
// package consumes across the package boundary.
package arenahelp

import "nn"

// Carve returns memory carved from a; the caller owns the lifetime.
func Carve(a *nn.Arena, n int) nn.Vec { return a.Vec(n) }

// CarveChain returns Carve's result, proving facts chain through
// in-package helpers during fixpoint extraction.
func CarveChain(a *nn.Arena, n int) nn.Vec { return Carve(a, n) }

// CarveTwo returns carved memory at result index 0 and a plain count
// at index 1, exercising index-precise facts.
func CarveTwo(a *nn.Arena, n int) (nn.Vec, int) { return a.Vec(n), n }
