// Fixtures for the randsource analyzer.
package randsource

import (
	"math/rand"
	"time"
)

func ambient() int {
	return rand.Intn(10) // want `ambient rand.Intn`
}

func ambientValue() func() float64 {
	return rand.Float64 // want `ambient rand.Float64`
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-seeded RNG`
}

// Guard: explicitly seeded construction and draws are the sanctioned
// pattern and must not be flagged.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Guard: a seed derived from anything but the wall clock is fine.
func derivedSeed(base int64) *rand.Rand {
	return rand.New(rand.NewSource(base + 7))
}
