// Fixtures for the poolpair analyzer.
package poolpair

import (
	"errors"
	"sync"

	"poolutil"
)

type buffer struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buffer) }}

var errBoom = errors.New("boom")

const maxRetain = 1 << 12

// Leak on the early-error path.
func earlyReturnLeak(fail bool) error {
	s := pool.Get().(*buffer)
	if fail {
		return errBoom // want `not returned to the pool on this path`
	}
	pool.Put(s)
	return nil
}

// Falling off the end without a Put reports at the Get.
func fallOffLeak() {
	s := pool.Get().(*buffer) // want `never reaches a Put`
	s.b = s.b[:0]
}

// The result discarded outright.
func discarded() {
	pool.Get() // want `is discarded`
}

func blanked() {
	_ = pool.Get() // want `assigned to _`
}

// A switch without a default leaks on the implicit fall-through.
func switchLeak(mode int) {
	s := pool.Get().(*buffer) // want `never reaches a Put`
	switch mode {
	case 0:
		pool.Put(s)
	}
}

// A select arm that returns without the Put leaks on that arm.
func selectLeak(done chan struct{}) {
	s := pool.Get().(*buffer)
	select {
	case <-done:
		return // want `not returned to the pool on this path`
	default:
		pool.Put(s)
	}
}

// Cross-package: poolutil.GetBuf hands out pooled memory; PutBuf
// returns it. The pairing rides facts.
func crossLeak(fail bool) error {
	b := poolutil.GetBuf()
	if fail {
		return errBoom // want `not returned to the pool on this path`
	}
	poolutil.PutBuf(b)
	return nil
}

// Guard: defer covers every exit.
func deferPut(fail bool) error {
	s := pool.Get().(*buffer)
	defer pool.Put(s)
	if fail {
		return errBoom
	}
	return nil
}

// Guard: every path Puts.
func bothPaths(fail bool) {
	s := pool.Get().(*buffer)
	if fail {
		pool.Put(s)
		return
	}
	pool.Put(s)
}

// Guard: the retention-cap drop idiom is a deliberate shed, so only
// the fall-through path owes a Put.
func capDrop() {
	s := pool.Get().(*buffer)
	if cap(s.b) > maxRetain {
		return
	}
	pool.Put(s)
}

// Guard: comma-ok Get in an if-init carries the value only into the
// then branch (the zero value on the !ok path owes nothing).
func commaOk() *buffer {
	if s, ok := pool.Get().(*buffer); ok {
		return s
	}
	return &buffer{}
}

// Guard: ownership transfer — the new owner inherits the obligation.
type server struct{ cur *buffer }

func (sv *server) adopt() {
	s := pool.Get().(*buffer)
	sv.cur = s
}

// Guard: a panic path never reaches the normal exits.
func mustHave(fail bool) {
	s := pool.Get().(*buffer)
	if fail {
		panic("boom")
	}
	pool.Put(s)
}

// Guard: a switch with a default Puts on every path.
func switchPaths(mode int) {
	s := pool.Get().(*buffer)
	switch mode {
	case 0:
		pool.Put(s)
	default:
		pool.Put(s)
	}
}

// Guard: cross-package pairing satisfied by defer.
func crossPaired() {
	b := poolutil.GetBuf()
	defer poolutil.PutBuf(b)
}

// Guard: a deliberate drop outside the cap idiom, waived and tagged
// for audit (LINTING.md "Audit notes").
func auditedDrop(oversized bool) {
	s := pool.Get().(*buffer)
	if oversized {
		//lint:allow poolpair(audit) deliberate shed under memory pressure
		return
	}
	pool.Put(s)
}
