// Package nn is a minimal shim of autoview/internal/nn for the
// arenaescape fixtures: the same carving surface, heap-backed behavior.
package nn

// Vec mirrors nn.Vec.
type Vec []float64

// Vec32 mirrors nn.Vec32.
type Vec32 []float32

// Arena mirrors the bump arena's carving surface.
type Arena struct{ used int }

// NewArena mirrors nn.NewArena.
func NewArena() *Arena { return &Arena{} }

// Vec mirrors (*Arena).Vec.
func (a *Arena) Vec(n int) Vec { a.used += n; return make(Vec, n) }

// Vec32 mirrors (*Arena).Vec32.
func (a *Arena) Vec32(n int) Vec32 { a.used += n; return make(Vec32, n) }

// Vecs mirrors (*Arena).Vecs.
func (a *Arena) Vecs(n int) []Vec { a.used += n; return make([]Vec, n) }

// Mat mirrors (*Arena).Mat.
func (a *Arena) Mat(t, d int) []Vec { a.used += t * d; return make([]Vec, t) }

// Reset mirrors (*Arena).Reset.
func (a *Arena) Reset() { a.used = 0 }
