// Fixtures for the maporder analyzer.
package maporder

import (
	"math/rand"
	"sort"
)

func appendLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out`
	}
	return out
}

type acc struct {
	vals []int
	sum  float64
}

func fieldLeak(m map[string]int, a *acc) {
	for _, v := range m {
		a.vals = append(a.vals, v) // want `append to a.vals`
		a.sum += float64(v)        // want `floating-point accumulation into a.sum`
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation into sum`
	}
	return sum
}

func rngDraw(m map[string]int, rng *rand.Rand) int {
	n := 0
	for range m {
		n += rng.Intn(3) // want `RNG draw inside a map-range loop`
	}
	return n
}

// Guard: the sorted-keys idiom — append then sort — is the canonical
// fix and must not be flagged.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Guard: the eviction-sweep idiom — collect doomed keys during the map
// range, sort.Slice them, then delete in sorted order — keeps the delete
// sequence deterministic (the serve cache sweep uses it) and must not be
// flagged.
func sweepDoomed(m map[string]int) {
	var doomed []string
	for k, v := range m {
		if v == 0 {
			doomed = append(doomed, k)
		}
	}
	sort.Slice(doomed, func(a, b int) bool { return doomed[a] < doomed[b] })
	for _, k := range doomed {
		delete(m, k)
	}
}

// The unsorted twin leaks map order into the delete sequence (and into
// anything that later reads doomed) and is flagged.
func sweepUnsorted(m map[string]int) []string {
	var doomed []string
	for k, v := range m {
		if v == 0 {
			doomed = append(doomed, k) // want `append to doomed`
		}
	}
	for _, k := range doomed {
		delete(m, k)
	}
	return doomed
}

// Guard: integer accumulation is exact, hence order-independent.
func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Guard: a slice local to the loop body never observes cross-iteration
// order.
func localAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
