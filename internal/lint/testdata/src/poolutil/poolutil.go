// Package poolutil is a fixture dependency for poolpair: a pool
// wrapped behind getter/putter helpers. GetBuf exports a "hands out
// pooled memory" fact and PutBuf a "returns parameter 0 to the pool"
// fact, so the poolpair fixture package is checked across the package
// boundary exactly like direct Get/Put calls.
package poolutil

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

const maxRetain = 1 << 16

// GetBuf hands out a pooled buffer; callers must PutBuf it.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns b to the pool, shedding oversized buffers.
func PutBuf(b *[]byte) {
	if cap(*b) > maxRetain {
		return
	}
	bufPool.Put(b)
}
