package core

import (
	"fmt"
	"math/rand"
	"runtime"

	"autoview/internal/catalog"
	"autoview/internal/costbase"
	"autoview/internal/engine"
	"autoview/internal/equiv"
	"autoview/internal/featenc"
	"autoview/internal/metrics"
	"autoview/internal/mvs"
	"autoview/internal/nn"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/rewrite"
	"autoview/internal/rl"
	"autoview/internal/selbase"
	"autoview/internal/widedeep"
)

// Pipeline metrics: per-run sizes land in gauges (last run wins), work
// done accumulates in counters. The advisor.* spans time every stage of
// Figure 3; see OBSERVABILITY.md for the full catalog.
var (
	obsRuns          = obs.Default.Counter("core.runs", "completed Advisor.Run invocations")
	obsQueries       = obs.Default.Counter("core.queries", "workload queries processed by BuildProblem")
	obsPairsMeasured = obs.Default.Counter("core.pairs.measured", "(query, view) pairs measured on the engine")
	obsViewsSelected = obs.Default.Gauge("core.views.selected", "views chosen by the last selection")
	obsSavedRatio    = obs.Default.Gauge("core.saved.ratio", "saved-cost ratio r_c of the last report (%)")
)

// Advisor runs the end-to-end pipeline over one workload.
type Advisor struct {
	Cat  *catalog.Catalog
	Exec *engine.Executor
	Mgr  *rewrite.Manager
	Meta *catalog.MetadataDB
	Cfg  Config
}

// NewAdvisor builds an advisor over populated storage.
func NewAdvisor(cat *catalog.Catalog, exec *engine.Executor, cfg Config) *Advisor {
	return &Advisor{
		Cat:  cat,
		Exec: exec,
		Mgr:  rewrite.NewManager(exec.Store),
		Meta: catalog.NewMetadataDB(),
		Cfg:  cfg,
	}
}

// Candidate bundles one selectable view with its measurements.
type Candidate struct {
	*equiv.Candidate
	View     *rewrite.View
	Overhead float64 // O_vj under the configured estimator
}

// Problem is the assembled MVS instance plus everything needed to apply a
// selection to the workload.
type Problem struct {
	// Queries holds the workload plans (full workload order).
	Queries []*plan.Node
	// Pre is the pre-process result.
	Pre *equiv.Result
	// Candidates aligns with Instance's view axis.
	Candidates []*Candidate
	// AssocQueries maps Instance's query axis to workload indices.
	AssocQueries []int
	// Instance is the ILP instance (benefits from the configured
	// estimator; overlaps from Definition 5).
	Instance *mvs.Instance
	// QueryCost[i] is the measured cost A(q) of workload query i.
	QueryCost []float64
	// Model is the trained W-D model when Estimator is EstimatorWideDeep.
	Model *widedeep.Model

	// benefits[ai][j] backs Instance.Benefit (associated-query axis).
	benefits [][]float64
}

// Frequencies returns per-candidate workload frequencies (TopkFreq input).
func (p *Problem) Frequencies() []int {
	out := make([]int, len(p.Candidates))
	for j, c := range p.Candidates {
		out[j] = c.Frequency
	}
	return out
}

// TotalQueryCost is Σ A(q) over the associated queries — the denominator
// of Table IV's ratio.
func (p *Problem) TotalQueryCost() float64 {
	var total float64
	for _, qi := range p.AssocQueries {
		total += p.QueryCost[qi]
	}
	return total
}

// Preprocess runs the pre-process stage (Fig. 3) with the analytic cost
// model ranking cluster representatives.
func (a *Advisor) Preprocess(queries []*plan.Node) *equiv.Result {
	defer obs.StartSpan("advisor.preprocess")()
	return equiv.Preprocess(queries, &equiv.Options{
		MinShare: a.Cfg.MinShare,
		CostOf: func(n *plan.Node) float64 {
			est := costbase.EstimatePlan(n, a.Cat)
			return est.Usage().TotalViewOverhead(a.Cfg.Pricing)
		},
	})
}

// BuildProblem materializes the candidate views, measures or estimates
// benefits and overheads per the configured estimator, and assembles the
// ILP instance. Measured (q, v, cost) triples are recorded in the
// metadata database as training data.
func (a *Advisor) BuildProblem(queries []*plan.Node, pre *equiv.Result) (*Problem, error) {
	p := &Problem{Queries: queries, Pre: pre, AssocQueries: pre.AssociatedQueries}
	obsQueries.Add(int64(len(queries)))

	var err error
	obs.Time("advisor.measure", func() { err = a.measureQueryCosts(p, queries) })
	if err != nil {
		obs.Error("advisor.measure", "err", err)
		return nil, err
	}
	obs.Time("advisor.materialize", func() { err = a.materializeCandidates(p, pre) })
	if err != nil {
		obs.Error("advisor.materialize", "err", err)
		return nil, err
	}
	obs.Time("advisor.estimate", func() { err = a.fillBenefits(p) })
	if err != nil {
		obs.Error("advisor.estimate", "err", err, "estimator", a.Cfg.Estimator.String())
		return nil, err
	}

	// Assemble the instance on the associated-query axis.
	nv := len(p.Candidates)
	inst := &mvs.Instance{
		Overhead: make([]float64, nv),
		Overlap:  make([][]bool, nv),
	}
	for j, c := range p.Candidates {
		inst.Overhead[j] = c.Overhead
		inst.Overlap[j] = append([]bool(nil), pre.Overlap[j]...)
	}
	inst.Benefit = p.benefits
	p.Instance = inst
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("core: assembled instance invalid: %w", err)
	}
	return p, nil
}

// measureQueryCosts measures the raw cost A(q) of every workload query
// once.
func (a *Advisor) measureQueryCosts(p *Problem, queries []*plan.Node) error {
	pricing := a.Cfg.Pricing
	p.QueryCost = make([]float64, len(queries))
	for i, q := range queries {
		u, err := a.Exec.Cost(q)
		if err != nil {
			return fmt.Errorf("core: measuring query %d: %w", i, err)
		}
		p.QueryCost[i] = u.Cost(pricing)
	}
	return nil
}

// materializeCandidates builds every candidate view (needed to rewrite
// later; the actual build usage provides the measured overhead).
func (a *Advisor) materializeCandidates(p *Problem, pre *equiv.Result) error {
	pricing := a.Cfg.Pricing
	for _, cand := range pre.Candidates {
		v, err := a.Mgr.Materialize(cand.Plan)
		if err != nil {
			return fmt.Errorf("core: materializing candidate: %w", err)
		}
		overhead := v.Overhead(pricing)
		if a.Cfg.Estimator == EstimatorOptimizer {
			est := costbase.EstimatePlan(cand.Plan, a.Cat)
			overhead = est.Usage().TotalViewOverhead(pricing)
		}
		p.Candidates = append(p.Candidates, &Candidate{
			Candidate: cand,
			View:      v,
			Overhead:  overhead,
		})
	}
	return nil
}

// pairKey identifies one (associated query, candidate) pair.
type pairKey struct{ qi, j int }

// fillBenefits populates p.benefits[ai][j] for associated query ai and
// candidate j under the configured estimator.
func (a *Advisor) fillBenefits(p *Problem) error {
	pricing := a.Cfg.Pricing
	assocIndex := make(map[int]int, len(p.AssocQueries))
	for ai, qi := range p.AssocQueries {
		assocIndex[qi] = ai
	}
	p.benefits = make([][]float64, len(p.AssocQueries))
	for ai := range p.benefits {
		p.benefits[ai] = make([]float64, len(p.Candidates))
	}

	// Enumerate applicable pairs.
	var pairs []pairKey
	for j, c := range p.Candidates {
		for _, qi := range c.Queries {
			pairs = append(pairs, pairKey{qi: qi, j: j})
		}
	}

	switch a.Cfg.Estimator {
	case EstimatorActual:
		costs, err := a.measureAll(p, pairs)
		if err != nil {
			return err
		}
		for i, pk := range pairs {
			a.recordPair(p, pk, costs[i])
			p.benefits[assocIndex[pk.qi]][pk.j] = p.QueryCost[pk.qi] - costs[i]
		}
	case EstimatorOptimizer:
		opt := &costbase.OptimizerEstimator{Cat: a.Cat, Pricing: pricing}
		for _, pk := range pairs {
			est := opt.EstimateRewritten(p.Queries[pk.qi], p.Candidates[pk.j].View.Plan)
			qEst := costbase.EstimatePlan(p.Queries[pk.qi], a.Cat).Usage().Cost(pricing)
			p.benefits[assocIndex[pk.qi]][pk.j] = qEst - est
		}
	case EstimatorWideDeep:
		if err := a.wideDeepBenefits(p, pairs, assocIndex); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown estimator %v", a.Cfg.Estimator)
	}
	return nil
}

// measureAll measures A(q|v) for every pair by executing the rewritten
// queries, fanned out over the available CPUs (nn.ParallelFor). The
// executor only reads the store (views are already materialized) and each
// execution carries its own meter, so concurrent measurement is safe;
// results are returned in pair order so downstream consumers stay
// deterministic.
func (a *Advisor) measureAll(p *Problem, pairs []pairKey) ([]float64, error) {
	obsPairsMeasured.Add(int64(len(pairs)))
	costs := make([]float64, len(pairs))
	errs := make([]error, len(pairs))
	pricing := a.Cfg.Pricing

	nn.ParallelFor(len(pairs), runtime.GOMAXPROCS(0), func(i int) {
		pk := pairs[i]
		rw, n := rewrite.Rewrite(p.Queries[pk.qi], []*rewrite.View{p.Candidates[pk.j].View})
		if n == 0 {
			costs[i] = p.QueryCost[pk.qi]
			return
		}
		u, err := a.Exec.Cost(rw)
		if err != nil {
			errs[i] = err
			return
		}
		costs[i] = u.Cost(pricing)
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: measuring rewritten pair: %w", err)
		}
	}
	return costs, nil
}

// wideDeepBenefits measures a training fraction of pairs, trains W-D on
// them (Algorithm 1), and predicts the rest.
func (a *Advisor) wideDeepBenefits(p *Problem, pairs []pairKey, assocIndex map[int]int) error {
	frac := a.Cfg.TrainFraction
	if frac <= 0 || frac > 1 {
		frac = 0.7
	}
	trainIdx, _, _ := metrics.Split(len(pairs), frac, 0, a.Cfg.Seed)
	inTrain := make(map[int]bool, len(trainIdx))
	for _, i := range trainIdx {
		inTrain[i] = true
	}
	var trainPairs []pairKey
	for i, pk := range pairs {
		if inTrain[i] {
			trainPairs = append(trainPairs, pk)
		}
	}

	// Shared vocabulary across plans.
	extra := featenc.CollectPlanKeywords(p.Queries)
	vocab := featenc.NewVocab(a.Cat, extra)
	rng := rand.New(rand.NewSource(a.Cfg.Seed))
	model := widedeep.New(vocab, a.Cfg.WDModel, rng)

	costs, err := a.measureAll(p, trainPairs)
	if err != nil {
		return err
	}
	var samples []widedeep.Sample
	scale := costScale(p.QueryCost)
	for k, pk := range trainPairs {
		cost := costs[k]
		a.recordPair(p, pk, cost)
		f := featenc.Extract(p.Queries[pk.qi], p.Candidates[pk.j].View.Plan, a.Cat)
		samples = append(samples, widedeep.Sample{F: f, Y: cost * scale})
		// Training pairs use their measured benefit directly.
		p.benefits[assocIndex[pk.qi]][pk.j] = p.QueryCost[pk.qi] - cost
	}
	if len(samples) == 0 {
		return fmt.Errorf("core: no W-D training pairs (workload too small?)")
	}
	trainCfg := a.Cfg.WDTrain
	if trainCfg.Parallelism == 0 {
		trainCfg.Parallelism = a.Cfg.Parallelism
	}
	if _, err := model.Fit(samples, trainCfg); err != nil {
		return err
	}
	p.Model = model

	for i, pk := range pairs {
		if inTrain[i] {
			continue
		}
		f := featenc.Extract(p.Queries[pk.qi], p.Candidates[pk.j].View.Plan, a.Cat)
		predicted := model.Predict(f) / scale
		p.benefits[assocIndex[pk.qi]][pk.j] = p.QueryCost[pk.qi] - predicted
	}
	return nil
}

// costScale maps dollar costs into O(1) training magnitudes.
func costScale(costs []float64) float64 {
	var max float64
	for _, c := range costs {
		if c > max {
			max = c
		}
	}
	if max <= 0 {
		return 1
	}
	return 1 / max
}

// recordPair persists a measured (q, v, cost) triple to the metadata
// database (the paper's offline-training data collection).
func (a *Advisor) recordPair(p *Problem, pk pairKey, cost float64) {
	a.Meta.AddCostRecord(catalog.CostRecord{
		QueryID:    fmt.Sprintf("q%d", pk.qi),
		ViewID:     p.Candidates[pk.j].View.ID,
		QueryPlan:  plan.SerializeTexts(p.Queries[pk.qi]),
		ViewPlan:   plan.SerializeTexts(p.Candidates[pk.j].View.Plan),
		Tables:     p.Queries[pk.qi].Tables(),
		ActualCost: cost,
		RawCost:    p.QueryCost[pk.qi],
	})
}

// Selection is the outcome of the view-selection stage.
type Selection struct {
	Method  string
	Z       []bool
	Utility float64 // estimated utility under the instance's benefits
	Trace   []float64
	K       int // top-k cut for greedy methods (0 otherwise)
}

// Selected returns the number of chosen views.
func (s *Selection) Selected() int {
	n := 0
	for _, z := range s.Z {
		if z {
			n++
		}
	}
	return n
}

// Select runs the configured selection algorithm on the problem. Stage
// errors (an unknown selector, a failed offline DQN pretraining) are
// returned to the caller and logged as structured obs events rather than
// silently folded into the selection.
func (a *Advisor) Select(p *Problem) (*Selection, error) {
	defer obs.StartSpan("advisor.select")()
	sel, err := a.selectViews(p)
	if err != nil {
		obs.Error("advisor.select", "selector", a.Cfg.Selector.String(), "err", err)
		return nil, err
	}
	obsViewsSelected.Set(float64(sel.Selected()))
	obs.Info("advisor.select", "selector", sel.Method, "views", sel.Selected(), "utility", sel.Utility)
	return sel, nil
}

func (a *Advisor) selectViews(p *Problem) (*Selection, error) {
	in := p.Instance
	rng := rand.New(rand.NewSource(a.Cfg.Seed + 7))
	switch a.Cfg.Selector {
	case SelectorRLView:
		opts := a.Cfg.RL
		opts.Rand = rng
		if opts.Agent.Parallelism == 0 {
			opts.Agent.Parallelism = a.Cfg.Parallelism
		}
		// Offline training: when the metadata database already holds
		// replay experiences (from earlier runs), pretrain the DQN on
		// them and fine-tune online (Algorithm 2's DQN-offline path).
		if a.Cfg.RLPretrainUpdates > 0 {
			if _, ne := a.Meta.Counts(); ne > 0 {
				agent, err := rl.OfflineTrain(a.Meta, opts.Agent, a.Cfg.RLPretrainUpdates)
				if err != nil {
					return nil, fmt.Errorf("core: offline DQN pretraining: %w", err)
				}
				opts.Pretrained = agent
			}
		}
		res := rl.RLView(in, opts)
		// Persist the replay pool for future offline training.
		res.Agent.PersistMemory(a.Meta)
		return &Selection{Method: "RLView", Z: res.Best.Z, Utility: res.BestUtility, Trace: res.Trace}, nil
	case SelectorBigSub:
		res := selbase.BigSub(in, selbase.BigSubOptions{
			Iterations: a.Cfg.Iter.Iterations,
			Rand:       rng,
		})
		return &Selection{Method: "BigSub", Z: res.Best.Z, Utility: res.BestUtility, Trace: res.Trace}, nil
	case SelectorIterView:
		opts := a.Cfg.Iter
		opts.Rand = rng
		res := mvs.IterView(in, opts)
		return &Selection{Method: "IterView", Z: res.Best.Z, Utility: res.BestUtility, Trace: res.Trace}, nil
	case SelectorLocalSearch:
		opts := a.Cfg.Local
		opts.Rand = rng
		if opts.Parallelism == 0 {
			opts.Parallelism = a.Cfg.Parallelism
		}
		res := mvs.LocalSearch(in, opts)
		return &Selection{Method: "LocalSearch", Z: res.Best.Z, Utility: res.BestUtility, Trace: res.Trace}, nil
	default:
		strategy, ok := strategyOf(a.Cfg.Selector)
		if !ok {
			return nil, fmt.Errorf("core: unknown selector %v", a.Cfg.Selector)
		}
		freq := p.Frequencies()
		k, u := selbase.BestK(in, freq, strategy)
		ranking := selbase.Ranking(in, freq, strategy)
		z := make([]bool, in.NumViews())
		for _, j := range ranking[:k] {
			z[j] = true
		}
		return &Selection{Method: strategy.String(), Z: z, Utility: u, K: k}, nil
	}
}

func strategyOf(s SelectorKind) (selbase.Strategy, bool) {
	switch s {
	case SelectorTopkFreq:
		return selbase.TopkFreq, true
	case SelectorTopkOver:
		return selbase.TopkOver, true
	case SelectorTopkBen:
		return selbase.TopkBen, true
	case SelectorTopkNorm:
		return selbase.TopkNorm, true
	default:
		return 0, false
	}
}
