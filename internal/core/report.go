package core

import (
	"fmt"

	"autoview/internal/metrics"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/rewrite"
)

// Report is the end-to-end outcome in Table V's terms.
type Report struct {
	Estimator string
	Selector  string

	// Raw workload.
	NumQueries int     // #q
	RawCost    float64 // c_q ($)
	RawLatency float64 // l_q: single-core CPU minutes as the latency proxy

	// Materialized views.
	NumViews     int     // #m
	ViewOverhead float64 // o_m ($): build + storage of the selected views

	// Rewritten workload.
	RewrittenQueries int     // #(q|v): queries that used at least one view
	RewriteBenefit   float64 // b_{q|v} ($): Σ (A(q) − A(q|v)) measured
	RewrittenLatency float64 // l_q of the rewritten workload
	RewrittenCost    float64 // total measured cost of the rewritten workload

	// SavedRatio is r_c = (b_{q|v} − o_m)/c_q ·100%.
	SavedRatio float64

	// Selection carries the selection stage's result.
	Selection *Selection
}

// String renders one Table V style row.
func (r *Report) String() string {
	return fmt.Sprintf("%s+%s: #q=%d cq=$%.4f | #m=%d om=$%.4f | #(q|v)=%d bq|v=$%.4f | rc=%.2f%%",
		r.Estimator, r.Selector, r.NumQueries, r.RawCost,
		r.NumViews, r.ViewOverhead, r.RewrittenQueries, r.RewriteBenefit, r.SavedRatio)
}

// Apply takes a selection, rewrites the full workload with the selected
// views, executes it, and reports actual end-to-end savings.
func (a *Advisor) Apply(p *Problem, sel *Selection) (*Report, error) {
	defer obs.StartSpan("advisor.rewrite")()
	pricing := a.Cfg.Pricing
	rep := &Report{
		Estimator:  a.Cfg.Estimator.String(),
		Selector:   sel.Method,
		NumQueries: len(p.Queries),
		Selection:  sel,
	}

	// Raw workload cost and latency (measured once in BuildProblem; the
	// latency proxy is re-derived from CPU usage).
	for i, q := range p.Queries {
		rep.RawCost += p.QueryCost[i]
		u, err := a.Exec.Cost(q)
		if err != nil {
			return nil, err
		}
		rep.RawLatency += u.CPUMinutes(pricing)
	}

	// Selected views, with overheads measured on the real builds.
	var selected []*rewrite.View
	for j, z := range sel.Z {
		if !z {
			continue
		}
		v := p.Candidates[j].View
		selected = append(selected, v)
		rep.NumViews++
		rep.ViewOverhead += v.Overhead(pricing)
	}

	// Per query: solve the per-query view choice under the overlap
	// constraint (Y-Opt against measured benefits is approximated by
	// rewriting with all selected views; Rewrite applies outermost
	// occurrences first, which is exactly the non-overlapping maximal
	// choice for tree-shaped overlaps).
	for i, q := range p.Queries {
		rw, n := rewrite.Rewrite(q, orderOutermost(selected, q))
		u, err := a.Exec.Cost(rw)
		if err != nil {
			return nil, err
		}
		cost := u.Cost(pricing)
		rep.RewrittenCost += cost
		rep.RewrittenLatency += u.CPUMinutes(pricing)
		if n > 0 {
			rep.RewrittenQueries++
			rep.RewriteBenefit += p.QueryCost[i] - cost
		}
	}
	rep.SavedRatio = metrics.SavedCostRatio(rep.RewriteBenefit, rep.ViewOverhead, rep.RawCost)
	obsSavedRatio.Set(rep.SavedRatio)
	obs.Info("advisor.report",
		"estimator", rep.Estimator, "selector", rep.Selector,
		"queries", rep.NumQueries, "views", rep.NumViews,
		"rewritten", rep.RewrittenQueries, "benefit", rep.RewriteBenefit,
		"overhead", rep.ViewOverhead, "saved_ratio", rep.SavedRatio)
	return rep, nil
}

// orderOutermost sorts views so that ones matching higher (closer to the
// root) in q's plan are applied first; rewriting is then greedy-outermost,
// which maximizes per-view coverage for nested matches.
func orderOutermost(views []*rewrite.View, q *plan.Node) []*rewrite.View {
	depth := func(v *rewrite.View) int {
		best := 1 << 30
		var walk func(n *plan.Node, d int)
		walk = func(n *plan.Node, d int) {
			if n.Op != plan.OpScan && plan.NormalizedFingerprint(n) == v.Fingerprint {
				if d < best {
					best = d
				}
				return
			}
			for _, c := range n.Children {
				walk(c, d+1)
			}
		}
		walk(q, 0)
		return best
	}
	out := append([]*rewrite.View(nil), views...)
	// Insertion sort by match depth (few views; stability irrelevant).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && depth(out[j]) < depth(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Run executes the full pipeline: pre-process, estimate, select, apply.
func (a *Advisor) Run(queries []*plan.Node) (*Report, error) {
	pre := a.Preprocess(queries)
	if len(pre.Candidates) == 0 {
		obs.Warn("advisor.run", "reason", "no candidates", "queries", len(queries))
		return &Report{
			Estimator:  a.Cfg.Estimator.String(),
			Selector:   a.Cfg.Selector.String(),
			NumQueries: len(queries),
			Selection:  &Selection{Method: a.Cfg.Selector.String()},
		}, nil
	}
	p, err := a.BuildProblem(queries, pre)
	if err != nil {
		return nil, err
	}
	sel, err := a.Select(p)
	if err != nil {
		return nil, err
	}
	rep, err := a.Apply(p, sel)
	if err != nil {
		return nil, err
	}
	obsRuns.Inc()
	return rep, nil
}
