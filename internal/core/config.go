// Package core is the public facade of the system: the end-to-end
// pipeline of Figure 3. An Advisor pre-processes a workload (subquery
// extraction, equivalence detection, clustering), estimates costs and
// utilities (measured, analytic-optimizer, or Wide-Deep), selects views
// (RLView, BigSub, IterView, or greedy top-k), rewrites the workload, and
// reports end-to-end savings.
//
// Exported types map onto the paper's constructs as follows:
//
//   - Advisor.Preprocess is the pre-process stage (Section III): it emits
//     the candidate views Z and their associated queries Q.
//   - Advisor.BuildProblem assembles the MVS instance (Definition 7): the
//     benefit matrix B(q_i, v_j) = A(q_i) − A(q_i|v_j) from the configured
//     EstimatorKind — measured on the engine, the analytic optimizer
//     estimate, or the Wide-Deep model of Section IV — plus the view
//     overheads O_vj and the Definition 5 overlap constants x_jk.
//   - Advisor.Select solves the instance with the configured SelectorKind:
//     SelectorRLView is the DQN-based Algorithm 2, SelectorIterView the
//     iterative Z-Opt/Y-Opt optimizer, SelectorBigSub and the SelectorTopk*
//     family the experiments' baselines.
//   - Advisor.Apply rewrites and re-executes the workload, and Report
//     carries Table V's columns (#q, c_q, #m, o_m, #(q|v), b_{q|v}) plus
//     the saved-cost ratio r_c.
//
// Every stage is timed under the advisor.* observability spans; see
// OBSERVABILITY.md.
package core

import (
	"fmt"
	"strings"

	"autoview/internal/engine"
	"autoview/internal/featenc"
	"autoview/internal/mvs"
	"autoview/internal/rl"
	"autoview/internal/widedeep"
)

// EstimatorKind selects how per-pair benefits B(q, v) are obtained.
type EstimatorKind int

const (
	// EstimatorActual measures every rewritten query on the engine —
	// ground truth, used to evaluate the estimators themselves.
	EstimatorActual EstimatorKind = iota
	// EstimatorOptimizer uses the traditional analytic cost model
	// (Table V's "O" configurations).
	EstimatorOptimizer
	// EstimatorWideDeep trains the W-D model on a sample of measured
	// pairs and predicts the rest (Table V's "W" configurations).
	EstimatorWideDeep
)

// String returns the short name used in the experiments.
func (e EstimatorKind) String() string {
	switch e {
	case EstimatorActual:
		return "Actual"
	case EstimatorOptimizer:
		return "Optimizer"
	case EstimatorWideDeep:
		return "W-D"
	default:
		return "?"
	}
}

// SelectorKind selects the view-selection algorithm.
type SelectorKind int

const (
	// SelectorRLView is the paper's DQN-based method.
	SelectorRLView SelectorKind = iota
	// SelectorBigSub is the freeze-converged iterative baseline.
	SelectorBigSub
	// SelectorIterView is raw iterative optimization (no freeze).
	SelectorIterView
	// SelectorTopkFreq .. SelectorTopkNorm are the greedy baselines.
	SelectorTopkFreq
	SelectorTopkOver
	SelectorTopkBen
	SelectorTopkNorm
	// SelectorLocalSearch is the hill-climbing local search (add/drop/
	// swap neighborhood, restart schedule) of mvs.LocalSearch.
	SelectorLocalSearch
)

// String returns the paper's method name.
func (s SelectorKind) String() string {
	switch s {
	case SelectorRLView:
		return "RLView"
	case SelectorBigSub:
		return "BigSub"
	case SelectorIterView:
		return "IterView"
	case SelectorTopkFreq:
		return "TopkFreq"
	case SelectorTopkOver:
		return "TopkOver"
	case SelectorTopkBen:
		return "TopkBen"
	case SelectorTopkNorm:
		return "TopkNorm"
	case SelectorLocalSearch:
		return "LocalSearch"
	default:
		return "?"
	}
}

// SelectorNames maps every flag-accepted selector name to its kind; it is
// the single registry both CLIs parse against (keys are lower-case).
func SelectorNames() map[string]SelectorKind {
	return map[string]SelectorKind{
		"rlview":      SelectorRLView,
		"bigsub":      SelectorBigSub,
		"iterview":    SelectorIterView,
		"topkfreq":    SelectorTopkFreq,
		"topkover":    SelectorTopkOver,
		"topkben":     SelectorTopkBen,
		"topknorm":    SelectorTopkNorm,
		"localsearch": SelectorLocalSearch,
	}
}

// ParseSelector resolves a flag value (case-insensitive) against
// SelectorNames.
func ParseSelector(name string) (SelectorKind, error) {
	if s, ok := SelectorNames()[strings.ToLower(name)]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("unknown selector %q", name)
}

// ParseEstimator resolves a flag value (case-insensitive) to an
// EstimatorKind.
func ParseEstimator(name string) (EstimatorKind, error) {
	switch strings.ToLower(name) {
	case "actual":
		return EstimatorActual, nil
	case "optimizer":
		return EstimatorOptimizer, nil
	case "wd", "w-d", "widedeep":
		return EstimatorWideDeep, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q", name)
	}
}

// Config carries the pipeline parameters. DefaultConfig mirrors the
// paper's Table II defaults for the JOB-scale setting.
type Config struct {
	Pricing engine.Pricing
	// MinShare is the minimum number of queries sharing a cluster for
	// it to become a candidate (pre-process).
	MinShare int

	Estimator EstimatorKind
	// TrainFraction of measured pairs feeds W-D training (7:1:2 in the
	// paper's split; the pipeline uses the train fraction only).
	TrainFraction float64
	// WDTrain is Algorithm 1's hyper-parameters (Table II: I, lr, b_s).
	WDTrain widedeep.TrainConfig
	// WDModel sizes the W-D network.
	WDModel widedeep.Config

	Selector SelectorKind
	// Iter configures IterView/BigSub (Table II: n1 as warm start, and
	// the iteration budget n for the convergence experiment).
	Iter mvs.IterOptions
	// Local configures the hill-climbing local search (restart schedule,
	// optional storage budget). Rand and Parallelism are filled by the
	// advisor.
	Local mvs.LocalSearchOptions
	// RL configures RLView (Table II: n1, n2, nm, γ).
	RL rl.Options
	// RLPretrainUpdates, when positive, pretrains the DQN offline from
	// the metadata database's stored replay pool (if any) before the
	// online run — the paper's offline-training path. The online run's
	// experiences are persisted back to the metadata database either way.
	RLPretrainUpdates int

	// Parallelism is the number of data-parallel workers every neural
	// training loop (W-D Algorithm 1, DQN replay updates) shards its
	// mini-batches across. 0 selects runtime.NumCPU(); 1 runs serially.
	// Gradients are reduced in sample order, so results are bit-for-bit
	// identical for every setting. Per-stage settings (WDTrain, RL.Agent)
	// take precedence when non-zero.
	Parallelism int

	Seed int64
}

// DefaultConfig returns the paper's JOB defaults (Table II): I=50,
// lr=0.01, b_s=8, n1=10, n2=90, nm=20, γ=0.9, and the pricing constants
// α=1.67e-5, β=1e-1, γ=1e-3.
func DefaultConfig() Config {
	return Config{
		Pricing:       engine.DefaultPricing(),
		MinShare:      2,
		Estimator:     EstimatorWideDeep,
		TrainFraction: 0.7,
		WDTrain: widedeep.TrainConfig{
			Epochs:    50,
			LearnRate: 0.01,
			BatchSize: 8,
		},
		WDModel:  widedeep.Config{Encoder: featenc.Config{EmbedDim: 16, Hidden: 16}},
		Selector: SelectorRLView,
		Iter:     mvs.IterOptions{Iterations: 100},
		RL: rl.Options{
			InitIterations:  10,
			Epochs:          90,
			MemoryThreshold: 20,
			Agent:           rl.AgentConfig{Gamma: 0.9},
		},
		Seed: 1,
	}
}

// WKConfig returns the paper's WK-scale defaults (Table II): I=20,
// lr=0.005, b_s=128, nm scaled to our workload sizes, and a reduced n2
// (the paper uses 990/490 episodes on 38k/157k-query workloads; our
// workloads are ~60× smaller, so episodes scale down accordingly).
func WKConfig() Config {
	cfg := DefaultConfig()
	cfg.WDTrain = widedeep.TrainConfig{Epochs: 20, LearnRate: 0.005, BatchSize: 128}
	cfg.RL.Epochs = 60
	cfg.RL.MemoryThreshold = 100
	cfg.RL.LearnEvery = 4
	return cfg
}
