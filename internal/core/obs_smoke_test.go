package core

import (
	"strings"
	"testing"

	"autoview/internal/obs"
)

// advisorSpans is the span set OBSERVABILITY.md documents for one full
// Advisor.Run; the smoke test pins the docs to the implementation.
var advisorSpans = []string{
	"advisor.preprocess",
	"preprocess.decompose",
	"preprocess.equiv_merge",
	"preprocess.candidates",
	"preprocess.overlap",
	"advisor.measure",
	"advisor.materialize",
	"advisor.estimate",
	"advisor.select",
	"advisor.rewrite",
	"engine.exec",
}

// TestAdvisorRunEmitsDocumentedSpans runs the full pipeline with the
// registry enabled and checks every documented stage span recorded at
// least one observation, plus the run/query counters.
func TestAdvisorRunEmitsDocumentedSpans(t *testing.T) {
	obs.Default.Reset()
	obs.Enable()
	defer obs.Disable()

	w := smallWK()
	a := newAdvisor(t, w, fastConfig())
	rep, err := a.Run(w.Plans())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumQueries == 0 {
		t.Fatal("empty report")
	}

	snap := obs.Default.Snapshot()
	hists := map[string]obs.HistSnap{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h
	}
	for _, span := range advisorSpans {
		h, ok := hists[span+".seconds"]
		if !ok {
			t.Errorf("span %s: no %s.seconds histogram in snapshot", span, span)
			continue
		}
		if h.Count == 0 {
			t.Errorf("span %s: zero observations after a full run", span)
		}
		if h.Sum < 0 {
			t.Errorf("span %s: negative total duration %g", span, h.Sum)
		}
	}

	ctrs := map[string]int64{}
	for _, c := range snap.Counters {
		ctrs[c.Name] = c.Value
	}
	if ctrs["core.runs"] != 1 {
		t.Errorf("core.runs = %d, want 1", ctrs["core.runs"])
	}
	if ctrs["core.queries"] == 0 {
		t.Error("core.queries not incremented")
	}
	if ctrs["engine.exec.count"] == 0 {
		t.Error("engine.exec.count not incremented")
	}

	// The Prometheus exposition of the same run must carry enough series
	// for a scraper to be useful (the acceptance bar is ≥ 15).
	var sb strings.Builder
	snap.WritePrometheus(&sb)
	series := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	if series < 15 {
		t.Errorf("/metrics exposes %d series, want >= 15", series)
	}
}
