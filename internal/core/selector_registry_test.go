package core

import (
	"strings"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/equiv"
	"autoview/internal/mvs"
)

func TestParseSelectorRegistry(t *testing.T) {
	for name, want := range SelectorNames() {
		got, err := ParseSelector(name)
		if err != nil {
			t.Errorf("ParseSelector(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSelector(%q) = %v, want %v", name, got, want)
		}
		// Case-insensitive, as the CLIs document.
		if up, err := ParseSelector(strings.ToUpper(name)); err != nil || up != want {
			t.Errorf("ParseSelector(%q) = %v, %v", strings.ToUpper(name), up, err)
		}
		if want.String() == "?" {
			t.Errorf("selector %q has no String name", name)
		}
	}
	for _, bad := range []string{"", "greedy", "rlview ", "local-search"} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) should fail", bad)
		}
	}
}

func TestParseEstimator(t *testing.T) {
	cases := map[string]EstimatorKind{
		"actual": EstimatorActual, "optimizer": EstimatorOptimizer,
		"wd": EstimatorWideDeep, "w-d": EstimatorWideDeep, "widedeep": EstimatorWideDeep,
		"Actual": EstimatorActual, "WD": EstimatorWideDeep,
	}
	for name, want := range cases {
		got, err := ParseEstimator(name)
		if err != nil || got != want {
			t.Errorf("ParseEstimator(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for _, bad := range []string{"", "oracle", "deep"} {
		if _, err := ParseEstimator(bad); err == nil {
			t.Errorf("ParseEstimator(%q) should fail", bad)
		}
	}
}

// registryProblem builds a minimal synthetic Problem that selectViews can
// run every registered selector against without the full pipeline.
func registryProblem() *Problem {
	in := &mvs.Instance{
		Benefit:  [][]float64{{3, 0, 1}, {0, 2, 2}, {1, 1, 0}},
		Overhead: []float64{0.5, 0.5, 0.5},
		Overlap: [][]bool{
			{false, true, false},
			{true, false, false},
			{false, false, false},
		},
	}
	p := &Problem{Instance: in, AssocQueries: []int{0, 1, 2}}
	for j := 0; j < in.NumViews(); j++ {
		p.Candidates = append(p.Candidates, &Candidate{
			Candidate: &equiv.Candidate{Frequency: j + 1},
		})
	}
	return p
}

// TestSelectViewsEveryRegisteredSelector runs Advisor.selectViews once per
// registered selector name: each must succeed, report its method name,
// and return a feasible-shaped selection with utility matching core
// accounting; the unregistered kind must error.
func TestSelectViewsEveryRegisteredSelector(t *testing.T) {
	for name, kind := range SelectorNames() {
		kind := kind
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Selector = kind
			// Keep the DQN arm fast: tiny training budgets.
			cfg.RL.InitIterations = 2
			cfg.RL.Epochs = 2
			cfg.RL.MemoryThreshold = 4
			a := &Advisor{Cfg: cfg, Meta: catalog.NewMetadataDB()}
			p := registryProblem()
			sel, err := a.selectViews(p)
			if err != nil {
				t.Fatalf("selectViews: %v", err)
			}
			if sel.Method == "" || sel.Method == "?" {
				t.Errorf("method name %q", sel.Method)
			}
			if len(sel.Z) != p.Instance.NumViews() {
				t.Fatalf("selection over %d views, want %d", len(sel.Z), p.Instance.NumViews())
			}
			if u := p.Instance.UtilityOfZ(sel.Z); u != sel.Utility {
				t.Errorf("reported utility %v != core accounting %v", sel.Utility, u)
			}
		})
	}
	a := &Advisor{Cfg: Config{Selector: SelectorKind(99)}}
	if _, err := a.selectViews(registryProblem()); err == nil {
		t.Errorf("unregistered selector kind should error")
	} else if !strings.Contains(err.Error(), "unknown selector") {
		t.Errorf("unexpected error: %v", err)
	}
}
