package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"autoview/internal/plan"
)

// tagged builds a distinguishable dummy plan (only pointer identity and
// order matter to the window).
func tagged(i int) *plan.Node {
	return &plan.Node{Op: plan.OpScan, Table: fmt.Sprintf("t%d", i)}
}

func TestWindowAppendSnapshotOrder(t *testing.T) {
	w := NewWindow(4)
	if w.Cap() != 4 {
		t.Fatalf("cap = %d", w.Cap())
	}
	for i := 0; i < 3; i++ {
		w.Append(tagged(i))
	}
	snap := w.Snapshot()
	if len(snap) != 3 || w.Len() != 3 {
		t.Fatalf("len = %d snapshot = %d", w.Len(), len(snap))
	}
	for i, n := range snap {
		if n.Table != fmt.Sprintf("t%d", i) {
			t.Fatalf("snapshot[%d] = %s", i, n.Table)
		}
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 7; i++ {
		w.Append(tagged(i))
	}
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	for i, want := range []string{"t4", "t5", "t6"} {
		if snap[i].Table != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snap[i].Table, want)
		}
	}
	if w.Total() != 7 {
		t.Fatalf("total = %d", w.Total())
	}
}

func TestWindowConcurrentAppend(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w.Append(tagged(g*100 + i))
			}
		}(g)
	}
	wg.Wait()
	if w.Total() != 400 {
		t.Fatalf("total = %d", w.Total())
	}
	if w.Len() != 64 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestAdviseReturnsSelection(t *testing.T) {
	wl := smallWK()
	a := newAdvisor(t, wl, fastConfig())
	p, sel, err := a.Advise(wl.Plans())
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || sel == nil {
		t.Fatal("nil problem or selection")
	}
	if len(sel.Z) != len(p.Candidates) {
		t.Fatalf("selection over %d views, %d candidates", len(sel.Z), len(p.Candidates))
	}
	if scale := p.CostScale(); scale <= 0 {
		t.Fatalf("cost scale %v", scale)
	}
}

func TestAdviseNoCandidates(t *testing.T) {
	wl := smallWK()
	a := newAdvisor(t, wl, fastConfig())
	// A single query cannot share subqueries with anything.
	if _, _, err := a.Advise(wl.Plans()[:1]); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
	if _, _, err := a.Advise(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("empty: err = %v, want ErrNoCandidates", err)
	}
}
