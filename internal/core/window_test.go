package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"autoview/internal/plan"
)

// tagged builds a distinguishable dummy plan (only pointer identity and
// order matter to the window).
func tagged(i int) *plan.Node {
	return &plan.Node{Op: plan.OpScan, Table: fmt.Sprintf("t%d", i)}
}

func TestWindowAppendSnapshotOrder(t *testing.T) {
	w := NewWindow(4)
	if w.Cap() != 4 {
		t.Fatalf("cap = %d", w.Cap())
	}
	for i := 0; i < 3; i++ {
		w.Append(tagged(i))
	}
	snap := w.Snapshot()
	if len(snap) != 3 || w.Len() != 3 {
		t.Fatalf("len = %d snapshot = %d", w.Len(), len(snap))
	}
	for i, n := range snap {
		if n.Table != fmt.Sprintf("t%d", i) {
			t.Fatalf("snapshot[%d] = %s", i, n.Table)
		}
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 7; i++ {
		w.Append(tagged(i))
	}
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	for i, want := range []string{"t4", "t5", "t6"} {
		if snap[i].Table != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snap[i].Table, want)
		}
	}
	if w.Total() != 7 {
		t.Fatalf("total = %d", w.Total())
	}
}

func TestWindowConcurrentAppend(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w.Append(tagged(g*100 + i))
			}
		}(g)
	}
	wg.Wait()
	if w.Total() != 400 {
		t.Fatalf("total = %d", w.Total())
	}
	if w.Len() != 64 {
		t.Fatalf("len = %d", w.Len())
	}
}

// TestWindowCapacityBoundary pins the evict order exactly at the
// capacity boundary: the append that fills the window evicts nothing,
// and the very next append evicts precisely the oldest entry.
func TestWindowCapacityBoundary(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 3; i++ {
		w.Append(tagged(i))
	}
	if got := names(w.Snapshot()); !equalStrings(got, []string{"t0", "t1", "t2"}) {
		t.Fatalf("at capacity: %v", got)
	}
	w.Append(tagged(3)) // first wrap: exactly t0 leaves
	if got := names(w.Snapshot()); !equalStrings(got, []string{"t1", "t2", "t3"}) {
		t.Fatalf("one past capacity: %v", got)
	}
	w.Append(tagged(4))
	if got := names(w.Snapshot()); !equalStrings(got, []string{"t2", "t3", "t4"}) {
		t.Fatalf("two past capacity: %v", got)
	}
	if w.Len() != 3 || w.Total() != 5 {
		t.Fatalf("len = %d total = %d", w.Len(), w.Total())
	}
}

// TestWindowSnapshotMidWrapRestores takes a snapshot while the ring
// write position sits mid-buffer and proves Restore reproduces the
// identical iteration order — including when further appends continue
// to wrap the restored ring.
func TestWindowSnapshotMidWrapRestores(t *testing.T) {
	w := NewWindow(4)
	plans := make([]*plan.Node, 10)
	sqls := make([]string, 10)
	for i := range plans {
		plans[i] = tagged(i)
		sqls[i] = fmt.Sprintf("select %d", i)
	}
	w.AppendTagged(plans[:6], sqls[:6]) // next = 2, mid-wrap
	gotPlans, gotSQL := w.SnapshotTagged()
	if !equalStrings(names(gotPlans), []string{"t2", "t3", "t4", "t5"}) {
		t.Fatalf("mid-wrap snapshot: %v", names(gotPlans))
	}
	if !equalStrings(gotSQL, sqls[2:6]) {
		t.Fatalf("mid-wrap sqls: %v", gotSQL)
	}

	w2 := NewWindow(4)
	w2.Restore(gotPlans, gotSQL, w.Total())
	rePlans, reSQL := w2.SnapshotTagged()
	if !equalStrings(names(rePlans), names(gotPlans)) || !equalStrings(reSQL, gotSQL) {
		t.Fatalf("restore changed order: %v / %v", names(rePlans), reSQL)
	}
	if w2.Total() != 6 || w2.Len() != 4 {
		t.Fatalf("restored total = %d len = %d", w2.Total(), w2.Len())
	}

	// The restored ring must keep evicting in the same order as the
	// original under continued appends.
	w.AppendTagged(plans[6:8], sqls[6:8])
	w2.AppendTagged(plans[6:8], sqls[6:8])
	a, as := w.SnapshotTagged()
	b, bs := w2.SnapshotTagged()
	if !equalStrings(names(a), names(b)) || !equalStrings(as, bs) {
		t.Fatalf("post-restore appends diverge: %v vs %v", names(a), names(b))
	}
}

// TestWindowRestoreOverCapacity keeps only the newest capacity entries,
// exactly as if the list had been appended in order.
func TestWindowRestoreOverCapacity(t *testing.T) {
	w := NewWindow(3)
	plans := make([]*plan.Node, 5)
	sqls := make([]string, 5)
	for i := range plans {
		plans[i] = tagged(i)
		sqls[i] = fmt.Sprintf("q%d", i)
	}
	w.Restore(plans, sqls, 5)
	got, gotSQL := w.SnapshotTagged()
	if !equalStrings(names(got), []string{"t2", "t3", "t4"}) {
		t.Fatalf("over-capacity restore: %v", names(got))
	}
	if !equalStrings(gotSQL, []string{"q2", "q3", "q4"}) {
		t.Fatalf("over-capacity sqls: %v", gotSQL)
	}
	if w.Total() != 5 {
		t.Fatalf("total = %d", w.Total())
	}
}

// TestWindowTaggedUntaggedMix: Append leaves the tag empty while
// AppendTagged preserves it, and both interleave in one ring.
func TestWindowTaggedUntaggedMix(t *testing.T) {
	w := NewWindow(4)
	w.Append(tagged(0))
	w.AppendTagged([]*plan.Node{tagged(1)}, []string{"select 1"})
	w.Append(tagged(2))
	_, sqls := w.SnapshotTagged()
	if !equalStrings(sqls, []string{"", "select 1", ""}) {
		t.Fatalf("sqls = %v", sqls)
	}
}

func names(ns []*plan.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Table
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAdviseReturnsSelection(t *testing.T) {
	wl := smallWK()
	a := newAdvisor(t, wl, fastConfig())
	p, sel, err := a.Advise(wl.Plans())
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || sel == nil {
		t.Fatal("nil problem or selection")
	}
	if len(sel.Z) != len(p.Candidates) {
		t.Fatalf("selection over %d views, %d candidates", len(sel.Z), len(p.Candidates))
	}
	if scale := p.CostScale(); scale <= 0 {
		t.Fatalf("cost scale %v", scale)
	}
}

func TestAdviseNoCandidates(t *testing.T) {
	wl := smallWK()
	a := newAdvisor(t, wl, fastConfig())
	// A single query cannot share subqueries with anything.
	if _, _, err := a.Advise(wl.Plans()[:1]); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
	if _, _, err := a.Advise(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("empty: err = %v, want ErrNoCandidates", err)
	}
}
