package core

import (
	"errors"
	"sync"

	"autoview/internal/obs"
	"autoview/internal/plan"
)

// ErrNoCandidates reports that pre-processing found no shareable
// subqueries in the given workload, so there is nothing to select.
// Online callers (the serving layer's re-advise loop) treat it as a
// clean no-op rather than a failure.
var ErrNoCandidates = errors.New("core: no candidate views in workload")

var obsWindowSize = obs.Default.Gauge("core.window.size", "queries currently held by the rolling workload window")

// windowEntry is one held query: the parsed plan the pipeline consumes
// plus the SQL text it was parsed from (empty when the producer had no
// text). The tag exists for durability: a persisted window is its SQL
// list, and re-parsing that list reconstructs the plans byte-identically
// (plan.Parse is deterministic over an immutable catalog).
type windowEntry struct {
	q   *plan.Node
	sql string
}

// Window is a bounded rolling workload window: a fixed-capacity ring of
// query plans where appending beyond capacity evicts the oldest entry.
// It is the online system's view of "the current workload" — the
// re-advise loop snapshots it and runs selection over the snapshot.
// All methods are safe for concurrent use.
type Window struct {
	mu    sync.Mutex
	buf   []windowEntry
	next  int  // ring write position
	full  bool // buf has wrapped at least once
	total uint64
}

// NewWindow returns an empty window holding at most capacity queries.
// Capacity must be positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 1
	}
	return &Window{buf: make([]windowEntry, 0, capacity)}
}

// Cap returns the window's capacity.
func (w *Window) Cap() int { return cap(w.buf) }

// Append adds queries in order, evicting the oldest entries once the
// window is full. Entries appended this way carry no SQL tag; durable
// callers use AppendTagged.
func (w *Window) Append(queries ...*plan.Node) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, q := range queries {
		w.push(windowEntry{q: q})
	}
	obsWindowSize.Set(float64(len(w.buf)))
}

// AppendTagged adds queries in order like Append, tagging each with the
// SQL text it was parsed from. sqls must be the same length as queries.
func (w *Window) AppendTagged(queries []*plan.Node, sqls []string) {
	if len(queries) != len(sqls) {
		panic("core: AppendTagged length mismatch")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, q := range queries {
		w.push(windowEntry{q: q, sql: sqls[i]})
	}
	obsWindowSize.Set(float64(len(w.buf)))
}

// push appends one entry under w.mu, evicting the oldest at capacity.
func (w *Window) push(e windowEntry) {
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, e)
	} else {
		w.buf[w.next] = e
		w.next = (w.next + 1) % cap(w.buf)
		w.full = true
	}
	w.total++
}

// Restore replaces the window's contents with the given queries
// (oldest-first) and sets the lifetime total, as when recovering
// persisted state. When more queries than capacity are given only the
// newest capacity entries are kept, exactly as if they had been appended
// in order. sqls must be the same length as queries.
func (w *Window) Restore(queries []*plan.Node, sqls []string, total uint64) {
	if len(queries) != len(sqls) {
		panic("core: Restore length mismatch")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = w.buf[:0]
	w.next = 0
	w.full = false
	w.total = 0
	for i, q := range queries {
		w.push(windowEntry{q: q, sql: sqls[i]})
	}
	w.total = total
	obsWindowSize.Set(float64(len(w.buf)))
}

// Len returns the number of queries currently held.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Total returns the number of queries ever appended (including evicted
// ones).
func (w *Window) Total() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Snapshot returns the current contents oldest-first. The returned slice
// is a copy; the plans themselves are shared (treated as immutable by
// the pipeline).
func (w *Window) Snapshot() []*plan.Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*plan.Node, 0, len(w.buf))
	for _, e := range w.ordered() {
		out = append(out, e.q)
	}
	return out
}

// SnapshotTagged returns the current contents oldest-first as parallel
// plan and SQL slices (the SQL an entry was tagged with at append time,
// "" for untagged entries). Both slices are copies.
func (w *Window) SnapshotTagged() ([]*plan.Node, []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ord := w.ordered()
	plans := make([]*plan.Node, len(ord))
	sqls := make([]string, len(ord))
	for i, e := range ord {
		plans[i] = e.q
		sqls[i] = e.sql
	}
	return plans, sqls
}

// ordered returns the ring contents oldest-first (caller holds w.mu).
// The returned slice aliases w.buf only in the unwrapped case, where the
// buffer is already in order; wrapped reads build a fresh slice.
func (w *Window) ordered() []windowEntry {
	if !w.full {
		return w.buf
	}
	out := make([]windowEntry, 0, len(w.buf))
	out = append(out, w.buf[w.next:]...)
	out = append(out, w.buf[:w.next]...)
	return out
}

// CostScale returns the factor that maps this problem's dollar costs
// into the O(1) magnitudes the W-D model was trained on
// (1/max A(q)). Serving-side callers divide Model predictions by it to
// recover absolute costs, exactly as the pipeline's benefit estimator
// does.
func (p *Problem) CostScale() float64 { return costScale(p.QueryCost) }

// Advise runs the estimate and select stages over an arbitrary query
// set without applying the selection: pre-process, problem assembly
// under the configured estimator, and view selection. It is the
// re-advise entry point for online callers that maintain their own
// rolling window; Run remains the batch pipeline (which also rewrites
// and re-executes the workload). Returns ErrNoCandidates when
// pre-processing yields no shareable subqueries.
func (a *Advisor) Advise(queries []*plan.Node) (*Problem, *Selection, error) {
	if len(queries) == 0 {
		return nil, nil, ErrNoCandidates
	}
	pre := a.Preprocess(queries)
	if len(pre.Candidates) == 0 {
		return nil, nil, ErrNoCandidates
	}
	p, err := a.BuildProblem(queries, pre)
	if err != nil {
		return nil, nil, err
	}
	sel, err := a.Select(p)
	if err != nil {
		return nil, nil, err
	}
	return p, sel, nil
}
