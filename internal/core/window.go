package core

import (
	"errors"
	"sync"

	"autoview/internal/obs"
	"autoview/internal/plan"
)

// ErrNoCandidates reports that pre-processing found no shareable
// subqueries in the given workload, so there is nothing to select.
// Online callers (the serving layer's re-advise loop) treat it as a
// clean no-op rather than a failure.
var ErrNoCandidates = errors.New("core: no candidate views in workload")

var obsWindowSize = obs.Default.Gauge("core.window.size", "queries currently held by the rolling workload window")

// Window is a bounded rolling workload window: a fixed-capacity ring of
// query plans where appending beyond capacity evicts the oldest entry.
// It is the online system's view of "the current workload" — the
// re-advise loop snapshots it and runs selection over the snapshot.
// All methods are safe for concurrent use.
type Window struct {
	mu    sync.Mutex
	buf   []*plan.Node
	next  int  // ring write position
	full  bool // buf has wrapped at least once
	total uint64
}

// NewWindow returns an empty window holding at most capacity queries.
// Capacity must be positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 1
	}
	return &Window{buf: make([]*plan.Node, 0, capacity)}
}

// Cap returns the window's capacity.
func (w *Window) Cap() int { return cap(w.buf) }

// Append adds queries in order, evicting the oldest entries once the
// window is full.
func (w *Window) Append(queries ...*plan.Node) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, q := range queries {
		if len(w.buf) < cap(w.buf) {
			w.buf = append(w.buf, q)
		} else {
			w.buf[w.next] = q
			w.next = (w.next + 1) % cap(w.buf)
			w.full = true
		}
		w.total++
	}
	obsWindowSize.Set(float64(len(w.buf)))
}

// Len returns the number of queries currently held.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Total returns the number of queries ever appended (including evicted
// ones).
func (w *Window) Total() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Snapshot returns the current contents oldest-first. The returned slice
// is a copy; the plans themselves are shared (treated as immutable by
// the pipeline).
func (w *Window) Snapshot() []*plan.Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*plan.Node, 0, len(w.buf))
	if w.full {
		out = append(out, w.buf[w.next:]...)
		out = append(out, w.buf[:w.next]...)
	} else {
		out = append(out, w.buf...)
	}
	return out
}

// CostScale returns the factor that maps this problem's dollar costs
// into the O(1) magnitudes the W-D model was trained on
// (1/max A(q)). Serving-side callers divide Model predictions by it to
// recover absolute costs, exactly as the pipeline's benefit estimator
// does.
func (p *Problem) CostScale() float64 { return costScale(p.QueryCost) }

// Advise runs the estimate and select stages over an arbitrary query
// set without applying the selection: pre-process, problem assembly
// under the configured estimator, and view selection. It is the
// re-advise entry point for online callers that maintain their own
// rolling window; Run remains the batch pipeline (which also rewrites
// and re-executes the workload). Returns ErrNoCandidates when
// pre-processing yields no shareable subqueries.
func (a *Advisor) Advise(queries []*plan.Node) (*Problem, *Selection, error) {
	if len(queries) == 0 {
		return nil, nil, ErrNoCandidates
	}
	pre := a.Preprocess(queries)
	if len(pre.Candidates) == 0 {
		return nil, nil, ErrNoCandidates
	}
	p, err := a.BuildProblem(queries, pre)
	if err != nil {
		return nil, nil, err
	}
	sel, err := a.Select(p)
	if err != nil {
		return nil, nil, err
	}
	return p, sel, nil
}
