package core

import (
	"autoview/internal/mvs"
	"autoview/internal/plan"
	"autoview/internal/rewrite"
	"math"
	"testing"

	"autoview/internal/engine"
	"autoview/internal/workload"
)

// smallWK builds a compact workload for pipeline tests.
func smallWK() *workload.Workload {
	return workload.WK(workload.WKParams{
		Name:             "mini",
		Projects:         4,
		FactsPerProject:  2,
		DimsPerProject:   1,
		Queries:          60,
		FragsPerProject:  3,
		Skew:             1.2,
		ThreeWayFraction: 0.2,
		RowSkew:          1.5,
		Seed:             77,
	})
}

func newAdvisor(t *testing.T, w *workload.Workload, cfg Config) *Advisor {
	t.Helper()
	st := w.Populate()
	return NewAdvisor(w.Cat, engine.New(st), cfg)
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Estimator = EstimatorActual
	cfg.WDTrain.Epochs = 3
	cfg.RL.Epochs = 5
	cfg.RL.InitIterations = 5
	cfg.Iter.Iterations = 20
	return cfg
}

func TestPreprocessFindsCandidates(t *testing.T) {
	w := smallWK()
	a := newAdvisor(t, w, fastConfig())
	pre := a.Preprocess(w.Plans())
	if len(pre.Candidates) == 0 {
		t.Fatal("no candidates on a sharing-heavy workload")
	}
	if len(pre.AssociatedQueries) == 0 {
		t.Fatal("no associated queries")
	}
}

func TestBuildProblemActualBenefits(t *testing.T) {
	w := smallWK()
	a := newAdvisor(t, w, fastConfig())
	pre := a.Preprocess(w.Plans())
	p, err := a.BuildProblem(w.Plans(), pre)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Instance.NumViews() != len(pre.Candidates) {
		t.Errorf("views %d != candidates %d", p.Instance.NumViews(), len(pre.Candidates))
	}
	if p.Instance.NumQueries() != len(pre.AssociatedQueries) {
		t.Errorf("instance queries %d != associated %d", p.Instance.NumQueries(), len(pre.AssociatedQueries))
	}
	// Actual benefits must be positive for at least some applicable
	// pairs (views save work), and zero for inapplicable pairs.
	positives := 0
	for ai, qi := range p.AssocQueries {
		applicable := map[int]bool{}
		for j, c := range p.Candidates {
			for _, q := range c.Queries {
				if q == qi {
					applicable[j] = true
				}
			}
		}
		for j, b := range p.Instance.Benefit[ai] {
			if !applicable[j] && b != 0 {
				t.Fatalf("inapplicable pair (%d,%d) has benefit %v", qi, j, b)
			}
			if b > 0 {
				positives++
			}
		}
	}
	if positives == 0 {
		t.Error("no positive benefits measured")
	}
	// Overheads are positive.
	for j, o := range p.Instance.Overhead {
		if o <= 0 {
			t.Errorf("candidate %d overhead %v", j, o)
		}
	}
	// Metadata database collected the measurements.
	nc, _ := a.Meta.Counts()
	if nc == 0 {
		t.Error("no cost records persisted")
	}
}

func TestSelectAllMethodsFeasible(t *testing.T) {
	w := smallWK()
	a := newAdvisor(t, w, fastConfig())
	pre := a.Preprocess(w.Plans())
	p, err := a.BuildProblem(w.Plans(), pre)
	if err != nil {
		t.Fatal(err)
	}
	for _, sk := range []SelectorKind{
		SelectorRLView, SelectorBigSub, SelectorIterView,
		SelectorTopkFreq, SelectorTopkOver, SelectorTopkBen, SelectorTopkNorm,
	} {
		a.Cfg.Selector = sk
		sel, err := a.Select(p)
		if err != nil {
			t.Fatalf("%v: %v", sk, err)
		}
		if sel.Method == "" || len(sel.Z) != p.Instance.NumViews() {
			t.Errorf("%v: malformed selection %+v", sk, sel)
		}
		if math.IsNaN(sel.Utility) {
			t.Errorf("%v: NaN utility", sk)
		}
		// Utility must agree with re-evaluating Z on the instance.
		if got := p.Instance.UtilityOfZ(sel.Z); got < sel.Utility-1e-6 {
			t.Errorf("%v: reported utility %v exceeds achievable %v", sk, sel.Utility, got)
		}
	}
}

func TestEndToEndActualRLView(t *testing.T) {
	w := smallWK()
	cfg := fastConfig()
	a := newAdvisor(t, w, cfg)
	rep, err := a.Run(w.Plans())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumQueries != 60 {
		t.Errorf("NumQueries = %d", rep.NumQueries)
	}
	if rep.RawCost <= 0 {
		t.Error("raw cost not measured")
	}
	if rep.NumViews == 0 {
		t.Error("no views selected on a sharing-heavy workload")
	}
	if rep.RewrittenQueries == 0 {
		t.Error("no queries rewritten")
	}
	if rep.RewriteBenefit <= 0 {
		t.Errorf("rewrite benefit = %v, want positive", rep.RewriteBenefit)
	}
	if rep.SavedRatio <= 0 {
		t.Errorf("saved ratio = %v, want positive", rep.SavedRatio)
	}
	if rep.RewrittenCost >= rep.RawCost {
		t.Errorf("rewritten cost %v should undercut raw %v", rep.RewrittenCost, rep.RawCost)
	}
}

func TestEndToEndWideDeep(t *testing.T) {
	w := smallWK()
	cfg := fastConfig()
	cfg.Estimator = EstimatorWideDeep
	cfg.WDTrain.Epochs = 4
	cfg.WDTrain.BatchSize = 16
	a := newAdvisor(t, w, cfg)
	rep, err := a.Run(w.Plans())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Estimator != "W-D" {
		t.Errorf("estimator label = %s", rep.Estimator)
	}
	if rep.SavedRatio <= 0 {
		t.Errorf("W-D pipeline saved ratio = %v, want positive", rep.SavedRatio)
	}
}

func TestEndToEndOptimizerEstimator(t *testing.T) {
	w := smallWK()
	cfg := fastConfig()
	cfg.Estimator = EstimatorOptimizer
	a := newAdvisor(t, w, cfg)
	rep, err := a.Run(w.Plans())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Estimator != "Optimizer" {
		t.Errorf("estimator label = %s", rep.Estimator)
	}
	// The analytic estimator is noisier but the pipeline must still
	// produce a coherent report.
	if rep.NumViews == 0 || rep.RewrittenQueries == 0 {
		t.Errorf("optimizer pipeline selected nothing: %+v", rep)
	}
}

func TestRunNoCandidates(t *testing.T) {
	// A workload with no sharing yields an empty, non-failing report.
	w := workload.WK(workload.WKParams{
		Name: "lonely", Projects: 2, FactsPerProject: 1, DimsPerProject: 1,
		Queries: 2, FragsPerProject: 1, Skew: 1, Seed: 5,
	})
	// Keep only one query per project to remove sharing.
	w.Queries = w.Queries[:1]
	a := newAdvisor(t, w, fastConfig())
	rep, err := a.Run(w.Plans())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumViews != 0 || rep.SavedRatio != 0 {
		t.Errorf("expected empty report, got %+v", rep)
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Pricing.Alpha != 1.67e-5 || cfg.Pricing.Beta != 1e-1 || cfg.Pricing.Gamma != 1e-3 {
		t.Error("pricing constants deviate from Table II")
	}
	if cfg.WDTrain.Epochs != 50 || cfg.WDTrain.LearnRate != 0.01 || cfg.WDTrain.BatchSize != 8 {
		t.Error("JOB training defaults deviate from Table II")
	}
	if cfg.RL.InitIterations != 10 || cfg.RL.Epochs != 90 || cfg.RL.MemoryThreshold != 20 {
		t.Error("RL defaults deviate from Table II (n1=10, n2=90, nm=20)")
	}
	if cfg.RL.Agent.Gamma != 0.9 {
		t.Error("reward decay deviates from Table II (γ=0.9)")
	}
	wk := WKConfig()
	if wk.WDTrain.Epochs != 20 || wk.WDTrain.LearnRate != 0.005 || wk.WDTrain.BatchSize != 128 {
		t.Error("WK training defaults deviate from Table II")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Estimator: "W-D", Selector: "RLView", NumQueries: 3, SavedRatio: 12.02}
	s := r.String()
	if s == "" {
		t.Fatal("empty report string")
	}
}

func TestEveryCandidateRewritesItsQueries(t *testing.T) {
	// Integration invariant: a candidate's Queries list promises that a
	// view built on it can rewrite each of those queries. If matching
	// (normalized fingerprints) and clustering (equivalence classes)
	// ever diverge, benefits silently vanish — this pins them together.
	w := smallWK()
	a := newAdvisor(t, w, fastConfig())
	pre := a.Preprocess(w.Plans())
	p, err := a.BuildProblem(w.Plans(), pre)
	if err != nil {
		t.Fatal(err)
	}
	for j, cand := range p.Candidates {
		for _, qi := range cand.Queries {
			_, n := rewriteWith(p, qi, j)
			if n == 0 {
				t.Fatalf("candidate %d (view %s) cannot rewrite query %d despite sharing its cluster",
					j, cand.View.ID, qi)
			}
		}
	}
}

func rewriteWith(p *Problem, qi, j int) (*plan.Node, int) {
	return rewrite.Rewrite(p.Queries[qi], []*rewrite.View{p.Candidates[j].View})
}

func TestRewriteMatchesEquivalentSpelling(t *testing.T) {
	// A query spelling the subquery differently (stacked filter over a
	// derived table) must still be rewritten by the view built on the
	// flat form.
	w := smallWK()
	a := newAdvisor(t, w, fastConfig())
	cat := w.Cat
	fact := cat.Tables()[1].Name // a fact table
	flat, err := plan.Parse(
		"select key, val from "+fact+" where cat = 1 and dt = 'v2'", cat)
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := plan.Parse(
		"select s.attr, count(*) as n from ( select u.key, u.val from ( select key, val, dt from "+fact+" where cat = 1 ) u where u.dt = 'v2' ) v inner join ( select id, attr from "+cat.Tables()[0].Name+" where grp = 3 ) s on v.key = s.id group by s.attr", cat)
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Mgr.Materialize(flat)
	if err != nil {
		t.Fatal(err)
	}
	_, n := rewrite.Rewrite(stacked, []*rewrite.View{v})
	if n != 1 {
		t.Fatalf("equivalent spelling not rewritten (%d replacements)", n)
	}
}

func TestRLViewPersistsAndReusesExperiences(t *testing.T) {
	w := smallWK()
	cfg := fastConfig()
	cfg.Selector = SelectorRLView
	a := newAdvisor(t, w, cfg)
	pre := a.Preprocess(w.Plans())
	p, err := a.BuildProblem(w.Plans(), pre)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Select(p); err != nil {
		t.Fatal(err)
	}
	_, ne := a.Meta.Counts()
	if ne == 0 {
		t.Fatal("RLView did not persist its replay pool to the metadata database")
	}
	// A second selection with pretraining enabled consumes the pool.
	a.Cfg.RLPretrainUpdates = 50
	sel, err := a.Select(p)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Method != "RLView" || len(sel.Z) != p.Instance.NumViews() {
		t.Fatalf("pretrained selection malformed: %+v", sel)
	}
	if !p.Instance.Feasible(&mvs.State{Z: sel.Z, Y: mustBestY(p, sel.Z)}) {
		t.Error("pretrained selection infeasible")
	}
}

func mustBestY(p *Problem, z []bool) [][]bool {
	y, _ := p.Instance.BestY(z)
	return y
}

func TestApplyPrefersOutermostView(t *testing.T) {
	// When both a join view and its contained fragment view are
	// selected, Apply must rewrite with the join view (outermost match)
	// and still produce a coherent report.
	w := smallWK()
	a := newAdvisor(t, w, fastConfig())
	pre := a.Preprocess(w.Plans())
	p, err := a.BuildProblem(w.Plans(), pre)
	if err != nil {
		t.Fatal(err)
	}
	// Find an overlapping pair (join candidate ⊃ fragment candidate).
	var jv, fv = -1, -1
	for x := range p.Candidates {
		for y := range p.Candidates {
			if x != y && p.Instance.Overlap[x][y] &&
				p.Candidates[x].Plan.Count() > p.Candidates[y].Plan.Count() {
				jv, fv = x, y
			}
		}
	}
	if jv < 0 {
		t.Skip("workload has no overlapping candidate pair")
	}
	z := make([]bool, p.Instance.NumViews())
	z[jv], z[fv] = true, true
	rep, err := a.Apply(p, &Selection{Method: "manual", Z: z})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumViews != 2 {
		t.Errorf("NumViews = %d, want 2", rep.NumViews)
	}
	if rep.RewrittenQueries == 0 {
		t.Error("no queries rewritten with the overlapping pair")
	}
}

func TestFitProgressCallback(t *testing.T) {
	w := smallWK()
	cfg := fastConfig()
	cfg.Estimator = EstimatorWideDeep
	epochs := 0
	cfg.WDTrain.Epochs = 3
	cfg.WDTrain.Progress = func(epoch int, loss float64) {
		epochs++
		if math.IsNaN(loss) {
			t.Errorf("epoch %d: NaN loss", epoch)
		}
	}
	a := newAdvisor(t, w, cfg)
	if _, err := a.Run(w.Plans()); err != nil {
		t.Fatal(err)
	}
	if epochs != 3 {
		t.Errorf("progress callback fired %d times, want 3", epochs)
	}
}
