package featenc

import (
	"autoview/internal/nn"
	"autoview/internal/plan"
)

// Forward-only encoder paths. Each Infer* mirrors its Encode*
// counterpart operation for operation — bit-identical outputs, enforced
// by the parity tests — but builds no backward closures and draws every
// intermediate from the caller's nn.Arena, so the serving-side W-D
// forward allocates nothing.

// Infer encodes a string forward-only (char embedding → two conv blocks
// → column-wise average pooling).
func (s *StringEncoder) Infer(str string, a *nn.Arena) nn.Vec {
	if len(str) == 0 {
		return a.Vec(s.Dim())
	}
	rows := a.Vecs(len(str))
	for i := 0; i < len(str); i++ {
		id := int(str[i])
		if id >= charSpace {
			id = 0
		}
		rows[i] = s.CharEmb.Infer(id, a)
	}
	m1 := s.Block1.Infer(rows, a)
	m2 := s.Block2.Infer(m1, a)
	out := a.Vec(s.Dim())
	nn.AvgPoolColsInto(out, m2)
	return out
}

// inferKeyword produces the (unpadded) keyword code forward-only.
func (e *Encoder) inferKeyword(word string, a *nn.Arena) nn.Vec {
	if e.Cfg.KeywordOneHot {
		v := a.Vec(e.Vocab.Size())
		v[e.Vocab.ID(word)] = 1
		return v
	}
	return e.KwEmb.Infer(e.Vocab.ID(word), a)
}

// inferString produces the (unpadded) string code forward-only.
func (e *Encoder) inferString(s string, a *nn.Arena) nn.Vec {
	if e.Cfg.StringOneHot {
		v := a.Vec(charSpace)
		if len(s) > 0 {
			inv := 1 / float64(len(s))
			for i := 0; i < len(s); i++ {
				id := int(s[i])
				if id >= charSpace {
					id = 0
				}
				v[id] += inv
			}
		}
		return v
	}
	return e.Str.Infer(s, a)
}

// InferToken encodes one plan token forward-only, padded to TokenDim.
func (e *Encoder) InferToken(t plan.Tok, a *nn.Arena) nn.Vec {
	var v nn.Vec
	if t.Str {
		v = e.inferString(t.Text, a)
	} else {
		v = e.inferKeyword(t.Text, a)
	}
	if len(v) == e.tokDim {
		return v
	}
	padded := a.Vec(e.tokDim)
	copy(padded, v)
	return padded
}

// InferPlan encodes a two-dimensional plan sequence forward-only
// (LSTM1 over each operator's tokens, LSTM2 over the operator codes; or
// nested average pooling under N-Exp).
func (e *Encoder) InferPlan(p [][]plan.Tok, a *nn.Arena) nn.Vec {
	if len(p) == 0 {
		return a.Vec(e.PlanDim())
	}
	opVecs := a.Vecs(len(p))
	for i, seq := range p {
		tokVecs := a.Vecs(len(seq))
		for j, tok := range seq {
			tokVecs[j] = e.InferToken(tok, a)
		}
		if e.Cfg.NoSequence {
			v := a.Vec(e.tokDim)
			nn.AvgPoolInto(v, tokVecs)
			opVecs[i] = v
		} else {
			opVecs[i] = e.LSTM1.Infer(tokVecs, a)
		}
	}
	if e.Cfg.NoSequence {
		v := a.Vec(e.tokDim)
		nn.AvgPoolInto(v, opVecs)
		return v
	}
	return e.LSTM2.Infer(opVecs, a)
}

// InferSchema encodes the schema keyword set forward-only (average
// pooling of keyword codes).
func (e *Encoder) InferSchema(keywords []string, a *nn.Arena) nn.Vec {
	if len(keywords) == 0 {
		return a.Vec(e.SchemaDim())
	}
	vecs := a.Vecs(len(keywords))
	for i, k := range keywords {
		vecs[i] = e.inferKeyword(k, a)
	}
	v := a.Vec(e.SchemaDim())
	nn.AvgPoolInto(v, vecs)
	return v
}
