// Package featenc implements the paper's feature extraction (Section IV-A)
// and the non-numerical feature encoders (Section IV-B2): shared keyword
// embedding, char-CNN string encoding, two-level LSTM plan encoding, and
// average-pooled schema encoding. Ablation variants (N-Kw, N-Str, N-Exp)
// are produced by the Config switches.
package featenc

import (
	"sort"

	"autoview/internal/catalog"
	"autoview/internal/plan"
)

// Vocab maps keywords to dense ids. Id 0 is reserved for unknown keywords.
type Vocab struct {
	ids   map[string]int
	words []string
}

// operatorKeywords are the plan-language keywords every vocabulary
// contains, independent of the database schema.
var operatorKeywords = []string{
	"Scan", "Filter", "Project", "Join", "Aggregate",
	"AND", "OR", "EQ", "NE", "LT", "LE", "GT", "GE",
	"COUNT", "SUM", "AVG", "MIN", "MAX",
	"inner", "left",
}

// NewVocab builds a vocabulary from the catalog's schema keywords, the
// fixed operator keywords, and any extra tokens (e.g. derived column
// names observed in plans). The keyword embedding matrix is shared across
// all features "as their keywords belong to the same database".
func NewVocab(cat *catalog.Catalog, extra []string) *Vocab {
	set := make(map[string]bool)
	for _, k := range operatorKeywords {
		set[k] = true
	}
	for _, k := range cat.Keywords() {
		set[k] = true
	}
	for _, k := range extra {
		set[k] = true
	}
	words := make([]string, 0, len(set))
	for k := range set {
		words = append(words, k)
	}
	sort.Strings(words)

	v := &Vocab{ids: make(map[string]int, len(words)+1)}
	v.words = append(v.words, "<unk>")
	v.ids["<unk>"] = 0
	for _, w := range words {
		v.ids[w] = len(v.words)
		v.words = append(v.words, w)
	}
	return v
}

// CollectPlanKeywords walks plans and returns every keyword token that
// appears in their serializations, for vocabulary construction.
func CollectPlanKeywords(plans []*plan.Node) []string {
	set := make(map[string]bool)
	for _, p := range plans {
		for _, seq := range plan.Serialize(p) {
			for _, tok := range seq {
				if !tok.Str {
					set[tok.Text] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewVocabFromWords reconstructs a vocabulary from its word list (as
// returned by Words), for loading persisted models.
func NewVocabFromWords(words []string) *Vocab {
	v := &Vocab{ids: make(map[string]int, len(words))}
	for _, w := range words {
		if _, dup := v.ids[w]; dup {
			continue
		}
		v.ids[w] = len(v.words)
		v.words = append(v.words, w)
	}
	if len(v.words) == 0 || v.words[0] != "<unk>" {
		panic("featenc: word list must start with <unk>")
	}
	return v
}

// Words returns the full word list in id order (index 0 is <unk>).
func (v *Vocab) Words() []string {
	return append([]string(nil), v.words...)
}

// ID returns the id for a keyword (0 for unknown).
func (v *Vocab) ID(word string) int { return v.ids[word] }

// Size returns the vocabulary size including the unknown slot.
func (v *Vocab) Size() int { return len(v.words) }

// Word returns the keyword with the given id.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return "<unk>"
	}
	return v.words[id]
}
