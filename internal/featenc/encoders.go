package featenc

import (
	"math/rand"

	"autoview/internal/nn"
	"autoview/internal/plan"
)

// Config selects the encoder architecture. The zero value with defaults
// applied is the paper's full W-D configuration; the three switches
// produce its ablation variants from Section VI-A:
//
//   - KeywordOneHot (N-Kw): one-hot vectors replace keyword embeddings.
//   - StringOneHot (N-Str): one-hot char vectors replace char embeddings
//     and the CNN is removed (strings encode as averaged char one-hots).
//   - NoSequence (N-Exp): the LSTM1/LSTM2 sequence models are replaced by
//     average pooling of keyword embeddings and string encodings.
type Config struct {
	EmbedDim      int // nd, default 16
	Hidden        int // LSTM hidden width, default 16
	KeywordOneHot bool
	StringOneHot  bool
	NoSequence    bool
}

// withDefaults fills unset dimensions.
func (c Config) withDefaults() Config {
	if c.EmbedDim <= 0 {
		c.EmbedDim = 16
	}
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	return c
}

// charSpace is the one-hot width of the char embedding input (the paper
// uses 128-dimensional one-hot codes per char).
const charSpace = 128

// StringEncoder implements the paper's String Encoding model: char
// embedding → stacked matrix → two convolution blocks → column-wise
// average pooling (Figure 6).
type StringEncoder struct {
	CharEmb *nn.Embedding
	Block1  *nn.ConvBlock
	Block2  *nn.ConvBlock
}

// NewStringEncoder allocates the model with embedding width dim.
func NewStringEncoder(dim int, rng *rand.Rand) *StringEncoder {
	return &StringEncoder{
		CharEmb: nn.NewEmbedding("str.char", charSpace, dim, rng),
		Block1:  nn.NewConvBlock("str.conv1", rng),
		Block2:  nn.NewConvBlock("str.conv2", rng),
	}
}

// Params implements nn.Module.
func (s *StringEncoder) Params() []*nn.Param {
	return nn.CollectParams(s.CharEmb, s.Block1, s.Block2)
}

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers, for data-parallel training (see nn.Trainer).
func (s *StringEncoder) ShareWeights() *StringEncoder {
	return &StringEncoder{
		CharEmb: s.CharEmb.ShareWeights(),
		Block1:  s.Block1.ShareWeights(),
		Block2:  s.Block2.ShareWeights(),
	}
}

// Dim returns the output width.
func (s *StringEncoder) Dim() int { return s.CharEmb.Dim() }

// Encode maps a string to a fixed-length vector.
func (s *StringEncoder) Encode(str string) (nn.Vec, nn.Backward) {
	if len(str) == 0 {
		return make(nn.Vec, s.Dim()), func(nn.Vec) nn.Vec { return nil }
	}
	rows := make([]nn.Vec, len(str))
	embBacks := make([]nn.Backward, len(str))
	for i := 0; i < len(str); i++ {
		id := int(str[i])
		if id >= charSpace {
			id = 0
		}
		rows[i], embBacks[i] = s.CharEmb.Forward(id)
	}
	m1, b1 := s.Block1.Forward(rows)
	m2, b2 := s.Block2.Forward(m1)
	out, bp := nn.AvgPoolCols(m2)
	back := func(dy nn.Vec) nn.Vec {
		dm2 := bp([]nn.Vec{dy})
		dm1 := b2(dm2)
		drows := b1(dm1)
		for i, db := range embBacks {
			db(drows[i])
		}
		return nil
	}
	return out, back
}

// Encoder bundles the non-numerical feature encoders: the schema encoding
// model Mm and the plan sequence encoding model Me, sharing one keyword
// space.
type Encoder struct {
	Vocab *Vocab
	Cfg   Config

	KwEmb  *nn.Embedding  // nil when KeywordOneHot
	Str    *StringEncoder // nil when StringOneHot
	LSTM1  *nn.LSTM       // nil when NoSequence
	LSTM2  *nn.LSTM       // nil when NoSequence
	tokDim int
}

// NewEncoder builds the encoder stack for a vocabulary.
func NewEncoder(vocab *Vocab, cfg Config, rng *rand.Rand) *Encoder {
	cfg = cfg.withDefaults()
	e := &Encoder{Vocab: vocab, Cfg: cfg}
	kwDim := cfg.EmbedDim
	if cfg.KeywordOneHot {
		kwDim = vocab.Size()
	} else {
		e.KwEmb = nn.NewEmbedding("kw", vocab.Size(), cfg.EmbedDim, rng)
	}
	strDim := cfg.EmbedDim
	if cfg.StringOneHot {
		strDim = charSpace
	} else {
		e.Str = NewStringEncoder(cfg.EmbedDim, rng)
	}
	e.tokDim = kwDim
	if strDim > e.tokDim {
		e.tokDim = strDim
	}
	if !cfg.NoSequence {
		e.LSTM1 = nn.NewLSTM("plan.lstm1", e.tokDim, cfg.Hidden, rng)
		e.LSTM2 = nn.NewLSTM("plan.lstm2", cfg.Hidden, cfg.Hidden, rng)
	}
	return e
}

// Params implements nn.Module.
func (e *Encoder) Params() []*nn.Param {
	var out []*nn.Param
	if e.KwEmb != nil {
		out = append(out, e.KwEmb.Params()...)
	}
	if e.Str != nil {
		out = append(out, e.Str.Params()...)
	}
	if e.LSTM1 != nil {
		out = append(out, e.LSTM1.Params()...)
	}
	if e.LSTM2 != nil {
		out = append(out, e.LSTM2.Params()...)
	}
	return out
}

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers, in the same parameter order as the original. The
// vocabulary and configuration are shared (both immutable after
// construction), so replicas encode identically to the original while
// accumulating gradients independently.
func (e *Encoder) ShareWeights() *Encoder {
	cp := *e
	if e.KwEmb != nil {
		cp.KwEmb = e.KwEmb.ShareWeights()
	}
	if e.Str != nil {
		cp.Str = e.Str.ShareWeights()
	}
	if e.LSTM1 != nil {
		cp.LSTM1 = e.LSTM1.ShareWeights()
	}
	if e.LSTM2 != nil {
		cp.LSTM2 = e.LSTM2.ShareWeights()
	}
	return &cp
}

// TokenDim is the uniform width token encodings are padded to.
func (e *Encoder) TokenDim() int { return e.tokDim }

// PlanDim is the width of one plan's encoding.
func (e *Encoder) PlanDim() int {
	if e.Cfg.NoSequence {
		return e.tokDim
	}
	return e.Cfg.Hidden
}

// SchemaDim is the width of the schema encoding Dm.
func (e *Encoder) SchemaDim() int {
	if e.Cfg.KeywordOneHot {
		return e.Vocab.Size()
	}
	return e.Cfg.EmbedDim
}

// encodeKeyword produces the (unpadded) keyword code.
func (e *Encoder) encodeKeyword(word string) (nn.Vec, nn.Backward) {
	if e.Cfg.KeywordOneHot {
		v := make(nn.Vec, e.Vocab.Size())
		v[e.Vocab.ID(word)] = 1
		return v, func(nn.Vec) nn.Vec { return nil }
	}
	return e.KwEmb.Forward(e.Vocab.ID(word))
}

// encodeString produces the (unpadded) string code.
func (e *Encoder) encodeString(s string) (nn.Vec, nn.Backward) {
	if e.Cfg.StringOneHot {
		v := make(nn.Vec, charSpace)
		if len(s) > 0 {
			inv := 1 / float64(len(s))
			for i := 0; i < len(s); i++ {
				id := int(s[i])
				if id >= charSpace {
					id = 0
				}
				v[id] += inv
			}
		}
		return v, func(nn.Vec) nn.Vec { return nil }
	}
	return e.Str.Encode(s)
}

// EncodeToken encodes one plan token, padded to TokenDim.
func (e *Encoder) EncodeToken(t plan.Tok) (nn.Vec, nn.Backward) {
	var v nn.Vec
	var back nn.Backward
	if t.Str {
		v, back = e.encodeString(t.Text)
	} else {
		v, back = e.encodeKeyword(t.Text)
	}
	if len(v) == e.tokDim {
		return v, back
	}
	padded := make(nn.Vec, e.tokDim)
	copy(padded, v)
	pback := func(dy nn.Vec) nn.Vec {
		back(dy[:len(v)])
		return nil
	}
	return padded, pback
}

// EncodePlan encodes a two-dimensional plan sequence into De: LSTM1 over
// each operator's tokens, LSTM2 over the operator codes (Figure 7(a)); or
// nested average pooling under N-Exp.
func (e *Encoder) EncodePlan(p [][]plan.Tok) (nn.Vec, nn.Backward) {
	if len(p) == 0 {
		return make(nn.Vec, e.PlanDim()), func(nn.Vec) nn.Vec { return nil }
	}
	opVecs := make([]nn.Vec, len(p))
	opBacks := make([]func(dy nn.Vec), len(p))
	for i, seq := range p {
		tokVecs := make([]nn.Vec, len(seq))
		tokBacks := make([]nn.Backward, len(seq))
		for j, tok := range seq {
			tokVecs[j], tokBacks[j] = e.EncodeToken(tok)
		}
		if e.Cfg.NoSequence {
			v, pb := nn.AvgPool(tokVecs)
			opVecs[i] = v
			opBacks[i] = func(dy nn.Vec) {
				shared := pb(dy)
				for _, tb := range tokBacks {
					tb(shared)
				}
			}
		} else {
			v, lb := e.LSTM1.Forward(tokVecs)
			opVecs[i] = v
			opBacks[i] = func(dy nn.Vec) {
				dts := lb(dy)
				for j, tb := range tokBacks {
					tb(dts[j])
				}
			}
		}
	}
	if e.Cfg.NoSequence {
		v, pb := nn.AvgPool(opVecs)
		back := func(dy nn.Vec) nn.Vec {
			shared := pb(dy)
			for _, ob := range opBacks {
				ob(shared)
			}
			return nil
		}
		return v, back
	}
	v, lb := e.LSTM2.Forward(opVecs)
	back := func(dy nn.Vec) nn.Vec {
		dops := lb(dy)
		for i, ob := range opBacks {
			ob(dops[i])
		}
		return nil
	}
	return v, back
}

// EncodeSchema encodes the associated tables' keyword set into Dm by
// average pooling keyword codes (Figure 7(b)).
func (e *Encoder) EncodeSchema(keywords []string) (nn.Vec, nn.Backward) {
	if len(keywords) == 0 {
		return make(nn.Vec, e.SchemaDim()), func(nn.Vec) nn.Vec { return nil }
	}
	vecs := make([]nn.Vec, len(keywords))
	backs := make([]nn.Backward, len(keywords))
	for i, k := range keywords {
		vecs[i], backs[i] = e.encodeKeyword(k)
	}
	v, pb := nn.AvgPool(vecs)
	back := func(dy nn.Vec) nn.Vec {
		shared := pb(dy)
		for _, b := range backs {
			b(shared)
		}
		return nil
	}
	return v, back
}
