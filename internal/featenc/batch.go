package featenc

import (
	"math"

	"autoview/internal/catalog"
)

// BatchExtractor amortizes ExtractPre across the pairs of one request
// and across requests. Two costs of the plain function are hoisted:
//
//   - Per-table work: catalog.Table.SchemaKeywords allocates a fresh
//     keyword slice on every call and the stats are re-read per pair;
//     the extractor memoizes both per table name (the catalog is
//     immutable while serving, so entries never go stale under one
//     catalog).
//   - Per-pair slices: Numeric and Schema are carved out of grow-only
//     backing arrays instead of individual allocations, so a warm
//     extractor serves whole requests without touching the heap.
//
// Aliasing contract: the Numeric and Schema slices of every Features
// returned since the last Reset share the extractor's backing arrays
// and stay valid only until the next Reset. Callers must not retain
// them past that point (the serving scratch recycles the extractor only
// after its request fully completes). Not safe for concurrent use; pool
// extractors per request like any other scratch.
//
// Extraction is bit-identical to ExtractPre: the sorted-merge visit
// order, the float summation order, and the keyword sequence are all
// the same, only the provenance of the buffers differs (pinned by
// TestBatchExtractorMatchesExtractPre).
type BatchExtractor struct {
	cat    *catalog.Catalog
	tables map[string]*tableFeat

	numeric []float64 // backing for Numeric vectors handed out since Reset
	schema  []string  // backing for Schema slices handed out since Reset
}

// tableFeat is the memoized per-table slice of feature extraction.
type tableFeat struct {
	ok       bool // table exists in the catalog
	cols     float64
	rows     float64
	bytes    float64
	keywords []string
}

// NewBatchExtractor returns an extractor bound to cat.
func NewBatchExtractor(cat *catalog.Catalog) *BatchExtractor {
	ex := &BatchExtractor{}
	ex.Reset(cat)
	return ex
}

// Reset invalidates every Features handed out so far and rebinds the
// extractor to cat: the slice backing arrays rewind for reuse, and the
// per-table memo survives unless the catalog actually changed.
func (ex *BatchExtractor) Reset(cat *catalog.Catalog) {
	ex.numeric = ex.numeric[:0]
	ex.schema = ex.schema[:0]
	if cat != ex.cat || ex.tables == nil {
		ex.cat = cat
		ex.tables = make(map[string]*tableFeat)
	}
}

// table returns the memoized per-table features, populating the memo on
// first sight of a name.
func (ex *BatchExtractor) table(name string) *tableFeat {
	if tf, ok := ex.tables[name]; ok {
		return tf
	}
	tf := &tableFeat{}
	if t, ok := ex.cat.Table(name); ok {
		tf.ok = true
		tf.cols = float64(len(t.Columns))
		tf.rows = float64(t.Stats.Rows)
		tf.bytes = float64(t.Stats.Bytes)
		tf.keywords = t.SchemaKeywords()
	}
	ex.tables[name] = tf
	return tf
}

// ExtractPre is the batched twin of the package-level ExtractPre:
// identical output, amortized cost. See the type comment for the
// aliasing contract on the returned slices.
func (ex *BatchExtractor) ExtractPre(q, v *PlanFeat) Features {
	f := Features{
		QueryPlan: q.Ser,
		ViewPlan:  v.Ser,
	}
	// The same sorted-merge visit order as the plain function: keyword
	// sequence and float summation order must match bit for bit.
	schemaStart := len(ex.schema)
	var numTables, numCols, totalRows, totalBytes, maxRows float64
	qi, vi := 0, 0
	for qi < len(q.Tables) || vi < len(v.Tables) {
		var name string
		switch {
		case vi >= len(v.Tables):
			name = q.Tables[qi]
			qi++
		case qi >= len(q.Tables):
			name = v.Tables[vi]
			vi++
		case q.Tables[qi] < v.Tables[vi]:
			name = q.Tables[qi]
			qi++
		case q.Tables[qi] > v.Tables[vi]:
			name = v.Tables[vi]
			vi++
		default:
			name = q.Tables[qi]
			qi++
			vi++
		}
		t := ex.table(name)
		if !t.ok {
			continue
		}
		numTables++
		numCols += t.cols
		totalRows += t.rows
		totalBytes += t.bytes
		if t.rows > maxRows {
			maxRows = t.rows
		}
		ex.schema = append(ex.schema, t.keywords...)
	}
	if n := len(ex.schema); n > schemaStart {
		// Full-capacity subslice: later appends for the next pair grow
		// past cap and can never scribble over this pair's view.
		f.Schema = ex.schema[schemaStart:n:n]
	}

	n := len(ex.numeric)
	ex.numeric = append(ex.numeric,
		numTables,
		numCols,
		math.Log1p(totalRows),
		math.Log1p(totalBytes),
		math.Log1p(maxRows),
		float64(q.Count),
		float64(v.Count),
		float64(len(f.QueryPlan)-len(f.ViewPlan)),
	)
	f.Numeric = ex.numeric[n : n+NumericDim : n+NumericDim]
	return f
}
