package featenc

import (
	"autoview/internal/nn"
	"autoview/internal/plan"
)

// Encoder32 is the float32 inference mirror of Encoder: the same
// architecture over flat f32 weight copies and the blocked kernels of
// internal/nn, materialized from a trained Encoder (NewEncoder32) and
// rebuilt whenever the f64 weights change. Outputs agree with the f64
// Infer* paths within the tolerance budgets pinned by the parity tests.
//
// The mirror folds work that the f64 path redoes per token:
//
//   - kwPre1 precomputes B + Wx·code(kw) — the input half of LSTM1's
//     gate pre-activations — for every vocabulary keyword, so the
//     dominant token kind costs zero input-matvec work per step;
//   - LSTM2's input half is batched over all operator codes with one
//     MatMulT32 call instead of a matvec per step.
//
// Both folds are bit-identical to the unfolded f32 computation (the
// kernels reduce in the canonical order regardless of batching), so
// they never widen the f32-vs-f64 envelope.
type Encoder32 struct {
	cfg    Config
	vocab  *Vocab
	tokDim int

	kwEmb *nn.Embedding32  // nil when KeywordOneHot
	str   *StringEncoder32 // nil when StringOneHot

	lstm1, lstm2 *nn.LSTMCell32 // nil when NoSequence
	kwPre1       nn.Vec32       // [vocab × 4H] folded keyword gate pre-activations

	planDim, schemaDim int
}

// StringEncoder32 mirrors StringEncoder over flat f32 matrices.
type StringEncoder32 struct {
	charEmb *nn.Embedding32
	b1, b2  *nn.ConvBlock32
	dim     int
}

// NewStringEncoder32 materializes the mirror of a trained encoder.
func NewStringEncoder32(s *StringEncoder) *StringEncoder32 {
	return &StringEncoder32{
		charEmb: nn.NewEmbedding32(s.CharEmb),
		b1:      nn.NewConvBlock32(s.Block1),
		b2:      nn.NewConvBlock32(s.Block2),
		dim:     s.Dim(),
	}
}

// Infer encodes a string forward-only (char embedding → two conv
// blocks → row-average pooling), mirroring StringEncoder.Infer.
func (s *StringEncoder32) Infer(str string, a *nn.Arena) nn.Vec32 {
	if len(str) == 0 {
		return a.Vec32(s.dim)
	}
	T, D := len(str), s.dim
	m := a.Vec32(T * D)
	for i := 0; i < T; i++ {
		id := int(str[i])
		if id >= charSpace {
			id = 0
		}
		copy(m[i*D:], s.charEmb.Row(id))
	}
	m1 := s.b1.Infer(m, T, D, a)
	m2 := s.b2.Infer(m1, T, D, a)
	out := a.Vec32(D)
	nn.AvgPoolRows32(out, m2, T, D)
	return out
}

// NewEncoder32 materializes the float32 mirror of a trained encoder.
func NewEncoder32(e *Encoder) *Encoder32 {
	m := &Encoder32{
		cfg:       e.Cfg,
		vocab:     e.Vocab,
		tokDim:    e.tokDim,
		planDim:   e.PlanDim(),
		schemaDim: e.SchemaDim(),
	}
	if e.KwEmb != nil {
		m.kwEmb = nn.NewEmbedding32(e.KwEmb)
	}
	if e.Str != nil {
		m.str = NewStringEncoder32(e.Str)
	}
	if e.LSTM1 != nil {
		m.lstm1 = nn.NewLSTMCell32(e.LSTM1.Cell)
		m.lstm2 = nn.NewLSTMCell32(e.LSTM2.Cell)
		m.foldKeywordPre()
	}
	return m
}

// foldKeywordPre precomputes the LSTM1 input half for every vocabulary
// keyword: kwPre1[id] = B + Wx·code(id). Under KeywordOneHot the code
// is a one-hot, so the product is a column gather; otherwise it is the
// same PreX matvec the runtime path would perform, making the fold
// bit-identical to on-the-fly evaluation.
func (m *Encoder32) foldKeywordPre() {
	V := m.vocab.Size()
	H4 := 4 * m.lstm1.Hidden
	m.kwPre1 = make(nn.Vec32, V*H4)
	for id := 0; id < V; id++ {
		dst := m.kwPre1[id*H4 : id*H4+H4]
		if m.cfg.KeywordOneHot {
			for r := 0; r < H4; r++ {
				dst[r] = m.lstm1.B[r] + m.lstm1.Wx[r*m.lstm1.In+id]
			}
			continue
		}
		m.lstm1.PreX(dst, m.kwEmb.Row(id))
	}
}

// histInto builds the averaged char one-hot (N-Str string code) into
// dst (width charSpace, pre-zeroed).
func histInto(dst nn.Vec32, s string) {
	if len(s) == 0 {
		return
	}
	inv := 1 / float32(len(s))
	for i := 0; i < len(s); i++ {
		id := int(s[i])
		if id >= charSpace {
			id = 0
		}
		dst[id] += inv
	}
}

// stringVec produces the (unpadded) string code.
func (m *Encoder32) stringVec(s string, a *nn.Arena) nn.Vec32 {
	if m.cfg.StringOneHot {
		v := a.Vec32(charSpace)
		histInto(v, s)
		return v
	}
	return m.str.Infer(s, a)
}

// tokenVecInto writes one token's padded code into dst (width tokDim,
// pre-zeroed) — the N-Exp path, which needs materialized vectors for
// average pooling.
func (m *Encoder32) tokenVecInto(dst nn.Vec32, t plan.Tok, a *nn.Arena) {
	if t.Str {
		if m.cfg.StringOneHot {
			histInto(dst, t.Text)
			return
		}
		copy(dst, m.str.Infer(t.Text, a))
		return
	}
	if m.cfg.KeywordOneHot {
		dst[m.vocab.ID(t.Text)] = 1
		return
	}
	copy(dst, m.kwEmb.Row(m.vocab.ID(t.Text)))
}

// InferPlan mirrors Encoder.InferPlan: LSTM1 over each operator's
// tokens, LSTM2 over the operator codes; nested average pooling under
// N-Exp.
func (m *Encoder32) InferPlan(p [][]plan.Tok, a *nn.Arena) nn.Vec32 {
	if len(p) == 0 {
		return a.Vec32(m.planDim)
	}
	if m.cfg.NoSequence {
		opsBuf := a.Vec32(len(p) * m.tokDim)
		for i, seq := range p {
			tokBuf := a.Vec32(len(seq) * m.tokDim)
			for j, tok := range seq {
				m.tokenVecInto(tokBuf[j*m.tokDim:(j+1)*m.tokDim], tok, a)
			}
			nn.AvgPoolRows32(opsBuf[i*m.tokDim:(i+1)*m.tokDim], tokBuf, len(seq), m.tokDim)
		}
		out := a.Vec32(m.tokDim)
		nn.AvgPoolRows32(out, opsBuf, len(p), m.tokDim)
		return out
	}

	H := m.lstm1.Hidden
	H4 := 4 * H
	opsBuf := a.Vec32(len(p) * H)
	h := a.Vec32(H)
	c := a.Vec32(H)
	pre := a.Vec32(H4)
	preX := a.Vec32(H4)
	for i, seq := range p {
		clear(h)
		clear(c)
		for _, tok := range seq {
			px := preX
			if tok.Str {
				s := m.stringVec(tok.Text, a)
				m.lstm1.PreX(preX, s) // zero-padding beyond len(s) contributes nothing
			} else {
				id := m.vocab.ID(tok.Text)
				px = m.kwPre1[id*H4 : id*H4+H4]
			}
			m.lstm1.Step(h, c, pre, px)
		}
		copy(opsBuf[i*H:], h)
	}

	// LSTM2: the input halves of every step are known up front — batch
	// them in one matmul, leaving only the recurrent half sequential.
	pre2 := a.Vec32(len(p) * H4)
	nn.MatMulT32(pre2, opsBuf, len(p), H, m.lstm2.Wx, H4, m.lstm2.B)
	h2 := a.Vec32(H)
	c2 := a.Vec32(H)
	for i := range p {
		m.lstm2.Step(h2, c2, pre, pre2[i*H4:(i+1)*H4])
	}
	return h2
}

// InferSchema mirrors Encoder.InferSchema: average pooling of keyword
// codes. Under KeywordOneHot the average of one-hots is a scaled
// count vector, computed directly without materializing the one-hots.
func (m *Encoder32) InferSchema(keywords []string, a *nn.Arena) nn.Vec32 {
	out := a.Vec32(m.schemaDim)
	if len(keywords) == 0 {
		return out
	}
	inv := 1 / float32(len(keywords))
	if m.cfg.KeywordOneHot {
		for _, k := range keywords {
			out[m.vocab.ID(k)] += inv
		}
		return out
	}
	for _, k := range keywords {
		row := m.kwEmb.Row(m.vocab.ID(k))
		for i, v := range row {
			out[i] += v
		}
	}
	for i := range out {
		out[i] *= inv
	}
	return out
}

// PlanDim is the width of one plan's encoding (same as the f64 side).
func (m *Encoder32) PlanDim() int { return m.planDim }

// SchemaDim is the width of the schema encoding (same as the f64 side).
func (m *Encoder32) SchemaDim() int { return m.schemaDim }
