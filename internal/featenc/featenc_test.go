package featenc

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/nn"
	"autoview/internal/plan"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "memo", Type: catalog.TypeString, Distinct: 20},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 400, Bytes: 12800},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "action", Type: catalog.TypeString, Distinct: 10},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 600, Bytes: 19200},
		},
	} {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

const exampleSQL = `select t1.user_id, count(*) as cnt
from ( select user_id, memo from user_memo where dt='1010' and memo_type = 'pen' ) t1
inner join ( select user_id, action from user_action where type = 1 and dt='1010' ) t2
on t1.user_id = t2.user_id group by t1.user_id`

func examplePlans(t *testing.T, cat *catalog.Catalog) (*plan.Node, *plan.Node) {
	t.Helper()
	q, err := plan.Parse(exampleSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	subs := plan.ExtractSubqueries(q)
	return q, subs[0].Root
}

func TestVocab(t *testing.T) {
	cat := testCatalog(t)
	v := NewVocab(cat, []string{"cnt"})
	if v.ID("<unk>") != 0 {
		t.Error("unknown must map to 0")
	}
	for _, w := range []string{"Scan", "Filter", "EQ", "user_memo", "user_id", "Int", "cnt"} {
		if v.ID(w) == 0 {
			t.Errorf("vocabulary missing %q", w)
		}
	}
	if v.ID("never-seen") != 0 {
		t.Error("unseen keyword should map to 0")
	}
	if v.Word(v.ID("Scan")) != "Scan" {
		t.Error("Word/ID not inverse")
	}
	if v.Word(-1) != "<unk>" || v.Word(1<<20) != "<unk>" {
		t.Error("out-of-range Word should be <unk>")
	}
}

func TestCollectPlanKeywords(t *testing.T) {
	cat := testCatalog(t)
	q, _ := examplePlans(t, cat)
	kws := CollectPlanKeywords([]*plan.Node{q})
	want := map[string]bool{"Aggregate": true, "cnt": true, "COUNT": true, "user_id": true}
	for w := range want {
		found := false
		for _, k := range kws {
			if k == w {
				found = true
			}
		}
		if !found {
			t.Errorf("CollectPlanKeywords missing %q", w)
		}
	}
	// Literals must not appear.
	for _, k := range kws {
		if k == "'1010'" || k == "'pen'" {
			t.Errorf("literal %q leaked into keywords", k)
		}
	}
}

func TestExtractFeatures(t *testing.T) {
	cat := testCatalog(t)
	q, v := examplePlans(t, cat)
	f := Extract(q, v, cat)
	if len(f.Numeric) != NumericDim {
		t.Fatalf("numeric dim %d, want %d", len(f.Numeric), NumericDim)
	}
	if f.Numeric[0] != 2 { // both tables associated
		t.Errorf("numTables = %v, want 2", f.Numeric[0])
	}
	if f.Numeric[1] != 8 {
		t.Errorf("numCols = %v, want 8", f.Numeric[1])
	}
	if math.Abs(f.Numeric[2]-math.Log1p(1000)) > 1e-9 {
		t.Errorf("log rows = %v", f.Numeric[2])
	}
	if len(f.QueryPlan) != 8 {
		t.Errorf("query plan ops = %d, want 8", len(f.QueryPlan))
	}
	if len(f.ViewPlan) >= len(f.QueryPlan) {
		t.Error("view plan should be shorter than query plan")
	}
	if len(f.Schema) != 18 { // 2 tables × (1 name + 4 cols + 4 types)
		t.Errorf("schema keywords = %d, want 18", len(f.Schema))
	}
}

func TestNormalizer(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	n := FitNormalizer(rows)
	out := n.Apply([]float64{3, 10})
	if math.Abs(out[0]) > 1e-9 {
		t.Errorf("mean-centered value = %v, want 0", out[0])
	}
	// Zero-variance dimension normalizes to 0, not NaN.
	if out[1] != 0 || math.IsNaN(out[1]) {
		t.Errorf("constant dimension = %v, want 0", out[1])
	}
	sum := 0.0
	for _, r := range rows {
		v := n.Apply(r)[0]
		sum += v * v
	}
	if math.Abs(sum/3-1) > 1e-9 {
		t.Errorf("unit variance violated: %v", sum/3)
	}
	empty := FitNormalizer(nil)
	if len(empty.Mean) != NumericDim {
		t.Error("empty normalizer should default to NumericDim")
	}
}

func TestEncoderDims(t *testing.T) {
	cat := testCatalog(t)
	vocab := NewVocab(cat, nil)
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"wd", Config{}},
		{"nkw", Config{KeywordOneHot: true}},
		{"nstr", Config{StringOneHot: true}},
		{"nexp", Config{NoSequence: true}},
	}
	q, v := examplePlans(t, cat)
	f := Extract(q, v, cat)
	for _, c := range cases {
		e := NewEncoder(vocab, c.cfg, rng)
		dm, _ := e.EncodeSchema(f.Schema)
		if len(dm) != e.SchemaDim() {
			t.Errorf("%s: schema dim %d != %d", c.name, len(dm), e.SchemaDim())
		}
		de, _ := e.EncodePlan(f.QueryPlan)
		if len(de) != e.PlanDim() {
			t.Errorf("%s: plan dim %d != %d", c.name, len(de), e.PlanDim())
		}
		tok, _ := e.EncodeToken(plan.Tok{Text: "Scan"})
		if len(tok) != e.TokenDim() {
			t.Errorf("%s: token dim %d != %d", c.name, len(tok), e.TokenDim())
		}
		stok, _ := e.EncodeToken(plan.Tok{Text: "'1010'", Str: true})
		if len(stok) != e.TokenDim() {
			t.Errorf("%s: string token dim %d != %d", c.name, len(stok), e.TokenDim())
		}
	}
}

func TestStringEncoderGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	se := NewStringEncoder(4, rng)
	loss := func() float64 {
		y, _ := se.Encode("abc")
		var l float64
		for i, v := range y {
			l += v * float64(i+1)
		}
		return l
	}
	nn.ZeroGrads(se.Params())
	y, back := se.Encode("abc")
	dy := make(nn.Vec, len(y))
	for i := range dy {
		dy[i] = float64(i + 1)
	}
	back(dy)
	const eps = 1e-6
	for _, p := range se.Params() {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + eps
			lp := loss()
			p.Val[i] = orig - eps
			lm := loss()
			p.Val[i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(p.Grad[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %g, want %g", p, i, p.Grad[i], want)
			}
		}
	}
}

func TestStringEncoderEmptyAndNonASCII(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	se := NewStringEncoder(4, rng)
	y, back := se.Encode("")
	for _, v := range y {
		if v != 0 {
			t.Fatal("empty string should encode to zeros")
		}
	}
	back(make(nn.Vec, 4)) // must not panic
	if y2, _ := se.Encode("\xffhü"); len(y2) != 4 {
		t.Fatal("non-ASCII bytes should clamp, not panic")
	}
}

func TestEncodePlanGradientsFlowToEmbeddings(t *testing.T) {
	cat := testCatalog(t)
	vocab := NewVocab(cat, nil)
	rng := rand.New(rand.NewSource(4))
	e := NewEncoder(vocab, Config{EmbedDim: 4, Hidden: 4}, rng)
	q, v := examplePlans(t, cat)
	f := Extract(q, v, cat)

	nn.ZeroGrads(e.Params())
	de, back := e.EncodePlan(f.QueryPlan)
	dy := make(nn.Vec, len(de))
	for i := range dy {
		dy[i] = 1
	}
	back(dy)
	var kwGrad float64
	for _, g := range e.KwEmb.W.Grad {
		kwGrad += math.Abs(g)
	}
	if kwGrad == 0 {
		t.Error("no gradient reached keyword embeddings")
	}
	var strGrad float64
	for _, p := range e.Str.Params() {
		for _, g := range p.Grad {
			strGrad += math.Abs(g)
		}
	}
	if strGrad == 0 {
		t.Error("no gradient reached the string encoder")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	cat := testCatalog(t)
	vocab := NewVocab(cat, nil)
	rng := rand.New(rand.NewSource(5))
	e := NewEncoder(vocab, Config{}, rng)
	q, v := examplePlans(t, cat)
	f := Extract(q, v, cat)
	a, _ := e.EncodePlan(f.QueryPlan)
	b, _ := e.EncodePlan(f.QueryPlan)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding is not deterministic")
		}
	}
}

func TestVocabWordsRoundTrip(t *testing.T) {
	cat := testCatalog(t)
	v := NewVocab(cat, []string{"extra"})
	words := v.Words()
	v2 := NewVocabFromWords(words)
	if v2.Size() != v.Size() {
		t.Fatalf("sizes differ: %d vs %d", v2.Size(), v.Size())
	}
	for _, w := range []string{"Scan", "user_memo", "extra", "<unk>"} {
		if v2.ID(w) != v.ID(w) {
			t.Errorf("id of %q differs after round trip", w)
		}
	}
}

func TestVocabFromWordsRequiresUnk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("word list without <unk> should panic")
		}
	}()
	NewVocabFromWords([]string{"a", "b"})
}

// TestExtractPreParity pins the precompute split: ExtractPre over
// Precompute results must reproduce Extract bit for bit (the serving
// cache substitutes one for the other on warm requests), Precompute must
// yield sorted deduplicated tables, and reusing a PlanFeat across calls
// must not mutate it.
func TestExtractPreParity(t *testing.T) {
	cat := testCatalog(t)
	q, v := examplePlans(t, cat)
	pq, pv := Precompute(q), Precompute(v)
	if !sort.StringsAreSorted(pq.Tables) || !sort.StringsAreSorted(pv.Tables) {
		t.Fatalf("Precompute tables not sorted: %v / %v", pq.Tables, pv.Tables)
	}
	for _, pf := range []*PlanFeat{pq, pv} {
		for i := 1; i < len(pf.Tables); i++ {
			if pf.Tables[i] == pf.Tables[i-1] {
				t.Fatalf("duplicate table %q survived Precompute", pf.Tables[i])
			}
		}
	}
	cold := Extract(q, v, cat)
	tablesBefore := append([]string(nil), pq.Tables...)
	for round := 0; round < 3; round++ {
		warm := ExtractPre(pq, pv, cat)
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("round %d: ExtractPre diverges from Extract:\ncold %+v\nwarm %+v", round, cold, warm)
		}
	}
	if !reflect.DeepEqual(tablesBefore, pq.Tables) {
		t.Fatalf("ExtractPre mutated PlanFeat tables: %v -> %v", tablesBefore, pq.Tables)
	}
	// Asymmetric pairing: the q/v halves must not be interchangeable by
	// accident (Count and plan-length features are signed).
	flipped := ExtractPre(pv, pq, cat)
	if reflect.DeepEqual(cold.Numeric, flipped.Numeric) {
		t.Fatal("flipped pairing produced identical numeric features")
	}
}

// TestBatchExtractorMatchesExtractPre pins the batched extractor's
// contract: bit-identical Features to the package-level ExtractPre for
// every pairing, across Reset cycles (warm backing arrays and a warm
// table memo must not change results), with earlier pairs' slices intact
// while later pairs of the same batch are extracted, and with a missing
// table degrading exactly like the plain function.
func TestBatchExtractorMatchesExtractPre(t *testing.T) {
	cat := testCatalog(t)
	q, v := examplePlans(t, cat)
	pq, pv := Precompute(q), Precompute(v)
	ex := NewBatchExtractor(cat)

	pairs := [][2]*PlanFeat{{pq, pv}, {pv, pq}, {pq, pq}, {pv, pv}}
	for round := 0; round < 3; round++ {
		ex.Reset(cat)
		got := make([]Features, len(pairs))
		want := make([]Features, len(pairs))
		for i, p := range pairs {
			got[i] = ex.ExtractPre(p[0], p[1])
			want[i] = ExtractPre(p[0], p[1], cat)
		}
		// Compare only after the whole batch is out: this doubles as the
		// aliasing check that pair i's carved-out slices survive the
		// appends for pairs i+1..n.
		for i := range pairs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d pair %d: batch extractor diverges:\n got %+v\nwant %+v", round, i, got[i], want[i])
			}
		}
	}

	// A plan referencing an unknown table must degrade identically.
	ghost := &PlanFeat{Tables: []string{"no_such_table", "user_memo"}, Ser: pq.Ser, Count: pq.Count}
	sort.Strings(ghost.Tables)
	ex.Reset(cat)
	if got, want := ex.ExtractPre(ghost, pv), ExtractPre(ghost, pv, cat); !reflect.DeepEqual(got, want) {
		t.Fatalf("unknown-table pair diverges:\n got %+v\nwant %+v", got, want)
	}

	// Rebinding to a different catalog must drop the memo: extract under
	// a second catalog with different stats and check against the plain
	// function bound to that catalog.
	cat2 := testCatalog(t)
	tb, _ := cat2.Table("user_memo")
	tb.Stats.Rows *= 7
	ex.Reset(cat2)
	if got, want := ex.ExtractPre(pq, pv), ExtractPre(pq, pv, cat2); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-rebind extraction diverges:\n got %+v\nwant %+v", got, want)
	}
}
