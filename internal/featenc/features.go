package featenc

import (
	"math"
	"sort"

	"autoview/internal/catalog"
	"autoview/internal/plan"
)

// NumericDim is the fixed width of the numerical feature vector.
const NumericDim = 8

// Features is one extracted input of the cost model: the plans of the
// query and the view, the schema keywords of the associated tables, and
// the numerical statistics of those tables (Section IV-A).
type Features struct {
	QueryPlan [][]plan.Tok
	ViewPlan  [][]plan.Tok
	Schema    []string  // keyword set of associated tables
	Numeric   []float64 // length NumericDim
}

// toks converts an OpSeq slice into a plain [][]Tok.
func toks(seqs []plan.OpSeq) [][]plan.Tok {
	out := make([][]plan.Tok, len(seqs))
	for i, s := range seqs {
		out[i] = []plan.Tok(s)
	}
	return out
}

// PlanFeat is the plan-local half of feature extraction: everything
// Extract derives from one plan alone, independent of what it is paired
// with. Serving precomputes one PlanFeat per cached plan (and per
// advertised view at rotation time) so a warm request skips plan
// serialization and table-name sorting entirely. A PlanFeat is immutable
// after Precompute; ExtractPre shares its Ser slices into the returned
// Features, so callers must treat Features plans as read-only (the
// encoders do).
type PlanFeat struct {
	Ser    [][]plan.Tok
	Tables []string // sorted, deduplicated
	Count  int
}

// Precompute derives the plan-local features of one plan.
func Precompute(n *plan.Node) *PlanFeat {
	tables := n.Tables()
	sort.Strings(tables)
	dedup := tables[:0]
	for i, t := range tables {
		if i == 0 || t != tables[i-1] {
			dedup = append(dedup, t)
		}
	}
	return &PlanFeat{
		Ser:    toks(plan.Serialize(n)),
		Tables: dedup,
		Count:  n.Count(),
	}
}

// Extract gathers features for estimating A(q|v). Table statistics are
// read from the catalog (the paper's metadata database); log scaling keeps
// the magnitudes trainable before normalization.
func Extract(q, v *plan.Node, cat *catalog.Catalog) Features {
	return ExtractPre(Precompute(q), Precompute(v), cat)
}

// ExtractPre is Extract over precomputed plan-local features, the form
// used by the serving hot path. It never mutates q or v.
func ExtractPre(q, v *PlanFeat, cat *catalog.Catalog) Features {
	f := Features{
		QueryPlan: q.Ser,
		ViewPlan:  v.Ser,
	}
	// Merge the two sorted table lists: the schema-keyword sequence and
	// the float sums below must visit names in sorted order (map
	// iteration order must never leak into features), and the summation
	// order here matches what sorting the union produces.
	var numTables, numCols, totalRows, totalBytes, maxRows float64
	qi, vi := 0, 0
	for qi < len(q.Tables) || vi < len(v.Tables) {
		var name string
		switch {
		case vi >= len(v.Tables):
			name = q.Tables[qi]
			qi++
		case qi >= len(q.Tables):
			name = v.Tables[vi]
			vi++
		case q.Tables[qi] < v.Tables[vi]:
			name = q.Tables[qi]
			qi++
		case q.Tables[qi] > v.Tables[vi]:
			name = v.Tables[vi]
			vi++
		default:
			name = q.Tables[qi]
			qi++
			vi++
		}
		t, ok := cat.Table(name)
		if !ok {
			continue
		}
		numTables++
		numCols += float64(len(t.Columns))
		totalRows += float64(t.Stats.Rows)
		totalBytes += float64(t.Stats.Bytes)
		if r := float64(t.Stats.Rows); r > maxRows {
			maxRows = r
		}
		f.Schema = append(f.Schema, t.SchemaKeywords()...)
	}
	f.Numeric = []float64{
		numTables,
		numCols,
		math.Log1p(totalRows),
		math.Log1p(totalBytes),
		math.Log1p(maxRows),
		float64(q.Count),
		float64(v.Count),
		float64(len(f.QueryPlan) - len(f.ViewPlan)),
	}
	return f
}

// Normalizer standardizes numerical features to zero mean and unit
// variance, the wide model's pre-processing step (Section IV-B1).
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer estimates per-dimension statistics from a training set.
// Dimensions with zero variance get Std 1 so they normalize to 0.
func FitNormalizer(rows [][]float64) *Normalizer {
	if len(rows) == 0 {
		return &Normalizer{Mean: make([]float64, NumericDim), Std: ones(NumericDim)}
	}
	dim := len(rows[0])
	n := &Normalizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, r := range rows {
		for i, v := range r {
			n.Mean[i] += v
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(len(rows))
	}
	for _, r := range rows {
		for i, v := range r {
			d := v - n.Mean[i]
			n.Std[i] += d * d
		}
	}
	for i := range n.Std {
		n.Std[i] = math.Sqrt(n.Std[i] / float64(len(rows)))
		if n.Std[i] < 1e-9 {
			n.Std[i] = 1
		}
	}
	return n
}

// Apply standardizes one feature vector (out of place).
func (n *Normalizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	n.ApplyInto(out, x)
	return out
}

// ApplyInto standardizes x into dst (same length), the allocation-free
// form used by the inference fast path.
func (n *Normalizer) ApplyInto(dst, x []float64) {
	for i, v := range x {
		dst[i] = (v - n.Mean[i]) / n.Std[i]
	}
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
