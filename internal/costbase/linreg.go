package costbase

import (
	"fmt"
	"math"
)

// LinearRegressor is the LR baseline: a linear model over tabular features
// fitted by ridge-regularized least squares (normal equations), measuring
// loss with Euclidean distance as in the paper.
type LinearRegressor struct {
	// Ridge is the L2 regularization strength (default 1e-6 keeps the
	// normal equations well conditioned).
	Ridge float64

	weights []float64 // last entry is the intercept
}

// Name implements Estimator.
func (l *LinearRegressor) Name() string { return "LR" }

// Fit implements Estimator.
func (l *LinearRegressor) Fit(train []Sample) error {
	if len(train) == 0 {
		return fmt.Errorf("costbase: LR needs training data")
	}
	ridge := l.Ridge
	if ridge <= 0 {
		ridge = 1e-6
	}
	d := TabularDim + 1 // +intercept
	// Normal equations: (XᵀX + λI) w = Xᵀy.
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
		ata[i][i] = ridge
	}
	atb := make([]float64, d)
	row := make([]float64, d)
	for _, s := range train {
		x := TabularFeatures(s.F)
		copy(row, x)
		row[d-1] = 1
		for i := 0; i < d; i++ {
			if row[i] == 0 { //lint:allow floateq exact-zero sparsity fast path on stored features
				continue
			}
			for j := 0; j < d; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * s.Actual
		}
	}
	w, err := solveLinearSystem(ata, atb)
	if err != nil {
		return fmt.Errorf("costbase: LR fit: %w", err)
	}
	l.weights = w
	return nil
}

// Predict implements Estimator.
func (l *LinearRegressor) Predict(s Sample) float64 {
	if l.weights == nil {
		return 0
	}
	x := TabularFeatures(s.F)
	y := l.weights[len(l.weights)-1]
	for i, v := range x {
		y += l.weights[i] * v
	}
	return y
}

// solveLinearSystem solves Ax=b by Gaussian elimination with partial
// pivoting. A and b are modified.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 { //lint:allow floateq exact-zero fast path; nonzero multipliers still eliminate
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
