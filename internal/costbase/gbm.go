package costbase

import (
	"fmt"
	"math"
	"sort"
)

// GBM is the gradient-boosted-trees baseline (the paper uses XGBoost):
// least-squares boosting of depth-limited regression trees with shrinkage.
type GBM struct {
	Rounds    int     // number of trees, default 100
	Depth     int     // maximum tree depth, default 3
	Shrinkage float64 // learning rate, default 0.1
	MinLeaf   int     // minimum samples per leaf, default 2

	base  float64
	trees []*treeNode
}

// Name implements Estimator.
func (g *GBM) Name() string { return "GBM" }

type treeNode struct {
	feature   int
	threshold float64
	value     float64 // leaf prediction
	left      *treeNode
	right     *treeNode
}

func (t *treeNode) isLeaf() bool { return t.left == nil }

func (t *treeNode) predict(x []float64) float64 {
	for !t.isLeaf() {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// Fit implements Estimator.
func (g *GBM) Fit(train []Sample) error {
	if len(train) == 0 {
		return fmt.Errorf("costbase: GBM needs training data")
	}
	if g.Rounds <= 0 {
		g.Rounds = 100
	}
	if g.Depth <= 0 {
		g.Depth = 3
	}
	if g.Shrinkage <= 0 {
		g.Shrinkage = 0.1
	}
	if g.MinLeaf <= 0 {
		g.MinLeaf = 2
	}
	xs := make([][]float64, len(train))
	for i, s := range train {
		xs[i] = TabularFeatures(s.F)
	}
	// Base prediction: the mean.
	g.base = 0
	for _, s := range train {
		g.base += s.Actual
	}
	g.base /= float64(len(train))

	residual := make([]float64, len(train))
	pred := make([]float64, len(train))
	for i := range pred {
		pred[i] = g.base
	}
	g.trees = g.trees[:0]
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	for round := 0; round < g.Rounds; round++ {
		for i, s := range train {
			residual[i] = s.Actual - pred[i]
		}
		tree := g.buildTree(xs, residual, idx, g.Depth)
		g.trees = append(g.trees, tree)
		for i := range pred {
			pred[i] += g.Shrinkage * tree.predict(xs[i])
		}
	}
	return nil
}

// buildTree grows one regression tree on the residuals by variance
// reduction.
func (g *GBM) buildTree(xs [][]float64, target []float64, idx []int, depth int) *treeNode {
	leaf := &treeNode{value: mean(target, idx)}
	if depth == 0 || len(idx) < 2*g.MinLeaf {
		return leaf
	}
	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0
	total := sse(target, idx)
	nf := len(xs[idx[0]])
	sorted := make([]int, len(idx))
	for f := 0; f < nf; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return xs[sorted[a]][f] < xs[sorted[b]][f] })
		// Prefix sums for O(n) split evaluation.
		var lSum, lSq float64
		var rSum, rSq float64
		for _, i := range sorted {
			rSum += target[i]
			rSq += target[i] * target[i]
		}
		for pos := 0; pos < len(sorted)-1; pos++ {
			i := sorted[pos]
			lSum += target[i]
			lSq += target[i] * target[i]
			rSum -= target[i]
			rSq -= target[i] * target[i]
			nl, nr := float64(pos+1), float64(len(sorted)-pos-1)
			if int(nl) < g.MinLeaf || int(nr) < g.MinLeaf {
				continue
			}
			// Skip ties: can't split between equal feature values.
			if xs[i][f] == xs[sorted[pos+1]][f] { //lint:allow floateq tie-skip compares stored feature values, never computed sums
				continue
			}
			lossAfter := (lSq - lSum*lSum/nl) + (rSq - rSum*rSum/nr)
			gain := total - lossAfter
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeature = f
				bestThreshold = (xs[i][f] + xs[sorted[pos+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return leaf
	}
	var lIdx, rIdx []int
	for _, i := range idx {
		if xs[i][bestFeature] <= bestThreshold {
			lIdx = append(lIdx, i)
		} else {
			rIdx = append(rIdx, i)
		}
	}
	if len(lIdx) == 0 || len(rIdx) == 0 {
		return leaf
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      g.buildTree(xs, target, lIdx, depth-1),
		right:     g.buildTree(xs, target, rIdx, depth-1),
	}
}

func mean(target []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += target[i]
	}
	return s / float64(len(idx))
}

func sse(target []float64, idx []int) float64 {
	m := mean(target, idx)
	var s float64
	for _, i := range idx {
		d := target[i] - m
		s += d * d
	}
	return s
}

// Predict implements Estimator.
func (g *GBM) Predict(s Sample) float64 {
	x := TabularFeatures(s.F)
	y := g.base
	for _, t := range g.trees {
		y += g.Shrinkage * t.predict(x)
	}
	if math.IsNaN(y) {
		return g.base
	}
	return y
}
