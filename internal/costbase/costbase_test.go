package costbase

import (
	"math"
	"math/rand"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/engine"
	"autoview/internal/featenc"
	"autoview/internal/plan"
	"autoview/internal/rewrite"
	"autoview/internal/storage"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "memo", Type: catalog.TypeString, Distinct: 20},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 600},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "action", Type: catalog.TypeString, Distinct: 10},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 900},
		},
	} {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// buildSamples measures real (q, v, A(q|v)) triples on the toy engine.
func buildSamples(t *testing.T, cat *catalog.Catalog, n int) []Sample {
	t.Helper()
	st := storage.Populate(cat, rand.New(rand.NewSource(21)))
	exec := engine.New(st)
	mgr := rewrite.NewManager(st)
	p := engine.DefaultPricing()
	rng := rand.New(rand.NewSource(22))

	dts := []string{"v0", "v1", "v2", "v3", "v4"}
	var out []Sample
	for len(out) < n {
		dt := dts[rng.Intn(len(dts))]
		typ := rng.Intn(3)
		sql := `select t1.user_id, count(*) as cnt
		 from ( select user_id, memo from user_memo where dt='` + dt + `' and memo_type = 'v1' ) t1
		 inner join ( select user_id, action from user_action where type = ` + string(rune('0'+typ)) + ` and dt='` + dt + `' ) t2
		 on t1.user_id = t2.user_id group by t1.user_id`
		q, err := plan.Parse(sql, cat)
		if err != nil {
			t.Fatal(err)
		}
		subs := plan.ExtractSubqueries(q)
		sub := subs[rng.Intn(len(subs))]
		v, err := mgr.Materialize(sub.Root)
		if err != nil {
			t.Fatal(err)
		}
		qUsage, err := exec.Cost(q)
		if err != nil {
			t.Fatal(err)
		}
		rw, _ := rewrite.Rewrite(q, []*rewrite.View{v})
		rwUsage, err := exec.Cost(rw)
		if err != nil {
			t.Fatal(err)
		}
		vUsage, err := exec.Cost(sub.Root)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Sample{
			Q:      q,
			V:      sub.Root,
			F:      featenc.Extract(q, sub.Root, cat),
			Actual: rwUsage.Cost(p) * 1e6, // scale to O(1) magnitudes
			QCost:  qUsage.Cost(p) * 1e6,
			VCost:  vUsage.Cost(p) * 1e6,
		})
	}
	return out
}

func mae(t *testing.T, e Estimator, samples []Sample) float64 {
	t.Helper()
	var sum float64
	for _, s := range samples {
		sum += math.Abs(e.Predict(s) - s.Actual)
	}
	return sum / float64(len(samples))
}

func TestTabularFeaturesShape(t *testing.T) {
	cat := testCatalog(t)
	samples := buildSamples(t, cat, 1)
	x := TabularFeatures(samples[0].F)
	if len(x) != TabularDim {
		t.Fatalf("tabular dim %d, want %d", len(x), TabularDim)
	}
	// Query plan has 8 operators: 2 scans, 2 filters, 2 projects, 1 join,
	// 1 aggregate.
	offset := featenc.NumericDim
	wantQ := []float64{2, 2, 2, 1, 1}
	for i, w := range wantQ {
		if x[offset+i] != w {
			t.Errorf("query op count %d = %v, want %v", i, x[offset+i], w)
		}
	}
}

func TestLinearRegressorFitsLinearTarget(t *testing.T) {
	cat := testCatalog(t)
	samples := buildSamples(t, cat, 40)
	// Replace targets with an exactly linear function of the features.
	for i := range samples {
		x := TabularFeatures(samples[i].F)
		samples[i].Actual = 3*x[0] - 2*x[5] + 7
	}
	lr := &LinearRegressor{}
	if err := lr.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if got := mae(t, lr, samples); got > 1e-6 {
		t.Errorf("LR MAE on linear target = %v, want ~0", got)
	}
}

func TestLinearRegressorErrors(t *testing.T) {
	lr := &LinearRegressor{}
	if err := lr.Fit(nil); err == nil {
		t.Error("Fit on empty data should error")
	}
	if lr.Predict(Sample{F: featenc.Features{Numeric: make([]float64, featenc.NumericDim)}}) != 0 {
		t.Error("unfitted Predict should return 0")
	}
}

func TestGBMFitsNonlinearTarget(t *testing.T) {
	cat := testCatalog(t)
	samples := buildSamples(t, cat, 60)
	for i := range samples {
		x := TabularFeatures(samples[i].F)
		// Step function of the numeric features: trees should nail it.
		if x[2] > 5.5 {
			samples[i].Actual = 10
		} else {
			samples[i].Actual = 2
		}
		samples[i].Actual += 0.5 * x[featenc.NumericDim] // mild linear term
	}
	g := &GBM{Rounds: 60, Depth: 3}
	if err := g.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if got := mae(t, g, samples); got > 1.0 {
		t.Errorf("GBM train MAE = %v, want < 1.0", got)
	}
}

func TestGBMBeatsConstantBaseline(t *testing.T) {
	cat := testCatalog(t)
	samples := buildSamples(t, cat, 60)
	g := &GBM{Rounds: 80, Depth: 3}
	if err := g.Fit(samples); err != nil {
		t.Fatal(err)
	}
	var meanY float64
	for _, s := range samples {
		meanY += s.Actual
	}
	meanY /= float64(len(samples))
	var constMAE float64
	for _, s := range samples {
		constMAE += math.Abs(s.Actual - meanY)
	}
	constMAE /= float64(len(samples))
	if got := mae(t, g, samples); got >= constMAE {
		t.Errorf("GBM MAE %v should beat constant predictor %v", got, constMAE)
	}
}

func TestOptimizerEstimatorDirections(t *testing.T) {
	cat := testCatalog(t)
	samples := buildSamples(t, cat, 10)
	opt := &OptimizerEstimator{Cat: cat, Pricing: engine.DefaultPricing()}
	if err := opt.Fit(samples); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		y := opt.Predict(s)
		if y <= 0 || math.IsNaN(y) {
			t.Errorf("Optimizer estimate = %v, want positive", y)
		}
	}
}

func TestEstimatePlanCardinalities(t *testing.T) {
	cat := testCatalog(t)
	// Equality filter on dt (5 distinct) over 600 rows -> about 120.
	q, err := plan.Parse("select user_id from user_memo where dt='v1'", cat)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimatePlan(q, cat)
	if math.Abs(est.Rows-120) > 1 {
		t.Errorf("estimated rows = %v, want 120", est.Rows)
	}
	if est.CPUOps <= 0 || est.Bytes <= 0 {
		t.Errorf("estimate incomplete: %+v", est)
	}
	// Join cardinality: |L|*|R|/max(d).
	j, err := plan.Parse("select user_memo.memo from user_memo inner join user_action on user_memo.user_id = user_action.user_id", cat)
	if err != nil {
		t.Fatal(err)
	}
	je := EstimatePlan(j.Child(0), cat)
	want := 600.0 * 900 / 40
	if math.Abs(je.Rows-want) > 1 {
		t.Errorf("join rows = %v, want %v", je.Rows, want)
	}
}

func TestEstimatePlanUnknownTable(t *testing.T) {
	cat := testCatalog(t)
	n := &plan.Node{Op: plan.OpScan, Table: "mv_1", Schema: []plan.ColInfo{{Name: "a", Type: catalog.TypeInt}}}
	est := EstimatePlan(n, cat)
	if est.Rows <= 0 {
		t.Error("unknown table should fall back to a default estimate")
	}
}

func TestDeepLearnTrainsAndPredicts(t *testing.T) {
	cat := testCatalog(t)
	samples := buildSamples(t, cat, 30)
	dl := &DeepLearn{Cat: cat, Pricing: engine.DefaultPricing(), Epochs: 8, Seed: 7}
	if err := dl.Fit(samples); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:5] {
		y := dl.Predict(s)
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("DeepLearn prediction = %v", y)
		}
	}
	// DeepLearn must beat the pure-analytic Optimizer on training data
	// (it learned the plan costs the optimizer only estimates).
	opt := &OptimizerEstimator{Cat: cat, Pricing: engine.DefaultPricing()}
	dlMAE := mae(t, dl, samples)
	optMAE := mae(t, opt, samples)
	if dlMAE >= optMAE {
		t.Errorf("DeepLearn MAE %v should beat Optimizer %v", dlMAE, optMAE)
	}
}

func TestDeepLearnEmptyFit(t *testing.T) {
	dl := &DeepLearn{Cat: testCatalog(t), Pricing: engine.DefaultPricing()}
	if err := dl.Fit(nil); err == nil {
		t.Error("empty fit should error")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
	if _, err := solveLinearSystem([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("singular system should error")
	}
}
