package costbase

import (
	"fmt"
	"math"
	"math/rand"

	"autoview/internal/catalog"
	"autoview/internal/engine"
	"autoview/internal/featenc"
	"autoview/internal/nn"
	"autoview/internal/plan"
)

// DeepLearn is the state-of-the-art single-query deep-learning baseline
// (the paper's [36]): a neural network predicts the cost of one plan from
// its encoded plan sequence; A(q|v) is then assembled as
// Â(q) − Â(s) + A(scan v), accumulating the per-term errors the paper
// attributes to this decomposition.
type DeepLearn struct {
	Cat     *catalog.Catalog
	Pricing engine.Pricing
	Epochs  int
	LR      float64
	Seed    int64
	// Parallelism is the number of data-parallel training workers per
	// mini-batch (nn.Trainer). 0 selects runtime.NumCPU(); 1 runs
	// serially. Results are bit-for-bit identical for every setting.
	Parallelism int

	enc   *featenc.Encoder
	head  *nn.MLP
	norm  *featenc.Normalizer
	yMean float64
	yStd  float64
}

// Name implements Estimator.
func (d *DeepLearn) Name() string { return "DeepLearn" }

// Fit implements Estimator: it trains the single-plan cost model on the
// standalone costs A(q) and A(s) carried by the samples.
func (d *DeepLearn) Fit(train []Sample) error {
	if len(train) == 0 {
		return fmt.Errorf("costbase: DeepLearn needs training data")
	}
	if d.Epochs <= 0 {
		d.Epochs = 15
	}
	if d.LR <= 0 {
		d.LR = 0.005
	}
	rng := rand.New(rand.NewSource(d.Seed + 1))

	type planSample struct {
		seq     [][]plan.Tok
		numeric []float64
		y       float64
	}
	var data []planSample
	seen := map[*plan.Node]bool{}
	add := func(p *plan.Node, cost float64) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		f := featenc.Extract(p, p, d.Cat)
		data = append(data, planSample{seq: f.QueryPlan, numeric: f.Numeric, y: cost})
	}
	var extras []string
	for _, s := range train {
		add(s.Q, s.QCost)
		add(s.V, s.VCost)
		extras = append(extras, keywordsOf(s.Q)...)
	}
	vocab := featenc.NewVocab(d.Cat, extras)
	d.enc = featenc.NewEncoder(vocab, featenc.Config{EmbedDim: 8, Hidden: 8}, rng)
	d.head = nn.NewMLP("dl.head", []int{d.enc.PlanDim() + featenc.NumericDim, 32, 1}, rng)

	numerics := make([][]float64, len(data))
	for i, s := range data {
		numerics[i] = s.numeric
	}
	d.norm = featenc.FitNormalizer(numerics)

	var mean float64
	for _, s := range data {
		mean += s.y
	}
	mean /= float64(len(data))
	var variance float64
	for _, s := range data {
		dv := s.y - mean
		variance += dv * dv
	}
	d.yMean = mean
	d.yStd = math.Sqrt(variance / float64(len(data)))
	if d.yStd < 1e-12 {
		d.yStd = 1
	}

	params := append(d.enc.Params(), d.head.Params()...)
	opt := nn.NewAdam(d.LR)
	opt.Clip = 5

	// Data-parallel mini-batch gradients over per-worker replicas of the
	// encoder and head (shared weights, private gradients).
	var cur []int
	var n float64
	trainer := nn.NewTrainer(params, d.Parallelism, func() ([]*nn.Param, nn.SampleFunc) {
		enc, head := d.enc.ShareWeights(), d.head.ShareWeights()
		run := func(i int) float64 {
			s := data[cur[i]]
			pred, back := d.forwardWith(enc, head, s.seq, s.numeric)
			target := (s.y - d.yMean) / d.yStd
			delta := pred - target
			back(2 * delta / n)
			return delta * delta
		}
		return append(enc.Params(), head.Params()...), run
	})

	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	const batch = 16
	for epoch := 0; epoch < d.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			cur = idx[start:end]
			n = float64(end - start)
			trainer.Step(end - start)
			opt.Step(params)
		}
	}
	return nil
}

func keywordsOf(p *plan.Node) []string {
	return featenc.CollectPlanKeywords([]*plan.Node{p})
}

func (d *DeepLearn) forward(seq [][]plan.Tok, numeric []float64) (float64, func(dy float64)) {
	return d.forwardWith(d.enc, d.head, seq, numeric)
}

// forwardWith runs the forward pass through the given encoder and head —
// the canonical ones or a worker replica sharing their weights.
func (d *DeepLearn) forwardWith(enc *featenc.Encoder, head *nn.MLP, seq [][]plan.Tok, numeric []float64) (float64, func(dy float64)) {
	de, bPlan := enc.EncodePlan(seq)
	dc := d.norm.Apply(numeric)
	x := nn.Concat(de, dc)
	y, bHead := head.Forward(x)
	back := func(dy float64) {
		dx := bHead(nn.Vec{dy})
		parts := nn.SplitBackward(dx, len(de), len(dc))
		bPlan(parts[0])
	}
	return y[0], back
}

// predictPlan estimates the standalone cost of one plan.
func (d *DeepLearn) predictPlan(p *plan.Node) float64 {
	f := featenc.Extract(p, p, d.Cat)
	y, _ := d.forward(f.QueryPlan, f.Numeric)
	return y*d.yStd + d.yMean
}

// Predict implements Estimator: Â(q) − Â(s) + A(scan v), with the view
// scan priced from the analytic cardinality estimate.
func (d *DeepLearn) Predict(s Sample) float64 {
	if d.enc == nil {
		return 0
	}
	ve := EstimatePlan(s.V, d.Cat)
	scanCost := ViewScanEstimate(ve).Usage().Cost(d.Pricing)
	cost := d.predictPlan(s.Q) - d.predictPlan(s.V) + scanCost
	if cost < 0 {
		cost = scanCost
	}
	return cost
}
