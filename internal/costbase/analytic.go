// Package costbase implements the cost-estimation baselines of Section VI:
//
//   - Optimizer: the traditional approach — estimate A(q|v) as
//     A(q) − A(s) + A(v_scan) with each term coming from a classical
//     selectivity-based cost model over catalog statistics.
//   - DeepLearn: the same decomposition, but with the plan costs predicted
//     by a learned single-plan neural estimator (the paper's [36]).
//   - LR: linear regression over numeric + plan-summary features.
//   - GBM: gradient-boosted regression trees over the same features.
package costbase

import (
	"math"

	"autoview/internal/catalog"
	"autoview/internal/engine"
	"autoview/internal/plan"
)

// PlanEstimate is the analytic cost model's output for one plan.
type PlanEstimate struct {
	Rows   float64
	Bytes  float64 // output bytes
	CPUOps float64
	Peak   float64 // peak held bytes
}

// Usage converts the estimate into an engine.Usage for pricing.
func (e PlanEstimate) Usage() engine.Usage {
	return engine.Usage{
		CPUOps:    int64(e.CPUOps),
		PeakBytes: int64(e.Peak),
		OutRows:   int(e.Rows),
		OutBytes:  int64(e.Bytes),
	}
}

// colStat tracks per-column distinct-count estimates through operators.
type colStat struct{ distinct float64 }

// EstimatePlan runs the classical cost model: selectivity estimation with
// uniformity and independence assumptions (the usual optimizer error
// sources), with CPU/memory accounting mirroring the executor's weights.
func EstimatePlan(n *plan.Node, cat *catalog.Catalog) PlanEstimate {
	rows, stats, est := estimate(n, cat)
	est.Rows = rows
	est.Bytes = rows * rowWidth(n.Schema)
	_ = stats
	return est
}

func rowWidth(schema []plan.ColInfo) float64 {
	var w float64
	for _, c := range schema {
		w += float64(c.Type.ByteWidth())
	}
	return w
}

func estimate(n *plan.Node, cat *catalog.Catalog) (float64, []colStat, PlanEstimate) {
	switch n.Op {
	case plan.OpScan:
		t, ok := cat.Table(n.Table)
		width := rowWidth(n.Schema)
		weight := width / 8
		if weight < 1 {
			weight = 1
		}
		if !ok {
			// Unknown table (e.g. a view): assume a small scan.
			stats := make([]colStat, len(n.Schema))
			for i := range stats {
				stats[i] = colStat{distinct: 100}
			}
			return 1000, stats, PlanEstimate{CPUOps: 1000 * weight, Peak: 1000 * width}
		}
		rows := float64(t.Stats.Rows)
		stats := make([]colStat, len(n.Schema))
		for i, col := range t.Columns {
			d := float64(col.Distinct)
			if d <= 0 {
				d = rows
			}
			stats[i] = colStat{distinct: d}
		}
		return rows, stats, PlanEstimate{CPUOps: rows * weight, Peak: rows * width}

	case plan.OpFilter:
		inRows, stats, est := estimate(n.Child(0), cat)
		sel, ncmp := selectivity(n.Pred, stats)
		rows := inRows * sel
		est.CPUOps += inRows * float64(ncmp)
		out := make([]colStat, len(stats))
		for i, s := range stats {
			out[i] = colStat{distinct: math.Min(s.distinct, math.Max(rows, 1))}
		}
		peak := rows * rowWidth(n.Schema)
		if peak > est.Peak {
			est.Peak = peak
		}
		return rows, out, est

	case plan.OpProject:
		inRows, stats, est := estimate(n.Child(0), cat)
		est.CPUOps += inRows
		out := make([]colStat, len(n.Proj))
		for i, pc := range n.Proj {
			out[i] = stats[pc.Src]
		}
		return inRows, out, est

	case plan.OpJoin:
		lRows, lStats, lEst := estimate(n.Child(0), cat)
		rRows, rStats, rEst := estimate(n.Child(1), cat)
		sel := 1.0
		for _, je := range n.JoinCond {
			d := math.Max(lStats[je.Left].distinct, rStats[je.Right].distinct)
			if d > 0 {
				sel /= d
			}
		}
		rows := lRows * rRows * sel
		if n.JoinType == plan.LeftJoin && rows < lRows {
			rows = lRows
		}
		est := PlanEstimate{
			CPUOps: lEst.CPUOps + rEst.CPUOps + 2*(lRows+rRows) + rows,
		}
		htBytes := rRows * (rowWidth(n.Child(1).Schema) + 16)
		est.Peak = math.Max(math.Max(lEst.Peak, rEst.Peak), htBytes+rows*rowWidth(n.Schema))
		out := make([]colStat, 0, len(lStats)+len(rStats))
		for _, s := range lStats {
			out = append(out, colStat{distinct: math.Min(s.distinct, math.Max(rows, 1))})
		}
		for _, s := range rStats {
			out = append(out, colStat{distinct: math.Min(s.distinct, math.Max(rows, 1))})
		}
		return rows, out, est

	case plan.OpAggregate:
		inRows, stats, est := estimate(n.Child(0), cat)
		groups := 1.0
		for _, g := range n.GroupBy {
			groups *= stats[g].distinct
		}
		if len(n.GroupBy) == 0 {
			groups = 1
		}
		rows := math.Min(groups, math.Max(inRows, 1))
		est.CPUOps += inRows * float64(2+len(n.Aggs))
		peak := rows * (rowWidth(n.Schema) + 48)
		if peak > est.Peak {
			est.Peak = peak
		}
		out := make([]colStat, len(n.Schema))
		for i := range out {
			out[i] = colStat{distinct: rows}
		}
		return rows, out, est
	default:
		return 1, nil, PlanEstimate{}
	}
}

// selectivity estimates a predicate's selectivity and counts comparisons.
func selectivity(p plan.Pred, stats []colStat) (float64, int) {
	switch x := p.(type) {
	case nil:
		return 1, 0
	case *plan.Cmp:
		return cmpSelectivity(x, stats), 1
	case *plan.Bool:
		ls, ln := selectivity(x.L, stats)
		rs, rn := selectivity(x.R, stats)
		if x.Op == plan.BoolAnd {
			return ls * rs, ln + rn
		}
		return ls + rs - ls*rs, ln + rn
	default:
		return 0.5, 1
	}
}

func cmpSelectivity(c *plan.Cmp, stats []colStat) float64 {
	d := 100.0
	if c.L.IsCol && c.L.Col < len(stats) {
		d = stats[c.L.Col].distinct
	} else if c.R.IsCol && c.R.Col < len(stats) {
		d = stats[c.R.Col].distinct
	}
	if d < 1 {
		d = 1
	}
	switch c.Op {
	case plan.CmpEq:
		return 1 / d
	case plan.CmpNe:
		return 1 - 1/d
	case plan.CmpLt, plan.CmpLe, plan.CmpGt, plan.CmpGe:
		return 1.0 / 3
	default:
		return 0.5
	}
}

// OptimizerEstimator is the traditional baseline: it never trains; it
// estimates A(q|v) = A(q) − A(s) + A(scan(v)) with all three terms from
// the analytic model.
type OptimizerEstimator struct {
	Cat     *catalog.Catalog
	Pricing engine.Pricing
}

// Name implements Estimator.
func (o *OptimizerEstimator) Name() string { return "Optimizer" }

// Fit implements Estimator (no-op: the optimizer does not learn).
func (o *OptimizerEstimator) Fit([]Sample) error { return nil }

// Predict implements Estimator.
func (o *OptimizerEstimator) Predict(s Sample) float64 {
	return o.EstimateRewritten(s.Q, s.V)
}

// EstimateRewritten estimates A(q|v) analytically.
func (o *OptimizerEstimator) EstimateRewritten(q, v *plan.Node) float64 {
	qe := EstimatePlan(q, o.Cat)
	ve := EstimatePlan(v, o.Cat)
	scan := o.scanCost(ve)
	cost := qe.Usage().Cost(o.Pricing) - ve.Usage().Cost(o.Pricing) + scan
	if cost < 0 {
		cost = scan
	}
	return cost
}

// scanCost prices scanning a materialized view with the estimated output
// cardinality of its defining subquery.
func (o *OptimizerEstimator) scanCost(ve PlanEstimate) float64 {
	return ViewScanEstimate(ve).Usage().Cost(o.Pricing)
}

// ViewScanEstimate models scanning a materialized view of the given
// estimated size (bytes-proportional, mirroring the executor's scan
// weight).
func ViewScanEstimate(ve PlanEstimate) PlanEstimate {
	ops := ve.Bytes / 8
	if ops < ve.Rows {
		ops = ve.Rows
	}
	return PlanEstimate{Rows: ve.Rows, Bytes: ve.Bytes, CPUOps: ops, Peak: ve.Bytes}
}
