package costbase

import (
	"autoview/internal/featenc"
	"autoview/internal/plan"
)

// Sample is one cost-estimation example: the query and view plans, the
// extracted features, and the measured cost A(q|v).
type Sample struct {
	Q, V   *plan.Node
	F      featenc.Features
	Actual float64
	// QCost and VCost are the measured standalone costs A(q) and A(s),
	// used as training signal by the DeepLearn baseline (which learns a
	// single-plan cost model, not a joint one).
	QCost, VCost float64
}

// Estimator is the common interface of all cost-estimation methods
// compared in Table III.
type Estimator interface {
	Name() string
	Fit(train []Sample) error
	Predict(s Sample) float64
}

// opKinds are the operator types counted by the tabular feature vector.
var opKinds = []string{"Scan", "Filter", "Project", "Join", "Aggregate"}

// numOpKinds mirrors len(opKinds); kept constant so TabularDim is one.
const numOpKinds = 5

// TabularDim is the width of the tabular feature vector used by LR and
// GBM: numeric features plus per-operator counts for both plans and the
// two plan lengths.
const TabularDim = featenc.NumericDim + 2*numOpKinds + 2

// TabularFeatures flattens a feature set into a fixed-width vector for the
// classical learners.
func TabularFeatures(f featenc.Features) []float64 {
	out := make([]float64, 0, TabularDim)
	out = append(out, f.Numeric...)
	out = append(out, opCounts(f.QueryPlan)...)
	out = append(out, opCounts(f.ViewPlan)...)
	out = append(out, float64(len(f.QueryPlan)), float64(len(f.ViewPlan)))
	return out
}

func opCounts(p [][]plan.Tok) []float64 {
	counts := make([]float64, len(opKinds))
	for _, seq := range p {
		if len(seq) == 0 {
			continue
		}
		for i, kind := range opKinds {
			if seq[0].Text == kind {
				counts[i]++
				break
			}
		}
	}
	return counts
}
