// Package metrics provides the evaluation metrics of Section VI: MAE and
// MAPE for cost estimation, deterministic train/validation/test splits,
// and the utility ratios of Tables IV and V.
package metrics

import (
	"math"
	"math/rand"
)

// MAE is the mean absolute error (1/N)·Σ|y−ŷ|.
func MAE(y, yhat []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var sum float64
	for i := range y {
		sum += math.Abs(y[i] - yhat[i])
	}
	return sum / float64(len(y))
}

// MAPE is the mean absolute percent error (1/N)·Σ|(y−ŷ)/y| in percent.
// Entries with y=0 are skipped (undefined relative error).
func MAPE(y, yhat []float64) float64 {
	var sum float64
	n := 0
	for i := range y {
		if y[i] == 0 { //lint:allow floateq exact zero guards division by zero
			continue
		}
		sum += math.Abs((y[i] - yhat[i]) / y[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// Split partitions indices [0,n) into train/validation/test parts with the
// given proportions (e.g. 7:1:2), shuffled deterministically by seed.
func Split(n int, trainFrac, valFrac float64, seed int64) (train, val, test []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	if nTrain > n {
		nTrain = n
	}
	if nTrain+nVal > n {
		nVal = n - nTrain
	}
	return idx[:nTrain], idx[nTrain : nTrain+nVal], idx[nTrain+nVal:]
}

// UtilityRatio is Table IV's ratio: the maximum utility over the total
// workload cost, in percent.
func UtilityRatio(utility, totalCost float64) float64 {
	if totalCost <= 0 {
		return 0
	}
	return 100 * utility / totalCost
}

// SavedCostRatio is Table V's r_c = (b_{q|v} − o_m) / c_q in percent: the
// rewriting benefit minus the materialization overhead, over the raw
// workload cost.
func SavedCostRatio(benefit, overhead, rawCost float64) float64 {
	if rawCost <= 0 {
		return 0
	}
	return 100 * (benefit - overhead) / rawCost
}

// Improvement is the paper's headline relative improvement
// (r_new − r_old)/r_old · 100%.
func Improvement(rNew, rOld float64) float64 {
	if rOld == 0 { //lint:allow floateq exact zero guards division by zero
		return 0
	}
	return 100 * (rNew - rOld) / rOld
}
