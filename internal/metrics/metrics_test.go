package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2, 3}, []float64{2, 2, 1}); got != 1 {
		t.Errorf("MAE = %v, want 1", got)
	}
	if MAE(nil, nil) != 0 {
		t.Error("empty MAE should be 0")
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{10, 20}, []float64{9, 22})
	want := 100 * (0.1 + 0.1) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MAPE = %v, want %v", got, want)
	}
	// Zero ground truth entries are skipped.
	got = MAPE([]float64{0, 10}, []float64{5, 11})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("MAPE with zero entry = %v, want 10", got)
	}
	if MAPE([]float64{0}, []float64{1}) != 0 {
		t.Error("all-zero ground truth should give 0")
	}
}

func TestMAEProperties(t *testing.T) {
	// MAE is non-negative and zero iff predictions match.
	f := func(a, b float64) bool {
		y := []float64{a}
		if MAE(y, y) != 0 {
			return false
		}
		return MAE(y, []float64{b}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitProportionsAndDisjoint(t *testing.T) {
	train, val, test := Split(100, 0.7, 0.1, 42)
	if len(train) != 70 || len(val) != 10 || len(test) != 20 {
		t.Fatalf("split sizes = %d/%d/%d", len(train), len(val), len(test))
	}
	seen := map[int]bool{}
	for _, set := range [][]int{train, val, test} {
		for _, i := range set {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("split covers %d of 100", len(seen))
	}
	// Deterministic.
	train2, _, _ := Split(100, 0.7, 0.1, 42)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("split not deterministic")
		}
	}
	// Different seed shuffles differently.
	train3, _, _ := Split(100, 0.7, 0.1, 43)
	same := true
	for i := range train {
		if train[i] != train3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical splits")
	}
}

func TestSplitEdgeCases(t *testing.T) {
	train, val, test := Split(3, 1.0, 0.5, 1)
	if len(train) != 3 || len(val) != 0 || len(test) != 0 {
		t.Errorf("overfull split = %d/%d/%d", len(train), len(val), len(test))
	}
	train, val, test = Split(0, 0.7, 0.1, 1)
	if len(train)+len(val)+len(test) != 0 {
		t.Error("empty split should be empty")
	}
}

func TestRatios(t *testing.T) {
	if got := UtilityRatio(12, 100); got != 12 {
		t.Errorf("UtilityRatio = %v", got)
	}
	if UtilityRatio(5, 0) != 0 {
		t.Error("zero-cost ratio should be 0")
	}
	if got := SavedCostRatio(20, 5, 100); got != 15 {
		t.Errorf("SavedCostRatio = %v, want 15", got)
	}
	if got := Improvement(12.02, 9.36); math.Abs(got-28.4) > 0.1 {
		t.Errorf("Improvement = %v, want ≈28.4 (the paper's headline)", got)
	}
	if Improvement(1, 0) != 0 {
		t.Error("zero baseline improvement should be 0")
	}
}
