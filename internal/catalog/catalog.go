// Package catalog holds database schemas, table statistics and the
// "metadata database" used by the paper's offline-training component.
//
// Everything in this package is engine-agnostic: the executor
// (internal/engine), the feature encoders (internal/featenc) and the
// workload generators (internal/workload) all consume the same Catalog.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ColType is the type of a column. The paper's feature extraction only
// distinguishes type names ("String", "Int", ...), so a small closed set
// suffices.
type ColType int

const (
	// TypeInt is a 64-bit signed integer column.
	TypeInt ColType = iota
	// TypeFloat is a 64-bit floating-point column.
	TypeFloat
	// TypeString is a variable-length string column.
	TypeString
)

// String returns the schema-encoding keyword for the type (as in Fig. 7(b)
// of the paper: "String", "Int", ...).
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "Int"
	case TypeFloat:
		return "Float"
	case TypeString:
		return "String"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// ByteWidth returns the nominal storage width in bytes used by the cost
// meter for sizing rows and materialized views.
func (t ColType) ByteWidth() int {
	switch t {
	case TypeInt, TypeFloat:
		return 8
	case TypeString:
		return 24 // average payload assumption for synthetic strings
	default:
		return 8
	}
}

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColType
	// Distinct is the (approximate) number of distinct values; used by
	// the synthetic data generators and the traditional optimizer
	// baseline for selectivity estimation.
	Distinct int
}

// TableStats carries the numeric statistics that form the paper's
// "numerical features" (Section IV-A: number of tables, number of columns,
// size of records).
type TableStats struct {
	Rows     int
	Bytes    int64
	NumCols  int
	Distinct []int // per-column distinct counts, aligned with Columns
}

// Table is a table schema plus statistics.
type Table struct {
	Name    string
	Project string // owning project (Figure 1 groups queries by project)
	Columns []Column
	Stats   TableStats
}

// Column returns the column with the given name, or false.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowWidth is the nominal byte width of one row.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Type.ByteWidth()
	}
	return w
}

// SchemaKeywords returns the keyword-set representation of the table used
// by the schema encoder (Fig. 7(b)): table name, column names, type names.
func (t *Table) SchemaKeywords() []string {
	kws := make([]string, 0, 1+2*len(t.Columns))
	kws = append(kws, t.Name)
	for _, c := range t.Columns {
		kws = append(kws, c.Name)
	}
	for _, c := range t.Columns {
		kws = append(kws, c.Type.String())
	}
	return kws
}

// Catalog is a set of tables, addressable by name.
type Catalog struct {
	tables map[string]*Table
	order  []string // creation order, for deterministic iteration
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table. It returns an error if a table with the same name
// already exists or the schema is malformed.
func (c *Catalog) Add(t *Table) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("catalog: table must have a name")
	}
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	for _, col := range t.Columns {
		if col.Name == "" {
			return fmt.Errorf("catalog: table %q has an unnamed column", t.Name)
		}
		if seen[col.Name] {
			return fmt.Errorf("catalog: table %q has duplicate column %q", t.Name, col.Name)
		}
		seen[col.Name] = true
	}
	c.tables[t.Name] = t
	c.order = append(c.order, t.Name)
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// MustTable looks up a table by name and panics if it is absent. Intended
// for code paths where the name was already validated (e.g. bound plans).
func (c *Catalog) MustTable(name string) *Table {
	t, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown table %q", name))
	}
	return t
}

// Tables returns all tables in creation order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.tables[name])
	}
	return out
}

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.tables) }

// Projects returns the sorted distinct project names across all tables.
func (c *Catalog) Projects() []string {
	set := make(map[string]bool)
	for _, t := range c.tables {
		set[t.Project] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Keywords returns the global keyword vocabulary of the catalog (table
// names, column names, type names), sorted. The keyword embedding shares
// one matrix across all features "as their keywords belong to the same
// database" (Section IV-B2); this is that shared vocabulary.
func (c *Catalog) Keywords() []string {
	set := make(map[string]bool)
	for _, t := range c.tables {
		for _, kw := range t.SchemaKeywords() {
			set[kw] = true
		}
	}
	out := make([]string, 0, len(set))
	for kw := range set {
		out = append(out, kw)
	}
	sort.Strings(out)
	return out
}

// String renders a compact schema listing, useful in logs and tests.
func (c *Catalog) String() string {
	var b strings.Builder
	for _, name := range c.order {
		t := c.tables[name]
		fmt.Fprintf(&b, "%s(", t.Name)
		for i, col := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", col.Name, col.Type)
		}
		fmt.Fprintf(&b, ") rows=%d\n", t.Stats.Rows)
	}
	return b.String()
}
