package catalog

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable(name, project string) *Table {
	return &Table{
		Name:    name,
		Project: project,
		Columns: []Column{
			{Name: "id", Type: TypeInt, Distinct: 10},
			{Name: "label", Type: TypeString, Distinct: 5},
			{Name: "score", Type: TypeFloat, Distinct: 100},
		},
		Stats: TableStats{Rows: 42},
	}
}

func TestAddAndLookup(t *testing.T) {
	c := New()
	if err := c.Add(sampleTable("t1", "p1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(sampleTable("t1", "p1")); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := c.Add(&Table{Name: ""}); err == nil {
		t.Error("unnamed table should fail")
	}
	if err := c.Add(&Table{Name: "empty"}); err == nil {
		t.Error("table without columns should fail")
	}
	if err := c.Add(&Table{Name: "dup", Columns: []Column{{Name: "a", Type: TypeInt}, {Name: "a", Type: TypeInt}}}); err == nil {
		t.Error("duplicate column should fail")
	}
	tab, ok := c.Table("t1")
	if !ok || tab.Name != "t1" {
		t.Fatal("lookup failed")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("lookup of missing table should fail")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic on unknown table")
		}
	}()
	New().MustTable("ghost")
}

func TestTableHelpers(t *testing.T) {
	tab := sampleTable("t", "p")
	if col, ok := tab.Column("label"); !ok || col.Type != TypeString {
		t.Error("Column lookup failed")
	}
	if _, ok := tab.Column("ghost"); ok {
		t.Error("missing column lookup should fail")
	}
	if tab.ColumnIndex("score") != 2 || tab.ColumnIndex("ghost") != -1 {
		t.Error("ColumnIndex wrong")
	}
	// id(8) + label(24) + score(8)
	if tab.RowWidth() != 40 {
		t.Errorf("RowWidth = %d, want 40", tab.RowWidth())
	}
	kws := tab.SchemaKeywords()
	want := []string{"t", "id", "label", "score", "Int", "String", "Float"}
	if len(kws) != len(want) {
		t.Fatalf("SchemaKeywords = %v", kws)
	}
	for i := range want {
		if kws[i] != want[i] {
			t.Errorf("keyword %d = %q, want %q", i, kws[i], want[i])
		}
	}
}

func TestProjectsAndKeywords(t *testing.T) {
	c := New()
	if err := c.Add(sampleTable("a", "p2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(sampleTable("b", "p1")); err != nil {
		t.Fatal(err)
	}
	projects := c.Projects()
	if len(projects) != 2 || projects[0] != "p1" || projects[1] != "p2" {
		t.Errorf("Projects = %v", projects)
	}
	kws := c.Keywords()
	for _, want := range []string{"a", "b", "id", "label", "score", "Int", "String", "Float"} {
		found := false
		for _, k := range kws {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Keywords missing %q", want)
		}
	}
	// Sorted and deduplicated.
	for i := 1; i < len(kws); i++ {
		if kws[i-1] >= kws[i] {
			t.Errorf("Keywords not strictly sorted: %q >= %q", kws[i-1], kws[i])
		}
	}
}

func TestCatalogString(t *testing.T) {
	c := New()
	if err := c.Add(sampleTable("t1", "p")); err != nil {
		t.Fatal(err)
	}
	s := c.String()
	if !strings.Contains(s, "t1(id Int, label String, score Float) rows=42") {
		t.Errorf("String() = %q", s)
	}
}

func TestColTypeByteWidth(t *testing.T) {
	if TypeInt.ByteWidth() != 8 || TypeFloat.ByteWidth() != 8 || TypeString.ByteWidth() != 24 {
		t.Error("byte widths changed")
	}
}

func TestMetadataDBRoundTrip(t *testing.T) {
	db := NewMetadataDB()
	db.AddCostRecord(CostRecord{
		QueryID:    "q1",
		ViewID:     "v1",
		QueryPlan:  [][]string{{"Scan", "t"}},
		ViewPlan:   [][]string{{"Project", "a"}},
		Tables:     []string{"t"},
		ActualCost: 1.5,
		RawCost:    2.5,
	})
	db.AddExperience(Experience{State: []float64{1, 0}, Action: 1, Reward: 0.5, NextState: []float64{1, 1}})
	nc, ne := db.Counts()
	if nc != 1 || ne != 1 {
		t.Fatalf("Counts = %d,%d", nc, ne)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewMetadataDB()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	recs := db2.CostRecords()
	if len(recs) != 1 || recs[0].QueryID != "q1" || recs[0].ActualCost != 1.5 {
		t.Errorf("cost records after round trip: %+v", recs)
	}
	exps := db2.Experiences()
	if len(exps) != 1 || exps[0].Action != 1 || exps[0].Reward != 0.5 {
		t.Errorf("experiences after round trip: %+v", exps)
	}
}

func TestMetadataDBLoadError(t *testing.T) {
	db := NewMetadataDB()
	if err := db.Load(strings.NewReader("{not json")); err == nil {
		t.Error("Load of invalid JSON should fail")
	}
}

func TestMetadataDBCopiesAreIndependent(t *testing.T) {
	db := NewMetadataDB()
	db.AddCostRecord(CostRecord{QueryID: "q"})
	recs := db.CostRecords()
	recs[0].QueryID = "mutated"
	if db.CostRecords()[0].QueryID != "q" {
		t.Error("CostRecords returned shared slice")
	}
}
