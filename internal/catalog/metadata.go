package catalog

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// CostRecord is one training example for the cost estimation model:
// the plans of a query and a view, the associated table names, and the
// actual cost of the rewritten query (Section III, "Offline-training").
type CostRecord struct {
	QueryID   string     `json:"query_id"`
	ViewID    string     `json:"view_id"`
	QueryPlan [][]string `json:"query_plan"` // operator sequences (Fig. 4)
	ViewPlan  [][]string `json:"view_plan"`
	Tables    []string   `json:"tables"`
	// ActualCost is A(q|v), the measured cost of the rewritten query.
	ActualCost float64 `json:"actual_cost"`
	// RawCost is A(q), the measured cost of the original query; kept so
	// benefits B = A(q) - A(q|v) can be recomputed.
	RawCost float64 `json:"raw_cost"`
}

// Experience is one DQN replay tuple ⟨e_t, a_t, r_t, e_{t+1}⟩ persisted for
// offline training (Algorithm 2 stores the memory pool in the metadata DB).
type Experience struct {
	State     []float64 `json:"state"`
	Action    int       `json:"action"`
	Reward    float64   `json:"reward"`
	NextState []float64 `json:"next_state"`
	Terminal  bool      `json:"terminal"`
}

// MetadataDB is the paper's "metadata database": it stores training data
// for both offline-trained models. It is safe for concurrent use.
type MetadataDB struct {
	mu          sync.RWMutex
	costRecords []CostRecord
	experiences []Experience
}

// NewMetadataDB returns an empty metadata database.
func NewMetadataDB() *MetadataDB { return &MetadataDB{} }

// AddCostRecord appends a cost-estimation training example.
func (m *MetadataDB) AddCostRecord(r CostRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.costRecords = append(m.costRecords, r)
}

// CostRecords returns a copy of all stored cost records.
func (m *MetadataDB) CostRecords() []CostRecord {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]CostRecord, len(m.costRecords))
	copy(out, m.costRecords)
	return out
}

// AddExperience appends one replay tuple.
func (m *MetadataDB) AddExperience(e Experience) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.experiences = append(m.experiences, e)
}

// Experiences returns a copy of all stored replay tuples.
func (m *MetadataDB) Experiences() []Experience {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Experience, len(m.experiences))
	copy(out, m.experiences)
	return out
}

// Counts reports (#cost records, #experiences).
func (m *MetadataDB) Counts() (int, int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.costRecords), len(m.experiences)
}

// snapshot is the on-disk representation.
type snapshot struct {
	CostRecords []CostRecord `json:"cost_records"`
	Experiences []Experience `json:"experiences"`
}

// Save serializes the database as JSON.
func (m *MetadataDB) Save(w io.Writer) error {
	m.mu.RLock()
	snap := snapshot{CostRecords: m.costRecords, Experiences: m.experiences}
	m.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("metadata: save: %w", err)
	}
	return nil
}

// Load replaces the database contents from JSON previously written by Save.
func (m *MetadataDB) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("metadata: load: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.costRecords = snap.CostRecords
	m.experiences = snap.Experiences
	return nil
}
