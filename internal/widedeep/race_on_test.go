//go:build race

package widedeep

// raceEnabled gates the allocation-count assertions: under the race
// detector sync.Pool deliberately drops a random fraction of Put items,
// so pooled-arena reuse (and therefore allocs/op) is nondeterministic.
const raceEnabled = true
