package widedeep

import (
	"math/rand"
	"testing"

	"autoview/internal/featenc"
)

// TestPredictBatchMatchesPredict is the batched-inference determinism
// guarantee: every element of PredictBatch equals the standalone
// Predict result bit-for-bit, at any parallelism, on trained and
// untrained models alike.
func TestPredictBatchMatchesPredict(t *testing.T) {
	cat := testCatalog(t)
	samples := syntheticSamples(t, cat, 24)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	model := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 8, Hidden: 8}}, rand.New(rand.NewSource(5)))
	if _, err := model.Fit(samples, TrainConfig{Epochs: 2, BatchSize: 8, LearnRate: 0.005}); err != nil {
		t.Fatal(err)
	}

	fs := make([]featenc.Features, len(samples))
	for i, s := range samples {
		fs[i] = s.F
	}
	want := make([]float64, len(fs))
	for i, f := range fs {
		want[i] = model.Predict(f)
	}
	for _, par := range []int{0, 1, 2, 8} {
		got := model.PredictBatch(fs, par)
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d results for %d inputs", par, len(got), len(fs))
		}
		for i := range want {
			if got[i] != want[i] { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("parallelism %d: element %d: batch %v sequential %v", par, i, got[i], want[i])
			}
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, nil)
	model := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}, rand.New(rand.NewSource(1)))
	if got := model.PredictBatch(nil, 4); len(got) != 0 {
		t.Fatalf("expected no results, got %d", len(got))
	}
}
