package widedeep

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"autoview/internal/featenc"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	cfg := Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}
	m := New(vocab, cfg, rand.New(rand.NewSource(1)))
	samples := syntheticSamples(t, cat, 12)
	if _, err := m.Fit(samples, TrainConfig{Epochs: 3, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	want := m.Predict(samples[0].F)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh model with different random init must reproduce the
	// prediction exactly after Load.
	m2 := New(vocab, cfg, rand.New(rand.NewSource(999)))
	if m2.Predict(samples[0].F) == want {
		t.Fatal("fresh model accidentally matches; test is vacuous")
	}
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := m2.Predict(samples[0].F); got != want {
		t.Errorf("prediction after load = %v, want %v", got, want)
	}
}

func TestSaveLoadPredictionsOn100Inputs(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	cfg := Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}
	m := New(vocab, cfg, rand.New(rand.NewSource(21)))
	samples := syntheticSamples(t, cat, 100)
	if _, err := m.Fit(samples[:32], TrainConfig{Epochs: 2, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(vocab, cfg, rand.New(rand.NewSource(777)))
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		want := m.Predict(s.F)
		if got := m2.Predict(s.F); got != want {
			t.Fatalf("input %d: loaded model predicts %g, original %g", i, got, want)
		}
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, nil)
	m := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}, rand.New(rand.NewSource(2)))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 8, Hidden: 8}}, rand.New(rand.NewSource(3)))
	err := other.Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("want shape mismatch error, got %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, nil)
	m := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}, rand.New(rand.NewSource(4)))
	if err := m.Load(strings.NewReader("{nope")); err == nil {
		t.Error("garbage should not load")
	}
}

func TestWideOnlyAndDeepOnlyAblations(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	samples := syntheticSamples(t, cat, 16)
	for _, cfg := range []Config{
		{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}, WideOnly: true},
		{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}, DeepOnly: true},
	} {
		m := New(vocab, cfg, rand.New(rand.NewSource(5)))
		if _, err := m.Fit(samples, TrainConfig{Epochs: 4, BatchSize: 8}); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		y := m.Predict(samples[0].F)
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Errorf("%+v: prediction %v", cfg, y)
		}
	}
}

func TestWideOnlyIgnoresPlanPerturbation(t *testing.T) {
	// The wide part sees only numeric features: two samples with the
	// same numerics but different plans must predict identically under
	// WideOnly (and generally differently under the full model).
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	samples := syntheticSamples(t, cat, 8)
	a, b := samples[0].F, samples[0].F
	b.QueryPlan = samples[1].F.QueryPlan // different plan text
	b.Numeric = a.Numeric

	wide := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}, WideOnly: true}, rand.New(rand.NewSource(6)))
	if _, err := wide.Fit(samples, TrainConfig{Epochs: 2, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	if wide.Predict(a) != wide.Predict(b) {
		t.Error("WideOnly prediction depends on plan text")
	}
}
