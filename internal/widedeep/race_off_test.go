//go:build !race

package widedeep

const raceEnabled = false
