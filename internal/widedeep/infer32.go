package widedeep

import (
	"autoview/internal/featenc"
	"autoview/internal/nn"
)

// kernels32 is the float32 inference mirror of the whole model: flat
// f32 copies of every layer plus the normalizer's scaling state,
// materialized lazily from the trained f64 parameters and rebuilt
// whenever they change (Fit, Load — see Model.InvalidateKernels).
// Training never touches it; the f64 forward stays bit-exact.
type kernels32 struct {
	enc       *featenc.Encoder32
	mean, std nn.Vec32 // normalizer state (length NumericDim)

	wide               *nn.Linear32
	fc1, fc2, fc3, fc4 *nn.Linear32
	fc5, fc6           *nn.Linear32

	wideOnly, deepOnly bool
}

// buildKernels32 materializes the mirror. Cheap relative to training or
// even one cold request burst: it is a flat conversion pass over the
// parameters (the folded keyword tables dominate, ~vocab × 4H floats).
func (m *Model) buildKernels32() *kernels32 {
	k := &kernels32{
		enc:  featenc.NewEncoder32(m.Enc),
		mean: make(nn.Vec32, len(m.Norm.Mean)),
		std:  make(nn.Vec32, len(m.Norm.Std)),
		wide: nn.NewLinear32(m.Wide),
		fc1:  nn.NewLinear32(m.FC1),
		fc2:  nn.NewLinear32(m.FC2),
		fc3:  nn.NewLinear32(m.FC3),
		fc4:  nn.NewLinear32(m.FC4),
		fc5:  nn.NewLinear32(m.FC5),
		fc6:  nn.NewLinear32(m.FC6),

		wideOnly: m.cfg.WideOnly,
		deepOnly: m.cfg.DeepOnly,
	}
	nn.F32From(k.mean, m.Norm.Mean)
	nn.F32From(k.std, m.Norm.Std)
	return k
}

// kernels returns the current f32 mirror, building it on first use
// after an invalidation. Concurrent builders may race benignly — both
// materialize from the same immutable-while-serving weights and the
// last store wins.
func (m *Model) kernels() *kernels32 {
	if k := m.k32.Load(); k != nil {
		return k
	}
	k := m.buildKernels32()
	m.k32.Store(k)
	return k
}

// InvalidateKernels drops the f32 mirror so the next Predict rebuilds
// it from the current f64 parameters. Fit and Load call it; callers
// that mutate Params() directly (tests, external optimizers) must call
// it themselves before serving.
func (m *Model) InvalidateKernels() { m.k32.Store(nil) }

// UseF64Kernels switches Predict/PredictBatch onto the float64
// reference forward (true) or the float32 kernel mirror (false, the
// default). The escape hatch exists for numerics triage — comparing a
// suspect estimate against the bit-exact training forward — and for
// the parity harness itself.
func (m *Model) UseF64Kernels(v bool) { m.refF64.Store(v) }

// inferForward32 is the f32 twin of inferForward: the same Figure-5
// graph over the kernel mirrors. Agreement with the f64 path is
// enforced by the tolerance harness in infer32_test.go (pinned
// envelope + rank preservation), not bit-exactness.
func (k *kernels32) inferForward(f featenc.Features, a *nn.Arena) float64 {
	dc := a.Vec32(len(f.Numeric))
	for i, v := range f.Numeric {
		dc[i] = (float32(v) - k.mean[i]) / k.std[i]
	}

	dw := k.wide.Infer(dc, a)
	dm := k.enc.InferSchema(f.Schema, a)
	deQ := k.enc.InferPlan(f.QueryPlan, a)
	deV := k.enc.InferPlan(f.ViewPlan, a)

	dr := a.Vec32(len(dc) + len(dm) + len(deQ) + len(deV))
	n := copy(dr, dc)
	n += copy(dr[n:], dm)
	n += copy(dr[n:], deQ)
	copy(dr[n:], deV)

	// ResNet block 1.
	h1 := k.fc1.Infer(dr, a)
	nn.ReLU32(h1)
	h2 := k.fc2.Infer(h1, a)
	nn.ReLU32(h2)
	z1 := a.Vec32(len(dr))
	nn.Sum32(z1, dr, h2)

	// ResNet block 2.
	h3 := k.fc3.Infer(z1, a)
	nn.ReLU32(h3)
	h4 := k.fc4.Infer(h3, a)
	nn.ReLU32(h4)
	z2 := a.Vec32(len(z1))
	nn.Sum32(z2, z1, h4)

	// Regressor; ablations drop one branch.
	var reg nn.Vec32
	switch {
	case k.wideOnly:
		reg = dw
	case k.deepOnly:
		reg = z2
	default:
		reg = a.Vec32(len(dw) + len(z2))
		copy(reg, dw)
		copy(reg[len(dw):], z2)
	}
	h5 := k.fc5.Infer(reg, a)
	nn.ReLU32(h5)
	out := k.fc6.Infer(h5, a)
	return float64(out[0])
}
