package widedeep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"autoview/internal/featenc"
	"autoview/internal/nn"
)

// snapshot is the on-disk form of a trained model: scaling state plus the
// parameter blob. The architecture itself is reconstructed by the caller
// (New with the same vocabulary and Config — both deterministic), keeping
// the format simple and forward-compatible.
type snapshot struct {
	YMean  float64             `json:"y_mean"`
	YStd   float64             `json:"y_std"`
	Norm   *featenc.Normalizer `json:"normalizer"`
	Params json.RawMessage     `json:"params"`
}

// Save persists the trained model's weights and scaling state.
func (m *Model) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, m.Params()); err != nil {
		return err
	}
	snap := snapshot{YMean: m.yMean, YStd: m.yStd, Norm: m.Norm, Params: buf.Bytes()}
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("widedeep: save: %w", err)
	}
	return nil
}

// Load restores weights saved by Save into a model built with the same
// vocabulary and Config.
func (m *Model) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("widedeep: load: %w", err)
	}
	if err := nn.LoadParams(bytes.NewReader(snap.Params), m.Params()); err != nil {
		return err
	}
	m.yMean, m.yStd = snap.YMean, snap.YStd
	if m.yStd == 0 { //lint:allow floateq zero std is the degenerate-snapshot sentinel
		m.yStd = 1
	}
	m.Norm = snap.Norm
	m.InvalidateKernels() // loaded weights obsolete any cached f32 mirror
	return nil
}
