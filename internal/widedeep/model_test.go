package widedeep

import (
	"math"
	"math/rand"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/featenc"
	"autoview/internal/nn"
	"autoview/internal/plan"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "memo", Type: catalog.TypeString, Distinct: 20},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 400, Bytes: 12800},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 40},
				{Name: "action", Type: catalog.TypeString, Distinct: 10},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 600, Bytes: 19200},
		},
	} {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// syntheticSamples builds training data whose target depends on plan
// length and a predicate constant, so the model must use the encoders to
// fit it.
func syntheticSamples(t *testing.T, cat *catalog.Catalog, n int) []Sample {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	dts := []string{"10", "22", "35", "47", "59"}
	var samples []Sample
	for len(samples) < n {
		dt := dts[rng.Intn(len(dts))]
		typ := rng.Intn(3) + 1
		sql := `select t1.user_id, count(*) as cnt
		 from ( select user_id, memo from user_memo where dt='` + dt + `' and memo_type = 'pen' ) t1
		 inner join ( select user_id, action from user_action where type = ` + itoa(typ) + ` and dt='` + dt + `' ) t2
		 on t1.user_id = t2.user_id group by t1.user_id`
		q, err := plan.Parse(sql, cat)
		if err != nil {
			t.Fatal(err)
		}
		subs := plan.ExtractSubqueries(q)
		v := subs[rng.Intn(len(subs))].Root
		f := featenc.Extract(q, v, cat)
		// A deterministic pseudo-cost: longer views save more; the dt
		// constant shifts cost so string encoding matters.
		y := 10.0 - 2.0*float64(len(f.ViewPlan)) + float64(dt[0]-'0')*0.7 + 0.3*float64(typ)
		samples = append(samples, Sample{F: f, Y: y})
	}
	return samples
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestModelGradients(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	rng := rand.New(rand.NewSource(1))
	m := New(vocab, Config{
		Encoder:    featenc.Config{EmbedDim: 3, Hidden: 3},
		WideDim:    3,
		DeepHidden: 4,
		RegHidden:  3,
	}, rng)
	samples := syntheticSamples(t, cat, 1)
	numerics := [][]float64{samples[0].F.Numeric}
	m.Norm = featenc.FitNormalizer(numerics)

	f := samples[0].F
	loss := func() float64 {
		y, _ := m.forward(f)
		return y * y
	}
	nn.ZeroGrads(m.Params())
	y, back := m.forward(f)
	back(2 * y)
	const eps = 1e-6
	checked := 0
	for _, p := range m.Params() {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + eps
			lp := loss()
			p.Val[i] = orig - eps
			lm := loss()
			p.Val[i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(p.Grad[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %g, want %g", p, i, p.Grad[i], want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
}

func TestFitReducesLoss(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	rng := rand.New(rand.NewSource(2))
	m := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 8, Hidden: 8}}, rng)
	samples := syntheticSamples(t, cat, 48)
	losses, err := m.Fit(samples, TrainConfig{Epochs: 12, LearnRate: 0.01, BatchSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 12 {
		t.Fatalf("want 12 epoch losses, got %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0]*0.8 {
		t.Errorf("training did not reduce loss: first %v, last %v", losses[0], losses[len(losses)-1])
	}
	// Predictions should be in the right ballpark after training.
	var mae float64
	for _, s := range samples {
		mae += math.Abs(m.Predict(s.F) - s.Y)
	}
	mae /= float64(len(samples))
	if mae > 2.0 {
		t.Errorf("train MAE = %v, want < 2.0", mae)
	}
}

// TestFitParallelismDeterminism trains the full W-D model from one seed
// at Parallelism 1 and 8: weights, loss traces and predictions must be
// bit-for-bit identical — the trainer computes every sample's gradient
// from a zeroed per-worker buffer and reduces in sample order, so worker
// count never changes the arithmetic.
func TestFitParallelismDeterminism(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	samples := syntheticSamples(t, cat, 24)
	cfg := Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}

	fit := func(par int) (*Model, []float64) {
		m := New(vocab, cfg, rand.New(rand.NewSource(31)))
		losses, err := m.Fit(samples, TrainConfig{Epochs: 4, BatchSize: 8, Seed: 5, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return m, losses
	}
	m1, l1 := fit(1)
	m8, l8 := fit(8)
	for i := range l1 {
		if l1[i] != l8[i] {
			t.Fatalf("epoch %d loss: serial %.17g, parallel %.17g", i, l1[i], l8[i])
		}
	}
	p1, p8 := m1.Params(), m8.Params()
	for i := range p1 {
		for j := range p1[i].Val {
			if p1[i].Val[j] != p8[i].Val[j] {
				t.Fatalf("%s weight[%d]: serial %.17g, parallel %.17g", p1[i], j, p1[i].Val[j], p8[i].Val[j])
			}
		}
	}
	for _, s := range samples {
		if m1.Predict(s.F) != m8.Predict(s.F) {
			t.Fatal("predictions diverge between parallelism settings")
		}
	}
}

func TestFitEmptyErrors(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, nil)
	m := New(vocab, Config{}, rand.New(rand.NewSource(1)))
	if _, err := m.Fit(nil, TrainConfig{}); err == nil {
		t.Error("Fit on empty data should error")
	}
}

func TestVariantsBuildAndPredict(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	samples := syntheticSamples(t, cat, 8)
	for name, encCfg := range Variants() {
		rng := rand.New(rand.NewSource(4))
		m := New(vocab, Config{Encoder: featenc.Config{
			EmbedDim:      4,
			Hidden:        4,
			KeywordOneHot: encCfg.KeywordOneHot,
			StringOneHot:  encCfg.StringOneHot,
			NoSequence:    encCfg.NoSequence,
		}}, rng)
		if _, err := m.Fit(samples, TrainConfig{Epochs: 2, BatchSize: 4}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := m.Predict(samples[0].F)
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Errorf("%s: prediction is %v", name, y)
		}
	}
}

func TestVariantName(t *testing.T) {
	for want, cfg := range Variants() {
		if got := VariantName(cfg); got != want {
			t.Errorf("VariantName(%+v) = %q, want %q", cfg, got, want)
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	m := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}, rand.New(rand.NewSource(5)))
	samples := syntheticSamples(t, cat, 4)
	if _, err := m.Fit(samples, TrainConfig{Epochs: 1, BatchSize: 2}); err != nil {
		t.Fatal(err)
	}
	a := m.Predict(samples[0].F)
	b := m.Predict(samples[0].F)
	if a != b {
		t.Error("Predict is not deterministic")
	}
}

func TestTargetStandardizationRestoresScale(t *testing.T) {
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	m := New(vocab, Config{Encoder: featenc.Config{EmbedDim: 4, Hidden: 4}}, rand.New(rand.NewSource(6)))
	samples := syntheticSamples(t, cat, 16)
	// Scale targets up: predictions must come back at that scale.
	for i := range samples {
		samples[i].Y *= 1000
	}
	if _, err := m.Fit(samples, TrainConfig{Epochs: 10, BatchSize: 8, LearnRate: 0.01}); err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, s := range samples {
		mean += m.Predict(s.F)
	}
	mean /= float64(len(samples))
	if mean < 1000 {
		t.Errorf("predictions not restored to target scale: mean %v", mean)
	}
}
