// Package widedeep implements the paper's cost estimation model (Section
// IV): a Wide-Deep network that predicts A(q|v), the cost of query q
// rewritten with materialized view v, from plan sequences, table schemas
// and table statistics.
//
// Architecture (Figure 5):
//
//	wide:  Dw = Mw(Dc)                        (affine over normalized numerics)
//	deep:  Dr = concat(Dc, Dm, De)
//	       Z1 = Dr ⊕ ReLU(FC2(ReLU(FC1(Dr))))
//	       Z2 = Z1 ⊕ ReLU(FC4(ReLU(FC3(Z1))))  (two ResNet blocks)
//	out:   Ŷ  = FC6(ReLU(FC5(Dw, Z2)))         (regressor)
//
// where Dm is the schema encoding and De the plan sequence encoding of the
// query and view plans (internal/featenc). Model.Fit runs the mini-batch
// training loop of Algorithm 1 over measured (q, v, A(q|v)) samples;
// Model.Predict serves Â(q|v) to the benefit estimator.
package widedeep

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"autoview/internal/featenc"
	"autoview/internal/nn"
	"autoview/internal/obs"
)

// W-D estimator metrics: every Predict counts (and is timed by the
// wd.infer span when obs is enabled); Fit reports per-epoch training loss
// through the wd.train.loss gauge and times whole fits under wd.train.
var (
	obsInferCount   = obs.Default.Counter("wd.infer.count", "W-D cost-model inferences (Predict calls or PredictBatch elements)")
	obsInferBatches = obs.Default.Counter("wd.infer.batches", "W-D PredictBatch invocations")
	obsArenaBytes   = obs.Default.Gauge("wd.infer.arena.bytes", "scratch footprint of the last returned W-D inference arena (per-worker high-water mark)")
	obsTrainEpochs  = obs.Default.Counter("wd.train.epochs", "W-D training epochs completed")
	obsTrainLoss    = obs.Default.Gauge("wd.train.loss", "mean training loss of the last W-D epoch")
)

// Config sizes the network.
type Config struct {
	Encoder    featenc.Config
	WideDim    int // output width of the wide affine part, default 8
	DeepHidden int // hidden width inside each ResNet block, default 32
	RegHidden  int // hidden width of the regressor, default 16

	// WideOnly drops the deep part (the regressor sees only Dw);
	// DeepOnly drops the wide part. Both false is the paper's model.
	// These drive the wide-vs-deep ablation benchmark.
	WideOnly bool
	DeepOnly bool
}

func (c Config) withDefaults() Config {
	if c.WideDim <= 0 {
		c.WideDim = 8
	}
	if c.DeepHidden <= 0 {
		c.DeepHidden = 32
	}
	if c.RegHidden <= 0 {
		c.RegHidden = 16
	}
	return c
}

// Model is the Wide-Deep cost estimator.
type Model struct {
	Enc  *featenc.Encoder
	Norm *featenc.Normalizer

	Wide               *nn.Linear // Mw
	FC1, FC2, FC3, FC4 *nn.Linear // deep ResNet blocks Md
	FC5, FC6           *nn.Linear // regressor Mr

	// Target standardization (fitted during training).
	yMean, yStd float64

	cfg Config

	// arenas pools per-worker inference scratch (nn.Arena) for the
	// zero-allocation Predict/PredictBatch fast path. Warm arenas are
	// reused across calls, batches and serving requests; the pool makes
	// concurrent Predict calls safe without locking. spare pins one warm
	// arena outside the pool: sync.Pool is emptied on every GC cycle,
	// and without the pinned slot a collection would force the next
	// Predict to rebuild its scratch from the heap.
	arenas sync.Pool
	spare  atomic.Pointer[nn.Arena]

	// k32 caches the float32 kernel mirror of the trained weights
	// (built lazily, dropped by InvalidateKernels whenever the f64
	// parameters change); refF64 forces Predict onto the float64
	// reference forward (UseF64Kernels).
	k32    atomic.Pointer[kernels32]
	refF64 atomic.Bool
}

// New builds an initialized model over the vocabulary.
func New(vocab *featenc.Vocab, cfg Config, rng *rand.Rand) *Model {
	cfg = cfg.withDefaults()
	enc := featenc.NewEncoder(vocab, cfg.Encoder, rng)
	dr := featenc.NumericDim + enc.SchemaDim() + 2*enc.PlanDim()
	regIn := cfg.WideDim + dr
	if cfg.WideOnly {
		regIn = cfg.WideDim
	} else if cfg.DeepOnly {
		regIn = dr
	}
	m := &Model{
		Enc:  enc,
		cfg:  cfg,
		Wide: nn.NewLinear("wide", featenc.NumericDim, cfg.WideDim, rng),
		FC1:  nn.NewLinear("fc1", dr, cfg.DeepHidden, rng),
		FC2:  nn.NewLinear("fc2", cfg.DeepHidden, dr, rng),
		FC3:  nn.NewLinear("fc3", dr, cfg.DeepHidden, rng),
		FC4:  nn.NewLinear("fc4", cfg.DeepHidden, dr, rng),
		FC5:  nn.NewLinear("fc5", regIn, cfg.RegHidden, rng),
		FC6:  nn.NewLinear("fc6", cfg.RegHidden, 1, rng),
		yStd: 1,
	}
	return m
}

// Params returns every learnable parameter (θm, θe, θw, θd, θr).
func (m *Model) Params() []*nn.Param {
	return nn.CollectParams(m.Enc, m.Wide, m.FC1, m.FC2, m.FC3, m.FC4, m.FC5, m.FC6)
}

// shareWeights returns a model replica whose layers share weight storage
// with m but own private gradient buffers, in m's parameter order —
// one per training worker (see nn.Trainer). Scaling state is copied by
// value, so the replica must be built after Norm and the target scale are
// fitted.
func (m *Model) shareWeights() *Model {
	return &Model{
		Enc:   m.Enc.ShareWeights(),
		Norm:  m.Norm,
		Wide:  m.Wide.ShareWeights(),
		FC1:   m.FC1.ShareWeights(),
		FC2:   m.FC2.ShareWeights(),
		FC3:   m.FC3.ShareWeights(),
		FC4:   m.FC4.ShareWeights(),
		FC5:   m.FC5.ShareWeights(),
		FC6:   m.FC6.ShareWeights(),
		yMean: m.yMean,
		yStd:  m.yStd,
		cfg:   m.cfg,
	}
}

// forward computes the standardized prediction and a backward closure
// taking dL/dŷ.
func (m *Model) forward(f featenc.Features) (float64, func(dy float64)) {
	dc := m.Norm.Apply(f.Numeric)

	dw, bWide := m.Wide.Forward(dc)
	dm, bSchema := m.Enc.EncodeSchema(f.Schema)
	deQ, bQ := m.Enc.EncodePlan(f.QueryPlan)
	deV, bV := m.Enc.EncodePlan(f.ViewPlan)

	dr := nn.Concat(dc, dm, deQ, deV)

	// ResNet block 1.
	h1, b1 := m.FC1.Forward(dr)
	a1, ab1 := nn.ReLU(h1)
	h2, b2 := m.FC2.Forward(a1)
	a2, ab2 := nn.ReLU(h2)
	z1, _ := nn.Add(dr, a2)

	// ResNet block 2.
	h3, b3 := m.FC3.Forward(z1)
	a3, ab3 := nn.ReLU(h3)
	h4, b4 := m.FC4.Forward(a3)
	a4, ab4 := nn.ReLU(h4)
	z2, _ := nn.Add(z1, a4)

	// Regressor. Ablations drop one branch entirely.
	var reg nn.Vec
	switch {
	case m.cfg.WideOnly:
		reg = dw
	case m.cfg.DeepOnly:
		reg = z2
	default:
		reg = nn.Concat(dw, z2)
	}
	h5, b5 := m.FC5.Forward(reg)
	a5, ab5 := nn.ReLU(h5)
	out, b6 := m.FC6.Forward(a5)

	back := func(dy float64) {
		dA5 := b6(nn.Vec{dy})
		dH5 := ab5(dA5)
		dReg := b5(dH5)
		var dDw, dZ2 nn.Vec
		switch {
		case m.cfg.WideOnly:
			dDw = dReg
			dZ2 = make(nn.Vec, len(z2))
		case m.cfg.DeepOnly:
			dDw = make(nn.Vec, len(dw))
			dZ2 = dReg
		default:
			parts := nn.SplitBackward(dReg, len(dw), len(z2))
			dDw, dZ2 = parts[0], parts[1]
		}

		// Block 2 backward: z2 = z1 + a4.
		dA4 := ab4(dZ2)
		dH4 := b4(dA4)
		dA3 := ab3(dH4)
		dZ1fromBlock := b3(dA3)
		dZ1 := addVecs(dZ2, dZ1fromBlock)

		// Block 1 backward: z1 = dr + a2.
		dA2 := ab2(dZ1)
		dH2 := b2(dA2)
		dA1 := ab1(dH2)
		dDrFromBlock := b1(dA1)
		dDr := addVecs(dZ1, dDrFromBlock)

		dparts := nn.SplitBackward(dDr, len(dc), len(dm), len(deQ), len(deV))
		// dc has no learnable upstream (normalized statistics), skip.
		bSchema(dparts[1])
		bQ(dparts[2])
		bV(dparts[3])
		bWide(dDw)
	}
	return out[0], back
}

func addVecs(a, b nn.Vec) nn.Vec {
	out := make(nn.Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Predict estimates A(q|v) for one feature set. The model must have been
// trained (Fit) first.
//
// Predict runs the forward-only inference fast path: no backward
// closures are built and every activation lives in a pooled nn.Arena,
// so a steady-state call performs zero heap allocations. By default it
// runs the float32 kernel mirror (blocked kernels, folded embedding
// tables — see internal/nn kernels32), which agrees with the float64
// training forward within the pinned tolerance and never flips a view
// ranking (the parity harness enforces both); UseF64Kernels(true)
// switches to the bit-exact float64 reference forward. Safe for
// concurrent use.
func (m *Model) Predict(f featenc.Features) float64 {
	defer obs.StartSpan("wd.infer")()
	obsInferCount.Inc()
	if m.Norm == nil {
		m.Norm = featenc.FitNormalizer(nil)
	}
	a := m.getArena()
	a.Reset()
	var y float64
	if m.refF64.Load() {
		y = m.inferForward(f, a)
	} else {
		y = m.kernels().inferForward(f, a)
	}
	m.putArena(a)
	return y*m.yStd + m.yMean
}

// PredictBatch estimates A(q|v) for many feature sets at once, fanning
// the forward-only passes across parallelism workers (0 selects
// runtime.NumCPU(); 1 runs serially). Each worker owns one pooled
// inference arena, reset per element and reused across the whole batch
// (and, through the pool, across successive batches — the serving
// micro-batcher's steady state). Forward passes only read the shared
// weights, so each element of the result is bit-identical to a
// standalone Predict call regardless of batch composition or
// concurrency — the property the serving layer's micro-batcher depends
// on. Results are returned in input order.
func (m *Model) PredictBatch(fs []featenc.Features, parallelism int) []float64 {
	defer obs.StartSpan("wd.infer.batch")()
	if m.Norm == nil {
		m.Norm = featenc.FitNormalizer(nil)
	}
	obsInferCount.Add(int64(len(fs)))
	obsInferBatches.Inc()
	out := make([]float64, len(fs))
	workers := nn.Workers(len(fs), parallelism)
	if workers <= 0 {
		return out
	}
	arenas := make([]*nn.Arena, workers)
	for w := range arenas {
		arenas[w] = m.getArena()
	}
	var k *kernels32
	if !m.refF64.Load() {
		k = m.kernels() // resolve once; workers share the immutable mirror
	}
	nn.ParallelForWorker(len(fs), parallelism, func(w, i int) {
		a := arenas[w]
		a.Reset()
		if k != nil {
			out[i] = k.inferForward(fs[i], a)*m.yStd + m.yMean
		} else {
			out[i] = m.inferForward(fs[i], a)*m.yStd + m.yMean
		}
	})
	for _, a := range arenas {
		m.putArena(a)
	}
	return out
}

// Sample is one training example: features plus the measured cost A(q|v).
type Sample struct {
	F featenc.Features
	Y float64
}

// TrainConfig controls Algorithm 1.
type TrainConfig struct {
	Epochs    int     // I
	LearnRate float64 // lr
	BatchSize int     // b_s
	Seed      int64
	// Parallelism is the number of data-parallel training workers per
	// mini-batch (nn.Trainer). 0 selects runtime.NumCPU(); 1 runs
	// serially. Results are bit-for-bit identical for every setting.
	Parallelism int
	// Progress, when non-nil, receives (epoch, meanLoss) after each epoch.
	Progress func(epoch int, loss float64)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.005
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	return c
}

// Fit trains the model with mini-batch Adam and MSE loss, following
// Algorithm 1: extract features, normalize, shuffle each epoch, sample
// batches, and jointly optimize all five parts. It returns the mean
// training loss per epoch.
func (m *Model) Fit(samples []Sample, cfg TrainConfig) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("widedeep: no training samples")
	}
	defer obs.StartSpan("wd.train")()
	// The f32 mirror is stale from the first optimizer step; drop it now
	// (and again on exit) so concurrent readers rebuild rather than
	// serve mid-training weights from before the fit.
	m.InvalidateKernels()
	defer m.InvalidateKernels()
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Lines 1-2: numeric normalization and target standardization.
	numerics := make([][]float64, len(samples))
	for i, s := range samples {
		numerics[i] = s.F.Numeric
	}
	m.Norm = featenc.FitNormalizer(numerics)
	m.fitTargetScale(samples)

	params := m.Params()
	opt := nn.NewAdam(cfg.LearnRate)
	opt.Clip = 5

	// Data-parallel mini-batch gradients: each worker owns a model
	// replica over shared weights; batch and n are staged before every
	// Step and read by the per-sample runners.
	var batch []int
	var n float64
	trainer := nn.NewTrainer(params, cfg.Parallelism, func() ([]*nn.Param, nn.SampleFunc) {
		rep := m.shareWeights()
		run := func(i int) float64 {
			s := samples[batch[i]]
			target := (s.Y - m.yMean) / m.yStd
			pred, back := rep.forward(s.F)
			d := pred - target
			back(2 * d / n)
			return d * d
		}
		return rep.Params(), run
	})

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch = idx[start:end]
			n = float64(end - start)
			batchLoss := trainer.Step(end - start)
			opt.Step(params)
			epochLoss += batchLoss / n
			batches++
		}
		meanLoss := epochLoss / float64(batches)
		losses = append(losses, meanLoss)
		obsTrainEpochs.Inc()
		obsTrainLoss.Set(meanLoss)
		obs.Debug("wd.epoch", "epoch", epoch, "loss", meanLoss)
		if cfg.Progress != nil {
			cfg.Progress(epoch, meanLoss)
		}
	}
	return losses, nil
}

func (m *Model) fitTargetScale(samples []Sample) {
	var mean float64
	for _, s := range samples {
		mean += s.Y
	}
	mean /= float64(len(samples))
	var variance float64
	for _, s := range samples {
		d := s.Y - mean
		variance += d * d
	}
	std := math.Sqrt(variance / float64(len(samples)))
	if std < 1e-12 {
		std = 1
	}
	m.yMean, m.yStd = mean, std
}

// VariantName labels the four architecture variants of the experiments.
func VariantName(cfg featenc.Config) string {
	switch {
	case cfg.NoSequence:
		return "N-Exp"
	case cfg.StringOneHot:
		return "N-Str"
	case cfg.KeywordOneHot:
		return "N-Kw"
	default:
		return "W-D"
	}
}

// Variants returns the encoder configurations of the paper's comparison:
// the full model and its three ablations. Note the paper's naming: N-Kw
// removes only keyword embeddings, N-Str only the string CNN, N-Exp only
// the sequence models.
func Variants() map[string]featenc.Config {
	return map[string]featenc.Config{
		"W-D":   {},
		"N-Kw":  {KeywordOneHot: true},
		"N-Str": {StringOneHot: true},
		"N-Exp": {NoSequence: true},
	}
}
