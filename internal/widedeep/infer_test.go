package widedeep

import (
	"math/rand"
	"sort"
	"testing"

	"autoview/internal/featenc"
	"autoview/internal/nn"
	"autoview/internal/obs"
)

// disableObs pins the global obs registry off for one test: an enabled
// span allocates, which would pollute the allocation counts (other
// tests or packages may have enabled it).
func disableObs(t *testing.T) {
	t.Helper()
	if obs.Enabled() {
		obs.Disable()
		t.Cleanup(obs.Enable)
	}
}

// The serving path (Predict/PredictBatch) runs the forward-only arena
// fast path on float32 kernels; these tests pin its contracts: the f64
// reference path (UseF64Kernels) stays bit-identical to the training
// forward, the default f32 path stays inside the pinned tolerance
// envelope and is itself deterministic, and the steady state allocates
// nothing.

// f32 parity budget of the full forward against the f64 training
// forward. Observed worst case across all variants on the seeded inputs
// is ~3e-7 relative; the budget leaves ~30x headroom without ever
// approaching a magnitude that could flip a view ranking (see the
// rank-preservation test in internal/experiments). Documented in
// PERFORMANCE.md.
const (
	predictRTol = 1e-5
	predictATol = 1e-6
)

func inferTestModel(t *testing.T, enc featenc.Config, cfg Config) (*Model, []Sample) {
	t.Helper()
	cat := testCatalog(t)
	vocab := featenc.NewVocab(cat, []string{"cnt"})
	cfg.Encoder = enc
	m := New(vocab, cfg, rand.New(rand.NewSource(7)))
	samples := syntheticSamples(t, cat, 30)
	numerics := make([][]float64, len(samples))
	for i := range samples {
		numerics[i] = samples[i].F.Numeric
	}
	m.Norm = featenc.FitNormalizer(numerics)
	// Non-trivial output scaling so the de-standardization step is part
	// of the parity check too.
	m.yMean, m.yStd = 0.3, 2.1
	return m, samples
}

// TestPredictMatchesForwardAllVariants is the parity harness for every
// encoder variant and both wide/deep ablations, twice per input (the
// second call replays a warm arena): the f64 reference path must equal
// the training forward with == (that kernel is unchanged), and the
// default f32 kernel path must agree within the pinned tolerance while
// being bit-deterministic across warm-arena replays.
func TestPredictMatchesForwardAllVariants(t *testing.T) {
	variants := Variants()
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)
	type cfgCase struct {
		name string
		enc  featenc.Config
		cfg  Config
	}
	cases := make([]cfgCase, 0, len(names)+2)
	for _, name := range names {
		cases = append(cases, cfgCase{name, variants[name], Config{WideDim: 4, DeepHidden: 6, RegHidden: 4}})
	}
	cases = append(cases,
		cfgCase{"WideOnly", featenc.Config{EmbedDim: 4, Hidden: 4}, Config{WideDim: 4, DeepHidden: 6, RegHidden: 4, WideOnly: true}},
		cfgCase{"DeepOnly", featenc.Config{EmbedDim: 4, Hidden: 4}, Config{WideDim: 4, DeepHidden: 6, RegHidden: 4, DeepOnly: true}},
	)
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			c.enc.EmbedDim, c.enc.Hidden = 4, 4
			m, samples := inferTestModel(t, c.enc, c.cfg)
			for i := 0; i < 25; i++ {
				f := samples[i%len(samples)].F
				want, _ := m.forward(f)
				want = want*m.yStd + m.yMean

				// f64 reference path: bit-identical, kernel unchanged.
				m.UseF64Kernels(true)
				if got := m.Predict(f); got != want { //lint:allow floateq bit-identity of the f64 reference path is the property under test
					t.Fatalf("input %d: f64 Predict = %v, forward = %v (diff %g)", i, got, want, got-want)
				}

				// f32 kernel path: pinned tolerance + determinism.
				m.UseF64Kernels(false)
				got := m.Predict(f)
				if !nn.AlmostEqual(got, want, predictRTol, predictATol) {
					t.Fatalf("input %d: f32 Predict = %v, forward = %v (diff %g) outside rtol %g / atol %g",
						i, got, want, got-want, predictRTol, predictATol)
				}
				if again := m.Predict(f); again != got { //lint:allow floateq warm-arena determinism of the f32 path is the property under test
					t.Fatalf("input %d: warm-arena f32 Predict drifted: %v != %v", i, again, got)
				}
			}
		})
	}
}

// TestPredictBatchBitIdenticalAcrossParallelism checks every element of
// PredictBatch against standalone Predict at several worker counts —
// per-worker arenas must not leak state between elements (the -race run
// covers the data-race side of the same property).
func TestPredictBatchBitIdenticalAcrossParallelism(t *testing.T) {
	m, samples := inferTestModel(t, featenc.Config{EmbedDim: 4, Hidden: 4}, Config{WideDim: 4, DeepHidden: 6, RegHidden: 4})
	fs := make([]featenc.Features, 40)
	for i := range fs {
		fs[i] = samples[i%len(samples)].F
	}
	want := make([]float64, len(fs))
	for i, f := range fs {
		want[i] = m.Predict(f)
	}
	for _, par := range []int{0, 1, 3, 8} {
		got := m.PredictBatch(fs, par)
		for i := range want {
			if got[i] != want[i] { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("parallelism %d, element %d: %v != %v", par, i, got[i], want[i])
			}
		}
	}
}

// TestPredictZeroAlloc is the allocation-regression gate on the single
// prediction path: once the pooled arena is warm, Predict must not
// touch the heap at all.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops random Put items under -race; allocation counts need the plain build")
	}
	disableObs(t)
	m, samples := inferTestModel(t, featenc.Config{EmbedDim: 4, Hidden: 4}, Config{WideDim: 4, DeepHidden: 6, RegHidden: 4})
	f := samples[0].F
	var sink float64
	if n := testing.AllocsPerRun(200, func() { sink = m.Predict(f) }); n != 0 {
		t.Fatalf("steady-state Predict allocates %v allocs/op, want 0", n)
	}
	_ = sink
}

// TestPredictBatchAllocsBatchSizeIndependent pins the serial batch
// path's cost model: a fixed per-batch constant (result slice, arena
// bookkeeping) and zero per-element allocations — so an 8x larger batch
// must cost exactly the same number of allocations.
func TestPredictBatchAllocsBatchSizeIndependent(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops random Put items under -race; allocation counts need the plain build")
	}
	disableObs(t)
	m, samples := inferTestModel(t, featenc.Config{EmbedDim: 4, Hidden: 4}, Config{WideDim: 4, DeepHidden: 6, RegHidden: 4})
	batch := func(n int) []featenc.Features {
		fs := make([]featenc.Features, n)
		for i := range fs {
			fs[i] = samples[i%len(samples)].F
		}
		return fs
	}
	small, large := batch(8), batch(64)
	aSmall := testing.AllocsPerRun(100, func() { m.PredictBatch(small, 1) })
	aLarge := testing.AllocsPerRun(100, func() { m.PredictBatch(large, 1) })
	if aLarge != aSmall {
		t.Fatalf("PredictBatch allocs grow with batch size: %v (n=8) vs %v (n=64)", aSmall, aLarge)
	}
	// The per-batch constant itself must stay pinned small.
	const maxPerBatch = 8
	if aSmall > maxPerBatch {
		t.Fatalf("PredictBatch per-batch allocs = %v, want <= %d", aSmall, maxPerBatch)
	}
}
