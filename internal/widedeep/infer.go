package widedeep

import (
	"autoview/internal/featenc"
	"autoview/internal/nn"
)

// inferForward is the forward-only twin of forward: the same Figure-5
// computation in the same operation order (bit-identical output, see the
// parity tests), with every activation carved out of the caller's arena
// and no backward closures built. Predict and PredictBatch run this on
// the serving critical path, so a steady-state call allocates nothing.
func (m *Model) inferForward(f featenc.Features, a *nn.Arena) float64 {
	dc := a.Vec(len(f.Numeric))
	m.Norm.ApplyInto(dc, f.Numeric)

	dw := m.Wide.Infer(dc, a)
	dm := m.Enc.InferSchema(f.Schema, a)
	deQ := m.Enc.InferPlan(f.QueryPlan, a)
	deV := m.Enc.InferPlan(f.ViewPlan, a)

	dr := a.Vec(len(dc) + len(dm) + len(deQ) + len(deV))
	nn.ConcatInto(dr, dc, dm, deQ, deV)

	// ResNet block 1 (activations run in place on the layer outputs —
	// elementwise, so values match the training forward exactly).
	h1 := m.FC1.Infer(dr, a)
	nn.ReLUInto(h1, h1)
	h2 := m.FC2.Infer(h1, a)
	nn.ReLUInto(h2, h2)
	z1 := a.Vec(len(dr))
	nn.SumInto(z1, dr, h2)

	// ResNet block 2.
	h3 := m.FC3.Infer(z1, a)
	nn.ReLUInto(h3, h3)
	h4 := m.FC4.Infer(h3, a)
	nn.ReLUInto(h4, h4)
	z2 := a.Vec(len(z1))
	nn.SumInto(z2, z1, h4)

	// Regressor. Ablations drop one branch entirely.
	var reg nn.Vec
	switch {
	case m.cfg.WideOnly:
		reg = dw
	case m.cfg.DeepOnly:
		reg = z2
	default:
		reg = a.Vec(len(dw) + len(z2))
		nn.ConcatInto(reg, dw, z2)
	}
	h5 := m.FC5.Infer(reg, a)
	nn.ReLUInto(h5, h5)
	out := m.FC6.Infer(h5, a)
	return out[0]
}

// getArena hands out a reusable inference arena (one per concurrent
// predictor; warm arenas carry the model's scratch high-water mark, so
// steady-state use allocates nothing). The pinned spare slot is tried
// before the pool: it survives garbage collections, which empty a
// sync.Pool wholesale, so even a GC-heavy process keeps at least one
// warm arena and the single-predictor path stays allocation-free.
func (m *Model) getArena() *nn.Arena {
	if a := m.spare.Swap(nil); a != nil {
		return a
	}
	if a, ok := m.arenas.Get().(*nn.Arena); ok {
		return a
	}
	return nn.NewArena()
}

// putArena returns an arena to the spare slot (or the overflow pool)
// and publishes its footprint.
func (m *Model) putArena(a *nn.Arena) {
	obsArenaBytes.Set(float64(a.Bytes()))
	if m.spare.CompareAndSwap(nil, a) {
		return
	}
	m.arenas.Put(a)
}
