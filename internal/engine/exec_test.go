package engine

import (
	"math/rand"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/plan"
	"autoview/internal/storage"
)

// fixture builds a two-table catalog and hand-written rows so results are
// exactly checkable.
func fixture(t *testing.T) (*catalog.Catalog, *storage.Store) {
	t.Helper()
	cat := catalog.New()
	users := &catalog.Table{
		Name: "users",
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.TypeInt, Distinct: 10},
			{Name: "city", Type: catalog.TypeString, Distinct: 3},
		},
		Stats: catalog.TableStats{Rows: 4},
	}
	orders := &catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "uid", Type: catalog.TypeInt, Distinct: 10},
			{Name: "amount", Type: catalog.TypeFloat, Distinct: 100},
		},
		Stats: catalog.TableStats{Rows: 6},
	}
	if err := cat.Add(users); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(orders); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore()
	ut := storage.NewTable(users)
	for _, r := range []storage.Row{
		{storage.Int(1), storage.Str("bj")},
		{storage.Int(2), storage.Str("sh")},
		{storage.Int(3), storage.Str("bj")},
		{storage.Int(4), storage.Str("gz")},
	} {
		if err := ut.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	ot := storage.NewTable(orders)
	for _, r := range []storage.Row{
		{storage.Int(1), storage.Float(10)},
		{storage.Int(1), storage.Float(20)},
		{storage.Int(2), storage.Float(5)},
		{storage.Int(3), storage.Float(7)},
		{storage.Int(3), storage.Float(3)},
		{storage.Int(9), storage.Float(99)},
	} {
		if err := ot.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Put(ut)
	st.Put(ot)
	return cat, st
}

func run(t *testing.T, cat *catalog.Catalog, st *storage.Store, sql string) (*Result, Usage) {
	t.Helper()
	n, err := plan.Parse(sql, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	res, u, err := New(st).Execute(n)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res, u
}

func TestScanFilterProject(t *testing.T) {
	cat, st := fixture(t)
	res, u := run(t, cat, st, "select city from users where id >= 2")
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	want := []string{"sh", "bj", "gz"}
	for i, r := range res.Rows {
		if r[0].S != want[i] {
			t.Errorf("row %d = %v, want %s", i, r[0], want[i])
		}
	}
	if u.CPUOps == 0 || u.OutRows != 3 || u.OutBytes == 0 {
		t.Errorf("usage not metered: %+v", u)
	}
}

func TestInnerJoin(t *testing.T) {
	cat, st := fixture(t)
	res, _ := run(t, cat, st, "select u.city, o.amount from users u inner join orders o on u.id = o.uid")
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 joined rows, got %d", len(res.Rows))
	}
	var total float64
	for _, r := range res.Rows {
		total += r[1].AsFloat()
	}
	if total != 45 {
		t.Errorf("sum of joined amounts = %v, want 45", total)
	}
}

func TestLeftJoin(t *testing.T) {
	cat, st := fixture(t)
	res, _ := run(t, cat, st, "select u.id, o.amount from users u left join orders o on u.id = o.uid")
	// id=4 has no orders: padded row survives; total rows = 5 matches + 1 pad.
	if len(res.Rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(res.Rows))
	}
	padded := 0
	for _, r := range res.Rows {
		if r[0].I == 4 {
			padded++
			if r[1].AsFloat() != 0 {
				t.Errorf("padded amount = %v, want 0", r[1])
			}
		}
	}
	if padded != 1 {
		t.Errorf("want exactly one padded row, got %d", padded)
	}
}

func TestAggregate(t *testing.T) {
	cat, st := fixture(t)
	res, _ := run(t, cat, st,
		"select u.city, count(*) as n, sum(o.amount) as s, avg(o.amount) as m, min(o.amount) as lo, max(o.amount) as hi "+
			"from users u inner join orders o on u.id = o.uid group by u.city")
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 groups, got %d", len(res.Rows))
	}
	byCity := map[string]storage.Row{}
	for _, r := range res.Rows {
		byCity[r[0].S] = r
	}
	bj := byCity["bj"]
	if bj == nil {
		t.Fatal("missing group bj")
	}
	if bj[1].I != 4 || bj[2].AsFloat() != 40 || bj[3].F != 10 || bj[4].AsFloat() != 3 || bj[5].AsFloat() != 20 {
		t.Errorf("bj aggregates wrong: %v", bj)
	}
	sh := byCity["sh"]
	if sh == nil || sh[1].I != 1 || sh[2].AsFloat() != 5 {
		t.Errorf("sh aggregates wrong: %v", sh)
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	cat, st := fixture(t)
	res, _ := run(t, cat, st, "select count(*) as n from users where id > 100")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("global count over empty input = %v, want one row of 0", res.Rows)
	}
}

func TestPaperExampleEndToEnd(t *testing.T) {
	// The full Figure 2 query over generated data must execute and the
	// join+aggregate costs must exceed the subquery costs.
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 50},
				{Name: "memo", Type: catalog.TypeString, Distinct: 20},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 500},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 50},
				{Name: "action", Type: catalog.TypeString, Distinct: 10},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 5},
			},
			Stats: catalog.TableStats{Rows: 800},
		},
	} {
		if err := cat.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.Populate(cat, rand.New(rand.NewSource(7)))
	sql := `select t1.user_id, count(*) as cnt
		from ( select user_id, memo from user_memo where dt='v1' and memo_type = 'v2' ) t1
		inner join ( select user_id, action from user_action where type = 1 and dt='v1' ) t2
		on t1.user_id = t2.user_id group by t1.user_id`
	root, err := plan.Parse(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(st)
	_, uq, err := ex.Execute(root)
	if err != nil {
		t.Fatal(err)
	}
	subs := plan.ExtractSubqueries(root)
	if len(subs) != 3 {
		t.Fatalf("want 3 subqueries, got %d", len(subs))
	}
	for _, s := range subs {
		us, err := ex.Cost(s.Root)
		if err != nil {
			t.Fatal(err)
		}
		if us.CPUOps >= uq.CPUOps {
			t.Errorf("subquery cost %d >= query cost %d", us.CPUOps, uq.CPUOps)
		}
	}
}

func TestPricingModel(t *testing.T) {
	p := DefaultPricing()
	u := Usage{CPUOps: 2e6, PeakBytes: 5e8, OutBytes: 1e9}
	if got := u.CPUMinutes(p); got != 2 {
		t.Errorf("CPUMinutes = %v, want 2", got)
	}
	if got := u.MemGBMinutes(p); got != 1 {
		t.Errorf("MemGBMinutes = %v, want 1", got)
	}
	wantCost := 0.1*2 + 0.001*1
	if got := u.Cost(p); got != wantCost {
		t.Errorf("Cost = %v, want %v", got, wantCost)
	}
	if got := u.StorageCost(p); got != 1.67e-5 {
		t.Errorf("StorageCost = %v, want 1.67e-5", got)
	}
	if got := u.TotalViewOverhead(p); got != wantCost+1.67e-5 {
		t.Errorf("TotalViewOverhead = %v", got)
	}
}

func TestUsageAdd(t *testing.T) {
	a := Usage{CPUOps: 10, PeakBytes: 100, OutRows: 1, OutBytes: 8}
	b := Usage{CPUOps: 5, PeakBytes: 50, OutRows: 2, OutBytes: 16}
	a.Add(b)
	if a.CPUOps != 15 || a.PeakBytes != 100 || a.OutRows != 2 || a.OutBytes != 16 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestExecuteMissingTable(t *testing.T) {
	cat, _ := fixture(t)
	n, err := plan.Parse("select id from users", cat)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = New(storage.NewStore()).Execute(n)
	if err == nil {
		t.Fatal("want error for missing table")
	}
}

func TestMeterPeakTracksHashTables(t *testing.T) {
	cat, st := fixture(t)
	_, uScan := run(t, cat, st, "select id from users")
	_, uJoin := run(t, cat, st, "select u.id from users u inner join orders o on u.id = o.uid")
	if uJoin.PeakBytes <= uScan.PeakBytes {
		t.Errorf("join peak %d should exceed scan peak %d", uJoin.PeakBytes, uScan.PeakBytes)
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	cat, st := fixture(t)
	res, _ := run(t, cat, st,
		"select u.city, count(*) as n from users u inner join orders o on u.id = o.uid group by u.city having n > 1")
	// Only bj has more than one order-bearing user row (4 rows); sh has 1.
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 surviving group, got %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "bj" || res.Rows[0][1].I != 4 {
		t.Errorf("surviving group = %v", res.Rows[0])
	}
}

func BenchmarkExecutePaperQuery(b *testing.B) {
	cat := catalog.New()
	for _, tb := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 500},
				{Name: "memo", Type: catalog.TypeString, Distinct: 50},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 8},
			},
			Stats: catalog.TableStats{Rows: 5000},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 500},
				{Name: "action", Type: catalog.TypeString, Distinct: 10},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 8},
			},
			Stats: catalog.TableStats{Rows: 8000},
		},
	} {
		if err := cat.Add(tb); err != nil {
			b.Fatal(err)
		}
	}
	st := storage.Populate(cat, rand.New(rand.NewSource(7)))
	sql := `select t1.user_id, count(*) as cnt
		from ( select user_id, memo from user_memo where dt='v1' and memo_type = 'v2' ) t1
		inner join ( select user_id, action from user_action where type = 1 and dt='v1' ) t2
		on t1.user_id = t2.user_id group by t1.user_id`
	n, err := plan.Parse(sql, cat)
	if err != nil {
		b.Fatal(err)
	}
	ex := New(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Cost(n); err != nil {
			b.Fatal(err)
		}
	}
}
