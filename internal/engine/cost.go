// Package engine executes logical plans over in-memory tables while
// metering resource usage, and converts usage into dollar costs with the
// paper's pricing model (Definitions 1-3):
//
//	Aα = α·u_sto   (storage, $/GB)
//	Aβ = β·u_cpu   (CPU, $/(core·minute))
//	Aγ = γ·u_mem   (memory, $/(GB·minute))
//	A_{β,γ}(q) = Aβ(q) + Aγ(q)
package engine

// Pricing holds the billing constants. Defaults follow the paper's
// Table II: α=1.67e-5 $/GB, β=1e-1 $/(core·min), γ=1e-3 $/(GB·min).
type Pricing struct {
	Alpha float64 // $/GB of stored view
	Beta  float64 // $/(core·minute)
	Gamma float64 // $/(GB·minute)
	// OpsPerCoreMinute converts the executor's abstract row operations
	// into core·minutes: u_cpu = ops / OpsPerCoreMinute.
	OpsPerCoreMinute float64
}

// DefaultPricing returns the paper's Table II constants with a conversion
// factor sized so our synthetic workloads land at comparable utility
// magnitudes (single-digit to hundreds of dollars).
func DefaultPricing() Pricing {
	return Pricing{
		Alpha:            1.67e-5,
		Beta:             1e-1,
		Gamma:            1e-3,
		OpsPerCoreMinute: 1e6,
	}
}

// Usage is the metered resource consumption of one plan execution.
type Usage struct {
	CPUOps    int64 // abstract weighted row operations
	PeakBytes int64 // peak simultaneously-held bytes
	OutRows   int   // result cardinality
	OutBytes  int64 // result byte size (u_sto when materialized)
}

// CPUMinutes converts operations into core·minutes under the pricing.
func (u Usage) CPUMinutes(p Pricing) float64 {
	return float64(u.CPUOps) / p.OpsPerCoreMinute
}

// MemGBMinutes approximates GB·minutes as peak-GB × runtime-minutes,
// with runtime equal to single-core CPU minutes.
func (u Usage) MemGBMinutes(p Pricing) float64 {
	return float64(u.PeakBytes) / 1e9 * u.CPUMinutes(p)
}

// Cost returns A_{β,γ} in dollars: the paper's computation cost of a query
// or subquery (Definition 1).
func (u Usage) Cost(p Pricing) float64 {
	return p.Beta*u.CPUMinutes(p) + p.Gamma*u.MemGBMinutes(p)
}

// StorageCost returns Aα in dollars for materializing the output
// (Definition 2).
func (u Usage) StorageCost(p Pricing) float64 {
	return p.Alpha * float64(u.OutBytes) / 1e9
}

// TotalViewOverhead returns O_vs = Aα(vs) + A_{β,γ}(s), the total overhead
// of building a materialized view on this execution (Definition 3).
func (u Usage) TotalViewOverhead(p Pricing) float64 {
	return u.StorageCost(p) + u.Cost(p)
}

// Add accumulates another usage (sequential composition; peaks take max).
func (u *Usage) Add(o Usage) {
	u.CPUOps += o.CPUOps
	if o.PeakBytes > u.PeakBytes {
		u.PeakBytes = o.PeakBytes
	}
	u.OutRows = o.OutRows
	u.OutBytes = o.OutBytes
}

// meter tracks live and peak allocated bytes plus CPU operations during a
// single execution.
type meter struct {
	ops  int64
	cur  int64
	peak int64
}

func (m *meter) op(n int64) { m.ops += n }

func (m *meter) alloc(bytes int64) {
	m.cur += bytes
	if m.cur > m.peak {
		m.peak = m.cur
	}
}

func (m *meter) free(bytes int64) { m.cur -= bytes }
