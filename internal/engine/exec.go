package engine

import (
	"fmt"
	"strings"

	"autoview/internal/catalog"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/storage"
)

// Executor metrics: every plan execution (including the cost measurements
// that feed model training) counts here; the engine.exec span times them.
var (
	obsExecCount = obs.Default.Counter("engine.exec.count", "plan executions (including cost measurements)")
	obsExecRows  = obs.Default.Counter("engine.exec.rows", "result rows produced by plan executions")
)

// Result is a fully materialized relation produced by an execution.
type Result struct {
	Schema []plan.ColInfo
	Rows   []storage.Row
}

// Bytes is the nominal byte size of the result.
func (r *Result) Bytes() int64 {
	var total int64
	for _, row := range r.Rows {
		total += int64(row.Width())
	}
	return total
}

// Executor evaluates logical plans against a store, metering cost.
type Executor struct {
	Store *storage.Store
}

// New returns an executor over the store.
func New(store *storage.Store) *Executor { return &Executor{Store: store} }

// Execute runs the plan and returns its result plus metered usage.
func (e *Executor) Execute(n *plan.Node) (*Result, Usage, error) {
	defer obs.StartSpan("engine.exec")()
	m := &meter{}
	res, err := e.run(n, m)
	if err != nil {
		return nil, Usage{}, err
	}
	obsExecCount.Inc()
	obsExecRows.Add(int64(len(res.Rows)))
	u := Usage{
		CPUOps:    m.ops,
		PeakBytes: m.peak,
		OutRows:   len(res.Rows),
		OutBytes:  res.Bytes(),
	}
	return res, u, nil
}

// Cost runs the plan and returns only its metered usage; the result rows
// are discarded. This is how "actual costs" for training data are measured.
func (e *Executor) Cost(n *plan.Node) (Usage, error) {
	_, u, err := e.Execute(n)
	return u, err
}

func (e *Executor) run(n *plan.Node, m *meter) (*Result, error) {
	switch n.Op {
	case plan.OpScan:
		return e.runScan(n, m)
	case plan.OpFilter:
		return e.runFilter(n, m)
	case plan.OpProject:
		return e.runProject(n, m)
	case plan.OpJoin:
		return e.runJoin(n, m)
	case plan.OpAggregate:
		return e.runAggregate(n, m)
	default:
		return nil, fmt.Errorf("engine: unsupported operator %v", n.Op)
	}
}

func (e *Executor) runScan(n *plan.Node, m *meter) (*Result, error) {
	t, ok := e.Store.Get(n.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q not found in store", n.Table)
	}
	if len(t.Meta.Columns) != len(n.Schema) {
		return nil, fmt.Errorf("engine: schema drift for table %q: plan has %d cols, store has %d",
			n.Table, len(n.Schema), len(t.Meta.Columns))
	}
	// Scanning charges per row proportionally to row width (I/O cost
	// follows bytes, not tuples: a wide materialized view is more
	// expensive to scan than a narrow one).
	m.op(int64(len(t.Rows)) * scanWeight(t.Meta.RowWidth()))
	res := &Result{Schema: n.Schema, Rows: t.Rows}
	m.alloc(res.Bytes())
	return res, nil
}

// scanWeight converts a row byte width into per-row scan operations (one
// op per 8 bytes, minimum 1).
func scanWeight(rowWidth int) int64 {
	w := int64(rowWidth) / 8
	if w < 1 {
		w = 1
	}
	return w
}

func (e *Executor) runFilter(n *plan.Node, m *meter) (*Result, error) {
	in, err := e.run(n.Child(0), m)
	if err != nil {
		return nil, err
	}
	out := &Result{Schema: n.Schema}
	for _, row := range in.Rows {
		keep, cmps := n.Pred.Eval(row)
		m.op(int64(cmps))
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	m.alloc(out.Bytes())
	m.free(in.Bytes())
	return out, nil
}

func (e *Executor) runProject(n *plan.Node, m *meter) (*Result, error) {
	in, err := e.run(n.Child(0), m)
	if err != nil {
		return nil, err
	}
	out := &Result{Schema: n.Schema, Rows: make([]storage.Row, 0, len(in.Rows))}
	for _, row := range in.Rows {
		// Column pruning is cheap: one op per row regardless of width.
		m.op(1)
		outRow := make(storage.Row, len(n.Proj))
		for i, pc := range n.Proj {
			outRow[i] = row[pc.Src]
		}
		out.Rows = append(out.Rows, outRow)
	}
	m.alloc(out.Bytes())
	m.free(in.Bytes())
	return out, nil
}

// joinKey builds a composite hash key from the join columns of a row.
func joinKey(row storage.Row, cols []int, b *strings.Builder) string {
	b.Reset()
	for _, c := range cols {
		v := row[c]
		if v.Kind == catalog.TypeString {
			b.WriteString("s:")
			b.WriteString(v.S)
		} else {
			fmt.Fprintf(b, "n:%g", v.AsFloat())
		}
		b.WriteByte('|')
	}
	return b.String()
}

func (e *Executor) runJoin(n *plan.Node, m *meter) (*Result, error) {
	left, err := e.run(n.Child(0), m)
	if err != nil {
		return nil, err
	}
	right, err := e.run(n.Child(1), m)
	if err != nil {
		return nil, err
	}
	lcols := make([]int, len(n.JoinCond))
	rcols := make([]int, len(n.JoinCond))
	for i, je := range n.JoinCond {
		lcols[i] = je.Left
		rcols[i] = je.Right
	}
	// Build a hash table on the right input.
	ht := make(map[string][]storage.Row, len(right.Rows))
	var kb strings.Builder
	var htBytes int64
	for _, row := range right.Rows {
		k := joinKey(row, rcols, &kb)
		ht[k] = append(ht[k], row)
		htBytes += int64(len(k)) + int64(row.Width())
		m.op(2)
	}
	m.alloc(htBytes)

	out := &Result{Schema: n.Schema}
	rightWidth := len(right.Schema)
	for _, lrow := range left.Rows {
		k := joinKey(lrow, lcols, &kb)
		m.op(2)
		matches := ht[k]
		if len(matches) == 0 {
			if n.JoinType == plan.LeftJoin {
				outRow := make(storage.Row, 0, len(lrow)+rightWidth)
				outRow = append(outRow, lrow...)
				for _, c := range right.Schema {
					outRow = append(outRow, zeroValue(c.Type))
				}
				out.Rows = append(out.Rows, outRow)
				m.op(1)
			}
			continue
		}
		for _, rrow := range matches {
			outRow := make(storage.Row, 0, len(lrow)+len(rrow))
			outRow = append(outRow, lrow...)
			outRow = append(outRow, rrow...)
			out.Rows = append(out.Rows, outRow)
			m.op(1)
		}
	}
	m.alloc(out.Bytes())
	m.free(htBytes)
	m.free(left.Bytes())
	m.free(right.Bytes())
	return out, nil
}

func zeroValue(t catalog.ColType) storage.Value {
	switch t {
	case catalog.TypeFloat:
		return storage.Float(0)
	case catalog.TypeString:
		return storage.Str("")
	default:
		return storage.Int(0)
	}
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sum   float64
	min   storage.Value
	max   storage.Value
	seen  bool
}

func (s *aggState) update(v storage.Value) {
	s.count++
	s.sum += v.AsFloat()
	if !s.seen {
		s.min, s.max, s.seen = v, v, true
		return
	}
	if v.Compare(s.min) < 0 {
		s.min = v
	}
	if v.Compare(s.max) > 0 {
		s.max = v
	}
}

func (s *aggState) result(f plan.AggFunc, outType catalog.ColType) storage.Value {
	switch f {
	case plan.AggCount:
		return storage.Int(s.count)
	case plan.AggSum:
		if outType == catalog.TypeInt {
			return storage.Int(int64(s.sum))
		}
		return storage.Float(s.sum)
	case plan.AggAvg:
		if s.count == 0 {
			return storage.Float(0)
		}
		return storage.Float(s.sum / float64(s.count))
	case plan.AggMin:
		if !s.seen {
			return zeroValue(outType)
		}
		return s.min
	case plan.AggMax:
		if !s.seen {
			return zeroValue(outType)
		}
		return s.max
	default:
		return storage.Int(0)
	}
}

func (e *Executor) runAggregate(n *plan.Node, m *meter) (*Result, error) {
	in, err := e.run(n.Child(0), m)
	if err != nil {
		return nil, err
	}
	type group struct {
		key    storage.Row // group-by values
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string // deterministic output order (first-seen)
	var kb strings.Builder
	for _, row := range in.Rows {
		k := joinKey(row, n.GroupBy, &kb)
		g, ok := groups[k]
		if !ok {
			keyVals := make(storage.Row, len(n.GroupBy))
			for i, gc := range n.GroupBy {
				keyVals[i] = row[gc]
			}
			g = &group{key: keyVals, states: make([]aggState, len(n.Aggs))}
			groups[k] = g
			order = append(order, k)
		}
		m.op(int64(2 + len(n.Aggs)))
		for i, a := range n.Aggs {
			if a.Col >= 0 {
				g.states[i].update(row[a.Col])
			} else {
				g.states[i].count++
			}
		}
	}
	// Global aggregate over empty input still yields one row.
	if len(n.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{states: make([]aggState, len(n.Aggs))}
		order = append(order, "")
	}
	var groupBytes int64
	out := &Result{Schema: n.Schema, Rows: make([]storage.Row, 0, len(groups))}
	for _, k := range order {
		g := groups[k]
		outRow := make(storage.Row, len(n.AggOuts))
		for i, spec := range n.AggOuts {
			if spec.FromGroup {
				outRow[i] = g.key[spec.Idx]
			} else {
				outRow[i] = g.states[spec.Idx].result(n.Aggs[spec.Idx].Func, n.Schema[i].Type)
			}
		}
		out.Rows = append(out.Rows, outRow)
		groupBytes += int64(outRow.Width()) + 48
	}
	m.alloc(groupBytes)
	m.alloc(out.Bytes())
	m.free(groupBytes)
	m.free(in.Bytes())
	return out, nil
}
