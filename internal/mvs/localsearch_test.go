package mvs

import (
	"math"
	"math/rand"
	"testing"
)

func TestLocalSearchMatchesOptimumOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 3+rng.Intn(20), 3+rng.Intn(10))
		opt := OptimalExact(in, 0)
		ls := LocalSearch(in, LocalSearchOptions{Rand: rand.New(rand.NewSource(7))})
		// With the greedy-seeded restart plus three random restarts the
		// climber reaches the exact optimum on every one of these seeded
		// instances; pinning equality (not just a gap bound) makes any
		// future quality regression loud.
		if ls.BestUtility < opt.Utility-1e-9 {
			t.Errorf("trial %d: local search %v below optimum %v", trial, ls.BestUtility, opt.Utility)
		}
		if ls.BestUtility > opt.Utility+1e-9 {
			t.Errorf("trial %d: local search %v above optimum %v (accounting bug)", trial, ls.BestUtility, opt.Utility)
		}
		if !in.Feasible(ls.Best) {
			t.Errorf("trial %d: infeasible state", trial)
		}
		if u := in.Utility(ls.Best); u != ls.BestUtility {
			t.Errorf("trial %d: reported utility %v != recomputed %v", trial, ls.BestUtility, u)
		}
	}
}

func TestLocalSearchBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomInstance(rng, 12, 8)
	var minOver, totalOver float64
	minOver = math.Inf(1)
	for _, o := range in.Overhead {
		totalOver += o
		if o < minOver {
			minOver = o
		}
	}

	cases := []struct {
		name   string
		budget float64
	}{
		{"below-min-overhead", minOver * 0.5},
		{"mid", totalOver * 0.3},
		{"exactly-total", totalOver},
		{"unbounded-zero", 0},
		{"unbounded-negative", -1},
	}
	unbounded := LocalSearch(in, LocalSearchOptions{Rand: rand.New(rand.NewSource(2))})
	for _, tc := range cases {
		res := LocalSearch(in, LocalSearchOptions{Budget: tc.budget, Rand: rand.New(rand.NewSource(2))})
		over := in.SelectionOverhead(res.Best.Z)
		if tc.budget > 0 && over > tc.budget+1e-9 {
			t.Errorf("%s: overhead %v exceeds budget %v", tc.name, over, tc.budget)
		}
		if !in.Feasible(res.Best) {
			t.Errorf("%s: infeasible", tc.name)
		}
		switch tc.name {
		case "below-min-overhead":
			if len(SelectedViews(res.Best.Z)) != 0 || res.BestUtility != 0 {
				t.Errorf("%s: want empty selection, got %v ($%v)", tc.name, SelectedViews(res.Best.Z), res.BestUtility)
			}
		case "unbounded-zero", "unbounded-negative", "exactly-total":
			// Σ O_j can never be exceeded, so these are all unbounded.
			if res.BestUtility != unbounded.BestUtility {
				t.Errorf("%s: utility %v != unbounded %v", tc.name, res.BestUtility, unbounded.BestUtility)
			}
		}
	}
}

func TestLocalSearchDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 4+rng.Intn(12), 4+rng.Intn(8))
		var ref *LocalSearchResult
		for _, par := range []int{1, 4, 8} {
			res := LocalSearch(in, LocalSearchOptions{
				Rand:        rand.New(rand.NewSource(21)),
				Parallelism: par,
			})
			if ref == nil {
				ref = res
				continue
			}
			if res.BestUtility != ref.BestUtility {
				t.Errorf("trial %d P=%d: utility %v != P=1 %v", trial, par, res.BestUtility, ref.BestUtility)
			}
			for j := range res.Best.Z {
				if res.Best.Z[j] != ref.Best.Z[j] {
					t.Fatalf("trial %d P=%d: selection differs at view %d", trial, par, j)
				}
			}
			if len(res.Trace) != len(ref.Trace) {
				t.Fatalf("trial %d P=%d: trace length %d != %d", trial, par, len(res.Trace), len(ref.Trace))
			}
			for i := range res.Trace {
				if res.Trace[i] != ref.Trace[i] {
					t.Fatalf("trial %d P=%d: trace diverges at move %d", trial, par, i)
				}
			}
		}
	}
}

func TestLocalSearchAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randomInstance(rng, 15, 9)
	res := LocalSearch(in, LocalSearchOptions{Rand: rand.New(rand.NewSource(3))})
	if res.Moves != len(res.Trace) {
		t.Errorf("moves %d != trace length %d", res.Moves, len(res.Trace))
	}
	if res.Evaluations < res.Moves {
		t.Errorf("evaluations %d below accepted moves %d", res.Evaluations, res.Moves)
	}
	sel := SelectedViews(res.Best.Z)
	for i := 1; i < len(sel); i++ {
		if sel[i] <= sel[i-1] {
			t.Fatalf("selection not strictly ascending: %v", sel)
		}
	}
	if res.BestRestart < 0 || res.BestRestart >= 4 {
		t.Errorf("best restart %d outside schedule", res.BestRestart)
	}
}

func TestLocalSearchEmptyAndDegenerate(t *testing.T) {
	// No views at all.
	empty := &Instance{Benefit: [][]float64{}, Overhead: nil, Overlap: [][]bool{}}
	res := LocalSearch(empty, LocalSearchOptions{})
	if res.BestUtility != 0 || len(res.Best.Z) != 0 {
		t.Errorf("empty instance: %+v", res)
	}

	// Views nobody benefits from: the empty selection is optimal.
	useless := &Instance{
		Benefit:  [][]float64{{0, -1}, {-2, 0}},
		Overhead: []float64{1, 1},
		Overlap:  [][]bool{{false, false}, {false, false}},
	}
	res = LocalSearch(useless, LocalSearchOptions{})
	if res.BestUtility != 0 || len(SelectedViews(res.Best.Z)) != 0 {
		t.Errorf("useless views selected: %+v", SelectedViews(res.Best.Z))
	}

	// A single profitable view must be found.
	one := &Instance{
		Benefit:  [][]float64{{5}},
		Overhead: []float64{1},
		Overlap:  [][]bool{{false}},
	}
	res = LocalSearch(one, LocalSearchOptions{})
	if res.BestUtility != 4 {
		t.Errorf("single view: utility %v, want 4", res.BestUtility)
	}
}

func TestSelectedViewsAndOverhead(t *testing.T) {
	z := []bool{true, false, true, true, false}
	got := SelectedViews(z)
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("SelectedViews = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectedViews = %v, want %v", got, want)
		}
	}
	in := &Instance{Overhead: []float64{1, 2, 4, 8, 16}}
	if o := in.SelectionOverhead(z); o != 13 {
		t.Errorf("SelectionOverhead = %v, want 13", o)
	}
	if got := SelectedViews(make([]bool, 3)); got != nil {
		t.Errorf("empty selection should be nil, got %v", got)
	}
}
