package mvs

// OptimalExact computes the exact MVS optimum by decomposition:
//
//  1. Dominance: a view with Σ_q max(B_qj, 0) ≤ O_j can never contribute
//     positive net utility (the overlap constraints only restrict usage,
//     never force it), so it is fixed to z_j = 0.
//  2. Decomposition: utility is additive across connected components of
//     the overlap graph — two non-overlapping views never constrain each
//     other in any query, so per-query view choice (an independent-set
//     problem on a disjoint graph union) decomposes, and so do overheads.
//  3. Each component is solved exactly by the branch-and-bound of
//     OptimalSeeded on its sub-instance.
//
// budgetPerComponent caps each component's search (0 = the OptimalSeeded
// default); Optimal is false if any component exhausts its budget.
func OptimalExact(in *Instance, budgetPerComponent int) *OptResult {
	nv := in.NumViews()
	bmax := in.maxBenefits()

	alive := make([]bool, nv)
	for j := 0; j < nv; j++ {
		alive[j] = bmax[j] > in.Overhead[j]
	}

	// Connected components of the overlap graph over surviving views.
	comp := make([]int, nv)
	for j := range comp {
		comp[j] = -1
	}
	var components [][]int
	for j := 0; j < nv; j++ {
		if !alive[j] || comp[j] >= 0 {
			continue
		}
		id := len(components)
		stack := []int{j}
		comp[j] = id
		var members []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for u := 0; u < nv; u++ {
				if alive[u] && comp[u] < 0 && in.Overlap[v][u] {
					comp[u] = id
					stack = append(stack, u)
				}
			}
		}
		components = append(components, members)
	}

	total := &OptResult{State: NewState(in), Optimal: true}
	for _, members := range components {
		sub, queries := subInstance(in, members)
		res := OptimalSeeded(sub, budgetPerComponent, nil)
		total.Nodes += res.Nodes
		if !res.Optimal {
			total.Optimal = false
		}
		if res.Utility <= 0 {
			continue
		}
		total.Utility += res.Utility
		for a, j := range members {
			total.State.Z[j] = res.State.Z[a]
		}
		for b, qi := range queries {
			for a, j := range members {
				if res.State.Y[b][a] {
					total.State.Y[qi][j] = true
				}
			}
		}
	}
	return total
}

// subInstance projects the instance onto a view subset, keeping only
// queries that can benefit from at least one member. It returns the
// sub-instance and the original query indices.
func subInstance(in *Instance, members []int) (*Instance, []int) {
	var queries []int
	for i, row := range in.Benefit {
		for _, j := range members {
			if row[j] > 0 {
				queries = append(queries, i)
				break
			}
		}
	}
	sub := &Instance{
		Benefit:  make([][]float64, len(queries)),
		Overhead: make([]float64, len(members)),
		Overlap:  make([][]bool, len(members)),
	}
	for a, j := range members {
		sub.Overhead[a] = in.Overhead[j]
		sub.Overlap[a] = make([]bool, len(members))
		for b, k := range members {
			sub.Overlap[a][b] = in.Overlap[j][k]
		}
	}
	for b, qi := range queries {
		sub.Benefit[b] = make([]float64, len(members))
		for a, j := range members {
			sub.Benefit[b][a] = in.Benefit[qi][j]
		}
	}
	return sub, queries
}
