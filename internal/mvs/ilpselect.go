package mvs

import "autoview/internal/ilp"

// SolveILP solves the MVS instance exactly by handing Definition 7's
// monolithic 0-1 program to the generic branch-and-bound of internal/ilp
// — the shape the paper feeds to PuLP/Gurobi, kept as an independent
// oracle for the decomposed solvers of optimal.go/decompose.go.
//
// Variables: z_j for every view, plus y_ij for every applicable pair
// (B_ij > 0; non-positive pairs can never appear in an optimum because
// the overlap constraints only restrict usage). Constraints:
//
//	y_ij − z_j ≤ 0                        (usage needs materialization)
//	y_ij + y_ik ≤ 1  for overlapping j,k  (Definition 5 exclusion)
//
// One exact presolve reduction keeps the variable count tractable: when
// view j does not overlap any other view applicable to query i, the only
// constraint on y_ij is y_ij ≤ z_j, and B_ij > 0, so every optimum sets
// y_ij = z_j — the variable is eliminated and B_ij folds into z_j's
// objective coefficient. Only genuinely conflicted pairs stay explicit.
//
// nodeBudget caps the branch-and-bound (0 = the internal/ilp default);
// the incumbent is returned with Optimal=false when it is exhausted.
func SolveILP(in *Instance, nodeBudget int) *OptResult {
	nq, nv := in.NumQueries(), in.NumViews()

	// Variable layout: [0, nv) are z_j; conflicted y_ij follow.
	type pair struct{ i, j int }
	var pairs []pair
	obj := make([]float64, nv)
	for j := 0; j < nv; j++ {
		obj[j] = -in.Overhead[j]
	}
	p := &ilp.Problem{NodeBudget: nodeBudget}
	for i := 0; i < nq; i++ {
		var applicable []int
		for j := 0; j < nv; j++ {
			if in.Benefit[i][j] > 0 {
				applicable = append(applicable, j)
			}
		}
		rowVar := make(map[int]int, len(applicable))
		for _, j := range applicable {
			conflicted := false
			for _, k := range applicable {
				if k != j && in.Overlap[j][k] {
					conflicted = true
					break
				}
			}
			if !conflicted {
				obj[j] += in.Benefit[i][j] // y_ij = z_j in every optimum
				continue
			}
			v := nv + len(pairs)
			rowVar[j] = v
			pairs = append(pairs, pair{i, j})
			obj = append(obj, in.Benefit[i][j])
			p.Cons = append(p.Cons, ilp.Constraint{
				Terms: []ilp.Term{{Var: v, Coef: 1}, {Var: j, Coef: -1}},
				RHS:   0,
			})
		}
		// Cover the query's conflict graph with cliques (greedy): each
		// clique becomes one Σ y ≤ 1 row — equivalent to its pairwise
		// constraints but in the GUB shape internal/ilp's suffix bound
		// exploits. Overlapping pairs spanning two cliques keep their
		// pairwise row.
		var conflicted []int
		for _, j := range applicable {
			if _, ok := rowVar[j]; ok {
				conflicted = append(conflicted, j)
			}
		}
		cliqueOf := make(map[int]int, len(conflicted))
		var cliques [][]int
		for _, j := range conflicted {
			placed := false
			for ci, members := range cliques {
				all := true
				for _, k := range members {
					if !in.Overlap[j][k] {
						all = false
						break
					}
				}
				if all {
					cliques[ci] = append(members, j)
					cliqueOf[j] = ci
					placed = true
					break
				}
			}
			if !placed {
				cliqueOf[j] = len(cliques)
				cliques = append(cliques, []int{j})
			}
		}
		for _, members := range cliques {
			if len(members) < 2 {
				continue
			}
			var terms []ilp.Term
			for _, j := range members {
				terms = append(terms, ilp.Term{Var: rowVar[j], Coef: 1})
			}
			p.Cons = append(p.Cons, ilp.Constraint{Terms: terms, RHS: 1})
		}
		for a, j := range conflicted {
			for _, k := range conflicted[a+1:] {
				if in.Overlap[j][k] && cliqueOf[j] != cliqueOf[k] {
					p.Cons = append(p.Cons, ilp.Constraint{
						Terms: []ilp.Term{{Var: rowVar[j], Coef: 1}, {Var: rowVar[k], Coef: 1}},
						RHS:   1,
					})
				}
			}
		}
	}
	p.Obj = obj

	// Warm-start the incumbent from a quick deterministic local search:
	// the bound then prunes against a near-optimal value from the first
	// node. Exactness is unaffected — the warm start only tightens
	// pruning.
	ls := LocalSearch(in, LocalSearchOptions{Restarts: 2})
	warm := make([]bool, len(obj))
	copy(warm, ls.Best.Z)
	for v, pr := range pairs {
		warm[nv+v] = ls.Best.Y[pr.i][pr.j]
	}
	p.Warm = warm

	sol, err := p.Maximize()
	if err != nil {
		// Unreachable: the encoding above never emits out-of-range
		// variables. Degrade to the empty selection.
		return &OptResult{State: NewState(in), Optimal: false}
	}
	st := NewState(in)
	for j := 0; j < nv; j++ {
		st.Z[j] = sol.X[j]
	}
	for i := 0; i < nq; i++ {
		for j := 0; j < nv; j++ {
			// Eliminated pairs follow z; conflicted pairs follow their
			// solved variable (set below).
			if in.Benefit[i][j] > 0 && st.Z[j] && !rowConflicted(in, i, j) {
				st.Y[i][j] = true
			}
		}
	}
	for v, pr := range pairs {
		if sol.X[nv+v] {
			st.Y[pr.i][pr.j] = true
		}
	}
	return &OptResult{
		State:   st,
		Utility: in.Utility(st),
		Optimal: sol.Optimal,
		Nodes:   sol.Nodes,
	}
}

// rowConflicted reports whether view j overlaps another view applicable
// to query i (the pairs SolveILP keeps as explicit variables).
func rowConflicted(in *Instance, i, j int) bool {
	for k, b := range in.Benefit[i] {
		if k != j && b > 0 && in.Overlap[j][k] {
			return true
		}
	}
	return false
}

// Project returns the sub-instance induced by the given view indices
// plus the original indices of the queries it keeps (those that benefit
// from at least one member). members must be duplicate-free; the
// sub-instance's view axis follows members order. The tournament
// harness uses this to race selectors at growing |Z| on slices of one
// measured instance.
func Project(in *Instance, members []int) (*Instance, []int) {
	return subInstance(in, members)
}
