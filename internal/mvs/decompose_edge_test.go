package mvs

import (
	"math/rand"
	"testing"
)

// TestDecomposeEdgeCases drives OptimalExact (and SolveILP as the
// independent oracle) through the degenerate windows the advisor can hand
// it: empty windows, single-query windows, and node budgets at both
// extremes.
func TestDecomposeEdgeCases(t *testing.T) {
	single := &Instance{
		Benefit:  [][]float64{{4, 3, 2}},
		Overhead: []float64{1, 1, 1},
		Overlap: [][]bool{
			{false, true, false},
			{true, false, false},
			{false, false, false},
		},
	}

	cases := []struct {
		name       string
		in         *Instance
		nodeBudget int
		want       float64
		optimal    bool
	}{
		{
			name: "empty-window",
			in:   &Instance{Benefit: [][]float64{}, Overhead: nil, Overlap: [][]bool{}},
			want: 0, optimal: true,
		},
		{
			name: "no-queries-some-views",
			in: &Instance{
				Benefit:  [][]float64{},
				Overhead: []float64{2, 3},
				Overlap:  [][]bool{{false, false}, {false, false}},
			},
			want: 0, optimal: true,
		},
		{
			// Views 0 and 1 overlap: the query uses view 0 (benefit 4)
			// and view 2 (benefit 2); view 1 is dominated.
			name: "single-query-window",
			in:   single,
			want: (4 - 1) + (2 - 1), optimal: true,
		},
		{
			name: "single-query-huge-budget",
			in:   single, nodeBudget: 1 << 30,
			want: 4, optimal: true,
		},
		{
			// A one-node budget per component still solves trivial
			// components but must not claim optimality when it cannot.
			name: "single-query-one-node-budget",
			in:   single, nodeBudget: 1,
			optimal: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := OptimalExact(tc.in, tc.nodeBudget)
			if res.Optimal != tc.optimal {
				t.Fatalf("Optimal = %v, want %v", res.Optimal, tc.optimal)
			}
			if tc.optimal && res.Utility != tc.want {
				t.Errorf("utility %v, want %v", res.Utility, tc.want)
			}
			if !tc.in.Feasible(res.State) {
				t.Errorf("infeasible state")
			}
			if tc.nodeBudget == 0 || tc.nodeBudget > 1<<20 {
				ilp := SolveILP(tc.in, tc.nodeBudget)
				if !ilp.Optimal {
					t.Fatalf("SolveILP did not finish")
				}
				if tc.optimal && ilp.Utility != tc.want {
					t.Errorf("SolveILP utility %v, want %v", ilp.Utility, tc.want)
				}
			}
		})
	}
}

// TestDecomposeBudgetSemantics pins the storage-budget edge cases on the
// budgeted selector: budget 0 (unbounded by convention), and budget ≥ the
// total overhead, which must match the unbounded optimum exactly.
func TestDecomposeBudgetSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	in := randomInstance(rng, 8, 6)
	var total float64
	for _, o := range in.Overhead {
		total += o
	}
	opt := OptimalExact(in, 0)
	zero := LocalSearch(in, LocalSearchOptions{Budget: 0, Rand: rand.New(rand.NewSource(5))})
	if zero.BestUtility != opt.Utility {
		t.Errorf("budget 0 (unbounded): %v != optimum %v", zero.BestUtility, opt.Utility)
	}
	ge := LocalSearch(in, LocalSearchOptions{Budget: total + 1, Rand: rand.New(rand.NewSource(5))})
	if ge.BestUtility != opt.Utility {
		t.Errorf("budget ≥ total: %v != optimum %v", ge.BestUtility, opt.Utility)
	}
}
