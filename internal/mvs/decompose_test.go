package mvs

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptimalExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 2+rng.Intn(6), 2+rng.Intn(8))
		want := bruteForceOpt(in)
		res := OptimalExact(in, 0)
		if !res.Optimal {
			t.Fatalf("trial %d: budget exhausted unexpectedly", trial)
		}
		if math.Abs(res.Utility-want) > 1e-9 {
			t.Fatalf("trial %d: OptimalExact %v, brute force %v", trial, res.Utility, want)
		}
		if !in.Feasible(res.State) {
			t.Fatalf("trial %d: state infeasible", trial)
		}
		if math.Abs(in.Utility(res.State)-res.Utility) > 1e-9 {
			t.Fatalf("trial %d: state utility %v != reported %v", trial, in.Utility(res.State), res.Utility)
		}
	}
}

func TestOptimalExactAgreesWithOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 10, 10)
		a := Optimal(in, 0)
		b := OptimalExact(in, 0)
		if !a.Optimal || !b.Optimal {
			t.Fatal("both solvers should finish on small instances")
		}
		if math.Abs(a.Utility-b.Utility) > 1e-9 {
			t.Fatalf("trial %d: Optimal %v != OptimalExact %v", trial, a.Utility, b.Utility)
		}
	}
}

func TestOptimalExactDominanceDropsUselessViews(t *testing.T) {
	// One view with overhead above any possible benefit must stay out.
	in := &Instance{
		Benefit:  [][]float64{{1, 3}},
		Overhead: []float64{5, 1},
		Overlap:  [][]bool{{false, false}, {false, false}},
	}
	res := OptimalExact(in, 0)
	if res.State.Z[0] {
		t.Error("dominated view selected")
	}
	if !res.State.Z[1] || res.Utility != 2 {
		t.Errorf("utility = %v, want 2", res.Utility)
	}
}

func TestOptimalSeededUsesIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	in := randomInstance(rng, 8, 9)
	opt := Optimal(in, 0)
	// Seeding with the optimum must still return it, with fewer nodes
	// than a tiny-budget unseeded run would find.
	res := OptimalSeeded(in, 0, opt.State.Z)
	if math.Abs(res.Utility-opt.Utility) > 1e-9 {
		t.Errorf("seeded utility %v != optimum %v", res.Utility, opt.Utility)
	}
}
