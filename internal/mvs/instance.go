// Package mvs models the Materialized View Selection problem (Definition
// 7) as the paper's 0-1 ILP and implements its iterative optimizer
// IterView with the Z-Opt / Y-Opt subroutines and the flipping
// probabilities of Equation 3. The exact optimum (the experiments' OPT
// column) is computed by branch and bound over Z with per-query
// independent-set subproblems for Y.
package mvs

import (
	"fmt"

	"autoview/internal/ilp"
	"autoview/internal/obs"
)

// Y-Opt solver metric: every full BestY solve (one per Z-Opt iteration or
// RL warm start) counts here; RecomputeYForView's incremental updates are
// counted separately because the RL environment calls it every step.
var (
	obsYOptCount     = obs.Default.Counter("mvs.yopt.count", "full Y-Opt ILP solves (BestY calls)")
	obsYOptIncCount  = obs.Default.Counter("mvs.yopt.incremental", "incremental Y-Opt updates (RecomputeYForView calls)")
	obsIterViewIters = obs.Default.Counter("mvs.iterview.iterations", "IterView Z-Opt/Y-Opt iterations run")
)

// Instance holds the ILP constants of one MVS problem:
//
//	max Σ_ij y_ij·B_ij − Σ_j z_j·O_j
//	s.t. y_ij + Σ_{k≠j} x_jk·y_ik ≤ 1,  y_ij ≤ z_j
type Instance struct {
	// Benefit[i][j] is B(q_i, v_j) in dollars; non-positive entries mean
	// the view is useless (or inapplicable) for the query.
	Benefit [][]float64
	// Overhead[j] is O_vj in dollars.
	Overhead []float64
	// Overlap[j][k] is the constant x_jk: views j and k are overlapping
	// subqueries and cannot both serve one query.
	Overlap [][]bool
}

// Validate checks dimensional consistency.
func (in *Instance) Validate() error {
	nv := len(in.Overhead)
	if len(in.Overlap) != nv {
		return fmt.Errorf("mvs: overlap matrix is %d×?, want %d", len(in.Overlap), nv)
	}
	for j, row := range in.Overlap {
		if len(row) != nv {
			return fmt.Errorf("mvs: overlap row %d has %d entries, want %d", j, len(row), nv)
		}
		if row[j] {
			return fmt.Errorf("mvs: overlap diagonal %d must be false", j)
		}
		for k := range row {
			if row[k] != in.Overlap[k][j] {
				return fmt.Errorf("mvs: overlap not symmetric at %d,%d", j, k)
			}
		}
	}
	for i, row := range in.Benefit {
		if len(row) != nv {
			return fmt.Errorf("mvs: benefit row %d has %d entries, want %d", i, len(row), nv)
		}
	}
	return nil
}

// NumQueries returns |Q|.
func (in *Instance) NumQueries() int { return len(in.Benefit) }

// NumViews returns |Z|.
func (in *Instance) NumViews() int { return len(in.Overhead) }

// State is one assignment ⟨Z, Y⟩ of the ILP's variables.
type State struct {
	Z []bool
	Y [][]bool
}

// NewState allocates an all-zero assignment for the instance.
func NewState(in *Instance) *State {
	s := &State{Z: make([]bool, in.NumViews()), Y: make([][]bool, in.NumQueries())}
	for i := range s.Y {
		s.Y[i] = make([]bool, in.NumViews())
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{Z: append([]bool(nil), s.Z...), Y: make([][]bool, len(s.Y))}
	for i, row := range s.Y {
		c.Y[i] = append([]bool(nil), row...)
	}
	return c
}

// Utility computes U = Σ y_ij·B_ij − Σ z_j·O_j for the state (Definition 6).
func (in *Instance) Utility(s *State) float64 {
	var u float64
	for i, row := range s.Y {
		for j, used := range row {
			if used {
				u += in.Benefit[i][j]
			}
		}
	}
	for j, z := range s.Z {
		if z {
			u -= in.Overhead[j]
		}
	}
	return u
}

// Feasible reports whether the state satisfies both constraint families.
func (in *Instance) Feasible(s *State) bool {
	for i, row := range s.Y {
		for j, used := range row {
			if !used {
				continue
			}
			if !s.Z[j] {
				return false
			}
			for k, other := range row {
				if k != j && other && in.Overlap[j][k] {
					return false
				}
			}
			_ = i
		}
	}
	return true
}

// BestY solves Y optimally for a fixed Z: per query, a maximum-weight
// independent set over the views that are materialized, beneficial, and
// pairwise non-overlapping (the paper's Y-Opt local ILP). It returns the
// per-view current benefit array Bcur as well.
func (in *Instance) BestY(z []bool) ([][]bool, []float64) {
	obsYOptCount.Inc()
	nq, nv := in.NumQueries(), in.NumViews()
	y := make([][]bool, nq)
	bcur := make([]float64, nv)
	for i := 0; i < nq; i++ {
		y[i] = in.bestYRow(i, z)
		for j, used := range y[i] {
			if used {
				bcur[j] += in.Benefit[i][j]
			}
		}
	}
	return y, bcur
}

// bestYRow solves the per-query subproblem exactly.
func (in *Instance) bestYRow(i int, z []bool) []bool {
	nv := in.NumViews()
	// Gather applicable views.
	var idx []int
	for j := 0; j < nv; j++ {
		if z[j] && in.Benefit[i][j] > 0 {
			idx = append(idx, j)
		}
	}
	row := make([]bool, nv)
	if len(idx) == 0 {
		return row
	}
	w := make([]float64, len(idx))
	conflict := make([][]bool, len(idx))
	for a, j := range idx {
		w[a] = in.Benefit[i][j]
		conflict[a] = make([]bool, len(idx))
		for b, k := range idx {
			conflict[a][b] = in.Overlap[j][k]
		}
	}
	sel, _ := ilp.MaxWeightIndependentSet(w, conflict)
	for a, s := range sel {
		if s {
			row[idx[a]] = true
		}
	}
	return row
}

// RecomputeYForView re-solves the Y rows of every query that view j can
// serve, updating st.Y and bcur in place. After flipping z_j only those
// rows can change (other queries' available view sets are untouched), so
// this is the incremental form of BestY used by the RL environment.
func (in *Instance) RecomputeYForView(st *State, bcur []float64, j int) {
	obsYOptIncCount.Inc()
	for i, row := range in.Benefit {
		if row[j] <= 0 {
			continue
		}
		old := st.Y[i]
		for k, used := range old {
			if used {
				bcur[k] -= in.Benefit[i][k]
			}
		}
		st.Y[i] = in.bestYRow(i, st.Z)
		for k, used := range st.Y[i] {
			if used {
				bcur[k] += in.Benefit[i][k]
			}
		}
	}
}

// MaxBenefits exposes Bmax[j] = Σ_i max(B_ij, 0), the per-view benefit
// ceiling used by Z-Opt's probabilities and the RL state features.
func (in *Instance) MaxBenefits() []float64 { return in.maxBenefits() }

// UtilityOfZ evaluates the best achievable utility for a fixed Z.
func (in *Instance) UtilityOfZ(z []bool) float64 {
	y, _ := in.BestY(z)
	var u float64
	for i, row := range y {
		for j, used := range row {
			if used {
				u += in.Benefit[i][j]
			}
		}
	}
	for j, set := range z {
		if set {
			u -= in.Overhead[j]
		}
	}
	return u
}

// TotalQueryBenefitUpperBound returns Σ_j Bmax[j], the additive benefit
// ceiling used by Z-Opt's probabilities.
func (in *Instance) maxBenefits() []float64 {
	nv := in.NumViews()
	bmax := make([]float64, nv)
	for _, row := range in.Benefit {
		for j, b := range row {
			if b > 0 {
				bmax[j] += b
			}
		}
	}
	return bmax
}
