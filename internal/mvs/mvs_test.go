package mvs

import (
	"math"
	"math/rand"
	"testing"
)

// randomInstance builds a small random MVS instance.
func randomInstance(rng *rand.Rand, nq, nv int) *Instance {
	in := &Instance{
		Benefit:  make([][]float64, nq),
		Overhead: make([]float64, nv),
		Overlap:  make([][]bool, nv),
	}
	for j := 0; j < nv; j++ {
		in.Overhead[j] = rng.Float64()*2 + 0.1
		in.Overlap[j] = make([]bool, nv)
	}
	for j := 0; j < nv; j++ {
		for k := j + 1; k < nv; k++ {
			if rng.Float64() < 0.25 {
				in.Overlap[j][k] = true
				in.Overlap[k][j] = true
			}
		}
	}
	for i := 0; i < nq; i++ {
		in.Benefit[i] = make([]float64, nv)
		for j := 0; j < nv; j++ {
			if rng.Float64() < 0.5 {
				in.Benefit[i][j] = rng.Float64() * 3
			}
		}
	}
	return in
}

// bruteForceOpt enumerates all (Z, best-Y) assignments.
func bruteForceOpt(in *Instance) float64 {
	nv := in.NumViews()
	best := 0.0
	for mask := 0; mask < 1<<nv; mask++ {
		z := make([]bool, nv)
		for j := 0; j < nv; j++ {
			z[j] = mask&(1<<j) != 0
		}
		if u := in.UtilityOfZ(z); u > best {
			best = u
		}
	}
	return best
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 3, 4)
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := randomInstance(rng, 3, 4)
	bad.Overlap[1][2] = true
	bad.Overlap[2][1] = false
	if err := bad.Validate(); err == nil {
		t.Error("asymmetric overlap accepted")
	}
	bad2 := randomInstance(rng, 3, 4)
	bad2.Overlap[0][0] = true
	if err := bad2.Validate(); err == nil {
		t.Error("true diagonal accepted")
	}
	bad3 := randomInstance(rng, 3, 4)
	bad3.Benefit[0] = bad3.Benefit[0][:2]
	if err := bad3.Validate(); err == nil {
		t.Error("ragged benefit accepted")
	}
}

func TestUtilityAndFeasible(t *testing.T) {
	in := &Instance{
		Benefit:  [][]float64{{5, 3}, {2, 4}},
		Overhead: []float64{1, 2},
		Overlap:  [][]bool{{false, true}, {true, false}},
	}
	s := NewState(in)
	s.Z[0] = true
	s.Y[0][0] = true
	s.Y[1][0] = true
	if !in.Feasible(s) {
		t.Fatal("state should be feasible")
	}
	if got := in.Utility(s); got != 5+2-1 {
		t.Errorf("utility = %v, want 6", got)
	}
	// Using an unmaterialized view is infeasible.
	s.Y[0][1] = true
	if in.Feasible(s) {
		t.Error("y without z accepted")
	}
	s.Z[1] = true
	// Now both views are used for q0 but they overlap.
	if in.Feasible(s) {
		t.Error("overlapping pair accepted")
	}
}

func TestBestYIsOptimalPerQuery(t *testing.T) {
	in := &Instance{
		Benefit:  [][]float64{{5, 4, 2}},
		Overhead: []float64{1, 1, 1},
		Overlap: [][]bool{
			{false, true, false},
			{true, false, false},
			{false, false, false},
		},
	}
	z := []bool{true, true, true}
	y, bcur := in.BestY(z)
	// Views 0 and 1 conflict: best is {0, 2} worth 7.
	if !y[0][0] || y[0][1] || !y[0][2] {
		t.Errorf("BestY row = %v", y[0])
	}
	if bcur[0] != 5 || bcur[1] != 0 || bcur[2] != 2 {
		t.Errorf("bcur = %v", bcur)
	}
	if u := in.UtilityOfZ(z); u != 7-3 {
		t.Errorf("UtilityOfZ = %v, want 4", u)
	}
}

func TestOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 2+rng.Intn(5), 2+rng.Intn(7))
		want := bruteForceOpt(in)
		res := Optimal(in, 0)
		if !res.Optimal {
			t.Fatalf("trial %d: budget exhausted unexpectedly", trial)
		}
		if math.Abs(res.Utility-want) > 1e-9 {
			t.Fatalf("trial %d: Optimal %v, brute force %v", trial, res.Utility, want)
		}
		if !in.Feasible(res.State) {
			t.Fatalf("trial %d: optimal state infeasible", trial)
		}
		if math.Abs(in.Utility(res.State)-res.Utility) > 1e-9 {
			t.Fatalf("trial %d: reported utility mismatches state", trial)
		}
	}
}

func TestOptimalBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomInstance(rng, 10, 14)
	res := Optimal(in, 3)
	if res.Optimal {
		t.Error("3-node budget cannot prove optimality for 14 views")
	}
	// Incumbent must still be feasible.
	if !in.Feasible(res.State) {
		t.Error("incumbent infeasible")
	}
}

func TestIterViewProducesFeasibleStatesAndTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInstance(rng, 8, 10)
	res := IterView(in, IterOptions{Iterations: 30, Rand: rand.New(rand.NewSource(8))})
	if len(res.Trace) != 31 { // initial state + 30 iterations
		t.Fatalf("trace length %d, want 31", len(res.Trace))
	}
	if !in.Feasible(res.Final) {
		t.Error("final state infeasible")
	}
	if !in.Feasible(res.Best) {
		t.Error("best state infeasible")
	}
	if math.Abs(in.Utility(res.Best)-res.BestUtility) > 1e-9 {
		t.Error("BestUtility mismatches Best state")
	}
	// Best must dominate every traced utility.
	for i, u := range res.Trace {
		if u > res.BestUtility+1e-9 {
			t.Errorf("trace[%d]=%v exceeds best %v", i, u, res.BestUtility)
		}
	}
}

func TestIterViewApproachesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randomInstance(rng, 10, 8)
	opt := Optimal(in, 0)
	res := IterView(in, IterOptions{Iterations: 200, Rand: rand.New(rand.NewSource(10))})
	if res.BestUtility > opt.Utility+1e-9 {
		t.Fatalf("IterView best %v exceeds optimum %v", res.BestUtility, opt.Utility)
	}
	if res.BestUtility < 0.5*opt.Utility {
		t.Errorf("IterView best %v is far below optimum %v", res.BestUtility, opt.Utility)
	}
}

func TestIterViewFreezeForbidsDeselection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomInstance(rng, 6, 8)
	res := IterView(in, IterOptions{Iterations: 50, FreezeAfter: 10, Rand: rand.New(rand.NewSource(12))})
	// After freezing, the number of selected views never decreases; we
	// can't observe intermediate states directly, but the run must stay
	// feasible and the trace full-length.
	if len(res.Trace) != 51 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	if !in.Feasible(res.Final) {
		t.Error("final state infeasible under freeze")
	}
}

func TestIterViewOscillatesWithoutFreeze(t *testing.T) {
	// The paper's motivation for RLView: IterView keeps oscillating.
	// Verify the trace is not monotonically convergent on a workload
	// with strongly conflicting choices.
	rng := rand.New(rand.NewSource(13))
	in := randomInstance(rng, 20, 15)
	res := IterView(in, IterOptions{Iterations: 150, Rand: rand.New(rand.NewSource(14))})
	drops := 0
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] < res.Trace[i-1]-1e-9 {
			drops++
		}
	}
	if drops == 0 {
		t.Error("expected utility oscillation (some decreasing steps), found none")
	}
}

func TestFlipProbabilityGuards(t *testing.T) {
	// Zero denominators must not produce NaN or values outside [0,1].
	cases := []struct {
		oj, bmaxj, bcurj           float64
		z                          bool
		ocur, omax, bcurSum, bmaxS float64
	}{
		{1, 0, 0, true, 0, 0, 0, 0},
		{1, 5, 1, false, 0, 0, 0, 0},
		{0, 5, 0, false, 3, 10, 2, 9},
		{2, 0, 0, true, 2, 10, 0, 0},
	}
	for i, c := range cases {
		p := flipProbability(c.oj, c.bmaxj, c.bcurj, c.z, c.ocur, c.omax, c.bcurSum, c.bmaxS)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Errorf("case %d: p = %v", i, p)
		}
	}
}

func TestStateClone(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(15)), 2, 3)
	s := NewState(in)
	s.Z[0] = true
	s.Y[1][2] = true
	c := s.Clone()
	c.Z[0] = false
	c.Y[1][2] = false
	if !s.Z[0] || !s.Y[1][2] {
		t.Error("Clone shares storage")
	}
}
