package mvs

import (
	"math/rand"
	"sort"

	"autoview/internal/nn"
	"autoview/internal/obs"
)

// Local-search metrics: restarts started, hill-climbing moves accepted,
// and neighbor utilities evaluated (the dominant cost — each evaluation
// re-solves the Y rows the move can affect).
var (
	obsLSRestarts = obs.Default.Counter("mvs.localsearch.restarts", "local-search restarts run")
	obsLSMoves    = obs.Default.Counter("mvs.localsearch.moves", "accepted hill-climbing moves")
	obsLSEvals    = obs.Default.Counter("mvs.localsearch.evals", "neighbor utility evaluations")
)

// LocalSearchOptions configures LocalSearch.
type LocalSearchOptions struct {
	// Budget caps the total materialization overhead Σ_j z_j·O_j of the
	// selection (the storage budget of the local-search literature).
	// Zero or negative means unbounded: the net-utility objective
	// already charges overheads, so the unbounded problem is the
	// paper's Definition 7.
	Budget float64
	// Restarts is the restart schedule length (default 4). Restart 0 is
	// greedy-seeded (net-benefit density order); later restarts start
	// from seeded random subsets.
	Restarts int
	// MaxMoves caps accepted moves per restart (default 4·|Z|); the
	// climb also stops at the first local optimum.
	MaxMoves int
	// Rand seeds the restart initializations. Each restart's sub-seed
	// is drawn up front, so neighbor evaluation order and parallelism
	// never perturb the schedule. Defaults to a fixed seed-1 source.
	Rand *rand.Rand
	// Parallelism fans neighbor evaluation across workers
	// (nn.ParallelFor). The chosen move is the argmax reduced in move
	// order, so the selection is byte-identical for every setting.
	// 0 and 1 both run serially.
	Parallelism int
}

func (o LocalSearchOptions) withDefaults(nv int) LocalSearchOptions {
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 4 * nv
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	return o
}

// LocalSearchResult is the outcome of a LocalSearch run.
type LocalSearchResult struct {
	// Best is the best assignment found across restarts; its Y rows are
	// Y-Opt-optimal for Best.Z.
	Best *State
	// BestUtility is Instance.Utility(Best), recomputed from the
	// instance's benefit accounting (never the incremental climb value).
	BestUtility float64
	// Trace records the incumbent utility after every accepted move
	// across restarts (restart boundaries reset the climb, not the
	// incumbent), for frontier plots.
	Trace []float64
	// BestRestart is the 0-based restart that produced Best.
	BestRestart int
	// Moves counts accepted moves; Evaluations counts neighbor
	// utility-delta evaluations.
	Moves, Evaluations int
}

// move is one neighborhood step: add j (drop<0), drop j (add<0), or the
// swap drop→add.
type move struct{ drop, add int }

// LocalSearch is a steepest-ascent hill climber over view subsets: the
// neighborhood of Z is every single add, single drop, and add/drop swap
// that respects the storage budget, and the climb takes the best
// improving neighbor until a local optimum. A short restart schedule
// (greedy-seeded first, seeded-random after) escapes poor basins —
// the "simple local search" that *Workload acceleration by optimizing
// materialized view selection using local search* argues beats learned
// selection at scale.
//
// Determinism: for a fixed Rand seed the result is byte-identical across
// every Parallelism setting — randomness only picks restart starting
// points, and the move argmax ties break toward the lowest move index.
func LocalSearch(in *Instance, opts LocalSearchOptions) *LocalSearchResult {
	defer obs.StartSpan("mvs.localsearch")()
	nv := in.NumViews()
	opts = opts.withDefaults(nv)
	res := &LocalSearchResult{Best: NewState(in), BestUtility: 0, BestRestart: 0}
	if nv == 0 {
		return res
	}
	obsLSRestarts.Add(int64(opts.Restarts))

	// Sub-seeds for the whole schedule, drawn before any climbing so
	// evaluation order cannot perturb them.
	seeds := make([]int64, opts.Restarts)
	for r := range seeds {
		seeds[r] = opts.Rand.Int63()
	}

	bmax := in.maxBenefits()
	// queriesOf[j] lists the rows a flip of z_j can change.
	queriesOf := make([][]int, nv)
	for i, row := range in.Benefit {
		for j, b := range row {
			if b > 0 {
				queriesOf[j] = append(queriesOf[j], i)
			}
		}
	}

	c := &climber{in: in, opts: opts, queriesOf: queriesOf, bmax: bmax}
	for r := 0; r < opts.Restarts; r++ {
		var z []bool
		if r == 0 {
			z = c.greedySeed()
		} else {
			z = c.randomSeed(rand.New(rand.NewSource(seeds[r])))
		}
		st, u := c.climb(z, res)
		if res.Best == nil || u > res.BestUtility {
			res.Best = st
			res.BestUtility = u
			res.BestRestart = r
		}
	}
	res.Evaluations = c.evals
	obsLSMoves.Add(int64(res.Moves))
	obsLSEvals.Add(int64(c.evals))
	return res
}

// climber carries the per-run constants and scratch of the hill climb.
type climber struct {
	in        *Instance
	opts      LocalSearchOptions
	queriesOf [][]int
	bmax      []float64
	evals     int
}

// overhead returns Σ_j z_j·O_j.
func (c *climber) overhead(z []bool) float64 {
	var o float64
	for j, set := range z {
		if set {
			o += c.in.Overhead[j]
		}
	}
	return o
}

// fits reports whether a selection overhead respects the budget.
func (c *climber) fits(o float64) bool {
	return c.opts.Budget <= 0 || o <= c.opts.Budget+1e-9
}

// greedySeed selects views in decreasing net-benefit-ceiling order while
// they fit the budget and their ceiling clears their overhead.
func (c *climber) greedySeed() []bool {
	nv := c.in.NumViews()
	order := make([]int, nv)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return c.bmax[order[a]]-c.in.Overhead[order[a]] > c.bmax[order[b]]-c.in.Overhead[order[b]]
	})
	z := make([]bool, nv)
	var ocur float64
	for _, j := range order {
		if c.bmax[j] <= c.in.Overhead[j] {
			continue
		}
		if !c.fits(ocur + c.in.Overhead[j]) {
			continue
		}
		z[j] = true
		ocur += c.in.Overhead[j]
	}
	return z
}

// randomSeed includes each view with probability ½ in a seeded
// permutation order, skipping views that would break the budget.
func (c *climber) randomSeed(rng *rand.Rand) []bool {
	nv := c.in.NumViews()
	z := make([]bool, nv)
	var ocur float64
	for _, j := range rng.Perm(nv) {
		if rng.Intn(2) == 0 {
			continue
		}
		if !c.fits(ocur + c.in.Overhead[j]) {
			continue
		}
		z[j] = true
		ocur += c.in.Overhead[j]
	}
	return z
}

// climb runs steepest-ascent from z until a local optimum or the move
// cap, returning the final state with Y-Opt rows and its exact utility.
func (c *climber) climb(z []bool, res *LocalSearchResult) (*State, float64) {
	in := c.in
	nv := in.NumViews()
	y, _ := in.BestY(z)
	st := &State{Z: z, Y: y}
	// rowBen[i] caches the current Y-Opt benefit of row i so move deltas
	// only re-solve affected rows.
	rowBen := make([]float64, in.NumQueries())
	for i, row := range st.Y {
		for j, used := range row {
			if used {
				rowBen[i] += in.Benefit[i][j]
			}
		}
	}
	ocur := c.overhead(z)

	// Per-worker scratch copies of Z for hypothetical evaluations
	// (sized by the parallelism cap: the move count varies per step).
	scratch := make([][]bool, c.opts.Parallelism)
	for w := range scratch {
		scratch[w] = make([]bool, nv)
	}

	for step := 0; step < c.opts.MaxMoves; step++ {
		moves := c.enumerate(st.Z, ocur)
		if len(moves) == 0 {
			break
		}
		deltas := make([]float64, len(moves))
		c.evals += len(moves)
		nn.ParallelForWorker(len(moves), c.opts.Parallelism, func(w, m int) {
			deltas[m] = c.delta(st, rowBen, scratch[w], moves[m])
		})
		best, bestDelta := -1, 1e-9
		for m, d := range deltas {
			if d > bestDelta {
				best, bestDelta = m, d
			}
		}
		if best < 0 {
			break
		}
		ocur = c.apply(st, rowBen, ocur, moves[best])
		res.Moves++
		res.Trace = append(res.Trace, in.Utility(st))
	}
	// Re-solve Y exactly for the final Z and report the recomputed
	// utility: callers compare it bit-identically against
	// Instance.Utility.
	st.Y, _ = in.BestY(st.Z)
	return st, in.Utility(st)
}

// enumerate lists the budget-respecting neighborhood of z in a fixed
// order: adds (ascending j), drops (ascending j), swaps (drop-major).
func (c *climber) enumerate(z []bool, ocur float64) []move {
	nv := len(z)
	var sel, unsel []int
	for j := 0; j < nv; j++ {
		if z[j] {
			sel = append(sel, j)
		} else if len(c.queriesOf[j]) > 0 {
			// A view no query benefits from can never improve utility.
			unsel = append(unsel, j)
		}
	}
	moves := make([]move, 0, len(unsel)+len(sel)+len(sel)*len(unsel))
	for _, k := range unsel {
		if c.fits(ocur + c.in.Overhead[k]) {
			moves = append(moves, move{drop: -1, add: k})
		}
	}
	for _, j := range sel {
		moves = append(moves, move{drop: j, add: -1})
	}
	for _, j := range sel {
		for _, k := range unsel {
			if c.fits(ocur - c.in.Overhead[j] + c.in.Overhead[k]) {
				moves = append(moves, move{drop: j, add: k})
			}
		}
	}
	return moves
}

// delta evaluates a move's utility change without mutating the state:
// only rows served by the flipped views can change, and each is
// re-solved by the exact Y-Opt row solver on the hypothetical Z.
func (c *climber) delta(st *State, rowBen []float64, zScratch []bool, mv move) float64 {
	in := c.in
	copy(zScratch, st.Z)
	var d float64
	if mv.drop >= 0 {
		zScratch[mv.drop] = false
		d += in.Overhead[mv.drop]
	}
	if mv.add >= 0 {
		zScratch[mv.add] = true
		d -= in.Overhead[mv.add]
	}
	for _, i := range c.affected(mv) {
		row := in.bestYRow(i, zScratch)
		var nb float64
		for j, used := range row {
			if used {
				nb += in.Benefit[i][j]
			}
		}
		d += nb - rowBen[i]
	}
	return d
}

// affected returns the rows a move can change, ascending and
// duplicate-free.
func (c *climber) affected(mv move) []int {
	if mv.drop < 0 {
		return c.queriesOf[mv.add]
	}
	if mv.add < 0 {
		return c.queriesOf[mv.drop]
	}
	a, b := c.queriesOf[mv.drop], c.queriesOf[mv.add]
	out := make([]int, 0, len(a)+len(b))
	ia, ib := 0, 0
	for ia < len(a) && ib < len(b) {
		switch {
		case a[ia] < b[ib]:
			out = append(out, a[ia])
			ia++
		case a[ia] > b[ib]:
			out = append(out, b[ib])
			ib++
		default:
			out = append(out, a[ia])
			ia++
			ib++
		}
	}
	out = append(out, a[ia:]...)
	return append(out, b[ib:]...)
}

// apply commits a move, re-solving the affected Y rows in place, and
// returns the updated overhead.
func (c *climber) apply(st *State, rowBen []float64, ocur float64, mv move) float64 {
	in := c.in
	if mv.drop >= 0 {
		st.Z[mv.drop] = false
		ocur -= in.Overhead[mv.drop]
	}
	if mv.add >= 0 {
		st.Z[mv.add] = true
		ocur += in.Overhead[mv.add]
	}
	for _, i := range c.affected(mv) {
		st.Y[i] = in.bestYRow(i, st.Z)
		rowBen[i] = 0
		for j, used := range st.Y[i] {
			if used {
				rowBen[i] += in.Benefit[i][j]
			}
		}
	}
	return ocur
}

// SelectedViews returns the ascending indices of the selected views of
// an assignment — the candidate axis is fingerprint-ordered by the
// pre-process stage, so this is the selection in fingerprint order.
func SelectedViews(z []bool) []int {
	var out []int
	for j, set := range z {
		if set {
			out = append(out, j)
		}
	}
	return out
}

// SelectionOverhead returns Σ_j z_j·O_j, the storage budget consumption
// of a selection.
func (in *Instance) SelectionOverhead(z []bool) float64 {
	var o float64
	for j, set := range z {
		if set {
			o += in.Overhead[j]
		}
	}
	return o
}
