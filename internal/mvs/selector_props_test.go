// Package mvs_test hosts the cross-selector property layer: every
// selector the advisor can run — Top-kBen, IterView, DQN, local search,
// and the exact ILP — is driven through one shared set of invariants
// (feasibility, duplicate-free fingerprint-ordered selections, utility
// bit-identical to core benefit accounting, determinism across seeds and
// Parallelism) plus asserted optimality-gap bounds against OptimalExact.
// It lives in an external test package so it can import internal/rl and
// internal/selbase without a cycle.
package mvs_test

import (
	"math/rand"
	"testing"

	"autoview/internal/mvs"
	"autoview/internal/rl"
	"autoview/internal/selbase"
)

// propSelector adapts one selector to the property layer. run must return
// the selected state and the utility the selector itself reported (not a
// recomputation). parallel selectors accept a Parallelism knob whose
// setting must never change the answer.
type propSelector struct {
	name string
	// maxGap is the asserted optimality-gap bound ((opt−u)/opt) on the
	// property instances. Bounds are tightened to the empirically
	// observed worst case plus slack, so quality regressions fail loudly.
	maxGap   float64
	parallel bool
	run      func(in *mvs.Instance, seed int64, parallelism int) (*mvs.State, float64)
}

func propSelectors() []propSelector {
	return []propSelector{
		{
			name:   "topkben",
			maxGap: 0.15, // observed worst 0.050
			run: func(in *mvs.Instance, seed int64, _ int) (*mvs.State, float64) {
				k, u := selbase.BestK(in, nil, selbase.TopkBen)
				ranking := selbase.Ranking(in, nil, selbase.TopkBen)
				st := mvs.NewState(in)
				for _, j := range ranking[:k] {
					st.Z[j] = true
				}
				st.Y, _ = in.BestY(st.Z)
				return st, u
			},
		},
		{
			name:   "iterview",
			maxGap: 0.15, // observed worst 0.050
			run: func(in *mvs.Instance, seed int64, _ int) (*mvs.State, float64) {
				res := mvs.IterView(in, mvs.IterOptions{
					Iterations: 60,
					Rand:       rand.New(rand.NewSource(seed)),
				})
				return res.Best, res.BestUtility
			},
		},
		{
			name:     "dqn",
			maxGap:   0.20, // observed worst 0.091 at these tiny training budgets
			parallel: true,
			run: func(in *mvs.Instance, seed int64, parallelism int) (*mvs.State, float64) {
				res := rl.RLView(in, rl.Options{
					InitIterations:  4,
					Epochs:          5,
					MemoryThreshold: 8,
					LearnEvery:      2,
					Agent:           rl.AgentConfig{Parallelism: parallelism, Seed: 77},
					Rand:            rand.New(rand.NewSource(seed)),
				})
				return res.Best, res.BestUtility
			},
		},
		{
			name:     "localsearch",
			maxGap:   1e-6, // hits the exact optimum on every property instance
			parallel: true,
			run: func(in *mvs.Instance, seed int64, parallelism int) (*mvs.State, float64) {
				res := mvs.LocalSearch(in, mvs.LocalSearchOptions{
					Rand:        rand.New(rand.NewSource(seed)),
					Parallelism: parallelism,
				})
				return res.Best, res.BestUtility
			},
		},
		{
			name:   "ilp",
			maxGap: 0,
			run: func(in *mvs.Instance, seed int64, _ int) (*mvs.State, float64) {
				res := mvs.SolveILP(in, 0)
				return res.State, res.Utility
			},
		},
	}
}

// propInstances builds the shared instance pool: seeded random instances
// plus structured corner shapes (overlap clique, no overlap, dominated
// views). All are small enough for OptimalExact to finish instantly, so
// gap assertions are against the true optimum.
func propInstances() map[string]*mvs.Instance {
	rng := rand.New(rand.NewSource(12345))
	pool := map[string]*mvs.Instance{}
	for trial := 0; trial < 6; trial++ {
		nq, nv := 3+rng.Intn(8), 3+rng.Intn(7)
		in := &mvs.Instance{
			Benefit:  make([][]float64, nq),
			Overhead: make([]float64, nv),
			Overlap:  make([][]bool, nv),
		}
		for j := 0; j < nv; j++ {
			in.Overhead[j] = rng.Float64()*2 + 0.1
			in.Overlap[j] = make([]bool, nv)
		}
		for j := 0; j < nv; j++ {
			for k := j + 1; k < nv; k++ {
				if rng.Float64() < 0.25 {
					in.Overlap[j][k] = true
					in.Overlap[k][j] = true
				}
			}
		}
		for i := 0; i < nq; i++ {
			in.Benefit[i] = make([]float64, nv)
			for j := 0; j < nv; j++ {
				if rng.Float64() < 0.5 {
					in.Benefit[i][j] = rng.Float64() * 3
				}
			}
		}
		pool["random-"+string(rune('a'+trial))] = in
	}

	clique := &mvs.Instance{
		Benefit:  [][]float64{{5, 4, 3}, {2, 6, 1}, {3, 3, 3}},
		Overhead: []float64{1, 1, 1},
		Overlap:  make([][]bool, 3),
	}
	for j := range clique.Overlap {
		clique.Overlap[j] = []bool{j != 0, j != 1, j != 2}
	}
	pool["overlap-clique"] = clique

	pool["no-overlap"] = &mvs.Instance{
		Benefit:  [][]float64{{2, 0, 3}, {0, 4, 1}},
		Overhead: []float64{0.5, 0.5, 0.5},
		Overlap:  [][]bool{{false, false, false}, {false, false, false}, {false, false, false}},
	}

	pool["all-dominated"] = &mvs.Instance{
		Benefit:  [][]float64{{1, 2}},
		Overhead: []float64{5, 5},
		Overlap:  [][]bool{{false, false}, {false, false}},
	}
	return pool
}

// TestSelectorProperties is the shared differential-correctness gate:
// every selector on every property instance must produce a feasible,
// duplicate-free, fingerprint-ordered selection whose reported utility is
// bit-identical to core benefit accounting, and must land within its
// asserted gap of the exact optimum.
func TestSelectorProperties(t *testing.T) {
	pool := propInstances()
	for _, sel := range propSelectors() {
		sel := sel
		t.Run(sel.name, func(t *testing.T) {
			for name, in := range pool {
				opt := mvs.OptimalExact(in, 0)
				st, reported := sel.run(in, 404, 1)

				if !in.Feasible(st) {
					t.Errorf("%s: infeasible state", name)
				}
				// The candidate axis is fingerprint-sorted upstream, so
				// ascending duplicate-free indices = fingerprint order.
				selected := mvs.SelectedViews(st.Z)
				for i := 1; i < len(selected); i++ {
					if selected[i] <= selected[i-1] {
						t.Fatalf("%s: selection not strictly ascending: %v", name, selected)
					}
				}
				if u := in.Utility(st); u != reported {
					t.Errorf("%s: reported utility %v != core accounting %v", name, reported, u)
				}
				if reported < -1e-9 {
					t.Errorf("%s: negative utility %v (empty selection was available)", name, reported)
				}
				if opt.Utility > 1e-12 {
					gap := (opt.Utility - reported) / opt.Utility
					if gap > sel.maxGap+1e-9 {
						t.Errorf("%s: gap %.4f exceeds bound %.4f (utility %v vs optimum %v)",
							name, gap, sel.maxGap, reported, opt.Utility)
					}
				} else if reported > opt.Utility+1e-9 {
					t.Errorf("%s: utility %v above optimum %v", name, reported, opt.Utility)
				}
			}
		})
	}
}

// TestSelectorDeterminism re-runs every selector with the same seed and
// requires byte-identical selections and bit-identical utilities; the
// parallel selectors are additionally pinned across Parallelism 1/4/8
// (this test runs under -race in CI, making it the data-race gate too).
func TestSelectorDeterminism(t *testing.T) {
	pool := propInstances()
	// Three instances keep the -race DQN runs cheap.
	names := []string{"random-a", "random-d", "overlap-clique"}
	for _, sel := range propSelectors() {
		sel := sel
		t.Run(sel.name, func(t *testing.T) {
			for _, name := range names {
				in := pool[name]
				refState, refU := sel.run(in, 99, 1)
				runs := [][2]int64{{99, 1}} // {seed, parallelism}
				if sel.parallel {
					runs = append(runs, [2]int64{99, 4}, [2]int64{99, 8})
				} else {
					runs = append(runs, [2]int64{99, 1})
				}
				for _, r := range runs[1:] {
					st, u := sel.run(in, r[0], int(r[1]))
					if u != refU {
						t.Errorf("%s P=%d: utility %v != reference %v", name, r[1], u, refU)
					}
					for j := range st.Z {
						if st.Z[j] != refState.Z[j] {
							t.Fatalf("%s P=%d: selection differs at view %d", name, r[1], j)
						}
					}
					for i := range st.Y {
						for j := range st.Y[i] {
							if st.Y[i][j] != refState.Y[i][j] {
								t.Fatalf("%s P=%d: usage differs at (%d,%d)", name, r[1], i, j)
							}
						}
					}
				}
			}
		})
	}
}
