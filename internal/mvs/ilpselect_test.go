package mvs

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 2+rng.Intn(8), 2+rng.Intn(9))
		want := bruteForceOpt(in)
		res := SolveILP(in, 0)
		if !res.Optimal {
			t.Fatalf("trial %d: solver did not finish on a brute-forceable instance", trial)
		}
		if math.Abs(res.Utility-want) > 1e-9 {
			t.Errorf("trial %d: ILP %v != brute force %v", trial, res.Utility, want)
		}
		if !in.Feasible(res.State) {
			t.Errorf("trial %d: infeasible ILP state", trial)
		}
		if u := in.Utility(res.State); u != res.Utility {
			t.Errorf("trial %d: reported %v != recomputed %v", trial, res.Utility, u)
		}
	}
}

func TestSolveILPAgreesWithOptimalExact(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 4+rng.Intn(10), 4+rng.Intn(8))
		exact := OptimalExact(in, 0)
		res := SolveILP(in, 0)
		if !res.Optimal {
			// The monolithic encoding may exhaust its node budget where
			// the decomposed solver does not; that is its documented
			// behavior, not a failure — but the incumbent must still be
			// a valid lower bound.
			if res.Utility > exact.Utility+1e-9 {
				t.Errorf("trial %d: incumbent %v above optimum %v", trial, res.Utility, exact.Utility)
			}
			continue
		}
		if math.Abs(res.Utility-exact.Utility) > 1e-9 {
			t.Errorf("trial %d: ILP %v != OptimalExact %v", trial, res.Utility, exact.Utility)
		}
	}
}

func TestSolveILPNodeBudgetReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	in := randomInstance(rng, 18, 12)
	res := SolveILP(in, 1)
	if res.Optimal {
		t.Fatalf("one-node budget reported optimal")
	}
	if !in.Feasible(res.State) {
		t.Fatalf("incumbent infeasible")
	}
	// The warm start guarantees the incumbent is at least the local
	// search's solution, never the trivial empty one on this instance.
	ls := LocalSearch(in, LocalSearchOptions{Restarts: 2})
	if res.Utility < ls.BestUtility-1e-9 {
		t.Errorf("incumbent %v below warm start %v", res.Utility, ls.BestUtility)
	}
}

func TestProjectSubInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	in := randomInstance(rng, 10, 8)

	// Full projection preserves the optimum.
	all := make([]int, in.NumViews())
	for j := range all {
		all[j] = j
	}
	sub, kept := Project(in, all)
	if sub.NumViews() != in.NumViews() {
		t.Fatalf("full projection dropped views: %d != %d", sub.NumViews(), in.NumViews())
	}
	full := OptimalExact(in, 0)
	proj := OptimalExact(sub, 0)
	// Queries with no applicable view are dropped by Project, but they
	// contribute nothing, so the optima agree.
	if math.Abs(full.Utility-proj.Utility) > 1e-9 {
		t.Errorf("full projection optimum %v != original %v", proj.Utility, full.Utility)
	}

	// A strict subset: every kept query must benefit from some member,
	// and the sub-optimum can never exceed the full optimum.
	members := []int{1, 3, 4, 6}
	sub, kept = Project(in, members)
	if sub.NumViews() != len(members) {
		t.Fatalf("projection has %d views, want %d", sub.NumViews(), len(members))
	}
	for si, qi := range kept {
		any := false
		for mj, j := range members {
			if in.Benefit[qi][j] != sub.Benefit[si][mj] {
				t.Fatalf("benefit mismatch at kept query %d view %d", qi, j)
			}
			if sub.Benefit[si][mj] > 0 {
				any = true
			}
		}
		if !any {
			t.Errorf("kept query %d benefits from no member", qi)
		}
	}
	if sup := OptimalExact(sub, 0); sup.Utility > full.Utility+1e-9 {
		t.Errorf("sub-instance optimum %v exceeds full optimum %v", sup.Utility, full.Utility)
	}
}
