package mvs

import (
	"math/rand"

	"autoview/internal/obs"
)

// IterOptions configures IterView.
type IterOptions struct {
	// Iterations is the paper's n.
	Iterations int
	// FreezeAfter, when positive, forbids 1→0 flips once the iteration
	// index reaches it — the convergence hack the paper attributes to
	// BigSub ("forbids turning selected subqueries to unselected when
	// the number of iterations exceeds a certain threshold").
	FreezeAfter int
	// Rand drives initialization and flipping thresholds.
	Rand *rand.Rand
}

// IterResult is the outcome of an IterView run.
type IterResult struct {
	// Final is the assignment after the last iteration.
	Final *State
	// Best is the best-utility assignment seen across iterations.
	Best *State
	// BestUtility is the utility of Best.
	BestUtility float64
	// Trace records the utility after each iteration (for Figure 10).
	Trace []float64
	// BestIteration is the 1-based iteration where Best was reached.
	BestIteration int
}

// IterView implements the paper's function IterView: random ⟨Z, Y⟩
// initialization followed by alternating Z-Opt / Y-Opt iterations with the
// flipping probabilities of Equation 3.
func IterView(in *Instance, opts IterOptions) *IterResult {
	defer obs.StartSpan("mvs.iterview")()
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 100
	}
	obsIterViewIters.Add(int64(iters))
	nv := in.NumViews()
	bmax := in.maxBenefits()
	omax := 0.0
	for _, o := range in.Overhead {
		omax += o
	}

	st := NewState(in)
	// Lines 3-5: random Z and the current overhead.
	ocur := 0.0
	for j := 0; j < nv; j++ {
		st.Z[j] = rng.Intn(2) == 1
		if st.Z[j] {
			ocur += in.Overhead[j]
		}
	}
	// Lines 6-9: random constraint-respecting Y.
	bcur := make([]float64, nv)
	for i := range st.Y {
		for j := 0; j < nv; j++ {
			if !st.Z[j] || in.Benefit[i][j] <= 0 {
				continue
			}
			if overlapsSelected(in, st.Y[i], j) {
				continue
			}
			if rng.Intn(2) == 1 {
				st.Y[i][j] = true
				bcur[j] += in.Benefit[i][j]
			}
		}
	}

	res := &IterResult{}
	record := func(iter int) {
		u := in.Utility(st)
		res.Trace = append(res.Trace, u)
		if res.Best == nil || u > res.BestUtility {
			res.Best = st.Clone()
			res.BestUtility = u
			res.BestIteration = iter
		}
	}
	record(0)

	// Lines 10-13: alternate Z-Opt and Y-Opt.
	for iter := 1; iter <= iters; iter++ {
		tau := rng.Float64()
		freeze := opts.FreezeAfter > 0 && iter >= opts.FreezeAfter
		ocur = zOpt(in, st, bmax, bcur, ocur, omax, tau, freeze)
		var y [][]bool
		y, bcur = in.BestY(st.Z)
		st.Y = y
		record(iter)
	}
	res.Final = st
	return res
}

// overlapsSelected reports whether view j overlaps any already-selected
// view of the query's row.
func overlapsSelected(in *Instance, row []bool, j int) bool {
	for k, used := range row {
		if used && in.Overlap[j][k] {
			return true
		}
	}
	return false
}

// zOpt implements the paper's function Z-Opt: each z_j flips when its
// flipping probability p^flip_j = p^overhead_j · p^benefit_j reaches the
// threshold τ (Equation 3). It returns the updated current overhead.
func zOpt(in *Instance, st *State, bmax, bcur []float64, ocur, omax, tau float64, freeze bool) float64 {
	var bcurSum, bmaxSum float64
	for j := range bcur {
		bcurSum += bcur[j]
		bmaxSum += bmax[j]
	}
	for j := range st.Z {
		if freeze && st.Z[j] {
			continue
		}
		p := flipProbability(in.Overhead[j], bmax[j], bcur[j], st.Z[j], ocur, omax, bcurSum, bmaxSum)
		if p >= tau {
			st.Z[j] = !st.Z[j]
			if st.Z[j] {
				ocur += in.Overhead[j]
			} else {
				ocur -= in.Overhead[j]
			}
		}
	}
	return ocur
}

// flipProbability evaluates Equation 3 with guarded divisions: ratios with
// zero denominators degrade to 0 (no evidence for flipping) except where a
// zero denominator means "free" (zero overhead), which saturates to 1.
func flipProbability(oj, bmaxj, bcurj float64, z bool, ocur, omax, bcurSum, bmaxSum float64) float64 {
	var pOver, pBen float64
	if z {
		// Selected: flip if expensive and weakly used.
		pOver = safeDiv(oj, ocur, 0)
		pBen = 1 - safeDiv(bcurj, bcurSum, 1)
	} else {
		// Unselected: flip if cheap overall and promising.
		pOver = 1 - safeDiv(ocur, omax, 1)
		pBen = safeDiv(safeDiv(bmaxj, oj, 1), safeDiv(bmaxSum, omax, 1), 0)
	}
	return clamp01(pOver) * clamp01(pBen)
}

// FlipProbabilities evaluates Equation 3 for every view under the current
// state, returning p^flip per candidate. Exposed for RLView's exploratory
// policy, which samples actions from this distribution instead of
// uniformly at random.
func FlipProbabilities(in *Instance, st *State, bcur []float64) []float64 {
	bmax := in.maxBenefits()
	var omax, ocur, bcurSum, bmaxSum float64
	for j, o := range in.Overhead {
		omax += o
		if st.Z[j] {
			ocur += o
		}
		bcurSum += bcur[j]
		bmaxSum += bmax[j]
	}
	out := make([]float64, in.NumViews())
	for j := range out {
		out[j] = flipProbability(in.Overhead[j], bmax[j], bcur[j], st.Z[j], ocur, omax, bcurSum, bmaxSum)
	}
	return out
}

// safeDiv returns a/b, or fallback when b is not positive.
func safeDiv(a, b, fallback float64) float64 {
	if b <= 0 {
		return fallback
	}
	return a / b
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
