package mvs

import "sort"

// OptResult is the outcome of the exact search.
type OptResult struct {
	State   *State
	Utility float64
	// Optimal is false when the node budget was exhausted; the result is
	// then the best incumbent (matching how the paper reports OPT only
	// where the solver finishes).
	Optimal bool
	Nodes   int
}

// Optimal computes the exact MVS optimum by branch and bound over Z. For
// every partial assignment the bound is
//
//	Σ_q MWIS_q(selected ∪ undecided) − Σ_{j selected} O_j,
//
// which is admissible because widening the allowed view set can only raise
// a query's best benefit and undecided views contribute no overhead yet.
// The per-query terms are maintained incrementally: excluding view j can
// only affect queries that j serves, so only those rows are re-solved at
// each branching step.
//
// nodeBudget caps the search (0 means 2 million nodes).
func Optimal(in *Instance, nodeBudget int) *OptResult {
	return OptimalSeeded(in, nodeBudget, nil)
}

// OptimalSeeded is Optimal with a warm-start incumbent: seedZ (when
// non-nil) is evaluated first so the search starts with a strong lower
// bound — e.g. the best heuristic solution found by RLView or the greedy
// sweeps.
func OptimalSeeded(in *Instance, nodeBudget int, seedZ []bool) *OptResult {
	if nodeBudget <= 0 {
		nodeBudget = 2_000_000
	}
	nv := in.NumViews()
	nq := in.NumQueries()
	bmax := in.maxBenefits()

	// Branch order: views with the highest benefit-minus-overhead
	// potential first.
	order := make([]int, nv)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa := bmax[order[a]] - in.Overhead[order[a]]
		sb := bmax[order[b]] - in.Overhead[order[b]]
		return sa > sb
	})

	// queriesOf[j] lists the queries view j can serve.
	queriesOf := make([][]int, nv)
	for i, row := range in.Benefit {
		for j, b := range row {
			if b > 0 {
				queriesOf[j] = append(queriesOf[j], i)
			}
		}
	}

	const (
		undecided = int8(iota)
		in1
		out
	)
	status := make([]int8, nv)
	allowed := func(j int) bool { return status[j] != out }

	// Incremental bound state. Bound 1 is the per-query MWIS relaxation;
	// bound 2 is the per-view net ceiling Σ_{in} bmax_j + Σ_{undecided}
	// max(0, bmax_j − O_j) − overhead(in). Both are admissible; the
	// minimum prunes.
	rowBound := make([]float64, nq)
	var totalBound float64
	for i := 0; i < nq; i++ {
		rowBound[i] = bestRowBenefit(in, i, allowed)
		totalBound += rowBound[i]
	}
	netCeil := make([]float64, nv)
	var sumIn, sumUndecided float64
	for j := 0; j < nv; j++ {
		netCeil[j] = bmax[j] - in.Overhead[j]
		if netCeil[j] < 0 {
			netCeil[j] = 0
		}
		sumUndecided += netCeil[j]
	}

	res := &OptResult{Utility: 0, State: NewState(in)} // empty Z is feasible with utility 0
	if seedZ != nil {
		y, _ := in.BestY(seedZ)
		st := &State{Z: append([]bool(nil), seedZ...), Y: y}
		if u := in.Utility(st); u > res.Utility {
			res.Utility = u
			res.State = st
		}
	}
	nodes := 0

	// exclude sets status[j]=out, updating affected row bounds; the
	// returned closure undoes it.
	exclude := func(j int) func() {
		status[j] = out
		affected := queriesOf[j]
		old := make([]float64, len(affected))
		for k, i := range affected {
			old[k] = rowBound[i]
			nb := bestRowBenefit(in, i, allowed)
			totalBound += nb - rowBound[i]
			rowBound[i] = nb
		}
		return func() {
			for k, i := range affected {
				totalBound += old[k] - rowBound[i]
				rowBound[i] = old[k]
			}
			status[j] = undecided
		}
	}

	var rec func(k int, overheadSoFar float64) bool
	rec = func(k int, overheadSoFar float64) bool {
		nodes++
		if nodes > nodeBudget {
			return false
		}
		bound := totalBound - overheadSoFar
		if b2 := sumIn + sumUndecided - overheadSoFar; b2 < bound {
			bound = b2
		}
		if bound <= res.Utility+1e-12 {
			return true
		}
		if k == nv {
			z := make([]bool, nv)
			for j := range z {
				z[j] = status[j] == in1
			}
			y, _ := in.BestY(z)
			st := &State{Z: z, Y: y}
			if u := in.Utility(st); u > res.Utility {
				res.Utility = u
				res.State = st
			}
			return true
		}
		j := order[k]
		// Include first (potential-ordered); bound 1 is unchanged.
		status[j] = in1
		sumIn += bmax[j]
		sumUndecided -= netCeil[j]
		ok := rec(k+1, overheadSoFar+in.Overhead[j])
		sumIn -= bmax[j]
		sumUndecided += netCeil[j]
		status[j] = undecided
		if !ok {
			return false
		}
		undo := exclude(j)
		sumUndecided -= netCeil[j]
		ok = rec(k+1, overheadSoFar)
		sumUndecided += netCeil[j]
		undo()
		return ok
	}
	res.Optimal = rec(0, 0)
	res.Nodes = nodes
	return res
}

// bestRowBenefit solves the per-query MWIS over the allowed views.
func bestRowBenefit(in *Instance, i int, allowed func(int) bool) float64 {
	var idx []int
	for j, b := range in.Benefit[i] {
		if b > 0 && allowed(j) {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		return 0
	}
	if len(idx) == 1 {
		return in.Benefit[i][idx[0]]
	}
	// Exact search on the (small) per-query conflict subgraph with an
	// additive pruning bound.
	var best float64
	var rec func(pos int, cur float64, chosen []int)
	rec = func(pos int, cur float64, chosen []int) {
		if cur > best {
			best = cur
		}
		if pos == len(idx) {
			return
		}
		rest := cur
		for p := pos; p < len(idx); p++ {
			rest += in.Benefit[i][idx[p]]
		}
		if rest <= best {
			return
		}
		j := idx[pos]
		conflict := false
		for _, c := range chosen {
			if in.Overlap[j][c] {
				conflict = true
				break
			}
		}
		if !conflict {
			rec(pos+1, cur+in.Benefit[i][j], append(chosen, j))
		}
		rec(pos+1, cur, chosen)
	}
	rec(0, 0, nil)
	return best
}
