package selbase

import (
	"math/rand"
	"testing"

	"autoview/internal/mvs"
)

func smallInstance() *mvs.Instance {
	// Three views: v0 cheap & beneficial, v1 expensive & beneficial,
	// v2 cheap & useless. v0 and v1 overlap.
	return &mvs.Instance{
		Benefit: [][]float64{
			{5, 6, 0},
			{4, 2, 0},
			{0, 3, 0.1},
		},
		Overhead: []float64{1, 8, 0.5},
		Overlap: [][]bool{
			{false, true, false},
			{true, false, false},
			{false, false, false},
		},
	}
}

func randomInstance(rng *rand.Rand, nq, nv int) *mvs.Instance {
	in := &mvs.Instance{
		Benefit:  make([][]float64, nq),
		Overhead: make([]float64, nv),
		Overlap:  make([][]bool, nv),
	}
	for j := 0; j < nv; j++ {
		in.Overhead[j] = rng.Float64()*2 + 0.1
		in.Overlap[j] = make([]bool, nv)
	}
	for j := 0; j < nv; j++ {
		for k := j + 1; k < nv; k++ {
			if rng.Float64() < 0.2 {
				in.Overlap[j][k] = true
				in.Overlap[k][j] = true
			}
		}
	}
	for i := 0; i < nq; i++ {
		in.Benefit[i] = make([]float64, nv)
		for j := 0; j < nv; j++ {
			if rng.Float64() < 0.5 {
				in.Benefit[i][j] = rng.Float64() * 3
			}
		}
	}
	return in
}

func TestStrategyNames(t *testing.T) {
	want := []string{"TopkFreq", "TopkOver", "TopkBen", "TopkNorm"}
	for i, s := range Strategies() {
		if s.String() != want[i] {
			t.Errorf("strategy %d = %s, want %s", i, s, want[i])
		}
	}
}

func TestRankingOrders(t *testing.T) {
	in := smallInstance()
	freq := []int{3, 1, 9}
	if r := Ranking(in, freq, TopkFreq); r[0] != 2 || r[1] != 0 || r[2] != 1 {
		t.Errorf("TopkFreq ranking = %v", r)
	}
	// Bigger overhead, lower rank.
	if r := Ranking(in, nil, TopkOver); r[0] != 2 || r[2] != 1 {
		t.Errorf("TopkOver ranking = %v", r)
	}
	// Bmax: v1 = 6+2+3 = 11 > v0 = 9 > v2 = 0.1.
	if r := Ranking(in, nil, TopkBen); r[0] != 1 || r[1] != 0 || r[2] != 2 {
		t.Errorf("TopkBen ranking = %v", r)
	}
	// Norm: v0 (9-1)/1 = 8 > v1 (11-8)/8 = 0.375 > v2 (0.1-0.5)/0.5 < 0.
	if r := Ranking(in, nil, TopkNorm); r[0] != 0 {
		t.Errorf("TopkNorm ranking = %v", r)
	}
}

func TestSweepKShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 12, 9)
	for _, s := range Strategies() {
		freq := make([]int, 9)
		for j := range freq {
			freq[j] = rng.Intn(10)
		}
		curve := SweepK(in, freq, s)
		if len(curve) != 10 {
			t.Fatalf("%s: curve length %d, want 10", s, len(curve))
		}
		if curve[0] != 0 {
			t.Errorf("%s: k=0 utility = %v, want 0", s, curve[0])
		}
		// The paper's observation: curves rise then fall. At minimum the
		// maximum must not be at k=0 for a workload with real benefit.
		bestK, bestU := BestK(in, freq, s)
		if bestU < curve[0] {
			t.Errorf("%s: best %v below empty-set utility", s, bestU)
		}
		if bestK < 0 || bestK > 9 {
			t.Errorf("%s: bestK = %d out of range", s, bestK)
		}
		if curve[bestK] != bestU {
			t.Errorf("%s: BestK inconsistent with curve", s)
		}
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 8, 7)
		opt := mvs.Optimal(in, 0)
		freq := make([]int, 7)
		for j := range freq {
			freq[j] = rng.Intn(5)
		}
		for _, s := range Strategies() {
			_, u := BestK(in, freq, s)
			if u > opt.Utility+1e-9 {
				t.Errorf("trial %d: %s utility %v exceeds optimum %v", trial, s, u, opt.Utility)
			}
		}
	}
}

func TestBigSubConvergesAndFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 15, 10)
	res := BigSub(in, BigSubOptions{Iterations: 60, Rand: rand.New(rand.NewSource(4))})
	if len(res.Trace) != 61 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	if !in.Feasible(res.Final) || !in.Feasible(res.Best) {
		t.Error("BigSub produced infeasible states")
	}
	// After the freeze point (iteration 30), the set of selected views
	// only grows, so late-trace utilities should settle: the last ten
	// entries must not oscillate wildly compared to the first ten
	// post-random-init entries.
	if res.BestUtility <= 0 {
		t.Errorf("BigSub best utility %v, want positive on a random instance", res.BestUtility)
	}
}

func TestBigSubDefaultFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(rng, 5, 5)
	res := BigSub(in, BigSubOptions{Iterations: 10, Rand: rng})
	if res.Final == nil {
		t.Fatal("no final state")
	}
}
