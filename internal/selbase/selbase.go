// Package selbase implements the view-selection baselines of Section VI:
// the iterative method BigSub and the four greedy top-k strategies
// TopkFreq, TopkOver, TopkBen and TopkNorm.
package selbase

import (
	"fmt"
	"math/rand"
	"sort"

	"autoview/internal/mvs"
)

// Strategy ranks candidate subqueries for the greedy methods.
type Strategy int

const (
	// TopkFreq ranks by frequency in the workload (higher first).
	TopkFreq Strategy = iota
	// TopkOver ranks by materialization overhead (lower first).
	TopkOver
	// TopkBen ranks by total benefit for the workload (higher first).
	TopkBen
	// TopkNorm ranks by the utility-to-overhead ratio (higher first).
	TopkNorm
)

// String returns the paper's method name.
func (s Strategy) String() string {
	switch s {
	case TopkFreq:
		return "TopkFreq"
	case TopkOver:
		return "TopkOver"
	case TopkBen:
		return "TopkBen"
	case TopkNorm:
		return "TopkNorm"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all four greedy methods.
func Strategies() []Strategy {
	return []Strategy{TopkFreq, TopkOver, TopkBen, TopkNorm}
}

// Ranking returns candidate indices ordered best-first under the strategy.
// freq supplies per-candidate workload frequencies (used by TopkFreq; may
// be nil for other strategies).
func Ranking(in *mvs.Instance, freq []int, s Strategy) []int {
	nv := in.NumViews()
	idx := make([]int, nv)
	for i := range idx {
		idx[i] = i
	}
	bmax := in.MaxBenefits()
	score := make([]float64, nv)
	switch s {
	case TopkFreq:
		for j := range score {
			if freq != nil {
				score[j] = float64(freq[j])
			}
		}
	case TopkOver:
		for j := range score {
			score[j] = -in.Overhead[j] // bigger overhead, lower rank
		}
	case TopkBen:
		copy(score, bmax)
	case TopkNorm:
		for j := range score {
			if in.Overhead[j] > 0 {
				score[j] = (bmax[j] - in.Overhead[j]) / in.Overhead[j]
			} else {
				score[j] = bmax[j]
			}
		}
	}
	sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
	return idx
}

// SweepK evaluates the utility of materializing the top-k candidates for
// every k in [0, |Z|], producing the curves of Figure 9.
func SweepK(in *mvs.Instance, freq []int, s Strategy) []float64 {
	ranking := Ranking(in, freq, s)
	nv := in.NumViews()
	out := make([]float64, nv+1)
	z := make([]bool, nv)
	for k := 0; k <= nv; k++ {
		if k > 0 {
			z[ranking[k-1]] = true
		}
		out[k] = in.UtilityOfZ(z)
	}
	return out
}

// BestK returns the k maximizing the top-k utility and that utility.
func BestK(in *mvs.Instance, freq []int, s Strategy) (int, float64) {
	curve := SweepK(in, freq, s)
	bestK, bestU := 0, curve[0]
	for k, u := range curve {
		if u > bestU {
			bestK, bestU = k, u
		}
	}
	return bestK, bestU
}

// BigSubOptions configures the BigSub baseline.
type BigSubOptions struct {
	// Iterations is the total iteration budget.
	Iterations int
	// FreezeAfter is the iteration after which selected subqueries may
	// no longer be unselected (BigSub's convergence rule). Defaults to
	// half the budget.
	FreezeAfter int
	Rand        *rand.Rand
}

// BigSub runs the iterative bipartite-labeling baseline [20]. Its labeling
// iteration is operationally the same alternating Z/Y optimization as
// IterView; the distinguishing feature reproduced here is the freeze rule
// that forbids turning selected subqueries to unselected after a
// threshold, which forces convergence at the price of greedy behaviour.
func BigSub(in *mvs.Instance, opts BigSubOptions) *mvs.IterResult {
	iters := opts.Iterations
	if iters <= 0 {
		iters = 100
	}
	freeze := opts.FreezeAfter
	if freeze <= 0 {
		freeze = iters / 2
	}
	return mvs.IterView(in, mvs.IterOptions{
		Iterations:  iters,
		FreezeAfter: freeze,
		Rand:        opts.Rand,
	})
}
