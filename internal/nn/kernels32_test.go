package nn

import (
	"math"
	"math/rand"
	"testing"
)

// refDot32 reduces in the canonical even/odd order without any row
// blocking — the definition the blocked kernels must match bit-exactly.
func refDot32(w, x Vec32) float32 {
	var s0, s1 float32
	c := 0
	for ; c+2 <= len(x); c += 2 {
		s0 += w[c] * x[c]
		s1 += w[c+1] * x[c+1]
	}
	if c < len(x) {
		s0 += w[c] * x[c]
	}
	return s0 + s1
}

func randVec32(rng *rand.Rand, n int, scale float32) Vec32 {
	v := make(Vec32, n)
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * scale
	}
	return v
}

// TestMatVec32CanonicalOrder pins the accumulation-order contract: the
// row-blocked kernel is bit-identical to the unblocked canonical
// reduction for every row/col shape, so tolerance bounds cannot drift
// with block boundaries.
func TestMatVec32CanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for rows := 1; rows <= 10; rows++ {
		for cols := 1; cols <= 19; cols += 3 {
			w := randVec32(rng, rows*cols, 2)
			b := randVec32(rng, rows, 1)
			x := randVec32(rng, cols, 2)
			dst := make(Vec32, rows)
			MatVec32(dst, w, rows, cols, b, x)
			for r := 0; r < rows; r++ {
				want := b[r] + refDot32(w[r*cols:r*cols+cols], x)
				if dst[r] != want { //lint:allow floateq bit-identity across block sizes is the property under test
					t.Fatalf("rows=%d cols=%d r=%d: blocked %v != canonical %v", rows, cols, r, dst[r], want)
				}
			}
		}
	}
}

// TestMatVec32PaddedInput pins the zero-padding shortcut: passing a
// shorter x equals passing x extended with zeros.
func TestMatVec32PaddedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const rows, cols, short = 7, 12, 5
	w := randVec32(rng, rows*cols, 1)
	b := randVec32(rng, rows, 1)
	x := randVec32(rng, short, 1)
	padded := make(Vec32, cols)
	copy(padded, x)
	got := make(Vec32, rows)
	want := make(Vec32, rows)
	MatVec32(got, w, rows, cols, b, x)
	MatVec32(want, w, rows, cols, b, padded)
	for r := range got {
		if got[r] != want[r] { //lint:allow floateq zero columns contribute exactly nothing
			t.Fatalf("row %d: short-input %v != padded %v", r, got[r], want[r])
		}
	}
}

// TestMatMulT32MatchesMatVec pins that the batched kernel's rows are
// bit-identical to independent matvec calls — the property that makes
// batching a pure throughput optimization.
func TestMatMulT32MatchesMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range [][3]int{{1, 16, 64}, {5, 16, 64}, {3, 10, 7}, {6, 1, 5}, {2, 9, 3}} {
		m, k, n := shape[0], shape[1], shape[2]
		x := randVec32(rng, m*k, 2)
		w := randVec32(rng, n*k, 2)
		b := randVec32(rng, n, 1)
		y := make(Vec32, m*n)
		MatMulT32(y, x, m, k, w, n, b)
		row := make(Vec32, n)
		for i := 0; i < m; i++ {
			MatVec32(row, w, n, k, b, x[i*k:i*k+k])
			for j := 0; j < n; j++ {
				if y[i*n+j] != row[j] { //lint:allow floateq batch-vs-single bit-identity is the property under test
					t.Fatalf("shape %v i=%d j=%d: batch %v != single %v", shape, i, j, y[i*n+j], row[j])
				}
			}
		}
	}
}

// TestMatVec32VsF64 pins the f32-vs-f64 error envelope of the dot
// kernel at serving-relevant shapes.
func TestMatVec32VsF64(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, shape := range [][2]int{{64, 32}, {32, 56}, {56, 32}, {8, 8}, {1, 16}} {
		rows, cols := shape[0], shape[1]
		w64 := make(Vec, rows*cols)
		b64 := make(Vec, rows)
		x64 := make(Vec, cols)
		for i := range w64 {
			w64[i] = rng.NormFloat64()
		}
		for i := range b64 {
			b64[i] = rng.NormFloat64()
		}
		for i := range x64 {
			x64[i] = rng.NormFloat64()
		}
		w := make(Vec32, len(w64))
		b := make(Vec32, len(b64))
		x := make(Vec32, len(x64))
		F32From(w, w64)
		F32From(b, b64)
		F32From(x, x64)
		dst := make(Vec32, rows)
		MatVec32(dst, w, rows, cols, b, x)
		for r := 0; r < rows; r++ {
			want := b64[r]
			for c := 0; c < cols; c++ {
				want += w64[r*cols+c] * x64[c]
			}
			// Absolute term covers cancellation: inputs are O(1), so a
			// result near zero may carry the absolute rounding of the
			// partial sums.
			if !AlmostEqual(float64(dst[r]), want, 1e-5, 1e-4) {
				t.Fatalf("shape %v row %d: f32 %v vs f64 %v", shape, r, dst[r], want)
			}
		}
	}
}

// TestTanh32Accuracy pins the rational approximation's error budget
// against math.Tanh over a dense sweep plus edge cases.
func TestTanh32Accuracy(t *testing.T) {
	var maxAbs float64
	var maxULP int64
	check := func(x float32) {
		got := Tanh32(x)
		want := math.Tanh(float64(x))
		if abs := math.Abs(float64(got) - want); abs > maxAbs {
			maxAbs = abs
		}
		if u := ULPDiff32(got, float32(want)); u > maxULP {
			maxULP = u
		}
	}
	for x := -12.0; x <= 12.0; x += 1e-3 {
		check(float32(x))
	}
	for _, x := range []float32{0, -0, 1e-8, -1e-8, 0.5, -0.5, 20, -20, 1e6, -1e6} {
		check(x)
	}
	// Budgets pinned from measurement with headroom; see PERFORMANCE.md.
	if maxAbs > 4e-7 {
		t.Fatalf("Tanh32 max abs error %.3g exceeds budget 4e-7", maxAbs)
	}
	if maxULP > 16 {
		t.Fatalf("Tanh32 max ULP distance %d exceeds budget 16", maxULP)
	}
	if !math.IsNaN(float64(Tanh32(float32(math.NaN())))) {
		t.Fatal("Tanh32(NaN) must be NaN")
	}
}

// TestSigmoid32Accuracy pins the logistic approximation's budget
// against the f64 1/(1+e^-x).
func TestSigmoid32Accuracy(t *testing.T) {
	var maxAbs float64
	for x := -30.0; x <= 30.0; x += 1e-3 {
		got := Sigmoid32(float32(x))
		want := 1 / (1 + math.Exp(-x))
		if abs := math.Abs(float64(got) - want); abs > maxAbs {
			maxAbs = abs
		}
	}
	if maxAbs > 2e-7 {
		t.Fatalf("Sigmoid32 max abs error %.3g exceeds budget 2e-7", maxAbs)
	}
	if got := Sigmoid32(40); got != 1 { //lint:allow floateq exact saturation at the clamp bound
		t.Fatalf("Sigmoid32(40) = %v, want exact 1", got)
	}
	if got := Sigmoid32(-40); got != 0 { //lint:allow floateq exact saturation at the clamp bound
		t.Fatalf("Sigmoid32(-40) = %v, want exact 0", got)
	}
}

func TestArenaVec32(t *testing.T) {
	a := NewArena()
	v1 := a.Vec32(10)
	v2 := a.Vec32(minFloatChunk) // forces a second chunk
	for i := range v1 {
		v1[i] = 1
	}
	for i := range v2 {
		v2[i] = 2
	}
	if v1[9] != 1 || v2[0] != 2 {
		t.Fatal("arena f32 slices must be disjoint")
	}
	if a.Bytes() == 0 {
		t.Fatal("Bytes must count f32 chunks")
	}
	a.Reset()
	v3 := a.Vec32(10)
	for _, x := range v3 {
		if x != 0 { //lint:allow floateq zeroed-memory contract
			t.Fatal("Vec32 must hand out zeroed memory after Reset")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		_ = a.Vec32(10)
		_ = a.Vec32(minFloatChunk)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Vec32 allocs = %v, want 0", allocs)
	}
}

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b       float64
		rtol, atol float64
		want       bool
	}{
		{1, 1, 0, 0, true},
		{math.Inf(1), math.Inf(1), 0, 0, true},
		{math.Inf(1), math.Inf(-1), 1e308, 1e308, false},
		{math.NaN(), math.NaN(), 1e300, 1e300, false},
		{1, 1 + 1e-9, 1e-8, 0, true},
		{1, 1 + 1e-7, 1e-8, 0, false},
		{0, 1e-9, 0, 1e-8, true},
		{0, 1e-7, 0, 1e-8, false},
		{-1, 1, 0.5, 0, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.rtol, c.atol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v, %v) = %v, want %v", c.a, c.b, c.rtol, c.atol, got, c.want)
		}
	}
}

func TestULPDiff32(t *testing.T) {
	if d := ULPDiff32(1, 1); d != 0 {
		t.Fatalf("equal values: %d", d)
	}
	if d := ULPDiff32(0, float32(math.Copysign(0, -1))); d != 0 {
		t.Fatalf("±0: %d", d)
	}
	if d := ULPDiff32(1, math.Nextafter32(1, 2)); d != 1 {
		t.Fatalf("adjacent: %d", d)
	}
	if d := ULPDiff32(-1e-45, 1e-45); d != 2 {
		t.Fatalf("denormals across zero: %d", d)
	}
	if d := ULPDiff32(float32(math.NaN()), 1); d != math.MaxInt64 {
		t.Fatalf("NaN: %d", d)
	}
}

func TestMLP32InferBatchMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m64 := NewMLP("t", []int{10, 16, 64, 16, 1}, rng)
	m := NewMLP32(m64)
	a := NewArena()
	const n = 5
	x := randVec32(rng, n*10, 1)
	a.Reset()
	batch := m.InferBatch(x, n, a)
	single := NewArena()
	for i := 0; i < n; i++ {
		single.Reset()
		y := m.Infer(x[i*10:i*10+10], single)
		if batch[i] != y[0] { //lint:allow floateq batch-vs-single bit-identity is the property under test
			t.Fatalf("row %d: batch %v != single %v", i, batch[i], y[0])
		}
	}
}
