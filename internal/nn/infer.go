package nn

import "math"

// Forward-only inference fast paths. Every method here computes exactly
// what the corresponding Forward computes — same operation order, same
// float64 accumulation, so results are bit-identical (the parity tests
// in infer_test.go enforce `==` on every element) — but builds no
// backward closures and allocates nothing: outputs live in caller-owned
// buffers or in an Arena. This is the serving path: widedeep.Predict,
// the serve micro-batcher, and the DQN's action scoring all run through
// it.

// InferInto applies the layer forward-only, writing the output into dst
// (length OutDim). dst must not alias x.
func (l *Linear) InferInto(dst Vec, x Vec) {
	out := l.W.Rows
	for r := 0; r < out; r++ {
		row := l.W.Row(r)
		sum := l.B.Val[r]
		for c, xv := range x {
			sum += row[c] * xv
		}
		dst[r] = sum
	}
}

// Infer applies the layer forward-only into an arena-backed vector.
func (l *Linear) Infer(x Vec, a *Arena) Vec {
	dst := a.Vec(l.W.Rows)
	l.InferInto(dst, x)
	return dst
}

// ReLUInto writes max(0, x) elementwise into dst; dst may alias x.
func ReLUInto(dst, x Vec) {
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// SigmoidInto writes 1/(1+e^-x) elementwise into dst; dst may alias x.
func SigmoidInto(dst, x Vec) {
	for i, v := range x {
		dst[i] = 1 / (1 + math.Exp(-v))
	}
}

// TanhInto writes tanh(x) elementwise into dst; dst may alias x.
func TanhInto(dst, x Vec) {
	for i, v := range x {
		dst[i] = math.Tanh(v)
	}
}

// SumInto writes x ⊕ y (element-wise sum) into dst — the inference form
// of Add. dst may alias either input.
func SumInto(dst, x, y Vec) {
	for i := range x {
		dst[i] = x[i] + y[i]
	}
}

// Infer looks up id forward-only, copying its row into the arena (the
// copy keeps the learned table safe from downstream writes, matching
// Forward's semantics). Unknown ids clamp to row 0.
func (e *Embedding) Infer(id int, a *Arena) Vec {
	if id < 0 || id >= e.W.Rows {
		id = 0
	}
	dst := a.Vec(e.W.Cols)
	copy(dst, e.W.Row(id))
	return dst
}

// AvgPoolInto averages equal-length vectors into dst, in AvgPool's exact
// accumulation order. dst must not alias any input.
func AvgPoolInto(dst Vec, xs []Vec) {
	clear(dst)
	for _, x := range xs {
		addInto(dst, x)
	}
	inv := 1 / float64(len(xs))
	for i := range dst {
		dst[i] *= inv
	}
}

// Infer applies all layers forward-only with ReLU between them. The
// activations are applied in place on each layer's arena output.
func (m *MLP) Infer(x Vec, a *Arena) Vec {
	cur := x
	for i, l := range m.Layers {
		y := l.Infer(cur, a)
		if i < len(m.Layers)-1 || m.FinalActivation {
			ReLUInto(y, y)
		}
		cur = y
	}
	return cur
}

// InferInto normalizes the matrix forward-only, writing into dst (same
// shape as m). dst may alias m: the statistics are fully accumulated
// before any element is written, and each output element depends only on
// its own input element.
func (bn *BatchNorm) InferInto(dst []Vec, m []Vec) {
	T := len(m)
	if T == 0 {
		return
	}
	mu, variance := matStats(m)
	std := math.Sqrt(variance + bnEps)
	gamma, beta := bn.Gamma.Val[0], bn.Beta.Val[0]
	for t := range m {
		for d, v := range m[t] {
			xh := (v - mu) / std
			dst[t][d] = gamma*xh + beta
		}
	}
}

// Infer applies conv → norm → relu forward-only into an arena-backed
// matrix (norm and relu run in place on the convolution output).
func (b *ConvBlock) Infer(m []Vec, a *Arena) []Vec {
	T := len(m)
	if T == 0 {
		return nil
	}
	D := len(m[0])
	w0, w1, w2, bias := b.K.Val[0], b.K.Val[1], b.K.Val[2], b.K.Val[3]
	conv := a.Mat(T, D)
	for t := 0; t < T; t++ {
		for d := 0; d < D; d++ {
			sum := bias + w1*m[t][d]
			if t > 0 {
				sum += w0 * m[t-1][d]
			}
			if t < T-1 {
				sum += w2 * m[t+1][d]
			}
			conv[t][d] = sum
		}
	}
	b.BN.InferInto(conv, conv)
	for t := 0; t < T; t++ {
		ReLUInto(conv[t], conv[t])
	}
	return conv
}

// AvgPoolColsInto averages a matrix over its rows into dst (width = the
// column dimension), in AvgPoolCols's exact accumulation order.
func AvgPoolColsInto(dst Vec, m []Vec) {
	clear(dst)
	for _, row := range m {
		addInto(dst, row)
	}
	inv := 1 / float64(len(m))
	for i := range dst {
		dst[i] *= inv
	}
}

// InferStep runs one forward-only time step: pre is caller scratch of
// length 4*Hidden, overwritten. hNext may alias h and cNext may alias
// cPrev (the pre-activations read h in full before any write, and the
// state update is elementwise), which is how LSTM.Infer runs the whole
// sequence in two buffers.
func (c *LSTMCell) InferStep(hNext, cNext, pre, x, h, cPrev Vec) {
	H := c.Hidden
	for r := 0; r < 4*H; r++ {
		row := c.W.Row(r)
		sum := c.B.Val[r]
		// Forward concatenates [x, h] and accumulates left to right;
		// iterating x then h preserves that exact order without the
		// concat allocation.
		for k, v := range x {
			sum += row[k] * v
		}
		for k, v := range h {
			sum += row[len(x)+k] * v
		}
		pre[r] = sum
	}
	for j := 0; j < H; j++ {
		i := sigmoid(pre[j])
		f := sigmoid(pre[H+j])
		g := math.Tanh(pre[2*H+j])
		o := sigmoid(pre[3*H+j])
		cj := f*cPrev[j] + i*g
		cNext[j] = cj
		hNext[j] = o * math.Tanh(cj)
	}
}

// Infer encodes the sequence forward-only into the final hidden state,
// reusing one hidden, one cell and one pre-activation buffer across all
// time steps.
func (l *LSTM) Infer(xs []Vec, a *Arena) Vec {
	H := l.Cell.Hidden
	h := a.Vec(H)
	c := a.Vec(H)
	pre := a.Vec(4 * H)
	for _, x := range xs {
		l.Cell.InferStep(h, c, pre, x, h, c)
	}
	return h
}

// ConcatInto copies the vectors into dst back to back (the inference
// form of Concat); dst must have the summed length.
func ConcatInto(dst Vec, vs ...Vec) {
	off := 0
	for _, v := range vs {
		copy(dst[off:], v)
		off += len(v)
	}
}
