package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(i) for every i in [0, n) across workers
// goroutines. workers <= 0 selects runtime.NumCPU(); the pool is capped
// at n. Indices are claimed from an atomic counter, so every index runs
// exactly once; fn must confine its writes to index-i-owned state (the
// i-th slot of an output slice), which makes the overall result
// independent of scheduling — the parallel run is bit-identical to the
// serial one. This is the fan-out primitive behind the advisor's pair
// measurement and the W-D batched predict path.
func ParallelFor(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
