package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(i) for every i in [0, n) across workers
// goroutines. workers <= 0 selects runtime.NumCPU(); the pool is capped
// at n. Indices are claimed from an atomic counter, so every index runs
// exactly once; fn must confine its writes to index-i-owned state (the
// i-th slot of an output slice), which makes the overall result
// independent of scheduling — the parallel run is bit-identical to the
// serial one. This is the fan-out primitive behind the advisor's pair
// measurement and the W-D batched predict path.
func ParallelFor(n, workers int, fn func(i int)) {
	ParallelForWorker(n, workers, func(_, i int) { fn(i) })
}

// Workers resolves the effective worker count ParallelFor/
// ParallelForWorker will use for n items: workers <= 0 selects
// runtime.NumCPU(), and the pool is capped at n. Callers that stage
// per-worker state (e.g. one inference Arena per worker) size it with
// this.
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ParallelForWorker is ParallelFor with the worker index exposed:
// fn(w, i) runs with w in [0, Workers(n, workers)), and each w is owned
// by exactly one goroutine at a time, so fn may freely use per-worker
// scratch state (an inference Arena, an accumulator slot) indexed by w.
// The same determinism contract applies: writes must be confined to
// index-i-owned state; per-worker scratch must not leak into results in
// a scheduling-dependent way.
func ParallelForWorker(n, workers int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
