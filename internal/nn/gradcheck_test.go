package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Finite-difference gradient checks for the three structured layers
// (ConvBlock, LSTMCell, BatchNorm), table-driven over shapes: every
// parameter is perturbed by ±fdEps and the analytic gradient must match
// the central difference within fdTol relative error.
const (
	fdEps = 1e-5
	fdTol = 1e-4
)

// fdCheckParams compares analytic parameter gradients (already
// accumulated in params) against central finite differences of forward.
func fdCheckParams(t *testing.T, params []*Param, forward func() float64) {
	t.Helper()
	for _, p := range params {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + fdEps
			lp := forward()
			p.Val[i] = orig - fdEps
			lm := forward()
			p.Val[i] = orig
			want := (lp - lm) / (2 * fdEps)
			got := p.Grad[i]
			if math.Abs(got-want) > fdTol*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %g, finite difference %g", p, i, got, want)
			}
		}
	}
}

// randMat fills a T×D matrix with values in (-1, 1).
func randMat(rng *rand.Rand, T, D int) []Vec {
	m := make([]Vec, T)
	for t := range m {
		m[t] = make(Vec, D)
		for d := range m[t] {
			m[t][d] = rng.Float64()*2 - 1
		}
	}
	return m
}

// matLoss is a deterministic scalar loss over a matrix with row-dependent
// weights, so gradients are non-uniform across both axes.
func matLoss(m []Vec) (float64, []Vec) {
	var loss float64
	dy := make([]Vec, len(m))
	for t := range m {
		dy[t] = make(Vec, len(m[t]))
		for d, v := range m[t] {
			w := math.Sin(float64(t*7+d) + 0.5)
			loss += w * v
			dy[t][d] = w
		}
	}
	return loss, dy
}

func TestConvBlockGradientsTableDriven(t *testing.T) {
	shapes := []struct{ T, D int }{
		{1, 1}, {1, 4}, {2, 3}, {3, 1}, {4, 2}, {6, 5},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(100*sh.T + sh.D)))
		b := NewConvBlock("conv", rng)
		// Non-trivial norm parameters so their gradients are exercised.
		b.BN.Gamma.Val[0] = 1.3
		b.BN.Beta.Val[0] = 0.2
		m := randMat(rng, sh.T, sh.D)
		forward := func() float64 {
			y, _ := b.Forward(m)
			loss, _ := matLoss(y)
			return loss
		}
		ZeroGrads(b.Params())
		y, back := b.Forward(m)
		_, dy := matLoss(y)
		dm := back(dy)
		fdCheckParams(t, b.Params(), forward)
		for ti := range m {
			for d := range m[ti] {
				orig := m[ti][d]
				m[ti][d] = orig + fdEps
				lp := forward()
				m[ti][d] = orig - fdEps
				lm := forward()
				m[ti][d] = orig
				want := (lp - lm) / (2 * fdEps)
				if math.Abs(dm[ti][d]-want) > fdTol*(1+math.Abs(want)) {
					t.Errorf("shape %dx%d: dm[%d][%d] = %g, want %g", sh.T, sh.D, ti, d, dm[ti][d], want)
				}
			}
		}
	}
}

func TestLSTMCellGradientsTableDriven(t *testing.T) {
	shapes := []struct{ in, hidden int }{
		{1, 1}, {2, 3}, {3, 2}, {4, 5},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(10*sh.in + sh.hidden)))
		c := NewLSTMCell("cell", sh.in, sh.hidden, rng)
		x := make(Vec, sh.in)
		h := make(Vec, sh.hidden)
		cp := make(Vec, sh.hidden)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		for j := range h {
			h[j] = rng.Float64()*2 - 1
			cp[j] = rng.Float64()*2 - 1
		}
		// Loss reads both outputs of one step so every gate contributes.
		forward := func() float64 {
			hn, cn, _ := c.Step(x, h, cp)
			lh, _ := sumLoss(hn)
			lc, _ := sumLoss(cn)
			return lh + 0.5*lc
		}
		ZeroGrads(c.Params())
		hn, cn, back := c.Step(x, h, cp)
		_, dh := sumLoss(hn)
		_, dcw := sumLoss(cn)
		dc := make(Vec, len(dcw))
		for j := range dcw {
			dc[j] = 0.5 * dcw[j]
		}
		dx, dhPrev, dcPrev := back(dh, dc)
		fdCheckParams(t, c.Params(), forward)

		checkVec := func(name string, got Vec, xs Vec) {
			for i := range xs {
				orig := xs[i]
				xs[i] = orig + fdEps
				lp := forward()
				xs[i] = orig - fdEps
				lm := forward()
				xs[i] = orig
				want := (lp - lm) / (2 * fdEps)
				if math.Abs(got[i]-want) > fdTol*(1+math.Abs(want)) {
					t.Errorf("in=%d hidden=%d: %s[%d] = %g, want %g", sh.in, sh.hidden, name, i, got[i], want)
				}
			}
		}
		checkVec("dx", dx, x)
		checkVec("dhPrev", dhPrev, h)
		checkVec("dcPrev", dcPrev, cp)
	}
}

func TestBatchNormGradientsTableDriven(t *testing.T) {
	shapes := []struct{ T, D int }{
		{1, 2}, {2, 2}, {3, 4}, {5, 1}, {4, 6},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(1000*sh.T + sh.D)))
		bn := NewBatchNorm("bn")
		bn.Gamma.Val[0] = 0.8
		bn.Beta.Val[0] = -0.4
		m := randMat(rng, sh.T, sh.D)
		forward := func() float64 {
			y, _ := bn.Forward(m)
			loss, _ := matLoss(y)
			return loss
		}
		ZeroGrads(bn.Params())
		y, back := bn.Forward(m)
		_, dy := matLoss(y)
		dm := back(dy)
		fdCheckParams(t, bn.Params(), forward)
		for ti := range m {
			for d := range m[ti] {
				orig := m[ti][d]
				m[ti][d] = orig + fdEps
				lp := forward()
				m[ti][d] = orig - fdEps
				lm := forward()
				m[ti][d] = orig
				want := (lp - lm) / (2 * fdEps)
				if math.Abs(dm[ti][d]-want) > fdTol*(1+math.Abs(want)) {
					t.Errorf("shape %dx%d: dm[%d][%d] = %g, want %g", sh.T, sh.D, ti, d, dm[ti][d], want)
				}
			}
		}
	}
}

func TestBatchNormEmptyMatrix(t *testing.T) {
	bn := NewBatchNorm("bn")
	y, back := bn.Forward(nil)
	if y != nil || back(nil) != nil {
		t.Error("empty matrix should normalize to nil")
	}
}
