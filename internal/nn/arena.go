package nn

// Arena is a reusable bump allocator for inference scratch memory: the
// forward-only Infer paths carve their activations out of it instead of
// the heap, so a steady-state prediction performs zero allocations.
//
// Memory is held in chunks that survive Reset. A fresh arena grows while
// the first few calls discover the model's working-set shape; after that
// every Reset rewinds to the start of the existing chunks and the same
// call sequence walks them without touching the allocator. Chunks only
// ever grow (a position's chunk is replaced by a larger one when a
// request outsizes it), so the footprint converges to the high-water
// mark of the shapes seen.
//
// Contracts (the serving fast path depends on all three):
//
//   - Aliasing: every Vec/Vec32/Vecs/Mat call returns a slice disjoint
//     from every other slice handed out since the last Reset, so
//     kernels may assume their operands never overlap unless the caller
//     aliased them deliberately (in-place activations do).
//   - Zero-alloc: once the arena has served a call sequence, replaying
//     any sequence with the same-or-smaller shapes after Reset touches
//     the Go allocator zero times (the allocation-regression tests pin
//     this for the widedeep forward).
//   - Determinism: memory handed out is always zeroed, so arena-backed
//     computations cannot observe values from earlier predictions.
//
// An arena is NOT safe for concurrent use: give each worker its own
// (widedeep keeps a pool of them, one handed to each ParallelFor
// worker). Vectors returned by Vec/Vec32/Vecs/Mat are valid until the
// next Reset; callers must not retain them across predictions.
type Arena struct {
	floats   [][]float64 // float64 chunks
	fi, foff int         // current float chunk and offset
	vecs     [][]Vec     // []Vec-header chunks (for matrices)
	vi, voff int         // current header chunk and offset
	f32s     [][]float32 // float32 chunks (f32 kernel mirrors)
	gi, goff int         // current float32 chunk and offset
}

// minFloatChunk and minVecChunk size freshly grown chunks; requests
// larger than the minimum get a dedicated chunk of their own size.
const (
	minFloatChunk = 4096
	minVecChunk   = 256
)

// NewArena returns an empty arena; it sizes itself to the model on
// first use.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena, invalidating every previously returned
// vector while keeping the chunks for reuse.
func (a *Arena) Reset() {
	a.fi, a.foff = 0, 0
	a.vi, a.voff = 0, 0
	a.gi, a.goff = 0, 0
}

// Vec returns a zeroed n-vector carved from the arena (same contract as
// a fresh make: all elements 0).
func (a *Arena) Vec(n int) Vec {
	if n == 0 {
		return nil
	}
	for {
		if a.fi < len(a.floats) {
			chunk := a.floats[a.fi]
			if a.foff+n <= len(chunk) {
				v := chunk[a.foff : a.foff+n : a.foff+n]
				a.foff += n
				clear(v)
				return v
			}
			if a.foff == 0 && n > len(chunk) {
				// This position's chunk can never fit the request: grow
				// it in place so the next Reset walk succeeds directly.
				a.floats[a.fi] = make([]float64, n)
				continue
			}
			// Chunk full (or too small but partially handed out): advance.
			a.fi++
			a.foff = 0
			continue
		}
		size := n
		if size < minFloatChunk {
			size = minFloatChunk
		}
		a.floats = append(a.floats, make([]float64, size))
		a.foff = 0
	}
}

// Vec32 returns a zeroed n-vector of float32 carved from the arena —
// the scratch source of the f32 inference mirrors. Same contract as
// Vec: zeroed, disjoint from all other live slices, valid until Reset.
func (a *Arena) Vec32(n int) Vec32 {
	if n == 0 {
		return nil
	}
	for {
		if a.gi < len(a.f32s) {
			chunk := a.f32s[a.gi]
			if a.goff+n <= len(chunk) {
				v := chunk[a.goff : a.goff+n : a.goff+n]
				a.goff += n
				clear(v)
				return v
			}
			if a.goff == 0 && n > len(chunk) {
				a.f32s[a.gi] = make([]float32, n)
				continue
			}
			a.gi++
			a.goff = 0
			continue
		}
		size := n
		if size < minFloatChunk {
			size = minFloatChunk
		}
		a.f32s = append(a.f32s, make([]float32, size))
		a.goff = 0
	}
}

// Vecs returns a cleared slice of n vector headers (all nil), for
// building matrices row by row.
func (a *Arena) Vecs(n int) []Vec {
	if n == 0 {
		return nil
	}
	for {
		if a.vi < len(a.vecs) {
			chunk := a.vecs[a.vi]
			if a.voff+n <= len(chunk) {
				v := chunk[a.voff : a.voff+n : a.voff+n]
				a.voff += n
				clear(v)
				return v
			}
			if a.voff == 0 && n > len(chunk) {
				a.vecs[a.vi] = make([]Vec, n)
				continue
			}
			a.vi++
			a.voff = 0
			continue
		}
		size := n
		if size < minVecChunk {
			size = minVecChunk
		}
		a.vecs = append(a.vecs, make([]Vec, size))
		a.voff = 0
	}
}

// Mat returns a zeroed t×d matrix (t row vectors of width d) carved from
// the arena.
func (a *Arena) Mat(t, d int) []Vec {
	m := a.Vecs(t)
	for i := range m {
		m[i] = a.Vec(d)
	}
	return m
}

// Bytes reports the arena's current footprint (the high-water scratch
// size of the shapes it has served), for observability.
func (a *Arena) Bytes() int {
	total := 0
	for _, c := range a.floats {
		total += 8 * len(c)
	}
	for _, c := range a.vecs {
		total += 24 * len(c)
	}
	for _, c := range a.f32s {
		total += 4 * len(c)
	}
	return total
}
