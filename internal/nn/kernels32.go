package nn

// Float32 inference kernels. These are the compute primitives behind the
// f32 mirror layers (infer32.go): blocked matrix-vector and
// matrix-matrix products plus polynomial activations, written for the
// Go compiler's scalar code generation. Go does not auto-vectorize
// floating-point reductions, so a naive dot product is latency-bound on
// the FMA chain; the kernels below break that chain with multiple
// independent accumulators (row blocking × even/odd column pairing),
// which is worth ~4× on the serving forward.
//
// Numerics contract: every dot product in this file reduces in the
// canonical order defined by dot32 — two accumulator chains over
// even/odd column pairs, combined as (even + odd) at the end. Row
// blocking changes which rows are in flight, never the per-row
// reduction order, so results are bit-identical across block sizes and
// the f32-vs-f64 tolerance bounds pinned in the tests are stable. See
// PERFORMANCE.md ("Accumulation order").

// Vec32 is a dense float32 vector, the element type of the inference
// mirror layers.
type Vec32 = []float32

// F32From converts a float64 vector into dst (same length), the
// mirror-materialization primitive.
func F32From(dst Vec32, src Vec) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// dot32 is the canonical f32 reduction: even/odd dual accumulator
// chains, combined as even+odd. Every kernel in this file that reduces
// over columns uses exactly this order.
func dot32(w, x Vec32) float32 {
	// Pin both lengths to the same value so the indexed loads below
	// prove in-bounds (no per-element checks in the reduction).
	n := len(x)
	w = w[:n]
	var s0, s1 float32
	c := 0
	for ; c+2 <= n; c += 2 {
		s0 += w[c] * x[c]
		s1 += w[c+1] * x[c+1]
	}
	if c < n {
		s0 += w[c] * x[c]
	}
	return s0 + s1
}

// MatVec32 computes dst = W·x + b for a row-major W [rows × cols]:
// dst[r] = b[r] + Σc W[r·cols+c]·x[c]. Rows are blocked four at a time
// (eight live accumulators with the even/odd column pairing), the tail
// rows reduce in the same canonical per-row order, so the result is
// independent of the blocking. dst must not alias x; len(x) may be
// shorter than cols when the logical input is zero-padded (the unread
// columns contribute nothing).
func MatVec32(dst Vec32, w Vec32, rows, cols int, b Vec32, x Vec32) {
	x = x[:len(x):len(x)]
	n := len(x)
	// Exact-length views: every index below is provably in bounds, so
	// the 10 loads of the inner loop compile check-free (the kernel is
	// compute-bound; per-element bounds checks cost ~25% here).
	dst = dst[:rows]
	b = b[:rows]
	r := 0
	for ; r+4 <= rows; r += 4 {
		r0 := w[r*cols:][:n]
		r1 := w[(r+1)*cols:][:n]
		r2 := w[(r+2)*cols:][:n]
		r3 := w[(r+3)*cols:][:n]
		var s00, s01, s10, s11, s20, s21, s30, s31 float32
		c := 0
		for ; c+2 <= n; c += 2 {
			x0, x1 := x[c], x[c+1]
			s00 += r0[c] * x0
			s01 += r0[c+1] * x1
			s10 += r1[c] * x0
			s11 += r1[c+1] * x1
			s20 += r2[c] * x0
			s21 += r2[c+1] * x1
			s30 += r3[c] * x0
			s31 += r3[c+1] * x1
		}
		if c < n {
			x0 := x[c]
			s00 += r0[c] * x0
			s10 += r1[c] * x0
			s20 += r2[c] * x0
			s30 += r3[c] * x0
		}
		dst[r] = b[r] + (s00 + s01)
		dst[r+1] = b[r+1] + (s10 + s11)
		dst[r+2] = b[r+2] + (s20 + s21)
		dst[r+3] = b[r+3] + (s30 + s31)
	}
	for ; r < rows; r++ {
		dst[r] = b[r] + dot32(w[r*cols:], x)
	}
}

// MatMulT32 computes the batched form Y = X·Wᵀ + b: X is row-major
// [m × k] (one input per row), W row-major [n × k] (a Linear32 weight),
// Y row-major [m × n]. Output columns are blocked four at a time so
// each loaded X element feeds four dot products; the per-dot reduction
// order is the canonical dot32 order, making Y's rows bit-identical to
// m independent MatVec32 calls (the property the batch tests pin).
func MatMulT32(y Vec32, x Vec32, m, k int, w Vec32, n int, b Vec32) {
	b = b[:n]
	for i := 0; i < m; i++ {
		xi := x[i*k:][:k]
		yi := y[i*n:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			w0 := w[j*k:][:k]
			w1 := w[(j+1)*k:][:k]
			w2 := w[(j+2)*k:][:k]
			w3 := w[(j+3)*k:][:k]
			var s00, s01, s10, s11, s20, s21, s30, s31 float32
			c := 0
			for ; c+2 <= k; c += 2 {
				x0, x1 := xi[c], xi[c+1]
				s00 += w0[c] * x0
				s01 += w0[c+1] * x1
				s10 += w1[c] * x0
				s11 += w1[c+1] * x1
				s20 += w2[c] * x0
				s21 += w2[c+1] * x1
				s30 += w3[c] * x0
				s31 += w3[c+1] * x1
			}
			if c < k {
				x0 := xi[c]
				s00 += w0[c] * x0
				s10 += w1[c] * x0
				s20 += w2[c] * x0
				s30 += w3[c] * x0
			}
			yi[j] = b[j] + (s00 + s01)
			yi[j+1] = b[j+1] + (s10 + s11)
			yi[j+2] = b[j+2] + (s20 + s21)
			yi[j+3] = b[j+3] + (s30 + s31)
		}
		for ; j < n; j++ {
			yi[j] = b[j] + dot32(w[j*k:], xi)
		}
	}
}

// Axpy32 computes dst += s·x, the sparse-input building block (e.g.
// accumulating weighted weight-matrix columns for histogram inputs).
func Axpy32(dst Vec32, s float32, x Vec32) {
	for i, v := range x {
		dst[i] += s * v
	}
}

// Sum32 writes x ⊕ y elementwise into dst (the residual connection);
// dst may alias either input.
func Sum32(dst, x, y Vec32) {
	for i := range x {
		dst[i] = x[i] + y[i]
	}
}

// ReLU32 writes max(0, x) elementwise in place.
func ReLU32(x Vec32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// tanhClamp bounds the rational approximation's domain; beyond it
// float32 tanh is ±1 to the last ulp.
const tanhClamp = 7.90531110763549805

// Tanh32 approximates tanh with the classic Cephes-derived rational
// polynomial (odd 13th-degree numerator over even 6th-degree
// denominator) used throughout SIMD math libraries: max error ≲2e-7
// over the full clamped range, pinned by the kernel tests. It replaces
// math.Tanh (and, via Sigmoid32, math.Exp) in the LSTM gate loop, where
// the transcendental calls would otherwise dominate the f32 forward.
func Tanh32(x float32) float32 {
	if x > tanhClamp {
		x = tanhClamp
	} else if x < -tanhClamp {
		x = -tanhClamp
	}
	x2 := x * x
	p := x * (alpha1 + x2*(alpha3+x2*(alpha5+x2*(alpha7+x2*(alpha9+x2*(alpha11+x2*alpha13))))))
	q := beta0 + x2*(beta2+x2*(beta4+x2*beta6))
	return p / q
}

// Rational tanh coefficients (minimax fit on [-9, 9]; the standard
// constants found in Cephes descendants).
const (
	alpha1  = 4.89352455891786e-03
	alpha3  = 6.37261928875436e-04
	alpha5  = 1.48572235717979e-05
	alpha7  = 5.12229709037114e-08
	alpha9  = -8.60467152213735e-11
	alpha11 = 2.00018790482477e-13
	alpha13 = -2.76076847742355e-16
	beta0   = 4.89352518554385e-03
	beta2   = 2.26843463243900e-03
	beta4   = 1.18534705686654e-04
	beta6   = 1.19825839466702e-06
)

// Sigmoid32 approximates the logistic function through Tanh32 via
// σ(x) = (1 + tanh(x/2))/2, inheriting its error bound (halved).
func Sigmoid32(x float32) float32 {
	return 0.5 + 0.5*Tanh32(0.5*x)
}
