package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// The inference fast path promises bit-identity with the training
// forward: every test here compares with ==, not a tolerance.

func randVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 2
	}
	return v
}

func assertBitEqual(t *testing.T, ctx string, want, got Vec) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", ctx, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] { //lint:allow floateq bit-identity is the property under test
			t.Fatalf("%s: element %d: %v != %v (diff %g)", ctx, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// inferTwice runs fn once, snapshots the result, resets the arena and
// runs it again — proving results survive arena reuse bit-exactly.
func inferTwice(t *testing.T, ctx string, a *Arena, fn func() Vec) Vec {
	t.Helper()
	a.Reset()
	first := append(Vec(nil), fn()...)
	a.Reset()
	second := fn()
	assertBitEqual(t, ctx+" (arena reuse)", first, second)
	return first
}

func TestLinearInferParity(t *testing.T) {
	a := NewArena()
	for trial := 0; trial < 120; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		in, out := 1+rng.Intn(12), 1+rng.Intn(12)
		l := NewLinear("t.lin", in, out, rng)
		x := randVec(rng, in)
		want, _ := l.Forward(x)
		got := inferTwice(t, "Linear", a, func() Vec { return l.Infer(x, a) })
		assertBitEqual(t, "Linear.Infer", want, got)
		dst := make(Vec, out)
		l.InferInto(dst, x)
		assertBitEqual(t, "Linear.InferInto", want, dst)
	}
}

func TestActivationInferParity(t *testing.T) {
	type act struct {
		name    string
		forward func(Vec) (Vec, Backward)
		into    func(dst, x Vec)
	}
	acts := []act{
		{"ReLU", ReLU, ReLUInto},
		{"Sigmoid", Sigmoid, SigmoidInto},
		{"Tanh", Tanh, TanhInto},
	}
	for _, ac := range acts {
		for trial := 0; trial < 40; trial++ {
			rng := rand.New(rand.NewSource(int64(2000 + trial)))
			x := randVec(rng, 1+rng.Intn(20))
			want, _ := ac.forward(x)
			dst := make(Vec, len(x))
			ac.into(dst, x)
			assertBitEqual(t, ac.name+"Into", want, dst)
			// In place: dst aliasing x must produce the same values.
			alias := append(Vec(nil), x...)
			ac.into(alias, alias)
			assertBitEqual(t, ac.name+"Into (aliased)", want, alias)
		}
	}
}

func TestSumConcatInferParity(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		n := 1 + rng.Intn(16)
		x, y := randVec(rng, n), randVec(rng, n)
		want, _ := Add(x, y)
		dst := make(Vec, n)
		SumInto(dst, x, y)
		assertBitEqual(t, "SumInto", want, dst)
		alias := append(Vec(nil), x...)
		SumInto(alias, alias, y)
		assertBitEqual(t, "SumInto (aliased)", want, alias)

		parts := make([]Vec, 1+rng.Intn(4))
		for i := range parts {
			parts[i] = randVec(rng, rng.Intn(6))
		}
		wantCat := Concat(parts...)
		dstCat := make(Vec, len(wantCat))
		ConcatInto(dstCat, parts...)
		assertBitEqual(t, "ConcatInto", wantCat, dstCat)
	}
}

func TestEmbeddingInferParity(t *testing.T) {
	a := NewArena()
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		vocab, dim := 2+rng.Intn(20), 1+rng.Intn(12)
		e := NewEmbedding("t.emb", vocab, dim, rng)
		// Include out-of-range ids: both sides clamp to row 0.
		for _, id := range []int{rng.Intn(vocab), -1, vocab + 3} {
			want, _ := e.Forward(id)
			got := inferTwice(t, "Embedding", a, func() Vec { return e.Infer(id, a) })
			assertBitEqual(t, "Embedding.Infer", want, got)
		}
		// The arena copy must not alias the weight table.
		a.Reset()
		got := e.Infer(0, a)
		got[0] += 1
		if got[0] == e.W.Row(0)[0] { //lint:allow floateq aliasing check is exact
			t.Fatalf("Embedding.Infer returned a view of the weight table")
		}
	}
}

func TestAvgPoolInferParity(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		n, dim := 1+rng.Intn(8), 1+rng.Intn(10)
		xs := make([]Vec, n)
		for i := range xs {
			xs[i] = randVec(rng, dim)
		}
		want, _ := AvgPool(xs)
		dst := make(Vec, dim)
		AvgPoolInto(dst, xs)
		assertBitEqual(t, "AvgPoolInto", want, dst)

		wantCols, _ := AvgPoolCols(xs)
		dstCols := make(Vec, dim)
		AvgPoolColsInto(dstCols, xs)
		assertBitEqual(t, "AvgPoolColsInto", wantCols, dstCols)
	}
}

func TestMLPInferParity(t *testing.T) {
	a := NewArena()
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(6000 + trial)))
		dims := []int{1 + rng.Intn(8)}
		for l := 0; l < 1+rng.Intn(3); l++ {
			dims = append(dims, 1+rng.Intn(10))
		}
		m := NewMLP("t.mlp", dims, rng)
		m.FinalActivation = trial%2 == 0
		x := randVec(rng, dims[0])
		want, _ := m.Forward(x)
		got := inferTwice(t, "MLP", a, func() Vec { return m.Infer(x, a) })
		assertBitEqual(t, "MLP.Infer", want, got)
	}
}

func TestBatchNormInferParity(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		T, D := 1+rng.Intn(7), 1+rng.Intn(9)
		bn := NewBatchNorm("t.bn")
		bn.Gamma.Val[0] = 0.5 + rng.Float64()
		bn.Beta.Val[0] = rng.NormFloat64()
		m := make([]Vec, T)
		for i := range m {
			m[i] = randVec(rng, D)
		}
		want, _ := bn.Forward(m)
		dst := make([]Vec, T)
		for i := range dst {
			dst[i] = make(Vec, D)
		}
		bn.InferInto(dst, m)
		for i := range want {
			assertBitEqual(t, "BatchNorm.InferInto", want[i], dst[i])
		}
		// In place: output aliasing input must match (the statistics are
		// fully accumulated before any write).
		alias := make([]Vec, T)
		for i := range alias {
			alias[i] = append(Vec(nil), m[i]...)
		}
		bn.InferInto(alias, alias)
		for i := range want {
			assertBitEqual(t, "BatchNorm.InferInto (aliased)", want[i], alias[i])
		}
	}
}

func TestConvBlockInferParity(t *testing.T) {
	a := NewArena()
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(8000 + trial)))
		T, D := 1+rng.Intn(7), 1+rng.Intn(9)
		b := NewConvBlock("t.conv", rng)
		m := make([]Vec, T)
		for i := range m {
			m[i] = randVec(rng, D)
		}
		want, _ := b.Forward(m)
		a.Reset()
		got := b.Infer(m, a)
		if len(got) != len(want) {
			t.Fatalf("ConvBlock.Infer rows %d != %d", len(got), len(want))
		}
		for i := range want {
			assertBitEqual(t, "ConvBlock.Infer", want[i], got[i])
		}
		// Arena reuse.
		snap := make([]Vec, len(got))
		for i := range got {
			snap[i] = append(Vec(nil), got[i]...)
		}
		a.Reset()
		again := b.Infer(m, a)
		for i := range snap {
			assertBitEqual(t, "ConvBlock.Infer (arena reuse)", snap[i], again[i])
		}
	}
}

func TestLSTMInferParity(t *testing.T) {
	a := NewArena()
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		in, hidden := 1+rng.Intn(8), 1+rng.Intn(8)
		steps := 1 + rng.Intn(6)
		l := NewLSTM("t.lstm", in, hidden, rng)
		xs := make([]Vec, steps)
		for i := range xs {
			xs[i] = randVec(rng, in)
		}
		want, _ := l.Forward(xs)
		got := inferTwice(t, "LSTM", a, func() Vec { return l.Infer(xs, a) })
		assertBitEqual(t, "LSTM.Infer", want, got)

		// Single-step parity with explicit state, including the aliased
		// form LSTM.Infer relies on (hNext/cNext overwriting h/cPrev).
		h0, c0 := randVec(rng, hidden), randVec(rng, hidden)
		x := xs[0]
		wantH, wantC, _ := l.Cell.Step(x, h0, c0)
		pre := make(Vec, 4*hidden)
		hN, cN := make(Vec, hidden), make(Vec, hidden)
		l.Cell.InferStep(hN, cN, pre, x, h0, c0)
		assertBitEqual(t, "LSTMCell.InferStep h", wantH, hN)
		assertBitEqual(t, "LSTMCell.InferStep c", wantC, cN)
		hA := append(Vec(nil), h0...)
		cA := append(Vec(nil), c0...)
		l.Cell.InferStep(hA, cA, pre, x, hA, cA)
		assertBitEqual(t, "LSTMCell.InferStep h (aliased)", wantH, hA)
		assertBitEqual(t, "LSTMCell.InferStep c (aliased)", wantC, cA)
	}
}

// TestInferConcurrentWorkers runs the fast path from many goroutines,
// each with its own arena, against Forward outputs computed up front —
// the -race pass proves per-worker arenas fully isolate the scratch.
func TestInferConcurrentWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMLP("t.conc", []int{6, 16, 16, 1}, rng)
	const n = 256
	xs := make([]Vec, n)
	want := make([]Vec, n)
	for i := range xs {
		xs[i] = randVec(rng, 6)
		want[i], _ = m.Forward(xs[i])
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := NewArena()
			for i := 0; i < n; i++ {
				a.Reset()
				got := m.Infer(xs[i], a)
				assertBitEqual(t, "concurrent MLP.Infer", want[i], got)
			}
		}()
	}
	wg.Wait()
}

func TestParallelForWorker(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 64
		seen := make([]int32, n)
		ParallelForWorker(n, workers, func(w, i int) {
			eff := Workers(n, workers)
			if w < 0 || w >= eff {
				t.Errorf("worker index %d out of range [0,%d)", w, eff)
			}
			seen[i]++
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	if got := Workers(5, 100); got != 5 {
		t.Fatalf("Workers(5, 100) = %d, want 5", got)
	}
	if got := Workers(5, 2); got != 2 {
		t.Fatalf("Workers(5, 2) = %d, want 2", got)
	}
}
