package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// paramBlob is the on-disk form of one parameter.
type paramBlob struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Val  []float64 `json:"val"`
}

// SaveParams serializes parameters as JSON (values only; gradients and
// optimizer state are not persisted).
func SaveParams(w io.Writer, params []*Param) error {
	blobs := make([]paramBlob, len(params))
	for i, p := range params {
		blobs[i] = paramBlob{Name: p.Name, Rows: p.Rows, Cols: p.Cols, Val: p.Val}
	}
	if err := json.NewEncoder(w).Encode(blobs); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParams restores parameter values saved by SaveParams into an
// identically structured parameter list, matching by name. Every
// parameter must be present with matching shape.
func LoadParams(r io.Reader, params []*Param) error {
	var blobs []paramBlob
	if err := json.NewDecoder(r).Decode(&blobs); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	byName := make(map[string]paramBlob, len(blobs))
	for _, b := range blobs {
		byName[b.Name] = b
	}
	for _, p := range params {
		b, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: load params: missing %q", p.Name)
		}
		if b.Rows != p.Rows || b.Cols != p.Cols {
			return fmt.Errorf("nn: load params: %q shape %dx%d, want %dx%d",
				p.Name, b.Rows, b.Cols, p.Rows, p.Cols)
		}
		copy(p.Val, b.Val)
	}
	return nil
}
