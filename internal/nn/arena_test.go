package nn

import "testing"

func TestArenaVecZeroedAndDisjoint(t *testing.T) {
	a := NewArena()
	v1 := a.Vec(8)
	for i := range v1 {
		v1[i] = float64(i + 1)
	}
	v2 := a.Vec(8)
	for i, x := range v2 {
		if x != 0 { //lint:allow floateq zeroing contract is exact
			t.Fatalf("Vec not zeroed at %d: %v", i, x)
		}
	}
	v2[0] = 99
	if v1[0] != 1 { //lint:allow floateq disjointness check is exact
		t.Fatalf("arena vectors overlap: v1 = %v", v1)
	}
	// Capacity is clamped, so append must not grow into the next carve.
	v1 = append(v1, 7)
	if v2[0] != 99 { //lint:allow floateq disjointness check is exact
		t.Fatalf("append on an arena vec clobbered its neighbor")
	}
}

func TestArenaResetReusesSameBacking(t *testing.T) {
	a := NewArena()
	v1 := a.Vec(16)
	v1[3] = 42
	a.Reset()
	v2 := a.Vec(16)
	if &v1[0] != &v2[0] {
		t.Fatalf("Reset did not rewind to the same backing chunk")
	}
	if v2[3] != 0 { //lint:allow floateq zeroing contract is exact
		t.Fatalf("Vec after Reset not zeroed: %v", v2[3])
	}
}

// TestArenaConverges is the zero-allocation guarantee at the allocator
// level: after enough warm-up rounds of a fixed request sequence, a
// Reset + replay of that sequence must not allocate at all.
func TestArenaConverges(t *testing.T) {
	a := NewArena()
	run := func() {
		a.Reset()
		a.Vec(3)
		a.Vec(minFloatChunk + 17) // oversized: needs a dedicated chunk
		a.Vec(500)
		a.Mat(9, 33)
		a.Vecs(minVecChunk + 5) // oversized header request
		a.Vec(1)
	}
	for i := 0; i < 4; i++ {
		run()
	}
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("warm arena still allocates: %v allocs/op", n)
	}
}

// TestArenaGrowth exercises the grow-in-place path: a later round asking
// for a bigger vector at the same position must still converge.
func TestArenaGrowth(t *testing.T) {
	a := NewArena()
	for round := 0; round < 3; round++ {
		a.Reset()
		v := a.Vec(minFloatChunk * (round + 1))
		for i := range v {
			if v[i] != 0 { //lint:allow floateq zeroing contract is exact
				t.Fatalf("round %d: grown chunk not zeroed", round)
			}
		}
	}
	a.Reset()
	big := a.Vec(minFloatChunk * 3)
	small := a.Vec(4)
	big[0], small[0] = 1, 2
	if big[0] != 1 { //lint:allow floateq disjointness check is exact
		t.Fatalf("grown chunk overlaps next carve")
	}
	run := func() {
		a.Reset()
		a.Vec(minFloatChunk * 3)
		a.Vec(4)
	}
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("arena did not converge after growth: %v allocs/op", n)
	}
}

func TestArenaBytes(t *testing.T) {
	a := NewArena()
	if a.Bytes() != 0 {
		t.Fatalf("fresh arena Bytes = %d, want 0", a.Bytes())
	}
	a.Vec(10) // rounds up to one minimum chunk
	want := 8 * minFloatChunk
	if a.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", a.Bytes(), want)
	}
	a.Vecs(10)
	want += 24 * minVecChunk
	if a.Bytes() != want {
		t.Fatalf("Bytes after Vecs = %d, want %d", a.Bytes(), want)
	}
	a.Reset()
	if a.Bytes() != want {
		t.Fatalf("Reset changed Bytes: %d, want %d", a.Bytes(), want)
	}
}

func TestArenaZeroLength(t *testing.T) {
	a := NewArena()
	if v := a.Vec(0); v != nil {
		t.Fatalf("Vec(0) = %v, want nil", v)
	}
	if v := a.Vecs(0); v != nil {
		t.Fatalf("Vecs(0) = %v, want nil", v)
	}
	if a.Bytes() != 0 {
		t.Fatalf("zero-length requests reserved memory: %d bytes", a.Bytes())
	}
}
