package nn

import (
	"math"
	"math/rand"
)

// LSTMCell implements the standard LSTM recurrence (Hochreiter &
// Schmidhuber 1997, the paper's reference [16]):
//
//	i = σ(Wi·[x,h] + bi)   f = σ(Wf·[x,h] + bf)
//	g = tanh(Wg·[x,h] + bg) o = σ(Wo·[x,h] + bo)
//	c' = f⊙c + i⊙g          h' = o⊙tanh(c')
type LSTMCell struct {
	// W holds the four gate matrices stacked [4*hidden x (in+hidden)].
	W *Param
	// B holds the four gate biases stacked [1 x 4*hidden]. The forget
	// gate bias is initialized to 1, the usual trick for gradient flow.
	B      *Param
	In     int
	Hidden int
}

// NewLSTMCell allocates an initialized cell.
func NewLSTMCell(name string, in, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		W:      NewParam(name+".W", 4*hidden, in+hidden).InitXavier(rng),
		B:      NewParam(name+".b", 1, 4*hidden),
		In:     in,
		Hidden: hidden,
	}
	for j := 0; j < hidden; j++ {
		c.B.Val[hidden+j] = 1 // forget-gate slot
	}
	return c
}

// Params implements Module.
func (c *LSTMCell) Params() []*Param { return []*Param{c.W, c.B} }

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers.
func (c *LSTMCell) ShareWeights() *LSTMCell {
	return &LSTMCell{W: c.W.GradView(), B: c.B.GradView(), In: c.In, Hidden: c.Hidden}
}

// StepBackward propagates gradients of one step: given dh' and dc', it
// returns dx, dh and dc.
type StepBackward func(dh, dc Vec) (dx, dhPrev, dcPrev Vec)

// Step runs one time step.
func (c *LSTMCell) Step(x, h, cPrev Vec) (hNext, cNext Vec, back StepBackward) {
	H := c.Hidden
	xh := Concat(x, h)
	// Pre-activations for the four gates: order i, f, g, o.
	pre := zeros(4 * H)
	for r := 0; r < 4*H; r++ {
		row := c.W.Row(r)
		sum := c.B.Val[r]
		for k, v := range xh {
			sum += row[k] * v
		}
		pre[r] = sum
	}
	i, f, g, o := zeros(H), zeros(H), zeros(H), zeros(H)
	for j := 0; j < H; j++ {
		i[j] = sigmoid(pre[j])
		f[j] = sigmoid(pre[H+j])
		g[j] = math.Tanh(pre[2*H+j])
		o[j] = sigmoid(pre[3*H+j])
	}
	cNext = zeros(H)
	tanhC := zeros(H)
	hNext = zeros(H)
	for j := 0; j < H; j++ {
		cNext[j] = f[j]*cPrev[j] + i[j]*g[j]
		tanhC[j] = math.Tanh(cNext[j])
		hNext[j] = o[j] * tanhC[j]
	}
	back = func(dh, dc Vec) (Vec, Vec, Vec) {
		dPre := zeros(4 * H)
		dcTotal := zeros(H)
		for j := 0; j < H; j++ {
			dcj := dc[j] + dh[j]*o[j]*(1-tanhC[j]*tanhC[j])
			dcTotal[j] = dcj
			do := dh[j] * tanhC[j]
			di := dcj * g[j]
			df := dcj * cPrev[j]
			dg := dcj * i[j]
			dPre[j] = di * i[j] * (1 - i[j])
			dPre[H+j] = df * f[j] * (1 - f[j])
			dPre[2*H+j] = dg * (1 - g[j]*g[j])
			dPre[3*H+j] = do * o[j] * (1 - o[j])
		}
		dxh := zeros(len(xh))
		for r := 0; r < 4*H; r++ {
			gr := dPre[r]
			if gr == 0 { //lint:allow floateq exact-zero sparsity fast path in backprop
				continue
			}
			row := c.W.Row(r)
			grow := c.W.GradRow(r)
			for k, v := range xh {
				grow[k] += gr * v
				dxh[k] += gr * row[k]
			}
			c.B.Grad[r] += gr
		}
		dx := append(Vec(nil), dxh[:c.In]...)
		dhPrev := append(Vec(nil), dxh[c.In:]...)
		dcPrev := zeros(H)
		for j := 0; j < H; j++ {
			dcPrev[j] = dcTotal[j] * f[j]
		}
		return dx, dhPrev, dcPrev
	}
	return hNext, cNext, back
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// LSTM runs a cell over a sequence and exposes the final hidden state —
// the fixed-length encoding the paper's LSTM1/LSTM2 produce.
type LSTM struct {
	Cell *LSTMCell
}

// NewLSTM allocates an LSTM encoder.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	return &LSTM{Cell: NewLSTMCell(name, in, hidden, rng)}
}

// Params implements Module.
func (l *LSTM) Params() []*Param { return l.Cell.Params() }

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers.
func (l *LSTM) ShareWeights() *LSTM {
	return &LSTM{Cell: l.Cell.ShareWeights()}
}

// Hidden returns the encoder's output dimension.
func (l *LSTM) Hidden() int { return l.Cell.Hidden }

// Forward encodes the sequence into the final hidden state. The backward
// closure returns per-step input gradients.
func (l *LSTM) Forward(xs []Vec) (Vec, func(dh Vec) []Vec) {
	H := l.Cell.Hidden
	h, c := zeros(H), zeros(H)
	backs := make([]StepBackward, len(xs))
	for t, x := range xs {
		h, c, backs[t] = l.Cell.Step(x, h, c)
	}
	back := func(dh Vec) []Vec {
		dxs := make([]Vec, len(xs))
		dc := zeros(H)
		d := dh
		for t := len(xs) - 1; t >= 0; t-- {
			var dx Vec
			dx, d, dc = backs[t](d, dc)
			dxs[t] = dx
		}
		return dxs
	}
	return h, back
}
