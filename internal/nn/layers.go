package nn

import (
	"math"
	"math/rand"
)

// Linear is a fully connected layer: y = Wx + b.
type Linear struct {
	W *Param // [out x in]
	B *Param // [1 x out]
}

// NewLinear allocates a Glorot-initialized dense layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: NewParam(name+".W", out, in).InitXavier(rng),
		B: NewParam(name+".b", 1, out),
	}
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers (see Param.GradView).
func (l *Linear) ShareWeights() *Linear {
	return &Linear{W: l.W.GradView(), B: l.B.GradView()}
}

// InDim returns the input dimension.
func (l *Linear) InDim() int { return l.W.Cols }

// OutDim returns the output dimension.
func (l *Linear) OutDim() int { return l.W.Rows }

// Forward applies the layer and returns the backward closure.
func (l *Linear) Forward(x Vec) (Vec, Backward) {
	out := l.W.Rows
	y := zeros(out)
	for r := 0; r < out; r++ {
		row := l.W.Row(r)
		sum := l.B.Val[r]
		for c, xv := range x {
			sum += row[c] * xv
		}
		y[r] = sum
	}
	back := func(dy Vec) Vec {
		dx := zeros(len(x))
		for r := 0; r < out; r++ {
			g := dy[r]
			if g == 0 { //lint:allow floateq exact-zero sparsity fast path in backprop
				continue
			}
			row := l.W.Row(r)
			grow := l.W.GradRow(r)
			for c, xv := range x {
				grow[c] += g * xv
				dx[c] += g * row[c]
			}
			l.B.Grad[r] += g
		}
		return dx
	}
	return y, back
}

// ReLU applies max(0, x) elementwise.
func ReLU(x Vec) (Vec, Backward) {
	y := zeros(len(x))
	for i, v := range x {
		if v > 0 {
			y[i] = v
		}
	}
	back := func(dy Vec) Vec {
		dx := zeros(len(x))
		for i := range dy {
			if x[i] > 0 {
				dx[i] = dy[i]
			}
		}
		return dx
	}
	return y, back
}

// Sigmoid applies 1/(1+e^-x) elementwise.
func Sigmoid(x Vec) (Vec, Backward) {
	y := zeros(len(x))
	for i, v := range x {
		y[i] = 1 / (1 + math.Exp(-v))
	}
	back := func(dy Vec) Vec {
		dx := zeros(len(x))
		for i := range dy {
			dx[i] = dy[i] * y[i] * (1 - y[i])
		}
		return dx
	}
	return y, back
}

// Tanh applies tanh elementwise.
func Tanh(x Vec) (Vec, Backward) {
	y := zeros(len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	back := func(dy Vec) Vec {
		dx := zeros(len(x))
		for i := range dy {
			dx[i] = dy[i] * (1 - y[i]*y[i])
		}
		return dx
	}
	return y, back
}

// Add returns a ⊕ b (element-wise sum), the residual connection of the
// ResNet blocks.
func Add(a, b Vec) (Vec, Backward) {
	y := zeros(len(a))
	for i := range a {
		y[i] = a[i] + b[i]
	}
	back := func(dy Vec) Vec {
		// Caller treats the return as da; db equals dy as well and is
		// handled by AddBackward2 when both paths need gradients.
		return dy
	}
	return y, back
}

// Embedding maps integer ids to dense rows of a learned matrix.
type Embedding struct {
	W *Param // [vocab x dim]
}

// NewEmbedding allocates an embedding table.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{W: NewParam(name, vocab, dim).InitXavier(rng)}
}

// Params implements Module.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers.
func (e *Embedding) ShareWeights() *Embedding {
	return &Embedding{W: e.W.GradView()}
}

// Dim returns the embedding dimension.
func (e *Embedding) Dim() int { return e.W.Cols }

// Vocab returns the vocabulary size.
func (e *Embedding) Vocab() int { return e.W.Rows }

// Forward looks up id and returns a copy of its row. Unknown ids clamp to
// row 0 (the reserved "unknown" slot).
func (e *Embedding) Forward(id int) (Vec, Backward) {
	if id < 0 || id >= e.W.Rows {
		id = 0
	}
	y := append(Vec(nil), e.W.Row(id)...)
	back := func(dy Vec) Vec {
		addInto(e.W.GradRow(id), dy)
		return nil // discrete input: no gradient flows further
	}
	return y, back
}

// AvgPool averages a non-empty list of equal-length vectors (the paper's
// average pooling for schema encoding and ablations).
func AvgPool(xs []Vec) (Vec, Backward) {
	n := len(xs)
	dim := len(xs[0])
	y := zeros(dim)
	for _, x := range xs {
		addInto(y, x)
	}
	inv := 1 / float64(n)
	for i := range y {
		y[i] *= inv
	}
	back := func(dy Vec) Vec {
		// Returns the (shared) per-input gradient; all inputs receive
		// the same dy/n. Callers distribute it.
		dx := zeros(dim)
		for i := range dy {
			dx[i] = dy[i] * inv
		}
		return dx
	}
	return y, back
}

// MLP is a stack of Linear+activation layers, used by the DQN (four fully
// connected layers with ReLU).
type MLP struct {
	Layers []*Linear
	// FinalActivation applies ReLU after the last layer when true.
	FinalActivation bool
}

// NewMLP builds a dense stack with the given layer widths, e.g.
// dims = [in, 16, 64, 16, 1].
func NewMLP(name string, dims []int, rng *rand.Rand) *MLP {
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(nameIdx(name, i), dims[i], dims[i+1], rng))
	}
	return m
}

func nameIdx(name string, i int) string {
	return name + "." + string(rune('0'+i))
}

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers.
func (m *MLP) ShareWeights() *MLP {
	cp := &MLP{FinalActivation: m.FinalActivation}
	for _, l := range m.Layers {
		cp.Layers = append(cp.Layers, l.ShareWeights())
	}
	return cp
}

// Params implements Module.
func (m *MLP) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward applies all layers with ReLU between them.
func (m *MLP) Forward(x Vec) (Vec, Backward) {
	var backs []Backward
	cur := x
	for i, l := range m.Layers {
		y, lb := l.Forward(cur)
		backs = append(backs, lb)
		cur = y
		if i < len(m.Layers)-1 || m.FinalActivation {
			a, ab := ReLU(cur)
			backs = append(backs, ab)
			cur = a
		}
	}
	back := func(dy Vec) Vec {
		d := dy
		for i := len(backs) - 1; i >= 0; i-- {
			d = backs[i](d)
		}
		return d
	}
	return cur, back
}
