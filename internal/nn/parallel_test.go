package nn

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 3, 100} {
			hits := make([]atomic.Int32, n)
			ParallelFor(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestParallelForMatchesSerial(t *testing.T) {
	const n = 257
	want := make([]float64, n)
	ParallelFor(n, 1, func(i int) { want[i] = float64(i) * 1.5 })
	got := make([]float64, n)
	ParallelFor(n, 8, func(i int) { got[i] = float64(i) * 1.5 })
	for i := range want {
		if want[i] != got[i] { //lint:allow floateq bit-identity is the property under test
			t.Fatalf("index %d: serial %v parallel %v", i, want[i], got[i])
		}
	}
}
