package nn

import "math"

// Vetted tolerance comparisons for the f64-train / f32-infer split.
// Non-test float comparisons against the f32 kernel outputs must go
// through these helpers rather than ad-hoc epsilon checks: they are the
// single audited entry point (see the floateq analyzer's audit-note
// pattern in LINTING.md), and their semantics — exact-equality
// short-circuit, combined absolute + relative envelope, ULP distance —
// are pinned by tests.

// AlmostEqual reports whether a and b agree within the combined
// envelope |a-b| ≤ atol + rtol·max(|a|, |b|). The exact-equality
// short-circuit makes equal infinities (and equal zeros of either sign)
// compare true, where the subtraction would produce NaN; NaNs never
// compare equal.
func AlmostEqual(a, b, rtol, atol float64) bool {
	if a == b { //lint:allow floateq(audit) exact-equality short-circuit of the vetted tolerance helper (handles equal infinities)
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) {
		return false // opposite infinities (or an overflowed gap) never agree
	}
	scale := math.Abs(a)
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return diff <= atol+rtol*scale
}

// AlmostEqual32 is AlmostEqual over float32 values, evaluated in
// float64 so the envelope arithmetic itself adds no rounding.
func AlmostEqual32(a, b float32, rtol, atol float64) bool {
	return AlmostEqual(float64(a), float64(b), rtol, atol)
}

// ULPDiff32 returns the distance between a and b in float32 units in
// the last place: the number of representable float32 values strictly
// between them, plus one if they differ. Equal values (including +0
// vs -0) return 0; any NaN returns MaxInt64.
func ULPDiff32(a, b float32) int64 {
	if a == b { //lint:allow floateq(audit) exact-equality short-circuit of the vetted ULP helper (identifies ±0 and equal values)
		return 0
	}
	if a != b && (math.IsNaN(float64(a)) || math.IsNaN(float64(b))) { //lint:allow floateq(audit) NaN guard of the vetted ULP helper
		return math.MaxInt64
	}
	ia := orderedBits32(a)
	ib := orderedBits32(b)
	if ia > ib {
		ia, ib = ib, ia
	}
	return ib - ia
}

// orderedBits32 maps a float32 onto a monotonically ordered integer
// line (sign-magnitude to two's-complement), so ULP distance is integer
// subtraction.
func orderedBits32(f float32) int64 {
	u := math.Float32bits(f)
	if u&(1<<31) != 0 {
		return -int64(u &^ (1 << 31)) // mirror negatives: -0 maps onto 0
	}
	return int64(u)
}
