package nn

import "math"

// Float32 inference mirrors. Each *32 type is a forward-only replica of
// the corresponding float64 layer, materialized from the trained f64
// parameters (New*32) and backed by the kernels in kernels32.go. The
// mirrors exist only on the serving path: training, persistence and the
// golden traces stay on the float64 layers bit-exactly, and a mirror is
// rebuilt (cheaply — it is a flat copy of the weights) whenever the
// underlying parameters change. Outputs agree with the f64 path within
// the tolerance budgets pinned by the parity tests; see PERFORMANCE.md
// for the f64-train / f32-infer contract.

// Linear32 mirrors Linear: y = Wx + b over float32 with a row-major
// flat weight copy.
type Linear32 struct {
	W   Vec32 // [out × in] row-major
	B   Vec32 // [out]
	In  int
	Out int
}

// NewLinear32 materializes the mirror of a trained layer.
func NewLinear32(l *Linear) *Linear32 {
	m := &Linear32{
		W:   make(Vec32, len(l.W.Val)),
		B:   make(Vec32, len(l.B.Val)),
		In:  l.W.Cols,
		Out: l.W.Rows,
	}
	F32From(m.W, l.W.Val)
	F32From(m.B, l.B.Val)
	return m
}

// InferInto applies the layer into dst (length Out). x may be shorter
// than In when the logical input is zero-padded. dst must not alias x.
func (l *Linear32) InferInto(dst, x Vec32) {
	MatVec32(dst, l.W, l.Out, l.In, l.B, x)
}

// Infer applies the layer into an arena-backed vector.
func (l *Linear32) Infer(x Vec32, a *Arena) Vec32 {
	dst := a.Vec32(l.Out)
	l.InferInto(dst, x)
	return dst
}

// Embedding32 mirrors Embedding as a flat row-major float32 table.
type Embedding32 struct {
	W    Vec32 // [rows × cols]
	Rows int
	Cols int
}

// NewEmbedding32 materializes the mirror of a trained table.
func NewEmbedding32(e *Embedding) *Embedding32 {
	m := &Embedding32{W: make(Vec32, len(e.W.Val)), Rows: e.W.Rows, Cols: e.W.Cols}
	F32From(m.W, e.W.Val)
	return m
}

// Row returns the id's row (the mirror's storage — read-only for
// callers). Unknown ids clamp to row 0, matching Embedding.Infer.
func (e *Embedding32) Row(id int) Vec32 {
	if id < 0 || id >= e.Rows {
		id = 0
	}
	return e.W[id*e.Cols : id*e.Cols+e.Cols]
}

// MLP32 mirrors MLP: a stack of Linear32 with ReLU between layers.
type MLP32 struct {
	Layers          []*Linear32
	FinalActivation bool
}

// NewMLP32 materializes the mirror of a trained MLP.
func NewMLP32(m *MLP) *MLP32 {
	cp := &MLP32{FinalActivation: m.FinalActivation}
	for _, l := range m.Layers {
		cp.Layers = append(cp.Layers, NewLinear32(l))
	}
	return cp
}

// Infer applies all layers forward-only (activations in place).
func (m *MLP32) Infer(x Vec32, a *Arena) Vec32 {
	cur := x
	for i, l := range m.Layers {
		y := l.Infer(cur, a)
		if i < len(m.Layers)-1 || m.FinalActivation {
			ReLU32(y)
		}
		cur = y
	}
	return cur
}

// InferBatch applies the stack to n inputs at once: x is row-major
// [n × InDim], the result is arena-backed row-major [n × OutDim].
// Each output row is bit-identical to a standalone Infer of that row
// (MatMulT32 reduces in the canonical per-row order), so batching is a
// pure throughput optimization.
func (m *MLP32) InferBatch(x Vec32, n int, a *Arena) Vec32 {
	cur := x
	for i, l := range m.Layers {
		y := a.Vec32(n * l.Out)
		MatMulT32(y, cur, n, l.In, l.W, l.Out, l.B)
		if i < len(m.Layers)-1 || m.FinalActivation {
			ReLU32(y)
		}
		cur = y
	}
	return cur
}

// LSTMCell32 mirrors LSTMCell with the gate matrix split into its input
// and recurrent halves: W [4H × (In+H)] becomes Wx [4H × In] and
// Wh [4H × H], both flat row-major. The split lets callers precompute
// the input half B + Wx·x_t per token — for vocabulary tokens once per
// mirror build (featenc folds the embedding lookup straight into gate
// pre-activations) — leaving only the recurrent Wh·h matvec on the
// sequential critical path.
type LSTMCell32 struct {
	Wx     Vec32 // [4H × In]
	Wh     Vec32 // [4H × H]
	B      Vec32 // [4H]
	In     int
	Hidden int
}

// NewLSTMCell32 materializes the mirror of a trained cell.
func NewLSTMCell32(c *LSTMCell) *LSTMCell32 {
	H := c.Hidden
	m := &LSTMCell32{
		Wx:     make(Vec32, 4*H*c.In),
		Wh:     make(Vec32, 4*H*H),
		B:      make(Vec32, 4*H),
		In:     c.In,
		Hidden: H,
	}
	for r := 0; r < 4*H; r++ {
		row := c.W.Row(r)
		F32From(m.Wx[r*c.In:r*c.In+c.In], row[:c.In])
		F32From(m.Wh[r*H:r*H+H], row[c.In:])
		m.B[r] = float32(c.B.Val[r])
	}
	return m
}

// PreX computes the input half of the gate pre-activations,
// dst = B + Wx·x (length 4H). x may be shorter than In when the token
// encoding is zero-padded.
func (c *LSTMCell32) PreX(dst, x Vec32) {
	MatVec32(dst, c.Wx, 4*c.Hidden, c.In, c.B, x)
}

// Step advances one time step given the precomputed input half preX
// (= B + Wx·x_t): it adds the recurrent half into pre (scratch, length
// 4H, overwritten; must not alias preX) and applies the gate
// nonlinearities, updating h and cst in place. Gate order is i, f, g, o
// as in the f64 cell.
func (c *LSTMCell32) Step(h, cst, pre, preX Vec32) {
	H := c.Hidden
	// preX rides MatVec32's bias slot: pre[r] = preX[r] + Wh[r]·h.
	MatVec32(pre, c.Wh, 4*H, H, preX, h)
	// Per-gate views of length H keep the gate loop free of bounds
	// checks (every index is provably < H).
	gi := pre[0*H:][:H]
	gf := pre[1*H:][:H]
	gg := pre[2*H:][:H]
	gout := pre[3*H:][:H]
	h = h[:H]
	cst = cst[:H]
	for j := 0; j < H; j++ {
		i := Sigmoid32(gi[j])
		f := Sigmoid32(gf[j])
		g := Tanh32(gg[j])
		o := Sigmoid32(gout[j])
		cj := f*cst[j] + i*g
		cst[j] = cj
		h[j] = o * Tanh32(cj)
	}
}

// BatchNorm32 mirrors BatchNorm over a flat row-major matrix. The
// statistics reduce in the canonical order (single accumulator,
// row-major — the same order matStats uses on the f64 side), so the
// f32-vs-f64 deviation stays within the pinned tolerance regardless of
// kernel blocking.
type BatchNorm32 struct {
	Gamma float32
	Beta  float32
}

// NewBatchNorm32 materializes the mirror of a trained normalizer.
func NewBatchNorm32(bn *BatchNorm) *BatchNorm32 {
	return &BatchNorm32{Gamma: float32(bn.Gamma.Val[0]), Beta: float32(bn.Beta.Val[0])}
}

// InferInPlace normalizes the flat matrix in place.
func (bn *BatchNorm32) InferInPlace(m Vec32) {
	if len(m) == 0 {
		return
	}
	var mu float32
	for _, v := range m {
		mu += v
	}
	mu /= float32(len(m))
	var variance float32
	for _, v := range m {
		dv := v - mu
		variance += dv * dv
	}
	variance /= float32(len(m))
	std := float32(math.Sqrt(float64(variance) + bnEps))
	for i, v := range m {
		m[i] = bn.Gamma*(v-mu)/std + bn.Beta
	}
}

// ConvBlock32 mirrors ConvBlock (3-tap conv → BatchNorm → ReLU) over
// flat row-major T×D matrices.
type ConvBlock32 struct {
	W0, W1, W2, Bias float32
	BN               *BatchNorm32
}

// NewConvBlock32 materializes the mirror of a trained block.
func NewConvBlock32(b *ConvBlock) *ConvBlock32 {
	return &ConvBlock32{
		W0:   float32(b.K.Val[0]),
		W1:   float32(b.K.Val[1]),
		W2:   float32(b.K.Val[2]),
		Bias: float32(b.K.Val[3]),
		BN:   NewBatchNorm32(b.BN),
	}
}

// Infer applies the block to a flat T×D matrix into an arena-backed
// matrix of the same shape.
func (b *ConvBlock32) Infer(m Vec32, T, D int, a *Arena) Vec32 {
	out := a.Vec32(T * D)
	for t := 0; t < T; t++ {
		src := m[t*D : t*D+D]
		dst := out[t*D : t*D+D]
		for d := 0; d < D; d++ {
			sum := b.Bias + b.W1*src[d]
			if t > 0 {
				sum += b.W0 * m[(t-1)*D+d]
			}
			if t < T-1 {
				sum += b.W2 * m[(t+1)*D+d]
			}
			dst[d] = sum
		}
	}
	b.BN.InferInPlace(out)
	ReLU32(out)
	return out
}

// AvgPoolRows32 averages the T rows of a flat T×D matrix into dst
// (length D): rows accumulate top to bottom, matching the f64
// AvgPoolColsInto order.
func AvgPoolRows32(dst Vec32, m Vec32, T, D int) {
	clear(dst)
	for t := 0; t < T; t++ {
		row := m[t*D : t*D+D]
		for d, v := range row {
			dst[d] += v
		}
	}
	inv := 1 / float32(T)
	for d := range dst {
		dst[d] *= inv
	}
}
